package correctbench

import (
	"math/rand"
	"testing"
	"time"
)

// roundTripDuration pushes a duration through the CellFinished wire
// form and returns what comes back.
func roundTripDuration(t *testing.T, d time.Duration) time.Duration {
	t.Helper()
	ev := CellFinished{
		Index: 1, Method: "AutoBench", Problem: "cnt8", Duration: d,
		Outcome: TaskOutcome{Problem: "cnt8"},
	}
	line, err := MarshalEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	cf, ok := back.(CellFinished)
	if !ok {
		t.Fatalf("decoded %T, want CellFinished", back)
	}
	return cf.Duration
}

// TestDurationWireRoundTrip pins the duration_ms wire contract as a
// property: for any duration, decode(encode(d)) equals d truncated to
// the wire's microsecond resolution. The old decoder multiplied the
// raw duration_ms float by time.Millisecond, which loses a nanosecond
// whenever microseconds/1000 is not exactly representable in binary
// floating point (e.g. 4476µs encodes as 4.476 and decoded as
// 4.475999ms); rounding through integer microseconds recovers the
// exact value the encoder started from.
func TestDurationWireRoundTrip(t *testing.T) {
	// Known historical casualty of the float multiply.
	if got := roundTripDuration(t, 4476*time.Microsecond); got != 4476*time.Microsecond {
		t.Fatalf("4476µs round-tripped to %v", got)
	}
	// Exhaustive over the first 5000 microsecond values.
	for us := int64(0); us < 5000; us++ {
		d := time.Duration(us) * time.Microsecond
		if got := roundTripDuration(t, d); got != d {
			t.Fatalf("%v round-tripped to %v", d, got)
		}
	}
	// Randomized property over the realistic range (sub-microsecond
	// tails truncate, everything else is exact).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Minute)))
		want := d.Truncate(time.Microsecond)
		if got := roundTripDuration(t, d); got != want {
			t.Fatalf("%v round-tripped to %v, want %v", d, got, want)
		}
	}
}
