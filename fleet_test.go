package correctbench

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"correctbench/internal/faults"
)

// fleetListener hands net.Pipe server ends to a worker's accept loop.
type fleetListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newFleetListener() *fleetListener {
	return &fleetListener{ch: make(chan net.Conn, 16), closed: make(chan struct{})}
}

func (l *fleetListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *fleetListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type fleetAddr string

func (a fleetAddr) Network() string { return "pipe" }
func (a fleetAddr) String() string  { return string(a) }

func (l *fleetListener) Addr() net.Addr { return fleetAddr("fleet") }

// testFleet is an in-process worker fleet built entirely from the
// public API: each node is a NewFleetWorker serving a pipe listener,
// optionally behind a node-level fault injector.
type testFleet struct {
	addrs     []string
	lns       map[string]*fleetListener
	injectors map[string]*faults.Node
	workers   map[string]*FleetWorker
}

// startFleet launches n worker nodes named fleet-0:1 … fleet-{n-1}:1.
// plans attaches a fault schedule to the named nodes.
func startFleet(t *testing.T, n int, plans map[string]faults.NodePlan) *testFleet {
	t.Helper()
	f := &testFleet{
		lns:       map[string]*fleetListener{},
		injectors: map[string]*faults.Node{},
		workers:   map[string]*FleetWorker{},
	}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("fleet-%d:1", i)
		f.addrs = append(f.addrs, addr)
		ln := newFleetListener()
		f.lns[addr] = ln
		var served net.Listener = ln
		if plan, ok := plans[addr]; ok {
			inj := faults.NewNode(plan)
			f.injectors[addr] = inj
			served = inj.WrapListener(ln)
		}
		w := NewFleetWorker(nil, 4)
		f.workers[addr] = w
		go w.Serve(served)
		t.Cleanup(func() { ln.Close() })
	}
	return f
}

// executor returns a coordinator over the fleet, dialing through the
// in-process pipes.
func (f *testFleet) executor(t *testing.T) *RemoteExecutor {
	t.Helper()
	rex, err := NewRemoteExecutor(f.addrs, RemoteOptions{
		Window:     2,
		Straggler:  300 * time.Millisecond,
		ProbeEvery: 20 * time.Millisecond,
		MaxMissed:  5,
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			ln := f.lns[addr]
			if ln == nil {
				return nil, fmt.Errorf("test fleet: unknown node %s", addr)
			}
			if inj := f.injectors[addr]; inj != nil && inj.Killed() {
				return nil, net.ErrClosed
			}
			c1, c2 := net.Pipe()
			select {
			case ln.ch <- c2:
				return c1, nil
			case <-ln.closed:
				c1.Close()
				c2.Close()
				return nil, net.ErrClosed
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rex
}

// fleetSpec is the differential grid: 4 problems x 3 methods, small
// enough to run the whole executor matrix in one test.
func fleetSpec(workers int) ExperimentSpec {
	return ExperimentSpec{
		Seed: 47, Reps: 1, Workers: workers,
		Problems: []string{"mux2_w4", "cnt4", "halfadd", "dff"},
	}
}

// TestFleetDifferentialEventStreams is the tentpole acceptance
// criterion: the local pool, a 1-node remote fleet, a 4-node remote
// fleet, and a 4-node fleet under a lossy, laggy fault schedule must
// all stream byte-identical events (once the two documented wall-clock
// fields are normalized) and render byte-identical Table I and
// Table III, at Workers 1 and 8 alike. Execution placement and fault
// recovery are invisible to the experiment.
func TestFleetDifferentialEventStreams(t *testing.T) {
	_, baseEvents, baseExp := drainJob(t, NewClient(), fleetSpec(1))
	baseline := marshalNormalized(t, baseEvents)
	t1, t3 := baseExp.Table1(), baseExp.Table3()

	faultPlans := map[string]faults.NodePlan{
		"fleet-0:1": {Seed: 5, DropResultRate: 0.25},
		"fleet-2:1": {
			Seed: 9, DelayResultRate: 0.5, MaxResultDelay: 25 * time.Millisecond,
			FrameLatencyRate: 0.25, MaxFrameLatency: 10 * time.Millisecond,
		},
	}
	cases := []struct {
		name  string
		build func(t *testing.T) ClientOption
	}{
		{"local-pool", func(t *testing.T) ClientOption { return func(*Client) {} }},
		{"remote-1-node", func(t *testing.T) ClientOption {
			return WithExecutor(startFleet(t, 1, nil).executor(t))
		}},
		{"remote-4-node", func(t *testing.T) ClientOption {
			return WithExecutor(startFleet(t, 4, nil).executor(t))
		}},
		{"remote-4-node-faulted", func(t *testing.T) ClientOption {
			return WithExecutor(startFleet(t, 4, faultPlans).executor(t))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// One fleet per case: its workers' fixture caches stay warm
			// across the two Workers settings, which only changes how
			// many cells the coordinator keeps outstanding.
			opt := tc.build(t)
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					_, events, exp := drainJob(t, NewClient(opt), fleetSpec(workers))
					if got := marshalNormalized(t, events); !bytes.Equal(got, baseline) {
						t.Errorf("event stream differs from local Workers=1 baseline:\n--- got ---\n%s--- want ---\n%s", got, baseline)
					}
					if got := exp.Table1(); got != t1 {
						t.Errorf("Table I differs:\n%s\n--- want ---\n%s", got, t1)
					}
					if got := exp.Table3(); got != t3 {
						t.Errorf("Table III differs:\n%s\n--- want ---\n%s", got, t3)
					}
				})
			}
		})
	}
}

// TestFleetWorkerDeathMidRun kills one node of a 4-node fleet the
// moment it tries to deliver its second result — the result dies with
// it — and requires the run to finish with byte-identical output
// anyway: the coordinator must detect the death, requeue the node's
// cells (including the one whose result was lost), and let the
// survivors steal the work.
func TestFleetWorkerDeathMidRun(t *testing.T) {
	_, baseEvents, baseExp := drainJob(t, NewClient(), fleetSpec(1))
	baseline := marshalNormalized(t, baseEvents)

	const victim = "fleet-1:1"
	fleet := startFleet(t, 4, map[string]faults.NodePlan{
		victim: {Seed: 3, KillAtResult: 2},
	})
	rex := fleet.executor(t)
	_, events, exp := drainJob(t, NewClient(WithExecutor(rex)), fleetSpec(8))

	if got := marshalNormalized(t, events); !bytes.Equal(got, baseline) {
		t.Errorf("event stream differs after worker death:\n--- got ---\n%s--- want ---\n%s", got, baseline)
	}
	if got, want := exp.Table1(), baseExp.Table1(); got != want {
		t.Errorf("Table I differs after worker death:\n%s\n--- want ---\n%s", got, want)
	}

	if !fleet.injectors[victim].Killed() {
		t.Fatal("kill schedule never fired: the victim executed fewer than 2 cells")
	}
	var victimStats *NodeStats
	var stolen uint64
	stats, ok := NewClient(WithExecutor(rex)).FleetStats()
	if !ok {
		t.Fatal("FleetStats unavailable")
	}
	for i := range stats {
		stolen += stats[i].Stolen
		if stats[i].Addr == victim {
			victimStats = &stats[i]
		}
	}
	if victimStats == nil {
		t.Fatalf("victim %s missing from fleet stats", victim)
	}
	if victimStats.Healthy {
		t.Error("victim still marked healthy after its death")
	}
	if victimStats.Requeued == 0 {
		t.Error("no cells requeued off the dead node")
	}
	if stolen == 0 {
		t.Error("no cells recorded as stolen during recovery")
	}
}
