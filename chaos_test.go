package correctbench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"correctbench/internal/faults"
	"correctbench/internal/store"
)

// chaosSpec is the Table-1 subset the chaos differentials run: small
// enough to iterate, wide enough to cover CMB and SEQ cells.
var chaosSpec = ExperimentSpec{Seed: 47, Reps: 1, Problems: []string{"halfadd", "dff"}, Workers: 4}

const chaosCells = 3 * 2 // methods x problems

// cellCount tallies CellFinished events in a stream.
func cellCount(events []Event) int {
	n := 0
	for _, ev := range events {
		if _, ok := ev.(CellFinished); ok {
			n++
		}
	}
	return n
}

// TestChaosDifferentialFaultSchedules is the tentpole acceptance
// criterion: under distinct seeded fault schedules — transient write
// errors, lost acknowledgements, and a store that dies a few
// operations in — the job completes with zero lost cells, an event
// stream byte-identical to the fault-free run, and identical tables.
// The only thing faults may change is the accounting.
func TestChaosDifferentialFaultSchedules(t *testing.T) {
	_, cleanEvents, cleanExp := drainJob(t, NewClient(), chaosSpec)
	ref := marshalNormalized(t, cleanEvents)
	refTable := cleanExp.Table1()

	schedules := []struct {
		name     string
		plan     faults.Plan
		degraded bool // the schedule must trip the breaker
	}{
		{name: "transient_errors", plan: faults.Plan{
			Seed: 101, PutErrorRate: 0.5, GetMissRate: 0.3,
			LatencyRate: 0.3, MaxLatency: 2 * time.Millisecond,
		}},
		{name: "lost_acks", plan: faults.Plan{
			Seed: 102, LostAckRate: 0.5, PutErrorRate: 0.2,
			CellDelayRate: 0.5, MaxCellDelay: 2 * time.Millisecond,
		}},
		{name: "store_dies", plan: faults.Plan{Seed: 103, FailAfterOps: 3}, degraded: true},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			fs := faults.Wrap(NewMemoryStore(0), sched.plan)
			c := NewClient(WithStore(fs))
			job, events, exp := drainJob(t, c, chaosSpec)
			if got := cellCount(events); got != chaosCells {
				t.Fatalf("lost cells: stream has %d CellFinished, want %d", got, chaosCells)
			}
			if got := marshalNormalized(t, events); !bytes.Equal(got, ref) {
				t.Errorf("event stream diverged from the clean run under %s faults", sched.name)
			}
			if exp.Table1() != refTable {
				t.Errorf("Table 1 diverged under %s faults", sched.name)
			}
			snap := job.Snapshot()
			if sched.degraded && !snap.StoreDegraded {
				t.Errorf("schedule %s did not degrade the run: %+v", sched.name, snap)
			}
			if c := fs.Counts(); c.PutErrors+c.LostAcks+c.GetMisses+c.DeadOps == 0 {
				t.Fatalf("schedule %s injected nothing — the differential proved nothing", sched.name)
			}
		})
	}
}

// TestChaosTornWritesCrashReopen covers the crash schedule: a faulted
// cold run populates a disk store, the process "crashes" leaving torn
// shard tails (TearShards), and the reopened store serves a resumed
// run that re-simulates the lost cells — with an event stream still
// byte-identical to the clean run.
func TestChaosTornWritesCrashReopen(t *testing.T) {
	_, cleanEvents, cleanExp := drainJob(t, NewClient(), chaosSpec)
	ref := marshalNormalized(t, cleanEvents)

	dir := t.TempDir()
	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewClient(WithStore(faults.Wrap(st, faults.Plan{Seed: 104, LostAckRate: 0.4})))
	_, coldEvents, _ := drainJob(t, cold, chaosSpec)
	if got := marshalNormalized(t, coldEvents); !bytes.Equal(got, ref) {
		t.Error("faulted cold run's stream diverged from the clean run")
	}
	if err := cold.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Crash: tear the shard tails. The tear coin is per (seed, file);
	// walk seeds until the schedule tears at least one shard so the
	// test always exercises the torn-record path.
	torn := 0
	for seed := int64(1); torn == 0 && seed < 32; seed++ {
		if torn, err = faults.TearShards(dir, seed); err != nil {
			t.Fatal(err)
		}
	}
	if torn == 0 {
		t.Fatal("no shard torn across 31 seeds")
	}

	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewClient(WithStore(st2))
	defer warm.Close(context.Background())
	job, warmEvents, warmExp := drainJob(t, warm, chaosSpec)
	if got := cellCount(warmEvents); got != chaosCells {
		t.Fatalf("resumed run lost cells: %d != %d", got, chaosCells)
	}
	if got := marshalNormalized(t, warmEvents); !bytes.Equal(got, ref) {
		t.Error("resumed run's stream diverged from the clean run after torn shards")
	}
	if warmExp.Table1() != cleanExp.Table1() {
		t.Error("resumed Table 1 diverged after torn shards")
	}
	// A torn tail clips the shard's last record, so at least one cell
	// per torn shard must have been re-simulated.
	if snap := job.Snapshot(); snap.StoreMisses < torn {
		t.Errorf("store misses = %d after %d torn shards; the tear lost nothing", snap.StoreMisses, torn)
	}
}

// TestChaosDrainWithInflightFaultedWrites is the SIGTERM path: the
// client closes (cancelling jobs, draining write-backs) while a job
// is mid-flight against an erroring, slow store — Close must return
// promptly, and a resumed run against the surviving store bytes must
// still match the clean stream.
func TestChaosDrainWithInflightFaultedWrites(t *testing.T) {
	spec := ExperimentSpec{Seed: 47, Reps: 1, Problems: testProblems, Workers: 2}
	total := 3 * len(testProblems)
	_, cleanEvents, _ := drainJob(t, NewClient(), spec)
	ref := marshalNormalized(t, cleanEvents)

	dir := t.TempDir()
	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithStore(faults.Wrap(st, faults.Plan{
		Seed: 105, PutErrorRate: 0.6, LatencyRate: 0.5, MaxLatency: 2 * time.Millisecond,
	})))
	job, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one faulted write-back happen before the drain.
	for ev := range job.Events() {
		if _, ok := ev.(CellFinished); ok {
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := c.Close(ctx); err != nil {
		t.Fatalf("drain against a faulted store failed: %v", err)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("drain took %v — write-back retries are not bounded by the drain context", d)
	}

	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewClient(WithStore(st2))
	defer resumed.Close(context.Background())
	_, events, _ := drainJob(t, resumed, spec)
	if got := cellCount(events); got != total {
		t.Fatalf("resumed run lost cells: %d != %d", got, total)
	}
	if got := marshalNormalized(t, events); !bytes.Equal(got, ref) {
		t.Error("resumed run's stream diverged from the clean run after a faulted drain")
	}
}

// erroringStore fails every Put (after an optional artificial delay)
// but serves Gets; the shape of a store whose disk died mid-flight.
type erroringStore struct {
	mu   sync.Mutex
	puts int
}

func (e *erroringStore) Get(store.Key) (store.Outcome, bool) { return store.Outcome{}, false }
func (e *erroringStore) Put(store.Key, store.Outcome) error {
	e.mu.Lock()
	e.puts++
	e.mu.Unlock()
	return errors.New("erroring store: disk gone")
}
func (e *erroringStore) Stats() store.Stats { return store.Stats{Backend: "erroring"} }
func (e *erroringStore) Close() error       { return nil }

// TestFaultedStoreCloseDrain is the satellite: Client.Close(ctx) must
// drain cleanly and inside its deadline when every write-back errors
// — previously only the happy path was covered.
func TestFaultedStoreCloseDrain(t *testing.T) {
	c := NewClient(WithStore(&erroringStore{}))
	spec := ExperimentSpec{Seed: 47, Reps: 1, Problems: testProblems, Workers: 2}
	job, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for ev := range job.Events() {
		if _, ok := ev.(CellFinished); ok {
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatalf("Close against an erroring store: %v", err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("drained job err = %v, want context.Canceled", err)
	}
	// The job is fully terminated: its stream replays and closes.
	done := false
	for ev := range job.Events() {
		if _, ok := ev.(JobDone); ok {
			done = true
		}
	}
	if !done {
		t.Error("drained job's stream has no JobDone")
	}
}

// blockingStore parks every Get until released, which keeps a
// store-backed job deterministically in-flight — the saturation tests
// use it to hold a job slot open without racing wall clocks.
type blockingStore struct {
	release chan struct{}
	once    sync.Once
}

func newBlockingStore() *blockingStore { return &blockingStore{release: make(chan struct{})} }

func (b *blockingStore) unblock() { b.once.Do(func() { close(b.release) }) }

func (b *blockingStore) Get(store.Key) (store.Outcome, bool) {
	<-b.release
	return store.Outcome{}, false
}
func (b *blockingStore) Put(store.Key, store.Outcome) error { return nil }
func (b *blockingStore) Stats() store.Stats                 { return store.Stats{Backend: "blocking"} }
func (b *blockingStore) Close() error                       { return nil }

// waitGoroutines polls until the goroutine count settles back to at
// most base+slack, failing the test if it never does (a leak).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d now vs %d at start", runtime.NumGoroutine(), base)
}

// TestChaosServiceSaturation pins the admission-control contract: a
// saturated server answers 429 with Retry-After instead of queueing,
// frees the slot when the job ends, and leaks no goroutines.
func TestChaosServiceSaturation(t *testing.T) {
	base := runtime.NumGoroutine()
	bs := newBlockingStore()
	c := NewClient(WithStore(bs))
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{
		MaxActiveJobs: 1,
		RetryAfter:    3 * time.Second,
	})))
	defer ts.Close()

	submit := func() *http.Response {
		t.Helper()
		return postJSON(t, ts.URL+"/v1/experiments", chaosSpec)
	}
	resp := submit()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	resp.Body.Close()

	resp = submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	resp.Body.Close()

	// Release the held job; its completion frees the slot.
	bs.unblock()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp = submit()
		if resp.StatusCode == http.StatusAccepted {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job slot never freed after the first job finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, j := range c.Jobs() {
		<-j.done
	}
	ts.Close()
	waitGoroutines(t, base)
}

// TestChaosPerClientQuota: one tenant at its cap is refused while
// another is admitted — the quota is per client, not global.
func TestChaosPerClientQuota(t *testing.T) {
	bs := newBlockingStore()
	defer bs.unblock()
	c := NewClient(WithStore(bs))
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{MaxJobsPerClient: 1})))
	defer ts.Close()

	submitAs := func(id string) *http.Response {
		t.Helper()
		body := strings.NewReader(fmt.Sprintf(`{"seed":47,"reps":1,"problems":["halfadd"],"workers":1,"llm":"","criterion":""}`))
		req, err := http.NewRequest("POST", ts.URL+"/v1/experiments", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := submitAs("tenant-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-a first submit: %s", resp.Status)
	}
	resp.Body.Close()
	resp = submitAs("tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over quota: %s, want 429", resp.Status)
	}
	resp.Body.Close()
	resp = submitAs("tenant-b")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-b blocked by tenant-a's quota: %s", resp.Status)
	}
	resp.Body.Close()
	bs.unblock()
	for _, j := range c.Jobs() {
		<-j.done
	}
}

// TestChaosRateLimit: the per-client token bucket refuses the burst
// overflow with 429 + Retry-After.
func TestChaosRateLimit(t *testing.T) {
	c := NewClient()
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{RatePerSec: 0.001, Burst: 2})))
	defer ts.Close()

	codes := []int{}
	for i := 0; i < 3; i++ {
		// An invalid body still spends a token — rate limiting happens
		// before any request work.
		resp := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"problems": []string{"nosuch"}})
		codes = append(codes, resp.StatusCode)
		resp.Body.Close()
	}
	want := []int{http.StatusBadRequest, http.StatusBadRequest, http.StatusTooManyRequests}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d: status %d, want %d (all: %v)", i, codes[i], want[i], codes)
		}
	}
}

// TestFaultBodyTooLarge: oversized submit and grade bodies map to 413
// via MaxBytesReader, not an unbounded read then 400.
func TestFaultBodyTooLarge(t *testing.T) {
	c := NewClient()
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{MaxBodyBytes: 128})))
	defer ts.Close()

	big := fmt.Sprintf(`{"problems":[%q]}`, strings.Repeat("x", 4096))
	for _, path := range []string{"/v1/experiments", "/v1/grade"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with oversized body: %s, want 413", path, resp.Status)
		}
		resp.Body.Close()
	}
}

// TestFaultStatusMapping pins the reworked statusFor: client
// disconnects are 499, server deadlines 504, drain cancellations 503,
// and everything else 500 — the old code folded the first three into
// 408.
func TestFaultStatusMapping(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	live := context.Background()
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want int
	}{
		{"client_closed", cancelled, context.Canceled, statusClientClosedRequest},
		{"server_deadline", live, context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"drain_cancel", live, context.Canceled, http.StatusServiceUnavailable},
		{"other", live, errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.ctx, tc.err); got != tc.want {
			t.Errorf("%s: statusFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestFaultGradeTimeout: a server-imposed request timeout surfaces as
// 504 on the grade endpoint.
func TestFaultGradeTimeout(t *testing.T) {
	c := NewClient()
	ts := httptest.NewServer(NewServer(c, WithLimits(Limits{RequestTimeout: time.Nanosecond})))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/grade", map[string]any{"problem": "halfadd", "seed": 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out grade: %s, want 504", resp.Status)
	}
}

// TestFaultPanicRecovery: a panicking handler answers 500 and the
// server keeps serving; http.ErrAbortHandler passes through untouched.
func TestFaultPanicRecovery(t *testing.T) {
	calls := 0
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %s, want 500", resp.Status)
	}
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: %s, want 200 — the daemon must survive", resp.Status)
	}

	abort := recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed instead of re-raised")
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}
