package correctbench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	c := NewClient()
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)
	return ts, c
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServiceSmoke is the end-to-end service check the CI smoke job
// runs: submit a 2-problem experiment over HTTP, stream its NDJSON
// events to completion, and assert the streamed Table I matches the
// in-process run of the same spec.
func TestServiceSmoke(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := ExperimentSpec{Seed: 11, Reps: 1, Problems: []string{"adder4", "dff"}}

	resp := postJSON(t, ts.URL+"/v1/experiments", struct {
		ExperimentSpec
		Stream bool `json:"stream"`
	}{spec, true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}

	var (
		table string
		cells int
		done  bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch e := ev.(type) {
		case CellFinished:
			cells++
		case TableReady:
			if e.Name == "table1" {
				table = e.Text
			}
		case JobDone:
			if e.Err != nil {
				t.Fatalf("job failed: %v", e.Err)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done || cells != 6 {
		t.Fatalf("stream incomplete: done=%v cells=%d", done, cells)
	}

	job, err := NewClient().Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if table != exp.Table1() {
		t.Errorf("streamed Table I differs from in-process run:\n%s\n---\n%s", table, exp.Table1())
	}
	if !strings.Contains(table, "CorrectBench") {
		t.Errorf("table snippet missing methods:\n%s", table)
	}
}

func TestServiceSubmitSnapshotAndEvents(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/experiments", ExperimentSpec{
		Seed: 3, Reps: 1, Problems: []string{"halfadd"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %s", resp.Status)
	}
	var sub struct {
		ID         string `json:"id"`
		TotalCells int    `json:"total_cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" || sub.TotalCells != 3 {
		t.Fatalf("submit response %+v", sub)
	}

	// The detached events stream replays history and follows to done.
	eresp, err := http.Get(ts.URL + "/v1/experiments/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var done bool
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := UnmarshalEvent(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if jd, ok := ev.(JobDone); ok {
			if jd.Err != nil {
				t.Fatalf("job failed: %v", jd.Err)
			}
			done = true
		}
	}
	if !done {
		t.Fatal("events stream ended without job_done")
	}

	sresp, err := http.Get(ts.URL + "/v1/experiments/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != JobSucceeded || snap.CellsDone != 3 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.Tables["table1"] == "" {
		t.Error("snapshot missing table1")
	}

	if r, err := http.Get(ts.URL + "/v1/experiments/nope"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %v %v", r.Status, err)
	}
}

func TestServiceCancel(t *testing.T) {
	ts, c := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/experiments", ExperimentSpec{
		Seed: 5, Reps: 20, Problems: testProblems, Workers: 2,
	})
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %s", dresp.Status)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Job(sub.ID).Wait(waitCtx); err == nil {
		t.Fatal("cancelled job completed successfully")
	}
	if s := c.Job(sub.ID).Snapshot(); s.State != JobCanceled {
		t.Errorf("state = %s, want canceled", s.State)
	}
}

// TestServiceStreamDisconnectCancelsJob asserts the acceptance
// criterion that a streaming submitter's disconnect stops the
// workers: the job's lifetime is bound to the request context.
func TestServiceStreamDisconnectCancelsJob(t *testing.T) {
	ts, c := newTestServer(t)
	raw, _ := json.Marshal(struct {
		ExperimentSpec
		Stream bool `json:"stream"`
	}{ExperimentSpec{Seed: 7, Reps: 20, Problems: testProblems, Workers: 2}, true})
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Read a single event so the job is provably running, then drop
	// the connection.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	jobs := c.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := jobs[0].Wait(waitCtx); err == nil {
		t.Fatal("job survived client disconnect")
	}
	if s := jobs[0].Snapshot(); s.State != JobCanceled {
		t.Errorf("state = %s, want canceled", s.State)
	}
}

func TestServiceLists(t *testing.T) {
	ts, _ := newTestServer(t)
	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var problems []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(get("/v1/problems"), &problems); err != nil {
		t.Fatal(err)
	}
	if len(problems) != 156 {
		t.Errorf("problems = %d", len(problems))
	}
	// Responses are byte-stable (the caching contract).
	if a, b := get("/v1/problems"), get("/v1/problems"); !bytes.Equal(a, b) {
		t.Error("/v1/problems is not byte-stable")
	}
	var llms, criteria []string
	if err := json.Unmarshal(get("/v1/llms"), &llms); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get("/v1/criteria"), &criteria); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(llms) != fmt.Sprint(LLMNames()) || fmt.Sprint(criteria) != fmt.Sprint(CriterionNames()) {
		t.Errorf("lists differ from facade: %v %v", llms, criteria)
	}
}

func TestServiceGrade(t *testing.T) {
	ts, _ := newTestServer(t)

	// Generate-and-grade path.
	resp := postJSON(t, ts.URL+"/v1/grade", map[string]any{"problem": "adder4", "seed": 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	var gr struct {
		Grade     string `json:"grade"`
		Generated bool   `json:"generated"`
		Scenarios int    `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	if !gr.Generated || gr.Scenarios == 0 || gr.Grade == "Failed" {
		t.Errorf("grade response %+v", gr)
	}

	// Explicit-testbench path: the golden checker with a tiny stimulus
	// set parses and passes the golden RTL (Eval1+).
	resp2 := postJSON(t, ts.URL+"/v1/grade", map[string]any{
		"problem": "halfadd",
		"seed":    1,
		"testbench": map[string]any{
			"checker_source": ProblemByName("halfadd").Source,
			"scenarios": []map[string]any{
				{"name": "s1", "steps": []map[string]uint64{
					{"a": 0, "b": 0}, {"a": 1, "b": 1}, {"a": 1, "b": 0},
				}},
			},
		},
	})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp2.Status)
	}
	var gr2 struct {
		Grade     string `json:"grade"`
		Generated bool   `json:"generated"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&gr2); err != nil {
		t.Fatal(err)
	}
	if gr2.Generated {
		t.Error("explicit testbench reported as generated")
	}
	if gr2.Grade != "Eval1" && gr2.Grade != "Eval2" {
		t.Errorf("golden-checker testbench graded %s", gr2.Grade)
	}

	// Error paths.
	if r := postJSON(t, ts.URL+"/v1/grade", map[string]any{"problem": "nope"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown problem: %s", r.Status)
	}
	if r := postJSON(t, ts.URL+"/v1/grade", map[string]any{"problem": "adder4", "llm": "gpt-9"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad task spec: %s", r.Status)
	}
	if r := postJSON(t, ts.URL+"/v1/experiments", map[string]any{"llm": "gpt-9"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown llm: %s", r.Status)
	}
}

// TestServiceStoreStats covers GET /v1/store/stats and the snapshot
// counters on a store-backed server: 404 without a store, live
// counters with one, and resume-by-spec visible as a fully warm
// resubmit.
func TestServiceStoreStats(t *testing.T) {
	// Without a store the endpoint 404s.
	plain, _ := newTestServer(t)
	resp, err := http.Get(plain.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no-store stats status = %s, want 404", resp.Status)
	}

	c := NewClient(WithStore(NewMemoryStore(0)))
	ts := httptest.NewServer(NewServer(c))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { c.Close(context.Background()) })

	submit := func() Snapshot {
		resp := postJSON(t, ts.URL+"/v1/experiments", ExperimentSpec{
			Seed: 3, Reps: 1, Problems: []string{"halfadd", "dff"},
		})
		defer resp.Body.Close()
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Job(sub.ID).Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		sresp, err := http.Get(ts.URL + "/v1/experiments/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	coldSnap := submit()
	if coldSnap.StoreHits != 0 || coldSnap.StoreMisses != 6 {
		t.Errorf("cold snapshot counters = %d/%d, want 0/6", coldSnap.StoreHits, coldSnap.StoreMisses)
	}
	warmSnap := submit() // resume-by-spec: identical spec, fully warm
	if warmSnap.StoreHits != 6 || warmSnap.StoreMisses != 0 {
		t.Errorf("warm snapshot counters = %d/%d, want 6/0", warmSnap.StoreHits, warmSnap.StoreMisses)
	}
	if warmSnap.Tables["table1"] != coldSnap.Tables["table1"] {
		t.Error("warm resubmit rendered a different Table I")
	}

	var stats StoreStats
	resp, err = http.Get(ts.URL + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Backend != "memory" || stats.Entries != 6 || stats.Hits != 6 || stats.Misses != 6 {
		t.Errorf("stats = %+v, want memory/6 entries/6 hits/6 misses", stats)
	}
}
