package testbench

// Batched testbench runs: N DUT variants (typically mutants of one
// golden design) advance through every scenario together on a single
// sim.BatchInstance, sharing one checker simulation. The scalar path
// re-simulates the checker once per DUT even though its trajectory is
// DUT-independent; here the checker runs once per testbench — its
// output samples are recorded into a trace (batchTrace) the first
// time and replayed for every batch — and the DUT side shares one
// compiled batch program across all lanes.
//
// With earlyExit=false a lane's outcome is identical to
// RunAgainstDesignContext for the same design: the same ScenarioPass
// vector and an error exactly when the scalar run errors
// (TestBatchRunMatchesScalar asserts this over mutated DUTs). With
// earlyExit=true, lanes stop simulating once a scenario has failed;
// the overall Pass()/error verdict is unchanged but later
// ScenarioPass entries stay false — the mode AutoEval's kill checks
// use.

import (
	"context"
	"fmt"

	"correctbench/internal/dataset"
	"correctbench/internal/logic"
	"correctbench/internal/obs"
	"correctbench/internal/sim"
)

// BatchOutcome is one DUT's result from a batched run: exactly one of
// Res and Err is set, mirroring RunAgainstDesignContext's return.
type BatchOutcome struct {
	Res *RunResult
	Err error
}

// checkerTrace is one complete checker simulation, recorded sample by
// sample in the exact order the scalar runner interleaves the checker
// with a DUT. Samples hold the live vectors (the engine never mutates
// a stored vector in place — writes install fresh vectors — so no
// clone is needed) and are only ever read during replay.
type checkerTrace struct {
	outs      []string // output port order of every sample row
	scenarios []scenarioTrace
}

type scenarioTrace struct {
	pre  [][]traceSample // [step][output], sampled before the clock edge
	post [][]traceSample // [step][output], sampled after the edge (SEQ)
	// fail is the checker-side simulation error that ended this
	// scenario, if any; every scalar run errors at the same point, so
	// the trace stops here (later scenarios are unreachable).
	fail *traceFail
}

type traceFail struct {
	step  int // step index, -1 for scenario init
	phase int // 0 init, 1 step, 2 tick
	err   error
}

type traceSample struct {
	val logic.Vector
	ok  bool // false when the checker had no readable value (Get error)
}

// batchTrace simulates the checker once over all scenarios and caches
// the recorded trace on the testbench, keyed on checker source, engine
// and the output port list being compared. Only checker elaboration
// failures are returned as errors; simulation failures are part of the
// trace (they decide run outcomes, exactly as a live checker would).
// The build is never bound to a context: trace contents must not
// depend on a caller's cancellation.
func (tb *Testbench) batchTrace(outs []string) (*checkerTrace, error) {
	if tb.cachedTrace != nil && tb.cachedTraceSrc == tb.CheckerSource &&
		tb.cachedTraceEng == tb.Engine && sameStrings(tb.cachedTrace.outs, outs) {
		return tb.cachedTrace, nil
	}
	cd, err := tb.checkerDesign()
	if err != nil {
		return nil, err
	}
	p := tb.Problem
	chk := sim.NewInstanceEngine(cd, tb.Engine)
	tr := &checkerTrace{outs: outs}
	for i, sc := range tb.Scenarios {
		if i > 0 {
			chk.Reset()
		}
		st := scenarioTrace{}
		if err := tb.initScenario(chk); err != nil {
			st.fail = &traceFail{step: -1, phase: 0, err: err}
			tr.scenarios = append(tr.scenarios, st)
			break
		}
		for si, step := range sc.Steps {
			if err := applyStep(chk, step); err != nil {
				st.fail = &traceFail{step: si, phase: 1, err: err}
				break
			}
			st.pre = append(st.pre, sampleOutputs(chk, outs))
			if p.Kind == dataset.SEQ {
				if err := chk.Tick(p.Clock); err != nil {
					st.fail = &traceFail{step: si, phase: 2, err: err}
					break
				}
				st.post = append(st.post, sampleOutputs(chk, outs))
			}
		}
		tr.scenarios = append(tr.scenarios, st)
		if st.fail != nil {
			break
		}
	}
	tb.cachedTrace = tr
	tb.cachedTraceSrc = tb.CheckerSource
	tb.cachedTraceEng = tb.Engine
	return tr, nil
}

// WarmBatchTrace records the checker trace for batched runs against
// DUTs sharing base's port list, so a testbench warmed under its
// owner's control (like ElaborateChecker) is afterwards read-only and
// safe for concurrent batched runs.
func (tb *Testbench) WarmBatchTrace(base *sim.Design) error {
	if err := tb.ElaborateChecker(); err != nil {
		return err
	}
	_, err := tb.batchTrace(outputPorts(base))
	return err
}

func sampleOutputs(chk *sim.Instance, outs []string) []traceSample {
	samples := make([]traceSample, len(outs))
	for i, o := range outs {
		v, err := chk.Get(o)
		samples[i] = traceSample{val: v, ok: err == nil}
	}
	return samples
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunBatchAgainstDesigns is RunBatchAgainstDesignsContext without
// cancellation.
func (tb *Testbench) RunBatchAgainstDesigns(base *sim.Design, duts []*sim.Design, earlyExit bool) []BatchOutcome {
	out, _ := tb.RunBatchAgainstDesignsContext(context.Background(), base, duts, earlyExit)
	return out
}

// RunBatchAgainstDesignsContext runs every DUT design against the
// testbench in one batched pass. base is the design the batch programs
// are compiled against (the golden design the duts are mutants of; any
// dut may alias it). Compilation is split (sim.CompileBatchSplit):
// static variants share a levelized program, the rest batch under a
// separate event-driven program. DUTs every program rejects — and
// every DUT, when the base itself cannot batch-compile — fall back to
// individual scalar runs, so the result is total: out[i] always
// corresponds to duts[i]. The returned error is non-nil only on
// context cancellation.
func (tb *Testbench) RunBatchAgainstDesignsContext(ctx context.Context, base *sim.Design, duts []*sim.Design, earlyExit bool) ([]BatchOutcome, error) {
	out := make([]BatchOutcome, len(duts))
	trace, err := tb.batchTrace(outputPorts(base))
	if err != nil {
		err = fmt.Errorf("checker: %w", err)
		for i := range out {
			out[i].Err = err
		}
		return out, nil
	}
	progs, idxs, perr := sim.CompileBatchSplit(base, duts)
	if perr != nil {
		// Wholesale fallback: the base itself cannot batch-compile.
		for i := range duts {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			res, err := tb.RunAgainstDesignContext(ctx, duts[i])
			out[i] = BatchOutcome{Res: res, Err: err}
		}
		return out, nil
	}
	return out, tb.runBatchPrograms(ctx, progs, idxs, trace, out, earlyExit)
}

// RunBatchProgram is RunBatchProgramContext without cancellation.
func (tb *Testbench) RunBatchProgram(prog *sim.BatchProgram, earlyExit bool) []BatchOutcome {
	out, _ := tb.RunBatchProgramContext(context.Background(), prog, earlyExit)
	return out
}

// RunBatchProgramContext is RunBatchAgainstDesignsContext for a
// precompiled program: callers that run the same DUT set repeatedly
// (graders, benchmark passes) compile once with sim.CompileBatch and
// skip the per-call compile. Outcomes are indexed like
// prog.Variants().
func (tb *Testbench) RunBatchProgramContext(ctx context.Context, prog *sim.BatchProgram, earlyExit bool) ([]BatchOutcome, error) {
	idx := make([]int, len(prog.Variants()))
	for i := range idx {
		idx[i] = i
	}
	return tb.RunBatchProgramsContext(ctx, []*sim.BatchProgram{prog}, [][]int{idx}, earlyExit)
}

// RunBatchPrograms is RunBatchProgramsContext without cancellation.
func (tb *Testbench) RunBatchPrograms(progs []*sim.BatchProgram, idx [][]int, earlyExit bool) []BatchOutcome {
	out, _ := tb.RunBatchProgramsContext(context.Background(), progs, idx, earlyExit)
	return out
}

// RunBatchProgramsContext runs a precompiled program set — typically
// the (programs, index lists) pair from sim.CompileBatchSplit — in one
// batched pass. idx[k][i] gives the outcome slot of progs[k]'s i-th
// variant; every program must share the same base design. A variant no
// program accepted falls back to a scalar run, so outcomes are total
// over the indexed variants.
func (tb *Testbench) RunBatchProgramsContext(ctx context.Context, progs []*sim.BatchProgram, idx [][]int, earlyExit bool) ([]BatchOutcome, error) {
	if len(progs) == 0 {
		return nil, nil
	}
	n := 0
	for _, ix := range idx {
		for _, vi := range ix {
			if vi >= n {
				n = vi + 1
			}
		}
	}
	out := make([]BatchOutcome, n)
	trace, err := tb.batchTrace(outputPorts(progs[0].Base()))
	if err != nil {
		err = fmt.Errorf("checker: %w", err)
		for i := range out {
			out[i].Err = err
		}
		return out, nil
	}
	return out, tb.runBatchPrograms(ctx, progs, idx, trace, out, earlyExit)
}

// runBatchPrograms fills out by running every program's lanes and, for
// variants no program accepted, individual scalar fallbacks. The
// returned error is non-nil only on context cancellation.
func (tb *Testbench) runBatchPrograms(ctx context.Context, progs []*sim.BatchProgram, idxs [][]int, trace *checkerTrace, out []BatchOutcome, earlyExit bool) error {
	defer obs.Time(ctx, obs.PhaseRun)()
	// A variant rejected by one program may hold a lane in another
	// (CompileBatchSplit routes non-static variants to the second,
	// event-driven program); only variants no program accepted run
	// scalar.
	handled := make([]bool, len(out))
	dutOf := make([]*sim.Design, len(out))
	for k, p := range progs {
		vs := p.Variants()
		for i := range vs {
			vi := idxs[k][i]
			if dutOf[vi] == nil {
				dutOf[vi] = vs[i]
			}
			if p.VariantLane(i) >= 0 {
				handled[vi] = true
			}
		}
	}
	for vi, d := range dutOf {
		if handled[vi] || d == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := tb.RunAgainstDesignContext(ctx, d)
		out[vi] = BatchOutcome{Res: res, Err: err}
	}
	for k, p := range progs {
		if p.Lanes() == 0 {
			continue
		}
		if err := tb.runBatchLanes(ctx, p, idxs[k], trace, out, earlyExit); err != nil {
			return err
		}
	}
	return nil
}

// runBatchLanes runs one program's accepted lanes together and
// scatters their outcomes to out via idx. The returned error is
// non-nil only on context cancellation.
func (tb *Testbench) runBatchLanes(ctx context.Context, prog *sim.BatchProgram, idx []int, trace *checkerTrace, out []BatchOutcome, earlyExit bool) error {
	n := prog.Lanes()
	results := make([]*RunResult, n)
	laneErrs := make([]error, n)
	for lane := 0; lane < n; lane++ {
		results[lane] = &RunResult{ScenarioPass: make([]bool, len(tb.Scenarios))}
	}
	b := sim.NewBatchInstance(prog)
	b.BindContext(ctx)

	// recordLaneErrs harvests lanes newly killed by a simulation error,
	// attributing them like the scalar runner does. The message is
	// only formatted when a lane actually erred — this runs after
	// every step.
	recordLaneErrs := func(format string, args ...interface{}) {
		for lane := 0; lane < n; lane++ {
			if laneErrs[lane] != nil {
				continue
			}
			if le := b.LaneErr(lane); le != nil {
				laneErrs[lane] = fmt.Errorf("dut: "+fmt.Sprintf(format, args...)+": %w", le)
			}
		}
	}
	// failActive gives every still-undecided lane a shared (checker- or
	// stimulus-side) error, which is what each scalar run would return.
	failActive := func(err error) {
		for lane := 0; lane < n; lane++ {
			if laneErrs[lane] == nil && b.Active(lane) {
				laneErrs[lane] = err
				b.Deactivate(lane)
			}
		}
	}

	for i, sc := range tb.Scenarios {
		if err := ctx.Err(); err != nil {
			return err
		}
		if b.ActiveCount() == 0 {
			break
		}
		if i >= len(trace.scenarios) {
			// Unreachable: the trace only stops early after a checker
			// failure, which deactivates every lane below.
			break
		}
		if i > 0 {
			b.Reset()
		}
		if err := tb.runScenarioBatch(ctx, sc, i, b, trace, results, laneErrs, recordLaneErrs, failActive, earlyExit); err != nil {
			return err
		}
	}

	for vi := range prog.Variants() {
		lane := prog.VariantLane(vi)
		if lane < 0 {
			continue // scalar fallback or another program covers it
		}
		if laneErrs[lane] != nil {
			out[idx[vi]] = BatchOutcome{Err: laneErrs[lane]}
		} else {
			out[idx[vi]] = BatchOutcome{Res: results[lane]}
		}
	}
	return nil
}

// runScenarioBatch mirrors runScenario with the DUT side batched and
// the checker side replayed from the recorded trace. Checker failures
// are re-raised at the exact point of the interleaving where a live
// checker would have erred, preserving scalar error attribution (DUT
// errors at the same step win, as the scalar sides order runs the DUT
// first).
func (tb *Testbench) runScenarioBatch(
	ctx context.Context,
	sc Scenario,
	scIdx int,
	b *sim.BatchInstance,
	trace *checkerTrace,
	results []*RunResult,
	laneErrs []error,
	recordLaneErrs func(string, ...interface{}),
	failActive func(error),
	earlyExit bool,
) error {
	p := tb.Problem
	n := b.Lanes()
	st := &trace.scenarios[scIdx]
	chkFail := func(step, phase int) *traceFail {
		if st.fail != nil && st.fail.step == step && st.fail.phase == phase {
			return st.fail
		}
		return nil
	}

	// Init, DUT side first like the scalar sides loop.
	if err := tb.initScenarioBatch(b); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		failActive(fmt.Errorf("dut: scenario %d init: %w", sc.Index, err))
		return nil
	}
	recordLaneErrs("scenario %d init", sc.Index)
	if f := chkFail(-1, 0); f != nil {
		failActive(fmt.Errorf("checker: scenario %d init: %w", sc.Index, f.err))
		return nil
	}

	pass := make([]bool, n)
	for lane := range pass {
		pass[lane] = true
	}
	outSlots := make([]int, len(trace.outs))
	for oi, o := range trace.outs {
		slot, ok := b.SlotOf(o)
		if !ok {
			slot = -1
		}
		outSlots[oi] = slot
	}
	compare := func(samples []traceSample) {
		for oi := range trace.outs {
			s := samples[oi]
			slot := outSlots[oi]
			for lane := 0; lane < n; lane++ {
				if !b.Active(lane) || !pass[lane] {
					continue
				}
				if !s.ok || slot < 0 || !b.GetSlot(slot, lane).SameValue(s.val) {
					pass[lane] = false
				}
			}
		}
	}

	for si, step := range sc.Steps {
		if b.ActiveCount() == 0 {
			return nil
		}
		if err := applyStepBatch(b, step); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			failActive(fmt.Errorf("dut: scenario %d step %d: %w", sc.Index, si, err))
			return nil
		}
		recordLaneErrs("scenario %d step %d", sc.Index, si)
		if f := chkFail(si, 1); f != nil {
			failActive(fmt.Errorf("checker: scenario %d step %d: %w", sc.Index, si, f.err))
			return nil
		}
		// Sample combinational/Mealy outputs before the clock edge.
		compare(st.pre[si])
		if p.Kind == dataset.SEQ {
			if err := b.Tick(p.Clock); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				failActive(fmt.Errorf("dut: scenario %d step %d tick: %w", sc.Index, si, err))
				return nil
			}
			recordLaneErrs("scenario %d step %d tick", sc.Index, si)
			if f := chkFail(si, 2); f != nil {
				failActive(fmt.Errorf("checker: scenario %d step %d tick: %w", sc.Index, si, f.err))
				return nil
			}
			// Sample registered outputs after the edge as well.
			compare(st.post[si])
		}
	}
	for lane := 0; lane < n; lane++ {
		if laneErrs[lane] != nil || !b.Active(lane) {
			continue
		}
		results[lane].ScenarioPass[scIdx] = pass[lane]
		if earlyExit && !pass[lane] {
			b.Deactivate(lane)
		}
	}
	return nil
}

func (tb *Testbench) initScenarioBatch(b *sim.BatchInstance) error {
	p := tb.Problem
	if err := b.ZeroInputs(); err != nil {
		return err
	}
	if p.Kind == dataset.SEQ && p.Reset != "" {
		if err := b.SetInputUint(p.Reset, 1); err != nil {
			return err
		}
		if err := b.Tick(p.Clock); err != nil {
			return err
		}
		if err := b.SetInputUint(p.Reset, 0); err != nil {
			return err
		}
	}
	return nil
}

// applyStepBatch drives one step on every active lane, in the same
// sorted port order as the scalar applyStep. Deferrable batches
// (pure-blocking levelized comb, no sequential processes) apply the
// whole step under a single settle — same final state, one levelized
// pass instead of one per input.
func applyStepBatch(b *sim.BatchInstance, st Step) error {
	deferred := b.InputsDeferrable()
	for _, name := range st.SortedNames() {
		port := b.Design().Port(name)
		if port == nil {
			return fmt.Errorf("stimulus for unknown port %q", name)
		}
		v := logic.FromUint64(port.Width, st.Inputs[name])
		if deferred {
			if err := b.SetInputDeferred(name, v); err != nil {
				return err
			}
			continue
		}
		if err := b.SetInput(name, v); err != nil {
			return err
		}
	}
	return b.Settle()
}
