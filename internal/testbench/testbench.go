// Package testbench defines the hybrid testbench artifact produced by
// the generators and consumed by the validator, corrector and AutoEval:
// a list of test scenarios (stimuli for the Verilog driver track) plus
// a checker (the reference-model track).
//
// Substitution note (see DESIGN.md): AutoBench's checker track is a
// Python program that recomputes reference outputs. Here the checker is
// a Verilog reference module simulated by internal/sim; it produces
// exactly the same information (expected outputs per scenario step),
// and LLM checker bugs are modelled as AST mutations of that module,
// recorded in CheckerPlan. The plan is framework-private bookkeeping —
// the validator never reads it; only the corrector model uses it as the
// stand-in for LLM reasoning about its own code.
//
// Substitution note (engine): where AutoBench shells out to Icarus
// Verilog per run, this framework simulates on internal/sim's compiled
// slot-indexed engine — the design is compiled once at elaboration and
// each scenario replays on pooled, Reset instances. The engine is
// bit-for-bit identical to the reference AST interpreter
// (sim.EngineInterp), so RS matrices and AutoEval verdicts do not
// depend on which engine runs them.
package testbench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"correctbench/internal/dataset"
	"correctbench/internal/logic"
	"correctbench/internal/mutate"
	"correctbench/internal/obs"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

// Step is one stimulus application: drive the data inputs, settle (and
// clock once for sequential DUTs), then sample all outputs.
type Step struct {
	Inputs map[string]uint64

	// names is the sorted key list of Inputs, precomputed once by
	// GenerateScenarios so the per-step hot path never re-sorts. It is
	// never written after generation, keeping concurrent runs of the
	// same testbench read-only.
	names []string
}

// SortedNames returns the step's port names in sorted order, the
// deterministic drive order of applyStep. Hand-built steps (nil cache)
// get a freshly sorted list; the method never mutates the step, so a
// shared testbench stays safe for concurrent runs.
func (st Step) SortedNames() []string {
	if st.names != nil {
		return st.names
	}
	names := make([]string, 0, len(st.Inputs))
	for name := range st.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// freezeNames precomputes the sorted port list.
func (st *Step) freezeNames() {
	if st.names == nil {
		st.names = st.SortedNames()
	}
}

// Scenario is a named group of steps, the unit of the paper's RS-matrix
// columns. Each scenario starts from a freshly reset DUT/checker pair.
type Scenario struct {
	Index int // 1-based, as reported in bug info
	Name  string
	Steps []Step
}

// Testbench is the hybrid testbench.
type Testbench struct {
	Problem   *dataset.Problem
	Scenarios []Scenario

	// Engine selects the simulation engine for both tracks
	// (sim.EngineAuto, the zero value, follows sim.DefaultEngine).
	// The compiled and interpreted engines are bit-for-bit identical;
	// the knob exists for differential tests and benchmarks.
	Engine sim.Engine

	// DriverSource is the generated Verilog driver text. It is emitted
	// from the scenario list (as AutoBench emits its driver) and is
	// what Eval0 checks for the driver track.
	DriverSource string

	// CheckerSource is the checker module text (Eval0's checker track
	// and the simulation source for reference outputs).
	CheckerSource string
	// CheckerTop is the checker module name.
	CheckerTop string

	// CheckerPlan records the faults injected into the checker
	// (empty plan = clean checker). Framework-private.
	CheckerPlan mutate.Plan
	// CheckerSticky is the plan site index of the task's systematic
	// ("misunderstood specification") fault, or -1 when absent.
	CheckerSticky int

	// Tokens spent generating this testbench (filled by generators).
	TokensIn, TokensOut int

	cachedChecker    *sim.Design
	cachedCheckerSrc string

	// Cached checker trace for batched runs (see batchTrace): the
	// checker's trajectory depends only on the stimulus, so one
	// recorded simulation serves every batch of DUTs. Same concurrency
	// convention as cachedChecker: warm it (WarmBatchTrace) before
	// sharing the testbench across goroutines.
	cachedTrace    *checkerTrace
	cachedTraceSrc string
	cachedTraceEng sim.Engine
}

// ScenarioCount returns the number of scenarios.
func (tb *Testbench) ScenarioCount() int { return len(tb.Scenarios) }

// RunResult reports a DUT simulation against the testbench.
type RunResult struct {
	// ScenarioPass[i] is true when scenario i+1 produced outputs equal
	// to the checker's on every step.
	ScenarioPass []bool
}

// Pass reports whether every scenario passed.
func (r *RunResult) Pass() bool {
	for _, ok := range r.ScenarioPass {
		if !ok {
			return false
		}
	}
	return true
}

// FailedScenarios returns the 1-based indexes of failing scenarios.
func (r *RunResult) FailedScenarios() []int {
	var out []int
	for i, ok := range r.ScenarioPass {
		if !ok {
			out = append(out, i+1)
		}
	}
	return out
}

// SyntaxOK reports whether both testbench tracks parse, the Eval0
// criterion for the testbench artifact itself.
func (tb *Testbench) SyntaxOK() bool {
	if _, err := verilog.Parse(tb.DriverSource); err != nil {
		return false
	}
	if _, err := verilog.Parse(tb.CheckerSource); err != nil {
		return false
	}
	return true
}

// ElaborateChecker elaborates and caches the checker track ahead of
// time. A testbench is not safe for concurrent runs while the cache
// is cold (the first run fills it); warming it under the owner's
// control — e.g. inside autoeval's once-guarded fixture build — makes
// subsequent concurrent RunAgainstDesign calls read-only on the
// testbench.
func (tb *Testbench) ElaborateChecker() error {
	_, err := tb.checkerDesign()
	return err
}

// checkerDesign elaborates the checker track, caching the result until
// CheckerSource changes (the validator simulates the same checker
// against N_R RTLs).
func (tb *Testbench) checkerDesign() (*sim.Design, error) {
	return tb.checkerDesignContext(context.Background())
}

// checkerDesignContext is checkerDesign with phase timing: a cold
// cache records sim_elaborate/sim_compile spans on the context's obs
// collector; a warm cache records nothing.
func (tb *Testbench) checkerDesignContext(ctx context.Context) (*sim.Design, error) {
	if tb.cachedChecker != nil && tb.cachedCheckerSrc == tb.CheckerSource {
		return tb.cachedChecker, nil
	}
	d, err := sim.ElaborateSourceContext(ctx, tb.CheckerSource, tb.CheckerTop)
	if err != nil {
		return nil, err
	}
	tb.cachedChecker = d
	tb.cachedCheckerSrc = tb.CheckerSource
	return d, nil
}

// RunAgainstSource simulates the DUT given as Verilog source against
// the testbench. A DUT-side parse/elaboration/simulation failure is
// returned as an error (the caller decides whether that means "discard
// this RTL" — validator rows — or "testbench failed").
func (tb *Testbench) RunAgainstSource(dutSrc, dutTop string) (*RunResult, error) {
	return tb.RunAgainstSourceContext(context.Background(), dutSrc, dutTop)
}

// RunAgainstSourceContext is RunAgainstSource with cancellation: once
// ctx is cancelled the simulation stops within one step batch and the
// context's error is returned (wrapped; test with errors.Is).
func (tb *Testbench) RunAgainstSourceContext(ctx context.Context, dutSrc, dutTop string) (*RunResult, error) {
	dutDesign, err := sim.ElaborateSourceContext(ctx, dutSrc, dutTop)
	if err != nil {
		return nil, fmt.Errorf("dut: %w", err)
	}
	return tb.RunAgainstDesignContext(ctx, dutDesign)
}

// RunAgainstDesign is RunAgainstSource for a pre-elaborated DUT.
//
// The DUT and checker instances are allocated once and pooled across
// scenarios: a scenario reset is an in-place Reset (memclear back to
// all-X), not a reallocation, which matters when the same testbench is
// run over N_R RTLs × N_S scenarios for the RS matrix.
func (tb *Testbench) RunAgainstDesign(dutDesign *sim.Design) (*RunResult, error) {
	return tb.RunAgainstDesignContext(context.Background(), dutDesign)
}

// RunAgainstDesignContext is RunAgainstDesign with cancellation. The
// context is bound to both simulator instances, so a cancellation
// takes effect at the next propagation wave — within one simulation
// step batch — rather than at scenario or run end.
func (tb *Testbench) RunAgainstDesignContext(ctx context.Context, dutDesign *sim.Design) (*RunResult, error) {
	checkerDesign, err := tb.checkerDesignContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("checker: %w", err)
	}
	defer obs.Time(ctx, obs.PhaseRun)()
	res := &RunResult{ScenarioPass: make([]bool, len(tb.Scenarios))}
	outs := outputPorts(dutDesign)
	dut := sim.NewInstanceEngine(dutDesign, tb.Engine)
	chk := sim.NewInstanceEngine(checkerDesign, tb.Engine)
	dut.BindContext(ctx)
	chk.BindContext(ctx)
	for i, sc := range tb.Scenarios {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i > 0 {
			dut.Reset()
			chk.Reset()
		}
		pass, err := tb.runScenario(sc, dut, chk, outs)
		if err != nil {
			return nil, err
		}
		res.ScenarioPass[i] = pass
	}
	return res, nil
}

func outputPorts(d *sim.Design) []string {
	var out []string
	for _, p := range d.Ports {
		if p.Dir == sim.Out {
			out = append(out, p.Name)
		}
	}
	return out
}

// runScenario runs one scenario on freshly reset DUT and checker
// instances and compares sampled outputs step by step. Errors are
// prefixed "dut:" or "checker:" so the validator can attribute
// simulation failures to the right side.
func (tb *Testbench) runScenario(sc Scenario, dut, chk *sim.Instance, outs []string) (bool, error) {
	p := tb.Problem
	sides := []struct {
		label string
		inst  *sim.Instance
	}{{"dut", dut}, {"checker", chk}}

	for _, side := range sides {
		if err := tb.initScenario(side.inst); err != nil {
			return false, fmt.Errorf("%s: scenario %d init: %w", side.label, sc.Index, err)
		}
	}
	pass := true
	for si, st := range sc.Steps {
		for _, side := range sides {
			if err := applyStep(side.inst, st); err != nil {
				return false, fmt.Errorf("%s: scenario %d step %d: %w", side.label, sc.Index, si, err)
			}
		}
		// Sample combinational/Mealy outputs before the clock edge.
		if !sameOutputs(dut, chk, outs) {
			pass = false
		}
		if p.Kind == dataset.SEQ {
			for _, side := range sides {
				if err := side.inst.Tick(p.Clock); err != nil {
					return false, fmt.Errorf("%s: scenario %d step %d tick: %w", side.label, sc.Index, si, err)
				}
			}
			// Sample registered outputs after the edge as well.
			if !sameOutputs(dut, chk, outs) {
				pass = false
			}
		}
	}
	return pass, nil
}

func (tb *Testbench) initScenario(inst *sim.Instance) error {
	p := tb.Problem
	if err := inst.ZeroInputs(); err != nil {
		return err
	}
	if p.Kind == dataset.SEQ && p.Reset != "" {
		if err := inst.SetInputUint(p.Reset, 1); err != nil {
			return err
		}
		if err := inst.Tick(p.Clock); err != nil {
			return err
		}
		if err := inst.SetInputUint(p.Reset, 0); err != nil {
			return err
		}
	}
	return nil
}

// applyStep drives a step's stimuli in sorted port-name order. The
// order matters: SetInput propagates after every input, and designs
// with internal feedback (notably mutated RTLs, which can latch) can
// settle differently depending on which input moves first. Iterating
// the Inputs map directly would inherit Go's randomized map order and
// make such rows of the RS matrix flicker between runs. The sorted
// list is precomputed per step at generation time (SortedNames), not
// re-sorted on every application.
func applyStep(inst *sim.Instance, st Step) error {
	for _, name := range st.SortedNames() {
		port := inst.Design().Port(name)
		if port == nil {
			return fmt.Errorf("stimulus for unknown port %q", name)
		}
		if err := inst.SetInput(name, logic.FromUint64(port.Width, st.Inputs[name])); err != nil {
			return err
		}
	}
	return inst.Settle()
}

func sameOutputs(dut, chk *sim.Instance, outs []string) bool {
	for _, o := range outs {
		dv, err1 := dut.Get(o)
		cv, err2 := chk.Get(o)
		if err1 != nil || err2 != nil {
			return false
		}
		if !dv.SameValue(cv) {
			return false
		}
	}
	return true
}

// ---- golden testbench ----

// Golden builds the reference testbench for a problem: thorough
// stimuli (exhaustive for small combinational input spaces) and the
// unmutated golden checker. AutoEval compares candidate verdicts
// against this testbench's verdicts.
func Golden(p *dataset.Problem, rng *rand.Rand) (*Testbench, error) {
	scenarios, err := GenerateScenarios(p, rng, Coverage{
		Scenarios:  12,
		Steps:      16,
		Corners:    true,
		Exhaustive: true,
	})
	if err != nil {
		return nil, err
	}
	tb := &Testbench{
		Problem:       p,
		Scenarios:     scenarios,
		CheckerSource: p.Source,
		CheckerTop:    p.Top,
		CheckerSticky: -1,
	}
	tb.DriverSource = EmitDriver(tb)
	return tb, nil
}
