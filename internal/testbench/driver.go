package testbench

import (
	"fmt"
	"strings"

	"correctbench/internal/dataset"
	"correctbench/internal/sim"
)

// EmitDriver renders the Verilog driver track from the scenario list,
// in the style of AutoBench's generated drivers (Fig. 3 of the paper):
// a testbench module that instantiates the DUT, applies each scenario's
// stimuli and $displays the sampled signals. The emitted text is what
// Eval0 parses for the driver track, and it runs under cmd/vsim's timed
// scheduler.
func EmitDriver(tb *Testbench) string {
	p := tb.Problem
	d, err := p.Elaborate()
	if err != nil {
		// The golden source always elaborates (dataset invariant); a
		// failure here is a programming error upstream.
		return "// driver emission failed: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("// Auto-generated driver for " + p.Name + "\n")
	sb.WriteString("module " + p.Name + "_tb;\n")

	var ins, outs []sim.Port
	for _, pt := range d.Ports {
		if pt.Dir == sim.Out {
			outs = append(outs, pt)
		} else {
			ins = append(ins, pt)
		}
	}
	for _, pt := range ins {
		fmt.Fprintf(&sb, "    reg %s%s;\n", widthPrefix(pt.Width), pt.Name)
	}
	for _, pt := range outs {
		fmt.Fprintf(&sb, "    wire %s%s;\n", widthPrefix(pt.Width), pt.Name)
	}
	sb.WriteString("    integer scenario;\n")

	// DUT instantiation.
	var conns []string
	for _, pt := range d.Ports {
		conns = append(conns, fmt.Sprintf(".%s(%s)", pt.Name, pt.Name))
	}
	fmt.Fprintf(&sb, "    %s dut(%s);\n", p.Top, strings.Join(conns, ", "))

	if p.Kind == dataset.SEQ {
		sb.WriteString("    always #5 clk = ~clk;\n")
	}

	sb.WriteString("    initial begin\n")
	if p.Kind == dataset.SEQ {
		sb.WriteString("        clk = 0;\n")
	}
	display := displayStatement(p, ins, outs)
	for _, sc := range tb.Scenarios {
		fmt.Fprintf(&sb, "        // Scenario %d: %s\n", sc.Index, sc.Name)
		fmt.Fprintf(&sb, "        scenario = %d;\n", sc.Index)
		if p.Kind == dataset.SEQ && p.Reset != "" {
			fmt.Fprintf(&sb, "        %s = 1; #10 %s = 0;\n", p.Reset, p.Reset)
		}
		for _, st := range sc.Steps {
			var assigns []string
			for _, pt := range ins {
				if p.Kind == dataset.SEQ && (pt.Name == p.Clock || pt.Name == p.Reset) {
					continue
				}
				v, ok := st.Inputs[pt.Name]
				if !ok {
					continue
				}
				assigns = append(assigns, fmt.Sprintf("%s = %d'd%d", pt.Name, pt.Width, v))
			}
			if len(assigns) > 0 {
				fmt.Fprintf(&sb, "        %s;\n", strings.Join(assigns, "; "))
			}
			fmt.Fprintf(&sb, "        #10 %s\n", display)
		}
	}
	sb.WriteString("        $finish;\n")
	sb.WriteString("    end\nendmodule\n")
	return sb.String()
}

func widthPrefix(w int) string {
	if w <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", w-1)
}

func displayStatement(p *dataset.Problem, ins, outs []sim.Port) string {
	var fields, args []string
	fields = append(fields, "scenario: %d")
	args = append(args, "scenario")
	for _, pt := range ins {
		if pt.Name == p.Clock {
			continue
		}
		fields = append(fields, pt.Name+" = %d")
		args = append(args, pt.Name)
	}
	for _, pt := range outs {
		fields = append(fields, pt.Name+" = %d")
		args = append(args, pt.Name)
	}
	return fmt.Sprintf("$display(\"%s\", %s);", strings.Join(fields, ", "), strings.Join(args, ", "))
}
