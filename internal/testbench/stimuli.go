package testbench

import (
	"fmt"
	"math/rand"

	"correctbench/internal/dataset"
	"correctbench/internal/sim"
)

// Coverage controls how much stimulus a generator produces. It is the
// knob that differentiates the baseline's thin testbenches from
// AutoBench's scenario-completed ones (and drives Eval2's mutant-
// killing power).
type Coverage struct {
	// Scenarios is the target scenario count (the paper's N_S).
	Scenarios int
	// Steps is the number of stimulus steps per scenario.
	Steps int
	// Corners adds directed corner-pattern scenarios (all zeros, all
	// ones, walking ones, alternating bits).
	Corners bool
	// Exhaustive enumerates the full input space of small
	// combinational problems instead of sampling it.
	Exhaustive bool
}

// GenerateScenarios builds the scenario list for a problem.
func GenerateScenarios(p *dataset.Problem, rng *rand.Rand, cov Coverage) ([]Scenario, error) {
	ins, err := p.DataInputs()
	if err != nil {
		return nil, err
	}
	if cov.Scenarios < 1 {
		cov.Scenarios = 1
	}
	if cov.Steps < 1 {
		cov.Steps = 1
	}
	var scenarios []Scenario
	if p.Kind == dataset.CMB {
		scenarios = combScenarios(p, ins, rng, cov)
	} else {
		scenarios = seqScenarios(p, ins, rng, cov)
	}
	for i := range scenarios {
		scenarios[i].Index = i + 1
		for s := range scenarios[i].Steps {
			scenarios[i].Steps[s].freezeNames()
		}
	}
	return scenarios, nil
}

func totalBits(ins []sim.Port) int {
	n := 0
	for _, p := range ins {
		n += p.Width
	}
	return n
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// randomStep samples one stimulus for the given inputs, mixing uniform
// values with boundary values (0, max, 1) that exercise carry chains
// and comparators.
func randomStep(ins []sim.Port, rng *rand.Rand) Step {
	st := Step{Inputs: map[string]uint64{}}
	for _, p := range ins {
		var v uint64
		switch rng.Intn(6) {
		case 0:
			v = 0
		case 1:
			v = mask(p.Width)
		case 2:
			v = 1
		default:
			v = rng.Uint64() & mask(p.Width)
		}
		st.Inputs[p.Name] = v
	}
	return st
}

// patternStep drives every input with a fixed bit pattern.
func patternStep(ins []sim.Port, pattern uint64) Step {
	st := Step{Inputs: map[string]uint64{}}
	for _, p := range ins {
		st.Inputs[p.Name] = pattern & mask(p.Width)
	}
	return st
}

func combScenarios(p *dataset.Problem, ins []sim.Port, rng *rand.Rand, cov Coverage) []Scenario {
	bits := totalBits(ins)
	if cov.Exhaustive && bits > 0 && bits <= 10 {
		return exhaustiveScenarios(ins, cov.Scenarios)
	}
	var out []Scenario
	if cov.Corners {
		sc := Scenario{Name: "corner patterns"}
		sc.Steps = append(sc.Steps,
			patternStep(ins, 0),
			patternStep(ins, ^uint64(0)),
			patternStep(ins, 0xAAAAAAAAAAAAAAAA),
			patternStep(ins, 0x5555555555555555),
		)
		// Walking one across each input.
		for _, in := range ins {
			for b := 0; b < in.Width && b < 16; b++ {
				st := patternStep(ins, 0)
				st.Inputs[in.Name] = 1 << uint(b)
				sc.Steps = append(sc.Steps, st)
			}
		}
		out = append(out, sc)
	}
	for len(out) < cov.Scenarios {
		sc := Scenario{Name: fmt.Sprintf("random patterns %d", len(out)+1)}
		for s := 0; s < cov.Steps; s++ {
			sc.Steps = append(sc.Steps, randomStep(ins, rng))
		}
		out = append(out, sc)
	}
	return out
}

// exhaustiveScenarios enumerates every input combination, split across
// the requested number of scenarios.
func exhaustiveScenarios(ins []sim.Port, scenarios int) []Scenario {
	bits := totalBits(ins)
	total := 1 << uint(bits)
	if scenarios > total {
		scenarios = total
	}
	per := (total + scenarios - 1) / scenarios
	var out []Scenario
	for start := 0; start < total; start += per {
		sc := Scenario{Name: fmt.Sprintf("exhaustive %d", len(out)+1)}
		for v := start; v < start+per && v < total; v++ {
			st := Step{Inputs: map[string]uint64{}}
			shift := 0
			for _, in := range ins {
				st.Inputs[in.Name] = (uint64(v) >> uint(shift)) & mask(in.Width)
				shift += in.Width
			}
			sc.Steps = append(sc.Steps, st)
		}
		out = append(out, sc)
	}
	return out
}

// flushNames are 1-bit control inputs that define state in reset-less
// sequential designs when driven high on the first step.
var flushNames = map[string]bool{"load": true, "set": true, "clr": true, "en": true, "ena": true}

func seqScenarios(p *dataset.Problem, ins []sim.Port, rng *rand.Rand, cov Coverage) []Scenario {
	var out []Scenario
	makeScenario := func(name string, stepFn func(step int) Step) Scenario {
		sc := Scenario{Name: name}
		for s := 0; s < cov.Steps; s++ {
			st := stepFn(s)
			if s == 0 && p.Reset == "" {
				// Flush unknown state through the load-style controls.
				for _, in := range ins {
					if in.Width == 1 && flushNames[in.Name] {
						st.Inputs[in.Name] = 1
					}
				}
			}
			sc.Steps = append(sc.Steps, st)
		}
		return sc
	}
	if cov.Corners {
		out = append(out,
			makeScenario("all zeros", func(int) Step { return patternStep(ins, 0) }),
			makeScenario("all ones", func(int) Step { return patternStep(ins, ^uint64(0)) }),
			makeScenario("alternating", func(s int) Step {
				if s%2 == 0 {
					return patternStep(ins, ^uint64(0))
				}
				return patternStep(ins, 0)
			}),
		)
	}
	for len(out) < cov.Scenarios {
		out = append(out, makeScenario(fmt.Sprintf("random walk %d", len(out)+1), func(int) Step {
			return randomStep(ins, rng)
		}))
	}
	return out
}
