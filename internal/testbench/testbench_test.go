package testbench

import (
	"math/rand"
	"strings"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

func golden(t *testing.T, name string) *Testbench {
	t.Helper()
	p := dataset.ByName(name)
	if p == nil {
		t.Fatalf("problem %s not found", name)
	}
	tb, err := Golden(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestGoldenTBPassesGoldenRTL(t *testing.T) {
	for _, name := range []string{"mux2_w4", "adder8", "cnt8", "det101", "shift18", "fifo2", "sevenseg", "prio_enc8"} {
		tb := golden(t, name)
		res, err := tb.RunAgainstSource(tb.Problem.Source, tb.Problem.Top)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Pass() {
			t.Errorf("%s: golden TB fails golden RTL; failing scenarios %v", name, res.FailedScenarios())
		}
	}
}

func TestAllGoldenTBsPassGoldenRTL(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset sweep")
	}
	rng := rand.New(rand.NewSource(11))
	for _, p := range dataset.All() {
		tb, err := Golden(p, rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, err := tb.RunAgainstSource(p.Source, p.Top)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !res.Pass() {
			t.Errorf("%s: golden TB rejects golden RTL (scenarios %v)", p.Name, res.FailedScenarios())
		}
	}
}

func TestMutantFailsGoldenTB(t *testing.T) {
	tb := golden(t, "adder8")
	mod, err := tb.Problem.Module()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	killed := 0
	for i := 0; i < 10; i++ {
		mut, muts := mutate.Mutate(mod, rng, 1)
		if len(muts) == 0 {
			t.Fatal("no mutation applied")
		}
		res, err := tb.RunAgainstSource(verilog.PrintModule(mut), tb.Problem.Top)
		if err != nil {
			continue // mutants that break simulation count as caught
		}
		if !res.Pass() {
			killed++
		}
	}
	if killed < 6 {
		t.Errorf("golden TB killed only %d/10 adder mutants", killed)
	}
}

func TestFaultyCheckerFailsGoldenRTL(t *testing.T) {
	tb := golden(t, "cnt8")
	mod, err := tb.Problem.Module()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	plan := mutate.NewPlan(mod, rng, 1)
	faulty, muts := plan.Build(mod)
	if len(muts) == 0 {
		t.Fatal("no checker fault injected")
	}
	tb.CheckerSource = verilog.PrintModule(faulty)
	tb.CheckerPlan = plan
	res, err := tb.RunAgainstSource(tb.Problem.Source, tb.Problem.Top)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Errorf("golden RTL passed against faulty checker (%v) — fault is behaviourally equivalent?", muts)
	}
}

func TestExhaustiveCoverageForSmallCMB(t *testing.T) {
	p := dataset.ByName("fulladd") // 3 input bits
	scs, err := GenerateScenarios(p, rand.New(rand.NewSource(2)), Coverage{Scenarios: 4, Steps: 4, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[uint64]bool{}
	for _, sc := range scs {
		for _, st := range sc.Steps {
			total++
			key := st.Inputs["a"]<<2 | st.Inputs["b"]<<1 | st.Inputs["cin"]
			seen[key] = true
		}
	}
	if total != 8 || len(seen) != 8 {
		t.Errorf("exhaustive enumeration wrong: %d steps, %d distinct", total, len(seen))
	}
}

func TestScenarioIndexesAreOneBased(t *testing.T) {
	tb := golden(t, "alu8")
	for i, sc := range tb.Scenarios {
		if sc.Index != i+1 {
			t.Fatalf("scenario %d has index %d", i, sc.Index)
		}
	}
	if tb.ScenarioCount() < 2 {
		t.Error("too few scenarios")
	}
}

func TestResetlessSEQFlushedByLoad(t *testing.T) {
	p := dataset.ByName("shift18") // reset-less, load-based
	scs, err := GenerateScenarios(p, rand.New(rand.NewSource(3)), Coverage{Scenarios: 4, Steps: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if v := sc.Steps[0].Inputs["load"]; v != 1 {
			t.Errorf("scenario %q step 0 load = %d, want 1", sc.Name, v)
		}
	}
}

func TestDriverEmissionParsesAndRuns(t *testing.T) {
	for _, name := range []string{"mux2_w4", "cnt4"} {
		tb := golden(t, name)
		if tb.DriverSource == "" {
			t.Fatalf("%s: empty driver", name)
		}
		f, err := verilog.Parse(tb.DriverSource + "\n" + tb.Problem.Source)
		if err != nil {
			t.Fatalf("%s: driver does not parse: %v\n%s", name, err, tb.DriverSource)
		}
		d, err := sim.Elaborate(f, tb.Problem.Name+"_tb")
		if err != nil {
			t.Fatalf("%s: driver does not elaborate: %v", name, err)
		}
		in := sim.NewInstance(d)
		var out strings.Builder
		in.Stdout = &out
		if err := sim.Run(in, 1000000); err != nil {
			t.Fatalf("%s: driver run: %v", name, err)
		}
		if !strings.Contains(out.String(), "scenario: 1") {
			t.Errorf("%s: driver output missing scenario display:\n%.300s", name, out.String())
		}
	}
}

func TestSyntaxOK(t *testing.T) {
	tb := golden(t, "mux2_w4")
	if !tb.SyntaxOK() {
		t.Fatal("golden TB reports syntax error")
	}
	tb.DriverSource = tb.DriverSource[:len(tb.DriverSource)/2]
	if tb.SyntaxOK() {
		t.Error("truncated driver reported as OK")
	}
}
