package testbench

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

// batchDiffDUTs builds a DUT set for a problem: the base design itself,
// a structurally-incompatible clone (extra signal — forces the
// per-lane scalar fallback), and a set of single/double mutants.
func batchDiffDUTs(t *testing.T, tb *Testbench, base *sim.Design) []*sim.Design {
	t.Helper()
	p := tb.Problem
	duts := []*sim.Design{base} // aliasing the base is allowed

	withExtra := strings.Replace(p.Source, "endmodule",
		"wire batch_diff_pad;\nassign batch_diff_pad = 1'b0;\nendmodule", 1)
	if d, err := sim.ElaborateSource(withExtra, p.Top); err == nil {
		duts = append(duts, d)
	}

	mod, err := p.Module()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 20 && len(duts) < 12; i++ {
		mut, muts := mutate.Mutate(mod, rng, 1+i%2)
		if len(muts) == 0 {
			continue
		}
		d, err := sim.ElaborateSource(verilog.PrintModule(mut), p.Top)
		if err != nil {
			continue
		}
		duts = append(duts, d)
	}
	if len(duts) < 5 {
		t.Fatalf("only %d elaborable DUTs", len(duts))
	}
	return duts
}

// TestBatchRunMatchesScalar is the testbench-layer differential gate:
// with earlyExit=false every batched lane must reproduce the scalar
// interpreter run of the same DUT exactly — same ScenarioPass vector,
// same error text when the run errors — and with earlyExit=true the
// killed/alive verdict must agree.
func TestBatchRunMatchesScalar(t *testing.T) {
	for _, name := range []string{"mux2_w4", "adder8", "prio_enc8", "cnt8", "det101", "fifo2"} {
		t.Run(name, func(t *testing.T) {
			tb := golden(t, name)
			tb.Engine = sim.EngineInterp
			p := tb.Problem
			base, err := sim.ElaborateSource(p.Source, p.Top)
			if err != nil {
				t.Fatal(err)
			}
			duts := batchDiffDUTs(t, tb, base)

			prog, err := sim.CompileBatch(base, duts)
			if err != nil {
				t.Fatalf("batch compile: %v", err)
			}
			if prog.Lanes() < len(duts)/2 {
				t.Fatalf("only %d/%d DUTs batched", prog.Lanes(), len(duts))
			}

			scalarRes := make([]*RunResult, len(duts))
			scalarErr := make([]error, len(duts))
			for i, d := range duts {
				scalarRes[i], scalarErr[i] = tb.RunAgainstDesign(d)
			}

			batch := tb.RunBatchAgainstDesigns(base, duts, false)
			for i := range duts {
				lane := prog.VariantLane(i)
				if (batch[i].Err != nil) != (scalarErr[i] != nil) {
					t.Errorf("dut %d (lane %d): batch err=%v, scalar err=%v", i, lane, batch[i].Err, scalarErr[i])
					continue
				}
				if batch[i].Err != nil {
					if batch[i].Err.Error() != scalarErr[i].Error() {
						t.Errorf("dut %d (lane %d): error text diverged\n batch: %v\nscalar: %v", i, lane, batch[i].Err, scalarErr[i])
					}
					continue
				}
				if !reflect.DeepEqual(batch[i].Res.ScenarioPass, scalarRes[i].ScenarioPass) {
					t.Errorf("dut %d (lane %d): ScenarioPass diverged\n batch: %v\nscalar: %v",
						i, lane, batch[i].Res.ScenarioPass, scalarRes[i].ScenarioPass)
				}
			}

			early := tb.RunBatchAgainstDesigns(base, duts, true)
			for i := range duts {
				sKilled := scalarErr[i] != nil || !scalarRes[i].Pass()
				bKilled := early[i].Err != nil || !early[i].Res.Pass()
				if sKilled != bKilled {
					t.Errorf("dut %d: earlyExit verdict diverged: batch killed=%v, scalar killed=%v", i, bKilled, sKilled)
				}
			}
		})
	}
}

// TestBatchRunWholesaleFallback drives the path where the base design
// itself cannot batch-compile ($display is dynamic): every DUT must
// still get its exact scalar outcome.
func TestBatchRunWholesaleFallback(t *testing.T) {
	tb := golden(t, "mux2_w4")
	tb.Engine = sim.EngineInterp
	p := tb.Problem
	src := strings.Replace(p.Source, "endmodule",
		"always @(*) if (sel === 1'bx) $display(\"x-sel\");\nendmodule", 1)
	base, err := sim.ElaborateSource(src, p.Top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CompileBatch(base, []*sim.Design{base}); err == nil {
		t.Fatal("expected batch compile of $display design to fail")
	}
	golden, err := sim.ElaborateSource(p.Source, p.Top)
	if err != nil {
		t.Fatal(err)
	}
	duts := []*sim.Design{base, golden}
	batch := tb.RunBatchAgainstDesigns(base, duts, false)
	for i, d := range duts {
		res, rerr := tb.RunAgainstDesign(d)
		if (batch[i].Err != nil) != (rerr != nil) {
			t.Fatalf("dut %d: batch err=%v scalar err=%v", i, batch[i].Err, rerr)
		}
		if rerr == nil && !reflect.DeepEqual(batch[i].Res.ScenarioPass, res.ScenarioPass) {
			t.Errorf("dut %d: ScenarioPass diverged: %v vs %v", i, batch[i].Res.ScenarioPass, res.ScenarioPass)
		}
	}
}
