package logic

// Lane-batched kernel entry points for the SoA batch simulator
// (sim.EngineBatched). Each kernel applies one four-state word kernel
// across a whole lane vector — dst[i] = Op(x[i], y[i]) for every lane i
// — with the inline two-plane fast path unrolled per lane and no
// per-lane dispatch. Results are bit-identical to the scalar entry
// points (And, Or, Xor, Xnor, NotV and plain assignment): lanes whose
// operands are wide or width-mismatched delegate to the scalar ops.
//
// Kernels report changes through chg: chg[i] is set to true when
// dst[i]'s value changed (never cleared), which is what the batch
// scheduler uses for per-lane dirty marking. All slices must have the
// same length.

// binLanes applies a binary word kernel lane by lane. slow must be the
// scalar op built from the same kernel, used for wide or mismatched
// lanes.
func binLanes(dst, x, y []Vector, chg []bool, f wordOp, slow func(Vector, Vector) Vector) {
	for i := range dst {
		a, b := x[i], y[i]
		if a.small() && b.small() && a.width == b.width {
			ra, rb := f(a.a0, a.b0, b.a0, b.b0)
			m := wmask(a.width)
			r := Vector{width: a.width, a0: ra & m, b0: rb & m}
			if !r.Equal(dst[i]) {
				dst[i] = r
				chg[i] = true
			}
			continue
		}
		r := slow(a, b)
		if !r.Equal(dst[i]) {
			dst[i] = r
			chg[i] = true
		}
	}
}

// AndLanes computes dst[i] = x[i] & y[i] for every lane.
func AndLanes(dst, x, y []Vector, chg []bool) { binLanes(dst, x, y, chg, andWords, And) }

// OrLanes computes dst[i] = x[i] | y[i] for every lane.
func OrLanes(dst, x, y []Vector, chg []bool) { binLanes(dst, x, y, chg, orWords, Or) }

// XorLanes computes dst[i] = x[i] ^ y[i] for every lane.
func XorLanes(dst, x, y []Vector, chg []bool) { binLanes(dst, x, y, chg, xorWords, Xor) }

// xnorWords composes the xor and not word kernels, matching
// Xnor = NotV(Xor(x, y)) bit for bit (both kernels are per-bit
// functions, so a single final mask is equivalent to normalizing
// between them).
func xnorWords(pa, pb, qa, qb uint64) (uint64, uint64) {
	ra, rb := xorWords(pa, pb, qa, qb)
	return notWords(ra, rb)
}

// XnorLanes computes dst[i] = x[i] ~^ y[i] for every lane.
func XnorLanes(dst, x, y []Vector, chg []bool) { binLanes(dst, x, y, chg, xnorWords, Xnor) }

// NotLanes computes dst[i] = ~x[i] for every lane.
func NotLanes(dst, x []Vector, chg []bool) {
	for i := range dst {
		a := x[i]
		if a.small() {
			ra, rb := notWords(a.a0, a.b0)
			m := wmask(a.width)
			r := Vector{width: a.width, a0: ra & m, b0: rb & m}
			if !r.Equal(dst[i]) {
				dst[i] = r
				chg[i] = true
			}
			continue
		}
		r := NotV(a)
		if !r.Equal(dst[i]) {
			dst[i] = r
			chg[i] = true
		}
	}
}

// CopyLanes computes dst[i] = x[i] for every lane (a continuous-assign
// passthrough). Stored values are clones: lanes never alias mutable
// plane slices of another slot.
func CopyLanes(dst, x []Vector, chg []bool) {
	for i := range dst {
		if !x[i].Equal(dst[i]) {
			dst[i] = x[i].clone()
			chg[i] = true
		}
	}
}

// BroadcastLanes computes dst[i] = v for every lane (a constant
// driver). v is stored as-is; stored vectors are never mutated in
// place, so sharing the planes across lanes is safe.
func BroadcastLanes(dst []Vector, v Vector, chg []bool) {
	for i := range dst {
		if !v.Equal(dst[i]) {
			dst[i] = v
			chg[i] = true
		}
	}
}

// FillXLanes resets every lane of a slot to all-X at the given width,
// the batch instance's reset state.
func FillXLanes(dst []Vector, width int) {
	for i := range dst {
		dst[i] = AllX(width)
	}
}
