// Package logic implements four-state (0, 1, X, Z) bit vectors with
// IEEE 1364 (Verilog) operator semantics. It is the value domain of the
// event-driven simulator in internal/sim.
//
// A Vector of width w stores two bit planes, following the common
// aval/bval encoding:
//
//	a=0 b=0  ->  0
//	a=1 b=0  ->  1
//	a=0 b=1  ->  Z
//	a=1 b=1  ->  X
//
// Bits above the width are kept zero in both planes; every operation
// re-normalizes so that equality on the planes is value equality.
//
// Vectors of width <= 64 — the overwhelmingly common case for the
// dataset's signals — store their planes inline (a0/b0) and never touch
// the heap: constructing, copying and operating on them is
// allocation-free. Wider vectors fall back to []uint64 plane slices.
// Both representations share the same word-parallel operator kernels,
// so narrow and wide results are bit-for-bit identical.
package logic

import (
	"fmt"
	"strings"
)

// Bit is a single four-state logic value.
type Bit uint8

// The four scalar logic states.
const (
	L0 Bit = iota // logic zero
	L1            // logic one
	Z             // high impedance
	X             // unknown
)

// String returns "0", "1", "z" or "x".
func (b Bit) String() string {
	switch b {
	case L0:
		return "0"
	case L1:
		return "1"
	case Z:
		return "z"
	default:
		return "x"
	}
}

const wordBits = 64

// Vector is a fixed-width four-state bit vector. The zero value is not
// usable; construct vectors with New, FromUint64, FromString or AllX.
//
// For width <= 64 the planes live in a0/b0 and the slices are nil; for
// wider vectors the planes live in wa/wb. All operations dispatch on
// the width, so a Vector value is safe to copy in both cases (narrow
// copies are true value copies; wide copies share their planes, which
// no operation mutates in place except the documented pointer-receiver
// setters SetBit and SetSlice).
type Vector struct {
	width  int
	a0, b0 uint64   // planes when width <= 64
	wa, wb []uint64 // planes when width > 64
}

func words(width int) int { return (width + wordBits - 1) / wordBits }

// small reports whether v uses the inline single-word representation.
func (v Vector) small() bool { return v.width <= wordBits }

// wmask returns the valid-bit mask of the top (or only) word of a
// vector of the given width.
func wmask(width int) uint64 {
	if r := width % wordBits; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

// New returns a vector of the given width with every bit 0.
// It panics if width < 1.
func New(width int) Vector {
	if width < 1 {
		panic(fmt.Sprintf("logic: invalid vector width %d", width))
	}
	if width <= wordBits {
		return Vector{width: width}
	}
	n := words(width)
	return Vector{width: width, wa: make([]uint64, n), wb: make([]uint64, n)}
}

// AllX returns a vector of the given width with every bit X.
func AllX(width int) Vector {
	v := New(width)
	if v.small() {
		m := wmask(width)
		v.a0, v.b0 = m, m
		return v
	}
	for i := range v.wa {
		v.wa[i] = ^uint64(0)
		v.wb[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// AllZ returns a vector of the given width with every bit Z.
func AllZ(width int) Vector {
	v := New(width)
	if v.small() {
		v.b0 = wmask(width)
		return v
	}
	for i := range v.wb {
		v.wb[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// Ones returns a vector of the given width with every bit 1.
func Ones(width int) Vector {
	v := New(width)
	if v.small() {
		v.a0 = wmask(width)
		return v
	}
	for i := range v.wa {
		v.wa[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// FromUint64 returns a vector of the given width holding val truncated
// to that width.
func FromUint64(width int, val uint64) Vector {
	v := New(width)
	if v.small() {
		v.a0 = val & wmask(width)
		return v
	}
	v.wa[0] = val
	return v
}

// FromBits builds a vector from bits listed most-significant first.
func FromBits(bits ...Bit) Vector {
	v := New(len(bits))
	for i, b := range bits {
		v.SetBit(len(bits)-1-i, b)
	}
	return v
}

// FromString parses a binary string such as "1010", "1x0z" or
// "0b_1010" (underscores ignored). The first character is the MSB.
func FromString(s string) (Vector, error) {
	s = strings.TrimPrefix(s, "0b")
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return Vector{}, fmt.Errorf("logic: empty vector literal")
	}
	v := New(len(s))
	for i, c := range s {
		pos := len(s) - 1 - i
		switch c {
		case '0':
			v.SetBit(pos, L0)
		case '1':
			v.SetBit(pos, L1)
		case 'x', 'X':
			v.SetBit(pos, X)
		case 'z', 'Z', '?':
			v.SetBit(pos, Z)
		default:
			return Vector{}, fmt.Errorf("logic: invalid bit character %q", c)
		}
	}
	return v, nil
}

// MustParse is FromString that panics on error; for tests and tables.
func MustParse(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Width reports the number of bits in the vector.
func (v Vector) Width() int { return v.width }

// IsValid reports whether the vector was properly constructed.
func (v Vector) IsValid() bool {
	if v.width <= 0 {
		return false
	}
	if v.small() {
		return true
	}
	return len(v.wa) == words(v.width)
}

// clone returns a copy of v that shares no mutable state with it.
// Narrow vectors are plain value copies.
func (v Vector) clone() Vector {
	if v.small() {
		return v
	}
	c := Vector{width: v.width, wa: make([]uint64, len(v.wa)), wb: make([]uint64, len(v.wb))}
	copy(c.wa, v.wa)
	copy(c.wb, v.wb)
	return c
}

// normalize clears plane bits above the width.
func (v *Vector) normalize() {
	m := wmask(v.width)
	if v.small() {
		v.a0 &= m
		v.b0 &= m
		return
	}
	v.wa[len(v.wa)-1] &= m
	v.wb[len(v.wb)-1] &= m
}

// aword and bword return the i'th plane word; out-of-range words read
// as zero so narrow and wide vectors can share word loops.
func (v Vector) aword(i int) uint64 {
	if v.small() {
		if i == 0 {
			return v.a0
		}
		return 0
	}
	if i < len(v.wa) {
		return v.wa[i]
	}
	return 0
}

func (v Vector) bword(i int) uint64 {
	if v.small() {
		if i == 0 {
			return v.b0
		}
		return 0
	}
	if i < len(v.wb) {
		return v.wb[i]
	}
	return 0
}

// setWord stores both plane words at index i.
func (v *Vector) setWord(i int, a, b uint64) {
	if v.small() {
		if i == 0 {
			v.a0, v.b0 = a, b
		}
		return
	}
	v.wa[i], v.wb[i] = a, b
}

// Bit returns the bit at position i (0 is the LSB). Out-of-range
// positions read as 0, matching Verilog's zero extension of reads that
// the simulator performs after width adjustment.
func (v Vector) Bit(i int) Bit {
	if i < 0 || i >= v.width {
		return L0
	}
	var a, b uint64
	if v.small() {
		a = (v.a0 >> uint(i)) & 1
		b = (v.b0 >> uint(i)) & 1
	} else {
		w, o := i/wordBits, uint(i%wordBits)
		a = (v.wa[w] >> o) & 1
		b = (v.wb[w] >> o) & 1
	}
	switch {
	case a == 0 && b == 0:
		return L0
	case a == 1 && b == 0:
		return L1
	case a == 0 && b == 1:
		return Z
	default:
		return X
	}
}

// SetBit sets the bit at position i. Out-of-range positions are ignored.
func (v *Vector) SetBit(i int, b Bit) {
	if i < 0 || i >= v.width {
		return
	}
	am, bm := uint64(0), uint64(0)
	switch b {
	case L1:
		am = 1
	case Z:
		bm = 1
	case X:
		am, bm = 1, 1
	}
	if v.small() {
		o := uint(i)
		v.a0 = v.a0&^(1<<o) | am<<o
		v.b0 = v.b0&^(1<<o) | bm<<o
		return
	}
	w, o := i/wordBits, uint(i%wordBits)
	v.wa[w] = v.wa[w]&^(1<<o) | am<<o
	v.wb[w] = v.wb[w]&^(1<<o) | bm<<o
}

// HasUnknown reports whether any bit is X or Z.
func (v Vector) HasUnknown() bool {
	if v.small() {
		return v.b0 != 0
	}
	for _, w := range v.wb {
		if w != 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether every bit is exactly 0.
func (v Vector) IsZero() bool {
	if v.small() {
		return v.a0 == 0 && v.b0 == 0
	}
	for i := range v.wa {
		if v.wa[i] != 0 || v.wb[i] != 0 {
			return false
		}
	}
	return true
}

// Uint64 returns the value as a uint64. ok is false if any bit is X or
// Z or the value does not fit in 64 bits.
func (v Vector) Uint64() (val uint64, ok bool) {
	if v.small() {
		if v.b0 != 0 {
			return 0, false
		}
		return v.a0, true
	}
	if v.HasUnknown() {
		return 0, false
	}
	for i := 1; i < len(v.wa); i++ {
		if v.wa[i] != 0 {
			return 0, false
		}
	}
	return v.wa[0], true
}

// Equal reports case equality (===): identical four-state bit patterns
// and identical widths.
func (v Vector) Equal(o Vector) bool {
	if v.width != o.width {
		return false
	}
	if v.small() {
		return v.a0 == o.a0 && v.b0 == o.b0
	}
	for i := range v.wa {
		if v.wa[i] != o.wa[i] || v.wb[i] != o.wb[i] {
			return false
		}
	}
	return true
}

// SameValue reports case equality after resizing both operands to the
// wider width (zero extension), mirroring Verilog comparison contexts.
func (v Vector) SameValue(o Vector) bool {
	if v.small() && o.small() {
		// Normalized inline planes already zero-extend: equal words
		// mean equal values at any pair of widths.
		return v.a0 == o.a0 && v.b0 == o.b0
	}
	w := v.width
	if o.width > w {
		w = o.width
	}
	return v.Resize(w).Equal(o.Resize(w))
}

// String renders the vector MSB-first, e.g. "1010", "1xz0".
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		sb.WriteString(v.Bit(i).String())
	}
	return sb.String()
}

// VerilogLiteral renders the vector as a sized Verilog binary literal,
// e.g. "4'b10x0".
func (v Vector) VerilogLiteral() string {
	return fmt.Sprintf("%d'b%s", v.width, v.String())
}

// Resize returns a copy of v resized to width, truncating or
// zero-extending (Verilog unsigned semantics).
func (v Vector) Resize(width int) Vector {
	if width == v.width {
		return v.clone()
	}
	if width <= wordBits && v.small() {
		m := wmask(width)
		return Vector{width: width, a0: v.a0 & m, b0: v.b0 & m}
	}
	r := New(width)
	n := words(width)
	if vw := words(v.width); vw < n {
		n = vw
	}
	for i := 0; i < n; i++ {
		r.setWord(i, v.aword(i), v.bword(i))
	}
	r.normalize()
	return r
}

// SignResize returns a copy of v resized to width with sign extension
// (the MSB, including X/Z, is replicated when widening).
func (v Vector) SignResize(width int) Vector {
	if width <= v.width {
		return v.Resize(width)
	}
	r := v.Resize(width)
	msb := v.Bit(v.width - 1)
	for i := v.width; i < width; i++ {
		r.SetBit(i, msb)
	}
	return r
}
