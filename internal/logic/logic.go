// Package logic implements four-state (0, 1, X, Z) bit vectors with
// IEEE 1364 (Verilog) operator semantics. It is the value domain of the
// event-driven simulator in internal/sim.
//
// A Vector of width w stores two bit planes, following the common
// aval/bval encoding:
//
//	a=0 b=0  ->  0
//	a=1 b=0  ->  1
//	a=0 b=1  ->  Z
//	a=1 b=1  ->  X
//
// Bits above the width are kept zero in both planes; every operation
// re-normalizes so that equality on the planes is value equality.
package logic

import (
	"fmt"
	"strings"
)

// Bit is a single four-state logic value.
type Bit uint8

// The four scalar logic states.
const (
	L0 Bit = iota // logic zero
	L1            // logic one
	Z             // high impedance
	X             // unknown
)

// String returns "0", "1", "z" or "x".
func (b Bit) String() string {
	switch b {
	case L0:
		return "0"
	case L1:
		return "1"
	case Z:
		return "z"
	default:
		return "x"
	}
}

const wordBits = 64

// Vector is a fixed-width four-state bit vector. The zero value is not
// usable; construct vectors with New, FromUint64, FromString or AllX.
type Vector struct {
	width int
	a, b  []uint64
}

func words(width int) int { return (width + wordBits - 1) / wordBits }

// New returns a vector of the given width with every bit 0.
// It panics if width < 1.
func New(width int) Vector {
	if width < 1 {
		panic(fmt.Sprintf("logic: invalid vector width %d", width))
	}
	n := words(width)
	return Vector{width: width, a: make([]uint64, n), b: make([]uint64, n)}
}

// AllX returns a vector of the given width with every bit X.
func AllX(width int) Vector {
	v := New(width)
	for i := range v.a {
		v.a[i] = ^uint64(0)
		v.b[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// AllZ returns a vector of the given width with every bit Z.
func AllZ(width int) Vector {
	v := New(width)
	for i := range v.b {
		v.b[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// Ones returns a vector of the given width with every bit 1.
func Ones(width int) Vector {
	v := New(width)
	for i := range v.a {
		v.a[i] = ^uint64(0)
	}
	v.normalize()
	return v
}

// FromUint64 returns a vector of the given width holding val truncated
// to that width.
func FromUint64(width int, val uint64) Vector {
	v := New(width)
	v.a[0] = val
	v.normalize()
	return v
}

// FromBits builds a vector from bits listed most-significant first.
func FromBits(bits ...Bit) Vector {
	v := New(len(bits))
	for i, b := range bits {
		v.SetBit(len(bits)-1-i, b)
	}
	return v
}

// FromString parses a binary string such as "1010", "1x0z" or
// "0b_1010" (underscores ignored). The first character is the MSB.
func FromString(s string) (Vector, error) {
	s = strings.TrimPrefix(s, "0b")
	s = strings.ReplaceAll(s, "_", "")
	if s == "" {
		return Vector{}, fmt.Errorf("logic: empty vector literal")
	}
	v := New(len(s))
	for i, c := range s {
		pos := len(s) - 1 - i
		switch c {
		case '0':
			v.SetBit(pos, L0)
		case '1':
			v.SetBit(pos, L1)
		case 'x', 'X':
			v.SetBit(pos, X)
		case 'z', 'Z', '?':
			v.SetBit(pos, Z)
		default:
			return Vector{}, fmt.Errorf("logic: invalid bit character %q", c)
		}
	}
	return v, nil
}

// MustParse is FromString that panics on error; for tests and tables.
func MustParse(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Width reports the number of bits in the vector.
func (v Vector) Width() int { return v.width }

// IsValid reports whether the vector was properly constructed.
func (v Vector) IsValid() bool { return v.width > 0 && len(v.a) == words(v.width) }

// clone returns a deep copy of v.
func (v Vector) clone() Vector {
	c := Vector{width: v.width, a: make([]uint64, len(v.a)), b: make([]uint64, len(v.b))}
	copy(c.a, v.a)
	copy(c.b, v.b)
	return c
}

// normalize clears plane bits above the width.
func (v *Vector) normalize() {
	if v.width%wordBits == 0 {
		return
	}
	mask := (uint64(1) << uint(v.width%wordBits)) - 1
	v.a[len(v.a)-1] &= mask
	v.b[len(v.b)-1] &= mask
}

// Bit returns the bit at position i (0 is the LSB). Out-of-range
// positions read as 0, matching Verilog's zero extension of reads that
// the simulator performs after width adjustment.
func (v Vector) Bit(i int) Bit {
	if i < 0 || i >= v.width {
		return L0
	}
	w, o := i/wordBits, uint(i%wordBits)
	a := (v.a[w] >> o) & 1
	b := (v.b[w] >> o) & 1
	switch {
	case a == 0 && b == 0:
		return L0
	case a == 1 && b == 0:
		return L1
	case a == 0 && b == 1:
		return Z
	default:
		return X
	}
}

// SetBit sets the bit at position i. Out-of-range positions are ignored.
func (v *Vector) SetBit(i int, b Bit) {
	if i < 0 || i >= v.width {
		return
	}
	w, o := i/wordBits, uint(i%wordBits)
	am, bm := uint64(0), uint64(0)
	switch b {
	case L1:
		am = 1
	case Z:
		bm = 1
	case X:
		am, bm = 1, 1
	}
	v.a[w] = v.a[w]&^(1<<o) | am<<o
	v.b[w] = v.b[w]&^(1<<o) | bm<<o
}

// HasUnknown reports whether any bit is X or Z.
func (v Vector) HasUnknown() bool {
	for _, w := range v.b {
		if w != 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether every bit is exactly 0.
func (v Vector) IsZero() bool {
	for i := range v.a {
		if v.a[i] != 0 || v.b[i] != 0 {
			return false
		}
	}
	return true
}

// Uint64 returns the value as a uint64. ok is false if any bit is X or
// Z or the value does not fit in 64 bits.
func (v Vector) Uint64() (val uint64, ok bool) {
	if v.HasUnknown() {
		return 0, false
	}
	for i := 1; i < len(v.a); i++ {
		if v.a[i] != 0 {
			return 0, false
		}
	}
	return v.a[0], true
}

// Equal reports case equality (===): identical four-state bit patterns
// and identical widths.
func (v Vector) Equal(o Vector) bool {
	if v.width != o.width {
		return false
	}
	for i := range v.a {
		if v.a[i] != o.a[i] || v.b[i] != o.b[i] {
			return false
		}
	}
	return true
}

// SameValue reports case equality after resizing both operands to the
// wider width (zero extension), mirroring Verilog comparison contexts.
func (v Vector) SameValue(o Vector) bool {
	w := v.width
	if o.width > w {
		w = o.width
	}
	return v.Resize(w).Equal(o.Resize(w))
}

// String renders the vector MSB-first, e.g. "1010", "1xz0".
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		sb.WriteString(v.Bit(i).String())
	}
	return sb.String()
}

// VerilogLiteral renders the vector as a sized Verilog binary literal,
// e.g. "4'b10x0".
func (v Vector) VerilogLiteral() string {
	return fmt.Sprintf("%d'b%s", v.width, v.String())
}

// Resize returns a copy of v resized to width, truncating or
// zero-extending (Verilog unsigned semantics).
func (v Vector) Resize(width int) Vector {
	if width == v.width {
		return v.clone()
	}
	r := New(width)
	n := len(r.a)
	if len(v.a) < n {
		n = len(v.a)
	}
	copy(r.a[:n], v.a[:n])
	copy(r.b[:n], v.b[:n])
	r.normalize()
	return r
}

// SignResize returns a copy of v resized to width with sign extension
// (the MSB, including X/Z, is replicated when widening).
func (v Vector) SignResize(width int) Vector {
	if width <= v.width {
		return v.Resize(width)
	}
	r := v.Resize(width)
	msb := v.Bit(v.width - 1)
	for i := v.width; i < width; i++ {
		r.SetBit(i, msb)
	}
	return r
}
