package logic

import (
	"math/rand"
	"testing"
)

// The width <= 64 representation stores its planes inline and runs
// word-parallel kernels; widths above 64 run the general slice path.
// These property tests pin the two paths to each other and to scalar
// per-bit reference implementations across the representation
// boundary — widths 1, 63, 64 (widest inline), 65 (narrowest wide) —
// with operands drawn from all four states.

var fastpathWidths = []int{1, 2, 7, 63, 64, 65, 128}

// randVec builds a vector whose bits cover all four states.
func randVec(rng *rand.Rand, width int) Vector {
	v := New(width)
	for i := 0; i < width; i++ {
		v.SetBit(i, Bit(rng.Intn(4)))
	}
	return v
}

// cornerVecs are deterministic all-state patterns for a width.
func cornerVecs(width int) []Vector {
	out := []Vector{New(width), Ones(width), AllX(width), AllZ(width)}
	alt := New(width)
	for i := 0; i < width; i++ {
		alt.SetBit(i, []Bit{L0, L1, X, Z}[i%4])
	}
	out = append(out, alt)
	return out
}

// operands yields corner pairs plus random pairs for a width.
func operandPairs(rng *rand.Rand, width int) [][2]Vector {
	var pairs [][2]Vector
	corners := cornerVecs(width)
	for _, a := range corners {
		for _, b := range corners {
			pairs = append(pairs, [2]Vector{a, b})
		}
	}
	for i := 0; i < 50; i++ {
		pairs = append(pairs, [2]Vector{randVec(rng, width), randVec(rng, width)})
	}
	return pairs
}

// refBitwise is the scalar reference for the word-parallel bitwise
// kernels.
func refBitwise(x, y Vector, f func(p, q Bit) Bit) Vector {
	xr, yr, w := commonWidth(x, y)
	r := New(w)
	for i := 0; i < w; i++ {
		r.SetBit(i, f(xr.Bit(i), yr.Bit(i)))
	}
	return r
}

func refNot(x Vector) Vector {
	r := New(x.Width())
	for i := 0; i < x.Width(); i++ {
		switch x.Bit(i) {
		case L0:
			r.SetBit(i, L1)
		case L1:
			r.SetBit(i, L0)
		default:
			r.SetBit(i, X)
		}
	}
	return r
}

func TestFastPathBitwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []struct {
		name string
		op   func(a, b Vector) Vector
		ref  func(p, q Bit) Bit
	}{
		{"And", And, andBit},
		{"Or", Or, orBit},
		{"Xor", Xor, xorBit},
	}
	for _, w := range fastpathWidths {
		for _, pair := range operandPairs(rng, w) {
			a, b := pair[0], pair[1]
			for _, op := range ops {
				got, want := op.op(a, b), refBitwise(a, b, op.ref)
				if !got.Equal(want) {
					t.Fatalf("w=%d %s(%s, %s) = %s, want %s", w, op.name, a, b, got, want)
				}
			}
			if got, want := NotV(a), refNot(a); !got.Equal(want) {
				t.Fatalf("w=%d NotV(%s) = %s, want %s", w, a, got, want)
			}
			if got, want := Xnor(a, b), refNot(refBitwise(a, b, xorBit)); !got.Equal(want) {
				t.Fatalf("w=%d Xnor(%s, %s) = %s, want %s", w, a, b, got, want)
			}
		}
	}
}

// refAddBits adds bit by bit with a carry chain; defined only for
// fully known operands of equal width.
func refAddBits(x, y Vector) Vector {
	w := x.Width()
	r := New(w)
	carry := 0
	for i := 0; i < w; i++ {
		xa, ya := 0, 0
		if x.Bit(i) == L1 {
			xa = 1
		}
		if y.Bit(i) == L1 {
			ya = 1
		}
		s := xa + ya + carry
		if s%2 == 1 {
			r.SetBit(i, L1)
		}
		carry = s / 2
	}
	return r
}

func TestFastPathArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range fastpathWidths {
		for _, pair := range operandPairs(rng, w) {
			a, b := pair[0], pair[1]
			unknown := a.HasUnknown() || b.HasUnknown()

			sum := Add(a, b)
			if unknown {
				if !sum.Equal(AllX(w)) {
					t.Fatalf("w=%d Add(%s, %s) = %s, want all-x", w, a, b, sum)
				}
			} else if want := refAddBits(a, b); !sum.Equal(want) {
				t.Fatalf("w=%d Add(%s, %s) = %s, want %s", w, a, b, sum, want)
			}

			// x - y == x + (~y + 1) on known operands.
			diff := Sub(a, b)
			if unknown {
				if !diff.Equal(AllX(w)) {
					t.Fatalf("w=%d Sub unknown: got %s", w, diff)
				}
			} else {
				want := refAddBits(refAddBits(a, refNot(b)), FromUint64(w, 1))
				if !diff.Equal(want) {
					t.Fatalf("w=%d Sub(%s, %s) = %s, want %s", w, a, b, diff, want)
				}
			}
		}
	}
	// Cross-check the narrow multiplier against the wide limb
	// multiplier on the same values.
	for i := 0; i < 200; i++ {
		av, bv := rng.Uint64(), rng.Uint64()
		for _, w := range []int{1, 63, 64} {
			narrow := Mul(FromUint64(w, av), FromUint64(w, bv))
			wide := Mul(FromUint64(w+64, av).Resize(128), FromUint64(w+64, bv).Resize(128)).Resize(w)
			if !narrow.Equal(wide) {
				t.Fatalf("w=%d Mul(%d, %d): narrow %s, wide %s", w, av, bv, narrow, wide)
			}
		}
	}
}

func TestFastPathShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	refShl := func(x Vector, n int) Vector {
		r := New(x.Width())
		for i := n; i < x.Width(); i++ {
			r.SetBit(i, x.Bit(i-n))
		}
		return r
	}
	refShr := func(x Vector, n int) Vector {
		r := New(x.Width())
		for i := 0; i+n < x.Width(); i++ {
			r.SetBit(i, x.Bit(i+n))
		}
		return r
	}
	for _, w := range fastpathWidths {
		for _, a := range append(cornerVecs(w), randVec(rng, w), randVec(rng, w)) {
			for _, n := range []int{0, 1, w - 1, w, w + 1, 63, 64, 65} {
				if n < 0 {
					continue
				}
				amt := FromUint64(32, uint64(n))
				if got, want := Shl(a, amt), refShl(a, n); !got.Equal(want) {
					t.Fatalf("w=%d Shl(%s, %d) = %s, want %s", w, a, n, got, want)
				}
				if got, want := Shr(a, amt), refShr(a, n); !got.Equal(want) {
					t.Fatalf("w=%d Shr(%s, %d) = %s, want %s", w, a, n, got, want)
				}
			}
			if got := Shl(a, XBit()); !got.Equal(AllX(w)) {
				t.Fatalf("w=%d Shl by x: got %s", w, got)
			}
		}
	}
}

func TestFastPathReductionsAndTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	refRed := func(x Vector, seed Bit, f func(p, q Bit) Bit) Bit {
		r := seed
		for i := 0; i < x.Width(); i++ {
			r = f(r, x.Bit(i))
		}
		return r
	}
	refTruth := func(x Vector) Bit {
		saw := false
		for i := 0; i < x.Width(); i++ {
			switch x.Bit(i) {
			case L1:
				return L1
			case X, Z:
				saw = true
			}
		}
		if saw {
			return X
		}
		return L0
	}
	for _, w := range fastpathWidths {
		vecs := cornerVecs(w)
		for i := 0; i < 50; i++ {
			vecs = append(vecs, randVec(rng, w))
		}
		for _, a := range vecs {
			if got, want := RedAnd(a).Bit(0), refRed(a, L1, andBit); got != want {
				t.Fatalf("w=%d RedAnd(%s) = %s, want %s", w, a, got, want)
			}
			if got, want := RedOr(a).Bit(0), refRed(a, L0, orBit); got != want {
				t.Fatalf("w=%d RedOr(%s) = %s, want %s", w, a, got, want)
			}
			if got, want := RedXor(a).Bit(0), refRed(a, L0, xorBit); got != want {
				t.Fatalf("w=%d RedXor(%s) = %s, want %s", w, a, got, want)
			}
			if got, want := Truth(a), refTruth(a); got != want {
				t.Fatalf("w=%d Truth(%s) = %s, want %s", w, a, got, want)
			}
		}
	}
}

func TestFastPathSliceConcatSetSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	refSlice := func(x Vector, hi, lo int) Vector {
		r := New(hi - lo + 1)
		for i := lo; i <= hi; i++ {
			if i < x.Width() {
				r.SetBit(i-lo, x.Bit(i))
			} else {
				r.SetBit(i-lo, X)
			}
		}
		return r
	}
	for _, w := range fastpathWidths {
		for trial := 0; trial < 30; trial++ {
			a := randVec(rng, w)
			lo := rng.Intn(w)
			hi := lo + rng.Intn(w+4) // may run past the width
			if got, want := Slice(a, hi, lo), refSlice(a, hi, lo); !got.Equal(want) {
				t.Fatalf("w=%d Slice(%s, %d, %d) = %s, want %s", w, a, hi, lo, got, want)
			}

			// SetSlice round-trip: writing a slice back in place is a
			// no-op; writing fresh bits reads back exactly.
			b := randVec(rng, w)
			c := a.clone()
			span := hi - lo + 1
			if hi >= w {
				hi = w - 1
				span = hi - lo + 1
			}
			if span > 0 {
				c.SetSlice(hi, lo, b.Resize(span))
				for i := 0; i < w; i++ {
					want := a.Bit(i)
					if i >= lo && i <= hi {
						want = b.Resize(span).Bit(i - lo)
					}
					if c.Bit(i) != want {
						t.Fatalf("w=%d SetSlice[%d:%d] bit %d = %s, want %s", w, hi, lo, i, c.Bit(i), want)
					}
				}
			}
		}
		// Concat two random halves and read them back.
		for trial := 0; trial < 20; trial++ {
			a, b := randVec(rng, w), randVec(rng, (w%7)+1)
			cat := Concat(a, b)
			if cat.Width() != a.Width()+b.Width() {
				t.Fatalf("Concat width %d", cat.Width())
			}
			for i := 0; i < b.Width(); i++ {
				if cat.Bit(i) != b.Bit(i) {
					t.Fatalf("w=%d Concat low bit %d mismatch", w, i)
				}
			}
			for i := 0; i < a.Width(); i++ {
				if cat.Bit(b.Width()+i) != a.Bit(i) {
					t.Fatalf("w=%d Concat high bit %d mismatch", w, i)
				}
			}
		}
	}
}

func TestFastPathCompareAndMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	refCaseZ := func(v, p Vector) bool {
		vr, pr, w := commonWidth(v, p)
		for i := 0; i < w; i++ {
			pv, pp := vr.Bit(i), pr.Bit(i)
			if pv == Z || pp == Z {
				continue
			}
			if pv != pp {
				return false
			}
		}
		return true
	}
	refCaseX := func(v, p Vector) bool {
		vr, pr, w := commonWidth(v, p)
		for i := 0; i < w; i++ {
			pv, pp := vr.Bit(i), pr.Bit(i)
			if pv == Z || pp == Z || pv == X || pp == X {
				continue
			}
			if pv != pp {
				return false
			}
		}
		return true
	}
	for _, w := range fastpathWidths {
		for _, pair := range operandPairs(rng, w) {
			a, b := pair[0], pair[1]
			if got, want := CaseZMatch(a, b), refCaseZ(a, b); got != want {
				t.Fatalf("w=%d CaseZMatch(%s, %s) = %v, want %v", w, a, b, got, want)
			}
			if got, want := CaseXMatch(a, b), refCaseX(a, b); got != want {
				t.Fatalf("w=%d CaseXMatch(%s, %s) = %v, want %v", w, a, b, got, want)
			}
			// Eq: x on unknowns, else exact compare.
			eq := Eq(a, b)
			switch {
			case a.HasUnknown() || b.HasUnknown():
				if eq.Bit(0) != X {
					t.Fatalf("w=%d Eq with unknowns: %s", w, eq)
				}
			case a.Equal(b):
				if eq.Bit(0) != L1 {
					t.Fatalf("w=%d Eq(%s,%s) = %s", w, a, b, eq)
				}
			default:
				if eq.Bit(0) != L0 {
					t.Fatalf("w=%d Eq(%s,%s) = %s", w, a, b, eq)
				}
			}
			// Mux with unknown select merges agreeing known bits.
			m := Mux(XBit(), a, b)
			for i := 0; i < w; i++ {
				pa, pb := a.Bit(i), b.Bit(i)
				want := X
				if pa == pb && (pa == L0 || pa == L1) {
					want = pa
				}
				if m.Bit(i) != want {
					t.Fatalf("w=%d Mux(x, %s, %s) bit %d = %s, want %s", w, a, b, i, m.Bit(i), want)
				}
			}
		}
	}
}

// TestFastPathResizeRoundTrip pins Resize across the representation
// boundary in both directions.
func TestFastPathResizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, from := range fastpathWidths {
		for _, to := range fastpathWidths {
			for trial := 0; trial < 20; trial++ {
				a := randVec(rng, from)
				r := a.Resize(to)
				if r.Width() != to {
					t.Fatalf("Resize width %d", r.Width())
				}
				for i := 0; i < to; i++ {
					want := L0
					if i < from {
						want = a.Bit(i)
					}
					if r.Bit(i) != want {
						t.Fatalf("Resize %d->%d bit %d = %s, want %s", from, to, i, r.Bit(i), want)
					}
				}
				// Round-trip through a wide representation must be
				// lossless.
				if back := a.Resize(from + 64).Resize(from); !back.Equal(a) {
					t.Fatalf("round-trip %d->%d->%d: %s != %s", from, from+64, from, back, a)
				}
			}
		}
	}
}
