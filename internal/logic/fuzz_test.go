package logic

import (
	"testing"
)

// Native fuzz targets for the word-parallel four-state kernels: the
// scalar entry points (And/Or/Xor/Xnor/NotV and the reductions) and
// the lane-batched entry points used by sim.EngineBatched are checked
// against a bit-at-a-time reference built directly from the IEEE 1364
// truth tables. The seed corpus keeps these running as ordinary unit
// tests under `go test`.

// refBit decodes two bits of fuzz data into a four-state Bit.
func refBit(code byte) Bit {
	switch code & 3 {
	case 0:
		return L0
	case 1:
		return L1
	case 2:
		return X
	default:
		return Z
	}
}

// vecFromData builds a width-w vector whose bit i is drawn from the
// data stream (cyclically).
func vecFromData(w int, data []byte) Vector {
	v := New(w)
	if len(data) == 0 {
		return v
	}
	for i := 0; i < w; i++ {
		b := data[(i/4)%len(data)] >> uint((i%4)*2)
		v.SetBit(i, refBit(b))
	}
	return v
}

func refAndBit(p, q Bit) Bit {
	if p == L0 || q == L0 {
		return L0
	}
	if p == L1 && q == L1 {
		return L1
	}
	return X
}

func refOrBit(p, q Bit) Bit {
	if p == L1 || q == L1 {
		return L1
	}
	if p == L0 && q == L0 {
		return L0
	}
	return X
}

func refXorBit(p, q Bit) Bit {
	if p == X || p == Z || q == X || q == Z {
		return X
	}
	if p != q {
		return L1
	}
	return L0
}

func refNotBit(p Bit) Bit {
	switch p {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return X
	}
}

// refBinary applies a bit table at the common width with the same
// zero-extension the vector ops use.
func refBinary(x, y Vector, f func(p, q Bit) Bit) Vector {
	w := x.Width()
	if y.Width() > w {
		w = y.Width()
	}
	xr, yr := x.Resize(w), y.Resize(w)
	r := New(w)
	for i := 0; i < w; i++ {
		r.SetBit(i, f(xr.Bit(i), yr.Bit(i)))
	}
	return r
}

func clampWidth(w uint16) int { return 1 + int(w)%150 }

func FuzzWordKernels(f *testing.F) {
	f.Add(uint16(1), []byte{0x1b}, []byte{0xe4})
	f.Add(uint16(8), []byte{0x00, 0xff}, []byte{0x55, 0xaa})
	f.Add(uint16(63), []byte{0x12, 0x34, 0x56}, []byte{0x9a, 0xbc, 0xde})
	f.Add(uint16(64), []byte{0xde, 0xad}, []byte{0xbe, 0xef})
	f.Add(uint16(65), []byte{0x01, 0x80}, []byte{0xfe, 0x7f})
	f.Add(uint16(130), []byte{0xc3, 0x3c, 0x0f}, []byte{0xf0, 0x99, 0x66})
	f.Fuzz(func(t *testing.T, ww uint16, xd, yd []byte) {
		w := clampWidth(ww)
		x := vecFromData(w, xd)
		y := vecFromData(w, yd)

		checks := []struct {
			name string
			got  Vector
			want Vector
		}{
			{"and", And(x, y), refBinary(x, y, refAndBit)},
			{"or", Or(x, y), refBinary(x, y, refOrBit)},
			{"xor", Xor(x, y), refBinary(x, y, refXorBit)},
			{"xnor", Xnor(x, y), refBinary(x, y, func(p, q Bit) Bit { return refNotBit(refXorBit(p, q)) })},
		}
		for _, c := range checks {
			if !c.got.Equal(c.want) {
				t.Fatalf("%s(%s, %s) = %s, reference %s", c.name, x, y, c.got, c.want)
			}
		}

		nref := New(w)
		for i := 0; i < w; i++ {
			nref.SetBit(i, refNotBit(x.Bit(i)))
		}
		if got := NotV(x); !got.Equal(nref) {
			t.Fatalf("not(%s) = %s, reference %s", x, got, nref)
		}

		// Reductions fold the same bit tables.
		redAnd, redOr, redXor := x.Bit(0), x.Bit(0), x.Bit(0)
		for i := 1; i < w; i++ {
			redAnd = refAndBit(redAnd, x.Bit(i))
			redOr = refOrBit(redOr, x.Bit(i))
			redXor = refXorBit(redXor, x.Bit(i))
		}
		if got := RedAnd(x); got.Bit(0) != redAnd {
			t.Fatalf("redand(%s) = %v, reference %v", x, got.Bit(0), redAnd)
		}
		if got := RedOr(x); got.Bit(0) != redOr {
			t.Fatalf("redor(%s) = %v, reference %v", x, got.Bit(0), redOr)
		}
		if got := RedXor(x); got.Bit(0) != redXor {
			t.Fatalf("redxor(%s) = %v, reference %v", x, got.Bit(0), redXor)
		}
	})
}

func FuzzLaneKernels(f *testing.F) {
	f.Add(uint16(4), uint8(1), []byte{0x1b}, []byte{0xe4})
	f.Add(uint16(8), uint8(3), []byte{0x00, 0xff, 0x3c}, []byte{0x55, 0xaa, 0x99})
	f.Add(uint16(64), uint8(5), []byte{0xde, 0xad, 0x01}, []byte{0xbe, 0xef, 0x02})
	f.Add(uint16(100), uint8(4), []byte{0xc3, 0x3c}, []byte{0x0f, 0xf0})
	f.Fuzz(func(t *testing.T, ww uint16, nn uint8, xd, yd []byte) {
		w := clampWidth(ww)
		n := 1 + int(nn)%12
		x := make([]Vector, n)
		y := make([]Vector, n)
		for i := range x {
			x[i] = vecFromData(w, append([]byte{byte(i)}, xd...))
			y[i] = vecFromData(w, append([]byte{byte(3 * i)}, yd...))
		}

		kernels := []struct {
			name string
			run  func(dst []Vector, chg []bool)
			ref  func(i int) Vector
		}{
			{"and", func(d []Vector, c []bool) { AndLanes(d, x, y, c) }, func(i int) Vector { return And(x[i], y[i]) }},
			{"or", func(d []Vector, c []bool) { OrLanes(d, x, y, c) }, func(i int) Vector { return Or(x[i], y[i]) }},
			{"xor", func(d []Vector, c []bool) { XorLanes(d, x, y, c) }, func(i int) Vector { return Xor(x[i], y[i]) }},
			{"xnor", func(d []Vector, c []bool) { XnorLanes(d, x, y, c) }, func(i int) Vector { return Xnor(x[i], y[i]) }},
			{"not", func(d []Vector, c []bool) { NotLanes(d, x, c) }, func(i int) Vector { return NotV(x[i]) }},
			{"copy", func(d []Vector, c []bool) { CopyLanes(d, x, c) }, func(i int) Vector { return x[i].Resize(w) }},
			{"broadcast", func(d []Vector, c []bool) { BroadcastLanes(d, x[0], c) }, func(i int) Vector { return x[0] }},
		}
		for _, k := range kernels {
			dst := make([]Vector, n)
			FillXLanes(dst, w)
			chg := make([]bool, n)
			k.run(dst, chg)
			for i := 0; i < n; i++ {
				want := k.ref(i)
				if !dst[i].Equal(want) {
					t.Fatalf("%s lane %d: got %s, scalar reference %s", k.name, i, dst[i], want)
				}
				if wantChg := !want.Equal(AllX(w)); chg[i] != wantChg {
					t.Fatalf("%s lane %d: chg=%v, want %v", k.name, i, chg[i], wantChg)
				}
			}
			// Re-running over settled lanes must be a no-op.
			chg2 := make([]bool, n)
			k.run(dst, chg2)
			for i, c := range chg2 {
				if c {
					t.Fatalf("%s lane %d: change reported on settled re-run", k.name, i)
				}
			}
		}
	})
}
