package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsAllZero(t *testing.T) {
	for _, w := range []int{1, 7, 64, 65, 130} {
		v := New(w)
		if v.Width() != w {
			t.Fatalf("width = %d, want %d", v.Width(), w)
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero: %s", w, v)
		}
		if v.HasUnknown() {
			t.Errorf("New(%d) has unknowns", w)
		}
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []struct {
		width int
		in    uint64
		want  uint64
	}{
		{8, 0xab, 0xab},
		{8, 0x1ab, 0xab}, // truncation
		{4, 15, 15},
		{1, 3, 1},
		{64, ^uint64(0), ^uint64(0)},
		{16, 0xffff, 0xffff},
	}
	for _, c := range cases {
		v := FromUint64(c.width, c.in)
		got, ok := v.Uint64()
		if !ok || got != c.want {
			t.Errorf("FromUint64(%d, %#x).Uint64() = %#x, %v; want %#x", c.width, c.in, got, ok, c.want)
		}
	}
}

func TestFromStringAndString(t *testing.T) {
	for _, s := range []string{"0", "1", "x", "z", "10xz", "1111", "0000", "1x0z1x0z1"} {
		v, err := FromString(s)
		if err != nil {
			t.Fatalf("FromString(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
	if _, err := FromString("10a1"); err == nil {
		t.Error("FromString accepted invalid character")
	}
	if _, err := FromString(""); err == nil {
		t.Error("FromString accepted empty string")
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := New(70)
	v.SetBit(0, L1)
	v.SetBit(69, X)
	v.SetBit(64, Z)
	if v.Bit(0) != L1 || v.Bit(69) != X || v.Bit(64) != Z || v.Bit(33) != L0 {
		t.Errorf("bit readback failed: %s", v)
	}
	// Out of range is ignored / reads zero.
	v.SetBit(100, L1)
	if v.Bit(100) != L0 {
		t.Error("out-of-range bit not L0")
	}
}

func TestResize(t *testing.T) {
	v := MustParse("1x10")
	if got := v.Resize(6).String(); got != "001x10" {
		t.Errorf("widen: got %s", got)
	}
	if got := v.Resize(2).String(); got != "10" {
		t.Errorf("truncate: got %s", got)
	}
	if got := v.SignResize(6).String(); got != "111x10" {
		t.Errorf("sign extend: got %s", got)
	}
	x := MustParse("x010")
	if got := x.SignResize(6).String(); got != "xxx010" {
		t.Errorf("x sign extend: got %s", got)
	}
}

func TestBitwise(t *testing.T) {
	tests := []struct {
		name string
		op   func(a, b Vector) Vector
		a, b string
		want string
	}{
		{"and", And, "01x", "111", "01x"},
		{"and-zero", And, "0xz", "000", "000"},
		{"or", Or, "01x", "000", "01x"},
		{"or-one", Or, "0xz", "111", "111"},
		{"xor", Xor, "0101", "0011", "0110"},
		{"xor-x", Xor, "01xz", "1111", "10xx"},
		{"xnor", Xnor, "0101", "0011", "1001"},
	}
	for _, tc := range tests {
		a, b := MustParse(tc.a), MustParse(tc.b)
		if got := tc.op(a, b).String(); got != tc.want {
			t.Errorf("%s(%s, %s) = %s, want %s", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNotV(t *testing.T) {
	if got := NotV(MustParse("01xz")).String(); got != "10xx" {
		t.Errorf("NotV = %s", got)
	}
}

func TestArithmetic(t *testing.T) {
	add := Add(FromUint64(8, 250), FromUint64(8, 10))
	if v, _ := add.Uint64(); v != 4 { // wraps mod 256
		t.Errorf("add wrap = %d", v)
	}
	sub := Sub(FromUint64(8, 3), FromUint64(8, 5))
	if v, _ := sub.Uint64(); v != 254 {
		t.Errorf("sub wrap = %d", v)
	}
	mul := Mul(FromUint64(8, 20), FromUint64(8, 20))
	if v, _ := mul.Uint64(); v != 144 { // 400 mod 256
		t.Errorf("mul wrap = %d", v)
	}
	div := Div(FromUint64(8, 20), FromUint64(8, 3))
	if v, _ := div.Uint64(); v != 6 {
		t.Errorf("div = %d", v)
	}
	mod := Mod(FromUint64(8, 20), FromUint64(8, 3))
	if v, _ := mod.Uint64(); v != 2 {
		t.Errorf("mod = %d", v)
	}
	if !Div(FromUint64(8, 1), New(8)).HasUnknown() {
		t.Error("div by zero not x")
	}
	if !Add(AllX(4), FromUint64(4, 1)).HasUnknown() {
		t.Error("add with x not x")
	}
	neg := Neg(FromUint64(8, 1))
	if v, _ := neg.Uint64(); v != 255 {
		t.Errorf("neg = %d", v)
	}
}

func TestWideArithmetic(t *testing.T) {
	a := FromUint64(100, 1)
	b := Shl(a, FromUint64(8, 70)) // 2^70 in 100 bits
	c := Add(b, b)                 // 2^71
	d := Shr(c, FromUint64(8, 71))
	if v, ok := d.Uint64(); !ok || v != 1 {
		t.Errorf("wide add/shift chain = %s", d)
	}
	m := Mul(Shl(FromUint64(100, 1), FromUint64(8, 40)), Shl(FromUint64(100, 1), FromUint64(8, 41)))
	want := Shl(FromUint64(100, 1), FromUint64(8, 81))
	if !m.Equal(want) {
		t.Errorf("wide mul: got %s", m)
	}
}

func TestShifts(t *testing.T) {
	v := MustParse("1001")
	if got := Shl(v, FromUint64(3, 1)).String(); got != "0010" {
		t.Errorf("shl = %s", got)
	}
	if got := Shr(v, FromUint64(3, 1)).String(); got != "0100" {
		t.Errorf("shr = %s", got)
	}
	if got := Sshr(v, FromUint64(3, 1)).String(); got != "1100" {
		t.Errorf("sshr = %s", got)
	}
	if got := Sshr(MustParse("0110"), FromUint64(3, 2)).String(); got != "0001" {
		t.Errorf("sshr positive = %s", got)
	}
	if !Shl(v, AllX(2)).HasUnknown() {
		t.Error("shift by x not x")
	}
	if got := Shr(v, FromUint64(8, 200)).String(); got != "0000" {
		t.Errorf("over-shift = %s", got)
	}
}

func TestComparisons(t *testing.T) {
	a, b := FromUint64(8, 5), FromUint64(8, 9)
	checks := []struct {
		name string
		got  Vector
		want bool
	}{
		{"lt", Lt(a, b), true},
		{"gt", Gt(a, b), false},
		{"lte-eq", Lte(a, a), true},
		{"gte", Gte(b, a), true},
		{"eq", Eq(a, a), true},
		{"neq", Neq(a, b), true},
	}
	for _, c := range checks {
		if got := c.got; !got.Equal(Bool(c.want)) {
			t.Errorf("%s = %s, want %v", c.name, got, c.want)
		}
	}
	if !Eq(AllX(4), FromUint64(4, 2)).HasUnknown() {
		t.Error("eq with x should be x")
	}
	if !CaseEq(AllX(4), AllX(4)).Equal(Bool(true)) {
		t.Error("=== on identical x patterns should be 1")
	}
	if !CaseNeq(AllX(4), AllZ(4)).Equal(Bool(true)) {
		t.Error("!== on different patterns should be 1")
	}
}

func TestDifferentWidthComparison(t *testing.T) {
	if !Eq(FromUint64(4, 5), FromUint64(8, 5)).Equal(Bool(true)) {
		t.Error("width-mixed eq failed")
	}
	if !Lt(FromUint64(4, 15), FromUint64(8, 16)).Equal(Bool(true)) {
		t.Error("width-mixed lt failed")
	}
}

func TestLogicalOps(t *testing.T) {
	tr, fa, xv := FromUint64(4, 3), New(4), AllX(4)
	if !LAnd(tr, tr).Equal(Bool(true)) || !LAnd(tr, fa).Equal(Bool(false)) {
		t.Error("LAnd truth table")
	}
	if !LAnd(fa, xv).Equal(Bool(false)) {
		t.Error("0 && x must be 0")
	}
	if !LOr(tr, xv).Equal(Bool(true)) {
		t.Error("1 || x must be 1")
	}
	if !LOr(fa, xv).HasUnknown() {
		t.Error("0 || x must be x")
	}
	if !Not(fa).Equal(Bool(true)) || !Not(tr).Equal(Bool(false)) || !Not(xv).HasUnknown() {
		t.Error("Not truth table")
	}
}

func TestReductions(t *testing.T) {
	v := MustParse("1101")
	if !RedAnd(v).Equal(Bool(false)) || !RedOr(v).Equal(Bool(true)) || !RedXor(v).Equal(Bool(true)) {
		t.Errorf("reductions on %s wrong", v)
	}
	ones := MustParse("1111")
	if !RedAnd(ones).Equal(Bool(true)) || !RedXnor(ones).Equal(Bool(true)) {
		t.Error("reductions on all ones wrong")
	}
	if !RedAnd(MustParse("1x11")).HasUnknown() {
		t.Error("&1x11 should be x")
	}
	if !RedAnd(MustParse("0x11")).Equal(Bool(false)) {
		t.Error("&0x11 should be 0 (dominant zero)")
	}
	if !RedOr(MustParse("1x00")).Equal(Bool(true)) {
		t.Error("|1x00 should be 1 (dominant one)")
	}
}

func TestConcatReplicateSlice(t *testing.T) {
	c := Concat(MustParse("10"), MustParse("01"), MustParse("x"))
	if c.String() != "1001x" {
		t.Errorf("concat = %s", c)
	}
	r := Replicate(3, MustParse("10"))
	if r.String() != "101010" {
		t.Errorf("replicate = %s", r)
	}
	s := Slice(MustParse("110010"), 4, 1)
	if s.String() != "1001" {
		t.Errorf("slice = %s", s)
	}
	oob := Slice(MustParse("10"), 3, 0)
	if oob.String() != "xx10" {
		t.Errorf("out-of-range slice = %s", oob)
	}
	var v Vector = MustParse("0000")
	v.SetSlice(2, 1, MustParse("11"))
	if v.String() != "0110" {
		t.Errorf("SetSlice = %s", v)
	}
}

func TestMux(t *testing.T) {
	a, b := MustParse("1010"), MustParse("0110")
	if !Mux(Bool(true), a, b).Equal(a) || !Mux(Bool(false), a, b).Equal(b) {
		t.Error("mux select failed")
	}
	m := Mux(XBit(), a, b)
	if m.String() != "xx10" {
		t.Errorf("x-mux merge = %s", m)
	}
}

func TestCaseMatches(t *testing.T) {
	if !CaseZMatch(MustParse("1011"), MustParse("10zz")) {
		t.Error("casez wildcard failed")
	}
	if CaseZMatch(MustParse("1011"), MustParse("00zz")) {
		t.Error("casez false positive")
	}
	if CaseZMatch(MustParse("10x1"), MustParse("1001")) {
		t.Error("casez must not treat x as wildcard")
	}
	if !CaseXMatch(MustParse("10x1"), MustParse("1001")) {
		t.Error("casex must treat x as wildcard")
	}
}

func TestVerilogLiteral(t *testing.T) {
	if got := MustParse("1x0").VerilogLiteral(); got != "3'b1x0" {
		t.Errorf("literal = %s", got)
	}
}

// ---- property-based tests (testing/quick) ----

type u16pair struct{ A, B uint16 }

func TestQuickAddMatchesUint(t *testing.T) {
	f := func(p u16pair) bool {
		got, ok := Add(FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))).Uint64()
		return ok && uint16(got) == p.A+p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubMatchesUint(t *testing.T) {
	f := func(p u16pair) bool {
		got, ok := Sub(FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))).Uint64()
		return ok && uint16(got) == p.A-p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesUint(t *testing.T) {
	f := func(p u16pair) bool {
		got, ok := Mul(FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))).Uint64()
		return ok && uint16(got) == p.A*p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitwiseMatchesUint(t *testing.T) {
	f := func(p u16pair) bool {
		a, b := FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))
		and, ok1 := And(a, b).Uint64()
		or, ok2 := Or(a, b).Uint64()
		xor, ok3 := Xor(a, b).Uint64()
		return ok1 && ok2 && ok3 &&
			uint16(and) == p.A&p.B && uint16(or) == p.A|p.B && uint16(xor) == p.A^p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(p u16pair) bool {
		a, b := FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))
		return NotV(And(a, b)).Equal(Or(NotV(a), NotV(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(90)
		v := New(w)
		for j := 0; j < w; j++ {
			v.SetBit(j, Bit(rng.Intn(4)))
		}
		back, err := FromString(v.String())
		if err != nil || !back.Equal(v) {
			t.Fatalf("round trip failed for %s", v)
		}
	}
}

func TestQuickCaseEqReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(70)
		v := New(w)
		for j := 0; j < w; j++ {
			v.SetBit(j, Bit(rng.Intn(4)))
		}
		if !CaseEq(v, v).Equal(Bool(true)) {
			t.Fatalf("=== not reflexive for %s", v)
		}
	}
}

func TestQuickConcatSliceInverse(t *testing.T) {
	f := func(p u16pair) bool {
		a, b := FromUint64(16, uint64(p.A)), FromUint64(16, uint64(p.B))
		c := Concat(a, b)
		return Slice(c, 31, 16).Equal(a) && Slice(c, 15, 0).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftComposition(t *testing.T) {
	f := func(v uint16, nRaw uint8) bool {
		n := uint64(nRaw % 8)
		x := FromUint64(16, uint64(v))
		l := Shl(x, FromUint64(8, n))
		got, ok := l.Uint64()
		return ok && uint16(got) == v<<n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSshrMatchesSigned(t *testing.T) {
	f := func(v int16, nRaw uint8) bool {
		n := uint(nRaw % 16)
		x := FromUint64(16, uint64(uint16(v)))
		got, ok := Sshr(x, FromUint64(8, uint64(n))).Uint64()
		return ok && int16(uint16(got)) == v>>n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
