package logic

import "math/bits"

// This file implements the Verilog operator set on Vector values.
// Unless noted otherwise operands are first resized to a common width
// (the wider of the two, per IEEE 1364 self-determined/context rules as
// applied by the simulator) and results follow the standard
// X-propagation rules:
//
//   - bitwise operators use the per-bit four-state tables (0&x==0,
//     1|x==1, otherwise unknown inputs give x; z behaves as x),
//   - arithmetic, shifts by unknown amounts, and ordered comparisons
//     with any unknown bit yield all-x (or 1'bx for comparisons),
//   - logical operators use three-valued logic,
//   - case equality (===) is exact pattern comparison and always 0/1.
//
// The bitwise tables are evaluated 64 bits at a time on the aval/bval
// planes (a=0,b=0 -> 0; a=1,b=0 -> 1; a=0,b=1 -> z; a=1,b=1 -> x):
// "known one" is a&^b, "known zero" is ^a&^b, "unknown" is b. Narrow
// (width <= 64) vectors run the same kernels on their single inline
// word, allocation-free.

// bitKnown reports whether the bit is 0 or 1.
func bitKnown(b Bit) bool { return b == L0 || b == L1 }

func commonWidth(x, y Vector) (Vector, Vector, int) {
	if x.width == y.width {
		// No operator kernel writes through its operands, so equal
		// widths need no defensive resize copy.
		return x, y, x.width
	}
	w := x.width
	if y.width > w {
		w = y.width
	}
	return x.Resize(w), y.Resize(w), w
}

// wordOp combines one plane word of each operand into a result word.
type wordOp func(pa, pb, qa, qb uint64) (ra, rb uint64)

// bitwise applies a word-parallel four-state kernel at the common
// width. Kernels may produce garbage above the width; normalize clears
// it.
func bitwise(x, y Vector, f wordOp) Vector {
	xr, yr, w := commonWidth(x, y)
	if w <= wordBits {
		ra, rb := f(xr.a0, xr.b0, yr.a0, yr.b0)
		r := Vector{width: w, a0: ra, b0: rb}
		r.normalize()
		return r
	}
	r := New(w)
	for i := range r.wa {
		r.wa[i], r.wb[i] = f(xr.wa[i], xr.wb[i], yr.wa[i], yr.wb[i])
	}
	r.normalize()
	return r
}

// andWords: 0 dominates, 1&1=1, anything else x.
func andWords(pa, pb, qa, qb uint64) (uint64, uint64) {
	zero := (^pa & ^pb) | (^qa & ^qb)
	one := (pa &^ pb) & (qa &^ qb)
	x := ^(zero | one)
	return one | x, x
}

// orWords: 1 dominates, 0|0=0, anything else x.
func orWords(pa, pb, qa, qb uint64) (uint64, uint64) {
	one := (pa &^ pb) | (qa &^ qb)
	zero := (^pa & ^pb) & (^qa & ^qb)
	x := ^(zero | one)
	return one | x, x
}

// xorWords: both known -> a-plane xor, else x.
func xorWords(pa, pb, qa, qb uint64) (uint64, uint64) {
	known := ^pb & ^qb
	x := ^known
	return ((pa ^ qa) & known) | x, x
}

// notWords: 0<->1, x/z -> x.
func notWords(pa, pb uint64) (uint64, uint64) {
	return pb | (^pa & ^pb), pb
}

// And returns x & y.
func And(x, y Vector) Vector { return bitwise(x, y, andWords) }

// Or returns x | y.
func Or(x, y Vector) Vector { return bitwise(x, y, orWords) }

// Xor returns x ^ y.
func Xor(x, y Vector) Vector { return bitwise(x, y, xorWords) }

// Xnor returns x ~^ y.
func Xnor(x, y Vector) Vector { return NotV(Xor(x, y)) }

// andBit, orBit, xorBit are the scalar four-state tables, used by the
// reductions and kept as the reference definition of the word kernels.
func andBit(p, q Bit) Bit {
	if p == L0 || q == L0 {
		return L0
	}
	if p == L1 && q == L1 {
		return L1
	}
	return X
}

func orBit(p, q Bit) Bit {
	if p == L1 || q == L1 {
		return L1
	}
	if p == L0 && q == L0 {
		return L0
	}
	return X
}

func xorBit(p, q Bit) Bit {
	if !bitKnown(p) || !bitKnown(q) {
		return X
	}
	if p != q {
		return L1
	}
	return L0
}

// NotV returns ~x (bitwise negation). Named NotV to leave Not for the
// logical operator.
func NotV(x Vector) Vector {
	if x.small() {
		ra, rb := notWords(x.a0, x.b0)
		r := Vector{width: x.width, a0: ra, b0: rb}
		r.normalize()
		return r
	}
	r := New(x.width)
	for i := range r.wa {
		r.wa[i], r.wb[i] = notWords(x.wa[i], x.wb[i])
	}
	r.normalize()
	return r
}

// arithmetic helpers -------------------------------------------------

// addWords adds the a-planes of two fully known vectors of equal word
// count with carry-in, returning the raw words.
func addWords(x, y []uint64, carry uint64) []uint64 {
	out := make([]uint64, len(x))
	for i := range x {
		s := x[i] + y[i]
		c1 := uint64(0)
		if s < x[i] {
			c1 = 1
		}
		s2 := s + carry
		if s2 < s {
			c1 = 1
		}
		out[i] = s2
		carry = c1
	}
	return out
}

// Add returns x + y at the common width, wrapping; all-x on unknowns.
func Add(x, y Vector) Vector {
	xr, yr, w := commonWidth(x, y)
	if xr.HasUnknown() || yr.HasUnknown() {
		return AllX(w)
	}
	if w <= wordBits {
		return Vector{width: w, a0: (xr.a0 + yr.a0) & wmask(w)}
	}
	r := Vector{width: w, wa: addWords(xr.wa, yr.wa, 0), wb: make([]uint64, len(xr.wa))}
	r.normalize()
	return r
}

// Sub returns x - y at the common width, wrapping; all-x on unknowns.
func Sub(x, y Vector) Vector {
	xr, yr, w := commonWidth(x, y)
	if xr.HasUnknown() || yr.HasUnknown() {
		return AllX(w)
	}
	if w <= wordBits {
		return Vector{width: w, a0: (xr.a0 - yr.a0) & wmask(w)}
	}
	neg := make([]uint64, len(yr.wa))
	for i := range neg {
		neg[i] = ^yr.wa[i]
	}
	r := Vector{width: w, wa: addWords(xr.wa, neg, 1), wb: make([]uint64, len(xr.wa))}
	r.normalize()
	return r
}

// Neg returns -x (two's complement) at the width of x.
func Neg(x Vector) Vector { return Sub(New(x.width), x) }

// Mul returns x * y at the common width, wrapping; all-x on unknowns.
// Operands wider than 64 known bits fall back to all-x only if the
// product cannot be computed exactly in 128 bits; dataset circuits stay
// within 64 bits.
func Mul(x, y Vector) Vector {
	xr, yr, w := commonWidth(x, y)
	if xr.HasUnknown() || yr.HasUnknown() {
		return AllX(w)
	}
	if w <= wordBits {
		return Vector{width: w, a0: (xr.a0 * yr.a0) & wmask(w)}
	}
	// Schoolbook multiply on 32-bit limbs, truncated to w bits.
	limbs := func(v []uint64) []uint64 {
		out := make([]uint64, 0, len(v)*2)
		for _, x := range v {
			out = append(out, x&0xffffffff, x>>32)
		}
		return out
	}
	xa, ya := limbs(xr.wa), limbs(yr.wa)
	acc := make([]uint64, len(xa)+len(ya))
	for i, xv := range xa {
		var carry uint64
		for j, yv := range ya {
			cur := acc[i+j] + xv*yv + carry
			acc[i+j] = cur & 0xffffffff
			carry = cur >> 32
		}
		if i+len(ya) < len(acc) {
			acc[i+len(ya)] += carry
		}
	}
	r := New(w)
	for i := range r.wa {
		lo := uint64(0)
		if 2*i < len(acc) {
			lo = acc[2*i] & 0xffffffff
		}
		hi := uint64(0)
		if 2*i+1 < len(acc) {
			hi = acc[2*i+1] & 0xffffffff
		}
		r.wa[i] = lo | hi<<32
	}
	r.normalize()
	return r
}

// Div returns x / y (unsigned). Division by zero or unknowns give
// all-x, per IEEE 1364.
func Div(x, y Vector) Vector {
	xr, yr, w := commonWidth(x, y)
	xv, okx := xr.Uint64()
	yv, oky := yr.Uint64()
	if !okx || !oky || yv == 0 {
		return AllX(w)
	}
	return FromUint64(w, xv/yv)
}

// Mod returns x % y (unsigned). Zero modulus or unknowns give all-x.
func Mod(x, y Vector) Vector {
	xr, yr, w := commonWidth(x, y)
	xv, okx := xr.Uint64()
	yv, oky := yr.Uint64()
	if !okx || !oky || yv == 0 {
		return AllX(w)
	}
	return FromUint64(w, xv%yv)
}

// shifts ---------------------------------------------------------------

func shiftAmount(y Vector) (int, bool) {
	v, ok := y.Uint64()
	if !ok {
		return 0, false
	}
	if v > 1<<20 {
		v = 1 << 20 // clamp absurd amounts; result will be all zero anyway
	}
	return int(v), true
}

// Shl returns x << y at the width of x.
func Shl(x, y Vector) Vector {
	n, ok := shiftAmount(y)
	if !ok {
		return AllX(x.width)
	}
	if x.small() {
		r := Vector{width: x.width}
		if n < wordBits {
			r.a0 = x.a0 << uint(n)
			r.b0 = x.b0 << uint(n)
			r.normalize()
		}
		return r
	}
	r := New(x.width)
	for i := n; i < x.width; i++ {
		r.SetBit(i, x.Bit(i-n))
	}
	return r
}

// Shr returns x >> y (logical) at the width of x.
func Shr(x, y Vector) Vector {
	n, ok := shiftAmount(y)
	if !ok {
		return AllX(x.width)
	}
	if x.small() {
		r := Vector{width: x.width}
		if n < wordBits {
			r.a0 = x.a0 >> uint(n)
			r.b0 = x.b0 >> uint(n)
		}
		return r
	}
	r := New(x.width)
	for i := 0; i+n < x.width; i++ {
		r.SetBit(i, x.Bit(i+n))
	}
	return r
}

// Sshr returns x >>> y (arithmetic right shift: MSB replicated).
func Sshr(x, y Vector) Vector {
	n, ok := shiftAmount(y)
	if !ok {
		return AllX(x.width)
	}
	r := New(x.width)
	msb := x.Bit(x.width - 1)
	for i := 0; i < x.width; i++ {
		if i+n < x.width {
			r.SetBit(i, x.Bit(i+n))
		} else {
			r.SetBit(i, msb)
		}
	}
	return r
}

// comparisons ----------------------------------------------------------

// Bool converts a Go bool to a 1-bit vector.
func Bool(b bool) Vector {
	if b {
		return Vector{width: 1, a0: 1}
	}
	return Vector{width: 1}
}

// XBit returns the 1-bit unknown value.
func XBit() Vector { return Vector{width: 1, a0: 1, b0: 1} }

// Eq returns x == y as a 1-bit vector (x if any unknown bit).
func Eq(x, y Vector) Vector {
	xr, yr, _ := commonWidth(x, y)
	if xr.HasUnknown() || yr.HasUnknown() {
		return XBit()
	}
	return Bool(xr.Equal(yr))
}

// Neq returns x != y as a 1-bit vector.
func Neq(x, y Vector) Vector { return Not(Eq(x, y)) }

// CaseEq returns x === y as a 1-bit 0/1 vector (exact pattern match at
// the common width, zero extended).
func CaseEq(x, y Vector) Vector {
	xr, yr, _ := commonWidth(x, y)
	return Bool(xr.Equal(yr))
}

// CaseNeq returns x !== y.
func CaseNeq(x, y Vector) Vector { return Bool(!CaseEq(x, y).Equal(Bool(true))) }

func cmpUnsigned(x, y Vector) (int, bool) {
	xr, yr, _ := commonWidth(x, y)
	if xr.HasUnknown() || yr.HasUnknown() {
		return 0, false
	}
	if xr.small() {
		switch {
		case xr.a0 < yr.a0:
			return -1, true
		case xr.a0 > yr.a0:
			return 1, true
		}
		return 0, true
	}
	for i := len(xr.wa) - 1; i >= 0; i-- {
		if xr.wa[i] < yr.wa[i] {
			return -1, true
		}
		if xr.wa[i] > yr.wa[i] {
			return 1, true
		}
	}
	return 0, true
}

// Lt returns x < y (unsigned) as a 1-bit vector.
func Lt(x, y Vector) Vector {
	c, ok := cmpUnsigned(x, y)
	if !ok {
		return XBit()
	}
	return Bool(c < 0)
}

// Lte returns x <= y (unsigned).
func Lte(x, y Vector) Vector {
	c, ok := cmpUnsigned(x, y)
	if !ok {
		return XBit()
	}
	return Bool(c <= 0)
}

// Gt returns x > y (unsigned).
func Gt(x, y Vector) Vector {
	c, ok := cmpUnsigned(x, y)
	if !ok {
		return XBit()
	}
	return Bool(c > 0)
}

// Gte returns x >= y (unsigned).
func Gte(x, y Vector) Vector {
	c, ok := cmpUnsigned(x, y)
	if !ok {
		return XBit()
	}
	return Bool(c >= 0)
}

// logical (three-valued) ------------------------------------------------

// Truth classifies a vector as true (any known 1 bit), false (all bits
// known 0) or unknown.
func Truth(x Vector) Bit {
	if x.small() {
		if x.a0&^x.b0 != 0 {
			return L1
		}
		if x.b0 != 0 {
			return X
		}
		return L0
	}
	sawUnknown := false
	for i := range x.wa {
		if x.wa[i]&^x.wb[i] != 0 {
			return L1
		}
		if x.wb[i] != 0 {
			sawUnknown = true
		}
	}
	if sawUnknown {
		return X
	}
	return L0
}

// Not returns !x as a 1-bit vector.
func Not(x Vector) Vector {
	switch Truth(x) {
	case L1:
		return Bool(false)
	case L0:
		return Bool(true)
	default:
		return XBit()
	}
}

// LAnd returns x && y as a 1-bit vector.
func LAnd(x, y Vector) Vector {
	p, q := Truth(x), Truth(y)
	if p == L0 || q == L0 {
		return Bool(false)
	}
	if p == L1 && q == L1 {
		return Bool(true)
	}
	return XBit()
}

// LOr returns x || y as a 1-bit vector.
func LOr(x, y Vector) Vector {
	p, q := Truth(x), Truth(y)
	if p == L1 || q == L1 {
		return Bool(true)
	}
	if p == L0 && q == L0 {
		return Bool(false)
	}
	return XBit()
}

// reductions -------------------------------------------------------------

// RedAnd returns &x.
func RedAnd(x Vector) Vector {
	if x.small() {
		m := wmask(x.width)
		if (^x.a0 & ^x.b0 & m) != 0 { // any known 0
			return Bool(false)
		}
		if x.b0 != 0 { // no known 0, some unknown
			return XBit()
		}
		return Bool(true)
	}
	r := L1
	for i := 0; i < x.width; i++ {
		r = andBit(r, x.Bit(i))
		if r == L0 {
			return Bool(false)
		}
	}
	return bitVec(r)
}

// RedOr returns |x.
func RedOr(x Vector) Vector {
	if x.small() {
		if x.a0&^x.b0 != 0 { // any known 1
			return Bool(true)
		}
		if x.b0 != 0 {
			return XBit()
		}
		return Bool(false)
	}
	r := L0
	for i := 0; i < x.width; i++ {
		r = orBit(r, x.Bit(i))
		if r == L1 {
			return Bool(true)
		}
	}
	return bitVec(r)
}

// RedXor returns ^x.
func RedXor(x Vector) Vector {
	if x.small() {
		if x.b0 != 0 {
			return XBit()
		}
		return Bool(bits.OnesCount64(x.a0)%2 == 1)
	}
	r := L0
	for i := 0; i < x.width; i++ {
		r = xorBit(r, x.Bit(i))
	}
	return bitVec(r)
}

// RedNand, RedNor, RedXnor are the negated reductions.
func RedNand(x Vector) Vector { return NotV(RedAnd(x)) }
func RedNor(x Vector) Vector  { return NotV(RedOr(x)) }
func RedXnor(x Vector) Vector { return NotV(RedXor(x)) }

func bitVec(b Bit) Vector {
	v := New(1)
	v.SetBit(0, b)
	return v
}

// structure --------------------------------------------------------------

// Concat concatenates the operands, first listed = most significant,
// matching Verilog {a, b, c}.
func Concat(parts ...Vector) Vector {
	total := 0
	for _, p := range parts {
		total += p.width
	}
	if total <= wordBits {
		// Every part is narrow when the total fits one word.
		r := Vector{width: total}
		pos := uint(0)
		for i := len(parts) - 1; i >= 0; i-- {
			p := parts[i]
			r.a0 |= p.a0 << pos
			r.b0 |= p.b0 << pos
			pos += uint(p.width)
		}
		r.normalize()
		return r
	}
	r := New(total)
	pos := 0
	for i := len(parts) - 1; i >= 0; i-- {
		p := parts[i]
		for j := 0; j < p.width; j++ {
			r.SetBit(pos+j, p.Bit(j))
		}
		pos += p.width
	}
	return r
}

// Replicate returns {n{x}}.
func Replicate(n int, x Vector) Vector {
	if n < 1 {
		panic("logic: replication count must be >= 1")
	}
	parts := make([]Vector, n)
	for i := range parts {
		parts[i] = x
	}
	return Concat(parts...)
}

// Slice returns x[hi:lo] as a new vector of width hi-lo+1. Bits outside
// x read as X, matching Verilog out-of-range part selects.
func Slice(x Vector, hi, lo int) Vector {
	if hi < lo {
		hi, lo = lo, hi
	}
	if x.small() && lo >= 0 {
		// hi < x.width <= 64 would make this a plain shift; out-of-range
		// high bits are filled with X.
		w := hi - lo + 1
		if w <= wordBits {
			valid := x.width - lo
			if valid <= 0 {
				return AllX(w)
			}
			if valid > w {
				valid = w
			}
			vm := wmask(valid)
			fill := wmask(w) &^ vm // positions beyond x read X
			return Vector{
				width: w,
				a0:    (x.a0>>uint(lo))&vm | fill,
				b0:    (x.b0>>uint(lo))&vm | fill,
			}
		}
	}
	r := New(hi - lo + 1)
	for i := lo; i <= hi; i++ {
		if i >= 0 && i < x.width {
			r.SetBit(i-lo, x.Bit(i))
		} else {
			r.SetBit(i-lo, X)
		}
	}
	return r
}

// SetSlice writes val into x[hi:lo] in place (truncating or
// zero-extending val to the slice width).
func (v *Vector) SetSlice(hi, lo int, val Vector) {
	if hi < lo {
		hi, lo = lo, hi
	}
	vr := val.Resize(hi - lo + 1)
	if v.small() && lo >= 0 && hi < v.width {
		m := wmask(hi-lo+1) << uint(lo)
		v.a0 = v.a0&^m | vr.a0<<uint(lo)
		v.b0 = v.b0&^m | vr.b0<<uint(lo)
		return
	}
	for i := lo; i <= hi; i++ {
		if i >= 0 && i < v.width {
			v.SetBit(i, vr.Bit(i-lo))
		}
	}
}

// Mux returns sel ? a : b with Verilog ternary X-merging: when sel is
// unknown, bits where a and b agree keep that value and others are X.
func Mux(sel, a, b Vector) Vector {
	switch Truth(sel) {
	case L1:
		return a.clone()
	case L0:
		return b.clone()
	}
	// Unknown select: keep bits where both sides agree on a known
	// value, X elsewhere.
	agree := func(pa, pb, qa, qb uint64) (uint64, uint64) {
		same := ^(pa ^ qa) & ^(pb ^ qb) & ^pb // equal planes, known
		keep := pa & same
		x := ^same
		return keep | x, x
	}
	return bitwise(a, b, agree)
}

// CaseZMatch reports whether value matches pattern treating Z/? bits in
// the pattern (and value) as don't-care, per casez.
func CaseZMatch(value, pattern Vector) bool {
	vr, pr, w := commonWidth(value, pattern)
	nw := words(w)
	for i := 0; i < nw; i++ {
		va, vb := vr.aword(i), vr.bword(i)
		pa, pb := pr.aword(i), pr.bword(i)
		care := ^(vb &^ va) & ^(pb &^ pa) // neither side Z
		if ((va^pa)|(vb^pb))&care != 0 {
			return false
		}
	}
	return true
}

// CaseXMatch is CaseZMatch with X also a don't-care, per casex.
func CaseXMatch(value, pattern Vector) bool {
	vr, pr, w := commonWidth(value, pattern)
	nw := words(w)
	for i := 0; i < nw; i++ {
		va, vb := vr.aword(i), vr.bword(i)
		pa, pb := pr.aword(i), pr.bword(i)
		care := ^vb & ^pb // neither side X or Z
		if (va^pa)&care != 0 {
			return false
		}
	}
	return true
}
