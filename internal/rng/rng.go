// Package rng provides hierarchical, order-independent random-stream
// derivation for the experiment harness.
//
// The harness runs a three-dimensional grid of cells — (method,
// repetition, problem) — and each cell consumes randomness. Threading
// one *rand.Rand through the grid in iteration order makes every
// cell's stream depend on how many random draws every earlier cell
// happened to make, so no cell can be re-run, skipped, or executed on
// another goroutine without changing its results. This package
// replaces that with a derivation tree:
//
//	root := rng.New(experimentSeed)
//	cell := root.Child("method", string(method)).
//	             ChildN("rep", rep).
//	             Child("problem", p.Name)
//	r := cell.Rand() // the cell's private *rand.Rand
//
// Every node is a pure value: deriving a child never mutates the
// parent, the same path always yields the same stream, and sibling
// streams are statistically independent. That is what lets a worker
// pool execute cells in any order — or all at once — while producing
// bit-for-bit the results of a sequential run.
//
// Derivation mixes the parent state with an FNV-1a hash of the edge
// label through two rounds of the splitmix64 finalizer (Steele et
// al., "Fast Splittable Pseudorandom Number Generators", OOPSLA '14).
// splitmix64 is a bijective avalanche function: distinct (parent,
// label) pairs map to well-separated child states, so even labels
// differing in one bit ("rep 1" vs "rep 2") produce uncorrelated
// streams. The derived state seeds a standard math/rand generator, so
// downstream code keeps its familiar *rand.Rand interface.
package rng

import "math/rand"

// Stream is one node of the derivation tree. The zero value is a
// valid stream (the tree rooted at seed 0); New gives a seeded root.
// Streams are immutable values: methods return new Streams and are
// safe for concurrent use.
type Stream struct {
	state uint64
}

// New returns the root stream of an experiment.
func New(seed int64) Stream {
	// One finalizer round up front so that small user seeds (0, 1, 42)
	// land in well-mixed states.
	return Stream{state: splitmix64(uint64(seed))}
}

// Child derives the sub-stream for a labeled edge, e.g.
// ("method", "CorrectBench"). The label namespaces the edge so that
// Child("a", "bc") and Child("ab", "c") differ.
func (s Stream) Child(kind, label string) Stream {
	h := fnv64a(kind)
	h = splitmix64(h ^ fnv64a(label))
	return Stream{state: splitmix64(s.state ^ h)}
}

// ChildN derives the sub-stream for an indexed edge, e.g. ("rep", 3).
func (s Stream) ChildN(kind string, i int) Stream {
	h := splitmix64(fnv64a(kind) ^ uint64(int64(i)))
	return Stream{state: splitmix64(s.state ^ h)}
}

// Seed returns a 63-bit seed for external generators.
func (s Stream) Seed() int64 {
	return int64(splitmix64(s.state) >> 1)
}

// Rand returns a fresh math/rand generator over this stream. Each
// call returns an independent generator with identical output, so a
// retried cell replays exactly.
func (s Stream) Rand() *rand.Rand {
	return rand.New(rand.NewSource(s.Seed()))
}

// splitmix64 is the finalizer of the splitmix64 generator: a bijection
// on uint64 with full avalanche (every input bit flips ~half the
// output bits).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a label with 64-bit FNV-1a.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
