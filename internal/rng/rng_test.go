package rng

import "testing"

func TestDerivationIsDeterministic(t *testing.T) {
	a := New(42).Child("method", "CorrectBench").ChildN("rep", 3).Child("problem", "cnt8")
	b := New(42).Child("method", "CorrectBench").ChildN("rep", 3).Child("problem", "cnt8")
	if a.Seed() != b.Seed() {
		t.Fatalf("same path, different seeds: %d vs %d", a.Seed(), b.Seed())
	}
	r1, r2 := a.Rand(), a.Rand()
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatalf("Rand() not replayable at draw %d", i)
		}
	}
}

func TestDerivationIsPure(t *testing.T) {
	root := New(7)
	before := root.Seed()
	_ = root.Child("x", "y")
	_ = root.ChildN("n", 9)
	if root.Seed() != before {
		t.Fatal("deriving children mutated the parent")
	}
}

func TestSiblingsDiffer(t *testing.T) {
	root := New(1)
	seen := map[int64]string{}
	check := func(name string, s Stream) {
		t.Helper()
		if prev, dup := seen[s.Seed()]; dup {
			t.Fatalf("streams %q and %q collide", prev, name)
		}
		seen[s.Seed()] = name
	}
	// Same-length method names must not collide (the bug in the old
	// int64(len(method))*104729 mixing).
	check("m/AAAA", root.Child("method", "AAAA"))
	check("m/BBBB", root.Child("method", "BBBB"))
	// Label boundaries must matter.
	check("a|bc", root.Child("a", "bc"))
	check("ab|c", root.Child("ab", "c"))
	// Indexed siblings, including negatives and zero.
	for _, i := range []int{-2, -1, 0, 1, 2, 100} {
		check("rep", root.ChildN("rep", i))
	}
	// Same edge under different parents.
	check("p1/x", New(1).Child("k", "x"))
	check("p2/x", New(2).Child("k", "x"))
}

func TestKindNamespacesIndex(t *testing.T) {
	root := New(3)
	if root.ChildN("rep", 1).Seed() == root.ChildN("problem", 1).Seed() {
		t.Fatal("index collides across kinds")
	}
	if root.Child("k", "a").Seed() == root.ChildN("k", 0).Seed() {
		t.Fatal("labeled and indexed edges collide")
	}
}

func TestStreamsLookRandom(t *testing.T) {
	// Crude avalanche check: across 1000 adjacent-index siblings the
	// per-bit averages of the derived seeds should be near 0.5.
	root := New(99)
	const n = 1000
	var ones [63]int
	for i := 0; i < n; i++ {
		s := uint64(root.ChildN("cell", i).Seed())
		for b := 0; b < 63; b++ {
			if s&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b := 0; b < 63; b++ {
		frac := float64(ones[b]) / n
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("bit %d set in %.0f%% of sibling seeds", b, frac*100)
		}
	}
}
