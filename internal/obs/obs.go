// Package obs is the harness's zero-dependency observability layer:
// per-cell phase tracing (span trees with deterministic span IDs) and
// lock-free latency histograms aggregated per phase and per node.
//
// Everything in this package is operational metadata — the same class
// of data as CellFinished.Duration: wall-clock timings recorded off
// the wire, never serialized into event streams, result tables or
// store records. Enabling or disabling tracing cannot change a single
// byte of a run's deterministic surface; the differential tests pin
// that contract. Only the *identifiers* are deterministic: a span's ID
// is a pure function of its cell's content address, its phase name and
// its sequence number, so two traces of the same cell are directly
// comparable even though their timings differ.
//
// The pieces, bottom to top:
//
//   - PhaseSample: one timed phase occurrence inside a cell, with
//     offsets relative to a trace epoch. This is the portable form —
//     fleet workers time their phases locally and ship samples back in
//     the result frame; the coordinator rebases them onto its own
//     timeline (Rebase).
//   - Collector: accumulates a cell's samples as the cell executes,
//     carried through the execution path inside a context.Context
//     (WithCollector / FromContext / Time). All methods are nil-safe,
//     so instrumentation points cost one pointer check when tracing is
//     off.
//   - CellTrace / Span / BuildSpans: the assembled span tree of one
//     finished cell, with parent links resolved to deterministic IDs.
//   - JobTrace: one run's cell traces, in canonical index order.
//   - Histogram / Observer (hist.go): power-of-two-bucket latency
//     aggregation behind /metrics.
package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Phase names used across the execution path. Executors and the
// harness agree on these so histograms aggregate correctly; sub-phases
// (sim_*) nest under whichever phase is current when they run.
const (
	PhaseQueueWait = "queue_wait"      // executor accepted the cell -> dispatched it
	PhaseLookup    = "store_lookup"    // result-store resolution before scheduling
	PhaseDispatch  = "dispatch"        // writing the run frame to a worker
	PhaseRoundtrip = "net_roundtrip"   // dispatch -> result frame received
	PhaseSimulate  = "simulate"        // testbench generation (method-specific)
	PhaseGrade     = "grade"           // AutoEval grading of the generated testbench
	PhaseWriteback = "store_writeback" // persisting the finished cell
	PhaseElaborate = "sim_elaborate"   // parsing + module elaboration (internal/sim)
	PhaseCompile   = "sim_compile"     // closure/program compilation (internal/sim)
	PhaseRun       = "sim_run"         // scenario stepping (internal/testbench)
)

// PhaseSample is one timed phase occurrence within a cell. StartUS and
// DurUS are microsecond offsets relative to the trace epoch (the run
// start on a coordinator, the execution start on a fleet worker — see
// Rebase). Seq numbers samples within their origin; ParentSeq links a
// nested sample to its enclosing one (-1: a root).
type PhaseSample struct {
	Phase     string `json:"phase"`
	Seq       int    `json:"seq"`
	ParentSeq int    `json:"parent_seq"`
	Node      string `json:"node,omitempty"`
	StartUS   int64  `json:"start_us"`
	DurUS     int64  `json:"dur_us"`
}

// Rebase shifts samples onto an enclosing timeline: sequence numbers
// move up by seqBase, roots are re-parented to parent (pass -1 to keep
// them roots), start offsets move by startUS, and samples without a
// node inherit node. The input is not modified. This is how a fleet
// worker's locally-timed samples graft under the coordinator's
// net_roundtrip span.
func Rebase(samples []PhaseSample, seqBase, parent int, startUS int64, node string) []PhaseSample {
	out := make([]PhaseSample, len(samples))
	for i, s := range samples {
		s.Seq += seqBase
		if s.ParentSeq < 0 {
			s.ParentSeq = parent
		} else {
			s.ParentSeq += seqBase
		}
		s.StartUS += startUS
		if s.Node == "" {
			s.Node = node
		}
		out[i] = s
	}
	return out
}

// NextSeq returns the first unused sequence number after samples.
func NextSeq(samples []PhaseSample) int {
	next := 0
	for _, s := range samples {
		if s.Seq >= next {
			next = s.Seq + 1
		}
	}
	return next
}

// Collector accumulates one cell's phase samples. It is carried
// through the execution path in a context (WithCollector); every
// method is safe on a nil receiver, so instrumentation is free when
// tracing is off. Phases are assumed to nest (each cell executes
// sequentially); a mutex keeps concurrent use memory-safe regardless.
type Collector struct {
	epoch time.Time

	mu    sync.Mutex
	next  int
	stack []int // open phase seqs, innermost last
	out   []PhaseSample
}

// NewCollector returns a collector whose sample offsets are relative
// to epoch.
func NewCollector(epoch time.Time) *Collector { return &Collector{epoch: epoch} }

// Start opens a phase and returns its closer. The sample is recorded
// when the closer runs, parented to whatever phase was innermost at
// Start time.
func (c *Collector) Start(phase string) func() {
	if c == nil {
		return noop
	}
	start := time.Now() //detlint:allow phase timings are wall-clock metadata, never on the deterministic surface
	c.mu.Lock()
	seq := c.next
	c.next++
	parent := -1
	if n := len(c.stack); n > 0 {
		parent = c.stack[n-1]
	}
	c.stack = append(c.stack, seq)
	c.mu.Unlock()
	return func() {
		end := time.Now() //detlint:allow phase timings are wall-clock metadata, never on the deterministic surface
		c.mu.Lock()
		for i := len(c.stack) - 1; i >= 0; i-- {
			if c.stack[i] == seq {
				c.stack = append(c.stack[:i], c.stack[i+1:]...)
				break
			}
		}
		c.out = append(c.out, PhaseSample{
			Phase:     phase,
			Seq:       seq,
			ParentSeq: parent,
			StartUS:   start.Sub(c.epoch).Microseconds(),
			DurUS:     end.Sub(start).Microseconds(),
		})
		c.mu.Unlock()
	}
}

// Add records an externally timed sample (e.g. queue_wait measured by
// an executor) verbatim, claiming its Seq as used.
func (c *Collector) Add(s PhaseSample) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if s.Seq >= c.next {
		c.next = s.Seq + 1
	}
	c.out = append(c.out, s)
	c.mu.Unlock()
}

// Samples returns the recorded samples (a copy), in recording order.
func (c *Collector) Samples() []PhaseSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PhaseSample(nil), c.out...)
}

// Epoch returns the collector's time origin.
func (c *Collector) Epoch() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.epoch
}

var noop = func() {}

type ctxKey struct{}

// WithCollector attaches a collector to a context for the execution
// path below to find.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the context's collector, or nil.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// Time opens a phase on the context's collector and returns its
// closer; a no-op closer when the context carries none. The idiomatic
// instrumentation point is
//
//	defer obs.Time(ctx, obs.PhaseRun)()
func Time(ctx context.Context, phase string) func() {
	return FromContext(ctx).Start(phase)
}

// ---- assembled traces ----

// Span is one node of a cell's span tree: a phase occurrence with its
// deterministic identity resolved. IDs are pure functions of the
// cell's content address, the phase name and the sequence number
// (SpanID), so spans of two runs of the same cell correspond 1:1.
type Span struct {
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Phase   string `json:"phase"`
	Node    string `json:"node,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// CellTrace is the span tree of one finished cell — one line of the
// job trace NDJSON stream. Key doubles as the trace ID every span ID
// derives from.
type CellTrace struct {
	Index   int    `json:"index"`
	Method  string `json:"method"`
	Rep     int    `json:"rep"`
	Problem string `json:"problem"`
	Key     string `json:"key"`
	Node    string `json:"node,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
	Spans   []Span `json:"spans"`
}

// SpanID derives the deterministic span identifier: the first 8 bytes
// (hex) of SHA-256 over the trace ID, phase name and sequence number.
func SpanID(traceID, phase string, seq int) string {
	h := sha256.New()
	h.Write([]byte(traceID))
	h.Write([]byte{0})
	h.Write([]byte(phase))
	h.Write([]byte{0, byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)})
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// BuildSpans assembles samples into the span list of a trace: IDs and
// parent links resolved via SpanID, ordered by start offset (sequence
// number on ties) so the list reads chronologically.
func BuildSpans(traceID string, samples []PhaseSample) []Span {
	phaseBySeq := make(map[int]PhaseSample, len(samples))
	for _, s := range samples {
		phaseBySeq[s.Seq] = s
	}
	out := make([]Span, 0, len(samples))
	for _, s := range samples {
		sp := Span{
			ID:      SpanID(traceID, s.Phase, s.Seq),
			Phase:   s.Phase,
			Node:    s.Node,
			StartUS: s.StartUS,
			DurUS:   s.DurUS,
		}
		if p, ok := phaseBySeq[s.ParentSeq]; ok && s.ParentSeq >= 0 {
			sp.Parent = SpanID(traceID, p.Phase, p.Seq)
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// JobTrace accumulates the cell traces of one run. Cells() returns
// them in canonical index order regardless of completion order, so the
// trace stream — like the event stream — reads in grid order.
type JobTrace struct {
	mu    sync.Mutex
	cells []CellTrace
}

// Add records one finished cell's trace. Safe for concurrent use.
func (t *JobTrace) Add(ct CellTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cells = append(t.cells, ct)
	t.mu.Unlock()
}

// Cells returns the traces recorded so far, sorted by canonical cell
// index.
func (t *JobTrace) Cells() []CellTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]CellTrace(nil), t.cells...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
