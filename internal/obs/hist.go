package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a latency histogram. Bucket i
// holds observations whose microsecond value has bit length i, i.e.
// durations in [2^(i-1), 2^i) µs; bucket 0 holds sub-microsecond
// observations. 48 buckets cover ~8.9 years, far past any phase.
const histBuckets = 48

// Histogram is a lock-free power-of-two-bucket latency histogram:
// Observe is a few atomic adds, so the hot execution path can record
// every phase of every cell without contending on a lock. Quantiles
// are estimated from a snapshot by log-linear interpolation inside the
// winning bucket — exact to within a factor of 2, which is the right
// fidelity for "where did the time go" questions.
type Histogram struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.count.Add(1)
	h.sumUS.Add(uint64(us))
	h.buckets[i].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram's counters.
type HistSnapshot struct {
	Count   uint64
	SumUS   uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the counters. Concurrent Observe calls may land
// between bucket reads; the snapshot is still internally plausible
// (monotone counters, count >= sum of observed buckets read earlier).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) in microseconds by
// locating the bucket holding the q-th observation and interpolating
// geometrically within its [2^(i-1), 2^i) range. Returns 0 for an
// empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == histBuckets-1 {
			if i == 0 {
				return 0 // sub-microsecond bucket
			}
			lo := math.Exp2(float64(i - 1))
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			// Geometric interpolation: the bucket spans one octave.
			return lo * math.Exp2(frac)
		}
		cum = next
	}
	return 0
}

// PhaseKey identifies one histogram: a phase name plus the node that
// executed it ("" for this process).
type PhaseKey struct {
	Phase string
	Node  string
}

// PhaseStats is one row of an Observer snapshot: a (phase, node)
// histogram rendered to the percentiles /metrics exposes.
type PhaseStats struct {
	Phase string
	Node  string
	Count uint64
	SumUS uint64
	P50   float64 // microseconds
	P90   float64
	P99   float64
}

// Observer is the process-level aggregation point: one histogram per
// (phase, node) fed by every traced run of a client, plus a sliding
// one-minute completion-rate window for /metrics. Histogram updates
// are lock-free; the map of histograms takes a read lock on the fast
// path and a write lock only when a new (phase, node) pair first
// appears.
type Observer struct {
	mu    sync.RWMutex
	hists map[PhaseKey]*Histogram
	rate  RateWindow
}

// NewObserver returns an empty observer.
func NewObserver() *Observer {
	return &Observer{hists: map[PhaseKey]*Histogram{}}
}

// Hist returns the histogram for a (phase, node) pair, creating it on
// first use.
func (o *Observer) Hist(phase, node string) *Histogram {
	key := PhaseKey{Phase: phase, Node: node}
	o.mu.RLock()
	h := o.hists[key]
	o.mu.RUnlock()
	if h != nil {
		return h
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if h = o.hists[key]; h == nil {
		h = &Histogram{}
		o.hists[key] = h
	}
	return h
}

// ObserveSamples records every sample's duration into its (phase,
// node) histogram. Nil-safe.
func (o *Observer) ObserveSamples(samples []PhaseSample) {
	if o == nil {
		return
	}
	for _, s := range samples {
		o.Hist(s.Phase, s.Node).Observe(time.Duration(s.DurUS) * time.Microsecond)
	}
}

// CellDone bumps the completion-rate window. Nil-safe.
func (o *Observer) CellDone(now time.Time) {
	if o == nil {
		return
	}
	o.rate.Bump(now)
}

// Rate reports cell completions per second over the trailing minute.
func (o *Observer) Rate(now time.Time) float64 {
	if o == nil {
		return 0
	}
	return o.rate.Rate(now)
}

// Snapshot renders every histogram to its percentile row, sorted by
// (phase, node) so /metrics output is stable.
func (o *Observer) Snapshot() []PhaseStats {
	if o == nil {
		return nil
	}
	o.mu.RLock()
	keys := make([]PhaseKey, 0, len(o.hists))
	for k := range o.hists {
		keys = append(keys, k)
	}
	o.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Phase != keys[j].Phase {
			return keys[i].Phase < keys[j].Phase
		}
		return keys[i].Node < keys[j].Node
	})
	out := make([]PhaseStats, 0, len(keys))
	for _, k := range keys {
		s := o.Hist(k.Phase, k.Node).Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, PhaseStats{
			Phase: k.Phase,
			Node:  k.Node,
			Count: s.Count,
			SumUS: s.SumUS,
			P50:   s.Quantile(0.50),
			P90:   s.Quantile(0.90),
			P99:   s.Quantile(0.99),
		})
	}
	return out
}

// rateBuckets is the sliding window's resolution: one bucket per
// second over the trailing minute.
const rateBuckets = 60

// RateWindow counts events over a trailing one-minute window with
// per-second buckets, for the /metrics cells_per_sec_1m gauge — the
// fix for the lifetime cells_per_sec rate that decays toward zero the
// longer an idle daemon runs. A window bump is one short mutex hold
// (once per finished cell — far off any hot path).
type RateWindow struct {
	mu     sync.Mutex
	secs   [rateBuckets]int64 // unix second each bucket currently counts
	counts [rateBuckets]uint64
}

// Bump records one event at now.
func (r *RateWindow) Bump(now time.Time) {
	sec := now.Unix()
	i := int(sec % rateBuckets)
	if i < 0 {
		i += rateBuckets
	}
	r.mu.Lock()
	if r.secs[i] != sec {
		r.secs[i] = sec
		r.counts[i] = 0
	}
	r.counts[i]++
	r.mu.Unlock()
}

// Rate reports events per second over the window ending at now:
// events within the last rateBuckets seconds divided by the window
// length.
func (r *RateWindow) Rate(now time.Time) float64 {
	sec := now.Unix()
	total := uint64(0)
	r.mu.Lock()
	for i := range r.secs {
		if age := sec - r.secs[i]; age >= 0 && age < rateBuckets {
			total += r.counts[i]
		}
	}
	r.mu.Unlock()
	return float64(total) / float64(rateBuckets)
}
