package obs

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCollectorNesting(t *testing.T) {
	epoch := time.Now()
	c := NewCollector(epoch)
	endOuter := c.Start("simulate")
	endInner := c.Start("sim_elaborate")
	endInner()
	endOuter()
	endRoot := c.Start("grade")
	endRoot()

	s := c.Samples()
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	// Recording order is close order: inner first.
	if s[0].Phase != "sim_elaborate" || s[0].ParentSeq != 0 {
		t.Fatalf("inner sample = %+v, want phase sim_elaborate parented to seq 0", s[0])
	}
	if s[1].Phase != "simulate" || s[1].ParentSeq != -1 {
		t.Fatalf("outer sample = %+v, want root simulate", s[1])
	}
	if s[2].Phase != "grade" || s[2].ParentSeq != -1 || s[2].Seq != 2 {
		t.Fatalf("grade sample = %+v, want root seq 2", s[2])
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Start("x")() // must not panic
	c.Add(PhaseSample{})
	if c.Samples() != nil {
		t.Fatal("nil collector returned samples")
	}
	// A context without a collector yields a no-op closer.
	Time(context.Background(), "y")()
}

func TestRebase(t *testing.T) {
	in := []PhaseSample{
		{Phase: "simulate", Seq: 0, ParentSeq: -1, StartUS: 10, DurUS: 5},
		{Phase: "sim_run", Seq: 1, ParentSeq: 0, StartUS: 12, DurUS: 2},
	}
	out := Rebase(in, 3, 2, 100, "w1")
	if out[0].Seq != 3 || out[0].ParentSeq != 2 || out[0].StartUS != 110 || out[0].Node != "w1" {
		t.Fatalf("root rebased to %+v", out[0])
	}
	if out[1].Seq != 4 || out[1].ParentSeq != 3 || out[1].StartUS != 112 {
		t.Fatalf("child rebased to %+v", out[1])
	}
	if in[0].Seq != 0 {
		t.Fatal("Rebase modified its input")
	}
	if got := NextSeq(out); got != 5 {
		t.Fatalf("NextSeq = %d, want 5", got)
	}
}

func TestSpanIDDeterministic(t *testing.T) {
	a := SpanID("trace1", "simulate", 3)
	b := SpanID("trace1", "simulate", 3)
	if a != b {
		t.Fatalf("same inputs gave %s and %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("span ID %q is not 16 hex chars", a)
	}
	for _, other := range []string{
		SpanID("trace2", "simulate", 3),
		SpanID("trace1", "grade", 3),
		SpanID("trace1", "simulate", 4),
	} {
		if other == a {
			t.Fatalf("distinct inputs collided on %s", a)
		}
	}
}

func TestBuildSpans(t *testing.T) {
	samples := []PhaseSample{
		{Phase: "sim_run", Seq: 1, ParentSeq: 0, StartUS: 20, DurUS: 5},
		{Phase: "simulate", Seq: 0, ParentSeq: -1, StartUS: 10, DurUS: 20},
	}
	spans := BuildSpans("t", samples)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Sorted by start offset.
	if spans[0].Phase != "simulate" || spans[1].Phase != "sim_run" {
		t.Fatalf("order = %s, %s", spans[0].Phase, spans[1].Phase)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent %q != root id %q", spans[1].Parent, spans[0].ID)
	}
	if spans[0].Parent != "" {
		t.Fatalf("root has parent %q", spans[0].Parent)
	}
}

func TestJobTraceOrder(t *testing.T) {
	var jt JobTrace
	jt.Add(CellTrace{Index: 2})
	jt.Add(CellTrace{Index: 0})
	jt.Add(CellTrace{Index: 1})
	cells := jt.Cells()
	for i, ct := range cells {
		if ct.Index != i {
			t.Fatalf("cells[%d].Index = %d", i, ct.Index)
		}
	}
	var nilTrace *JobTrace
	nilTrace.Add(CellTrace{}) // nil-safe
	if nilTrace.Cells() != nil {
		t.Fatal("nil JobTrace returned cells")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations at ~1ms, 10 at ~100ms: p50 in the 1ms octave,
	// p99 at least in the upper population's neighborhood.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1010 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %.0fus, want within the 1ms octave", p50)
	}
	p999 := s.Quantile(0.9999)
	if p999 < 50_000 || p999 > 200_000 {
		t.Fatalf("p99.99 = %.0fus, want within the 100ms octave", p999)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for us := int64(1); us < 1<<20; us *= 3 {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	s := h.Snapshot()
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %.2f = %.1f < previous %.1f", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestObserverSnapshot(t *testing.T) {
	o := NewObserver()
	o.ObserveSamples([]PhaseSample{
		{Phase: "simulate", DurUS: 1000},
		{Phase: "simulate", DurUS: 1000},
		{Phase: "grade", Node: "w1", DurUS: 500},
	})
	rows := o.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// Sorted by phase then node.
	if rows[0].Phase != "grade" || rows[0].Node != "w1" || rows[0].Count != 1 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].Phase != "simulate" || rows[1].Count != 2 || rows[1].SumUS != 2000 {
		t.Fatalf("rows[1] = %+v", rows[1])
	}
	var nilObs *Observer
	nilObs.ObserveSamples(nil)
	nilObs.CellDone(time.Now())
	if nilObs.Rate(time.Now()) != 0 || nilObs.Snapshot() != nil {
		t.Fatal("nil observer not inert")
	}
}

func TestRateWindow(t *testing.T) {
	var r RateWindow
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 120; i++ {
		r.Bump(now)
	}
	if got := r.Rate(now); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("rate = %v, want 2.0", got)
	}
	// Events age out of the window.
	if got := r.Rate(now.Add(2 * time.Minute)); got != 0 {
		t.Fatalf("rate after window = %v, want 0", got)
	}
	// Spread across seconds.
	var r2 RateWindow
	for i := 0; i < 30; i++ {
		r2.Bump(now.Add(time.Duration(i) * time.Second))
	}
	if got := r2.Rate(now.Add(29 * time.Second)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("spread rate = %v, want 0.5", got)
	}
}
