package vstatic_test

import (
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/vstatic"
)

// Coverage floors for the golden dataset, established when the
// bit-granular definite-assignment analysis landed. These are exact
// equalities on purpose: a new diagnostic firing on a golden RTL, or
// a design falling out of the levelized fast path, is a regression
// that must be looked at, not absorbed.
const (
	goldenCombProcs = 137
)

func TestGoldensAreDiagnosticClean(t *testing.T) {
	lev, comb, static := 0, 0, 0
	for _, p := range dataset.All() {
		rs, err := vstatic.AnalyzeSource(p.Source, p.Top)
		if err != nil {
			t.Fatalf("%s: AnalyzeSource: %v", p.Name, err)
		}
		r := rs[0]
		for _, d := range r.Diags {
			t.Errorf("%s: unexpected diagnostic: %s", p.Name, d)
		}
		if r.Levelizable {
			lev++
		} else {
			t.Errorf("%s: not levelizable", p.Name)
		}
		comb += r.CombProcs
		static += r.StaticCombProcs
	}
	if total := len(dataset.All()); lev != total {
		t.Errorf("levelized coverage %d/%d, want full", lev, total)
	}
	if comb != goldenCombProcs || static != goldenCombProcs {
		t.Errorf("static comb procs %d/%d, want %d/%d", static, comb, goldenCombProcs, goldenCombProcs)
	}
}
