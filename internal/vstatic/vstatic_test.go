package vstatic_test

import (
	"strings"
	"testing"

	"correctbench/internal/vstatic"
)

// analyze parses one module and returns its result, failing the test
// on parse errors.
func analyze(t *testing.T, src string) *vstatic.Result {
	t.Helper()
	rs, err := vstatic.AnalyzeSource(src, "")
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d modules, want 1", len(rs))
	}
	return rs[0]
}

// wantDiag asserts exactly one diagnostic with the given code whose
// message contains frag.
func wantDiag(t *testing.T, r *vstatic.Result, code, frag string) {
	t.Helper()
	var hits []vstatic.Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one %q diagnostic, got %d (all: %v)", code, len(hits), r.Diags)
	}
	if !strings.Contains(hits[0].Msg, frag) {
		t.Fatalf("diagnostic %q does not mention %q", hits[0].Msg, frag)
	}
}

func TestLatchInference(t *testing.T) {
	r := analyze(t, `module m(input en, input d, output reg q);
always @(*) if (en) q = d;
endmodule`)
	wantDiag(t, r, "latch", `"q" is not assigned on every path`)
	if r.Levelizable {
		t.Fatal("latch process must not be levelizable")
	}
	if r.CombProcs != 1 || r.StaticCombProcs != 0 {
		t.Fatalf("proc counts = %d/%d, want 0/1", r.StaticCombProcs, r.CombProcs)
	}
}

func TestLatchAvoidedByDefaultAssignment(t *testing.T) {
	r := analyze(t, `module m(input en, input d, output reg q);
always @(*) begin
  q = 1'b0;
  if (en) q = d;
end
endmodule`)
	if len(r.Diags) != 0 || !r.Levelizable {
		t.Fatalf("default-then-override must be clean and levelizable, got %v", r.Diags)
	}
}

func TestBitGranularPartialWrites(t *testing.T) {
	// One continuous assign per bit, in dependency-chain order —
	// the gray_dec4 idiom the bit-granular widening exists for.
	r := analyze(t, `module m(input [3:0] g, output [3:0] b);
assign b[3] = g[3];
assign b[2] = b[3] ^ g[2];
assign b[1] = b[2] ^ g[1];
assign b[0] = b[1] ^ g[0];
endmodule`)
	if len(r.Diags) != 0 {
		t.Fatalf("per-bit assign chain must be clean, got %v", r.Diags)
	}
	if !r.Levelizable || r.StaticCombProcs != 4 {
		t.Fatalf("per-bit assign chain must be levelizable (got lev=%v static=%d)", r.Levelizable, r.StaticCombProcs)
	}
}

func TestMultiDriverOverlappingBits(t *testing.T) {
	r := analyze(t, `module m(input a, input b, output [1:0] y);
assign y[0] = a;
assign y[0] = b;
endmodule`)
	wantDiag(t, r, "multi-driver", `"y"`)
	if r.Levelizable {
		t.Fatal("overlapping drivers must not be levelizable")
	}
}

func TestDisjointBitDriversAreClean(t *testing.T) {
	r := analyze(t, `module m(input a, input b, output [1:0] y);
assign y[0] = a;
assign y[1] = b;
endmodule`)
	if len(r.Diags) != 0 || !r.Levelizable {
		t.Fatalf("disjoint bit drivers must be clean, got %v", r.Diags)
	}
}

func TestCombLoop(t *testing.T) {
	r := analyze(t, `module m(input a, output x, output y);
assign x = y & a;
assign y = x | a;
endmodule`)
	wantDiag(t, r, "comb-loop", "combinational loop")
	if r.Levelizable {
		t.Fatal("a comb loop must not be levelizable")
	}
	// A loop is a warning, never an error: event-driven simulation
	// may still settle it.
	for _, d := range r.Diags {
		if d.Code == "comb-loop" && d.Severity != vstatic.SevWarning {
			t.Fatalf("comb-loop severity = %v, want warning", d.Severity)
		}
	}
}

func TestMixedDriver(t *testing.T) {
	r := analyze(t, `module m(input clk, input d, output reg q);
always @(posedge clk) q <= d;
always @(*) q = d;
endmodule`)
	wantDiag(t, r, "mixed-driver", `"q"`)
}

func TestDriveInput(t *testing.T) {
	r := analyze(t, `module m(input a, output y);
assign a = 1'b0;
assign y = a;
endmodule`)
	wantDiag(t, r, "drive-input", `"a"`)
}

func TestUndeclaredIdentifier(t *testing.T) {
	r := analyze(t, `module m(input a, output y);
assign y = a & ghost;
endmodule`)
	wantDiag(t, r, "undeclared", `"ghost"`)
}

func TestWidthTruncation(t *testing.T) {
	r := analyze(t, `module m(input [7:0] a, input [7:0] b, output [3:0] y);
assign y = a & b;
endmodule`)
	wantDiag(t, r, "width-trunc", "truncated to 4 bits")
}

func TestWidthValueAwareLiterals(t *testing.T) {
	// Unsized literals are 32 bits by self-determined width, but the
	// value 1 fits anywhere: must not flag.
	r := analyze(t, `module m(input [3:0] a, output [3:0] y);
assign y = a + 1;
endmodule`)
	if len(r.Diags) != 0 {
		t.Fatalf("a + 1 into 4 bits must be clean, got %v", r.Diags)
	}
}

func TestWidthExtensionInfo(t *testing.T) {
	r := analyze(t, `module m(input [1:0] a, output [7:0] y);
assign y = a;
endmodule`)
	wantDiag(t, r, "width-ext", "zero-extended")
	if n := r.Count(vstatic.SevWarning); n != 0 {
		t.Fatalf("extension is info-severity, got %d warnings", n)
	}
}

func TestSensitivityMiss(t *testing.T) {
	r := analyze(t, `module m(input a, input b, output reg y);
always @(a) y = a & b;
endmodule`)
	wantDiag(t, r, "sens-miss", `"b"`)
	if r.Levelizable {
		t.Fatal("sens-miss process must not be levelizable")
	}
}

func TestConstCondition(t *testing.T) {
	r := analyze(t, `module m(input a, output reg y);
always @(*) begin
  y = a;
  if (1'b0) y = ~a;
end
endmodule`)
	wantDiag(t, r, "const-cond", "never true")
}

func TestUnreachableCaseArmWidth(t *testing.T) {
	r := analyze(t, `module m(input [1:0] s, output reg y);
always @(*) case (s)
  2'd0: y = 1'b0;
  3'd4: y = 1'b1;
  default: y = 1'b0;
endcase
endmodule`)
	wantDiag(t, r, "unreachable-arm", "cannot match")
}

func TestDuplicateCaseArm(t *testing.T) {
	r := analyze(t, `module m(input [1:0] s, output reg y);
always @(*) case (s)
  2'd1: y = 1'b0;
  2'd1: y = 1'b1;
  default: y = 1'b0;
endcase
endmodule`)
	wantDiag(t, r, "dup-arm", "duplicates an earlier arm")
}

func TestParameterizedWidthsResolve(t *testing.T) {
	r := analyze(t, `module m(input [7:0] a, output [7:0] y);
parameter W = 8;
wire [W-1:0] t;
assign t = a;
assign y = t;
endmodule`)
	if len(r.Diags) != 0 || !r.Levelizable {
		t.Fatalf("parameterized widths must resolve cleanly, got %v", r.Diags)
	}
}

func TestDiagnosticsDeterministic(t *testing.T) {
	src := `module m(input a, input b, output reg q, output x, output x2);
always @(a) q = a & b & ghost;
assign x = x2 | a;
assign x2 = x & b;
endmodule`
	first := analyze(t, src)
	for i := 0; i < 5; i++ {
		again := analyze(t, src)
		if len(again.Diags) != len(first.Diags) {
			t.Fatalf("diag count varies: %d vs %d", len(again.Diags), len(first.Diags))
		}
		for j := range again.Diags {
			if again.Diags[j] != first.Diags[j] {
				t.Fatalf("diag %d varies: %v vs %v", j, again.Diags[j], first.Diags[j])
			}
		}
	}
}

func TestAnalyzeSourceTopSelection(t *testing.T) {
	src := `module a(output y); assign y = 1'b0; endmodule
module b(output y); assign y = ghost; endmodule`
	rs, err := vstatic.AnalyzeSource(src, "a")
	if err != nil || len(rs) != 1 || rs[0].Module != "a" {
		t.Fatalf("top selection failed: %v %v", rs, err)
	}
	if _, err := vstatic.AnalyzeSource(src, "zzz"); err == nil {
		t.Fatal("missing top must error")
	}
	rs, err = vstatic.AnalyzeSource(src, "")
	if err != nil || len(rs) != 2 {
		t.Fatalf("all-modules analysis failed: %v %v", rs, err)
	}
}

func TestMaskOps(t *testing.T) {
	m := vstatic.NewMask(70)
	if !m.Empty() || m.Full() {
		t.Fatal("new mask must be empty")
	}
	m.SetBit(0)
	m.SetBit(69)
	if !m.Bit(0) || !m.Bit(69) || m.Bit(35) {
		t.Fatal("SetBit/Bit mismatch")
	}
	o := vstatic.NewMask(70)
	o.SetRange(1, 68)
	if m.Intersects(o) {
		t.Fatal("disjoint masks must not intersect")
	}
	o.Or(m)
	if !o.Full() {
		t.Fatal("union of 0,69 and 1..68 must be full")
	}
	if !o.Covers(m) || m.Covers(o) {
		t.Fatal("Covers mismatch")
	}
	c := o.Clone()
	c.And(m)
	if !c.Bit(0) || !c.Bit(69) || c.Bit(1) {
		t.Fatal("And mismatch")
	}
}

func TestSCCs(t *testing.T) {
	// 0→1→2→0 is one cycle; 3 is a singleton fed by the cycle.
	sccs := vstatic.SCCs(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if len(sccs) != 2 {
		t.Fatalf("got %d SCCs, want 2: %v", len(sccs), sccs)
	}
	if len(sccs[0]) != 3 || sccs[0][0] != 0 || sccs[0][2] != 2 {
		t.Fatalf("cycle SCC wrong: %v", sccs)
	}
	if len(sccs[1]) != 1 || sccs[1][0] != 3 {
		t.Fatalf("singleton SCC wrong: %v", sccs)
	}
}
