package vstatic

// Mask is a fixed-width bit set over a signal's index space, used by
// the definite-assignment and driver analyses to reason about partial
// (bit- and part-select) writes at bit granularity. The zero Mask is
// an empty mask of width 0.
type Mask struct {
	w    int
	bits []uint64
}

// NewMask returns an empty mask of the given width (clamped to >= 1).
func NewMask(w int) *Mask {
	if w < 1 {
		w = 1
	}
	return &Mask{w: w, bits: make([]uint64, (w+63)/64)}
}

// Width returns the mask's index-space width.
func (m *Mask) Width() int { return m.w }

// SetAll marks every bit.
func (m *Mask) SetAll() {
	for i := range m.bits {
		m.bits[i] = ^uint64(0)
	}
	m.trim()
}

// SetBit marks bit i; out-of-range indexes are ignored.
func (m *Mask) SetBit(i int) {
	if i < 0 || i >= m.w {
		return
	}
	m.bits[i/64] |= 1 << (uint(i) % 64)
}

// SetRange marks bits lo..hi inclusive, clipped to the mask width.
func (m *Mask) SetRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= m.w {
		hi = m.w - 1
	}
	for i := lo; i <= hi; i++ {
		m.SetBit(i)
	}
}

// trim clears bits above the width in the top word.
func (m *Mask) trim() {
	if rem := m.w % 64; rem != 0 {
		m.bits[len(m.bits)-1] &= (1 << uint(rem)) - 1
	}
}

// Full reports whether every bit is marked.
func (m *Mask) Full() bool {
	for i, b := range m.bits {
		want := ^uint64(0)
		if i == len(m.bits)-1 {
			if rem := m.w % 64; rem != 0 {
				want = (1 << uint(rem)) - 1
			}
		}
		if b != want {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is marked.
func (m *Mask) Empty() bool {
	for _, b := range m.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// Bit reports whether bit i is marked (false out of range).
func (m *Mask) Bit(i int) bool {
	if i < 0 || i >= m.w {
		return false
	}
	return m.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// Clone returns an independent copy.
func (m *Mask) Clone() *Mask {
	out := &Mask{w: m.w, bits: make([]uint64, len(m.bits))}
	copy(out.bits, m.bits)
	return out
}

// Or marks every bit marked in o (widths must match; o may be nil).
func (m *Mask) Or(o *Mask) {
	if o == nil {
		return
	}
	for i := range m.bits {
		if i < len(o.bits) {
			m.bits[i] |= o.bits[i]
		}
	}
	m.trim()
}

// And keeps only bits marked in both (o may be nil, yielding empty).
func (m *Mask) And(o *Mask) {
	for i := range m.bits {
		if o == nil || i >= len(o.bits) {
			m.bits[i] = 0
		} else {
			m.bits[i] &= o.bits[i]
		}
	}
}

// Intersects reports whether m and o share a marked bit.
func (m *Mask) Intersects(o *Mask) bool {
	if o == nil {
		return false
	}
	for i := range m.bits {
		if i < len(o.bits) && m.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Covers reports whether every bit marked in o is marked in m
// (a nil o is trivially covered).
func (m *Mask) Covers(o *Mask) bool {
	if o == nil {
		return true
	}
	for i, b := range o.bits {
		var mine uint64
		if i < len(m.bits) {
			mine = m.bits[i]
		}
		if b&^mine != 0 {
			return false
		}
	}
	return true
}
