package vstatic

import "sort"

// Region is the combinational region of one design: per-process
// purity facts plus sensitivity predicates, from which the writer
// conflicts and the signal-dependency graph derive. It is the shared
// substrate of the module-level lint and the batched simulator's
// levelized scheduler, so the two fronts cannot drift apart.
type Region struct {
	Facts []ProcFacts
	Sens  []func(string) bool
}

// WriterConflict reports two processes driving overlapping bits of
// one signal. NBA marks a duplicated nonblocking driver (the engine
// resolves those last-writer-wins per delta, which a static schedule
// cannot reproduce); otherwise the overlap is between blocking/
// continuous drivers.
type WriterConflict struct {
	Signal string
	A, B   int // process ordinals, A < B
	NBA    bool
}

// Conflicts returns every multi-writer conflict in deterministic
// order (by second writer, then signal name). Processes with a
// non-nil Facts.Err contribute their may-write sets regardless, so
// driver lints still fire on impure processes.
func (r *Region) Conflicts() []WriterConflict {
	var out []WriterConflict
	blocking := map[string][]int{} // signal -> ordinals that blocking-write it
	nba := map[string]int{}        // signal -> first NBA writer ordinal
	for i, f := range r.Facts {
		for _, name := range sortedWriteNames(f) {
			blocking[name] = append(blocking[name], i)
		}
		for _, name := range f.NBA {
			if prev, dup := nba[name]; dup {
				out = append(out, WriterConflict{Signal: name, A: prev, B: i, NBA: true})
			} else {
				nba[name] = i
			}
		}
	}
	for i, f := range r.Facts {
		for _, name := range sortedWriteNames(f) {
			for _, j := range blocking[name] {
				if j >= i {
					break
				}
				if r.Facts[j].Writes[name].Intersects(f.Writes[name]) {
					out = append(out, WriterConflict{Signal: name, A: j, B: i})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.B != y.B {
			return x.B < y.B
		}
		if x.Signal != y.Signal {
			return x.Signal < y.Signal
		}
		return x.A < y.A
	})
	return out
}

func sortedWriteNames(f ProcFacts) []string {
	names := make([]string, 0, len(f.Writes))
	for n := range f.Writes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Edges returns the unique writer->reader dependency edges of the
// combinational region, in deterministic order. An edge exists when a
// reader is sensitive to a signal and some bits it reads of that
// signal are written by another process: running the writer first
// then makes the reader see settled values, which is exactly the
// event-mode fixpoint when the region is conflict-free and acyclic.
func (r *Region) Edges() [][2]int {
	var out [][2]int
	seen := map[[2]int]bool{}
	for ri, rf := range r.Facts {
		for _, name := range sortedReadNames(rf) {
			if !r.Sens[ri](name) {
				continue
			}
			read := rf.Reads[name]
			for wi, wf := range r.Facts {
				if wi == ri {
					continue
				}
				if read.Intersects(wf.Writes[name]) {
					e := [2]int{wi, ri}
					if !seen[e] {
						seen[e] = true
						out = append(out, e)
					}
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

func sortedReadNames(f ProcFacts) []string {
	names := make([]string, 0, len(f.Reads))
	for n := range f.Reads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Levelizable reports whether the region admits a run-once static
// schedule: every process pure, no writer conflicts, dependency graph
// acyclic.
func (r *Region) Levelizable() bool {
	for _, f := range r.Facts {
		if f.Err != nil {
			return false
		}
	}
	if len(r.Conflicts()) != 0 {
		return false
	}
	for _, scc := range SCCs(len(r.Facts), r.Edges()) {
		if len(scc) > 1 {
			return false
		}
	}
	return true
}

// SCCs computes the strongly connected components of a graph with n
// nodes and the given directed edges (Tarjan, iterative). Components
// are returned with members sorted, ordered by smallest member.
// Self-edges do not arise from Edges (a process is never its own
// dependency), so a component is cyclic iff it has more than one
// member.
func SCCs(n int, edges [][2]int) [][]int {
	adj := make([][]int, n)
	for _, e := range edges {
		if e[0] >= 0 && e[0] < n && e[1] >= 0 && e[1] < n {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		out     [][]int
		counter int
	)
	type frame struct{ node, edge int }
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		work := []frame{{start, 0}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.edge < len(adj[f.node]) {
				next := adj[f.node][f.edge]
				f.edge++
				if index[next] == unvisited {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					work = append(work, frame{next, 0})
				} else if onStack[next] && index[next] < low[f.node] {
					low[f.node] = index[next]
				}
				continue
			}
			node := f.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[node] < low[parent] {
					low[parent] = low[node]
				}
			}
			if low[node] == index[node] {
				var comp []int
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == node {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
