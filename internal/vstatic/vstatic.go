// Package vstatic is a static-analysis pass framework over the
// verilog IR. It classifies designs before any simulation runs:
//
//   - driver analysis: multiple combinational drivers of one bit,
//     mixed combinational/sequential drivers, driven inputs;
//   - signal-dependency graph with SCC-based combinational-loop
//     detection;
//   - width inference with truncation/extension lints;
//   - all-paths definite-assignment analysis at bit granularity
//     (latch inference), which is also the purity check the batched
//     simulator's levelized scheduler consumes;
//   - unreachable case/if branch detection via constant propagation.
//
// Every finding is a position-carrying Diagnostic. The analyses are
// advisory: elaboration and grading semantics never depend on them,
// so a lint can be sharpened without shifting any recorded result.
// The one load-bearing consumer is internal/sim's batch scheduler,
// whose run-once levelized mode is valid exactly for processes
// AnalyzeProc proves pure — kept honest by differential tests against
// engine behavior over the whole dataset.
package vstatic

import (
	"fmt"
	"sort"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Severity ranks diagnostics.
type Severity int

// Severity levels. Info findings are advisory style notes; Warning
// marks behavior that is almost certainly unintended (latches,
// truncation, unreachable arms); Error marks defects that make the
// design wrong or unschedulable (multiple drivers, loops, undeclared
// names).
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	default:
		return "error"
	}
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      verilog.Pos `json:"pos"`
	Severity Severity    `json:"-"`
	Sev      string      `json:"severity"`
	Code     string      `json:"code"`
	Signal   string      `json:"signal,omitempty"`
	Msg      string      `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Diagnostic codes produced by the module passes (purity codes such
// as CodeLatch are shared with AnalyzeProc).
const (
	CodeUndeclared  = "undeclared"
	CodeMultiDriver = "multi-driver"
	CodeMixedDriver = "mixed-driver"
	CodeDriveInput  = "drive-input"
	CodeCombLoop    = "comb-loop"
	CodeWidthTrunc  = "width-trunc"
	CodeWidthExt    = "width-ext"
	CodeConstCond   = "const-cond"
	CodeUnreachable = "unreachable-arm"
	CodeDupArm      = "dup-arm"
	CodeBadRange    = "bad-range"
)

// Result is the full analysis of one module.
type Result struct {
	Module string       `json:"module"`
	Diags  []Diagnostic `json:"diags"`
	// CombProcs counts combinational processes (continuous assigns
	// and level-sensitive always blocks); StaticCombProcs counts the
	// subset proved pure, i.e. schedulable run-once.
	CombProcs       int `json:"comb_procs"`
	StaticCombProcs int `json:"static_comb_procs"`
	// Levelizable reports whether the whole combinational region is
	// statically schedulable: every process pure, every bit singly
	// driven, dependency graph acyclic. It mirrors the batched
	// simulator's verdict for the same module exactly.
	Levelizable bool `json:"levelizable"`
	// Hierarchical marks modules with instances; their submodule
	// regions are not analyzed here (the simulator flattens them), so
	// Levelizable covers only this module's own processes.
	Hierarchical bool `json:"hierarchical"`
}

// Count returns the number of diagnostics at or above min.
func (r *Result) Count(min Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

func (r *Result) add(pos verilog.Pos, sev Severity, code, signal, format string, args ...interface{}) {
	r.Diags = append(r.Diags, Diagnostic{
		Pos: pos, Severity: sev, Sev: sev.String(), Code: code, Signal: signal,
		Msg: fmt.Sprintf(format, args...),
	})
}

// AnalyzeSource parses src and analyzes its modules (all of them when
// top is empty, else just top). A parse failure is an error; a
// missing top is too.
func AnalyzeSource(src, top string) ([]*Result, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	if top != "" {
		m := f.Module(top)
		if m == nil {
			return nil, fmt.Errorf("vstatic: no module %q in source", top)
		}
		return []*Result{AnalyzeModule(m)}, nil
	}
	out := make([]*Result, 0, len(f.Modules))
	for _, m := range f.Modules {
		out = append(out, AnalyzeModule(m))
	}
	return out, nil
}

// signal is one declared name of the module under analysis.
type signal struct {
	width int
	kind  verilog.DeclKind
	pos   verilog.Pos
}

// proc is one process of the module view: continuous assigns and
// always blocks, normalized the way elaboration normalizes them.
type proc struct {
	name string
	body verilog.Stmt
	pos  verilog.Pos
	comb bool            // level-sensitive (cont assign or always @*/@(levels))
	seq  bool            // edge-sensitive always
	sens map[string]bool // nil for auto sensitivity (@(*) and cont assigns)
	star bool            // auto sensitivity: reads minus assign targets
}

// modView is the elaboration-shaped view of a module the passes run
// over.
type modView struct {
	m       *verilog.Module
	signals map[string]*signal
	params  ConstEnv
	procs   []*proc
	res     *Result
}

func (v *modView) width(name string) (int, bool) {
	if s, ok := v.signals[name]; ok {
		return s.width, true
	}
	return 0, false
}

func (v *modView) env() Env {
	return Env{Width: v.width, Consts: v.params}
}

// AnalyzeModule runs every pass over m and returns the collected
// diagnostics and classification. The analysis never fails: broken
// input yields error-severity diagnostics instead.
func AnalyzeModule(m *verilog.Module) *Result {
	v := &modView{
		m:       m,
		signals: map[string]*signal{},
		params:  ConstEnv{},
		res:     &Result{Module: m.Name},
	}
	v.collectDecls()
	v.collectProcs()
	v.checkUndeclared()
	combs, region := v.analyzeCombProcs()
	v.driverPass(combs, region)
	v.loopPass(combs, region)
	v.widthPass()
	v.constPass()
	v.res.Levelizable = region.Levelizable()
	sortDiags(v.res.Diags)
	return v.res
}

func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// collectDecls resolves parameters in declaration order and records
// every signal's width, mirroring the elaborator's rules ([msb:0]
// ranges, integers as 32-bit).
func (v *modView) collectDecls() {
	for _, it := range v.m.Items {
		d, ok := it.(*verilog.Decl)
		if !ok {
			continue
		}
		if d.Kind == verilog.DeclParameter || d.Kind == verilog.DeclLocalparam {
			for _, n := range d.Names {
				if val, ok := constEval(d.Init, v.params, v.width, 0); ok {
					v.params[n] = val
				} else {
					v.res.add(d.Pos, SevError, CodeBadRange, n, "parameter %q is not a constant", n)
				}
			}
			continue
		}
		w := 1
		if d.Kind == verilog.DeclInteger {
			w = 32
		}
		if d.Range != nil {
			msb, ok1 := constIndex(d.Range.MSB, v.params, v.width)
			lsb, ok2 := constIndex(d.Range.LSB, v.params, v.width)
			switch {
			case !ok1 || !ok2:
				v.res.add(d.Pos, SevError, CodeBadRange, d.Names[0], "non-constant range bounds")
			case lsb != 0:
				v.res.add(d.Pos, SevError, CodeBadRange, d.Names[0], "only [msb:0] ranges are supported (got lsb=%d)", lsb)
			case msb > 4095:
				v.res.add(d.Pos, SevError, CodeBadRange, d.Names[0], "vector too wide (%d bits)", msb+1)
			default:
				w = msb + 1
			}
		}
		for _, n := range d.Names {
			if prev, dup := v.signals[n]; dup {
				// "output reg q" style re-declarations share a name;
				// keep the port kind, widen to the wider range.
				if w > prev.width {
					prev.width = w
				}
				if d.Kind.IsPort() {
					prev.kind = d.Kind
				}
				continue
			}
			v.signals[n] = &signal{width: w, kind: d.Kind, pos: d.Pos}
		}
	}
}

func (v *modView) collectProcs() {
	for _, it := range v.m.Items {
		switch x := it.(type) {
		case *verilog.ContAssign:
			body := &verilog.Assign{LHS: x.LHS, RHS: x.RHS, Pos: x.Pos}
			v.procs = append(v.procs, &proc{
				name: "assign " + verilog.ExprString(x.LHS),
				body: body, pos: x.Pos, comb: true, star: false,
				sens: nil, // continuous assigns are sensitive to every read
			})
		case *verilog.Always:
			switch {
			case x.Star || allLevelSens(x.Sens):
				p := &proc{name: "always@*", body: x.Body, pos: x.Pos, comb: true}
				if x.Star {
					p.star = true
				} else {
					p.sens = map[string]bool{}
					for _, se := range x.Sens {
						p.sens[se.Sig] = true
					}
				}
				v.procs = append(v.procs, p)
			case len(x.Sens) == 0:
				// Timed "always": not part of the combinational region.
			default:
				v.procs = append(v.procs, &proc{name: "always@edge", body: x.Body, pos: x.Pos, seq: true})
			}
		case *verilog.Instance:
			v.res.Hierarchical = true
		}
	}
}

func allLevelSens(sens []verilog.SensItem) bool {
	if len(sens) == 0 {
		return false
	}
	for _, s := range sens {
		if s.Edge != verilog.EdgeNone {
			return false
		}
	}
	return true
}

// sensFunc builds the sensitivity predicate elaboration would give
// the process: continuous assigns hear every read; @(*) hears reads
// minus assign targets; explicit lists hear exactly the listed names.
func (v *modView) sensFunc(p *proc) func(string) bool {
	if p.sens != nil {
		return func(n string) bool { return p.sens[n] }
	}
	if !p.star {
		return func(string) bool { return true }
	}
	targets := map[string]bool{}
	verilog.WalkStmts(p.body, func(s verilog.Stmt) {
		if a, ok := s.(*verilog.Assign); ok {
			for _, n := range verilog.LHSTargets(a.LHS) {
				targets[n] = true
			}
		}
	})
	return func(n string) bool { return !targets[n] }
}

// analyzeCombProcs runs the purity analysis over every combinational
// process, emitting diagnostics for failures and counting coverage.
// It returns the combinational processes in item order and the Region
// the driver, loop and levelizability verdicts derive from.
func (v *modView) analyzeCombProcs() ([]*proc, Region) {
	var combs []*proc
	var region Region
	env := v.env()
	for _, p := range v.procs {
		if !p.comb {
			continue
		}
		v.res.CombProcs++
		f := AnalyzeProc(p.body, v.sensFunc(p), env)
		combs = append(combs, p)
		region.Facts = append(region.Facts, f)
		region.Sens = append(region.Sens, v.sensFunc(p))
		if f.Err == nil {
			v.res.StaticCombProcs++
			continue
		}
		code := CodeUnsupported
		if pe, ok := f.Err.(*ProcError); ok {
			code = pe.Code
		}
		v.res.add(p.pos, SevWarning, code, "", "%s: %v", p.name, f.Err)
	}
	return combs, region
}

// walkAllExprs visits every expression of a statement tree, including
// condition, selector, bound and argument positions.
func walkAllExprs(body verilog.Stmt, f func(verilog.Expr)) {
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		switch x := s.(type) {
		case *verilog.Assign:
			f(x.LHS)
			f(x.RHS)
		case *verilog.If:
			f(x.Cond)
		case *verilog.Case:
			f(x.Expr)
			for _, it := range x.Items {
				for _, e := range it.Exprs {
					f(e)
				}
			}
		case *verilog.For:
			f(x.Cond)
		case *verilog.Repeat:
			f(x.Count)
		case *verilog.Delay:
			f(x.Amount)
		case *verilog.SysCall:
			for _, a := range x.Args {
				f(a)
			}
		}
	})
}

// checkUndeclared flags identifier uses that resolve to neither a
// signal nor a parameter. Hierarchical modules skip the check for
// instance connections (those resolve in the child's scope).
func (v *modView) checkUndeclared() {
	seen := map[string]bool{}
	flag := func(pos verilog.Pos, name string) {
		if seen[name] {
			return
		}
		if _, ok := v.signals[name]; ok {
			return
		}
		if _, ok := v.params[name]; ok {
			return
		}
		seen[name] = true
		v.res.add(pos, SevError, CodeUndeclared, name, "undeclared identifier %q", name)
	}
	checkExpr := func(e verilog.Expr) {
		verilog.WalkExprs(e, func(x verilog.Expr) {
			if id, ok := x.(*verilog.Ident); ok {
				flag(id.Pos, id.Name)
			}
		})
	}
	for _, n := range v.m.PortOrder {
		flag(v.m.Pos, n)
	}
	for _, p := range v.procs {
		walkAllExprs(p.body, checkExpr)
		if p.sens != nil {
			for n := range p.sens {
				// Deterministic order comes from the final sort.
				flag(p.pos, n)
			}
		}
	}
	for _, it := range v.m.Items {
		if a, ok := it.(*verilog.Always); ok && !a.Star {
			for _, se := range a.Sens {
				if se.Edge != verilog.EdgeNone {
					flag(a.Pos, se.Sig)
				}
			}
		}
	}
}

// ExprConst exposes constant evaluation of an expression under a
// parameter environment (used by tests and external screens); ok is
// false for non-constant expressions.
func ExprConst(e verilog.Expr, params ConstEnv) (logic.Vector, bool) {
	return constEval(e, params, func(string) (int, bool) { return 0, false }, 0)
}
