package vstatic

import (
	"fmt"
	"sort"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Env supplies the signal and constant context for process analysis.
type Env struct {
	// Width resolves a declared signal's width; false marks the name
	// unknown, which excludes it from every check (mirroring the
	// simulator's slot-table lookups).
	Width func(name string) (int, bool)
	// Consts resolves parameter names for constant folding. Nil is
	// fine: post-elaboration bodies have parameters already inlined.
	Consts ConstEnv
}

func (e Env) width(name string) (int, bool) {
	if e.Width == nil {
		return 0, false
	}
	return e.Width(name)
}

// ProcError is a typed purity-analysis failure: Code names the defect
// class for diagnostics, Msg carries the human-readable detail.
type ProcError struct {
	Code string
	Msg  string
}

func (e *ProcError) Error() string { return e.Msg }

func procErrf(code, format string, args ...interface{}) *ProcError {
	return &ProcError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Purity-failure codes.
const (
	CodeLatch       = "latch"       // target not assigned on every path
	CodeCombState   = "comb-state"  // reads its own output before assigning it
	CodeSensMiss    = "sens-miss"   // reads a signal outside its sensitivity list
	CodeBadLValue   = "bad-lvalue"  // unsupported assignment target
	CodeUnsupported = "unsupported" // statement outside the analyzable subset
)

// ProcFacts is the classification of one combinational process body:
// Err is nil exactly when the body is a pure function of its
// sensitivity list (the run-once levelized schedule is then valid for
// it). Writes and Reads carry bit-granular masks for the driver and
// dependency analyses; NBA lists nonblocking targets in encounter
// order.
type ProcFacts struct {
	Err error
	// Writes maps each blocking-assigned signal to the union of bits
	// any path may write. With Err == nil every masked bit is also
	// definitely written on every path.
	Writes map[string]*Mask
	// Reads maps each known signal the body may read to the bits read
	// (whole-signal reads and non-constant indexes mark all bits).
	Reads map[string]*Mask
	// NBA lists nonblocking-assignment targets in encounter order.
	NBA []string
}

// BlockingTargets returns the sorted blocking-write target names.
func (f ProcFacts) BlockingTargets() []string {
	out := make([]string, 0, len(f.Writes))
	for n := range f.Writes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AnalyzeProc proves a combinational process body a pure function of
// its level sensitivity list. sens reports sensitivity-list
// membership (for an @(*) process pass the elaborated auto-list:
// reads minus assign targets).
//
// The analysis is a definite-assignment walk at bit granularity:
// partial writes through constant indexes and part selects accumulate
// coverage instead of being rejected, so per-bit writer idioms (one
// continuous assign per output bit) classify as static. A read of a
// signal the process itself blocking-writes must land on bits already
// definitely assigned on this run (otherwise the process observes its
// previous run — latch state); reads of bits it never writes must be
// in the sensitivity list (otherwise the event scheduler would not
// re-run the process when they change, and a run-once schedule would
// disagree with it). At the end of the body every bit the process
// ever writes must be definitely written on every path.
func AnalyzeProc(body verilog.Stmt, sens func(string) bool, env Env) ProcFacts {
	p := &procAnalysis{
		env:    env,
		sens:   sens,
		writes: map[string]*Mask{},
		reads:  map[string]*Mask{},
		nbaSet: map[string]bool{},
	}
	p.collectTargets(body)
	final, err := p.walk(body, assignState{})
	if err == nil {
		// Latch rule: every bit the process may write must be written
		// on every path, or the unwritten bits carry state.
		for _, name := range sortedKeys(p.writes) {
			if !final.mask(name, p).Covers(p.writes[name]) {
				err = procErrf(CodeLatch, "%q is not assigned on every path (latch)", name)
				break
			}
		}
	}
	return ProcFacts{Err: err, Writes: p.writes, Reads: p.reads, NBA: p.nba}
}

type procAnalysis struct {
	env    Env
	sens   func(string) bool
	writes map[string]*Mask // may-write masks of blocking targets
	reads  map[string]*Mask
	nba    []string
	nbaSet map[string]bool
}

func sortedKeys(m map[string]*Mask) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// widthOf resolves a signal width with a scalar fallback for unknown
// names (module-level callers flag those separately).
func (p *procAnalysis) widthOf(name string) int {
	if w, ok := p.env.width(name); ok {
		return w
	}
	return 1
}

// collectTargets prefills the may-write masks (blocking) and the
// nonblocking target set, so read checks can distinguish own-output
// bits from input bits anywhere in the body.
func (p *procAnalysis) collectTargets(body verilog.Stmt) {
	var lhs func(e verilog.Expr)
	lhs = func(e verilog.Expr) {
		switch x := e.(type) {
		case *verilog.Ident:
			p.writeMask(x.Name).SetAll()
		case *verilog.Index:
			if id, ok := x.X.(*verilog.Ident); ok {
				m := p.writeMask(id.Name)
				if i, ok := p.constIdx(x.Index); ok && i < m.Width() {
					m.SetBit(i)
				} else {
					m.SetAll()
				}
			}
		case *verilog.PartSelect:
			if id, ok := x.X.(*verilog.Ident); ok {
				m := p.writeMask(id.Name)
				if lo, hi, ok := p.constRange(x); ok && hi < m.Width() {
					m.SetRange(lo, hi)
				} else {
					m.SetAll()
				}
			}
		case *verilog.Concat:
			for _, part := range x.Parts {
				lhs(part)
			}
		}
	}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		a, ok := s.(*verilog.Assign)
		if !ok {
			return
		}
		if a.NonBlocking {
			for _, n := range verilog.LHSTargets(a.LHS) {
				p.nbaSet[n] = true
			}
			return
		}
		lhs(a.LHS)
	})
}

func (p *procAnalysis) writeMask(name string) *Mask {
	m := p.writes[name]
	if m == nil {
		m = NewMask(p.widthOf(name))
		p.writes[name] = m
	}
	return m
}

func (p *procAnalysis) readMask(name string) *Mask {
	m := p.reads[name]
	if m == nil {
		m = NewMask(p.widthOf(name))
		p.reads[name] = m
	}
	return m
}

func (p *procAnalysis) constIdx(e verilog.Expr) (int, bool) {
	return constIndex(e, p.env.Consts, p.env.width)
}

// constRange resolves a part select's bounds, normalized lo <= hi.
func (p *procAnalysis) constRange(x *verilog.PartSelect) (lo, hi int, ok bool) {
	msb, ok1 := p.constIdx(x.MSB)
	lsb, ok2 := p.constIdx(x.LSB)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if msb < lsb {
		msb, lsb = lsb, msb
	}
	return lsb, msb, true
}

// constCond folds a constant condition: ok reports constant, truth
// reports whether the then branch runs (unknown bits take else, per
// IEEE if semantics).
func (p *procAnalysis) constCond(e verilog.Expr) (truth, ok bool) {
	v, ok := constEval(e, p.env.Consts, p.env.width, 0)
	if !ok {
		return false, false
	}
	return logic.Truth(v) == logic.L1, true
}

// assignState tracks per-signal definitely-assigned bit masks along
// one execution path.
type assignState map[string]*Mask

func (a assignState) clone() assignState {
	out := make(assignState, len(a))
	for k, m := range a {
		out[k] = m.Clone()
	}
	return out
}

// mask returns the definite mask for name, materializing an empty one.
func (a assignState) mask(name string, p *procAnalysis) *Mask {
	m := a[name]
	if m == nil {
		m = NewMask(p.widthOf(name))
		a[name] = m
	}
	return m
}

func intersectState(a, b assignState, p *procAnalysis) assignState {
	out := assignState{}
	for k, m := range a {
		if bm := b[k]; bm != nil {
			c := m.Clone()
			c.And(bm)
			out[k] = c
		}
	}
	return out
}

// checkExpr validates every read in e against the definite-assignment
// state and records read masks. Reads resolve at bit granularity:
// a constant bit/part select of an identifier reads only those bits.
func (p *procAnalysis) checkExpr(e verilog.Expr, a assignState) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *verilog.Ident:
		return p.checkIdentRead(x.Name, -1, -1, a)
	case *verilog.Index:
		if err := p.checkExpr(x.Index, a); err != nil {
			return err
		}
		if id, ok := x.X.(*verilog.Ident); ok {
			if i, ok := p.constIdx(x.Index); ok {
				return p.checkIdentRead(id.Name, i, i, a)
			}
			return p.checkIdentRead(id.Name, -1, -1, a)
		}
		return p.checkExpr(x.X, a)
	case *verilog.PartSelect:
		if err := p.checkExpr(x.MSB, a); err != nil {
			return err
		}
		if err := p.checkExpr(x.LSB, a); err != nil {
			return err
		}
		if id, ok := x.X.(*verilog.Ident); ok {
			if lo, hi, ok := p.constRange(x); ok {
				return p.checkIdentRead(id.Name, lo, hi, a)
			}
			return p.checkIdentRead(id.Name, -1, -1, a)
		}
		return p.checkExpr(x.X, a)
	case *verilog.Unary:
		return p.checkExpr(x.X, a)
	case *verilog.Binary:
		if err := p.checkExpr(x.X, a); err != nil {
			return err
		}
		return p.checkExpr(x.Y, a)
	case *verilog.Ternary:
		if err := p.checkExpr(x.Cond, a); err != nil {
			return err
		}
		if err := p.checkExpr(x.Then, a); err != nil {
			return err
		}
		return p.checkExpr(x.Else, a)
	case *verilog.Concat:
		for _, part := range x.Parts {
			if err := p.checkExpr(part, a); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Repl:
		if err := p.checkExpr(x.Count, a); err != nil {
			return err
		}
		return p.checkExpr(x.Value, a)
	default: // Number, StringLit
		return nil
	}
}

// checkIdentRead validates a read of bits lo..hi of name (-1,-1 means
// the whole signal). Unknown names are skipped entirely, like the
// simulator's slot lookups.
func (p *procAnalysis) checkIdentRead(name string, lo, hi int, a assignState) error {
	w, known := p.env.width(name)
	if !known {
		return nil
	}
	read := NewMask(w)
	if lo < 0 {
		read.SetAll()
	} else {
		read.SetRange(lo, hi)
	}
	p.readMask(name).Or(read)

	if wm := p.writes[name]; wm != nil {
		// Bits this process itself writes must be definitely assigned
		// before the read, or the process observes its previous run.
		own := read.Clone()
		own.And(wm)
		if !own.Empty() && !a.mask(name, p).Covers(own) {
			return procErrf(CodeCombState, "reads %q before assigning it", name)
		}
		// Bits outside the write mask are inputs: they must be in the
		// sensitivity list for the event scheduler to re-run us.
		external := false
		for i := 0; i < w; i++ {
			if read.Bit(i) && !wm.Bit(i) {
				external = true
				break
			}
		}
		if external && !p.sens(name) && !p.nbaSet[name] {
			return procErrf(CodeSensMiss, "reads %q outside its sensitivity list", name)
		}
		return nil
	}
	if !p.sens(name) && !p.nbaSet[name] {
		return procErrf(CodeSensMiss, "reads %q outside its sensitivity list", name)
	}
	return nil
}

// assignLHS applies a blocking-assignment target to the state:
// whole identifiers and constant bit/part selects mark their bits
// definitely assigned; non-constant partial writes still require the
// target to be fully assigned already (the written bit is unknown,
// so coverage cannot accumulate).
func (p *procAnalysis) assignLHS(lhs verilog.Expr, a assignState) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		a.mask(x.Name, p).SetAll()
		return nil
	case *verilog.Index:
		if err := p.checkExpr(x.Index, a); err != nil {
			return err
		}
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return procErrf(CodeBadLValue, "unsupported assignment target")
		}
		m := a.mask(id.Name, p)
		if i, ok := p.constIdx(x.Index); ok && i < m.Width() {
			m.SetBit(i)
			return nil
		}
		if !m.Full() {
			return procErrf(CodeCombState, "partial write to %q before whole assignment", id.Name)
		}
		return nil
	case *verilog.PartSelect:
		if err := p.checkExpr(x.MSB, a); err != nil {
			return err
		}
		if err := p.checkExpr(x.LSB, a); err != nil {
			return err
		}
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return procErrf(CodeBadLValue, "unsupported assignment target")
		}
		m := a.mask(id.Name, p)
		if lo, hi, ok := p.constRange(x); ok && hi < m.Width() {
			m.SetRange(lo, hi)
			return nil
		}
		if !m.Full() {
			return procErrf(CodeCombState, "partial write to %q before whole assignment", id.Name)
		}
		return nil
	case *verilog.Concat:
		for _, part := range x.Parts {
			if err := p.assignLHS(part, a); err != nil {
				return err
			}
		}
		return nil
	default:
		return procErrf(CodeBadLValue, "unsupported assignment target")
	}
}

// walk analyzes s starting from state a, returning the state after s
// on every path.
func (p *procAnalysis) walk(s verilog.Stmt, a assignState) (assignState, error) {
	switch x := s.(type) {
	case nil, *verilog.Null:
		return a, nil

	case *verilog.Block:
		var err error
		for _, sub := range x.Stmts {
			if a, err = p.walk(sub, a); err != nil {
				return nil, err
			}
		}
		return a, nil

	case *verilog.Assign:
		if err := p.checkExpr(x.RHS, a); err != nil {
			return nil, err
		}
		if x.NonBlocking {
			id, ok := x.LHS.(*verilog.Ident)
			if !ok {
				return nil, procErrf(CodeBadLValue, "nonblocking write to a partial target")
			}
			p.nba = append(p.nba, id.Name)
			return a, nil
		}
		if err := p.assignLHS(x.LHS, a); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.If:
		if err := p.checkExpr(x.Cond, a); err != nil {
			return nil, err
		}
		th, err := p.walk(x.Then, a.clone())
		if err != nil {
			return nil, err
		}
		el := a
		if x.Else != nil {
			if el, err = p.walk(x.Else, a.clone()); err != nil {
				return nil, err
			}
		}
		// A constant condition makes one branch dead: the live
		// branch's state flows through alone (both branches are still
		// checked for defects above).
		if truth, ok := p.constCond(x.Cond); ok {
			if truth {
				return th, nil
			}
			return el, nil
		}
		return intersectState(th, el, p), nil

	case *verilog.Case:
		if err := p.checkExpr(x.Expr, a); err != nil {
			return nil, err
		}
		hasDefault := false
		var result assignState
		for _, item := range x.Items {
			for _, e := range item.Exprs {
				if err := p.checkExpr(e, a); err != nil {
					return nil, err
				}
			}
			if item.Exprs == nil {
				hasDefault = true
			}
			arm, err := p.walk(item.Body, a.clone())
			if err != nil {
				return nil, err
			}
			if result == nil {
				result = arm
			} else {
				result = intersectState(result, arm, p)
			}
		}
		if result == nil {
			return a, nil
		}
		if !hasDefault {
			// No arm may match: only what was assigned before survives.
			result = intersectState(result, a, p)
		}
		return result, nil

	case *verilog.For:
		a, err := p.walk(x.Init, a)
		if err != nil {
			return nil, err
		}
		if err := p.checkExpr(x.Cond, a); err != nil {
			return nil, err
		}
		// The body may run zero times; anything assigned inside does
		// not survive, but reads inside must still be clean against
		// the post-init state.
		ab, err := p.walk(x.Body, a.clone())
		if err != nil {
			return nil, err
		}
		if _, err := p.walk(x.Step, ab); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.Repeat:
		if err := p.checkExpr(x.Count, a); err != nil {
			return nil, err
		}
		if _, err := p.walk(x.Body, a.clone()); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.SysCall:
		// Only the argument-ignoring no-op calls survive batch
		// compilation, so nothing is read here.
		return a, nil

	default:
		return nil, procErrf(CodeUnsupported, "unsupported statement")
	}
}
