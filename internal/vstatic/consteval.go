package vstatic

import (
	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// ConstEnv resolves names to compile-time constants (parameters and
// localparams). A nil map resolves nothing.
type ConstEnv map[string]logic.Vector

// constEval evaluates e when it is a constant expression under env,
// following the simulator's context-width discipline: operands of
// arithmetic and bitwise operators are evaluated at the wider of the
// context and self-determined widths. The bool result reports whether
// the expression was constant; non-constant subexpressions (signal
// reads, unsupported forms) make the whole evaluation fail, which
// callers must treat as "unknown", never as an error.
func constEval(e verilog.Expr, env ConstEnv, widths func(string) (int, bool), ctx int) (logic.Vector, bool) {
	want := selfWidth(e, env, widths)
	if ctx > want {
		want = ctx
	}
	switch x := e.(type) {
	case *verilog.Number:
		return x.Val.Resize(want), true

	case *verilog.Ident:
		if v, ok := env[x.Name]; ok {
			return v.Resize(want), true
		}
		return logic.Vector{}, false

	case *verilog.Unary:
		switch x.Op {
		case "+":
			return constEval(x.X, env, widths, want)
		case "-":
			v, ok := constEval(x.X, env, widths, want)
			if !ok {
				return logic.Vector{}, false
			}
			return logic.Neg(v), true
		case "~":
			v, ok := constEval(x.X, env, widths, want)
			if !ok {
				return logic.Vector{}, false
			}
			return logic.NotV(v).Resize(want), true
		case "!":
			v, ok := constEval(x.X, env, widths, 0)
			if !ok {
				return logic.Vector{}, false
			}
			return logic.Not(v).Resize(want), true
		case "&", "|", "^", "~&", "~|", "~^", "^~":
			v, ok := constEval(x.X, env, widths, 0)
			if !ok {
				return logic.Vector{}, false
			}
			var r logic.Vector
			switch x.Op {
			case "&":
				r = logic.RedAnd(v)
			case "|":
				r = logic.RedOr(v)
			case "^":
				r = logic.RedXor(v)
			case "~&":
				r = logic.RedNand(v)
			case "~|":
				r = logic.RedNor(v)
			default:
				r = logic.RedXnor(v)
			}
			return r.Resize(want), true
		}
		return logic.Vector{}, false

	case *verilog.Binary:
		return constBinary(x, env, widths, want)

	case *verilog.Concat:
		parts := make([]logic.Vector, len(x.Parts))
		for i, p := range x.Parts {
			v, ok := constEval(p, env, widths, 0)
			if !ok {
				return logic.Vector{}, false
			}
			parts[i] = v
		}
		return logic.Concat(parts...).Resize(want), true

	case *verilog.Repl:
		n, ok := constEval(x.Count, env, widths, 0)
		if !ok {
			return logic.Vector{}, false
		}
		c, defined := n.Uint64()
		if !defined || c == 0 || c > 4096 {
			return logic.Vector{}, false
		}
		v, ok := constEval(x.Value, env, widths, 0)
		if !ok {
			return logic.Vector{}, false
		}
		return logic.Replicate(int(c), v).Resize(want), true
	}
	return logic.Vector{}, false
}

func constBinary(x *verilog.Binary, env ConstEnv, widths func(string) (int, bool), want int) (logic.Vector, bool) {
	evalAt := func(e verilog.Expr, w int) (logic.Vector, bool) {
		return constEval(e, env, widths, w)
	}
	switch x.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		l, ok1 := evalAt(x.X, want)
		r, ok2 := evalAt(x.Y, want)
		if !ok1 || !ok2 {
			return logic.Vector{}, false
		}
		switch x.Op {
		case "+":
			return logic.Add(l, r), true
		case "-":
			return logic.Sub(l, r), true
		case "*":
			return logic.Mul(l, r), true
		case "/":
			return logic.Div(l, r), true
		case "%":
			return logic.Mod(l, r), true
		case "&":
			return logic.And(l, r), true
		case "|":
			return logic.Or(l, r), true
		case "^":
			return logic.Xor(l, r), true
		default:
			return logic.Xnor(l, r), true
		}
	case "<<", ">>", ">>>":
		l, ok1 := evalAt(x.X, want)
		r, ok2 := evalAt(x.Y, 0)
		if !ok1 || !ok2 {
			return logic.Vector{}, false
		}
		switch x.Op {
		case "<<":
			return logic.Shl(l, r), true
		case ">>":
			return logic.Shr(l, r), true
		default:
			return logic.Sshr(l, r), true
		}
	case "==", "!=", "<", "<=", ">", ">=", "===", "!==":
		lw := selfWidth(x.X, env, widths)
		rw := selfWidth(x.Y, env, widths)
		if rw > lw {
			lw = rw
		}
		l, ok1 := evalAt(x.X, lw)
		r, ok2 := evalAt(x.Y, lw)
		if !ok1 || !ok2 {
			return logic.Vector{}, false
		}
		var v logic.Vector
		switch x.Op {
		case "==":
			v = logic.Eq(l, r)
		case "!=":
			v = logic.Neq(l, r)
		case "<":
			v = logic.Lt(l, r)
		case "<=":
			v = logic.Lte(l, r)
		case ">":
			v = logic.Gt(l, r)
		case ">=":
			v = logic.Gte(l, r)
		case "===":
			v = logic.CaseEq(l, r)
		default:
			v = logic.CaseNeq(l, r)
		}
		return v.Resize(want), true
	case "&&", "||":
		l, ok1 := evalAt(x.X, 0)
		r, ok2 := evalAt(x.Y, 0)
		if !ok1 || !ok2 {
			return logic.Vector{}, false
		}
		if x.Op == "&&" {
			return logic.LAnd(l, r).Resize(want), true
		}
		return logic.LOr(l, r).Resize(want), true
	}
	return logic.Vector{}, false
}

// constIndex evaluates an index or bound expression to a small
// non-negative integer; false when non-constant or not fully defined.
func constIndex(e verilog.Expr, env ConstEnv, widths func(string) (int, bool)) (int, bool) {
	v, ok := constEval(e, env, widths, 0)
	if !ok {
		return 0, false
	}
	u, defined := v.Uint64()
	if !defined || u > 1<<20 {
		return 0, false
	}
	return int(u), true
}

// selfWidth computes the self-determined width of an expression per
// IEEE 1364 table 5-22, mirroring the simulator's rules so that lint
// verdicts and engine behavior agree. Unknown identifiers report
// width 1 (a separate pass flags them).
func selfWidth(e verilog.Expr, env ConstEnv, widths func(string) (int, bool)) int {
	switch x := e.(type) {
	case *verilog.Number:
		if x.Width == 0 {
			return 32
		}
		return x.Width
	case *verilog.StringLit:
		return 8 * len(x.Value)
	case *verilog.Ident:
		if v, ok := env[x.Name]; ok {
			return v.Width()
		}
		if w, ok := widths(x.Name); ok {
			return w
		}
		return 1
	case *verilog.Unary:
		switch x.Op {
		case "~", "-", "+":
			return selfWidth(x.X, env, widths)
		default:
			return 1
		}
	case *verilog.Binary:
		switch x.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			l, r := selfWidth(x.X, env, widths), selfWidth(x.Y, env, widths)
			if r > l {
				return r
			}
			return l
		case "<<", ">>", ">>>", "<<<", "**":
			return selfWidth(x.X, env, widths)
		default:
			return 1
		}
	case *verilog.Ternary:
		l, r := selfWidth(x.Then, env, widths), selfWidth(x.Else, env, widths)
		if r > l {
			return r
		}
		return l
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			total += selfWidth(p, env, widths)
		}
		if total == 0 {
			return 1
		}
		return total
	case *verilog.Repl:
		n, ok := constIndex(x.Count, env, widths)
		if !ok || n < 1 {
			n = 1
		}
		return n * selfWidth(x.Value, env, widths)
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		hi, ok1 := constIndex(x.MSB, env, widths)
		lo, ok2 := constIndex(x.LSB, env, widths)
		if !ok1 || !ok2 {
			return 1
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		return hi - lo + 1
	default:
		return 1
	}
}
