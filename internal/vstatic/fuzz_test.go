package vstatic_test

import (
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/vstatic"
)

// FuzzAnalyze feeds arbitrary source through the parser into the
// analyzer. Inputs the parser rejects are uninteresting; anything it
// accepts must analyze without panicking, and two runs over the same
// input must produce identical diagnostics (the analyzer is consulted
// by the batch scheduler, so nondeterminism here would leak into
// schedules).
func FuzzAnalyze(f *testing.F) {
	f.Add(`module m(input a, output y);
assign y = a;
endmodule`)
	f.Add(`module m(input en, input d, output reg q);
always @(*) if (en) q = d;
endmodule`)
	f.Add(`module m(input [3:0] g, output reg [3:0] b);
parameter W = 4;
always @(*) case (g)
  4'd0: b = 4'd1;
  default: b = {g[1:0], 2'b01};
endcase
endmodule`)
	f.Add(`module m(input clk, input d, output reg q);
always @(posedge clk) q <= d;
endmodule`)
	f.Add(`module m(input a, output x, output y);
assign x = y & a;
assign y = x | a;
endmodule`)
	for i, p := range dataset.All() {
		if i%13 == 0 { // a spread of real designs without bloating the corpus
			f.Add(p.Source)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		first, err := vstatic.AnalyzeSource(src, "")
		if err != nil {
			return
		}
		again, err := vstatic.AnalyzeSource(src, "")
		if err != nil {
			t.Fatalf("second analysis errored where first succeeded: %v", err)
		}
		if len(first) != len(again) {
			t.Fatalf("module count varies: %d vs %d", len(first), len(again))
		}
		for i := range first {
			a, b := first[i], again[i]
			if a.Module != b.Module || a.Levelizable != b.Levelizable ||
				a.CombProcs != b.CombProcs || a.StaticCombProcs != b.StaticCombProcs ||
				len(a.Diags) != len(b.Diags) {
				t.Fatalf("module %q analysis is nondeterministic", a.Module)
			}
			for j := range a.Diags {
				if a.Diags[j] != b.Diags[j] {
					t.Fatalf("module %q diag %d varies: %v vs %v", a.Module, j, a.Diags[j], b.Diags[j])
				}
			}
		}
	})
}
