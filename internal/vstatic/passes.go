package vstatic

import (
	"math/bits"
	"sort"
	"strings"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// driverPass reports multi-driver conflicts among combinational
// processes, signals driven by both combinational and sequential
// logic, and drives of input ports.
func (v *modView) driverPass(combs []*proc, region Region) {
	for _, c := range region.Conflicts() {
		if c.NBA {
			v.res.add(combs[c.B].pos, SevError, CodeMultiDriver, c.Signal,
				"signal %q has multiple combinational nonblocking writers (%s and %s)",
				c.Signal, combs[c.A].name, combs[c.B].name)
		} else {
			v.res.add(combs[c.B].pos, SevError, CodeMultiDriver, c.Signal,
				"signal %q driven by both %s and %s", c.Signal, combs[c.A].name, combs[c.B].name)
		}
	}

	env := v.env()
	combWrites := map[string]*Mask{}
	writePos := map[string]verilog.Pos{}
	for i, f := range region.Facts {
		for _, name := range sortedWriteNames(f) {
			if combWrites[name] == nil {
				w, _ := v.width(name)
				combWrites[name] = NewMask(w)
				writePos[name] = combs[i].pos
			}
			combWrites[name].Or(f.Writes[name])
		}
		for _, name := range f.NBA {
			if _, ok := writePos[name]; !ok {
				writePos[name] = combs[i].pos
			}
			if combWrites[name] == nil {
				w, _ := v.width(name)
				m := NewMask(w)
				m.SetAll()
				combWrites[name] = m
			}
		}
	}
	seqWrites := map[string]*Mask{}
	seqPos := map[string]verilog.Pos{}
	for _, p := range v.procs {
		if !p.seq {
			continue
		}
		for name, m := range collectWrites(p.body, env) {
			if seqWrites[name] == nil {
				seqWrites[name] = NewMask(m.Width())
				seqPos[name] = p.pos
			}
			seqWrites[name].Or(m)
		}
	}

	for _, name := range sortedMaskNames(seqWrites) {
		if combWrites[name] != nil && combWrites[name].Intersects(seqWrites[name]) {
			v.res.add(seqPos[name], SevWarning, CodeMixedDriver, name,
				"signal %q has both combinational and sequential drivers", name)
		}
	}
	flagInput := func(name string, pos verilog.Pos) {
		if s, ok := v.signals[name]; ok && s.kind == verilog.DeclInput {
			v.res.add(pos, SevError, CodeDriveInput, name, "input port %q is driven inside the module", name)
		}
	}
	for _, name := range sortedMaskNames(combWrites) {
		flagInput(name, writePos[name])
	}
	for _, name := range sortedMaskNames(seqWrites) {
		if combWrites[name] == nil {
			flagInput(name, seqPos[name])
		}
	}
}

func sortedMaskNames(m map[string]*Mask) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// collectWrites gathers the may-write masks of every assignment in a
// statement tree (blocking and nonblocking alike), for processes the
// purity analysis does not cover.
func collectWrites(body verilog.Stmt, env Env) map[string]*Mask {
	out := map[string]*Mask{}
	var addLHS func(e verilog.Expr)
	addLHS = func(e verilog.Expr) {
		switch x := e.(type) {
		case *verilog.Ident:
			m := writeMask(out, x.Name, env)
			m.SetAll()
		case *verilog.Index:
			if id, ok := x.X.(*verilog.Ident); ok {
				m := writeMask(out, id.Name, env)
				if i, ok := constIndex(x.Index, env.Consts, env.Width); ok {
					m.SetBit(i)
				} else {
					m.SetAll()
				}
			}
		case *verilog.PartSelect:
			if id, ok := x.X.(*verilog.Ident); ok {
				m := writeMask(out, id.Name, env)
				hi, ok1 := constIndex(x.MSB, env.Consts, env.Width)
				lo, ok2 := constIndex(x.LSB, env.Consts, env.Width)
				if ok1 && ok2 {
					if hi < lo {
						hi, lo = lo, hi
					}
					m.SetRange(lo, hi)
				} else {
					m.SetAll()
				}
			}
		case *verilog.Concat:
			for _, p := range x.Parts {
				addLHS(p)
			}
		}
	}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		if a, ok := s.(*verilog.Assign); ok {
			addLHS(a.LHS)
		}
	})
	return out
}

func writeMask(m map[string]*Mask, name string, env Env) *Mask {
	if m[name] == nil {
		w, ok := env.Width(name)
		if !ok {
			w = 1
		}
		m[name] = NewMask(w)
	}
	return m[name]
}

// loopPass reports combinational cycles. A loop is a warning, not an
// error: event-driven simulation may still settle it (latch idioms),
// but it defeats static scheduling and usually signals a design bug.
func (v *modView) loopPass(combs []*proc, region Region) {
	for _, scc := range SCCs(len(region.Facts), region.Edges()) {
		if len(scc) <= 1 {
			continue
		}
		names := make([]string, len(scc))
		for i, ord := range scc {
			names[i] = combs[ord].name
		}
		v.res.add(combs[scc[0]].pos, SevWarning, CodeCombLoop, "",
			"combinational loop through %s", strings.Join(names, ", "))
	}
}

// widthPass lints assignments whose right-hand side carries more
// significant bits than the target can hold (truncation) or whose
// plain-identifier source is narrower than the target (implicit
// zero extension). Effective widths are value-aware for literals, so
// `y[3:0] = x + 1` does not flag just because unsized 1 is 32 bits.
func (v *modView) widthPass() {
	for _, p := range v.procs {
		verilog.WalkStmts(p.body, func(s verilog.Stmt) {
			a, ok := s.(*verilog.Assign)
			if !ok {
				return
			}
			lhsW, ok := v.lhsWidth(a.LHS)
			if !ok {
				return
			}
			eff, ok := v.effWidth(a.RHS)
			if !ok {
				return
			}
			if eff > lhsW {
				v.res.add(a.Pos, SevWarning, CodeWidthTrunc, firstTarget(a.LHS),
					"expression of effective width %d is truncated to %d bits", eff, lhsW)
				return
			}
			if id, isIdent := a.RHS.(*verilog.Ident); isIdent && eff < lhsW {
				if _, isConst := v.params[id.Name]; !isConst {
					v.res.add(a.Pos, SevInfo, CodeWidthExt, firstTarget(a.LHS),
						"%d-bit %q is implicitly zero-extended to %d bits", eff, id.Name, lhsW)
				}
			}
		})
	}
}

func firstTarget(lhs verilog.Expr) string {
	ts := verilog.LHSTargets(lhs)
	if len(ts) == 0 {
		return ""
	}
	return ts[0]
}

// lhsWidth is the assignable width of a target; false when it cannot
// be determined (undeclared base, non-constant bounds).
func (v *modView) lhsWidth(e verilog.Expr) (int, bool) {
	switch x := e.(type) {
	case *verilog.Ident:
		w, ok := v.width(x.Name)
		return w, ok
	case *verilog.Index:
		if id, ok := x.X.(*verilog.Ident); ok {
			if _, ok := v.width(id.Name); ok {
				return 1, true
			}
		}
		return 0, false
	case *verilog.PartSelect:
		hi, ok1 := constIndex(x.MSB, v.params, v.width)
		lo, ok2 := constIndex(x.LSB, v.params, v.width)
		if !ok1 || !ok2 {
			return 0, false
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		return hi - lo + 1, true
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			w, ok := v.lhsWidth(p)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	}
	return 0, false
}

// effWidth is the number of significant bits an expression can
// produce: literal values count their actual magnitude, operators
// follow self-determined width rules. False means "not confidently
// known" (e.g. an undeclared identifier) and suppresses the lint.
func (v *modView) effWidth(e verilog.Expr) (int, bool) {
	switch x := e.(type) {
	case *verilog.Number:
		if val, defined := x.Val.Uint64(); defined {
			w := bits.Len64(val)
			if w < 1 {
				w = 1
			}
			return w, true
		}
		if x.Width > 0 {
			return x.Width, true
		}
		return 32, true
	case *verilog.StringLit:
		return 8 * len(x.Value), true
	case *verilog.Ident:
		if val, ok := v.params[x.Name]; ok {
			if u, defined := val.Uint64(); defined {
				w := bits.Len64(u)
				if w < 1 {
					w = 1
				}
				return w, true
			}
			return val.Width(), true
		}
		w, ok := v.width(x.Name)
		return w, ok
	case *verilog.Unary:
		switch x.Op {
		case "+":
			return v.effWidth(x.X)
		case "~", "-":
			return v.selfW(x.X)
		default:
			return 1, true
		}
	case *verilog.Binary:
		switch x.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			l, ok1 := v.effWidth(x.X)
			r, ok2 := v.effWidth(x.Y)
			if !ok1 || !ok2 {
				return 0, false
			}
			if r > l {
				l = r
			}
			return l, true
		case "<<", ">>", ">>>", "<<<", "**":
			return v.effWidth(x.X)
		default:
			return 1, true
		}
	case *verilog.Ternary:
		l, ok1 := v.effWidth(x.Then)
		r, ok2 := v.effWidth(x.Else)
		if !ok1 || !ok2 {
			return 0, false
		}
		if r > l {
			l = r
		}
		return l, true
	case *verilog.Index:
		return 1, true
	case *verilog.Concat, *verilog.Repl, *verilog.PartSelect:
		return v.selfW(e)
	}
	return v.selfW(e)
}

// selfW is selfWidth gated on every contained identifier being
// declared, so lints never fire off a defaulted width.
func (v *modView) selfW(e verilog.Expr) (int, bool) {
	known := true
	verilog.WalkExprs(e, func(x verilog.Expr) {
		if id, ok := x.(*verilog.Ident); ok {
			if _, p := v.params[id.Name]; p {
				return
			}
			if _, s := v.signals[id.Name]; !s {
				known = false
			}
		}
	})
	if !known {
		return 0, false
	}
	return selfWidth(e, v.params, v.width), true
}

// constPass propagates compile-time constants to find conditions that
// cannot vary and case arms that cannot match: constant if/case
// selectors, duplicate arms, and arms whose value needs more bits
// than the selector can ever carry.
func (v *modView) constPass() {
	for _, p := range v.procs {
		pos := p.pos
		verilog.WalkStmts(p.body, func(s verilog.Stmt) {
			switch x := s.(type) {
			case *verilog.If:
				cv, ok := constEval(x.Cond, v.params, v.width, 0)
				if !ok {
					return
				}
				if logic.Truth(cv) == logic.L1 {
					if x.Else != nil {
						v.res.add(pos, SevWarning, CodeConstCond, "",
							"if condition %s is constantly true; the else branch never runs", verilog.ExprString(x.Cond))
					} else {
						v.res.add(pos, SevWarning, CodeConstCond, "",
							"if condition %s is constantly true", verilog.ExprString(x.Cond))
					}
				} else {
					v.res.add(pos, SevWarning, CodeConstCond, "",
						"if condition %s is never true; the then branch never runs", verilog.ExprString(x.Cond))
				}
			case *verilog.Case:
				v.checkCase(x, pos)
			}
		})
	}
}

func (v *modView) checkCase(c *verilog.Case, pos verilog.Pos) {
	selW, selKnown := v.selfW(c.Expr)
	selConst, selIsConst := constEval(c.Expr, v.params, v.width, 0)
	var seen []logic.Vector
	for _, item := range c.Items {
		for _, e := range item.Exprs {
			av, ok := constEval(e, v.params, v.width, 0)
			if !ok {
				continue
			}
			if selKnown && !selIsConst {
				for i := selW; i < av.Width(); i++ {
					if av.Bit(i) == logic.L1 {
						v.res.add(pos, SevWarning, CodeUnreachable, "",
							"case arm %s cannot match: it needs %d bits but the selector has %d",
							verilog.ExprString(e), i+1, selW)
						break
					}
				}
			}
			dup := false
			for _, prev := range seen {
				w := prev.Width()
				if av.Width() > w {
					w = av.Width()
				}
				if prev.Resize(w).Equal(av.Resize(w)) {
					dup = true
					break
				}
			}
			if dup {
				v.res.add(pos, SevWarning, CodeDupArm, "",
					"case arm %s duplicates an earlier arm and never runs", verilog.ExprString(e))
			} else {
				seen = append(seen, av)
			}
			if selIsConst {
				w := selConst.Width()
				if av.Width() > w {
					w = av.Width()
				}
				sv, armv := selConst.Resize(w), av.Resize(w)
				var match bool
				switch c.Kind {
				case verilog.CaseZ:
					match = logic.CaseZMatch(sv, armv)
				case verilog.CaseX:
					match = logic.CaseXMatch(sv, armv)
				default:
					match = sv.SameValue(armv)
				}
				if !match {
					v.res.add(pos, SevWarning, CodeUnreachable, "",
						"case arm %s cannot match the constant selector %s",
						verilog.ExprString(e), verilog.ExprString(c.Expr))
				}
			}
		}
	}
}
