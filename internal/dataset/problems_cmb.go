package dataset

import "fmt"

// vec renders a port range prefix for a width ("" for scalars).
func vec(w int) string {
	if w <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", w-1)
}

// combinational builds the 81 CMB problems.
func combinational() []*Problem {
	var ps []*Problem
	add := func(p *Problem) { ps = append(ps, p) }

	// --- multiplexers (9) ---
	for _, w := range []int{1, 4, 8, 16} {
		name := fmt.Sprintf("mux2_w%d", w)
		add(problem(name, CMB, 1,
			fmt.Sprintf("A 2-to-1 multiplexer with %d-bit data inputs a and b and a select input sel. When sel is 0 the output y equals a; when sel is 1 the output y equals b.", w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    input sel,
    output %sy
);
    assign y = sel ? b : a;
endmodule
`, name, vec(w), vec(w), vec(w))))
	}
	for _, w := range []int{1, 4, 8} {
		name := fmt.Sprintf("mux4_w%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A 4-to-1 multiplexer with four %d-bit data inputs d0, d1, d2, d3 and a 2-bit select input sel. The output y equals d0 when sel is 0, d1 when sel is 1, d2 when sel is 2 and d3 when sel is 3.", w),
			fmt.Sprintf(`module %s(
    input %sd0,
    input %sd1,
    input %sd2,
    input %sd3,
    input [1:0] sel,
    output reg %sy
);
    always @(*) begin
        case (sel)
            2'd0: y = d0;
            2'd1: y = d1;
            2'd2: y = d2;
            default: y = d3;
        endcase
    end
endmodule
`, name, vec(w), vec(w), vec(w), vec(w), vec(w))))
	}
	for _, w := range []int{1, 8} {
		name := fmt.Sprintf("mux8_w%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("An 8-to-1 multiplexer with eight %d-bit data inputs d0 through d7 and a 3-bit select input sel. The output y equals the data input whose index matches sel.", w),
			fmt.Sprintf(`module %s(
    input %sd0, input %sd1, input %sd2, input %sd3,
    input %sd4, input %sd5, input %sd6, input %sd7,
    input [2:0] sel,
    output reg %sy
);
    always @(*) begin
        case (sel)
            3'd0: y = d0;
            3'd1: y = d1;
            3'd2: y = d2;
            3'd3: y = d3;
            3'd4: y = d4;
            3'd5: y = d5;
            3'd6: y = d6;
            default: y = d7;
        endcase
    end
endmodule
`, name, vec(w), vec(w), vec(w), vec(w), vec(w), vec(w), vec(w), vec(w), vec(w))))
	}

	// --- decoders / demux (8) ---
	for _, n := range []int{2, 3, 4} {
		name := fmt.Sprintf("decoder%d", n)
		out := 1 << n
		add(problem(name, CMB, 1,
			fmt.Sprintf("A %d-to-%d binary decoder. The %d-bit input a selects which single bit of the %d-bit output y is set to 1; all other output bits are 0.", n, out, n, out),
			fmt.Sprintf(`module %s(
    input %sa,
    output %sy
);
    assign y = %d'd1 << a;
endmodule
`, name, vec(n), vec(out), out)))
	}
	for _, n := range []int{2, 3} {
		name := fmt.Sprintf("decoder%d_en", n)
		out := 1 << n
		add(problem(name, CMB, 2,
			fmt.Sprintf("A %d-to-%d binary decoder with an active-high enable input en. When en is 1 the output bit selected by the %d-bit input a is 1 and all others are 0; when en is 0 the whole %d-bit output y is 0.", n, out, n, out),
			fmt.Sprintf(`module %s(
    input %sa,
    input en,
    output %sy
);
    assign y = en ? (%d'd1 << a) : %d'd0;
endmodule
`, name, vec(n), vec(out), out, out)))
	}
	for _, n := range []int{4, 8} {
		name := fmt.Sprintf("demux%d", n)
		sel := 2
		if n == 8 {
			sel = 3
		}
		add(problem(name, CMB, 2,
			fmt.Sprintf("A 1-to-%d demultiplexer. The single-bit data input d is routed to the output bit of y selected by the %d-bit input sel; all other bits of the %d-bit output y are 0.", n, sel, n),
			fmt.Sprintf(`module %s(
    input d,
    input %ssel,
    output %sy
);
    assign y = d ? (%d'd1 << sel) : %d'd0;
endmodule
`, name, vec(sel), vec(n), n, n)))
	}
	add(problem("onehot_mux4", CMB, 2,
		"A 4-to-1 one-hot multiplexer with four 4-bit data inputs d0..d3 and a 4-bit one-hot select input sel. Output y equals the data input whose select bit is set; if sel is not one-hot the result is the OR-combination of the selected inputs (standard AND-OR mux).",
		`module onehot_mux4(
    input [3:0] d0,
    input [3:0] d1,
    input [3:0] d2,
    input [3:0] d3,
    input [3:0] sel,
    output [3:0] y
);
    assign y = ({4{sel[0]}} & d0) | ({4{sel[1]}} & d1) | ({4{sel[2]}} & d2) | ({4{sel[3]}} & d3);
endmodule
`))

	// --- encoders (5) ---
	add(problem("encoder4", CMB, 2,
		"A 4-to-2 binary encoder for a one-hot input. The 4-bit input a has exactly one bit set; the 2-bit output y is the index of that bit. For input 4'b0001 y is 0, for 4'b0010 y is 1, for 4'b0100 y is 2 and for 4'b1000 y is 3. For any other input y is 0.",
		`module encoder4(
    input [3:0] a,
    output reg [1:0] y
);
    always @(*) begin
        case (a)
            4'b0001: y = 2'd0;
            4'b0010: y = 2'd1;
            4'b0100: y = 2'd2;
            4'b1000: y = 2'd3;
            default: y = 2'd0;
        endcase
    end
endmodule
`))
	add(problem("encoder8", CMB, 2,
		"An 8-to-3 binary encoder for a one-hot input. The 8-bit input a has exactly one bit set and the 3-bit output y gives the index of that bit; for any input that is not one-hot, y is 0.",
		`module encoder8(
    input [7:0] a,
    output reg [2:0] y
);
    always @(*) begin
        case (a)
            8'b00000001: y = 3'd0;
            8'b00000010: y = 3'd1;
            8'b00000100: y = 3'd2;
            8'b00001000: y = 3'd3;
            8'b00010000: y = 3'd4;
            8'b00100000: y = 3'd5;
            8'b01000000: y = 3'd6;
            8'b10000000: y = 3'd7;
            default: y = 3'd0;
        endcase
    end
endmodule
`))
	for _, n := range []int{4, 8, 16} {
		name := fmt.Sprintf("prio_enc%d", n)
		sel := 2
		if n == 8 {
			sel = 3
		} else if n == 16 {
			sel = 4
		}
		body := ""
		for i := n - 1; i >= 0; i-- {
			pat := make([]byte, n)
			for j := range pat {
				pat[j] = '?'
			}
			pat[n-1-i] = '1'
			for j := 0; j < n-1-i; j++ {
				pat[j] = '0'
			}
			body += fmt.Sprintf("            %d'b%s: begin idx = %d'd%d; valid = 1'b1; end\n", n, string(pat), sel, i)
		}
		add(problem(name, CMB, 3,
			fmt.Sprintf("A %d-bit priority encoder. The output idx is the index of the highest-numbered 1 bit of the input req, and valid is 1 when at least one request bit is set. When req is all zero, idx is 0 and valid is 0.", n),
			fmt.Sprintf(`module %s(
    input %sreq,
    output reg %sidx,
    output reg valid
);
    always @(*) begin
        casez (req)
%s            default: begin idx = %d'd0; valid = 1'b0; end
        endcase
    end
endmodule
`, name, vec(n), vec(sel), body, sel)))
	}

	// --- adders and arithmetic (12) ---
	add(problem("halfadd", CMB, 1,
		"A half adder. Inputs a and b are single bits; output s is their sum bit (a XOR b) and output c is the carry (a AND b).",
		`module halfadd(
    input a,
    input b,
    output s,
    output c
);
    assign s = a ^ b;
    assign c = a & b;
endmodule
`))
	add(problem("fulladd", CMB, 1,
		"A full adder. Inputs a, b and cin are single bits; output s is the sum bit and cout is the carry out, so {cout, s} equals a + b + cin.",
		`module fulladd(
    input a,
    input b,
    input cin,
    output s,
    output cout
);
    assign {cout, s} = a + b + cin;
endmodule
`))
	for _, w := range []int{4, 8, 16} {
		name := fmt.Sprintf("adder%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A %d-bit ripple-carry style adder with carry in and carry out. Inputs a and b are %d-bit unsigned values and cin is a single carry bit; {cout, sum} equals a + b + cin.", w, w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    input cin,
    output %ssum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule
`, name, vec(w), vec(w), vec(w))))
	}
	add(problem("addsub8", CMB, 3,
		"An 8-bit adder-subtractor. When the mode input sub is 0 the output y is a + b; when sub is 1 the output y is a - b. The result wraps modulo 256 and no carry/borrow is reported.",
		`module addsub8(
    input [7:0] a,
    input [7:0] b,
    input sub,
    output [7:0] y
);
    assign y = sub ? (a - b) : (a + b);
endmodule
`))
	add(problem("inc8", CMB, 1,
		"An 8-bit incrementer: the output y equals the input a plus one, wrapping from 255 back to 0.",
		`module inc8(
    input [7:0] a,
    output [7:0] y
);
    assign y = a + 8'd1;
endmodule
`))
	add(problem("dec8", CMB, 1,
		"An 8-bit decrementer: the output y equals the input a minus one, wrapping from 0 to 255.",
		`module dec8(
    input [7:0] a,
    output [7:0] y
);
    assign y = a - 8'd1;
endmodule
`))
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("sub%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A %d-bit subtractor with borrow out. diff is a - b modulo %d, and borrow is 1 when b is greater than a.", w, 1<<w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    output %sdiff,
    output borrow
);
    assign diff = a - b;
    assign borrow = b > a;
endmodule
`, name, vec(w), vec(w), vec(w))))
	}
	add(problem("mult4x4", CMB, 3,
		"A 4x4 unsigned multiplier: the 8-bit output p is the product of the 4-bit unsigned inputs a and b.",
		`module mult4x4(
    input [3:0] a,
    input [3:0] b,
    output [7:0] p
);
    assign p = a * b;
endmodule
`))
	add(problem("satadd4", CMB, 3,
		"A 4-bit saturating adder: the output y is a + b, but if the true sum exceeds 15 the output saturates at 15 instead of wrapping.",
		`module satadd4(
    input [3:0] a,
    input [3:0] b,
    output [3:0] y
);
    wire [4:0] full;
    assign full = a + b;
    assign y = full[4] ? 4'd15 : full[3:0];
endmodule
`))

	// --- comparators (6) ---
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("cmp_eq%d", w)
		add(problem(name, CMB, 1,
			fmt.Sprintf("A %d-bit equality comparator: output eq is 1 exactly when inputs a and b are equal.", w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    output eq
);
    assign eq = a == b;
endmodule
`, name, vec(w), vec(w))))
	}
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("cmp_lt%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A %d-bit unsigned magnitude comparator: output lt is 1 exactly when a is strictly less than b (unsigned).", w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    output lt
);
    assign lt = a < b;
endmodule
`, name, vec(w), vec(w))))
	}
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("cmp_full%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A full %d-bit unsigned comparator with three outputs: lt is 1 when a < b, eq is 1 when a equals b, and gt is 1 when a > b. Exactly one output is 1 for any input pair.", w),
			fmt.Sprintf(`module %s(
    input %sa,
    input %sb,
    output lt,
    output eq,
    output gt
);
    assign lt = a < b;
    assign eq = a == b;
    assign gt = a > b;
endmodule
`, name, vec(w), vec(w))))
	}

	// --- parity / counting (7) ---
	for _, w := range []int{8, 16} {
		for _, odd := range []bool{false, true} {
			kind, op := "even", ""
			if odd {
				kind, op = "odd", "~"
			}
			name := fmt.Sprintf("parity_%s%d", kind, w)
			add(problem(name, CMB, 1,
				fmt.Sprintf("A %d-bit %s-parity generator: output p is the %s parity of input a, i.e. p is chosen so that the XOR of all input bits %s.", w, kind, kind,
					map[bool]string{false: "equals p (p = XOR reduction of a)", true: "XORed with p is 1 (p = NOT of the XOR reduction of a)"}[odd]),
				fmt.Sprintf(`module %s(
    input %sa,
    output p
);
    assign p = %s(^a);
endmodule
`, name, vec(w), op)))
		}
	}
	for _, w := range []int{4, 8, 16} {
		name := fmt.Sprintf("popcount%d", w)
		ow := 3
		if w == 8 {
			ow = 4
		} else if w == 16 {
			ow = 5
		}
		add(problem(name, CMB, 3,
			fmt.Sprintf("A %d-bit population counter: output n is the number of 1 bits in the input a.", w),
			fmt.Sprintf(`module %s(
    input %sa,
    output reg %sn
);
    integer i;
    always @(*) begin
        n = %d'd0;
        for (i = 0; i < %d; i = i + 1)
            if (a[i]) n = n + %d'd1;
    end
endmodule
`, name, vec(w), vec(ow), ow, w, ow)))
	}

	// --- gray code (3) ---
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("gray_enc%d", w)
		add(problem(name, CMB, 2,
			fmt.Sprintf("A %d-bit binary-to-Gray encoder: the output g equals the input b XOR (b shifted right by one).", w),
			fmt.Sprintf(`module %s(
    input %sb,
    output %sg
);
    assign g = b ^ (b >> 1);
endmodule
`, name, vec(w), vec(w))))
	}
	add(problem("gray_dec4", CMB, 3,
		"A 4-bit Gray-to-binary decoder. Bit 3 of the output b equals bit 3 of the Gray input g; each lower output bit is the XOR of the corresponding Gray bit and the next higher binary bit.",
		`module gray_dec4(
    input [3:0] g,
    output [3:0] b
);
    assign b[3] = g[3];
    assign b[2] = b[3] ^ g[2];
    assign b[1] = b[2] ^ g[1];
    assign b[0] = b[1] ^ g[0];
endmodule
`))

	// --- bitwise units (4) ---
	for _, op := range []struct{ name, spec, expr string }{
		{"bitwise_and8", "the bitwise AND of a and b", "a & b"},
		{"bitwise_or8", "the bitwise OR of a and b", "a | b"},
		{"bitwise_xor8", "the bitwise XOR of a and b", "a ^ b"},
		{"bitwise_not8", "the bitwise complement of a (input b is unused)", "~a"},
	} {
		add(problem(op.name, CMB, 1,
			fmt.Sprintf("An 8-bit bitwise unit: the output y is %s.", op.spec),
			fmt.Sprintf(`module %s(
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = %s;
endmodule
`, op.name, op.expr)))
	}

	// --- shifters / rotates (6) ---
	add(problem("barrel_l8", CMB, 3,
		"An 8-bit logical left barrel shifter: output y is input a shifted left by the 3-bit amount sh, with zeros filling the vacated low bits.",
		`module barrel_l8(
    input [7:0] a,
    input [2:0] sh,
    output [7:0] y
);
    assign y = a << sh;
endmodule
`))
	add(problem("barrel_r8", CMB, 3,
		"An 8-bit logical right barrel shifter: output y is input a shifted right by the 3-bit amount sh, with zeros filling the vacated high bits.",
		`module barrel_r8(
    input [7:0] a,
    input [2:0] sh,
    output [7:0] y
);
    assign y = a >> sh;
endmodule
`))
	add(problem("barrel_asr8", CMB, 3,
		"An 8-bit arithmetic right shifter: output y is input a shifted right by the 3-bit amount sh, with the sign bit a[7] replicated into the vacated high bits.",
		`module barrel_asr8(
    input [7:0] a,
    input [2:0] sh,
    output [7:0] y
);
    assign y = ({8{a[7]}} << (4'd8 - {1'b0, sh})) | (a >> sh);
endmodule
`))
	add(problem("rotl8", CMB, 3,
		"An 8-bit left rotator: output y is input a rotated left by the 3-bit amount sh; bits shifted out of the top re-enter at the bottom.",
		`module rotl8(
    input [7:0] a,
    input [2:0] sh,
    output [7:0] y
);
    assign y = (a << sh) | (a >> (4'd8 - {1'b0, sh}));
endmodule
`))
	add(problem("rotr8", CMB, 3,
		"An 8-bit right rotator: output y is input a rotated right by the 3-bit amount sh; bits shifted out of the bottom re-enter at the top.",
		`module rotr8(
    input [7:0] a,
    input [2:0] sh,
    output [7:0] y
);
    assign y = (a >> sh) | (a << (4'd8 - {1'b0, sh}));
endmodule
`))
	// --- ALUs (2) ---
	add(problem("alu4", CMB, 3,
		"A 4-bit ALU with a 2-bit operation select op: op 0 adds a and b, op 1 subtracts b from a, op 2 is bitwise AND and op 3 is bitwise OR. The output zero is 1 when the 4-bit result y is zero.",
		`module alu4(
    input [3:0] a,
    input [3:0] b,
    input [1:0] op,
    output reg [3:0] y,
    output zero
);
    always @(*) begin
        case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a & b;
            default: y = a | b;
        endcase
    end
    assign zero = y == 4'd0;
endmodule
`))
	add(problem("alu8", CMB, 4,
		"An 8-bit ALU with a 3-bit operation select op: 0 add, 1 subtract, 2 AND, 3 OR, 4 XOR, 5 shift a left by one, 6 shift a right by one (logical), 7 set-less-than (y is 1 when a < b unsigned, else 0). Output zero is 1 when the result y is zero.",
		`module alu8(
    input [7:0] a,
    input [7:0] b,
    input [2:0] op,
    output reg [7:0] y,
    output zero
);
    always @(*) begin
        case (op)
            3'd0: y = a + b;
            3'd1: y = a - b;
            3'd2: y = a & b;
            3'd3: y = a | b;
            3'd4: y = a ^ b;
            3'd5: y = a << 1;
            3'd6: y = a >> 1;
            default: y = (a < b) ? 8'd1 : 8'd0;
        endcase
    end
    assign zero = y == 8'd0;
endmodule
`))

	// --- misc logic (3) ---
	add(problem("majority3", CMB, 1,
		"A 3-input majority gate: output y is 1 when at least two of the inputs a, b and c are 1.",
		`module majority3(
    input a,
    input b,
    input c,
    output y
);
    assign y = (a & b) | (a & c) | (b & c);
endmodule
`))
	add(problem("aoi22", CMB, 1,
		"A 2-2 AND-OR-INVERT gate: output y is the complement of ((a AND b) OR (c AND d)).",
		`module aoi22(
    input a,
    input b,
    input c,
    input d,
    output y
);
    assign y = ~((a & b) | (c & d));
endmodule
`))
	// --- width/format converters (5) ---
	add(problem("signext4_8", CMB, 2,
		"A sign extender from 4 to 8 bits: the output y replicates bit 3 of the input a into the four upper output bits and copies a into the lower four bits.",
		`module signext4_8(
    input [3:0] a,
    output [7:0] y
);
    assign y = {{4{a[3]}}, a};
endmodule
`))
	add(problem("zeroext4_8", CMB, 1,
		"A zero extender from 4 to 8 bits: the output y has the input a in its lower four bits and zeros in the upper four bits.",
		`module zeroext4_8(
    input [3:0] a,
    output [7:0] y
);
    assign y = {4'b0000, a};
endmodule
`))
	add(problem("byteswap16", CMB, 2,
		"A 16-bit byte swapper: the output y exchanges the two bytes of the input a, so y[15:8] is a[7:0] and y[7:0] is a[15:8].",
		`module byteswap16(
    input [15:0] a,
    output [15:0] y
);
    assign y = {a[7:0], a[15:8]};
endmodule
`))
	add(problem("nibswap8", CMB, 1,
		"An 8-bit nibble swapper: the output y exchanges the two 4-bit halves of input a.",
		`module nibswap8(
    input [7:0] a,
    output [7:0] y
);
    assign y = {a[3:0], a[7:4]};
endmodule
`))
	add(problem("revbits8", CMB, 2,
		"An 8-bit bit reverser: output bit i of y equals input bit 7-i of a.",
		`module revbits8(
    input [7:0] a,
    output [7:0] y
);
    assign y = {a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]};
endmodule
`))

	// --- min/max/abs (3) ---
	add(problem("min8", CMB, 2,
		"An 8-bit unsigned minimum unit: output y is the smaller of inputs a and b.",
		`module min8(
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = (a < b) ? a : b;
endmodule
`))
	add(problem("max8", CMB, 2,
		"An 8-bit unsigned maximum unit: output y is the larger of inputs a and b.",
		`module max8(
    input [7:0] a,
    input [7:0] b,
    output [7:0] y
);
    assign y = (a > b) ? a : b;
endmodule
`))
	add(problem("abs8", CMB, 3,
		"An 8-bit absolute-value unit for two's-complement inputs: when bit 7 of a is 1 the output y is the two's complement negation of a, otherwise y equals a.",
		`module abs8(
    input [7:0] a,
    output [7:0] y
);
    assign y = a[7] ? (~a + 8'd1) : a;
endmodule
`))

	// --- truth tables (3) ---
	add(problem("lut3_a", CMB, 2,
		"A 3-input combinational function given by its truth table: y is 1 for input combinations {a,b,c} = 011, 101, 110 and 111 (i.e. the carry function of a full adder), otherwise 0.",
		`module lut3_a(
    input a,
    input b,
    input c,
    output reg y
);
    always @(*) begin
        case ({a, b, c})
            3'b011: y = 1'b1;
            3'b101: y = 1'b1;
            3'b110: y = 1'b1;
            3'b111: y = 1'b1;
            default: y = 1'b0;
        endcase
    end
endmodule
`))
	add(problem("lut3_b", CMB, 2,
		"A 3-input combinational function given by its truth table: y is 1 for input combinations {a,b,c} = 001, 010, 100 and 111 (the odd-parity function), otherwise 0.",
		`module lut3_b(
    input a,
    input b,
    input c,
    output reg y
);
    always @(*) begin
        case ({a, b, c})
            3'b001: y = 1'b1;
            3'b010: y = 1'b1;
            3'b100: y = 1'b1;
            3'b111: y = 1'b1;
            default: y = 1'b0;
        endcase
    end
endmodule
`))
	add(problem("lut3_c", CMB, 2,
		"A 3-input combinational function given by its truth table: y is 1 for input combinations {a,b,c} = 000, 011, 101 and 110, otherwise 0 (the even-parity function).",
		`module lut3_c(
    input a,
    input b,
    input c,
    output reg y
);
    always @(*) begin
        case ({a, b, c})
            3'b000: y = 1'b1;
            3'b011: y = 1'b1;
            3'b101: y = 1'b1;
            3'b110: y = 1'b1;
            default: y = 1'b0;
        endcase
    end
endmodule
`))

	// --- detectors / checkers (5) ---
	add(problem("range_det8", CMB, 2,
		"An 8-bit range detector: output inside is 1 when the unsigned input x is between 50 and 200 inclusive.",
		`module range_det8(
    input [7:0] x,
    output inside,
    output outside
);
    assign inside = (x >= 8'd50) && (x <= 8'd200);
    assign outside = ~inside;
endmodule
`))
	add(problem("onehot4_check", CMB, 3,
		"A 4-bit one-hot checker: output onehot is 1 exactly when the input a has exactly one bit set.",
		`module onehot4_check(
    input [3:0] a,
    output reg onehot
);
    always @(*) begin
        case (a)
            4'b0001: onehot = 1'b1;
            4'b0010: onehot = 1'b1;
            4'b0100: onehot = 1'b1;
            4'b1000: onehot = 1'b1;
            default: onehot = 1'b0;
        endcase
    end
endmodule
`))
	add(problem("bin2onehot4", CMB, 1,
		"A 2-to-4 binary-to-one-hot converter: output y has exactly the bit indexed by the 2-bit input a set.",
		`module bin2onehot4(
    input [1:0] a,
    output [3:0] y
);
    assign y = 4'd1 << a;
endmodule
`))
	add(problem("clz8", CMB, 4,
		"An 8-bit count-leading-zeros unit: output n is the number of consecutive 0 bits at the most-significant end of input a; for a = 0, n is 8.",
		`module clz8(
    input [7:0] a,
    output reg [3:0] n
);
    always @(*) begin
        casez (a)
            8'b1???????: n = 4'd0;
            8'b01??????: n = 4'd1;
            8'b001?????: n = 4'd2;
            8'b0001????: n = 4'd3;
            8'b00001???: n = 4'd4;
            8'b000001??: n = 4'd5;
            8'b0000001?: n = 4'd6;
            8'b00000001: n = 4'd7;
            default: n = 4'd8;
        endcase
    end
endmodule
`))
	add(problem("bcd_valid", CMB, 2,
		"A BCD digit validator: output valid is 1 when the 4-bit input d encodes a decimal digit (0 through 9) and 0 for values 10 through 15.",
		`module bcd_valid(
    input [3:0] d,
    output valid
);
    assign valid = d < 4'd10;
endmodule
`))

	// --- display / merge (2) ---
	add(problem("sevenseg", CMB, 4,
		"A seven-segment decoder for hexadecimal digits. The 4-bit input d selects the active-high segment pattern on the 7-bit output seg, ordered {g,f,e,d,c,b,a}, using the standard patterns for digits 0-9 and A-F (e.g. 0 lights segments a-f giving 7'b0111111; 1 lights b and c giving 7'b0000110).",
		`module sevenseg(
    input [3:0] d,
    output reg [6:0] seg
);
    always @(*) begin
        case (d)
            4'h0: seg = 7'b0111111;
            4'h1: seg = 7'b0000110;
            4'h2: seg = 7'b1011011;
            4'h3: seg = 7'b1001111;
            4'h4: seg = 7'b1100110;
            4'h5: seg = 7'b1101101;
            4'h6: seg = 7'b1111101;
            4'h7: seg = 7'b0000111;
            4'h8: seg = 7'b1111111;
            4'h9: seg = 7'b1101111;
            4'ha: seg = 7'b1110111;
            4'hb: seg = 7'b1111100;
            4'hc: seg = 7'b0111001;
            4'hd: seg = 7'b1011110;
            4'he: seg = 7'b1111001;
            default: seg = 7'b1110001;
        endcase
    end
endmodule
`))
	add(problem("mask_merge8", CMB, 2,
		"An 8-bit mask merger: for each bit position, the output y takes the bit from input a where the mask m is 1 and from input b where the mask is 0.",
		`module mask_merge8(
    input [7:0] a,
    input [7:0] b,
    input [7:0] m,
    output [7:0] y
);
    assign y = (a & m) | (b & ~m);
endmodule
`))

	return ps
}
