package dataset

import (
	"strings"
	"testing"

	"correctbench/internal/sim"
)

func TestCounts(t *testing.T) {
	all := All()
	cmb := OfKind(CMB)
	seq := OfKind(SEQ)
	if len(cmb) != 81 {
		t.Errorf("CMB count = %d, want 81", len(cmb))
	}
	if len(seq) != 75 {
		t.Errorf("SEQ count = %d, want 75", len(seq))
	}
	if len(all) != 156 {
		t.Errorf("total = %d, want 156", len(all))
	}
}

func TestAllGoldenSourcesElaborate(t *testing.T) {
	for _, p := range All() {
		if _, err := p.Elaborate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAllProblemsHaveSpecs(t *testing.T) {
	for _, p := range All() {
		if len(p.Spec) < 40 {
			t.Errorf("%s: spec too short: %q", p.Name, p.Spec)
		}
		if p.Difficulty < 1 || p.Difficulty > 5 {
			t.Errorf("%s: difficulty %d out of range", p.Name, p.Difficulty)
		}
		if p.Top != p.Name {
			t.Errorf("%s: top %q mismatched", p.Name, p.Top)
		}
	}
}

func TestSEQProblemsHaveClocks(t *testing.T) {
	for _, p := range OfKind(SEQ) {
		if p.Clock != "clk" {
			t.Errorf("%s: clock = %q", p.Name, p.Clock)
			continue
		}
		d, err := p.Elaborate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if d.Port(p.Clock) == nil {
			t.Errorf("%s: clock port missing from design", p.Name)
		}
		if p.Reset != "" && d.Port(p.Reset) == nil {
			t.Errorf("%s: declared reset %q missing", p.Name, p.Reset)
		}
	}
	for _, p := range OfKind(CMB) {
		if p.Clock != "" {
			t.Errorf("%s: CMB problem has clock %q", p.Name, p.Clock)
		}
	}
}

// TestGoldenOutputsBecomeDefined drives every golden design with a
// simple flush (reset or load, then a few cycles of zero inputs) and
// checks that every output leaves the X state — i.e. the golden RTL is
// actually simulatable and initializable.
func TestGoldenOutputsBecomeDefined(t *testing.T) {
	for _, p := range All() {
		d, err := p.Elaborate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		in := sim.NewInstance(d)
		if err := in.ZeroInputs(); err != nil {
			t.Fatalf("%s: zero inputs: %v", p.Name, err)
		}
		if p.Kind == SEQ {
			if p.Reset != "" {
				in.SetInputUint(p.Reset, 1)
				if err := in.Tick(p.Clock); err != nil {
					t.Fatalf("%s: reset tick: %v", p.Name, err)
				}
				in.SetInputUint(p.Reset, 0)
			} else {
				// Reset-less designs flush via their load-style input.
				for _, cand := range []string{"load", "set", "clr", "en"} {
					if d.Port(cand) != nil {
						in.SetInputUint(cand, 1)
					}
				}
				if err := in.Tick(p.Clock); err != nil {
					t.Fatalf("%s: flush tick: %v", p.Name, err)
				}
				for _, cand := range []string{"load", "set", "clr", "en"} {
					if d.Port(cand) != nil {
						in.SetInputUint(cand, 0)
					}
				}
			}
			if err := in.TickN(p.Clock, 3); err != nil {
				t.Fatalf("%s: ticks: %v", p.Name, err)
			}
		}
		outs, err := p.Outputs()
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) == 0 {
			t.Errorf("%s: no outputs", p.Name)
		}
		for _, o := range outs {
			v := in.MustGet(o.Name)
			if v.HasUnknown() {
				t.Errorf("%s: output %s = %s still unknown after flush", p.Name, o.Name, v)
			}
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if p := ByName("shift18"); p == nil || p.Kind != SEQ || p.Difficulty != 5 {
		t.Errorf("shift18 lookup failed: %+v", p)
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName returned something for a bogus name")
	}
	names := Names()
	if len(names) != 156 {
		t.Errorf("Names len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestDataInputsExcludeClockAndReset(t *testing.T) {
	p := ByName("cnt_en4")
	ins, err := p.DataInputs()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range ins {
		if pt.Name == "clk" || pt.Name == "rst" {
			t.Errorf("data inputs include %s", pt.Name)
		}
	}
	if len(ins) != 1 || ins[0].Name != "en" {
		t.Errorf("cnt_en4 data inputs = %+v", ins)
	}
}

func TestSpecsDoNotLeakGoldenSource(t *testing.T) {
	// The spec is the only generator input; it must be prose, not code.
	for _, p := range All() {
		if strings.Contains(p.Spec, "module ") || strings.Contains(p.Spec, "assign ") {
			t.Errorf("%s: spec leaks Verilog", p.Name)
		}
	}
}
