// Package dataset provides the 156-problem benchmark suite used by the
// CorrectBench reproduction: 81 combinational (CMB) and 75 sequential
// (SEQ) Verilog design problems, mirroring the AutoBench/CorrectBench
// dataset extended from VerilogEval-Human/HDLBits. Each problem carries
// a natural-language specification (the only input the generation
// framework is allowed to see), a golden RTL implementation, and
// metadata used for stimulus generation.
package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

// Kind classifies problems by circuit type.
type Kind int

// Problem kinds.
const (
	CMB Kind = iota // combinational
	SEQ             // sequential
)

func (k Kind) String() string {
	if k == CMB {
		return "CMB"
	}
	return "SEQ"
}

// Problem is one benchmark task.
type Problem struct {
	Name string
	Kind Kind
	// Spec is the natural-language design specification handed to the
	// testbench generator.
	Spec string
	// Source is the golden RTL (never shown to the generator).
	Source string
	// Top is the module name.
	Top string
	// Clock and Reset name the clock/synchronous-reset inputs for SEQ
	// problems (empty for CMB). Reset may be empty for reset-less
	// designs that are flushed by loading instead.
	Clock, Reset string
	// Difficulty in 1..5 scales the simulated LLM's fault rates; SEQ
	// problems are systematically harder, as in the paper.
	Difficulty int

	// The golden module/design caches are built at most once each,
	// under their own once-guards: concurrent first callers block only
	// on the problem being built (not on a shared lock), and every
	// later call is a contention-free read. Source and Top must not be
	// mutated after the first Module/Elaborate call.
	moduleOnce   sync.Once
	cachedModule *verilog.Module
	moduleErr    error
	designOnce   sync.Once
	cachedDesign *sim.Design
	designErr    error
	fpOnce       sync.Once
	fingerprint  string
}

// Fingerprint returns a stable content hash over everything that
// defines the problem: name, kind, spec, golden source, top module,
// clock/reset names and difficulty. It is one component of the
// evaluation-cell store key (harness.CellKey), so editing any of
// these fields — a spec reword, a golden RTL fix — changes the
// fingerprint and silently invalidates every cached cell of the
// problem. Like the module/design caches, it requires the problem to
// be immutable after first use.
func (p *Problem) Fingerprint() string {
	p.fpOnce.Do(func() {
		h := sha256.New()
		// Length-prefixed fields so no two field layouts collide.
		for _, f := range []string{
			p.Name, p.Kind.String(), p.Spec, p.Source, p.Top, p.Clock, p.Reset,
		} {
			fmt.Fprintf(h, "%d:%s|", len(f), f)
		}
		fmt.Fprintf(h, "d=%d", p.Difficulty)
		p.fingerprint = hex.EncodeToString(h.Sum(nil)[:16])
	})
	return p.fingerprint
}

// Module parses the golden source and returns its top module. The
// result is cached and shared: callers must treat it as read-only
// (mutation always goes through verilog.CloneModule).
func (p *Problem) Module() (*verilog.Module, error) {
	p.moduleOnce.Do(func() {
		f, err := verilog.Parse(p.Source)
		if err != nil {
			p.moduleErr = fmt.Errorf("dataset %s: %v", p.Name, err)
			return
		}
		m := f.Module(p.Top)
		if m == nil {
			p.moduleErr = fmt.Errorf("dataset %s: top module %q missing", p.Name, p.Top)
			return
		}
		p.cachedModule = m
	})
	return p.cachedModule, p.moduleErr
}

// Elaborate parses and elaborates the golden source. The design is
// cached and shared; sim.Design is read-only during simulation.
func (p *Problem) Elaborate() (*sim.Design, error) {
	p.designOnce.Do(func() {
		p.cachedDesign, p.designErr = sim.ElaborateSource(p.Source, p.Top)
	})
	return p.cachedDesign, p.designErr
}

// DataInputs lists input ports excluding clock and reset, in
// declaration order; these are the ports stimulus generators drive.
func (p *Problem) DataInputs() ([]sim.Port, error) {
	d, err := p.Elaborate()
	if err != nil {
		return nil, err
	}
	var out []sim.Port
	for _, pt := range d.Ports {
		if pt.Dir != sim.In || pt.Name == p.Clock || pt.Name == p.Reset {
			continue
		}
		out = append(out, pt)
	}
	return out, nil
}

// Outputs lists output ports in declaration order.
func (p *Problem) Outputs() ([]sim.Port, error) {
	d, err := p.Elaborate()
	if err != nil {
		return nil, err
	}
	var out []sim.Port
	for _, pt := range d.Ports {
		if pt.Dir == sim.Out {
			out = append(out, pt)
		}
	}
	return out, nil
}

var (
	buildOnce sync.Once
	problems  []*Problem
	byName    map[string]*Problem
)

func build() {
	buildOnce.Do(func() {
		problems = append(problems, combinational()...)
		problems = append(problems, sequential()...)
		byName = make(map[string]*Problem, len(problems))
		for _, p := range problems {
			if byName[p.Name] != nil {
				panic("dataset: duplicate problem name " + p.Name)
			}
			byName[p.Name] = p
		}
	})
}

// All returns every problem, CMB first, in a stable order.
func All() []*Problem {
	build()
	return problems
}

// ByName returns the named problem, or nil.
func ByName(name string) *Problem {
	build()
	return byName[name]
}

// BenchmarkMix returns the fixed 12-problem CMB/SEQ mix used by the
// repo's experiment-scale benchmarks (bench_test.go) and by
// cmd/benchjson, so both measure the same workload.
func BenchmarkMix() []*Problem {
	names := []string{
		"mux4_w4", "adder8", "alu4", "prio_enc8", "sevenseg", "parity_even8",
		"cnt8", "det101", "sipo8", "shift18", "timer8", "lfsr8",
	}
	out := make([]*Problem, 0, len(names))
	for _, n := range names {
		p := ByName(n)
		if p == nil {
			panic("dataset: benchmark problem " + n + " missing")
		}
		out = append(out, p)
	}
	return out
}

// OfKind returns all problems of the given kind.
func OfKind(k Kind) []*Problem {
	var out []*Problem
	for _, p := range All() {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// Names returns all problem names sorted alphabetically.
func Names() []string {
	out := make([]string, 0, len(All()))
	for _, p := range All() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// problem is the internal constructor; it fills Top from the name.
func problem(name string, kind Kind, difficulty int, spec, source string) *Problem {
	p := &Problem{
		Name:       name,
		Kind:       kind,
		Spec:       spec,
		Source:     source,
		Top:        name,
		Difficulty: difficulty,
	}
	if kind == SEQ {
		p.Clock = "clk"
	}
	return p
}

// seqProblem builds a SEQ problem with a synchronous reset input named
// rst (pass "" for reset-less designs).
func seqProblem(name string, difficulty int, reset, spec, source string) *Problem {
	p := problem(name, SEQ, difficulty, spec, source)
	p.Reset = reset
	return p
}
