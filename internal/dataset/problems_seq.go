package dataset

import "fmt"

// sequential builds the 75 SEQ problems. All clocks are named clk and
// all resets are synchronous and active-high (named rst) unless a
// problem states otherwise in its spec.
func sequential() []*Problem {
	var ps []*Problem
	add := func(p *Problem) { ps = append(ps, p) }

	// --- flip-flops and registers (9) ---
	add(seqProblem("dff", 2, "",
		"A positive-edge-triggered D flip-flop: on every rising edge of clk the output q takes the value of input d.",
		`module dff(
    input clk,
    input d,
    output reg q
);
    always @(posedge clk) q <= d;
endmodule
`))
	add(seqProblem("dff_en", 2, "",
		"A D flip-flop with clock enable: on a rising clk edge, q takes the value of d when en is 1 and holds its value when en is 0.",
		`module dff_en(
    input clk,
    input en,
    input d,
    output reg q
);
    always @(posedge clk) begin
        if (en) q <= d;
    end
endmodule
`))
	add(seqProblem("dff_rst", 2, "rst",
		"A D flip-flop with synchronous active-high reset: on a rising clk edge, q becomes 0 when rst is 1, otherwise q takes the value of d.",
		`module dff_rst(
    input clk,
    input rst,
    input d,
    output reg q
);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else q <= d;
    end
endmodule
`))
	add(seqProblem("dff_set", 2, "",
		"A D flip-flop with synchronous set: on a rising clk edge, q becomes 1 when set is 1, otherwise q takes the value of d.",
		`module dff_set(
    input clk,
    input set,
    input d,
    output reg q
);
    always @(posedge clk) begin
        if (set) q <= 1'b1;
        else q <= d;
    end
endmodule
`))
	add(seqProblem("dff_en_rst", 3, "rst",
		"A D flip-flop with synchronous reset and clock enable. On a rising clk edge: if rst is 1 the output q becomes 0; otherwise if en is 1 q takes d; otherwise q holds. Reset has priority over enable.",
		`module dff_en_rst(
    input clk,
    input rst,
    input en,
    input d,
    output reg q
);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else if (en) q <= d;
    end
endmodule
`))
	add(seqProblem("reg8_en", 2, "rst",
		"An 8-bit register with synchronous reset and write enable. On a rising clk edge: rst clears the register to 0; otherwise en loads the 8-bit input d; otherwise the value is held. The stored value appears on output q.",
		`module reg8_en(
    input clk,
    input rst,
    input en,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (en) q <= d;
    end
endmodule
`))
	add(seqProblem("reg8_clr", 2, "",
		"An 8-bit register with synchronous clear: on a rising clk edge the register loads d, unless clr is 1 in which case it is cleared to 0. The stored value appears on output q.",
		`module reg8_clr(
    input clk,
    input clr,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (clr) q <= 8'd0;
        else q <= d;
    end
endmodule
`))
	add(seqProblem("reg4_gated", 3, "rst",
		"A 4-bit register with two gated write ports. On a rising clk edge: rst clears q to 0; otherwise if wa is 1 q loads da; otherwise if wb is 1 q loads db; otherwise q holds. Port a has priority over port b.",
		`module reg4_gated(
    input clk,
    input rst,
    input wa,
    input [3:0] da,
    input wb,
    input [3:0] db,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (wa) q <= da;
        else if (wb) q <= db;
    end
endmodule
`))
	add(seqProblem("dff_neg", 3, "",
		"A negative-edge-triggered D flip-flop: on every falling edge of clk the output q takes the value of input d.",
		`module dff_neg(
    input clk,
    input d,
    output reg q
);
    always @(negedge clk) q <= d;
endmodule
`))

	// --- counters (13) ---
	for _, w := range []int{4, 8} {
		name := fmt.Sprintf("cnt%d", w)
		add(seqProblem(name, 2, "rst",
			fmt.Sprintf("A %d-bit up counter with synchronous reset: on a rising clk edge the count q increments by 1, or is cleared to 0 when rst is 1. The counter wraps around at its maximum value.", w),
			fmt.Sprintf(`module %s(
    input clk,
    input rst,
    output reg %sq
);
    always @(posedge clk) begin
        if (rst) q <= %d'd0;
        else q <= q + %d'd1;
    end
endmodule
`, name, vec(w), w, w)))
	}
	add(seqProblem("cnt4_down", 2, "rst",
		"A 4-bit down counter with synchronous reset: rst sets the count q to 15; otherwise q decrements by 1 on each rising clk edge, wrapping from 0 back to 15.",
		`module cnt4_down(
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd15;
        else q <= q - 4'd1;
    end
endmodule
`))
	add(seqProblem("cnt8_updown", 3, "rst",
		"An 8-bit up/down counter: rst clears q to 0; otherwise on each rising clk edge q increments when up is 1 and decrements when up is 0, wrapping in both directions.",
		`module cnt8_updown(
    input clk,
    input rst,
    input up,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (up) q <= q + 8'd1;
        else q <= q - 8'd1;
    end
endmodule
`))
	for _, mod := range []int{5, 10, 12} {
		name := fmt.Sprintf("mod%d", mod)
		add(seqProblem(name, 3, "rst",
			fmt.Sprintf("A modulo-%d counter with synchronous reset: the 4-bit count q steps 0, 1, ..., %d, 0, ... on rising clk edges; rst returns it to 0. Output tc (terminal count) is 1 during the cycle when q equals %d.", mod, mod-1, mod-1),
			fmt.Sprintf(`module %s(
    input clk,
    input rst,
    output reg [3:0] q,
    output tc
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (q == 4'd%d) q <= 4'd0;
        else q <= q + 4'd1;
    end
    assign tc = q == 4'd%d;
endmodule
`, name, mod-1, mod-1)))
	}
	add(seqProblem("cnt_en4", 2, "rst",
		"A 4-bit counter with enable: rst clears the count; otherwise the count increments on rising clk edges only while en is 1.",
		`module cnt_en4(
    input clk,
    input rst,
    input en,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (en) q <= q + 4'd1;
    end
endmodule
`))
	add(seqProblem("cnt_sat4", 3, "rst",
		"A 4-bit saturating counter: rst clears the count to 0; otherwise the count increments on each rising clk edge until it reaches 15, where it stays (no wrap-around).",
		`module cnt_sat4(
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (q != 4'd15) q <= q + 4'd1;
    end
endmodule
`))
	add(seqProblem("updown_sat4", 4, "rst",
		"A 4-bit saturating up/down counter: rst clears to 0; otherwise on rising clk edges the count increments when up is 1 (saturating at 15) and decrements when up is 0 (saturating at 0).",
		`module updown_sat4(
    input clk,
    input rst,
    input up,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (up && q != 4'd15) q <= q + 4'd1;
        else if (!up && q != 4'd0) q <= q - 4'd1;
    end
endmodule
`))
	add(seqProblem("bcd2", 4, "rst",
		"A two-digit BCD counter: the low digit ones counts 0-9 and rolls over into the high digit tens, which also counts 0-9; the counter counts 00 to 99 and wraps to 00. rst clears both digits.",
		`module bcd2(
    input clk,
    input rst,
    output reg [3:0] ones,
    output reg [3:0] tens
);
    always @(posedge clk) begin
        if (rst) begin
            ones <= 4'd0;
            tens <= 4'd0;
        end else if (ones == 4'd9) begin
            ones <= 4'd0;
            if (tens == 4'd9) tens <= 4'd0;
            else tens <= tens + 4'd1;
        end else begin
            ones <= ones + 4'd1;
        end
    end
endmodule
`))
	add(seqProblem("gray_cnt4", 4, "rst",
		"A 4-bit Gray-code counter: rst clears the state; otherwise on each rising clk edge the output g steps through the reflected Gray sequence 0000, 0001, 0011, 0010, 0110, ... (the Gray encoding of an internal binary counter).",
		`module gray_cnt4(
    input clk,
    input rst,
    output [3:0] g
);
    reg [3:0] bin;
    always @(posedge clk) begin
        if (rst) bin <= 4'd0;
        else bin <= bin + 4'd1;
    end
    assign g = bin ^ (bin >> 1);
endmodule
`))
	add(seqProblem("ring4", 3, "rst",
		"A 4-bit ring counter: rst loads the pattern 0001; afterwards the single 1 bit rotates one position toward the MSB on every rising clk edge, wrapping from bit 3 back to bit 0.",
		`module ring4(
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'b0001;
        else q <= {q[2:0], q[3]};
    end
endmodule
`))
	add(seqProblem("johnson4", 4, "rst",
		"A 4-bit Johnson (twisted-ring) counter: rst clears the register; afterwards on each rising clk edge the register shifts toward the MSB with the complement of the MSB entering at the LSB, producing the 8-state Johnson sequence.",
		`module johnson4(
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= {q[2:0], ~q[3]};
    end
endmodule
`))

	// --- shift registers (9) ---
	add(seqProblem("sipo4", 2, "rst",
		"A 4-bit serial-in parallel-out shift register: rst clears it; otherwise on each rising clk edge the register shifts toward the MSB and the serial input sin enters at bit 0. All four bits appear on output q.",
		`module sipo4(
    input clk,
    input rst,
    input sin,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= {q[2:0], sin};
    end
endmodule
`))
	add(seqProblem("sipo8", 2, "rst",
		"An 8-bit serial-in parallel-out shift register: rst clears it; otherwise on each rising clk edge the register shifts toward the MSB and the serial input sin enters at bit 0.",
		`module sipo8(
    input clk,
    input rst,
    input sin,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= {q[6:0], sin};
    end
endmodule
`))
	add(seqProblem("piso4", 3, "",
		"A 4-bit parallel-in serial-out shift register: when load is 1 on a rising clk edge the 4-bit input d is loaded; otherwise the register shifts toward the MSB with 0 entering at the LSB. The serial output sout is the MSB of the register, and q exposes the full register.",
		`module piso4(
    input clk,
    input load,
    input [3:0] d,
    output sout,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (load) q <= d;
        else q <= {q[2:0], 1'b0};
    end
    assign sout = q[3];
endmodule
`))
	add(seqProblem("shiftlr8", 4, "rst",
		"An 8-bit bidirectional shift register: rst clears it; otherwise when dir is 0 the register shifts left (toward the MSB) with sin entering at bit 0, and when dir is 1 it shifts right with sin entering at bit 7.",
		`module shiftlr8(
    input clk,
    input rst,
    input dir,
    input sin,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (dir) q <= {sin, q[7:1]};
        else q <= {q[6:0], sin};
    end
endmodule
`))
	add(seqProblem("shift_load8", 3, "",
		"An 8-bit shift register with parallel load: when load is 1 on a rising clk edge the register takes the 8-bit input d; otherwise it shifts left by one with 0 entering at the LSB.",
		`module shift_load8(
    input clk,
    input load,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (load) q <= d;
        else q <= {q[6:0], 1'b0};
    end
endmodule
`))
	add(seqProblem("rotreg8", 3, "",
		"An 8-bit rotating register: when load is 1 on a rising clk edge the register takes d; otherwise it rotates left by one position (the MSB wraps to the LSB).",
		`module rotreg8(
    input clk,
    input load,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (load) q <= d;
        else q <= {q[6:0], q[7]};
    end
endmodule
`))
	add(seqProblem("shift18", 5, "",
		"A 64-bit arithmetic shifter register (HDLBits problem shift18). On each rising clk edge, if load is 1 the register q loads the 64-bit input data; otherwise if ena is 1 it shifts by the amount selected by the 2-bit input amount: 0 shifts left by 1, 1 shifts left by 8, 2 shifts arithmetic right by 1, and 3 shifts arithmetic right by 8. Arithmetic right shifts replicate the sign bit q[63].",
		`module shift18(
    input clk,
    input load,
    input ena,
    input [1:0] amount,
    input [63:0] data,
    output reg [63:0] q
);
    always @(posedge clk) begin
        if (load) q <= data;
        else if (ena) begin
            case (amount)
                2'b00: q <= q << 1;
                2'b01: q <= q << 8;
                2'b10: q <= {q[63], q[63:1]};
                default: q <= {{8{q[63]}}, q[63:8]};
            endcase
        end
    end
endmodule
`))
	add(seqProblem("shift_arith8", 4, "",
		"An 8-bit arithmetic shifter register: on each rising clk edge, load loads d; otherwise the register shifts arithmetic right by one, replicating the sign bit q[7].",
		`module shift_arith8(
    input clk,
    input load,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (load) q <= d;
        else q <= {q[7], q[7:1]};
    end
endmodule
`))
	add(seqProblem("lfsr5", 4, "rst",
		"A 5-bit maximal-length Galois LFSR (taps at positions 5 and 3): rst loads the seed 00001; on each rising clk edge the register shifts right with the feedback bit q[0] XORed into the tapped positions, exactly as in HDLBits' Lfsr5.",
		`module lfsr5(
    input clk,
    input rst,
    output reg [4:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 5'b00001;
        else q <= {q[0], q[4], q[3] ^ q[0], q[2], q[1]};
    end
endmodule
`))

	// --- edge detectors (4) ---
	add(seqProblem("edge_rise", 3, "rst",
		"A rising-edge detector: output pulse is 1 for exactly one clock cycle after the input x changes from 0 to 1 (comparing the current sample with the previous one). rst clears the stored sample.",
		`module edge_rise(
    input clk,
    input rst,
    input x,
    output pulse
);
    reg prev;
    always @(posedge clk) begin
        if (rst) prev <= 1'b0;
        else prev <= x;
    end
    assign pulse = x & ~prev;
endmodule
`))
	add(seqProblem("edge_fall", 3, "rst",
		"A falling-edge detector: output pulse is 1 while the current sample of input x is 0 and the previous sample was 1. rst clears the stored sample.",
		`module edge_fall(
    input clk,
    input rst,
    input x,
    output pulse
);
    reg prev;
    always @(posedge clk) begin
        if (rst) prev <= 1'b0;
        else prev <= x;
    end
    assign pulse = ~x & prev;
endmodule
`))
	add(seqProblem("edge_both", 3, "rst",
		"A change detector: output pulse is 1 while the current sample of input x differs from the previous sample. rst clears the stored sample.",
		`module edge_both(
    input clk,
    input rst,
    input x,
    output pulse
);
    reg prev;
    always @(posedge clk) begin
        if (rst) prev <= 1'b0;
        else prev <= x;
    end
    assign pulse = x ^ prev;
endmodule
`))
	add(seqProblem("edge_cnt8", 4, "rst",
		"A rising-edge counter: the 8-bit output n counts how many 0-to-1 transitions of the input x have been sampled since rst was last asserted.",
		`module edge_cnt8(
    input clk,
    input rst,
    input x,
    output reg [7:0] n
);
    reg prev;
    always @(posedge clk) begin
        if (rst) begin
            prev <= 1'b0;
            n <= 8'd0;
        end else begin
            prev <= x;
            if (x & ~prev) n <= n + 8'd1;
        end
    end
endmodule
`))

	// --- toggles / dividers / pulses (5) ---
	add(seqProblem("toggle", 2, "rst",
		"A toggle flip-flop: rst clears q to 0; otherwise q inverts on each rising clk edge where t is 1 and holds where t is 0.",
		`module toggle(
    input clk,
    input rst,
    input t,
    output reg q
);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else if (t) q <= ~q;
    end
endmodule
`))
	add(seqProblem("clkdiv2", 2, "rst",
		"A divide-by-2 clock divider: the output q toggles on every rising edge of clk, producing a square wave at half the clock frequency. rst clears q to 0.",
		`module clkdiv2(
    input clk,
    input rst,
    output reg q
);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else q <= ~q;
    end
endmodule
`))
	add(seqProblem("clkdiv4", 3, "rst",
		"A divide-by-4 clock divider: an internal 2-bit counter increments on each rising clk edge, and the output q is its MSB, giving a square wave at one quarter of the clock frequency. rst clears the counter.",
		`module clkdiv4(
    input clk,
    input rst,
    output q
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 2'd0;
        else cnt <= cnt + 2'd1;
    end
    assign q = cnt[1];
endmodule
`))
	add(seqProblem("pulse4", 3, "rst",
		"A periodic pulse generator: an internal 2-bit counter cycles 0-3 on rising clk edges, and output pulse is 1 during the cycle where the counter equals 3, i.e. one pulse every four cycles. rst clears the counter.",
		`module pulse4(
    input clk,
    input rst,
    output pulse
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 2'd0;
        else cnt <= cnt + 2'd1;
    end
    assign pulse = cnt == 2'd3;
endmodule
`))
	add(seqProblem("oneshot", 4, "rst",
		"A one-shot pulse stretcher: when the input trig is sampled 1 and the stretcher is idle, the output q goes 1 for exactly three consecutive clock cycles, then returns to 0 and the circuit waits for the next trigger. Triggers during an active pulse are ignored. rst returns the circuit to idle.",
		`module oneshot(
    input clk,
    input rst,
    input trig,
    output q
);
    reg [1:0] left;
    always @(posedge clk) begin
        if (rst) left <= 2'd0;
        else if (left != 2'd0) left <= left - 2'd1;
        else if (trig) left <= 2'd3;
    end
    assign q = left != 2'd0;
endmodule
`))

	// --- sequence detectors (6) ---
	add(seqProblem("det101", 4, "rst",
		"A Moore-style overlapping sequence detector for the pattern 101 on the serial input x. The output z is 1 during the cycle in which the last three sampled bits (including the current sample) were 1, 0, 1. Overlap is allowed: in 10101 the pattern is detected twice. rst returns the detector to its initial state.",
		`module det101(
    input clk,
    input rst,
    input x,
    output z
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= x ? 2'd1 : 2'd0;
                2'd1: state <= x ? 2'd1 : 2'd2;
                2'd2: state <= x ? 2'd1 : 2'd0;
                default: state <= 2'd0;
            endcase
        end
    end
    assign z = (state == 2'd2) && x;
endmodule
`))
	add(seqProblem("det110", 4, "rst",
		"A Mealy-style overlapping sequence detector for the pattern 110 on the serial input x: output z is 1 during the cycle where the current and two previous samples form 1,1,0. rst returns the detector to its initial state.",
		`module det110(
    input clk,
    input rst,
    input x,
    output z
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= x ? 2'd1 : 2'd0;
                2'd1: state <= x ? 2'd2 : 2'd0;
                2'd2: state <= x ? 2'd2 : 2'd0;
                default: state <= 2'd0;
            endcase
        end
    end
    assign z = (state == 2'd2) && !x;
endmodule
`))
	add(seqProblem("det11", 3, "rst",
		"An overlapping detector for two consecutive 1 samples on input x: output z is 1 while the previous sample was 1 and the current sample is 1.",
		`module det11(
    input clk,
    input rst,
    input x,
    output z
);
    reg prev;
    always @(posedge clk) begin
        if (rst) prev <= 1'b0;
        else prev <= x;
    end
    assign z = prev & x;
endmodule
`))
	add(seqProblem("det1101", 5, "rst",
		"An overlapping Mealy sequence detector for the 4-bit pattern 1101 on serial input x: z is 1 during the cycle where the last four samples (including the current one) are 1,1,0,1. Overlapping occurrences are all reported. rst resets the detector.",
		`module det1101(
    input clk,
    input rst,
    input x,
    output z
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= x ? 2'd1 : 2'd0;
                2'd1: state <= x ? 2'd2 : 2'd0;
                2'd2: state <= x ? 2'd2 : 2'd3;
                default: state <= x ? 2'd1 : 2'd0;
            endcase
        end
    end
    assign z = (state == 2'd3) && x;
endmodule
`))
	add(seqProblem("det0110", 5, "rst",
		"An overlapping sequence detector for the pattern 0110 on serial input x: z is 1 during the cycle where the last four samples are 0,1,1,0. rst resets the detector.",
		`module det0110(
    input clk,
    input rst,
    input x,
    output z
);
    reg [2:0] hist;
    always @(posedge clk) begin
        if (rst) hist <= 3'b111;
        else hist <= {hist[1:0], x};
    end
    assign z = (hist == 3'b011) && !x;
endmodule
`))
	add(seqProblem("ser_parity", 3, "rst",
		"A serial parity tracker: output p is the running even parity (XOR) of all samples of input x since rst was last asserted, updated on each rising clk edge.",
		`module ser_parity(
    input clk,
    input rst,
    input x,
    output reg p
);
    always @(posedge clk) begin
        if (rst) p <= 1'b0;
        else p <= p ^ x;
    end
endmodule
`))

	// --- FSM controllers (5) ---
	add(seqProblem("traffic", 5, "rst",
		"A traffic-light controller FSM with three states cycling green (6 cycles), yellow (2 cycles), red (4 cycles). The 2-bit output light encodes 0 for green, 1 for yellow, 2 for red. rst puts the controller in green with its timer restarted.",
		`module traffic(
    input clk,
    input rst,
    output reg [1:0] light
);
    reg [2:0] timer;
    always @(posedge clk) begin
        if (rst) begin
            light <= 2'd0;
            timer <= 3'd0;
        end else begin
            case (light)
                2'd0: begin
                    if (timer == 3'd5) begin light <= 2'd1; timer <= 3'd0; end
                    else timer <= timer + 3'd1;
                end
                2'd1: begin
                    if (timer == 3'd1) begin light <= 2'd2; timer <= 3'd0; end
                    else timer <= timer + 3'd1;
                end
                default: begin
                    if (timer == 3'd3) begin light <= 2'd0; timer <= 3'd0; end
                    else timer <= timer + 3'd1;
                end
            endcase
        end
    end
endmodule
`))
	add(seqProblem("vending", 5, "rst",
		"A vending-machine FSM: coins worth 5 (nickel input) or 10 (dime input) are inserted one per cycle at most; when the accumulated credit reaches 15 or more, the output dispense is 1 for that cycle and the credit resets to 0 on the next edge (no change is given). The 4-bit output credit shows the current credit. rst clears the credit.",
		`module vending(
    input clk,
    input rst,
    input nickel,
    input dime,
    output reg [3:0] credit,
    output dispense
);
    wire [3:0] add;
    assign add = nickel ? 4'd5 : (dime ? 4'd10 : 4'd0);
    assign dispense = (credit + add) >= 4'd15;
    always @(posedge clk) begin
        if (rst) credit <= 4'd0;
        else if (dispense) credit <= 4'd0;
        else credit <= credit + add;
    end
endmodule
`))
	add(seqProblem("elevator2", 5, "rst",
		"A two-floor elevator controller: output floor is 0 or 1. When the elevator is at floor 0 and req1 is 1 it moves to floor 1 (one cycle later); at floor 1 with req0 asserted it moves to floor 0. Simultaneous requests keep it where it is. Output moving is 1 during a cycle in which the floor is about to change. rst puts the car at floor 0.",
		`module elevator2(
    input clk,
    input rst,
    input req0,
    input req1,
    output reg floor,
    output moving
);
    wire want;
    assign want = floor ? (req0 & ~req1) : (req1 & ~req0);
    assign moving = want;
    always @(posedge clk) begin
        if (rst) floor <= 1'b0;
        else if (want) floor <= ~floor;
    end
endmodule
`))
	add(seqProblem("lock3", 5, "rst",
		"A combination-lock FSM: the door unlocks (output unlock goes 1 and stays 1 until reset) after the 2-bit input code takes the values 3, 1, 2 on three consecutive clock edges. Any wrong entry returns the FSM to the start. rst relocks the door and restarts the sequence.",
		`module lock3(
    input clk,
    input rst,
    input [1:0] code,
    output unlock
);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= (code == 2'd3) ? 2'd1 : 2'd0;
                2'd1: state <= (code == 2'd1) ? 2'd2 : ((code == 2'd3) ? 2'd1 : 2'd0);
                2'd2: state <= (code == 2'd2) ? 2'd3 : ((code == 2'd3) ? 2'd1 : 2'd0);
                default: state <= 2'd3;
            endcase
        end
    end
    assign unlock = state == 2'd3;
endmodule
`))
	add(seqProblem("arbiter2", 5, "rst",
		"A two-requester round-robin arbiter: each cycle at most one grant bit of the 2-bit output gnt is 1, matching a request bit in req. When both request, the requester that was granted least recently wins (strict alternation). A grant is only asserted while its request is high. rst clears the priority state toward requester 0.",
		`module arbiter2(
    input clk,
    input rst,
    input [1:0] req,
    output [1:0] gnt
);
    reg last;
    wire [1:0] pick;
    assign pick = (req == 2'b11) ? (last ? 2'b01 : 2'b10) : (req & (~req + 2'd1));
    assign gnt = pick & req;
    always @(posedge clk) begin
        if (rst) last <= 1'b0;
        else if (gnt[0]) last <= 1'b0;
        else if (gnt[1]) last <= 1'b1;
    end
endmodule
`))

	// --- timers / debounce (4) ---
	add(seqProblem("debounce4", 4, "rst",
		"A debouncer: the output stable follows the input raw only after raw has held the same value for four consecutive clock samples; shorter glitches do not change stable. rst clears the internal counter and drives stable to 0.",
		`module debounce4(
    input clk,
    input rst,
    input raw,
    output reg stable
);
    reg [1:0] cnt;
    reg prev;
    always @(posedge clk) begin
        if (rst) begin
            cnt <= 2'd0;
            prev <= 1'b0;
            stable <= 1'b0;
        end else begin
            prev <= raw;
            if (raw != prev) cnt <= 2'd0;
            else if (cnt == 2'd3) stable <= raw;
            else cnt <= cnt + 2'd1;
        end
    end
endmodule
`))
	add(seqProblem("timer8", 4, "rst",
		"A programmable one-shot timer: when start is sampled 1 while the timer is idle, it loads the 8-bit input n and counts down one per cycle; output done is 1 exactly while the timer is idle (count zero). Starting with n = 0 leaves the timer idle. rst forces the timer idle.",
		`module timer8(
    input clk,
    input rst,
    input start,
    input [7:0] n,
    output done,
    output [7:0] remain
);
    reg [7:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 8'd0;
        else if (cnt != 8'd0) cnt <= cnt - 8'd1;
        else if (start) cnt <= n;
    end
    assign done = cnt == 8'd0;
    assign remain = cnt;
endmodule
`))
	add(seqProblem("watchdog4", 4, "rst",
		"A watchdog: an internal 2-bit counter increments each cycle and is cleared whenever the kick input is 1; the output bark goes 1 during any cycle where the counter has reached 3 (i.e. no kick for four cycles). rst clears the counter.",
		`module watchdog4(
    input clk,
    input rst,
    input kick,
    output bark
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 2'd0;
        else if (kick) cnt <= 2'd0;
        else if (cnt != 2'd3) cnt <= cnt + 2'd1;
    end
    assign bark = cnt == 2'd3;
endmodule
`))
	add(seqProblem("stopwatch8", 4, "rst",
		"A stopwatch: the toggle input startstop flips the running state on each cycle it is sampled 1; while running, the 8-bit count q increments each cycle. rst stops the watch and clears the count.",
		`module stopwatch8(
    input clk,
    input rst,
    input startstop,
    output reg [7:0] q,
    output running
);
    reg run;
    always @(posedge clk) begin
        if (rst) begin
            run <= 1'b0;
            q <= 8'd0;
        end else begin
            if (startstop) run <= ~run;
            if (run) q <= q + 8'd1;
        end
    end
    assign running = run;
endmodule
`))

	// --- accumulators / datapath (6) ---
	add(seqProblem("acc8", 3, "rst",
		"An 8-bit accumulator: on each rising clk edge the register adds the 8-bit input d to its current value (wrapping modulo 256); rst clears it to 0. The running sum appears on output sum.",
		`module acc8(
    input clk,
    input rst,
    input [7:0] d,
    output reg [7:0] sum
);
    always @(posedge clk) begin
        if (rst) sum <= 8'd0;
        else sum <= sum + d;
    end
endmodule
`))
	add(seqProblem("acc_en8", 3, "rst",
		"An 8-bit accumulator with enable: the running sum adds d only on edges where en is 1, holds otherwise; rst clears it.",
		`module acc_en8(
    input clk,
    input rst,
    input en,
    input [7:0] d,
    output reg [7:0] sum
);
    always @(posedge clk) begin
        if (rst) sum <= 8'd0;
        else if (en) sum <= sum + d;
    end
endmodule
`))
	add(seqProblem("runmax8", 4, "rst",
		"A running-maximum tracker: output m is the largest 8-bit value of input d sampled since rst was last asserted (unsigned comparison).",
		`module runmax8(
    input clk,
    input rst,
    input [7:0] d,
    output reg [7:0] m
);
    always @(posedge clk) begin
        if (rst) m <= 8'd0;
        else if (d > m) m <= d;
    end
endmodule
`))
	add(seqProblem("ser2comp", 5, "rst",
		"A bit-serial two's complementer (LSB first): starting after rst, each sampled input bit x is passed through unchanged on output y until after the first 1 bit has been seen, after which every bit is inverted — the classic serial two's-complement algorithm.",
		`module ser2comp(
    input clk,
    input rst,
    input x,
    output y
);
    reg seen;
    always @(posedge clk) begin
        if (rst) seen <= 1'b0;
        else if (x) seen <= 1'b1;
    end
    assign y = seen ? ~x : x;
endmodule
`))
	add(seqProblem("seradd", 5, "rst",
		"A bit-serial adder (LSB first): each cycle it adds the input bits a and b plus a stored carry, outputs the sum bit s, and keeps the new carry for the next cycle. rst clears the carry.",
		`module seradd(
    input clk,
    input rst,
    input a,
    input b,
    output s
);
    reg carry;
    assign s = a ^ b ^ carry;
    always @(posedge clk) begin
        if (rst) carry <= 1'b0;
        else carry <= (a & b) | (a & carry) | (b & carry);
    end
endmodule
`))
	add(seqProblem("event_cnt8", 3, "rst",
		"An event counter: the 8-bit output n counts the number of cycles in which the input x was sampled 1 since rst was last asserted.",
		`module event_cnt8(
    input clk,
    input rst,
    input x,
    output reg [7:0] n
);
    always @(posedge clk) begin
        if (rst) n <= 8'd0;
        else if (x) n <= n + 8'd1;
    end
endmodule
`))

	// --- delay lines / pipelines (4) ---
	add(seqProblem("delay2", 2, "rst",
		"A two-cycle delay line: the output y reproduces the 4-bit input d delayed by exactly two clock cycles. rst clears both pipeline stages.",
		`module delay2(
    input clk,
    input rst,
    input [3:0] d,
    output [3:0] y
);
    reg [3:0] s1, s2;
    always @(posedge clk) begin
        if (rst) begin
            s1 <= 4'd0;
            s2 <= 4'd0;
        end else begin
            s1 <= d;
            s2 <= s1;
        end
    end
    assign y = s2;
endmodule
`))
	add(seqProblem("delay4", 3, "rst",
		"A four-cycle delay line for a single-bit input: output y equals input d delayed by exactly four clock cycles, implemented as a 4-bit shift register. rst clears the line.",
		`module delay4(
    input clk,
    input rst,
    input d,
    output y
);
    reg [3:0] line;
    always @(posedge clk) begin
        if (rst) line <= 4'd0;
        else line <= {line[2:0], d};
    end
    assign y = line[3];
endmodule
`))
	add(seqProblem("pipe_add2", 4, "rst",
		"A two-stage pipelined adder: stage 1 registers the 4-bit inputs a and b; stage 2 registers their 5-bit sum, which appears on output s two cycles after the operands entered. rst clears all pipeline registers.",
		`module pipe_add2(
    input clk,
    input rst,
    input [3:0] a,
    input [3:0] b,
    output [4:0] s
);
    reg [3:0] ra, rb;
    reg [4:0] rs;
    always @(posedge clk) begin
        if (rst) begin
            ra <= 4'd0;
            rb <= 4'd0;
            rs <= 5'd0;
        end else begin
            ra <= a;
            rb <= b;
            rs <= ra + rb;
        end
    end
    assign s = rs;
endmodule
`))
	add(seqProblem("majority_win3", 4, "rst",
		"A sliding-window majority filter: output y is 1 while at least two of the last three samples of input x (including the current stored history) are 1. The window is the two stored previous samples plus the current input. rst clears the history.",
		`module majority_win3(
    input clk,
    input rst,
    input x,
    output y
);
    reg p1, p2;
    always @(posedge clk) begin
        if (rst) begin
            p1 <= 1'b0;
            p2 <= 1'b0;
        end else begin
            p2 <= p1;
            p1 <= x;
        end
    end
    assign y = (x & p1) | (x & p2) | (p1 & p2);
endmodule
`))

	// --- FIFO / PWM / patterns (4) ---
	add(seqProblem("fifo2", 5, "rst",
		"A depth-2 FIFO with 4-bit data. push writes din into the tail when not full; pop removes the head when not empty; simultaneous push and pop are allowed when non-empty. Outputs: dout is the head element, empty and full are status flags. rst empties the FIFO.",
		`module fifo2(
    input clk,
    input rst,
    input push,
    input pop,
    input [3:0] din,
    output [3:0] dout,
    output empty,
    output full
);
    reg [3:0] s0, s1;
    reg [1:0] cnt;
    wire doPush, doPop;
    assign empty = cnt == 2'd0;
    assign full = cnt == 2'd2;
    assign doPop = pop & ~empty;
    assign doPush = push & (~full | doPop);
    assign dout = s0;
    always @(posedge clk) begin
        if (rst) begin
            cnt <= 2'd0;
            s0 <= 4'd0;
            s1 <= 4'd0;
        end else begin
            if (doPop) begin
                s0 <= s1;
                if (doPush) begin
                    if (cnt == 2'd1) s0 <= din;
                    else s1 <= din;
                end else begin
                    cnt <= cnt - 2'd1;
                end
            end else if (doPush) begin
                if (cnt == 2'd0) s0 <= din;
                else s1 <= din;
                cnt <= cnt + 2'd1;
            end
        end
    end
endmodule
`))
	add(seqProblem("pwm3", 4, "rst",
		"A 3-bit PWM generator: an internal counter cycles 0-7; the output pwm is 1 while the counter is strictly less than the 3-bit duty input, giving duty/8 high time (duty 0 keeps the output low). rst clears the counter.",
		`module pwm3(
    input clk,
    input rst,
    input [2:0] duty,
    output pwm
);
    reg [2:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 3'd0;
        else cnt <= cnt + 3'd1;
    end
    assign pwm = cnt < duty;
endmodule
`))
	add(seqProblem("blink", 3, "rst",
		"A blink-pattern generator: a 3-bit counter advances each cycle and the output led is driven by the repeating 8-step pattern 1,1,0,0,1,0,1,0 indexed by the counter. rst restarts the pattern.",
		`module blink(
    input clk,
    input rst,
    output reg led
);
    reg [2:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 3'd0;
        else cnt <= cnt + 3'd1;
    end
    always @(*) begin
        case (cnt)
            3'd0: led = 1'b1;
            3'd1: led = 1'b1;
            3'd2: led = 1'b0;
            3'd3: led = 1'b0;
            3'd4: led = 1'b1;
            3'd5: led = 1'b0;
            3'd6: led = 1'b1;
            default: led = 1'b0;
        endcase
    end
endmodule
`))
	add(seqProblem("movsum4", 4, "rst",
		"A moving-sum filter: output s is the number of 1 samples among the last four samples of input x (a 3-bit value 0-4), computed from a 4-bit history shift register. rst clears the history.",
		`module movsum4(
    input clk,
    input rst,
    input x,
    output [2:0] s
);
    reg [3:0] hist;
    always @(posedge clk) begin
        if (rst) hist <= 4'd0;
        else hist <= {hist[2:0], x};
    end
    assign s = {2'b00, hist[0]} + {2'b00, hist[1]} + {2'b00, hist[2]} + {2'b00, hist[3]};
endmodule
`))

	// --- larger LFSRs / misc (2) ---
	add(seqProblem("lfsr8", 4, "rst",
		"An 8-bit Fibonacci LFSR with feedback taps at bits 7, 5, 4 and 3: rst loads the seed 00000001; each rising clk edge shifts left with the XOR of the tapped bits entering at bit 0.",
		`module lfsr8(
    input clk,
    input rst,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd1;
        else q <= {q[6:0], q[7] ^ q[5] ^ q[4] ^ q[3]};
    end
endmodule
`))
	add(seqProblem("lfsr16", 5, "rst",
		"A 16-bit Fibonacci LFSR with taps at bits 15, 13, 12 and 10: rst loads the seed 1; each rising clk edge shifts left with the XOR of the tapped bits entering at bit 0.",
		`module lfsr16(
    input clk,
    input rst,
    output reg [15:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 16'd1;
        else q <= {q[14:0], q[15] ^ q[13] ^ q[12] ^ q[10]};
    end
endmodule
`))

	add(seqProblem("runmin8", 4, "rst",
		"A running-minimum tracker: output m is the smallest 8-bit value of input d sampled since rst was last asserted (unsigned comparison); rst presets m to 255.",
		`module runmin8(
    input clk,
    input rst,
    input [7:0] d,
    output reg [7:0] m
);
    always @(posedge clk) begin
        if (rst) m <= 8'd255;
        else if (d < m) m <= d;
    end
endmodule
`))
	add(seqProblem("thermo4", 3, "rst",
		"A 4-bit thermometer-code filler: rst clears the register; on each rising clk edge a 1 shifts in at the LSB so the register steps 0000, 0001, 0011, 0111, 1111 and then stays full.",
		`module thermo4(
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else q <= {q[2:0], 1'b1};
    end
endmodule
`))
	add(seqProblem("cnt_tc8", 3, "rst",
		"An 8-bit counter with terminal-count output: the count q increments each cycle (wrapping) and the output tc is 1 during the cycle in which q equals 255. rst clears the count.",
		`module cnt_tc8(
    input clk,
    input rst,
    output reg [7:0] q,
    output tc
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
    assign tc = q == 8'd255;
endmodule
`))

	return ps
}
