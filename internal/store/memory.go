package store

import (
	"container/list"
	"sync"
)

// Memory is the in-process Store backend: a mutex-guarded LRU keyed
// by cell key. It is the right backend for one-shot CLI runs and
// tests — everything a disk store offers except persistence, at map
// speed and with bounded footprint.
type Memory struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
	stats   Stats
	closed  bool
}

type memEntry struct {
	key Key
	val Outcome
}

// NewMemory returns an LRU store holding at most maxEntries records
// (0 or negative: unbounded). A full Table-I grid is
// 3 methods x 5 reps x 156 problems = 2340 entries at well under a
// hundred bytes each, so even paper-scale experiments fit in a small
// cap.
func NewMemory(maxEntries int) *Memory {
	return &Memory{
		max:     maxEntries,
		entries: map[Key]*list.Element{},
		order:   list.New(),
	}
}

// Get implements Store.
func (m *Memory) Get(k Key) (Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k]
	if !ok || m.closed {
		m.stats.Misses++
		return Outcome{}, false
	}
	m.stats.Hits++
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put implements Store.
func (m *Memory) Put(k Key, o Outcome) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if el, ok := m.entries[k]; ok {
		m.order.MoveToFront(el)
		return nil
	}
	m.entries[k] = m.order.PushFront(&memEntry{key: k, val: o})
	m.stats.Puts++
	if m.max > 0 && m.order.Len() > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
		m.stats.Evictions++
	}
	return nil
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Backend = "memory"
	s.Entries = len(m.entries)
	return s
}

// Close implements Store. Further Gets miss and Puts error.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
