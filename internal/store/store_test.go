package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(i int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func testOutcome(i int) Outcome {
	return Outcome{
		Problem:             fmt.Sprintf("prob%d", i%4),
		Kind:                uint8(i % 2),
		Grade:               uint8(i % 4),
		ValidatorIntervened: i%2 == 0,
		CorrectorShaped:     i%3 == 0,
		FinalValidated:      i%5 == 0,
		Corrections:         uint32(i),
		Reboots:             uint32(i * 2),
		TokensIn:            uint64(i * 100),
		TokensOut:           uint64(i * 10),
	}
}

func TestOutcomeEncodingRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		o := testOutcome(i)
		back, err := decodeOutcome(encodeOutcome(o))
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if back != o {
			t.Fatalf("round trip %d: got %+v want %+v", i, back, o)
		}
	}
	if _, err := decodeOutcome([]byte{1}); err == nil {
		t.Error("short buffer decoded")
	}
	if _, err := decodeOutcome(append(encodeOutcome(testOutcome(1)), 0)); err == nil {
		t.Error("oversized buffer decoded")
	}
}

func TestMemoryLRU(t *testing.T) {
	m := NewMemory(3)
	for i := 0; i < 5; i++ {
		if err := m.Put(testKey(i), testOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 0 and 1 evicted, 2..4 present.
	for i := 0; i < 2; i++ {
		if _, ok := m.Get(testKey(i)); ok {
			t.Errorf("key %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		o, ok := m.Get(testKey(i))
		if !ok || o != testOutcome(i) {
			t.Errorf("key %d: ok=%v", i, ok)
		}
	}
	// Touching 2 makes 3 the eviction victim.
	m.Get(testKey(2))
	m.Put(testKey(9), testOutcome(9))
	if _, ok := m.Get(testKey(3)); ok {
		t.Error("LRU order ignored recency")
	}
	if _, ok := m.Get(testKey(2)); !ok {
		t.Error("recently used entry evicted")
	}
	s := m.Stats()
	if s.Backend != "memory" || s.Entries != 3 || s.Evictions != 3 {
		t.Errorf("stats = %+v", s)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(testKey(2)); ok {
		t.Error("Get after Close hit")
	}
	if err := m.Put(testKey(50), testOutcome(0)); err == nil {
		t.Error("Put after Close accepted")
	}
}

func TestDiskRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := d.Put(testKey(i), testOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate puts are no-ops: no growth.
	bytesBefore := d.Stats().Bytes
	for i := 0; i < n; i++ {
		if err := d.Put(testKey(i), testOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Bytes; got != bytesBefore {
		t.Errorf("duplicate puts grew the store: %d -> %d", bytesBefore, got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	s := d2.Stats()
	if s.Entries != n {
		t.Fatalf("reopened entries = %d, want %d", s.Entries, n)
	}
	if s.Shards != 4 { // problems hash to 4 shard files (i%4)
		t.Errorf("shards = %d, want 4", s.Shards)
	}
	if s.CorruptRecords != 0 || s.StaleShards != 0 {
		t.Errorf("clean store reported damage: %+v", s)
	}
	for i := 0; i < n; i++ {
		o, ok := d2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
		if o != testOutcome(i) {
			t.Fatalf("key %d value changed: %+v", i, o)
		}
	}
	if _, ok := d2.Get(testKey(99)); ok {
		t.Error("phantom hit")
	}
	s = d2.Stats()
	if s.Hits != n || s.Misses != 1 {
		t.Errorf("hit/miss = %d/%d, want %d/1", s.Hits, s.Misses, n)
	}
}

// oneShardDir builds a store whose records all land in a single shard
// and returns the dir and the shard path.
func oneShardDir(t *testing.T, n int) (string, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		o := testOutcome(i)
		o.Problem = "solo"
		if err := d.Put(testKey(i), o); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, "solo"+shardSuffix)
}

func TestDiskTruncatedTail(t *testing.T) {
	dir, shard := oneShardDir(t, 5)
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record as a crash mid-append would.
	if err := os.WriteFile(shard, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("truncated shard failed open: %v", err)
	}
	defer d.Close()
	s := d.Stats()
	if s.Entries != 4 {
		t.Errorf("entries = %d, want 4 (last record torn)", s.Entries)
	}
	if s.CorruptRecords != 1 {
		t.Errorf("corrupt = %d, want 1", s.CorruptRecords)
	}
	// The store stays writable after damage: appending resumes.
	o := testOutcome(9)
	o.Problem = "solo"
	if err := d.Put(testKey(9), o); err != nil {
		t.Fatal(err)
	}
}

func TestDiskBitFlipSkipsOnlyThatRecord(t *testing.T) {
	dir, shard := oneShardDir(t, 5)
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the SECOND record's payload: its CRC fails
	// but its length prefix is intact, so records 3..5 stay readable.
	n0 := int(binary.LittleEndian.Uint32(data[headerSize:]))
	second := headerSize + 4 + n0 + 4
	data[second+4+keySize+3] ^= 0xff
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("bit-flipped shard failed open: %v", err)
	}
	defer d.Close()
	s := d.Stats()
	if s.Entries != 4 {
		t.Errorf("entries = %d, want 4 (one record flipped)", s.Entries)
	}
	if s.CorruptRecords != 1 {
		t.Errorf("corrupt = %d, want 1", s.CorruptRecords)
	}
	if _, ok := d.Get(testKey(1)); ok {
		t.Error("corrupt record served")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := d.Get(testKey(i)); !ok {
			t.Errorf("healthy record %d lost to a neighbor's corruption", i)
		}
	}
}

func TestDiskStaleSchemaIgnored(t *testing.T) {
	dir, shard := oneShardDir(t, 3)
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the header version: a future (or ancient) layout must be
	// ignored wholesale, counted, and never parsed.
	binary.LittleEndian.PutUint16(data[4:6], shardVersion+1)
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("stale shard failed open: %v", err)
	}
	defer d.Close()
	s := d.Stats()
	if s.Entries != 0 || s.StaleShards != 1 || s.CorruptRecords != 0 {
		t.Errorf("stats = %+v, want 0 entries / 1 stale / 0 corrupt", s)
	}
	// Not-our-magic files are treated the same way.
	if err := os.WriteFile(filepath.Join(dir, "junk"+shardSuffix), []byte("not a shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if s := d2.Stats(); s.StaleShards != 2 {
		t.Errorf("stale = %d, want 2", s.StaleShards)
	}
}

// TestDiskLengthPrefixFlipNeverMisreads covers the other corruption
// axis: a bit flip in a record's length prefix destroys framing from
// that point on. The contract is weaker than for payload flips — the
// shard's tail may be lost (skipped and counted) — but nothing may be
// misread: every record served must be one that was actually written.
func TestDiskLengthPrefixFlipNeverMisreads(t *testing.T) {
	dir, shard := oneShardDir(t, 5)
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	n0 := int(binary.LittleEndian.Uint32(data[headerSize:]))
	second := headerSize + 4 + n0 + 4
	// Flip a low bit of record 2's length prefix: still a plausible
	// size, but the framing after record 1 is now garbage.
	data[second] ^= 0x04
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("prefix-flipped shard failed open: %v", err)
	}
	defer d.Close()
	s := d.Stats()
	if s.CorruptRecords == 0 {
		t.Error("prefix flip not counted as corruption")
	}
	// Whatever survived must be exactly records we wrote; record 1
	// precedes the damage and must survive.
	if _, ok := d.Get(testKey(0)); !ok {
		t.Error("record before the damaged prefix was lost")
	}
	hits := 0
	for i := 0; i < 5; i++ {
		o := testOutcome(i)
		o.Problem = "solo"
		if got, ok := d.Get(testKey(i)); ok {
			hits++
			if got != o {
				t.Fatalf("record %d misread: %+v", i, got)
			}
		}
	}
	if s.Entries != hits {
		t.Errorf("index holds %d entries but only %d verified", s.Entries, hits)
	}
}

// TestDiskPutRotatesStaleShard guards the stale-header append path: a
// Put whose shard already exists with an unknown header version (or a
// foreign/torn header) must not append behind it — those records
// would be skipped wholesale on the next open. The stale file is
// parked aside, a fresh shard is started, and the new record survives
// reopen; gc sweeps the parked file.
func TestDiskPutRotatesStaleShard(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "solo"+shardSuffix)
	junk := []byte("JUNKHDR!")
	if err := os.WriteFile(shard, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.StaleShards != 1 {
		t.Fatalf("stale = %d, want 1", s.StaleShards)
	}
	o := testOutcome(1)
	o.Problem = "solo"
	if err := d.Put(testKey(1), o); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Get(testKey(1)); !ok || got != o {
		t.Fatalf("record appended behind a stale header was lost on reopen (ok=%v)", ok)
	}
	if s := d2.Stats(); s.StaleShards != 0 || s.CorruptRecords != 0 {
		t.Errorf("reopened stats = %+v, want clean", s)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// The foreign bytes were parked, not destroyed — and gc sweeps them.
	parked, err := os.ReadFile(shard + ".stale0")
	if err != nil || string(parked) != string(junk) {
		t.Fatalf("stale shard not parked intact: %v", err)
	}
	res, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleShardsRemoved != 1 {
		t.Errorf("gc removed %d stale files, want 1", res.StaleShardsRemoved)
	}
	if _, err := os.Stat(shard + ".stale0"); !os.IsNotExist(err) {
		t.Error("parked stale file survived gc")
	}
}

func TestDiskConcurrentAccess(t *testing.T) {
	d, err := Open(t.TempDir(), NoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Writers overlap on keys, as concurrent jobs running
				// the same spec do.
				if err := d.Put(testKey(i), testOutcome(i)); err != nil {
					t.Error(err)
					return
				}
				d.Get(testKey((i + g) % 50))
			}
		}(g)
	}
	wg.Wait()
	if s := d.Stats(); s.Entries != 50 {
		t.Errorf("entries = %d, want 50", s.Entries)
	}
}

func TestInspectAndCompact(t *testing.T) {
	dir, shard := oneShardDir(t, 6)
	// Manufacture damage: append a duplicate record by hand plus a torn
	// tail, and add a stale shard alongside.
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := testOutcome(7)
	o.Problem = "other"
	if err := d.Put(testKey(7), o); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	n0 := int(binary.LittleEndian.Uint32(data[headerSize:]))
	first := data[headerSize : headerSize+4+n0+4]
	data = append(data, first...)   // duplicate of record 1
	data = append(data, 0x01, 0x02) // torn tail
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "old"+shardSuffix)
	staleData := shardHeader()
	binary.LittleEndian.PutUint16(staleData[4:6], shardVersion+9)
	if err := os.WriteFile(stale, staleData, 0o644); err != nil {
		t.Fatal(err)
	}

	reps, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("inspect found %d shards, want 3", len(reps))
	}
	var soloRep *ShardReport
	staleCount := 0
	for i := range reps {
		if reps[i].Problem == "solo" {
			soloRep = &reps[i]
		}
		if reps[i].Stale {
			staleCount++
		}
	}
	if soloRep == nil {
		t.Fatal("solo shard missing from inspect")
	}
	if soloRep.Records != 7 || soloRep.Entries != 6 || soloRep.Corrupt != 1 {
		t.Errorf("solo report = %+v, want 7 records / 6 entries / 1 corrupt", *soloRep)
	}
	if staleCount != 1 {
		t.Errorf("stale shards = %d, want 1", staleCount)
	}

	// Orphaned compactor temp files (a gc killed before its rename)
	// are swept too.
	orphan := filepath.Join(dir, "solo"+shardSuffix+".tmp12345")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleShardsRemoved != 2 || res.DroppedDuplicates != 1 || res.DroppedCorrupt != 1 {
		t.Errorf("compact = %+v", res)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned compactor temp file survived gc")
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Errorf("compact reclaimed nothing: %d -> %d", res.BytesBefore, res.BytesAfter)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale shard survived gc")
	}
	// Every live entry survives compaction, damage counters reset.
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	s := d2.Stats()
	if s.Entries != 7 || s.CorruptRecords != 0 || s.StaleShards != 0 {
		t.Errorf("post-compact stats = %+v, want 7 clean entries", s)
	}
	for _, i := range []int{0, 1, 2, 3, 4, 5, 7} {
		if _, ok := d2.Get(testKey(i)); !ok {
			t.Errorf("entry %d lost in compaction", i)
		}
	}
}
