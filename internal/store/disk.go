package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk file format. A store directory holds one shard file per
// problem (append-only, *.shard). Each shard starts with a fixed
// header and is followed by length-prefixed, CRC-protected records:
//
//	header: "CBST" magic | u16 shard version | u16 reserved
//	record: u32 n | n payload bytes | u32 crc32(payload)
//	payload: 32-byte cell key | encoded Outcome (store.go)
//
// Records are fsync'd as written, so a crash can tear at most the
// record being appended; the torn tail is skipped (and counted) on
// the next open. A shard whose header version is not shardVersion is
// ignored wholesale — bumping the version retires old layouts without
// risking misreads — and `storectl gc` deletes such shards.
const (
	shardMagic   = "CBST"
	shardVersion = 1
	shardSuffix  = ".shard"
	headerSize   = 8
	// maxRecordSize bounds a record's payload; anything larger is a
	// corrupt length prefix, not data.
	maxRecordSize = keySize + 2 + maxProblemName + 64
	keySize       = 32
)

var errClosed = errors.New("store: closed")

// Disk is the persistent Store backend: a directory of per-problem
// shard files with the full index held in memory (bitcask-style), so
// Get never touches the disk and Put is one append. Open loads every
// shard up front; corrupt records and stale-version shards are
// skipped and counted, never fatal.
type Disk struct {
	dir  string
	sync bool

	mu     sync.Mutex
	index  map[Key]Outcome
	files  map[string]*os.File // shard basename -> append handle
	dead   map[string]bool     // shards retired after an unrecoverable append error
	stats  Stats
	closed bool
}

// DiskOption configures Open.
type DiskOption func(*Disk)

// NoSync disables the per-record fsync. Only for tests and
// benchmarks: a crash may lose recently appended records (the shards
// still load — lost records are just re-simulated).
func NoSync() DiskOption { return func(d *Disk) { d.sync = false } }

// Open opens (creating if needed) a disk store rooted at dir and
// loads every shard into the in-memory index.
func Open(dir string, opts ...DiskOption) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:   dir,
		sync:  true,
		index: map[Key]Outcome{},
		files: map[string]*os.File{},
	}
	for _, o := range opts {
		o(d)
	}
	names, err := shardNames(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		recs, rep, err := loadShard(path)
		if err != nil {
			return nil, err
		}
		if rep.Stale {
			d.stats.StaleShards++
			continue
		}
		d.stats.Shards++
		d.stats.Bytes += info.Size()
		d.stats.CorruptRecords += rep.Corrupt
		for _, r := range recs {
			d.index[r.key] = r.val
		}
	}
	return d, nil
}

// Dir returns the store's backing directory.
func (d *Disk) Dir() string { return d.dir }

// Get implements Store.
func (d *Disk) Get(k Key) (Outcome, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.index[k]
	if !ok || d.closed {
		d.stats.Misses++
		return Outcome{}, false
	}
	d.stats.Hits++
	return o, true
}

// Put implements Store: one record appended (and fsync'd) to the
// problem's shard. Re-putting a known key is a no-op, so concurrent
// jobs replaying the same grid never grow the shards.
func (d *Disk) Put(k Key, o Outcome) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		d.stats.PutErrors++
		return errClosed
	}
	if _, ok := d.index[k]; ok {
		return nil
	}
	if err := d.appendLocked(k, o); err != nil {
		d.stats.PutErrors++
		return fmt.Errorf("store: %w", err)
	}
	d.index[k] = o
	d.stats.Puts++
	return nil
}

func (d *Disk) appendLocked(k Key, o Outcome) error {
	name := shardFile(o.Problem)
	if d.dead[name] {
		return fmt.Errorf("shard %s retired after a failed append", name)
	}
	f, ok := d.files[name]
	if !ok {
		var err error
		f, err = d.openShardLocked(name)
		if err != nil {
			return err
		}
		d.files[name] = f
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	end := info.Size()
	rec := encodeRecord(k, o)
	if _, err := f.Write(rec); err != nil {
		// A partial write (ENOSPC, I/O error) leaves torn bytes that
		// would shadow every later append on the next load. Roll the
		// shard back to its pre-append length; if even that fails,
		// retire the handle so no acknowledged record can ever land
		// after the tear (the tail is then skipped-and-counted on the
		// next open, costing only this never-acknowledged cell).
		d.retireOnError(name, f, end)
		return err
	}
	if d.sync {
		if err := f.Sync(); err != nil {
			d.retireOnError(name, f, end)
			return err
		}
	}
	d.stats.Bytes += int64(len(rec))
	return nil
}

// retireOnError restores a shard to its pre-append state after a
// failed write/sync, or failing that, stops appending to it for the
// rest of the process. Callers hold d.mu.
func (d *Disk) retireOnError(name string, f *os.File, end int64) {
	if err := f.Truncate(end); err == nil {
		return
	}
	f.Close()
	delete(d.files, name)
	if d.dead == nil {
		d.dead = map[string]bool{}
	}
	d.dead[name] = true
}

// openShardLocked opens a shard for appending, writing (and syncing)
// the versioned header when the file is new. A non-empty file whose
// header is stale or foreign is rotated aside first: appending behind
// a header the loader skips would make every new record silently
// unreachable on the next open.
func (d *Disk) openShardLocked(name string) (*os.File, error) {
	path := filepath.Join(d.dir, name)
	if err := d.rotateStaleLocked(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.Write(shardHeader()); err != nil {
			f.Close()
			return nil, err
		}
		if d.sync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
			// The new file's directory entry must be durable too, or a
			// power loss could drop the whole fsync'd shard.
			if err := syncDir(d.dir); err != nil {
				f.Close()
				return nil, err
			}
		}
		d.stats.Shards++
		d.stats.Bytes += headerSize
	}
	return f, nil
}

// syncDir fsyncs a directory, making renames and newly created files
// inside it durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// rotateStaleLocked moves an existing shard file aside when its
// header is not the current layout (stale schema version, foreign or
// torn header). The file keeps its bytes under "<name>.staleN" —
// outside the *.shard pattern, so loads never see it and `storectl
// gc` deletes it — and the caller starts a fresh, current-version
// shard in its place.
func (d *Disk) rotateStaleLocked(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	n, _ := io.ReadFull(f, hdr)
	f.Close()
	if n == 0 {
		return nil // empty file: the caller writes a fresh header
	}
	if n == headerSize && string(hdr[:4]) == shardMagic &&
		binary.LittleEndian.Uint16(hdr[4:6]) == shardVersion {
		return nil
	}
	for i := 0; ; i++ {
		alt := fmt.Sprintf("%s.stale%d", path, i)
		if _, err := os.Stat(alt); os.IsNotExist(err) {
			// Already counted as stale at Open; the rename just parks it.
			return os.Rename(path, alt)
		} else if err != nil {
			return err
		}
	}
}

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Backend = "disk"
	s.Entries = len(d.index)
	s.Dir = d.dir
	return s
}

// Close implements Store: flushes and closes every shard handle.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	// Sorted iteration, so which error surfaces as "first" on a
	// multi-shard failure does not depend on map order.
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := d.files[name]
		if d.sync {
			if err := f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.files = map[string]*os.File{}
	return first
}

// encodeRecord frames one cell as its on-disk record — the single
// definition of the length-prefix/payload/CRC layout, shared by the
// append path and the compactor so the two can never skew. The CRC
// covers the length prefix as well as the payload, so a record is
// only ever accepted with an intact boundary — a corrupted prefix can
// cost the rest of the shard's tail (skipped and counted, then
// re-simulated) but can never cause a misread.
func encodeRecord(k Key, o Outcome) []byte {
	payload := make([]byte, 0, keySize+64)
	payload = append(payload, k[:]...)
	payload = append(payload, encodeOutcome(o)...)
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec
}

// ---- shard reading (shared by Open, Inspect and Compact) ----

type record struct {
	key Key
	val Outcome
}

// ShardReport describes one shard file as seen by Inspect (and by
// Open, which aggregates the same numbers into Stats).
type ShardReport struct {
	File string `json:"file"`
	// Problem is the shard's problem name as recovered from its
	// records ("" when empty or stale).
	Problem string `json:"problem,omitempty"`
	Version uint16 `json:"version"`
	// Stale marks a shard whose header version is not the current
	// shardVersion; its contents are never read.
	Stale bool `json:"stale,omitempty"`
	// Entries counts distinct keys, Records total decodable records
	// (Records > Entries means duplicate appends, reclaimable by gc).
	Entries int `json:"entries"`
	Records int `json:"records"`
	// Corrupt counts skipped records: CRC mismatches and the torn
	// tail a crash can leave.
	Corrupt int   `json:"corrupt,omitempty"`
	Bytes   int64 `json:"bytes"`
}

// loadShard reads one shard file. It returns the decodable records in
// append order (callers dedup last-wins) and a report of what was
// skipped; only I/O and header-level problems are errors.
func loadShard(path string) ([]record, ShardReport, error) {
	rep := ShardReport{File: filepath.Base(path)}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, rep, fmt.Errorf("store: %w", err)
	}
	rep.Bytes = int64(len(data))
	if len(data) < headerSize || string(data[:4]) != shardMagic {
		// Not a shard we wrote (or a header torn mid-create): treat as
		// stale so it is ignored, counted, and gc-able.
		rep.Stale = true
		return nil, rep, nil
	}
	rep.Version = binary.LittleEndian.Uint16(data[4:6])
	if rep.Version != shardVersion {
		rep.Stale = true
		return nil, rep, nil
	}
	var recs []record
	buf := data[headerSize:]
	for len(buf) > 0 {
		if len(buf) < 4 {
			rep.Corrupt++ // torn length prefix
			break
		}
		n := int(binary.LittleEndian.Uint32(buf))
		if n < keySize || n > maxRecordSize {
			// The length itself is garbage: record boundaries are lost
			// from here on, count the remainder as one corrupt region.
			rep.Corrupt++
			break
		}
		if len(buf) < 4+n+4 {
			rep.Corrupt++ // torn record (crash mid-append)
			break
		}
		payload := buf[4 : 4+n]
		sum := binary.LittleEndian.Uint32(buf[4+n:])
		framed := buf[:4+n]
		buf = buf[4+n+4:]
		if crc32.ChecksumIEEE(framed) != sum {
			// Bit rot somewhere in the record. If the flip was in the
			// payload the boundary is intact and later records read
			// fine; if it was in the length prefix the scan continues
			// at a garbage offset and ends at the next framing check —
			// tail skipped and counted, never misread (acceptance
			// requires the CRC over prefix+payload to hold).
			rep.Corrupt++
			continue
		}
		var r record
		copy(r.key[:], payload[:keySize])
		o, err := decodeOutcome(payload[keySize:])
		if err != nil {
			rep.Corrupt++
			continue
		}
		r.val = o
		recs = append(recs, r)
		rep.Records++
		if rep.Problem == "" {
			rep.Problem = o.Problem
		}
	}
	seen := map[Key]bool{}
	for _, r := range recs {
		if !seen[r.key] {
			seen[r.key] = true
		}
	}
	rep.Entries = len(seen)
	return recs, rep, nil
}

func shardHeader() []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, shardMagic...)
	h = binary.LittleEndian.AppendUint16(h, shardVersion)
	h = binary.LittleEndian.AppendUint16(h, 0)
	return h
}

func shardNames(dir string) ([]string, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range dirents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), shardSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// shardFile maps a problem name to its shard file name. Dataset names
// are short identifiers already; anything unexpected is replaced so
// the name stays a safe path component (collisions are harmless —
// records are keyed by hash, a shared shard just mixes problems).
func shardFile(problem string) string {
	var b strings.Builder
	for _, r := range problem {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		b.WriteString("_unnamed")
	}
	return b.String() + shardSuffix
}

// ---- storectl operations ----

// Inspect reads every shard in dir without opening a live store and
// reports per-shard health: entries, duplicate records, corrupt
// regions, stale versions. It never modifies anything.
func Inspect(dir string) ([]ShardReport, error) {
	names, err := shardNames(dir)
	if err != nil {
		return nil, err
	}
	var out []ShardReport
	for _, name := range names {
		_, rep, err := loadShard(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// CompactResult summarizes a Compact run.
type CompactResult struct {
	Shards             int   `json:"shards"`
	StaleShardsRemoved int   `json:"stale_shards_removed"`
	DroppedCorrupt     int   `json:"dropped_corrupt"`
	DroppedDuplicates  int   `json:"dropped_duplicates"`
	BytesBefore        int64 `json:"bytes_before"`
	BytesAfter         int64 `json:"bytes_after"`
}

// Compact garbage-collects a store directory: every healthy shard is
// rewritten with exactly one record per key (dropping duplicate
// appends and corrupt regions), and stale-version shards are deleted.
// The rewrite goes through a temp file and an atomic rename, so a
// crash mid-compact leaves either the old or the new shard, never a
// mix. The directory must not have a live writer during compaction.
func Compact(dir string) (CompactResult, error) {
	var res CompactResult
	names, err := shardNames(dir)
	if err != nil {
		return res, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		recs, rep, err := loadShard(path)
		if err != nil {
			return res, err
		}
		res.BytesBefore += rep.Bytes
		if rep.Stale {
			if err := os.Remove(path); err != nil {
				return res, fmt.Errorf("store: %w", err)
			}
			res.StaleShardsRemoved++
			continue
		}
		res.Shards++
		res.DroppedCorrupt += rep.Corrupt
		// Last write wins, preserving first-seen order for a stable
		// rewritten layout.
		order := make([]Key, 0, len(recs))
		live := map[Key]Outcome{}
		for _, r := range recs {
			if _, ok := live[r.key]; !ok {
				order = append(order, r.key)
			} else {
				res.DroppedDuplicates++
			}
			live[r.key] = r.val
		}
		n, err := rewriteShard(path, order, live)
		if err != nil {
			return res, err
		}
		res.BytesAfter += n
	}
	// Also sweep debris that only this collector can reclaim: shards a
	// live writer parked aside on finding a stale header
	// ("<name>.shard.staleN") and temp files a previous Compact left
	// behind when it was killed before its rename
	// ("<name>.shard.tmpNNN"). Both live outside the *.shard pattern,
	// so loads never see them.
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("store: %w", err)
	}
	for _, e := range dirents {
		name := e.Name()
		if e.IsDir() ||
			!(strings.Contains(name, shardSuffix+".stale") || strings.Contains(name, shardSuffix+".tmp")) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return res, fmt.Errorf("store: %w", err)
		}
		res.StaleShardsRemoved++
	}
	return res, nil
}

func rewriteShard(path string, order []Key, live map[Key]Outcome) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	w := func(b []byte) error {
		_, err := tmp.Write(b)
		return err
	}
	if err := w(shardHeader()); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	for _, k := range order {
		if err := w(encodeRecord(k, live[k])); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return size, nil
}
