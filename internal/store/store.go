// Package store is the content-addressed evaluation-cell store. An
// experiment cell — one (problem, method, rep) coordinate of the
// harness grid — is a pure function of its cell key (see
// harness.CellKey: derived seed, budgets, LLM and criterion names,
// dataset fingerprint, schema version), so its outcome can be cached
// and replayed instead of re-simulated. The store is what turns a
// repeated or resumed experiment from O(simulation) into O(lookup):
// a warm rerun of Table I replays every cell, and a job killed
// mid-experiment resumes with only the missing cells simulated.
//
// Two backends implement the one Store interface:
//
//   - Memory: a bounded LRU for a single process (NewMemory);
//   - Disk: a persistent directory of append-safe shard files, one
//     per problem, that survives crashes and restarts (Open).
//
// Both are safe for concurrent use by any number of jobs. Records on
// disk are CRC-protected and fsync'd; corrupt or torn records are
// skipped and counted rather than failing the open, and shards whose
// header carries an unknown schema version are ignored wholesale so
// stale layouts are never misread.
package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Key is the content address of one evaluation cell: a SHA-256 over
// every input the cell's outcome depends on. Equal keys mean "the
// simulation would produce byte-identical outcomes"; any input change
// (dataset edit, budget change, schema bump) changes the key, so
// stale values are unreachable rather than invalidated.
type Key [32]byte

// String returns the key in hex, the form storectl prints.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Outcome is the stored result of one evaluation cell. It mirrors
// harness.TaskOutcome field for field but stays free of internal
// package dependencies so the persistence layer has a frozen,
// self-contained schema (guarded by recordVersion on disk). The JSON
// tags are the fleet wire form (internal/exec result frames); like
// the binary layout below, renaming them is a protocol change.
type Outcome struct {
	// Problem is the dataset problem name; it selects the on-disk
	// shard and double-checks a looked-up record against the cell that
	// requested it.
	Problem string `json:"problem"`
	Kind    uint8  `json:"kind"`  // dataset.Kind
	Grade   uint8  `json:"grade"` // autoeval.Grade

	// CorrectBench-only trace bits.
	ValidatorIntervened bool   `json:"validator_intervened,omitempty"`
	CorrectorShaped     bool   `json:"corrector_shaped,omitempty"`
	FinalValidated      bool   `json:"final_validated,omitempty"`
	Corrections         uint32 `json:"corrections,omitempty"`
	Reboots             uint32 `json:"reboots,omitempty"`

	TokensIn  uint64 `json:"tokens_in,omitempty"`
	TokensOut uint64 `json:"tokens_out,omitempty"`
}

// Stats is a point-in-time view of a store's counters. Hits and
// Misses count Get outcomes over the store's lifetime (all jobs
// sharing it); CorruptRecords and StaleShards count what the disk
// backend skipped while loading.
type Stats struct {
	// Backend is "memory" or "disk".
	Backend string `json:"backend"`
	// Entries is the number of distinct cell keys currently held.
	Entries int `json:"entries"`
	// Hits and Misses count Get calls that did / did not find a record.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts records accepted; PutErrors counts failed appends
	// (disk faults) — a put error never fails the experiment, the cell
	// simply stays uncached.
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors,omitempty"`
	// Evictions counts LRU drops (memory backend only).
	Evictions uint64 `json:"evictions,omitempty"`
	// CorruptRecords counts records skipped while loading shards
	// (truncated tails, CRC mismatches); StaleShards counts whole
	// shard files ignored for carrying an unknown schema version.
	CorruptRecords int `json:"corrupt_records,omitempty"`
	StaleShards    int `json:"stale_shards,omitempty"`
	// Shards and Bytes describe the on-disk footprint (disk only).
	Shards int   `json:"shards,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
	// Dir is the backing directory (disk only).
	Dir string `json:"dir,omitempty"`
}

// Store is the one interface both backends implement. All methods are
// safe for concurrent use; a Store may be shared by any number of
// jobs at once.
type Store interface {
	// Get looks a cell up by key. A miss is (zero, false).
	Get(Key) (Outcome, bool)
	// Put records a cell outcome. Re-putting an existing key is a
	// cheap no-op (cells are deterministic, so the value cannot
	// differ). Errors are disk faults; callers may treat them as
	// non-fatal — the store counts them in Stats.
	Put(Key, Outcome) error
	// Stats returns the store's live counters.
	Stats() Stats
	// Close flushes and releases the store. Get/Put after Close fail
	// softly (miss / error).
	Close() error
}

// ---- record encoding ----
//
// The binary outcome encoding is shared by the disk shards. Layout
// (little-endian):
//
//	u16 len(problem) | problem bytes | kind u8 | grade u8 | flags u8 |
//	u32 corrections | u32 reboots | u64 tokens_in | u64 tokens_out
//
// flags packs the three trace booleans (bit0 validator, bit1
// corrector, bit2 validated). Any layout change must bump
// recordVersion so old shards are ignored, not misread.

const (
	flagValidator = 1 << iota
	flagCorrector
	flagValidated
)

// maxProblemName bounds the encoded problem-name length; dataset
// names are short identifiers, so anything larger is corruption.
const maxProblemName = 1 << 10

func encodeOutcome(o Outcome) []byte {
	buf := make([]byte, 0, 2+len(o.Problem)+3+4+4+8+8)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.Problem)))
	buf = append(buf, o.Problem...)
	var flags uint8
	if o.ValidatorIntervened {
		flags |= flagValidator
	}
	if o.CorrectorShaped {
		flags |= flagCorrector
	}
	if o.FinalValidated {
		flags |= flagValidated
	}
	buf = append(buf, o.Kind, o.Grade, flags)
	buf = binary.LittleEndian.AppendUint32(buf, o.Corrections)
	buf = binary.LittleEndian.AppendUint32(buf, o.Reboots)
	buf = binary.LittleEndian.AppendUint64(buf, o.TokensIn)
	buf = binary.LittleEndian.AppendUint64(buf, o.TokensOut)
	return buf
}

func decodeOutcome(buf []byte) (Outcome, error) {
	var o Outcome
	if len(buf) < 2 {
		return o, fmt.Errorf("store: outcome record too short (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if n > maxProblemName || len(buf) != n+3+4+4+8+8 {
		return o, fmt.Errorf("store: outcome record malformed (name %d bytes, %d remaining)", n, len(buf))
	}
	o.Problem = string(buf[:n])
	buf = buf[n:]
	o.Kind, o.Grade = buf[0], buf[1]
	flags := buf[2]
	o.ValidatorIntervened = flags&flagValidator != 0
	o.CorrectorShaped = flags&flagCorrector != 0
	o.FinalValidated = flags&flagValidated != 0
	buf = buf[3:]
	o.Corrections = binary.LittleEndian.Uint32(buf)
	o.Reboots = binary.LittleEndian.Uint32(buf[4:])
	o.TokensIn = binary.LittleEndian.Uint64(buf[8:])
	o.TokensOut = binary.LittleEndian.Uint64(buf[16:])
	return o, nil
}
