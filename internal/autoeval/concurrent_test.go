package autoeval

import (
	"sync"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/testbench"
)

// TestConcurrentEvaluate hammers one shared Evaluator from many
// goroutines — racing on the same problems' fixtures as well as
// across different problems — and checks that every goroutine sees
// the grades a lone sequential evaluator computes. Run under -race
// (CI does) this also proves the per-fixture build locking is sound.
func TestConcurrentEvaluate(t *testing.T) {
	names := []string{"adder8", "cnt8", "det101", "mux4_w4"}

	// Sequential reference grades from an identically seeded evaluator.
	ref := NewEvaluator(9)
	want := map[string]Grade{}
	for _, name := range names {
		p := dataset.ByName(name)
		tb, err := ref.GoldenTestbench(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ref.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = g
	}

	e := NewEvaluator(9)
	const goroutinesPerProblem = 8
	var wg sync.WaitGroup
	errc := make(chan error, len(names)*goroutinesPerProblem)
	for _, name := range names {
		for g := 0; g < goroutinesPerProblem; g++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				p := dataset.ByName(name)
				// GoldenTestbench and Evaluate both race into the
				// same cold fixture; the build must happen once and
				// everyone must see the finished fixture.
				tb, err := e.GoldenTestbench(p)
				if err != nil {
					errc <- err
					return
				}
				grade, err := e.Evaluate(tb)
				if err != nil {
					errc <- err
					return
				}
				if grade != want[name] {
					t.Errorf("%s: concurrent grade %s, sequential %s", name, grade, want[name])
				}
			}(name)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentEvaluateDistinctTestbenches evaluates worker-local
// testbenches (the harness's actual access pattern) concurrently
// against a shared evaluator.
func TestConcurrentEvaluateDistinctTestbenches(t *testing.T) {
	e := NewEvaluator(11)
	p := dataset.ByName("adder8")
	golden, err := e.GoldenTestbench(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(broken bool) {
			defer wg.Done()
			// Each goroutine owns its testbench value, like each
			// harness cell owns the testbench it generated.
			tb := &testbench.Testbench{
				Problem:       p,
				Scenarios:     golden.Scenarios,
				CheckerSource: golden.CheckerSource,
				CheckerTop:    golden.CheckerTop,
				CheckerSticky: -1,
				DriverSource:  golden.DriverSource,
			}
			want := GradeEval2
			if broken {
				tb.DriverSource = "module ("
				want = GradeFailed
			}
			g, err := e.Evaluate(tb)
			if err != nil {
				t.Errorf("evaluate: %v", err)
				return
			}
			if g != want {
				t.Errorf("grade = %s, want %s", g, want)
			}
		}(i%2 == 1)
	}
	wg.Wait()
}
