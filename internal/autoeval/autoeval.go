// Package autoeval reproduces AutoEval, the evaluation methodology of
// AutoBench/CorrectBench (Table II of the paper):
//
//	Failed  the testbench has syntax errors
//	Eval0   the testbench parses (no syntax error)
//	Eval1   Eval0, and the golden RTL passes the testbench
//	Eval2   Eval1, and on 10 mutants of the golden RTL the testbench's
//	        pass/fail verdicts agree with the golden testbench's on at
//	        least 80% of the mutants
//
// The mutant set and the golden testbench are derived deterministically
// per problem, so every method is graded against identical DUTs.
package autoeval

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"correctbench/internal/dataset"
	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

// Grade is an AutoEval grade.
type Grade int

// Grades, ordered from worst to best.
const (
	GradeFailed Grade = iota
	GradeEval0
	GradeEval1
	GradeEval2
)

func (g Grade) String() string {
	switch g {
	case GradeFailed:
		return "Failed"
	case GradeEval0:
		return "Eval0"
	case GradeEval1:
		return "Eval1"
	default:
		return "Eval2"
	}
}

// Definitions returns Table II's criterion definitions, keyed by grade.
func Definitions() map[Grade]string {
	return map[Grade]string{
		GradeFailed: "codes have syntax error",
		GradeEval0:  "codes have no syntax error",
		GradeEval1:  "codes passed Eval0; report passed with the golden RTL code as DUT",
		GradeEval2:  "codes passed Eval1; use mutants of golden RTL as DUTs; have the same report as the golden testbench (passed or failed)",
	}
}

// Evaluator grades testbenches. It caches per-problem fixtures (golden
// testbench, mutant designs, golden verdicts), so one Evaluator should
// be shared across an experiment.
//
// Evaluator is safe for concurrent use. Fixture construction is
// locked per fixture, not globally: two goroutines evaluating
// different problems build their fixtures in parallel, while two
// goroutines racing on the same problem build it exactly once.
type Evaluator struct {
	// Mutants is the number of golden-RTL mutants (paper: 10).
	Mutants int
	// AgreeFrac is the verdict-agreement threshold (paper: 0.8).
	AgreeFrac float64
	// Seed makes fixture construction deterministic.
	Seed int64

	mu       sync.Mutex // guards the fixtures map only, never held during builds
	fixtures map[string]*fixtureEntry

	// designMu guards designs, the elaborated-DUT cache keyed by
	// printed-module source. Fixture construction prints and runs the
	// same mutant several times (kill check, subtlety probe, final
	// design build); caching makes each distinct source elaborate
	// once per Evaluator.
	designMu sync.Mutex
	designs  map[string]*sim.Design

	// screenMu guards screenStats, the aggregate of the static mutant
	// pre-screens run during fixture construction.
	screenMu    sync.Mutex
	screenStats mutate.ScreenStats
}

// ScreenStats returns the aggregate static pre-screen counters over
// every fixture this evaluator has built.
func (e *Evaluator) ScreenStats() mutate.ScreenStats {
	e.screenMu.Lock()
	defer e.screenMu.Unlock()
	return e.screenStats
}

// elaborateCached elaborates Verilog source, memoizing per distinct
// (source, top) pair. Only successful elaborations are cached;
// failures are rare (rejected mutants) and re-derived.
func (e *Evaluator) elaborateCached(src, top string) (*sim.Design, error) {
	key := top + "\x00" + src
	e.designMu.Lock()
	d, ok := e.designs[key]
	e.designMu.Unlock()
	if ok {
		return d, nil
	}
	d, err := sim.ElaborateSource(src, top)
	if err != nil {
		return nil, err
	}
	e.designMu.Lock()
	if e.designs == nil {
		e.designs = map[string]*sim.Design{}
	}
	e.designs[key] = d
	e.designMu.Unlock()
	return d, nil
}

// NewEvaluator returns an evaluator with the paper's configuration.
func NewEvaluator(seed int64) *Evaluator {
	return &Evaluator{Mutants: 10, AgreeFrac: 0.8, Seed: seed}
}

type fixture struct {
	golden        *testbench.Testbench
	goldenDesign  *sim.Design
	mutantDesigns []*sim.Design
	goldenVerdict []bool // golden TB's pass verdict per mutant
	// batchProgs is the mutant set precompiled for batched grading
	// (sim.CompileBatchSplit: a levelized program for static mutants
	// plus an event-driven one for the rest), with batchIdx giving each
	// program's variant -> mutant index mapping — immutable, shared by
	// every Eval2 call. Nil when the engine is the interpreter or the
	// golden design cannot batch-compile.
	batchProgs []*sim.BatchProgram
	batchIdx   [][]int
}

// fixtureEntry is the per-problem build lock: the entry is installed
// in the map under e.mu, but the expensive build runs under the
// entry's own once, outside the map lock.
type fixtureEntry struct {
	once sync.Once
	f    *fixture
	err  error
}

// fixtureFor builds (or retrieves) the per-problem fixture. The
// fixture's random stream is derived from (evaluator seed, problem
// name) alone, so fixtures are identical whatever order — or
// concurrency — problems are first evaluated in.
func (e *Evaluator) fixtureFor(p *dataset.Problem) (*fixture, error) {
	e.mu.Lock()
	if e.fixtures == nil {
		e.fixtures = map[string]*fixtureEntry{}
	}
	ent, ok := e.fixtures[p.Name]
	if !ok {
		ent = &fixtureEntry{}
		e.fixtures[p.Name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.f, ent.err = e.buildFixture(p)
	})
	return ent.f, ent.err
}

func (e *Evaluator) buildFixture(p *dataset.Problem) (*fixture, error) {
	rng := rand.New(rand.NewSource(e.Seed ^ int64(len(p.Name))<<32 ^ hashName(p.Name)))
	gtb, err := testbench.Golden(p, rng)
	if err != nil {
		return nil, err
	}
	goldenDesign, err := p.Elaborate()
	if err != nil {
		return nil, err
	}
	golden, err := p.Module()
	if err != nil {
		return nil, err
	}

	// Mutants must be killable by the golden testbench: that is what
	// makes them useful Eval2 probes. Candidate mutants are elaborated
	// through the evaluator's design cache: the same printed source is
	// simulated again by the subtlety probe and kept as an Eval2 DUT,
	// and must not be re-elaborated each time.
	//
	// On batch-capable engines the kill checks run wave-at-a-time on
	// sim.EngineBatched lanes (DistinctMutantsBatch draws the same rng
	// stream as DistinctMutants, so the fixture is engine-independent);
	// the interpreter keeps the sequential per-mutant path.
	batched := resolveEngine(gtb.Engine) != sim.EngineInterp
	differs := func(m *verilog.Module) (bool, error) {
		d, err := e.elaborateCached(verilog.PrintModule(m), p.Top)
		if err != nil {
			return false, fmt.Errorf("dut: %w", err)
		}
		res, err := gtb.RunAgainstDesign(d)
		if err != nil {
			return false, err
		}
		return !res.Pass(), nil
	}
	// batchRun elaborates a module set and runs the lanes that
	// elaborate through one batched pass of tb, returning per-module
	// outcomes (Err set for elaboration failures).
	batchRun := func(tb *testbench.Testbench, ms []*verilog.Module) []testbench.BatchOutcome {
		out := make([]testbench.BatchOutcome, len(ms))
		designs := make([]*sim.Design, 0, len(ms))
		idx := make([]int, 0, len(ms))
		for i, m := range ms {
			d, err := e.elaborateCached(verilog.PrintModule(m), p.Top)
			if err != nil {
				out[i].Err = fmt.Errorf("dut: %w", err)
				continue
			}
			designs = append(designs, d)
			idx = append(idx, i)
		}
		if len(designs) > 0 {
			for j, o := range tb.RunBatchAgainstDesigns(goldenDesign, designs, true) {
				out[idx[j]] = o
			}
		}
		return out
	}
	batchDiffers := func(ms []*verilog.Module) []mutate.DifferenceResult {
		res := make([]mutate.DifferenceResult, len(ms))
		for i, o := range batchRun(gtb, ms) {
			if o.Err != nil {
				res[i].Err = o.Err
			} else {
				res[i].Differs = !o.Res.Pass()
			}
		}
		return res
	}
	// A corner-free random probe separates subtle mutants (killed only
	// by corner/exhaustive or directed stimuli) from gross ones. The
	// paper's hand-extended mutant set leans subtle, which is exactly
	// what gives Eval2 its coverage-discriminating power; we reproduce
	// that by preferring mutants the probe misses. Sequential mutants
	// get a long random probe: surviving it means the fault hides from
	// random walks entirely, the class that separates thorough
	// testbenches from thin ones.
	probeCov := testbench.Coverage{Scenarios: 2, Steps: 4}
	if p.Kind == dataset.SEQ {
		probeCov = testbench.Coverage{Scenarios: 5, Steps: 10}
	}
	probeScs, err := testbench.GenerateScenarios(p, rng, probeCov)
	if err != nil {
		return nil, err
	}
	probe := &testbench.Testbench{
		Problem: p, Scenarios: probeScs,
		CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1,
	}
	// Candidates are statically pre-screened: identity mutants never
	// reach a simulation lane (the screen is draw-preserving, so the
	// selected mutants are the same with or without it).
	screen := mutate.NewScreen(golden)
	var candidates []*verilog.Module
	if batched {
		candidates = mutate.DistinctMutantsBatchScreened(golden, rng, e.Mutants*3, 1, batchDiffers, screen)
		if len(candidates) < e.Mutants {
			// Problems with few mutation sites: widen to 2-fault mutants.
			candidates = append(candidates, mutate.DistinctMutantsBatchScreened(golden, rng, e.Mutants*2, 2, batchDiffers, screen)...)
		}
	} else {
		candidates = mutate.DistinctMutantsScreened(golden, rng, e.Mutants*3, 1, differs, screen)
		if len(candidates) < e.Mutants {
			candidates = append(candidates, mutate.DistinctMutantsScreened(golden, rng, e.Mutants*2, 2, differs, screen)...)
		}
	}
	e.screenMu.Lock()
	e.screenStats.Add(screen.Stats)
	e.screenMu.Unlock()
	var subtle, gross []*verilog.Module
	if batched {
		for i, o := range batchRun(probe, candidates) {
			if o.Err == nil && o.Res.Pass() {
				subtle = append(subtle, candidates[i])
			} else {
				gross = append(gross, candidates[i])
			}
		}
	} else {
		for _, m := range candidates {
			var res *testbench.RunResult
			d, err := e.elaborateCached(verilog.PrintModule(m), p.Top)
			if err == nil {
				res, err = probe.RunAgainstDesign(d)
			}
			if err == nil && res.Pass() {
				subtle = append(subtle, m)
			} else {
				gross = append(gross, m)
			}
		}
	}
	// Up to 70% subtle, the rest gross (mirroring the dataset's mix).
	var mutants []*verilog.Module
	maxSubtle := e.Mutants * 7 / 10
	for _, m := range subtle {
		if len(mutants) >= maxSubtle {
			break
		}
		mutants = append(mutants, m)
	}
	for _, m := range gross {
		if len(mutants) >= e.Mutants {
			break
		}
		mutants = append(mutants, m)
	}
	for _, m := range subtle {
		if len(mutants) >= e.Mutants {
			break
		}
		if !containsModule(mutants, m) {
			mutants = append(mutants, m)
		}
	}
	// Warm the golden testbench's checker cache while still inside the
	// once-guarded build: afterwards the shared golden testbench is
	// only ever read, so GoldenTestbench callers may run it from many
	// goroutines.
	if err := gtb.ElaborateChecker(); err != nil {
		return nil, err
	}
	if batched {
		// The batched runner also lazily records a checker trace; warm
		// it here for the same reason.
		if err := gtb.WarmBatchTrace(goldenDesign); err != nil {
			return nil, err
		}
	}
	f := &fixture{golden: gtb, goldenDesign: goldenDesign}
	for _, m := range mutants {
		d, err := e.elaborateCached(verilog.PrintModule(m), p.Top)
		if err != nil {
			continue
		}
		f.mutantDesigns = append(f.mutantDesigns, d)
		f.goldenVerdict = append(f.goldenVerdict, false) // killable by construction
	}
	if len(f.mutantDesigns) == 0 {
		return nil, fmt.Errorf("autoeval: no usable mutants for %s", p.Name)
	}
	if batched {
		// Precompile the mutant set once: every Eval2 call replays the
		// same lanes, so the per-call compile would be pure overhead. A
		// compile failure just leaves batchProgs nil and Eval2 compiling
		// per call (with its own scalar fallback).
		if progs, idx, err := sim.CompileBatchSplit(goldenDesign, f.mutantDesigns); err == nil {
			f.batchProgs, f.batchIdx = progs, idx
		}
	}
	return f, nil
}

func containsModule(list []*verilog.Module, m *verilog.Module) bool {
	for _, x := range list {
		if x == m {
			return true
		}
	}
	return false
}

// resolveEngine maps the testbench's engine selection to the engine
// that will actually run (EngineAuto follows sim.DefaultEngine).
func resolveEngine(eng sim.Engine) sim.Engine {
	if eng == sim.EngineAuto {
		return sim.DefaultEngine
	}
	return eng
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// Evaluate grades one testbench.
func (e *Evaluator) Evaluate(tb *testbench.Testbench) (Grade, error) {
	return e.EvaluateContext(context.Background(), tb)
}

// EvaluateContext is Evaluate with cancellation: the mutant runs stop
// within one simulation step batch of ctx being cancelled and the
// context's error is returned (never folded into a grade). Fixture
// construction itself is not cancellable — fixtures are built once and
// shared across every job using the evaluator, so a cancelled build
// must never poison the cache.
func (e *Evaluator) EvaluateContext(ctx context.Context, tb *testbench.Testbench) (Grade, error) {
	p := tb.Problem
	if !tb.SyntaxOK() {
		return GradeFailed, nil
	}
	f, err := e.fixtureFor(p)
	if err != nil {
		return GradeFailed, err
	}

	// Eval1: the golden RTL must pass.
	res, err := tb.RunAgainstDesignContext(ctx, f.goldenDesign)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return GradeFailed, cerr
		}
		return GradeEval0, nil
	}
	if !res.Pass() {
		return GradeEval0, nil
	}

	// Eval2: verdict agreement on the mutants. Batch-capable engines
	// run all mutant DUTs as lanes of one batched pass with early exit
	// (a lane stops simulating once a scenario has failed it — the
	// verdict is already known); the interpreter keeps the sequential
	// per-mutant loop.
	agree := 0
	if resolveEngine(tb.Engine) != sim.EngineInterp {
		var outs []testbench.BatchOutcome
		var err error
		if f.batchProgs != nil {
			outs, err = tb.RunBatchProgramsContext(ctx, f.batchProgs, f.batchIdx, true)
		} else {
			outs, err = tb.RunBatchAgainstDesignsContext(ctx, f.goldenDesign, f.mutantDesigns, true)
		}
		if err != nil {
			return GradeFailed, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return GradeFailed, cerr
		}
		for i, o := range outs {
			verdict := o.Err == nil && o.Res.Pass()
			if verdict == f.goldenVerdict[i] {
				agree++
			}
		}
	} else {
		for i, md := range f.mutantDesigns {
			verdict := false
			mres, err := tb.RunAgainstDesignContext(ctx, md)
			if err == nil {
				verdict = mres.Pass()
			} else if cerr := ctx.Err(); cerr != nil {
				return GradeFailed, cerr
			}
			if verdict == f.goldenVerdict[i] {
				agree++
			}
		}
	}
	if float64(agree) >= e.AgreeFrac*float64(len(f.mutantDesigns)) {
		return GradeEval2, nil
	}
	return GradeEval1, nil
}

// GoldenTestbench exposes the cached golden testbench for a problem
// (used by the validator-accuracy study to label testbenches).
func (e *Evaluator) GoldenTestbench(p *dataset.Problem) (*testbench.Testbench, error) {
	f, err := e.fixtureFor(p)
	if err != nil {
		return nil, err
	}
	return f.golden, nil
}
