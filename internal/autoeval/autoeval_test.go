package autoeval

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

func TestDefinitionsComplete(t *testing.T) {
	defs := Definitions()
	for _, g := range []Grade{GradeFailed, GradeEval0, GradeEval1, GradeEval2} {
		if defs[g] == "" {
			t.Errorf("missing definition for %s", g)
		}
	}
	if GradeEval2.String() != "Eval2" || GradeFailed.String() != "Failed" {
		t.Error("grade names wrong")
	}
}

func TestGoldenTestbenchGetsEval2(t *testing.T) {
	e := NewEvaluator(1)
	for _, name := range []string{"adder8", "cnt8", "det101", "mux4_w4"} {
		p := dataset.ByName(name)
		tb, err := e.GoldenTestbench(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g != GradeEval2 {
			t.Errorf("%s: golden TB graded %s", name, g)
		}
	}
}

func TestSyntaxBrokenIsFailed(t *testing.T) {
	e := NewEvaluator(2)
	p := dataset.ByName("adder8")
	tb, err := e.GoldenTestbench(p)
	if err != nil {
		t.Fatal(err)
	}
	broken := *tb
	broken.DriverSource = "module ("
	g, err := e.Evaluate(&broken)
	if err != nil || g != GradeFailed {
		t.Errorf("grade = %s, %v; want Failed", g, err)
	}
}

func TestFaultyCheckerStopsAtEval0(t *testing.T) {
	e := NewEvaluator(3)
	p := dataset.ByName("cnt8")
	golden, err := p.Module()
	if err != nil {
		t.Fatal(err)
	}
	gtb, err := e.GoldenTestbench(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find an observable fault.
	for seed := int64(0); seed < 40; seed++ {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(seed)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			continue
		}
		tb := &testbench.Testbench{
			Problem: p, Scenarios: gtb.Scenarios,
			CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerSticky: -1,
		}
		tb.DriverSource = testbench.EmitDriver(tb)
		res, err := tb.RunAgainstSource(p.Source, p.Top)
		if err != nil || res.Pass() {
			continue
		}
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g != GradeEval0 {
			t.Errorf("faulty checker graded %s, want Eval0", g)
		}
		return
	}
	t.Fatal("no observable fault found")
}

func TestThinTestbenchMayMissEval2(t *testing.T) {
	// A clean checker with almost no stimuli passes Eval1 but should
	// fail Eval2 on at least some problems (coverage discrimination).
	e := NewEvaluator(4)
	rng := rand.New(rand.NewSource(9))
	missed := 0
	for _, p := range dataset.OfKind(dataset.SEQ) {
		scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 1, Steps: 2})
		if err != nil {
			t.Fatal(err)
		}
		tb := &testbench.Testbench{
			Problem: p, Scenarios: scs,
			CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1,
		}
		tb.DriverSource = testbench.EmitDriver(tb)
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g == GradeEval1 {
			missed++
		}
		if g < GradeEval1 {
			t.Errorf("%s: clean thin TB graded %s", p.Name, g)
		}
	}
	if missed < 10 {
		t.Errorf("thin TBs failed Eval2 on only %d SEQ problems; Eval2 has no discriminating power", missed)
	}
}

func TestFixtureCachingIsStable(t *testing.T) {
	e := NewEvaluator(5)
	p := dataset.ByName("alu4")
	f1, err := e.fixtureFor(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.fixtureFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("fixture not cached")
	}
	if len(f1.mutantDesigns) == 0 {
		t.Error("no mutants in fixture")
	}
}

// TestBatchGradingMatchesInterp pins the engine-independence of
// AutoEval end to end: an evaluator whose fixtures and Eval2 runs go
// through the batched engine must produce the same fixture (same
// mutant sources, thanks to DistinctMutantsBatch's rng-exactness) and
// the same grades as one running everything on the scalar interpreter.
func TestBatchGradingMatchesInterp(t *testing.T) {
	buildUnder := func(eng sim.Engine, seed int64, p *dataset.Problem) (*Evaluator, *fixture) {
		old := sim.DefaultEngine
		sim.DefaultEngine = eng
		defer func() { sim.DefaultEngine = old }()
		e := NewEvaluator(seed)
		f, err := e.fixtureFor(p)
		if err != nil {
			t.Fatalf("fixture under %v: %v", eng, err)
		}
		return e, f
	}
	rng := rand.New(rand.NewSource(17))
	for _, name := range []string{"adder8", "mux4_w4", "cnt8", "det101", "fifo2"} {
		p := dataset.ByName(name)
		eI, fI := buildUnder(sim.EngineInterp, 7, p)
		eB, fB := buildUnder(sim.EngineBatched, 7, p)

		if len(fI.mutantDesigns) != len(fB.mutantDesigns) {
			t.Fatalf("%s: fixture sizes differ: %d interp vs %d batched", name, len(fI.mutantDesigns), len(fB.mutantDesigns))
		}

		// Grade a spread of testbenches under both: the golden one and
		// a thin one-scenario probe.
		thinScs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 1, Steps: 2})
		if err != nil {
			t.Fatal(err)
		}
		thin := &testbench.Testbench{
			Problem: p, Scenarios: thinScs,
			CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1,
		}
		thin.DriverSource = testbench.EmitDriver(thin)
		for _, tc := range []struct {
			label string
			mk    func(e *Evaluator) *testbench.Testbench
		}{
			{"golden", func(e *Evaluator) *testbench.Testbench {
				tb, err := e.GoldenTestbench(p)
				if err != nil {
					t.Fatal(err)
				}
				return tb
			}},
			{"thin", func(*Evaluator) *testbench.Testbench { return thin }},
		} {
			tbI := *tc.mk(eI)
			tbI.Engine = sim.EngineInterp
			tbB := *tc.mk(eB)
			tbB.Engine = sim.EngineBatched
			gI, err := eI.Evaluate(&tbI)
			if err != nil {
				t.Fatalf("%s/%s interp: %v", name, tc.label, err)
			}
			gB, err := eB.Evaluate(&tbB)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", name, tc.label, err)
			}
			if gI != gB {
				t.Errorf("%s/%s: grade diverged: interp %s vs batched %s", name, tc.label, gI, gB)
			}
		}
	}
}
