package autoeval

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

func TestDefinitionsComplete(t *testing.T) {
	defs := Definitions()
	for _, g := range []Grade{GradeFailed, GradeEval0, GradeEval1, GradeEval2} {
		if defs[g] == "" {
			t.Errorf("missing definition for %s", g)
		}
	}
	if GradeEval2.String() != "Eval2" || GradeFailed.String() != "Failed" {
		t.Error("grade names wrong")
	}
}

func TestGoldenTestbenchGetsEval2(t *testing.T) {
	e := NewEvaluator(1)
	for _, name := range []string{"adder8", "cnt8", "det101", "mux4_w4"} {
		p := dataset.ByName(name)
		tb, err := e.GoldenTestbench(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g != GradeEval2 {
			t.Errorf("%s: golden TB graded %s", name, g)
		}
	}
}

func TestSyntaxBrokenIsFailed(t *testing.T) {
	e := NewEvaluator(2)
	p := dataset.ByName("adder8")
	tb, err := e.GoldenTestbench(p)
	if err != nil {
		t.Fatal(err)
	}
	broken := *tb
	broken.DriverSource = "module ("
	g, err := e.Evaluate(&broken)
	if err != nil || g != GradeFailed {
		t.Errorf("grade = %s, %v; want Failed", g, err)
	}
}

func TestFaultyCheckerStopsAtEval0(t *testing.T) {
	e := NewEvaluator(3)
	p := dataset.ByName("cnt8")
	golden, err := p.Module()
	if err != nil {
		t.Fatal(err)
	}
	gtb, err := e.GoldenTestbench(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find an observable fault.
	for seed := int64(0); seed < 40; seed++ {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(seed)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			continue
		}
		tb := &testbench.Testbench{
			Problem: p, Scenarios: gtb.Scenarios,
			CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerSticky: -1,
		}
		tb.DriverSource = testbench.EmitDriver(tb)
		res, err := tb.RunAgainstSource(p.Source, p.Top)
		if err != nil || res.Pass() {
			continue
		}
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g != GradeEval0 {
			t.Errorf("faulty checker graded %s, want Eval0", g)
		}
		return
	}
	t.Fatal("no observable fault found")
}

func TestThinTestbenchMayMissEval2(t *testing.T) {
	// A clean checker with almost no stimuli passes Eval1 but should
	// fail Eval2 on at least some problems (coverage discrimination).
	e := NewEvaluator(4)
	rng := rand.New(rand.NewSource(9))
	missed := 0
	for _, p := range dataset.OfKind(dataset.SEQ) {
		scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 1, Steps: 2})
		if err != nil {
			t.Fatal(err)
		}
		tb := &testbench.Testbench{
			Problem: p, Scenarios: scs,
			CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1,
		}
		tb.DriverSource = testbench.EmitDriver(tb)
		g, err := e.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if g == GradeEval1 {
			missed++
		}
		if g < GradeEval1 {
			t.Errorf("%s: clean thin TB graded %s", p.Name, g)
		}
	}
	if missed < 10 {
		t.Errorf("thin TBs failed Eval2 on only %d SEQ problems; Eval2 has no discriminating power", missed)
	}
}

func TestFixtureCachingIsStable(t *testing.T) {
	e := NewEvaluator(5)
	p := dataset.ByName("alu4")
	f1, err := e.fixtureFor(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.fixtureFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("fixture not cached")
	}
	if len(f1.mutantDesigns) == 0 {
		t.Error("no mutants in fixture")
	}
}
