package autobench

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
)

func trait() llm.TaskTrait { return llm.TaskTrait{StickySeed: 12345} }

func TestBaselineProducesThinnerTestbenches(t *testing.T) {
	p := dataset.ByName("alu8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(1))
	var acct llm.Accountant
	base, err := (&Baseline{Profile: prof}).Generate(p, trait(), rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	full, err := (&AutoBench{Profile: prof}).Generate(p, trait(), rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	if base.ScenarioCount() >= full.ScenarioCount() {
		t.Errorf("baseline scenarios %d >= autobench %d", base.ScenarioCount(), full.ScenarioCount())
	}
}

func TestGeneratedTestbenchHasDriverAndChecker(t *testing.T) {
	p := dataset.ByName("cnt8")
	rng := rand.New(rand.NewSource(2))
	var acct llm.Accountant
	tb, err := (&AutoBench{Profile: llm.GPT4o()}).Generate(p, trait(), rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	if tb.DriverSource == "" || tb.CheckerSource == "" {
		t.Fatal("missing track source")
	}
	if acct.Calls == 0 || tb.TokensIn == 0 {
		t.Error("no tokens charged")
	}
}

func TestCleanCheckerPassesGolden(t *testing.T) {
	p := dataset.ByName("adder8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(3))
	var acct llm.Accountant
	foundClean := false
	for i := 0; i < 20 && !foundClean; i++ {
		tb, err := (&AutoBench{Profile: prof}).Generate(p, trait(), rng, &acct)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.CheckerPlan.Sites) != 0 || !tb.SyntaxOK() {
			continue
		}
		foundClean = true
		res, err := tb.RunAgainstSource(p.Source, p.Top)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass() {
			t.Error("clean checker rejects golden RTL")
		}
	}
	if !foundClean {
		t.Fatal("no clean generation in 20 tries (clean prob miscalibrated?)")
	}
}

func TestFaultyCheckerIsObservable(t *testing.T) {
	p := dataset.ByName("cnt8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(4))
	var acct llm.Accountant
	faulty := 0
	for i := 0; i < 40 && faulty < 5; i++ {
		tb, err := (&AutoBench{Profile: prof}).Generate(p, trait(), rng, &acct)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.CheckerPlan.Sites) == 0 || !tb.SyntaxOK() {
			continue
		}
		faulty++
		res, err := tb.RunAgainstSource(p.Source, p.Top)
		if err != nil {
			continue // checker that breaks simulation is observable too
		}
		if res.Pass() {
			t.Errorf("faulty checker (%v) passes golden RTL — not observable", tb.CheckerPlan.Sites)
		}
	}
	if faulty == 0 {
		t.Fatal("no faulty generation in 40 tries")
	}
}

func TestMisunderstoodTaskFaultIsSticky(t *testing.T) {
	p := dataset.ByName("det1101")
	prof := llm.GPT4o()
	tr := llm.TaskTrait{Misunderstood: true, StickySeed: 777}
	rng := rand.New(rand.NewSource(5))
	var acct llm.Accountant
	var sites []int
	for i := 0; i < 6; i++ {
		tb, err := (&AutoBench{Profile: prof}).Generate(p, tr, rng, &acct)
		if err != nil {
			t.Fatal(err)
		}
		if tb.CheckerSticky < 0 {
			t.Fatal("misunderstood generation lacks sticky site")
		}
		sites = append(sites, tb.CheckerSticky)
	}
	for _, s := range sites[1:] {
		if s != sites[0] {
			t.Fatalf("sticky site varies across regenerations: %v", sites)
		}
	}
}

func TestWeakCoverageTrait(t *testing.T) {
	p := dataset.ByName("cnt8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(6))
	var acct llm.Accountant
	weak, err := (&AutoBench{Profile: prof}).Generate(p, llm.TaskTrait{WeakCoverage: true, StickySeed: 1}, rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := (&AutoBench{Profile: prof}).Generate(p, llm.TaskTrait{StickySeed: 1}, rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	weakSteps, strongSteps := totalSteps(weak), totalSteps(strong)
	if weakSteps*3 > strongSteps {
		t.Errorf("weak coverage not thin enough: %d vs %d steps", weakSteps, strongSteps)
	}
}

func totalSteps(tb *testbench.Testbench) int {
	n := 0
	for _, sc := range tb.Scenarios {
		n += len(sc.Steps)
	}
	return n
}

func TestSyntaxErrorRateRoughlyCalibrated(t *testing.T) {
	p := dataset.ByName("mux2_w4") // CMB, baseline syntax prob 0.20
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(7))
	var acct llm.Accountant
	bad := 0
	const n = 200
	for i := 0; i < n; i++ {
		tb, err := (&Baseline{Profile: prof}).Generate(p, trait(), rng, &acct)
		if err != nil {
			t.Fatal(err)
		}
		if !tb.SyntaxOK() {
			bad++
		}
	}
	rate := float64(bad) / n
	if rate < 0.10 || rate > 0.32 {
		t.Errorf("baseline CMB syntax error rate %.2f, want near %.2f", rate, prof.BaselineSyntaxCMB)
	}
}

func TestForMethod(t *testing.T) {
	prof := llm.GPT4o()
	for _, name := range []string{"Baseline", "AutoBench"} {
		g, err := ForMethod(name, prof)
		if err != nil || g.Name() != name {
			t.Errorf("ForMethod(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := ForMethod("Nope", prof); err == nil {
		t.Error("unknown method accepted")
	}
}
