// Package autobench reproduces the two testbench generators the paper
// evaluates against CorrectBench's validation loop:
//
//   - Baseline: directly asking the LLM for a testbench in one shot
//     (thin scenario lists, high syntax-error rate), and
//   - AutoBench [Qiu et al., MLCAD 2024]: the scenario-list, driver and
//     checker tracks plus the self-enhancement stages (syntax
//     auto-debug, scenario-list completion, code standardization).
//
// Both produce testbench.Testbench artifacts; their quality statistics
// come from the llm.Profile in use (see DESIGN.md's substitution
// table).
package autobench

import (
	"fmt"
	"math/rand"
	"sync"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

// Generator produces a testbench from a problem specification.
type Generator interface {
	// Name identifies the method in result tables.
	Name() string
	// Generate builds one testbench under the task's systematic traits
	// (see llm.TaskTrait). Token usage is charged to acct.
	Generate(p *dataset.Problem, trait llm.TaskTrait, rng *rand.Rand, acct *llm.Accountant) (*testbench.Testbench, error)
}

// observablyFaulty reports whether the checker candidate behaves
// differently from the golden RTL on the given scenarios (i.e. the
// injected fault is a real functional error, not an equivalent
// mutation). Checkers that fail to simulate count as observable.
func observablyFaulty(p *dataset.Problem, checkerSrc string, scenarios []testbench.Scenario) bool {
	goldenDesign, err := p.Elaborate()
	if err != nil {
		return true
	}
	tb := &testbench.Testbench{
		Problem:       p,
		Scenarios:     scenarios,
		CheckerSource: checkerSrc,
		CheckerTop:    p.Top,
		CheckerSticky: -1,
	}
	res, err := tb.RunAgainstDesign(goldenDesign)
	if err != nil {
		return true
	}
	return !res.Pass()
}

// stickySiteCache memoizes per-(problem, seed) sticky fault sites.
var stickySiteCache sync.Map

// stickySiteFor deterministically picks the task's sticky fault site:
// the first enumeration site (starting from a seed-derived offset)
// whose single mutation is observably wrong on a fixed stimulus set.
// Determinism across regenerations is what makes the misconception
// survive reboots.
func stickySiteFor(p *dataset.Problem, golden *verilog.Module, seed int64) int {
	key := fmt.Sprintf("%s/%d", p.Name, seed)
	if v, ok := stickySiteCache.Load(key); ok {
		return v.(int)
	}
	site := -1
	scRng := rand.New(rand.NewSource(seed))
	scenarios, err := testbench.GenerateScenarios(p, scRng, testbench.Coverage{
		Scenarios: 6, Steps: 8, Corners: true, Exhaustive: true,
	})
	if err == nil {
		base := mutate.Plan{EnumSeed: seed}
		n := base.SiteCountIn(golden)
		if n > 0 {
			start := int(uint64(seed)>>33) % n
			for k := 0; k < n && k < 48; k++ {
				cand := (start + k) % n
				mod, muts := base.With(cand).Build(golden)
				if len(muts) == 0 {
					continue
				}
				if observablyFaulty(p, verilog.PrintModule(mod), scenarios) {
					site = cand
					break
				}
			}
		}
	}
	stickySiteCache.Store(key, site)
	return site
}

// buildChecker produces the checker track: the LLM's reference model,
// modelled as the golden module with a sampled number of functional
// faults (empty plan = clean checker). Faults are retried until they
// are observable on the testbench's own scenarios — a "wrong checker"
// in the paper's sense is one that computes wrong reference outputs,
// not one with a cosmetic code difference. For misunderstood tasks the
// same sticky conceptual fault recurs in every regeneration; its site
// index is returned (-1 when absent).
func buildChecker(p *dataset.Problem, prof *llm.Profile, trait llm.TaskTrait, scenarios []testbench.Scenario, rng *rand.Rand) (src string, plan mutate.Plan, sticky int, err error) {
	golden, err := p.Module()
	if err != nil {
		return "", mutate.Plan{}, -1, err
	}
	seq := p.Kind == dataset.SEQ
	if trait.Misunderstood && rng.Float64() >= prof.MisCleanProb {
		plan = mutate.Plan{EnumSeed: trait.StickySeed}
		sticky = stickySiteFor(p, golden, trait.StickySeed)
		if sticky >= 0 {
			plan = plan.With(sticky)
		}
		// Ordinary per-call mistakes can pile on top.
		if n := plan.SiteCountIn(golden); n > 1 && rng.Float64() >= prof.CheckerCleanProb(p.Difficulty, seq) {
			extra := prof.SampleFaultCount(rng)
			for k := 0; k < extra; k++ {
				plan = plan.With(rng.Intn(n))
			}
		}
		mod, _ := plan.Build(golden)
		return verilog.PrintModule(mod), plan, sticky, nil
	}
	if rng.Float64() < prof.CheckerCleanProb(p.Difficulty, seq) {
		return verilog.PrintModule(golden), mutate.Plan{EnumSeed: rng.Int63()}, -1, nil
	}
	// Faulty checker: retry until the fault is observable.
	for attempt := 0; attempt < 6; attempt++ {
		plan = mutate.NewPlan(golden, rng, prof.SampleFaultCount(rng))
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			break
		}
		src = verilog.PrintModule(mod)
		if observablyFaulty(p, src, scenarios) {
			return src, plan, -1, nil
		}
	}
	// Could not produce an observable fault (tiny modules): the
	// checker is effectively correct.
	return verilog.PrintModule(golden), mutate.Plan{EnumSeed: rng.Int63()}, -1, nil
}

// Baseline is the "directly ask the LLM" method.
type Baseline struct {
	Profile *llm.Profile
}

// Name implements Generator.
func (b *Baseline) Name() string { return "Baseline" }

// Generate implements Generator.
func (b *Baseline) Generate(p *dataset.Problem, trait llm.TaskTrait, rng *rand.Rand, acct *llm.Accountant) (*testbench.Testbench, error) {
	prof := b.Profile
	acct.Charge(rng, prof.TokensBaselineIn+len(p.Spec)/3, prof.TokensBaselineOut)

	cov := testbench.Coverage{
		Scenarios: prof.BaselineScenarios,
		Steps:     prof.BaselineSteps,
	}
	if trait.WeakCoverage {
		cov.Scenarios = 3
		cov.Steps = 4
	}
	scenarios, err := testbench.GenerateScenarios(p, rng, cov)
	if err != nil {
		return nil, err
	}
	checkerSrc, plan, sticky, err := buildChecker(p, prof, trait, scenarios, rng)
	if err != nil {
		return nil, err
	}
	tb := &testbench.Testbench{
		Problem:       p,
		Scenarios:     scenarios,
		CheckerSource: checkerSrc,
		CheckerTop:    p.Top,
		CheckerPlan:   plan,
		CheckerSticky: sticky,
	}
	tb.DriverSource = testbench.EmitDriver(tb)

	// One-shot generation has no syntax-repair stage.
	pSyntax := prof.BaselineSyntaxCMB
	if p.Kind == dataset.SEQ {
		pSyntax = prof.BaselineSyntaxSEQ
	}
	if rng.Float64() < pSyntax {
		corruptTestbench(tb, rng)
	}
	tb.TokensIn, tb.TokensOut = acct.In, acct.Out
	return tb, nil
}

// AutoBench reproduces the AutoBench workflow.
type AutoBench struct {
	Profile *llm.Profile
}

// Name implements Generator.
func (a *AutoBench) Name() string { return "AutoBench" }

// Generate implements Generator.
func (a *AutoBench) Generate(p *dataset.Problem, trait llm.TaskTrait, rng *rand.Rand, acct *llm.Accountant) (*testbench.Testbench, error) {
	prof := a.Profile
	// Scenario-list call + driver call + checker call.
	acct.Charge(rng, prof.TokensGenIn+len(p.Spec)/3, prof.TokensGenOut)

	// Scenario-list completion: scenario count grows with difficulty
	// and corner/exhaustive scenarios are included — unless the model
	// systematically under-covers this task.
	cov := testbench.Coverage{
		Scenarios:  prof.GenScenarios + prof.GenScenarioBonus*p.Difficulty,
		Steps:      prof.GenSteps,
		Corners:    true,
		Exhaustive: true,
	}
	if trait.WeakCoverage {
		// Systematic under-coverage: a couple of short random walks,
		// no corner or exhaustive scenarios.
		cov = testbench.Coverage{Scenarios: 2, Steps: 4}
		if p.Kind == dataset.CMB {
			cov = testbench.Coverage{Scenarios: 3, Steps: 4}
		}
	}
	scenarios, err := testbench.GenerateScenarios(p, rng, cov)
	if err != nil {
		return nil, err
	}
	checkerSrc, plan, sticky, err := buildChecker(p, prof, trait, scenarios, rng)
	if err != nil {
		return nil, err
	}
	tb := &testbench.Testbench{
		Problem:       p,
		Scenarios:     scenarios,
		CheckerSource: checkerSrc,
		CheckerTop:    p.Top,
		CheckerPlan:   plan,
		CheckerSticky: sticky,
	}
	tb.DriverSource = testbench.EmitDriver(tb)

	// Syntax auto-debug: most syntax errors are repaired by iterative
	// simulator-feedback debugging; only the residual probability
	// survives.
	pSyntax := prof.GenSyntaxCMB
	if p.Kind == dataset.SEQ {
		pSyntax = prof.GenSyntaxSEQ
	}
	if rng.Float64() < pSyntax {
		corruptTestbench(tb, rng)
		// A debug round was attempted and failed; charge its cost.
		acct.Charge(rng, prof.TokensGenIn/2, prof.TokensGenOut/2)
	}
	tb.TokensIn, tb.TokensOut = acct.In, acct.Out
	return tb, nil
}

// corruptTestbench damages one of the two tracks, modelling an LLM
// syntax error that survived (or never saw) self-debugging.
func corruptTestbench(tb *testbench.Testbench, rng *rand.Rand) {
	if rng.Intn(2) == 0 {
		tb.DriverSource = mutate.CorruptSyntax(tb.DriverSource, rng)
	} else {
		tb.CheckerSource = mutate.CorruptSyntax(tb.CheckerSource, rng)
	}
}

// ForMethod returns the named generator ("Baseline" or "AutoBench").
func ForMethod(name string, prof *llm.Profile) (Generator, error) {
	switch name {
	case "Baseline":
		return &Baseline{Profile: prof}, nil
	case "AutoBench":
		return &AutoBench{Profile: prof}, nil
	default:
		return nil, fmt.Errorf("autobench: unknown generator %q", name)
	}
}
