package harness

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"context"

	"correctbench/internal/exec"
	"correctbench/internal/faults"
)

// confListener hands net.Pipe server ends to a worker's accept loop,
// giving conformance tests a real fleet transport without sockets.
type confListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newConfListener() *confListener {
	return &confListener{ch: make(chan net.Conn, 16), closed: make(chan struct{})}
}

func (l *confListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *confListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type confAddr string

func (a confAddr) Network() string { return "pipe" }
func (a confAddr) String() string  { return string(a) }

func (l *confListener) Addr() net.Addr { return confAddr("conf") }

// confFleet starts n in-process worker nodes, each running the full
// simulation pipeline through NewCellRunner, optionally behind a
// node-level fault injector, and returns a Remote executor dialing
// them over pipes.
func confFleet(t *testing.T, n int, plans map[string]faults.NodePlan) *exec.Remote {
	t.Helper()
	lns := map[string]*confListener{}
	injectors := map[string]*faults.Node{}
	var addrs []string
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("conf-node-%d:1", i)
		addrs = append(addrs, addr)
		ln := newConfListener()
		lns[addr] = ln
		var served net.Listener = ln
		if plan, ok := plans[addr]; ok {
			inj := faults.NewNode(plan)
			injectors[addr] = inj
			served = inj.WrapListener(ln)
		}
		w := exec.NewWorker(NewCellRunner(nil), 4)
		go w.Serve(served)
		t.Cleanup(func() { ln.Close() })
	}
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		ln := lns[addr]
		if ln == nil {
			return nil, fmt.Errorf("conformance fleet: unknown node %s", addr)
		}
		if inj := injectors[addr]; inj != nil && inj.Killed() {
			return nil, net.ErrClosed
		}
		c1, c2 := net.Pipe()
		select {
		case ln.ch <- c2:
			return c1, nil
		case <-ln.closed:
			c1.Close()
			c2.Close()
			return nil, net.ErrClosed
		}
	}
	r, err := exec.NewRemote(addrs, exec.RemoteOptions{
		Window:     2,
		Straggler:  500 * time.Millisecond,
		ProbeEvery: 20 * time.Millisecond,
		MaxMissed:  5,
		Dial:       dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// normalizeCellEvent strips the operational metadata an executor is
// allowed to vary (wall-clock duration, executing node, cache state);
// everything else must be a pure function of the spec.
func normalizeCellEvent(ev CellEvent) CellEvent {
	ev.Duration = 0
	ev.Node = ""
	ev.Cached = false
	return ev
}

// TestCellExecutorConformance pins the CellExecutor contract at the
// harness level, for every executor the service can be configured
// with: the in-process pool, a 1-node remote fleet, a 4-node remote
// fleet, and a remote fleet under a lossy, laggy fault schedule. Each
// must release cell events in canonical index order and produce
// Results deeply equal to the sequential baseline — an executor
// decides where cells run, never what a run observes.
func TestCellExecutorConformance(t *testing.T) {
	probs := subset(t)[:4]
	baseCfg := func() Config {
		return Config{Reps: 1, Seed: 29, Problems: probs, Workers: 4}
	}

	run := func(t *testing.T, e exec.CellExecutor, workers int) (*Results, []CellEvent) {
		t.Helper()
		cfg := baseCfg()
		cfg.Workers = workers
		cfg.Executor = e
		var events []CellEvent
		var mu sync.Mutex
		cfg.OnCell = func(ev CellEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, events
	}

	baseRes, baseEvents := run(t, nil, 1)
	total := 3 * len(probs)
	if len(baseEvents) != total {
		t.Fatalf("baseline released %d cells, want %d", len(baseEvents), total)
	}

	cases := []struct {
		name  string
		build func(t *testing.T) exec.CellExecutor
	}{
		{"local-pool", func(t *testing.T) exec.CellExecutor { return exec.Local() }},
		{"remote-1-node", func(t *testing.T) exec.CellExecutor { return confFleet(t, 1, nil) }},
		{"remote-4-node", func(t *testing.T) exec.CellExecutor { return confFleet(t, 4, nil) }},
		{"remote-faulted", func(t *testing.T) exec.CellExecutor {
			return confFleet(t, 3, map[string]faults.NodePlan{
				"conf-node-0:1": {Seed: 5, DropResultRate: 0.3},
				"conf-node-1:1": {
					Seed: 7, DelayResultRate: 0.5, MaxResultDelay: 30 * time.Millisecond,
					FrameLatencyRate: 0.3, MaxFrameLatency: 10 * time.Millisecond,
				},
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, events := run(t, tc.build(t), 4)
			if len(events) != total {
				t.Fatalf("released %d cells, want %d", len(events), total)
			}
			for i, ev := range events {
				if ev.Index != i {
					t.Fatalf("event %d has index %d: canonical order violated", i, ev.Index)
				}
				if got, want := normalizeCellEvent(ev), normalizeCellEvent(baseEvents[i]); !reflect.DeepEqual(got, want) {
					t.Fatalf("cell %d differs from baseline:\n got %+v\nwant %+v", i, got, want)
				}
			}
			if !reflect.DeepEqual(res.Outcomes, baseRes.Outcomes) {
				t.Fatal("Results.Outcomes differ from sequential baseline")
			}
		})
	}
}
