package harness

import (
	"strings"
	"testing"

	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/validator"
)

// subset returns a small mixed CMB/SEQ problem slice for fast tests.
func subset(t *testing.T) []*dataset.Problem {
	t.Helper()
	var out []*dataset.Problem
	for _, name := range []string{"mux2_w4", "adder8", "parity_even8", "cnt8", "det101", "sipo8"} {
		p := dataset.ByName(name)
		if p == nil {
			t.Fatalf("problem %s missing", name)
		}
		out = append(out, p)
	}
	return out
}

func TestRunSmallExperiment(t *testing.T) {
	res, err := Run(Config{Reps: 2, Seed: 7, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods() {
		if len(res.Outcomes[m]) != 2 {
			t.Fatalf("%s: reps = %d", m, len(res.Outcomes[m]))
		}
		for _, rep := range res.Outcomes[m] {
			if len(rep) != 6 {
				t.Fatalf("%s: tasks = %d", m, len(rep))
			}
		}
	}
	// Ratios are within [0,1] and Eval0 >= Eval1 >= Eval2 (cumulative).
	for _, m := range AllMethods() {
		for _, g := range Groups() {
			e0 := res.Stats(m, g, autoeval.GradeEval0).Ratio
			e1 := res.Stats(m, g, autoeval.GradeEval1).Ratio
			e2 := res.Stats(m, g, autoeval.GradeEval2).Ratio
			if e0 < e1 || e1 < e2 || e2 < 0 || e0 > 1 {
				t.Errorf("%s/%s: ratios not monotone: %v %v %v", m, g.Name, e0, e1, e2)
			}
		}
	}
}

func TestTableRenderingsContainKeyRows(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 3, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	t1 := res.Table1()
	for _, want := range []string{"TABLE I", "CorrectBench", "AutoBench", "Baseline", "Eval2", "SEQ"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t3 := res.Table3()
	for _, want := range []string{"TABLE III", "Val.", "Corr.", "Gain"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
	if !strings.Contains(Table2(), "Eval2") {
		t.Error("Table2 incomplete")
	}
}

func TestAttributionConsistency(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 5, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Attribute() {
		if a.Corrector > a.Validator {
			t.Errorf("%s: Corr. %v exceeds Val. %v", a.Group, a.Corrector, a.Validator)
		}
		if a.Validator > a.CorrectBench {
			t.Errorf("%s: Val. %v exceeds CorrectBench passes %v", a.Group, a.Validator, a.CorrectBench)
		}
	}
}

func TestGradeSharesSumToOne(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 9, Problems: subset(t), Methods: []Method{MethodBaseline}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, g := range []autoeval.Grade{autoeval.GradeFailed, autoeval.GradeEval0, autoeval.GradeEval1, autoeval.GradeEval2} {
		total += res.GradeShare(MethodBaseline, g)
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("grade shares sum to %v", total)
	}
}

func TestCriteriaAccuracySmall(t *testing.T) {
	rows, err := CriteriaAccuracy(CriteriaAccuracyConfig{
		PerTask: 2, NR: 12, Seed: 11, Problems: subset(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("criteria rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NTotal != 12 {
			t.Errorf("%s: corpus = %d", r.Criterion, r.NTotal)
		}
		if r.Total < 0 || r.Total > 1 {
			t.Errorf("%s: accuracy %v out of range", r.Criterion, r.Total)
		}
	}
	if !strings.Contains(RenderFig6a(rows), "70%-wrong") {
		t.Error("Fig6a rendering incomplete")
	}
}

func TestCriteriaPipelineSmall(t *testing.T) {
	rows, err := CriteriaPipeline(Config{Reps: 1, Seed: 13, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(validator.Criteria()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(RenderFig6b(rows), "Eval2 ratio") {
		t.Error("Fig6b rendering incomplete")
	}
}

func TestFig7Rendering(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 15, Problems: subset(t), Profile: llm.GPT4oMini()})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Fig7Rows()
	if len(rows) != 3 {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	out := RenderFig7("gpt-4o-mini", rows)
	if !strings.Contains(out, "gpt-4o-mini") || !strings.Contains(out, "CorrectBench") {
		t.Errorf("fig7 rendering incomplete:\n%s", out)
	}
}

func TestAvgTokensPositive(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 17, Problems: subset(t), Methods: []Method{MethodCorrectBench}})
	if err != nil {
		t.Fatal(err)
	}
	in, out := res.AvgTokens(MethodCorrectBench)
	if in <= 0 || out <= 0 {
		t.Errorf("avg tokens = %v, %v", in, out)
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	cfg := Config{Reps: 1, Seed: 21, Problems: subset(t), Methods: []Method{MethodAutoBench}}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r1.Outcomes[MethodAutoBench][0] {
		if o.Grade != r2.Outcomes[MethodAutoBench][0][i].Grade {
			t.Fatalf("task %d grade differs between identical runs", i)
		}
	}
}
