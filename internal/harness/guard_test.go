package harness

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"correctbench/internal/store"
)

// flakyStore fails the first failPuts write-backs of each key (or all
// of them with failPuts < 0), delegating everything else to an inner
// memory store.
type flakyStore struct {
	inner    store.Store
	failPuts int // per-key failures; -1 = always fail

	mu       sync.Mutex
	attempts map[store.Key]int
	puts     int
}

func newFlakyStore(failPuts int) *flakyStore {
	return &flakyStore{
		inner:    store.NewMemory(0),
		failPuts: failPuts,
		attempts: map[store.Key]int{},
	}
}

var errFlaky = errors.New("flaky store: injected put failure")

func (f *flakyStore) Get(k store.Key) (store.Outcome, bool) { return f.inner.Get(k) }

func (f *flakyStore) Put(k store.Key, o store.Outcome) error {
	f.mu.Lock()
	f.puts++
	f.attempts[k]++
	fail := f.failPuts < 0 || f.attempts[k] <= f.failPuts
	f.mu.Unlock()
	if fail {
		return errFlaky
	}
	return f.inner.Put(k, o)
}

func (f *flakyStore) putCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.puts
}

func (f *flakyStore) Stats() store.Stats { return f.inner.Stats() }
func (f *flakyStore) Close() error       { return f.inner.Close() }

// TestFaultGuardRetriesTransientPuts: a store that fails each cell's
// first write-back once is fully absorbed by the retry budget — every
// cell lands, drops stay zero, and the run never degrades.
func TestFaultGuardRetriesTransientPuts(t *testing.T) {
	probs := storeTestProblems(t)
	fs := newFlakyStore(1)
	res, err := Run(Config{Seed: 33, Reps: 1, Problems: probs, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	total := len(AllMethods()) * len(probs)
	if res.Store.PutRetries < total {
		t.Errorf("put retries = %d, want >= %d (one per cell)", res.Store.PutRetries, total)
	}
	if res.Store.PutDrops != 0 || res.Store.Degraded {
		t.Errorf("drops/degraded = %d/%v, want 0/false", res.Store.PutDrops, res.Store.Degraded)
	}
	if s := fs.Stats(); s.Entries != total {
		t.Errorf("store entries = %d, want %d (every retry must land)", s.Entries, total)
	}

	// The retried cold run must have produced exactly what a clean run
	// does, and the now-populated store must serve a fully warm rerun.
	clean, err := Run(Config{Seed: 33, Reps: 1, Problems: probs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outcomes, clean.Outcomes) {
		t.Error("outcomes under put faults differ from a clean run")
	}
	warm, err := Run(Config{Seed: 33, Reps: 1, Problems: probs, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Store.Hits != total || warm.Store.Misses != 0 {
		t.Errorf("warm hits/misses = %d/%d, want %d/0", warm.Store.Hits, warm.Store.Misses, total)
	}
}

// TestFaultGuardBreakerOpensOnDeadStore: with every write-back
// failing, the breaker opens after the consecutive-drop threshold and
// the run degrades to cache-bypass mode — bounded put attempts (no
// 3x-retry per cell forever), zero stored cells, and outcomes still
// identical to a clean run.
func TestFaultGuardBreakerOpensOnDeadStore(t *testing.T) {
	probs := storeTestProblems(t)
	fs := newFlakyStore(-1)
	res, err := Run(Config{Seed: 33, Reps: 2, Problems: probs, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	total := len(AllMethods()) * 2 * len(probs)
	if !res.Store.Degraded || res.Store.BreakerTrips == 0 {
		t.Fatalf("run did not degrade: %+v", res.Store)
	}
	if res.Store.PutDrops < storeBreakerThreshold {
		t.Errorf("drops = %d, want >= breaker threshold %d", res.Store.PutDrops, storeBreakerThreshold)
	}
	// Once open, only every probeEvery-th put reaches the store; the
	// worst case is every put attempted with the full retry budget.
	if max := total * storePutAttempts; fs.putCalls() > max {
		t.Errorf("put calls = %d, want <= %d", fs.putCalls(), max)
	}
	if res.Store.Bypassed == 0 {
		t.Error("no operations bypassed despite an open breaker")
	}
	clean, err := Run(Config{Seed: 33, Reps: 2, Problems: probs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Outcomes, clean.Outcomes) {
		t.Error("outcomes with a dead store differ from a clean run")
	}
}

// TestFaultGuardBreakerRecovers: a store that heals mid-run is
// rediscovered by the half-open probes — the breaker closes again and
// later write-backs land.
func TestFaultGuardBreakerRecovers(t *testing.T) {
	g := newStoreGuard(newFlakyStore(0), 1)
	ctx := context.Background()
	key := func(i byte) store.Key { return store.Key{i} }
	o := store.Outcome{}

	// Trip the breaker against a dead store...
	dead := newFlakyStore(-1)
	g.st = dead
	for i := byte(0); int(i) < storeBreakerThreshold; i++ {
		g.put(ctx, key(i), o)
	}
	if !g.snapshot().Degraded {
		t.Fatalf("breaker not open after %d drops", storeBreakerThreshold)
	}
	// ...heal the store and push enough puts to reach a probe.
	healthy := newFlakyStore(0)
	g.st = healthy
	for i := byte(100); int(i) < 100+storeBreakerProbeEvery; i++ {
		g.put(ctx, key(i), o)
	}
	g.mu.Lock()
	open := g.open
	g.mu.Unlock()
	if open {
		t.Error("breaker still open after a successful probe")
	}
	g.put(ctx, key(200), o)
	if healthy.putCalls() < 2 {
		t.Errorf("healed store saw %d puts, want the probe plus post-recovery writes", healthy.putCalls())
	}
}

// TestFaultGuardPutAbortsOnCancel: a cancelled context cuts backoff
// waits short, so a drain against an erroring store cannot hang on
// retry sleeps.
func TestFaultGuardPutAbortsOnCancel(t *testing.T) {
	g := newStoreGuard(newFlakyStore(-1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g.put(ctx, store.Key{1}, store.Outcome{})
	u := g.snapshot()
	if u.PutDrops != 1 {
		t.Errorf("drops = %d, want 1 (cancelled retry must drop, not block)", u.PutDrops)
	}
}

// TestFaultBackoffDeterministicAndBounded: the jittered backoff is a
// pure function of (seed, op, attempt) and stays inside [base/2, cap).
func TestFaultBackoffDeterministicAndBounded(t *testing.T) {
	for op := 0; op < 50; op++ {
		for attempt := 1; attempt < storePutAttempts; attempt++ {
			d1, d2 := backoff(9, op, attempt), backoff(9, op, attempt)
			if d1 != d2 {
				t.Fatalf("backoff(9,%d,%d) nondeterministic: %v vs %v", op, attempt, d1, d2)
			}
			if d1 < storeBackoffBase/2 || d1 >= storeBackoffMax {
				t.Fatalf("backoff(9,%d,%d) = %v out of [%v,%v)", op, attempt, d1, storeBackoffBase/2, storeBackoffMax)
			}
		}
	}
}

// TestFaultCellHookSeesEverySimulatedCell: the hook fires exactly once
// per simulated cell with its canonical index, and store-replayed
// cells never reach it.
func TestFaultCellHookSeesEverySimulatedCell(t *testing.T) {
	probs := storeTestProblems(t)
	st := store.NewMemory(0)
	var mu sync.Mutex
	seen := map[int]int{}
	cfg := Config{
		Seed: 21, Reps: 1, Problems: probs, Store: st,
		CellHook: func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	total := len(AllMethods()) * len(probs)
	if len(seen) != total {
		t.Fatalf("hook saw %d distinct cells, want %d", len(seen), total)
	}
	for i := 0; i < total; i++ {
		if seen[i] != 1 {
			t.Errorf("cell %d hooked %d times, want 1", i, seen[i])
		}
	}

	// Fully warm rerun: every cell replays, the hook must stay silent.
	seen = map[int]int{}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Errorf("hook fired %d times on a fully warm run, want 0", len(seen))
	}
}
