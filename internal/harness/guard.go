package harness

import (
	"context"
	"sync"
	"time"

	"correctbench/internal/rng"
	"correctbench/internal/store"
)

// StoreUsage is one run's result-store accounting, surfaced as
// Results.Store. Beyond the hit/miss split it records what the
// fault-tolerance layer did: write-back retries, write-backs dropped
// after the bounded retry budget, operations skipped while the
// circuit breaker was open, and whether the run ever degraded to
// cache-bypass mode. The invariant the guard enforces is that none of
// these numbers can change a run's outcomes or event stream — a
// misbehaving store costs cache efficiency, never correctness.
type StoreUsage struct {
	// Hits and Misses mirror Results.StoreHits/StoreMisses: cells
	// replayed from the store versus simulated.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// PutRetries counts write-back attempts beyond each cell's first
	// (capped exponential backoff with jitter between attempts).
	PutRetries int `json:"put_retries,omitempty"`
	// PutDrops counts write-backs abandoned after the retry budget:
	// those cells stay uncached (re-simulated on resume) but the run
	// itself is unaffected.
	PutDrops int `json:"put_drops,omitempty"`
	// Bypassed counts store operations skipped while the breaker was
	// open — the cache-bypass (NoStore-equivalent) degraded mode.
	Bypassed int `json:"bypassed,omitempty"`
	// BreakerTrips counts closed->open transitions; Degraded reports
	// the run entered cache-bypass mode at least once.
	BreakerTrips int  `json:"breaker_trips,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
}

// Store fault-tolerance policy. The budgets are deliberately small: a
// healthy store succeeds on the first attempt, a flaky one gets two
// cheap retries, and a dead one trips the breaker after a handful of
// dropped write-backs so the run stops paying backoff latency at all.
const (
	// storePutAttempts bounds write-back attempts per cell (1 initial
	// + retries).
	storePutAttempts = 3
	// storeBackoffBase/Max cap the exponential backoff between
	// attempts; the actual wait is jittered into [d/2, d).
	storeBackoffBase = 2 * time.Millisecond
	storeBackoffMax  = 50 * time.Millisecond
	// storeBreakerThreshold is the consecutive-drop count that opens
	// the breaker.
	storeBreakerThreshold = 5
	// storeBreakerProbeEvery: while open, every N-th write-back is
	// attempted as a half-open probe; one success closes the breaker
	// (the store recovered mid-run).
	storeBreakerProbeEvery = 16
)

// storeGuard wraps Config.Store for one run with the policy above. A
// fresh guard (breaker closed) is created per run, so a recovered
// store is re-probed by the next job at the latest. All methods are
// safe for concurrent use by the worker pool.
type storeGuard struct {
	st   store.Store
	seed int64

	mu          sync.Mutex
	open        bool
	consecDrops int
	sinceProbe  int
	ops         int
	usage       StoreUsage
}

func newStoreGuard(st store.Store, seed int64) *storeGuard {
	return &storeGuard{st: st, seed: seed}
}

// get resolves a cell against the store; while the breaker is open
// every lookup is a bypassed miss (cache-bypass mode).
func (g *storeGuard) get(k store.Key) (store.Outcome, bool) {
	g.mu.Lock()
	if g.open {
		g.usage.Bypassed++
		g.mu.Unlock()
		return store.Outcome{}, false
	}
	g.mu.Unlock()
	return g.st.Get(k)
}

// put writes a finished cell back with bounded retries. It never
// returns an error: a write-back that exhausts its budget is dropped
// and counted, and enough consecutive drops open the breaker. ctx
// cancellation aborts any backoff wait immediately, which is what
// keeps Client.Close's drain bounded even against a hanging-error
// store.
func (g *storeGuard) put(ctx context.Context, k store.Key, o store.Outcome) {
	g.mu.Lock()
	if g.open {
		g.sinceProbe++
		if g.sinceProbe < storeBreakerProbeEvery {
			g.usage.Bypassed++
			g.mu.Unlock()
			return
		}
		g.sinceProbe = 0 // this put is the half-open probe
	}
	op := g.ops
	g.ops++
	g.mu.Unlock()

	for attempt := 0; attempt < storePutAttempts; attempt++ {
		if attempt > 0 {
			g.mu.Lock()
			g.usage.PutRetries++
			g.mu.Unlock()
			if !sleepCtx(ctx, backoff(g.seed, op, attempt)) {
				g.drop()
				return
			}
		}
		if err := g.st.Put(k, o); err == nil {
			g.mu.Lock()
			g.consecDrops = 0
			g.open = false // closes the breaker when this was a probe
			g.mu.Unlock()
			return
		}
	}
	g.drop()
}

// drop records an abandoned write-back and trips the breaker at the
// threshold.
func (g *storeGuard) drop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.usage.PutDrops++
	g.consecDrops++
	if !g.open && g.consecDrops >= storeBreakerThreshold {
		g.open = true
		g.sinceProbe = 0
		g.usage.BreakerTrips++
		g.usage.Degraded = true
	}
}

// snapshot returns the usage counters so far.
func (g *storeGuard) snapshot() StoreUsage {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.usage
}

// backoff derives attempt N's capped, jittered wait. The jitter is a
// pure function of (run seed, write-back index, attempt) via
// internal/rng — reproducible like every other random choice — and
// lands in [d/2, d) so concurrent retries against a recovering store
// do not stampede in lockstep.
func backoff(seed int64, op, attempt int) time.Duration {
	d := storeBackoffBase << (attempt - 1)
	if d > storeBackoffMax {
		d = storeBackoffMax
	}
	r := rng.New(seed).Child("store", "backoff").ChildN("op", op*storePutAttempts+attempt).Rand()
	return d/2 + time.Duration(r.Int63n(int64(d/2)))
}

// sleepCtx sleeps for d unless ctx ends first; reports whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
