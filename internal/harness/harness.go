// Package harness runs the paper's experiments end to end: the three
// generation methods over the 156-task dataset with repetitions
// (Table I), gain attribution for the validator and corrector
// (Table III), the validation-criteria studies (Fig. 6a/6b) and the
// cross-LLM comparison (Fig. 7). It also formats the resulting tables
// and figures as text.
package harness

import (
	"fmt"
	"io"
	"math/rand"

	"correctbench/internal/autobench"
	"correctbench/internal/autoeval"
	"correctbench/internal/core"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// Method names one of the compared generation methods.
type Method string

// The three methods of Table I.
const (
	MethodCorrectBench Method = "CorrectBench"
	MethodAutoBench    Method = "AutoBench"
	MethodBaseline     Method = "Baseline"
)

// AllMethods returns the methods in paper column order.
func AllMethods() []Method { return []Method{MethodCorrectBench, MethodAutoBench, MethodBaseline} }

// TaskOutcome is the result of one task under one method.
type TaskOutcome struct {
	Problem string
	Kind    dataset.Kind
	Grade   autoeval.Grade

	// CorrectBench-only trace data.
	ValidatorIntervened bool
	CorrectorShaped     bool
	FinalValidated      bool
	Corrections         int
	Reboots             int

	TokensIn, TokensOut int
}

// Config configures an experiment.
type Config struct {
	Profile   *llm.Profile
	Criterion validator.Criterion
	Reps      int
	Seed      int64
	Problems  []*dataset.Problem
	Methods   []Method
	// Progress, when non-nil, receives one line per (method, rep).
	Progress io.Writer
}

func (c *Config) fill() {
	if c.Profile == nil {
		c.Profile = llm.GPT4o()
	}
	if c.Criterion.Name == "" {
		c.Criterion = validator.Wrong70
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if len(c.Problems) == 0 {
		c.Problems = dataset.All()
	}
	if len(c.Methods) == 0 {
		c.Methods = AllMethods()
	}
}

// Results holds all task outcomes of an experiment.
type Results struct {
	Config   Config
	Outcomes map[Method][][]TaskOutcome // method -> rep -> tasks
}

// Run executes the configured experiment.
func Run(cfg Config) (*Results, error) {
	cfg.fill()
	eval := autoeval.NewEvaluator(cfg.Seed ^ 0x5eed)
	res := &Results{Config: cfg, Outcomes: map[Method][][]TaskOutcome{}}
	for _, method := range cfg.Methods {
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(len(method))*104729))
			var outcomes []TaskOutcome
			for _, p := range cfg.Problems {
				o, err := runTask(method, p, cfg, eval, rng)
				if err != nil {
					return nil, fmt.Errorf("%s/%s rep %d: %w", method, p.Name, rep, err)
				}
				outcomes = append(outcomes, o)
			}
			res.Outcomes[method] = append(res.Outcomes[method], outcomes)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%s rep %d/%d done (%d tasks)\n", method, rep+1, cfg.Reps, len(outcomes))
			}
		}
	}
	return res, nil
}

func runTask(method Method, p *dataset.Problem, cfg Config, eval *autoeval.Evaluator, rng *rand.Rand) (TaskOutcome, error) {
	o := TaskOutcome{Problem: p.Name, Kind: p.Kind}
	var tb *testbench.Testbench
	switch method {
	case MethodCorrectBench:
		opt := core.DefaultOptions(cfg.Profile)
		opt.Criterion = cfg.Criterion
		r, err := core.Run(p, opt, rng)
		if err != nil {
			return o, err
		}
		tb = r.Testbench
		o.ValidatorIntervened = r.Trace.ValidatorIntervened
		o.CorrectorShaped = r.Trace.CorrectorShaped
		o.FinalValidated = r.Trace.FinalValidated
		o.Corrections = r.Trace.Corrections
		o.Reboots = r.Trace.Reboots
		o.TokensIn, o.TokensOut = r.Trace.Tokens.In, r.Trace.Tokens.Out
	case MethodAutoBench, MethodBaseline:
		gen, err := autobench.ForMethod(string(method), cfg.Profile)
		if err != nil {
			return o, err
		}
		trait := cfg.Profile.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, rng)
		var acct llm.Accountant
		tb, err = gen.Generate(p, trait, rng, &acct)
		if err != nil {
			return o, err
		}
		o.TokensIn, o.TokensOut = acct.In, acct.Out
	default:
		return o, fmt.Errorf("unknown method %q", method)
	}
	grade, err := eval.Evaluate(tb)
	if err != nil {
		return o, err
	}
	o.Grade = grade
	return o, nil
}

// ---- aggregation ----

// Group selects a task subset for aggregation.
type Group struct {
	Name   string
	Filter func(TaskOutcome) bool
}

// Groups returns the paper's three row groups.
func Groups() []Group {
	return []Group{
		{"Total", func(TaskOutcome) bool { return true }},
		{"CMB", func(o TaskOutcome) bool { return o.Kind == dataset.CMB }},
		{"SEQ", func(o TaskOutcome) bool { return o.Kind == dataset.SEQ }},
	}
}

// PassStats gives the average number and ratio of tasks reaching at
// least a grade, across repetitions.
type PassStats struct {
	AvgCount float64
	Ratio    float64
}

// Stats computes pass statistics for a method, group and minimum grade.
func (r *Results) Stats(method Method, g Group, min autoeval.Grade) PassStats {
	reps := r.Outcomes[method]
	if len(reps) == 0 {
		return PassStats{}
	}
	totalTasks := 0
	sum := 0.0
	for repIdx, rep := range reps {
		n, passed := 0, 0
		for _, o := range rep {
			if !g.Filter(o) {
				continue
			}
			n++
			if o.Grade >= min {
				passed++
			}
		}
		if repIdx == 0 {
			totalTasks = n
		}
		sum += float64(passed)
	}
	avg := sum / float64(len(reps))
	ratio := 0.0
	if totalTasks > 0 {
		ratio = avg / float64(totalTasks)
	}
	return PassStats{AvgCount: avg, Ratio: ratio}
}

// GradeShare returns the average fraction of tasks whose grade is
// exactly g (for the Fig. 7 stacked bars).
func (r *Results) GradeShare(method Method, grade autoeval.Grade) float64 {
	reps := r.Outcomes[method]
	if len(reps) == 0 {
		return 0
	}
	sum := 0.0
	for _, rep := range reps {
		n, hit := 0, 0
		for _, o := range rep {
			n++
			if o.Grade == grade {
				hit++
			}
		}
		if n > 0 {
			sum += float64(hit) / float64(n)
		}
	}
	return sum / float64(len(reps))
}

// Attribution computes Table III: the average number of Eval2-passed
// CorrectBench tasks in which the validator intervened ("Val.") and, of
// those, the ones whose final testbench carries a surviving correction
// ("Corr."), plus the gain over AutoBench.
type Attribution struct {
	Group        string
	CorrectBench float64
	AutoBench    float64
	Gain         float64
	Validator    float64
	Corrector    float64
}

// Attribute computes the attribution rows.
func (r *Results) Attribute() []Attribution {
	var out []Attribution
	for _, g := range Groups() {
		cb := r.Stats(MethodCorrectBench, g, autoeval.GradeEval2)
		ab := r.Stats(MethodAutoBench, g, autoeval.GradeEval2)
		a := Attribution{
			Group:        g.Name,
			CorrectBench: cb.AvgCount,
			AutoBench:    ab.AvgCount,
			Gain:         cb.AvgCount - ab.AvgCount,
		}
		reps := r.Outcomes[MethodCorrectBench]
		for _, rep := range reps {
			val, corr := 0, 0
			for _, o := range rep {
				if !g.Filter(o) || o.Grade < autoeval.GradeEval2 {
					continue
				}
				if o.ValidatorIntervened {
					val++
					if o.CorrectorShaped {
						corr++
					}
				}
			}
			a.Validator += float64(val)
			a.Corrector += float64(corr)
		}
		if len(reps) > 0 {
			a.Validator /= float64(len(reps))
			a.Corrector /= float64(len(reps))
		}
		out = append(out, a)
	}
	return out
}

// AvgTokens returns average input/output token counts per task.
func (r *Results) AvgTokens(method Method) (in, out float64) {
	reps := r.Outcomes[method]
	n := 0
	for _, rep := range reps {
		for _, o := range rep {
			in += float64(o.TokensIn)
			out += float64(o.TokensOut)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return in / float64(n), out / float64(n)
}
