// Package harness runs the paper's experiments end to end: the three
// generation methods over the 156-task dataset with repetitions
// (Table I), gain attribution for the validator and corrector
// (Table III), the validation-criteria studies (Fig. 6a/6b) and the
// cross-LLM comparison (Fig. 7). It also formats the resulting tables
// and figures as text.
package harness

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"correctbench/internal/autobench"
	"correctbench/internal/autoeval"
	"correctbench/internal/core"
	"correctbench/internal/dataset"
	"correctbench/internal/exec"
	"correctbench/internal/llm"
	"correctbench/internal/obs"
	"correctbench/internal/rng"
	"correctbench/internal/store"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// Method names one of the compared generation methods.
type Method string

// The three methods of Table I.
const (
	MethodCorrectBench Method = "CorrectBench"
	MethodAutoBench    Method = "AutoBench"
	MethodBaseline     Method = "Baseline"
)

// AllMethods returns the methods in paper column order.
func AllMethods() []Method { return []Method{MethodCorrectBench, MethodAutoBench, MethodBaseline} }

// TaskOutcome is the result of one task under one method.
type TaskOutcome struct {
	Problem string
	Kind    dataset.Kind
	Grade   autoeval.Grade

	// CorrectBench-only trace data.
	ValidatorIntervened bool
	CorrectorShaped     bool
	FinalValidated      bool
	Corrections         int
	Reboots             int

	TokensIn, TokensOut int
}

// Config configures an experiment.
type Config struct {
	Profile   *llm.Profile
	Criterion validator.Criterion
	Reps      int
	Seed      int64
	Problems  []*dataset.Problem
	Methods   []Method
	// Workers bounds the number of (method, rep, problem) cells
	// executed concurrently. 0 (the default) uses GOMAXPROCS; 1 runs
	// strictly sequentially. Any value produces identical Results:
	// every cell draws from its own hierarchically derived random
	// stream (see internal/rng), so scheduling order cannot leak into
	// outcomes.
	Workers int
	// Progress, when non-nil, receives one line per (method, rep).
	// Lines are emitted in canonical order regardless of Workers.
	Progress io.Writer

	// OnCell, when non-nil, receives every finished cell. Calls are
	// serialized and arrive in canonical (method, rep, problem) index
	// order regardless of Workers — out-of-order completions are
	// buffered — so an attached event stream is bit-reproducible at
	// any worker count. The callback must not call back into the
	// harness.
	OnCell func(CellEvent)
	// OnGroup, when non-nil, is called after the last cell of each
	// (method, rep) group has been released through OnCell, in
	// canonical group order.
	OnGroup func(method Method, rep int)

	// Evaluator, when non-nil, grades every cell instead of a freshly
	// constructed one. Sharing an evaluator across runs reuses its
	// per-problem fixtures (golden testbenches, elaborated goldens,
	// mutant designs); the caller must derive it from the same Seed to
	// preserve reproducibility (see autoeval.NewEvaluator).
	Evaluator *autoeval.Evaluator

	// MaxCorrections, MaxReboots and NR override Algorithm 1's budgets
	// (I_C^max, I_R^max, N_R) when non-nil. Explicit zeros are honored
	// — that is what enables no-correction ablations — while nil keeps
	// the paper defaults of core.DefaultOptions.
	MaxCorrections *int
	MaxReboots     *int
	NR             *int

	// Store, when non-nil, is consulted before any cell is scheduled
	// and written back as cells complete: cells whose key (CellKey) is
	// already present replay their stored outcome with zero simulation,
	// in the same canonical release order and with the same events as a
	// cold run — only CellEvent.Cached and the zero Duration tell them
	// apart. Cells that miss are simulated and persisted, which is what
	// makes an interrupted experiment resumable: resubmitting an
	// identical config replays the finished cells and simulates only
	// the remainder. The store may be shared by concurrent runs.
	//
	// The store is allowed to misbehave: every access goes through a
	// per-run guard (see guard.go) that retries failed write-backs
	// with capped, jittered backoff, drops them after a bounded budget,
	// and opens a circuit breaker — degrading the rest of the run to
	// cache-bypass, NoStore-equivalent mode — when the store looks
	// dead. A store fault can therefore never fail, block, or change
	// the byte stream of a run; the accounting lands in Results.Store.
	Store store.Store

	// CellHook, when non-nil, runs in the worker goroutine immediately
	// before a cell is simulated (store-replayed cells never reach it),
	// receiving the canonical cell index. It exists for chaos testing
	// (internal/faults.Injector.CellStart): injected latency reshuffles
	// completion order, which the ordered emitter must absorb without
	// any observable difference. The hook must be safe for concurrent
	// calls and must not call back into the harness.
	CellHook func(index int)

	// Executor, when non-nil, replaces the default in-process worker
	// pool (exec.Local) with another cell executor — notably
	// exec.NewRemote, which shards cells across a correctbenchd worker
	// fleet. Cells are pure functions of their content-addressed spec,
	// so any conforming executor produces identical Results and an
	// identical event stream; only Workers/placement metadata
	// (CellEvent.Node, Duration) reflect where cells actually ran.
	// Store-replayed cells never reach the executor.
	Executor exec.CellExecutor

	// Trace, when non-nil, collects one span tree per cell — simulated
	// or store-replayed — covering the full execution path: queue_wait,
	// store_lookup, dispatch/net_roundtrip (fleet runs), simulate with
	// its sim_elaborate/sim_compile/sim_run sub-spans, grade, and
	// store_writeback. Span IDs are deterministic (derived from the
	// cell's content address via obs.SpanID); the recorded durations
	// are wall clock. Tracing is operational metadata exactly like
	// CellEvent.Duration: it never reaches the event stream, Results,
	// or the store, so traced and untraced runs stay byte-identical.
	Trace *obs.JobTrace

	// Observer, when non-nil, receives every traced cell's phase
	// samples for latency aggregation (per-phase, per-node histograms).
	// Setting Observer alone — without Trace — still turns phase
	// timing on. Same off-wire contract as Trace.
	Observer *obs.Observer
}

// CellEvent describes one finished experiment cell, as delivered to
// Config.OnCell. Every field except Duration is a pure function of
// (Config.Seed, coordinates); Duration is wall clock and is the only
// non-deterministic field in an event stream.
type CellEvent struct {
	// Index is the canonical cell number (method-major, then rep, then
	// problem).
	Index   int
	Method  Method
	Rep     int // 0-based repetition
	Problem string
	Outcome TaskOutcome
	// Duration is the cell's wall-clock execution time; it is zero for
	// cells replayed from the store.
	Duration time.Duration
	// Cached reports that the outcome was replayed from Config.Store
	// instead of simulated. Like Duration it is operational metadata,
	// not part of the reproducibility contract (the correctbenchd wire
	// format omits both), so warm and cold event streams stay
	// byte-identical.
	Cached bool
	// Node names the fleet worker that executed the cell ("" for
	// locally executed and store-replayed cells). Operational metadata
	// like Cached: off the wire, outside the reproducibility contract.
	Node string
}

// Normalize applies the documented defaults in place: gpt-4o profile,
// 70%-wrong criterion, at least one rep, the full dataset and all
// three methods. Run applies it automatically; it is exported (and
// idempotent) so callers that report the experiment grid before
// running — the Client's JobStarted event and snapshots — derive it
// exactly as the harness will.
func (c *Config) Normalize() {
	if c.Profile == nil {
		c.Profile = llm.GPT4o()
	}
	if c.Criterion.Name == "" {
		c.Criterion = validator.Wrong70
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if len(c.Problems) == 0 {
		c.Problems = dataset.All()
	}
	if len(c.Methods) == 0 {
		c.Methods = AllMethods()
	}
}

// Results holds all task outcomes of an experiment.
type Results struct {
	Config   Config
	Outcomes map[Method][][]TaskOutcome // method -> rep -> tasks

	// StoreHits and StoreMisses count how many cells were replayed
	// from Config.Store versus simulated (both zero when no store was
	// configured). A fully warm rerun has StoreMisses == 0.
	StoreHits   int
	StoreMisses int

	// Store is the run's full result-store accounting, including the
	// fault-tolerance counters (write-back retries, drops, breaker
	// state) the plain hit/miss split cannot express. Zero when no
	// store was configured.
	Store StoreUsage
}

// CellStream derives the private random stream of one experiment
// cell. The path is (seed → method → rep → problem): every cell's
// randomness is a pure function of those coordinates, never of how
// many draws other cells made, which is what makes cells schedulable
// in any order. Exposed so studies outside Run (and tests) derive
// streams the same way.
func CellStream(seed int64, method Method, rep int, problem string) rng.Stream {
	return rng.New(seed).
		Child("method", string(method)).
		ChildN("rep", rep).
		Child("problem", problem)
}

// cell is one unit of harness work. Cells are numbered in canonical
// (method, rep, problem) iteration order; the index makes error
// selection and progress reporting deterministic under concurrency.
type cell struct {
	idx        int
	mi, ri, pi int
	key        store.Key // content address, derived when a store, remote executor or tracing needs it

	// store_lookup timing (offsets relative to the run's trace epoch);
	// populated only on traced runs with a store.
	lookStartUS, lookDurUS int64
}

// EvaluatorSeed derives the AutoEval evaluator seed the harness uses
// for an experiment seed. Exposed so callers sharing an evaluator
// across runs (Config.Evaluator) derive it identically.
func EvaluatorSeed(seed int64) int64 { return seed ^ 0x5eed }

// cellKeySchema versions the cell-key composition itself. Bump it
// whenever anything that feeds a cell outcome changes in a way the
// key components cannot see — simulator semantics, LLM profile
// tables, grading rules — so every previously stored cell becomes
// unreachable instead of stale.
const cellKeySchema = 1

// CellKey returns the content address of one experiment cell for the
// evaluation-cell store (Config.Store): a SHA-256 over every input
// its outcome is a function of —
//
//   - the key schema version (cellKeySchema),
//   - the problem's name and dataset fingerprint (spec, golden
//     source, ports, difficulty — see dataset.Problem.Fingerprint),
//   - the method and repetition,
//   - the cell's derived random seed (CellStream) and the experiment's
//     evaluator seed (EvaluatorSeed, which fixes the mutant fixtures),
//   - the LLM profile name, and
//   - for CorrectBench cells only: the validation criterion name and
//     the effective Algorithm-1 budgets (I_C^max, I_R^max, N_R) after
//     nil-means-paper-default resolution. AutoBench and Baseline never
//     read the criterion or budgets (runTask), so hashing them would
//     only force two thirds of the grid to re-simulate across
//     criterion sweeps and budget ablations for identical outcomes.
//
// Two configs that resolve to the same key are guaranteed to simulate
// byte-identical outcomes (Workers and Progress/event plumbing do not
// participate); any outcome-relevant divergence — a dataset edit,
// another criterion, an explicit-zero budget — lands on a different
// key. cfg must be normalized.
func CellKey(cfg *Config, method Method, rep int, p *dataset.Problem) store.Key {
	h := sha256.New()
	fmt.Fprintf(h, "correctbench-cell/v%d\n", cellKeySchema)
	fmt.Fprintf(h, "problem=%s\nfp=%s\nmethod=%s\nrep=%d\n", p.Name, p.Fingerprint(), method, rep)
	fmt.Fprintf(h, "cellseed=%d\nevalseed=%d\n", CellStream(cfg.Seed, method, rep, p.Name).Seed(), EvaluatorSeed(cfg.Seed))
	fmt.Fprintf(h, "llm=%s\n", cfg.Profile.Name)
	if method == MethodCorrectBench {
		def := core.DefaultOptions(cfg.Profile)
		mc, mr, nr := def.MaxCorrections, def.MaxReboots, def.NR
		if cfg.MaxCorrections != nil {
			mc = *cfg.MaxCorrections
		}
		if cfg.MaxReboots != nil {
			mr = *cfg.MaxReboots
		}
		if cfg.NR != nil {
			nr = *cfg.NR
		}
		fmt.Fprintf(h, "criterion=%s\nmc=%d\nmr=%d\nnr=%d\n", cfg.Criterion.Name, mc, mr, nr)
	}
	var k store.Key
	h.Sum(k[:0])
	return k
}

// toStoreOutcome converts a finished cell for persistence.
func toStoreOutcome(o TaskOutcome) store.Outcome {
	return store.Outcome{
		Problem:             o.Problem,
		Kind:                uint8(o.Kind),
		Grade:               uint8(o.Grade),
		ValidatorIntervened: o.ValidatorIntervened,
		CorrectorShaped:     o.CorrectorShaped,
		FinalValidated:      o.FinalValidated,
		Corrections:         uint32(o.Corrections),
		Reboots:             uint32(o.Reboots),
		TokensIn:            uint64(o.TokensIn),
		TokensOut:           uint64(o.TokensOut),
	}
}

// fromStoreOutcome rebuilds a cell outcome from its stored form. The
// problem identity comes from the live dataset problem, not the
// record; ok is false when the record does not belong to p (which
// would take a SHA-256 collision or a damaged index — treated as a
// miss either way).
func fromStoreOutcome(so store.Outcome, p *dataset.Problem) (TaskOutcome, bool) {
	if so.Problem != p.Name {
		return TaskOutcome{}, false
	}
	return TaskOutcome{
		Problem:             p.Name,
		Kind:                p.Kind,
		Grade:               autoeval.Grade(so.Grade),
		ValidatorIntervened: so.ValidatorIntervened,
		CorrectorShaped:     so.CorrectorShaped,
		FinalValidated:      so.FinalValidated,
		Corrections:         int(so.Corrections),
		Reboots:             int(so.Reboots),
		TokensIn:            int(so.TokensIn),
		TokensOut:           int(so.TokensOut),
	}, true
}

// Run executes the configured experiment over a bounded worker pool.
//
// Determinism: each cell draws from its own derived stream and writes
// into its own pre-allocated result slot, so Workers: 1 and
// Workers: 8 produce identical Results. On failure the error of the
// canonically earliest failing cell is returned (the same error a
// sequential run would hit first).
func Run(cfg Config) (*Results, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation. The context is plumbed into
// every cell's simulations (core → validator → autoeval →
// internal/sim), so cancelling stops the workers within one
// simulation step batch; the run then returns ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	cfg.Normalize()
	eval := cfg.Evaluator
	if eval == nil {
		eval = autoeval.NewEvaluator(EvaluatorSeed(cfg.Seed))
	}
	res := &Results{Config: cfg, Outcomes: map[Method][][]TaskOutcome{}}

	// Pre-allocate every result slot: workers write disjoint elements
	// and never touch the map, so assembly needs no locks and the
	// final layout is independent of completion order.
	for _, m := range cfg.Methods {
		reps := make([][]TaskOutcome, cfg.Reps)
		for r := range reps {
			reps[r] = make([]TaskOutcome, len(cfg.Problems))
		}
		res.Outcomes[m] = reps
	}

	total := len(cfg.Methods) * cfg.Reps * len(cfg.Problems)
	if total == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	emit := newOrderedEmitter(cfg)

	// Every store access goes through the per-run guard: bounded
	// write-back retries, drop accounting, and the circuit breaker
	// that degrades a run with a dead store to cache-bypass mode.
	var guard *storeGuard
	if cfg.Store != nil {
		guard = newStoreGuard(cfg.Store, cfg.Seed)
	}

	// Phase timing is on when either tracing sink is attached. The
	// epoch is the run's trace time origin: every sample offset —
	// including worker-side samples, after the coordinator rebases them
	// — is microseconds since this instant.
	traceOn := cfg.Trace != nil || cfg.Observer != nil
	var epoch time.Time
	if traceOn {
		epoch = time.Now() //detlint:allow the trace epoch is wall-clock metadata like CellEvent.Duration, excluded from the deterministic surface
	}
	finish := func() *Results {
		if guard != nil {
			res.Store = guard.snapshot()
			res.Store.Hits, res.Store.Misses = res.StoreHits, res.StoreMisses
		}
		return res
	}

	// Store lookup phase: resolve every cell against the store before
	// any scheduling. Hits are written straight into their result slots
	// and released through the ordered emitter — the same canonical
	// release order a cold run has, so attached event streams are
	// byte-identical warm or cold — and only misses become worker
	// jobs. Lookups are in-memory index reads, so even the full grid
	// resolves in microseconds.
	pending := make([]cell, 0, total)
	idx := 0
	for mi, m := range cfg.Methods {
		for ri := 0; ri < cfg.Reps; ri++ {
			for pi, p := range cfg.Problems {
				c := cell{idx: idx, mi: mi, ri: ri, pi: pi}
				idx++
				if guard != nil {
					var lookStart time.Time
					if traceOn {
						lookStart = time.Now() //detlint:allow store_lookup phase duration, wall-clock metadata
					}
					c.key = CellKey(&cfg, m, ri, p)
					so, hit := guard.get(c.key)
					if traceOn {
						c.lookStartUS = lookStart.Sub(epoch).Microseconds()
						c.lookDurUS = time.Since(lookStart).Microseconds()
					}
					if hit {
						if o, ok := fromStoreOutcome(so, p); ok {
							res.Outcomes[m][ri][pi] = o
							res.StoreHits++
							if traceOn {
								// A replayed cell's whole execution is its
								// store lookup: a one-span trace.
								recordCellTrace(&cfg, c, m, p.Name, true, "", []obs.PhaseSample{{
									Phase: obs.PhaseLookup, Seq: 0, ParentSeq: -1,
									StartUS: c.lookStartUS, DurUS: c.lookDurUS,
								}})
							}
							emit.cellDone(CellEvent{
								Index: c.idx, Method: m, Rep: ri, Problem: p.Name,
								Outcome: o, Cached: true,
							})
							continue
						}
					}
					res.StoreMisses++
				}
				pending = append(pending, c)
			}
		}
	}
	if len(pending) == 0 {
		// Fully warm: every cell replayed, nothing to simulate.
		return finish(), nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	// Hand the missing cells to the executor (the in-process pool by
	// default, a worker fleet via Config.Executor). The executor owes
	// completion, never order: Done lands each result slot, write-back
	// and ordered release exactly as the inline pool did, and the
	// emitter re-sequences completions, so the event stream is
	// byte-identical whichever executor ran the cells.
	executor := cfg.Executor
	if executor == nil {
		executor = exec.Local()
	}
	if guard == nil && (cfg.Executor != nil || traceOn) {
		// Remote executors shard and verify cells by content address,
		// and traces derive their deterministic span IDs from it;
		// derive keys even when no store is attached.
		for i := range pending {
			c := &pending[i]
			c.key = CellKey(&cfg, cfg.Methods[c.mi], c.ri, cfg.Problems[c.pi])
		}
	}
	derr := newErrorCollector()
	job := execJob(ctx, &cfg, pending, eval, guard, emit, res, workers, derr, epoch)
	execErr := executor.Execute(ctx, job)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if execErr != nil {
		return nil, execErr
	}
	if err := derr.first(); err != nil {
		return nil, err
	}
	return finish(), nil
}

// errorCollector keeps the error of the canonically earliest failing
// cell, so parallel runs report the same error a sequential run
// would.
type errorCollector struct {
	mu     sync.Mutex
	minIdx int
	err    error
}

func newErrorCollector() *errorCollector { return &errorCollector{minIdx: -1} }

func (e *errorCollector) record(idx int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil || idx < e.minIdx {
		e.minIdx, e.err = idx, err
	}
}

func (e *errorCollector) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

func (e *errorCollector) first() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// orderedEmitter releases finished cells in canonical index order —
// out-of-order completions are buffered — and drives every per-cell
// sink from that ordered stream: Config.OnCell, Config.OnGroup and
// the Progress writer. Because release order is canonical, everything
// downstream (progress text, event streams) is byte-identical for any
// worker count.
type orderedEmitter struct {
	mu      sync.Mutex
	cfg     *Config
	buf     map[int]CellEvent // completed but not yet released
	next    int               // next canonical index to release
	perGrp  int
	enabled bool
}

func newOrderedEmitter(cfg Config) *orderedEmitter {
	return &orderedEmitter{
		cfg:     &cfg,
		buf:     map[int]CellEvent{},
		perGrp:  len(cfg.Problems),
		enabled: cfg.Progress != nil || cfg.OnCell != nil || cfg.OnGroup != nil,
	}
}

func (t *orderedEmitter) cellDone(ev CellEvent) {
	if !t.enabled {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf[ev.Index] = ev
	for {
		e, ok := t.buf[t.next]
		if !ok {
			return
		}
		delete(t.buf, t.next)
		if t.cfg.OnCell != nil {
			t.cfg.OnCell(e)
		}
		t.next++
		if t.next%t.perGrp != 0 {
			continue
		}
		grp := t.next/t.perGrp - 1
		method := t.cfg.Methods[grp/t.cfg.Reps]
		rep := grp % t.cfg.Reps
		if t.cfg.Progress != nil {
			fmt.Fprintf(t.cfg.Progress, "%s rep %d/%d done (%d tasks)\n", method, rep+1, t.cfg.Reps, t.perGrp)
		}
		if t.cfg.OnGroup != nil {
			t.cfg.OnGroup(method, rep)
		}
	}
}

func runTask(ctx context.Context, method Method, p *dataset.Problem, cfg Config, eval *autoeval.Evaluator, rng *rand.Rand) (TaskOutcome, error) {
	o := TaskOutcome{Problem: p.Name, Kind: p.Kind}
	tb, err := generateTask(ctx, method, p, cfg, rng, &o)
	if err != nil {
		return o, err
	}
	endGrade := obs.Time(ctx, obs.PhaseGrade)
	grade, err := eval.EvaluateContext(ctx, tb)
	endGrade()
	if err != nil {
		return o, err
	}
	o.Grade = grade
	return o, nil
}

// generateTask runs the method's testbench generation (for
// CorrectBench: Algorithm 1 end to end, including its validation
// simulations), filling o's trace fields. The whole step is one
// "simulate" phase span on a traced run; the sim_* sub-spans recorded
// inside internal/sim nest under it.
func generateTask(ctx context.Context, method Method, p *dataset.Problem, cfg Config, rng *rand.Rand, o *TaskOutcome) (*testbench.Testbench, error) {
	defer obs.Time(ctx, obs.PhaseSimulate)()
	switch method {
	case MethodCorrectBench:
		opt := core.DefaultOptions(cfg.Profile)
		opt.Criterion = cfg.Criterion
		if cfg.MaxCorrections != nil {
			opt.MaxCorrections = *cfg.MaxCorrections
		}
		if cfg.MaxReboots != nil {
			opt.MaxReboots = *cfg.MaxReboots
		}
		if cfg.NR != nil {
			opt.NR = *cfg.NR
		}
		r, err := core.RunContext(ctx, p, opt, rng)
		if err != nil {
			return nil, err
		}
		o.ValidatorIntervened = r.Trace.ValidatorIntervened
		o.CorrectorShaped = r.Trace.CorrectorShaped
		o.FinalValidated = r.Trace.FinalValidated
		o.Corrections = r.Trace.Corrections
		o.Reboots = r.Trace.Reboots
		o.TokensIn, o.TokensOut = r.Trace.Tokens.In, r.Trace.Tokens.Out
		return r.Testbench, nil
	case MethodAutoBench, MethodBaseline:
		gen, err := autobench.ForMethod(string(method), cfg.Profile)
		if err != nil {
			return nil, err
		}
		trait := cfg.Profile.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, rng)
		var acct llm.Accountant
		tb, err := gen.Generate(p, trait, rng, &acct)
		if err != nil {
			return nil, err
		}
		o.TokensIn, o.TokensOut = acct.In, acct.Out
		return tb, nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

// ---- aggregation ----

// Group selects a task subset for aggregation.
type Group struct {
	Name   string
	Filter func(TaskOutcome) bool
}

// Groups returns the paper's three row groups.
func Groups() []Group {
	return []Group{
		{"Total", func(TaskOutcome) bool { return true }},
		{"CMB", func(o TaskOutcome) bool { return o.Kind == dataset.CMB }},
		{"SEQ", func(o TaskOutcome) bool { return o.Kind == dataset.SEQ }},
	}
}

// PassStats gives the average number and ratio of tasks reaching at
// least a grade, across repetitions.
type PassStats struct {
	AvgCount float64
	Ratio    float64
}

// Stats computes pass statistics for a method, group and minimum grade.
func (r *Results) Stats(method Method, g Group, min autoeval.Grade) PassStats {
	reps := r.Outcomes[method]
	if len(reps) == 0 {
		return PassStats{}
	}
	totalTasks := 0
	sum := 0.0
	for repIdx, rep := range reps {
		n, passed := 0, 0
		for _, o := range rep {
			if !g.Filter(o) {
				continue
			}
			n++
			if o.Grade >= min {
				passed++
			}
		}
		if repIdx == 0 {
			totalTasks = n
		}
		sum += float64(passed)
	}
	avg := sum / float64(len(reps))
	ratio := 0.0
	if totalTasks > 0 {
		ratio = avg / float64(totalTasks)
	}
	return PassStats{AvgCount: avg, Ratio: ratio}
}

// GradeShare returns the average fraction of tasks whose grade is
// exactly g (for the Fig. 7 stacked bars).
func (r *Results) GradeShare(method Method, grade autoeval.Grade) float64 {
	reps := r.Outcomes[method]
	if len(reps) == 0 {
		return 0
	}
	sum := 0.0
	for _, rep := range reps {
		n, hit := 0, 0
		for _, o := range rep {
			n++
			if o.Grade == grade {
				hit++
			}
		}
		if n > 0 {
			sum += float64(hit) / float64(n)
		}
	}
	return sum / float64(len(reps))
}

// Attribution computes Table III: the average number of Eval2-passed
// CorrectBench tasks in which the validator intervened ("Val.") and, of
// those, the ones whose final testbench carries a surviving correction
// ("Corr."), plus the gain over AutoBench.
type Attribution struct {
	Group        string
	CorrectBench float64
	AutoBench    float64
	Gain         float64
	Validator    float64
	Corrector    float64
}

// Attribute computes the attribution rows.
func (r *Results) Attribute() []Attribution {
	var out []Attribution
	for _, g := range Groups() {
		cb := r.Stats(MethodCorrectBench, g, autoeval.GradeEval2)
		ab := r.Stats(MethodAutoBench, g, autoeval.GradeEval2)
		a := Attribution{
			Group:        g.Name,
			CorrectBench: cb.AvgCount,
			AutoBench:    ab.AvgCount,
			Gain:         cb.AvgCount - ab.AvgCount,
		}
		reps := r.Outcomes[MethodCorrectBench]
		for _, rep := range reps {
			val, corr := 0, 0
			for _, o := range rep {
				if !g.Filter(o) || o.Grade < autoeval.GradeEval2 {
					continue
				}
				if o.ValidatorIntervened {
					val++
					if o.CorrectorShaped {
						corr++
					}
				}
			}
			a.Validator += float64(val)
			a.Corrector += float64(corr)
		}
		if len(reps) > 0 {
			a.Validator /= float64(len(reps))
			a.Corrector /= float64(len(reps))
		}
		out = append(out, a)
	}
	return out
}

// AvgTokens returns average input/output token counts per task.
func (r *Results) AvgTokens(method Method) (in, out float64) {
	reps := r.Outcomes[method]
	n := 0
	for _, rep := range reps {
		for _, o := range rep {
			in += float64(o.TokensIn)
			out += float64(o.TokensOut)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return in / float64(n), out / float64(n)
}
