package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"correctbench/internal/autobench"
	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/rng"
	"correctbench/internal/validator"
)

// CriteriaAccuracyConfig configures the Fig. 6(a) study: a corpus of
// labeled testbenches is validated with each criterion and accuracies
// are reported for all/correct/wrong testbenches.
type CriteriaAccuracyConfig struct {
	Profile *llm.Profile
	// PerTask is the number of testbenches collected per problem
	// (paper: 1560 total = 156 x 10).
	PerTask int
	NR      int
	Seed    int64
	// Workers bounds per-problem concurrency (0: GOMAXPROCS). Any
	// value produces the identical corpus: each problem's testbenches
	// come from a stream derived from (Seed, problem name) alone.
	Workers  int
	Problems []*dataset.Problem
	Progress io.Writer
}

// CriterionAccuracy is one bar group of Fig. 6(a).
type CriterionAccuracy struct {
	Criterion string
	Total     float64
	CorrectTB float64
	WrongTB   float64
	NTotal    int
	NCorrect  int
	NWrong    int
}

// CriteriaAccuracy runs the Fig. 6(a) experiment. A testbench is
// labeled "correct" when it parses and the golden RTL passes every
// scenario (i.e. its checker computes right reference outputs on its
// own stimuli); the validators never see the label or the golden RTL.
func CriteriaAccuracy(cfg CriteriaAccuracyConfig) ([]CriterionAccuracy, error) {
	return CriteriaAccuracyContext(context.Background(), cfg)
}

// CriteriaAccuracyContext is CriteriaAccuracy with cancellation: a
// cancelled context stops the per-problem workers within one
// simulation step batch and returns ctx.Err().
func CriteriaAccuracyContext(ctx context.Context, cfg CriteriaAccuracyConfig) ([]CriterionAccuracy, error) {
	if cfg.Profile == nil {
		cfg.Profile = llm.GPT4o()
	}
	if cfg.PerTask < 1 {
		cfg.PerTask = 10
	}
	if cfg.NR < 1 {
		cfg.NR = 20
	}
	if len(cfg.Problems) == 0 {
		cfg.Problems = dataset.All()
	}

	type labeled struct {
		verdicts map[string]bool // criterion -> "correct"
		correct  bool
	}

	// labelProblem builds one problem's corpus slice. Its randomness is
	// a private stream derived from (Seed, problem name), so problems
	// can be labeled concurrently, in any order, with identical output.
	gen := &autobench.AutoBench{Profile: cfg.Profile}
	labelProblem := func(p *dataset.Problem) ([]labeled, error) {
		r := rng.New(cfg.Seed).Child("criteria", p.Name).Rand()
		var acct llm.Accountant
		// One RTL group per task, shared by all criteria (as in the
		// paper's study).
		group, err := validator.GenerateRTLGroup(p, cfg.Profile, cfg.NR, r, &acct)
		if err != nil {
			return nil, err
		}
		goldenDesign, err := p.Elaborate()
		if err != nil {
			return nil, err
		}
		out := make([]labeled, 0, cfg.PerTask)
		for k := 0; k < cfg.PerTask; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Each corpus entry draws fresh traits: the corpus spans
			// many independent AutoBench runs, as in the paper.
			trait := cfg.Profile.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, r)
			tb, err := gen.Generate(p, trait, r, &acct)
			if err != nil {
				return nil, err
			}
			lab := labeled{verdicts: map[string]bool{}}
			if tb.SyntaxOK() {
				if res, err := tb.RunAgainstDesignContext(ctx, goldenDesign); err == nil && res.Pass() {
					lab.correct = true
				} else if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
			}
			// Build the RS matrix once; judging per criterion is
			// pure matrix arithmetic.
			base := &validator.Validator{Criterion: validator.Wrong70}
			m, ok, err := base.BuildMatrixContext(ctx, tb, group)
			if err != nil {
				return nil, err
			}
			for _, c := range validator.Criteria() {
				if !ok {
					lab.verdicts[c.Name] = false
					continue
				}
				v := &validator.Validator{Criterion: c}
				lab.verdicts[c.Name] = v.Judge(m).Correct
			}
			out = append(out, lab)
		}
		return out, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Problems) {
		workers = len(cfg.Problems)
	}
	var (
		perProblem = make([][]labeled, len(cfg.Problems))
		errs       = newErrorCollector()
		jobs       = make(chan int)
		doneCount  int
		progressMu sync.Mutex
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range jobs {
				labs, err := labelProblem(cfg.Problems[pi])
				if err != nil {
					errs.record(pi, err)
					continue
				}
				perProblem[pi] = labs
				if cfg.Progress != nil {
					progressMu.Lock()
					doneCount++
					if doneCount%26 == 0 {
						fmt.Fprintf(cfg.Progress, "criteria accuracy: %d/%d problems\n", doneCount, len(cfg.Problems))
					}
					progressMu.Unlock()
				}
			}
		}()
	}
	for pi := range cfg.Problems {
		if errs.failed() || ctx.Err() != nil {
			break
		}
		jobs <- pi
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := errs.first(); err != nil {
		return nil, err
	}
	// Deterministic assembly: concatenate in problem order.
	var corpus []labeled
	for _, labs := range perProblem {
		corpus = append(corpus, labs...)
	}

	var out []CriterionAccuracy
	for _, c := range validator.Criteria() {
		acc := CriterionAccuracy{Criterion: c.Name}
		var okTotal, okCorrect, okWrong int
		for _, lab := range corpus {
			hit := lab.verdicts[c.Name] == lab.correct
			acc.NTotal++
			if hit {
				okTotal++
			}
			if lab.correct {
				acc.NCorrect++
				if hit {
					okCorrect++
				}
			} else {
				acc.NWrong++
				if hit {
					okWrong++
				}
			}
		}
		acc.Total = ratio(okTotal, acc.NTotal)
		acc.CorrectTB = ratio(okCorrect, acc.NCorrect)
		acc.WrongTB = ratio(okWrong, acc.NWrong)
		out = append(out, acc)
	}
	return out, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderFig6a renders the accuracy study as text.
func RenderFig6a(rows []CriterionAccuracy) string {
	var sb strings.Builder
	sb.WriteString("Fig. 6(a): validation accuracy among validators\n")
	fmt.Fprintf(&sb, "%-12s %10s %14s %12s %8s\n", "Criterion", "Total", "Correct TBs", "Wrong TBs", "corpus")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %9.2f%% %13.2f%% %11.2f%%   %d TBs (%d correct / %d wrong)\n",
			r.Criterion, r.Total*100, r.CorrectTB*100, r.WrongTB*100, r.NTotal, r.NCorrect, r.NWrong)
	}
	return sb.String()
}

// CriterionPipelineResult is one point of Fig. 6(b): the whole
// CorrectBench framework run under one validation criterion.
type CriterionPipelineResult struct {
	Criterion      string
	Eval2Ratio     float64
	TokensInPerTk  float64
	TokensOutPerTk float64
}

// CriteriaPipeline runs the Fig. 6(b) experiment.
func CriteriaPipeline(cfg Config) ([]CriterionPipelineResult, error) {
	return CriteriaPipelineContext(context.Background(), cfg)
}

// CriteriaPipelineContext is CriteriaPipeline with cancellation.
func CriteriaPipelineContext(ctx context.Context, cfg Config) ([]CriterionPipelineResult, error) {
	var out []CriterionPipelineResult
	for _, c := range validator.Criteria() {
		run := cfg
		run.Criterion = c
		run.Methods = []Method{MethodCorrectBench}
		res, err := RunContext(ctx, run)
		if err != nil {
			return nil, err
		}
		in, outTok := res.AvgTokens(MethodCorrectBench)
		st := res.Stats(MethodCorrectBench, Groups()[0], autoeval.GradeEval2)
		out = append(out, CriterionPipelineResult{
			Criterion:      c.Name,
			Eval2Ratio:     st.Ratio,
			TokensInPerTk:  in,
			TokensOutPerTk: outTok,
		})
	}
	return out, nil
}

// RenderFig6b renders the criterion pipeline study as text.
func RenderFig6b(rows []CriterionPipelineResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 6(b): CorrectBench performance with different validation criteria\n")
	fmt.Fprintf(&sb, "%-12s %12s %16s %17s\n", "Criterion", "Eval2 ratio", "input tok/task", "output tok/task")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %11.2f%% %16.0f %17.0f\n",
			r.Criterion, r.Eval2Ratio*100, r.TokensInPerTk, r.TokensOutPerTk)
	}
	return sb.String()
}
