package harness

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"correctbench/internal/autobench"
	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/validator"
)

// CriteriaAccuracyConfig configures the Fig. 6(a) study: a corpus of
// labeled testbenches is validated with each criterion and accuracies
// are reported for all/correct/wrong testbenches.
type CriteriaAccuracyConfig struct {
	Profile *llm.Profile
	// PerTask is the number of testbenches collected per problem
	// (paper: 1560 total = 156 x 10).
	PerTask  int
	NR       int
	Seed     int64
	Problems []*dataset.Problem
	Progress io.Writer
}

// CriterionAccuracy is one bar group of Fig. 6(a).
type CriterionAccuracy struct {
	Criterion string
	Total     float64
	CorrectTB float64
	WrongTB   float64
	NTotal    int
	NCorrect  int
	NWrong    int
}

// CriteriaAccuracy runs the Fig. 6(a) experiment. A testbench is
// labeled "correct" when it parses and the golden RTL passes every
// scenario (i.e. its checker computes right reference outputs on its
// own stimuli); the validators never see the label or the golden RTL.
func CriteriaAccuracy(cfg CriteriaAccuracyConfig) ([]CriterionAccuracy, error) {
	if cfg.Profile == nil {
		cfg.Profile = llm.GPT4o()
	}
	if cfg.PerTask < 1 {
		cfg.PerTask = 10
	}
	if cfg.NR < 1 {
		cfg.NR = 20
	}
	if len(cfg.Problems) == 0 {
		cfg.Problems = dataset.All()
	}

	type labeled struct {
		verdicts map[string]bool // criterion -> "correct"
		correct  bool
	}
	var corpus []labeled

	gen := &autobench.AutoBench{Profile: cfg.Profile}
	for pi, p := range cfg.Problems {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*613))
		var acct llm.Accountant
		// One RTL group per task, shared by all criteria (as in the
		// paper's study).
		group, err := validator.GenerateRTLGroup(p, cfg.Profile, cfg.NR, rng, &acct)
		if err != nil {
			return nil, err
		}
		goldenDesign, err := p.Elaborate()
		if err != nil {
			return nil, err
		}
		for k := 0; k < cfg.PerTask; k++ {
			// Each corpus entry draws fresh traits: the corpus spans
			// many independent AutoBench runs, as in the paper.
			trait := cfg.Profile.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, rng)
			tb, err := gen.Generate(p, trait, rng, &acct)
			if err != nil {
				return nil, err
			}
			lab := labeled{verdicts: map[string]bool{}}
			if tb.SyntaxOK() {
				if res, err := tb.RunAgainstDesign(goldenDesign); err == nil && res.Pass() {
					lab.correct = true
				}
			}
			// Build the RS matrix once; judging per criterion is
			// pure matrix arithmetic.
			base := &validator.Validator{Criterion: validator.Wrong70}
			m, ok := base.BuildMatrix(tb, group)
			for _, c := range validator.Criteria() {
				if !ok {
					lab.verdicts[c.Name] = false
					continue
				}
				v := &validator.Validator{Criterion: c}
				lab.verdicts[c.Name] = v.Judge(m).Correct
			}
			corpus = append(corpus, lab)
		}
		if cfg.Progress != nil && (pi+1)%26 == 0 {
			fmt.Fprintf(cfg.Progress, "criteria accuracy: %d/%d problems\n", pi+1, len(cfg.Problems))
		}
	}

	var out []CriterionAccuracy
	for _, c := range validator.Criteria() {
		acc := CriterionAccuracy{Criterion: c.Name}
		var okTotal, okCorrect, okWrong int
		for _, lab := range corpus {
			hit := lab.verdicts[c.Name] == lab.correct
			acc.NTotal++
			if hit {
				okTotal++
			}
			if lab.correct {
				acc.NCorrect++
				if hit {
					okCorrect++
				}
			} else {
				acc.NWrong++
				if hit {
					okWrong++
				}
			}
		}
		acc.Total = ratio(okTotal, acc.NTotal)
		acc.CorrectTB = ratio(okCorrect, acc.NCorrect)
		acc.WrongTB = ratio(okWrong, acc.NWrong)
		out = append(out, acc)
	}
	return out, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderFig6a renders the accuracy study as text.
func RenderFig6a(rows []CriterionAccuracy) string {
	var sb strings.Builder
	sb.WriteString("Fig. 6(a): validation accuracy among validators\n")
	fmt.Fprintf(&sb, "%-12s %10s %14s %12s %8s\n", "Criterion", "Total", "Correct TBs", "Wrong TBs", "corpus")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %9.2f%% %13.2f%% %11.2f%%   %d TBs (%d correct / %d wrong)\n",
			r.Criterion, r.Total*100, r.CorrectTB*100, r.WrongTB*100, r.NTotal, r.NCorrect, r.NWrong)
	}
	return sb.String()
}

// CriterionPipelineResult is one point of Fig. 6(b): the whole
// CorrectBench framework run under one validation criterion.
type CriterionPipelineResult struct {
	Criterion      string
	Eval2Ratio     float64
	TokensInPerTk  float64
	TokensOutPerTk float64
}

// CriteriaPipeline runs the Fig. 6(b) experiment.
func CriteriaPipeline(cfg Config) ([]CriterionPipelineResult, error) {
	var out []CriterionPipelineResult
	for _, c := range validator.Criteria() {
		run := cfg
		run.Criterion = c
		run.Methods = []Method{MethodCorrectBench}
		res, err := Run(run)
		if err != nil {
			return nil, err
		}
		in, outTok := res.AvgTokens(MethodCorrectBench)
		st := res.Stats(MethodCorrectBench, Groups()[0], autoeval.GradeEval2)
		out = append(out, CriterionPipelineResult{
			Criterion:      c.Name,
			Eval2Ratio:     st.Ratio,
			TokensInPerTk:  in,
			TokensOutPerTk: outTok,
		})
	}
	return out, nil
}

// RenderFig6b renders the criterion pipeline study as text.
func RenderFig6b(rows []CriterionPipelineResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 6(b): CorrectBench performance with different validation criteria\n")
	fmt.Fprintf(&sb, "%-12s %12s %16s %17s\n", "Criterion", "Eval2 ratio", "input tok/task", "output tok/task")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %11.2f%% %16.0f %17.0f\n",
			r.Criterion, r.Eval2Ratio*100, r.TokensInPerTk, r.TokensOutPerTk)
	}
	return sb.String()
}
