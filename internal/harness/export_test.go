package harness

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 31, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 methods x 1 rep x 6 tasks
	if len(rows) != 1+3*6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "method" || len(rows[0]) != 12 {
		t.Errorf("header wrong: %v", rows[0])
	}
	for _, row := range rows[1:] {
		if row[4] == "" {
			t.Errorf("missing grade in %v", row)
		}
	}
}

func TestSummaryCSV(t *testing.T) {
	res, err := Run(Config{Reps: 1, Seed: 33, Problems: subset(t)})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.SummaryCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 groups x 3 metrics x 3 methods
	if len(rows) != 1+27 {
		t.Fatalf("rows = %d", len(rows))
	}
}
