// Cell-executor integration: how the harness hands its pending cells
// to an internal/exec executor (the in-process pool by default, a
// worker fleet via Config.Executor) and how a worker node turns a
// wire-form cell spec back into a simulation (NewCellRunner).
package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/exec"
	"correctbench/internal/llm"
	"correctbench/internal/obs"
	"correctbench/internal/store"
	"correctbench/internal/validator"
)

// execCell converts one pending cell into executor wire form. The
// spec names every outcome-relevant input (the same set CellKey
// hashes), so any node can rebuild and verify the cell.
func execCell(cfg *Config, c cell) exec.Cell {
	m, p := cfg.Methods[c.mi], cfg.Problems[c.pi]
	return exec.Cell{
		Index: c.idx,
		Key:   c.key,
		Spec: exec.Spec{
			Seed:           cfg.Seed,
			LLM:            cfg.Profile.Name,
			Criterion:      cfg.Criterion.Name,
			MaxCorrections: cfg.MaxCorrections,
			MaxReboots:     cfg.MaxReboots,
			NR:             cfg.NR,
			Method:         string(m),
			Rep:            c.ri,
			Problem:        p.Name,
		},
	}
}

// execJob assembles the executor invocation for a run's pending
// cells: Run simulates a cell in this process (the local pool's whole
// job, the remote executor's no-fleet fallback), Done lands a
// finished cell — result slot, store write-back, ordered release —
// regardless of where it executed. Done-side failures (a worker
// returning an outcome for the wrong problem) land in derr.
func execJob(ctx context.Context, cfg *Config, pending []cell, eval *autoeval.Evaluator,
	guard *storeGuard, emit *orderedEmitter, res *Results, workers int, derr *errorCollector,
	epoch time.Time) exec.Job {

	traceOn := cfg.Trace != nil || cfg.Observer != nil

	byIdx := make(map[int]cell, len(pending))
	cells := make([]exec.Cell, len(pending))
	for i, c := range pending {
		byIdx[c.idx] = c
		cells[i] = execCell(cfg, c)
	}

	run := func(ctx context.Context, ec exec.Cell) (store.Outcome, error) {
		c, ok := byIdx[ec.Index]
		if !ok {
			return store.Outcome{}, fmt.Errorf("harness: unknown cell index %d", ec.Index)
		}
		method, p := cfg.Methods[c.mi], cfg.Problems[c.pi]
		if cfg.CellHook != nil {
			cfg.CellHook(c.idx)
		}
		r := CellStream(cfg.Seed, method, c.ri, p.Name).Rand()
		o, err := runTask(ctx, method, p, *cfg, eval, r)
		if err != nil {
			return store.Outcome{}, fmt.Errorf("%s/%s rep %d: %w", method, p.Name, c.ri, err)
		}
		return toStoreOutcome(o), nil
	}

	done := func(r exec.Result) {
		c, ok := byIdx[r.Index]
		if !ok {
			derr.record(r.Index, fmt.Errorf("harness: executor completed unknown cell index %d", r.Index))
			return
		}
		method, p := cfg.Methods[c.mi], cfg.Problems[c.pi]
		o, ok := fromStoreOutcome(r.Outcome, p)
		if !ok {
			derr.record(r.Index, fmt.Errorf("harness: cell %d (%s/%s rep %d) completed with outcome for problem %q",
				r.Index, method, p.Name, c.ri, r.Outcome.Problem))
			return
		}
		res.Outcomes[method][c.ri][c.pi] = o
		// Assemble the cell's phase samples on a traced run: the
		// store_lookup recorded during cell resolution leads (executor
		// samples shift up one seq), the executor's own samples —
		// queue_wait, dispatch/net_roundtrip, simulate/grade with their
		// sim_* children — follow, and the store write-back below closes
		// the tree.
		var phases []obs.PhaseSample
		if traceOn {
			if guard != nil {
				phases = append(phases, obs.PhaseSample{
					Phase: obs.PhaseLookup, Seq: 0, ParentSeq: -1,
					StartUS: c.lookStartUS, DurUS: c.lookDurUS,
				})
				phases = append(phases, obs.Rebase(r.Phases, 1, -1, 0, "")...)
			} else {
				phases = r.Phases
			}
		}
		if guard != nil {
			// Persist before release, so any observer that has seen the
			// cell's event can already rely on it being resumable.
			// Write-backs are retried with backoff and then deliberately
			// dropped, never fatal (the guard counts retries, drops, and
			// breaker trips): a full disk degrades the run to uncached,
			// it does not fail it.
			var wbStart time.Time
			if traceOn {
				wbStart = time.Now() //detlint:allow store_writeback phase duration, wall-clock metadata
			}
			guard.put(ctx, c.key, r.Outcome)
			if traceOn {
				phases = append(phases, obs.PhaseSample{
					Phase: obs.PhaseWriteback, Seq: obs.NextSeq(phases), ParentSeq: -1,
					StartUS: wbStart.Sub(epoch).Microseconds(),
					DurUS:   time.Since(wbStart).Microseconds(),
				})
			}
		}
		if traceOn {
			recordCellTrace(cfg, c, method, p.Name, false, r.Node, phases)
		}
		emit.cellDone(CellEvent{
			Index: c.idx, Method: method, Rep: c.ri, Problem: p.Name,
			Outcome: o, Duration: r.Duration, Node: r.Node,
		})
	}

	return exec.Job{Cells: cells, Workers: workers, Run: run, Done: done, Trace: traceOn, Epoch: epoch}
}

// recordCellTrace lands one finished cell's phase samples in the
// run's tracing sinks: the span tree (Config.Trace, with span IDs
// derived deterministically from the cell's content address) and the
// latency aggregator (Config.Observer).
func recordCellTrace(cfg *Config, c cell, method Method, problem string, cached bool, node string, samples []obs.PhaseSample) {
	if cfg.Observer != nil {
		cfg.Observer.ObserveSamples(samples)
	}
	if cfg.Trace != nil {
		traceID := c.key.String()
		cfg.Trace.Add(obs.CellTrace{
			Index: c.idx, Method: string(method), Rep: c.ri, Problem: problem,
			Key: traceID, Cached: cached, Node: node,
			Spans: obs.BuildSpans(traceID, samples),
		})
	}
}

// maxRunnerEvaluators bounds a cell runner's per-seed fixture caches
// (mirrors the client's own evaluator retention).
const maxRunnerEvaluators = 8

// NewCellRunner builds the worker-node side of the fleet: an
// exec.Runner that rebuilds each wire-form cell into a full
// simulation — resolving the LLM profile, criterion and problem by
// name, sharing per-seed evaluator fixtures across cells — and guards
// the fleet's correctness contract by re-deriving the cell's content
// address: if this node's derivation disagrees with the
// coordinator's key, the node refuses the cell instead of silently
// computing a skewed outcome (mixed simulator versions in one fleet).
//
// st, when non-nil, is the node's local view of the shared
// content-addressed store: cells already present replay without
// simulation, and finished cells are written back (best effort; a
// store fault just leaves the cell uncached — the coordinator
// persists results authoritatively on its own store). The runner is
// safe for concurrent calls.
func NewCellRunner(st store.Store) exec.Runner {
	var (
		mu    sync.Mutex
		evals = map[int64]*autoeval.Evaluator{}
		order []int64
	)
	evaluator := func(seed int64) *autoeval.Evaluator {
		mu.Lock()
		defer mu.Unlock()
		e, ok := evals[seed]
		if !ok {
			e = autoeval.NewEvaluator(seed)
			evals[seed] = e
			order = append(order, seed)
			if len(order) > maxRunnerEvaluators {
				delete(evals, order[0])
				order = order[1:]
			}
		}
		return e
	}

	return func(ctx context.Context, ec exec.Cell) (store.Outcome, error) {
		cfg, method, p, err := configFromSpec(ec.Spec)
		if err != nil {
			return store.Outcome{}, err
		}
		if key := CellKey(cfg, method, ec.Spec.Rep, p); key != ec.Key {
			return store.Outcome{}, fmt.Errorf(
				"harness: cell key mismatch for %s/%s rep %d: coordinator sent %s, this node derives %s (mixed fleet versions?)",
				method, p.Name, ec.Spec.Rep, ec.Key, key)
		}
		if st != nil {
			if so, ok := st.Get(ec.Key); ok {
				if _, ok := fromStoreOutcome(so, p); ok {
					return so, nil
				}
			}
		}
		r := CellStream(cfg.Seed, method, ec.Spec.Rep, p.Name).Rand()
		o, err := runTask(ctx, method, p, *cfg, evaluator(EvaluatorSeed(cfg.Seed)), r)
		if err != nil {
			return store.Outcome{}, fmt.Errorf("%s/%s rep %d: %w", method, p.Name, ec.Spec.Rep, err)
		}
		so := toStoreOutcome(o)
		if st != nil {
			_ = st.Put(ec.Key, so) // best effort; coordinator store is authoritative
		}
		return so, nil
	}
}

// configFromSpec resolves a wire-form cell spec into a normalized
// harness config plus the cell's method and problem. All name
// resolution errors surface here, before any simulation.
func configFromSpec(s exec.Spec) (*Config, Method, *dataset.Problem, error) {
	method := Method(s.Method)
	known := false
	for _, m := range AllMethods() {
		if m == method {
			known = true
			break
		}
	}
	if !known {
		return nil, "", nil, fmt.Errorf("harness: unknown method %q", s.Method)
	}
	p := dataset.ByName(s.Problem)
	if p == nil {
		return nil, "", nil, fmt.Errorf("harness: unknown problem %q", s.Problem)
	}
	cfg := &Config{
		Seed:           s.Seed,
		MaxCorrections: s.MaxCorrections,
		MaxReboots:     s.MaxReboots,
		NR:             s.NR,
	}
	if s.LLM != "" {
		cfg.Profile = llm.ByName(s.LLM)
		if cfg.Profile == nil {
			return nil, "", nil, fmt.Errorf("harness: unknown LLM profile %q", s.LLM)
		}
	}
	if s.Criterion != "" {
		c, err := validator.CriterionByName(s.Criterion)
		if err != nil {
			return nil, "", nil, fmt.Errorf("harness: %w", err)
		}
		cfg.Criterion = c
	}
	cfg.Normalize()
	return cfg, method, p, nil
}
