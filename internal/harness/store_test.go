package harness

import (
	"reflect"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/store"
	"correctbench/internal/validator"
)

func storeTestProblems(t *testing.T) []*dataset.Problem {
	t.Helper()
	var out []*dataset.Problem
	for _, n := range []string{"halfadd", "dff"} {
		p := dataset.ByName(n)
		if p == nil {
			t.Fatalf("problem %s missing", n)
		}
		out = append(out, p)
	}
	return out
}

// TestStoreWarmRerun pins the store contract at the harness level: a
// warm rerun simulates nothing and reproduces the cold run's results
// exactly, and a no-store run matches both.
func TestStoreWarmRerun(t *testing.T) {
	probs := storeTestProblems(t)
	st := store.NewMemory(0)
	cfg := Config{Seed: 21, Reps: 2, Problems: probs, Store: st}

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(AllMethods()) * 2 * len(probs)
	if cold.StoreHits != 0 || cold.StoreMisses != total {
		t.Fatalf("cold hits/misses = %d/%d, want 0/%d", cold.StoreHits, cold.StoreMisses, total)
	}
	if s := st.Stats(); s.Entries != total {
		t.Fatalf("store entries = %d, want %d", s.Entries, total)
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StoreHits != total || warm.StoreMisses != 0 {
		t.Fatalf("warm hits/misses = %d/%d, want %d/0", warm.StoreHits, warm.StoreMisses, total)
	}
	if !reflect.DeepEqual(cold.Outcomes, warm.Outcomes) {
		t.Error("warm outcomes differ from cold")
	}

	plain, err := Run(Config{Seed: 21, Reps: 2, Problems: probs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outcomes, warm.Outcomes) {
		t.Error("warm outcomes differ from an uncached run")
	}
	if plain.StoreHits != 0 || plain.StoreMisses != 0 {
		t.Errorf("no-store run reported counters: %d/%d", plain.StoreHits, plain.StoreMisses)
	}
}

// TestCellKeyComposition checks that every input the key documents
// actually lands in it — equal configs agree, and each divergence
// (seed, criterion, budgets, rep, problem content) moves the key.
func TestCellKeyComposition(t *testing.T) {
	probs := storeTestProblems(t)
	base := Config{Seed: 7, Reps: 1, Problems: probs}
	base.Normalize()
	k := func(cfg Config, rep int, p *dataset.Problem) store.Key {
		cfg.Normalize()
		return CellKey(&cfg, MethodCorrectBench, rep, p)
	}

	if k(base, 0, probs[0]) != k(base, 0, probs[0]) {
		t.Fatal("identical configs produced different keys")
	}

	variants := map[string]store.Key{
		"seed":      k(Config{Seed: 8, Reps: 1, Problems: probs}, 0, probs[0]),
		"rep":       k(base, 1, probs[0]),
		"problem":   k(base, 0, probs[1]),
		"criterion": k(Config{Seed: 7, Reps: 1, Problems: probs, Criterion: validator.Wrong100}, 0, probs[0]),
		"mc":        k(Config{Seed: 7, Reps: 1, Problems: probs, MaxCorrections: intp(0)}, 0, probs[0]),
		"mr":        k(Config{Seed: 7, Reps: 1, Problems: probs, MaxReboots: intp(0)}, 0, probs[0]),
		"nr":        k(Config{Seed: 7, Reps: 1, Problems: probs, NR: intp(5)}, 0, probs[0]),
	}
	ref := k(base, 0, probs[0])
	seen := map[store.Key]string{ref: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	// AutoBench/Baseline cells never read the criterion or budgets, so
	// those knobs must NOT move their keys — a criterion sweep shares
	// two thirds of the grid with the warm store.
	kb := func(cfg Config) store.Key {
		cfg.Normalize()
		return CellKey(&cfg, MethodBaseline, 0, probs[0])
	}
	if kb(base) != kb(Config{Seed: 7, Reps: 1, Problems: probs, Criterion: validator.Wrong100, MaxReboots: intp(0)}) {
		t.Error("criterion/budget change moved a Baseline cell key")
	}

	// Explicit paper-default budgets equal nil budgets: the key hashes
	// effective values, so "default by omission" and "default by
	// explicit value" share cache entries.
	exp := k(Config{Seed: 7, Reps: 1, Problems: probs,
		MaxCorrections: intp(3), MaxReboots: intp(10), NR: intp(20)}, 0, probs[0])
	if exp != ref {
		t.Error("explicit paper defaults keyed differently from nil defaults")
	}

	// A dataset edit invalidates: a problem differing only in spec
	// text fingerprints — and therefore keys — differently.
	edited := &dataset.Problem{
		Name: probs[0].Name, Kind: probs[0].Kind, Spec: probs[0].Spec + " (edited)",
		Source: probs[0].Source, Top: probs[0].Top, Difficulty: probs[0].Difficulty,
	}
	if k(base, 0, edited) == ref {
		t.Error("spec edit did not change the cell key")
	}
}

// TestStoreMismatchedRecordIsMiss guards the identity check: a record
// stored under a cell's key but carrying another problem's payload is
// ignored, not replayed.
func TestStoreMismatchedRecordIsMiss(t *testing.T) {
	probs := storeTestProblems(t)
	st := store.NewMemory(0)
	cfg := Config{Seed: 3, Reps: 1, Problems: probs[:1], Store: st}
	cfg.Normalize()
	key := CellKey(&cfg, MethodBaseline, 0, probs[0])
	if err := st.Put(key, store.Outcome{Problem: "someone_else", Grade: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreHits != 0 {
		t.Errorf("mismatched record replayed (%d hits)", res.StoreHits)
	}
}

func intp(v int) *int { return &v }
