package harness

import (
	"encoding/csv"
	"io"
	"strconv"

	"correctbench/internal/autoeval"
)

// WriteCSV exports every task outcome as CSV (one row per method,
// repetition and task), for external plotting of the tables and
// figures.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"method", "rep", "problem", "kind", "grade",
		"validator_intervened", "corrector_shaped", "final_validated",
		"corrections", "reboots", "tokens_in", "tokens_out",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, method := range r.Config.Methods {
		for rep, tasks := range r.Outcomes[method] {
			for _, o := range tasks {
				row := []string{
					string(method),
					strconv.Itoa(rep),
					o.Problem,
					o.Kind.String(),
					o.Grade.String(),
					strconv.FormatBool(o.ValidatorIntervened),
					strconv.FormatBool(o.CorrectorShaped),
					strconv.FormatBool(o.FinalValidated),
					strconv.Itoa(o.Corrections),
					strconv.Itoa(o.Reboots),
					strconv.Itoa(o.TokensIn),
					strconv.Itoa(o.TokensOut),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SummaryCSV exports the aggregated Table I statistics as CSV.
func (r *Results) SummaryCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "metric", "method", "ratio", "avg_count"}); err != nil {
		return err
	}
	for _, g := range Groups() {
		for _, metric := range []autoeval.Grade{autoeval.GradeEval2, autoeval.GradeEval1, autoeval.GradeEval0} {
			for _, m := range r.Config.Methods {
				st := r.Stats(m, g, metric)
				row := []string{
					g.Name, metric.String(), string(m),
					strconv.FormatFloat(st.Ratio, 'f', 4, 64),
					strconv.FormatFloat(st.AvgCount, 'f', 1, 64),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
