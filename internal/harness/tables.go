package harness

import (
	"fmt"
	"strings"

	"correctbench/internal/autoeval"
)

// Table1 renders the main-results table in the layout of the paper's
// Table I: pass ratios and average pass counts for each method, metric
// and group.
func (r *Results) Table1() string {
	var sb strings.Builder
	methods := []Method{MethodCorrectBench, MethodAutoBench, MethodBaseline}
	sb.WriteString("TABLE I: MAIN RESULTS (pass ratio % | avg #tasks)\n")
	fmt.Fprintf(&sb, "%-6s %-6s", "Group", "Metric")
	for _, m := range methods {
		fmt.Fprintf(&sb, " | %-22s", m)
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 6+1+6+3*25) + "\n")
	for _, g := range Groups() {
		n := r.groupSize(g)
		for _, metric := range []autoeval.Grade{autoeval.GradeEval2, autoeval.GradeEval1, autoeval.GradeEval0} {
			fmt.Fprintf(&sb, "%-6s %-6s", groupLabel(g.Name, n), metric)
			base := r.Stats(MethodBaseline, g, metric)
			for _, m := range methods {
				st := r.Stats(m, g, metric)
				delta := (st.Ratio - base.Ratio) * 100
				fmt.Fprintf(&sb, " | %6.2f%% (%+6.2f%%) %5.1f", st.Ratio*100, delta, st.AvgCount)
			}
			sb.WriteString("\n")
		}
	}
	sb.WriteString("(values in parentheses: improvement over the Baseline ratio)\n")
	return sb.String()
}

func groupLabel(name string, n int) string {
	return fmt.Sprintf("%s", name)
}

func (r *Results) groupSize(g Group) int {
	for _, m := range r.Config.Methods {
		reps := r.Outcomes[m]
		if len(reps) == 0 {
			continue
		}
		n := 0
		for _, o := range reps[0] {
			if g.Filter(o) {
				n++
			}
		}
		return n
	}
	return 0
}

// Table2 renders the AutoEval criterion definitions (paper Table II).
func Table2() string {
	var sb strings.Builder
	sb.WriteString("TABLE II: DEFINITIONS OF EVALUATION CRITERIA IN AUTOEVAL\n")
	defs := autoeval.Definitions()
	for _, g := range []autoeval.Grade{autoeval.GradeFailed, autoeval.GradeEval0, autoeval.GradeEval1, autoeval.GradeEval2} {
		fmt.Fprintf(&sb, "%-8s %s\n", g, defs[g])
	}
	return sb.String()
}

// Table3 renders the validator/corrector contribution table (paper
// Table III).
func (r *Results) Table3() string {
	var sb strings.Builder
	sb.WriteString("TABLE III: CONTRIBUTIONS OF VALIDATOR AND CORRECTOR (avg Eval2-passed tasks)\n")
	fmt.Fprintf(&sb, "%-6s %12s %10s %6s %6s %6s %10s\n",
		"Group", "CorrectBench", "AutoBench", "Gain", "Val.", "Corr.", "Corr./Val.")
	for _, a := range r.Attribute() {
		frac := 0.0
		if a.Validator > 0 {
			frac = a.Corrector / a.Validator
		}
		fmt.Fprintf(&sb, "%-6s %12.1f %10.1f %6.1f %6.1f %6.1f %9.1f%%\n",
			a.Group, a.CorrectBench, a.AutoBench, a.Gain, a.Validator, a.Corrector, frac*100)
	}
	sb.WriteString("(Corr. is counted within Val., as in the paper)\n")
	return sb.String()
}

// Fig7Row holds the stacked-bar data for one method under one LLM.
type Fig7Row struct {
	Method Method
	Shares map[autoeval.Grade]float64
}

// Fig7Rows computes the stacked-bar shares (exact-grade fractions).
func (r *Results) Fig7Rows() []Fig7Row {
	var out []Fig7Row
	for _, m := range r.Config.Methods {
		row := Fig7Row{Method: m, Shares: map[autoeval.Grade]float64{}}
		for _, g := range []autoeval.Grade{autoeval.GradeEval2, autoeval.GradeEval1, autoeval.GradeEval0, autoeval.GradeFailed} {
			row.Shares[g] = r.GradeShare(m, g)
		}
		out = append(out, row)
	}
	return out
}

// RenderFig7 renders one LLM's panel of Fig. 7 as text bars.
func RenderFig7(title string, rows []Fig7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 7 panel: %s (share of 156 tasks by exact grade)\n", title)
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-13s", row.Method)
		for _, g := range []autoeval.Grade{autoeval.GradeEval2, autoeval.GradeEval1, autoeval.GradeEval0, autoeval.GradeFailed} {
			fmt.Fprintf(&sb, " %s %5.1f%%", g, row.Shares[g]*100)
		}
		sb.WriteString("\n")
		sb.WriteString("             |")
		for _, g := range []autoeval.Grade{autoeval.GradeEval2, autoeval.GradeEval1, autoeval.GradeEval0, autoeval.GradeFailed} {
			n := int(row.Shares[g]*50 + 0.5)
			sb.WriteString(strings.Repeat(sym(g), n))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

func sym(g autoeval.Grade) string {
	switch g {
	case autoeval.GradeEval2:
		return "#"
	case autoeval.GradeEval1:
		return "+"
	case autoeval.GradeEval0:
		return "-"
	default:
		return "."
	}
}
