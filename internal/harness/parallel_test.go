package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"correctbench/internal/dataset"
)

// TestParallelMatchesSequential is the harness's core reproducibility
// guarantee: a worker pool of any size produces bit-for-bit the
// results of a sequential run, including the formatted tables and the
// progress text.
func TestParallelMatchesSequential(t *testing.T) {
	probs := subset(t)
	run := func(workers int) (*Results, string) {
		var progress bytes.Buffer
		res, err := Run(Config{
			Reps: 2, Seed: 33, Problems: probs, Workers: workers, Progress: &progress,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, progress.String()
	}
	seqRes, seqProg := run(1)
	for _, workers := range []int{2, 8} {
		parRes, parProg := run(workers)
		if !reflect.DeepEqual(seqRes.Outcomes, parRes.Outcomes) {
			t.Errorf("workers=%d: outcomes differ from sequential run", workers)
		}
		if got, want := parRes.Table1(), seqRes.Table1(); got != want {
			t.Errorf("workers=%d: Table1 differs:\n%s\n---\n%s", workers, got, want)
		}
		if got, want := parRes.Table3(), seqRes.Table3(); got != want {
			t.Errorf("workers=%d: Table3 differs", workers)
		}
		if parProg != seqProg {
			t.Errorf("workers=%d: progress text differs:\n%q\n---\n%q", workers, parProg, seqProg)
		}
	}
}

// TestCellStreamIndependence checks that a cell's stream does not
// depend on which other cells exist: restricting the problem set must
// reproduce the surviving cells exactly.
func TestCellStreamIndependence(t *testing.T) {
	probs := subset(t)
	full, err := Run(Config{Reps: 1, Seed: 55, Problems: probs, Methods: []Method{MethodAutoBench}})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(Config{Reps: 1, Seed: 55, Problems: probs[3:], Methods: []Method{MethodAutoBench}})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range part.Outcomes[MethodAutoBench][0] {
		want := full.Outcomes[MethodAutoBench][0][3+i]
		if !reflect.DeepEqual(o, want) {
			t.Errorf("task %s: outcome changed when run in a smaller set", o.Problem)
		}
	}
}

// TestMethodStreamsDiffer guards the fixed seed-mixing bug: the old
// int64(len(method))*104729 term gave every same-length method name
// the same stream.
func TestMethodStreamsDiffer(t *testing.T) {
	a := CellStream(1, Method("AAAA"), 0, "cnt8")
	b := CellStream(1, Method("BBBB"), 0, "cnt8")
	if a.Seed() == b.Seed() {
		t.Fatal("same-length method names derive identical streams")
	}
}

// TestParallelFirstErrorIsDeterministic checks that the error
// reported by a parallel run is the canonically earliest one — what a
// sequential run would hit first.
func TestParallelFirstErrorIsDeterministic(t *testing.T) {
	// An unelaboratable problem makes every cell that touches it fail.
	bad := func(name string) *dataset.Problem {
		return &dataset.Problem{
			Name: name, Kind: dataset.CMB, Spec: "broken",
			Source: "module " + name + "(input a, output b); endmodule garbage",
			Top:    name, Difficulty: 1,
		}
	}
	probs := append(subset(t), bad("zz_bad1"), bad("zz_bad2"))
	var firstMsg string
	for _, workers := range []int{1, 4} {
		_, err := Run(Config{Reps: 1, Seed: 3, Problems: probs, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if !strings.Contains(err.Error(), "zz_bad1") {
			t.Errorf("workers=%d: error is not the canonically first one: %v", workers, err)
		}
		if firstMsg == "" {
			firstMsg = err.Error()
		} else if err.Error() != firstMsg {
			t.Errorf("workers=%d: error %q differs from sequential %q", workers, err.Error(), firstMsg)
		}
	}
}

// TestCriteriaAccuracyParallelMatchesSequential pins the corpus-study
// variant of the same guarantee.
func TestCriteriaAccuracyParallelMatchesSequential(t *testing.T) {
	probs := subset(t)
	run := func(workers int) []CriterionAccuracy {
		rows, err := CriteriaAccuracy(CriteriaAccuracyConfig{
			PerTask: 2, NR: 10, Seed: 19, Problems: probs, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	seq := run(1)
	for _, workers := range []int{3, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: accuracy rows differ from sequential run", workers)
		}
	}
}
