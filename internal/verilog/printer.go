package verilog

import (
	"fmt"
	"strings"
)

// Print renders a source file back to Verilog text in a canonical
// format. Parse(Print(f)) is structurally identical to f (round-trip
// stability is property-tested).
func Print(f *SourceFile) string {
	var sb strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			sb.WriteString("\n")
		}
		printModule(&sb, m)
	}
	return sb.String()
}

// PrintModule renders a single module.
func PrintModule(m *Module) string {
	var sb strings.Builder
	printModule(&sb, m)
	return sb.String()
}

func printModule(sb *strings.Builder, m *Module) {
	// Split items: header parameters stay inline when present.
	var ports []*Decl
	portNames := map[string]bool{}
	for _, it := range m.Items {
		if d, ok := it.(*Decl); ok && d.Kind.IsPort() {
			ports = append(ports, d)
			for _, n := range d.Names {
				portNames[n] = true
			}
		}
	}
	fmt.Fprintf(sb, "module %s", m.Name)
	if len(ports) > 0 {
		sb.WriteString("(\n")
		for i, d := range ports {
			sb.WriteString("    ")
			sb.WriteString(declHead(d))
			sb.WriteString(" ")
			sb.WriteString(strings.Join(d.Names, ", "))
			if i < len(ports)-1 {
				sb.WriteString(",")
			}
			sb.WriteString("\n")
		}
		sb.WriteString(")")
	} else if len(m.PortOrder) > 0 {
		fmt.Fprintf(sb, "(%s)", strings.Join(m.PortOrder, ", "))
	}
	sb.WriteString(";\n")
	for _, it := range m.Items {
		if d, ok := it.(*Decl); ok && d.Kind.IsPort() {
			continue // already in header
		} else if ok && d.Kind == DeclParameter {
			fmt.Fprintf(sb, "    parameter %s%s = %s;\n", rangeStr(d.Range), d.Names[0], ExprString(d.Init))
			continue
		}
		printItem(sb, it, "    ")
	}
	sb.WriteString("endmodule\n")
}

func declHead(d *Decl) string {
	s := d.Kind.String()
	if d.IsReg {
		s += " reg"
	}
	if d.Signed {
		s += " signed"
	}
	if d.Range != nil {
		s += " " + strings.TrimSpace(rangeStr(d.Range))
	}
	return s
}

func rangeStr(r *Range) string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf("[%s:%s] ", ExprString(r.MSB), ExprString(r.LSB))
}

func printItem(sb *strings.Builder, it Item, indent string) {
	switch x := it.(type) {
	case *Decl:
		switch x.Kind {
		case DeclLocalparam:
			fmt.Fprintf(sb, "%slocalparam %s%s = %s;\n", indent, rangeStr(x.Range), x.Names[0], ExprString(x.Init))
		default:
			fmt.Fprintf(sb, "%s%s %s;\n", indent, declHead(x), strings.Join(x.Names, ", "))
		}
	case *ContAssign:
		fmt.Fprintf(sb, "%sassign %s = %s;\n", indent, ExprString(x.LHS), ExprString(x.RHS))
	case *Always:
		if !x.Star && len(x.Sens) == 0 {
			fmt.Fprintf(sb, "%salways", indent)
		} else {
			fmt.Fprintf(sb, "%salways @(%s)", indent, sensString(x))
		}
		printBody(sb, x.Body, indent)
	case *Initial:
		fmt.Fprintf(sb, "%sinitial", indent)
		printBody(sb, x.Body, indent)
	case *Instance:
		fmt.Fprintf(sb, "%s%s", indent, x.Module)
		if len(x.Params) > 0 {
			fmt.Fprintf(sb, " #(%s)", connString(x.Params))
		}
		fmt.Fprintf(sb, " %s(%s);\n", x.Name, connString(x.Conns))
	}
}

func connString(conns []Connection) string {
	parts := make([]string, len(conns))
	for i, c := range conns {
		if c.Name != "" {
			parts[i] = fmt.Sprintf(".%s(%s)", c.Name, ExprString(c.Expr))
		} else {
			parts[i] = ExprString(c.Expr)
		}
	}
	return strings.Join(parts, ", ")
}

func sensString(a *Always) string {
	if a.Star {
		return "*"
	}
	parts := make([]string, len(a.Sens))
	for i, s := range a.Sens {
		if s.Edge == EdgeNone {
			parts[i] = s.Sig
		} else {
			parts[i] = s.Edge.String() + " " + s.Sig
		}
	}
	return strings.Join(parts, " or ")
}

// StmtString renders one statement exactly as the printer emits it
// inside a process body. Structurally identical statements render
// identically, which is what the batch simulator's patch detection
// compares to find the process bodies a mutant actually changed.
func StmtString(s Stmt) string {
	var sb strings.Builder
	printStmt(&sb, s, "")
	return sb.String()
}

// printBody prints a statement that follows a header (always/initial),
// inline for blocks, indented on the next line otherwise.
func printBody(sb *strings.Builder, s Stmt, indent string) {
	if _, ok := s.(*Block); ok {
		sb.WriteString(" ")
		printStmt(sb, s, indent)
	} else {
		sb.WriteString("\n")
		sb.WriteString(indent + "    ")
		printStmt(sb, s, indent+"    ")
	}
}

func printStmt(sb *strings.Builder, s Stmt, indent string) {
	switch x := s.(type) {
	case *Null:
		sb.WriteString(";\n")
	case *Block:
		sb.WriteString("begin")
		if x.Name != "" {
			sb.WriteString(" : " + x.Name)
		}
		sb.WriteString("\n")
		for _, st := range x.Stmts {
			sb.WriteString(indent + "    ")
			printStmt(sb, st, indent+"    ")
		}
		sb.WriteString(indent + "end\n")
	case *Assign:
		op := "="
		if x.NonBlocking {
			op = "<="
		}
		fmt.Fprintf(sb, "%s %s %s;\n", ExprString(x.LHS), op, ExprString(x.RHS))
	case *If:
		fmt.Fprintf(sb, "if (%s) ", ExprString(x.Cond))
		printNested(sb, x.Then, indent)
		if x.Else != nil {
			sb.WriteString(indent)
			sb.WriteString("else ")
			printNested(sb, x.Else, indent)
		}
	case *Case:
		fmt.Fprintf(sb, "%s (%s)\n", x.Kind, ExprString(x.Expr))
		for _, item := range x.Items {
			sb.WriteString(indent + "    ")
			if item.Exprs == nil {
				sb.WriteString("default")
			} else {
				labels := make([]string, len(item.Exprs))
				for i, e := range item.Exprs {
					labels[i] = ExprString(e)
				}
				sb.WriteString(strings.Join(labels, ", "))
			}
			sb.WriteString(": ")
			printNested(sb, item.Body, indent+"    ")
		}
		sb.WriteString(indent + "endcase\n")
	case *For:
		fmt.Fprintf(sb, "for (%s; %s; %s) ",
			assignHead(x.Init), ExprString(x.Cond), assignHead(x.Step))
		printNested(sb, x.Body, indent)
	case *Repeat:
		fmt.Fprintf(sb, "repeat (%s) ", ExprString(x.Count))
		printNested(sb, x.Body, indent)
	case *Delay:
		fmt.Fprintf(sb, "#%s ", ExprString(x.Amount))
		if _, isNull := x.Body.(*Null); isNull {
			sb.WriteString(";\n")
		} else {
			printNested(sb, x.Body, indent)
		}
	case *SysCall:
		sb.WriteString(x.Name)
		if len(x.Args) > 0 {
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = ExprString(a)
			}
			fmt.Fprintf(sb, "(%s)", strings.Join(args, ", "))
		}
		sb.WriteString(";\n")
	default:
		sb.WriteString("/* unknown stmt */;\n")
	}
}

func assignHead(a *Assign) string {
	op := "="
	if a.NonBlocking {
		op = "<="
	}
	return fmt.Sprintf("%s %s %s", ExprString(a.LHS), op, ExprString(a.RHS))
}

// printNested prints a sub-statement of if/for/case arms, keeping
// blocks inline.
func printNested(sb *strings.Builder, s Stmt, indent string) {
	printStmt(sb, s, indent)
}

// ExprString renders an expression with full parenthesization of
// binary and ternary sub-expressions, which keeps printing simple and
// round-trip safe.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *Number:
		if x.Text != "" {
			return x.Text
		}
		if x.Width == 0 {
			v, ok := x.Val.Uint64()
			if ok {
				return fmt.Sprintf("%d", v)
			}
			return "32'b" + x.Val.String()
		}
		return x.Val.VerilogLiteral()
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *Unary:
		return fmt.Sprintf("%s(%s)", x.Op, ExprString(x.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), x.Op, ExprString(x.Y))
	case *Ternary:
		return fmt.Sprintf("((%s) ? (%s) : (%s))", ExprString(x.Cond), ExprString(x.Then), ExprString(x.Else))
	case *Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = ExprString(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repl:
		return fmt.Sprintf("{%s{%s}}", ExprString(x.Count), ExprString(x.Value))
	case *Index:
		return fmt.Sprintf("%s[%s]", ExprString(x.X), ExprString(x.Index))
	case *PartSelect:
		return fmt.Sprintf("%s[%s:%s]", ExprString(x.X), ExprString(x.MSB), ExprString(x.LSB))
	default:
		return "/*?*/"
	}
}
