package verilog

import (
	"strings"
	"testing"

	"correctbench/internal/logic"
)

const muxSrc = `
// 2:1 multiplexer
module mux2(
    input [3:0] a,
    input [3:0] b,
    input sel,
    output [3:0] y
);
    assign y = sel ? b : a;
endmodule
`

const counterSrc = `
module counter(
    input clk,
    input rst,
    input en,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst)
            q <= 8'd0;
        else if (en)
            q <= q + 8'd1;
    end
endmodule
`

func TestParseMux(t *testing.T) {
	f, err := Parse(muxSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Module("mux2")
	if m == nil {
		t.Fatal("module mux2 not found")
	}
	ports := m.Ports()
	if len(ports) != 4 {
		t.Fatalf("port decls = %d, want 4", len(ports))
	}
	if ports[0].Kind != DeclInput || ports[0].Range == nil {
		t.Errorf("port a wrong: %+v", ports[0])
	}
	if got := len(m.PortOrder); got != 4 {
		t.Errorf("port order len = %d", got)
	}
	var assigns int
	for _, it := range m.Items {
		if _, ok := it.(*ContAssign); ok {
			assigns++
		}
	}
	if assigns != 1 {
		t.Errorf("assigns = %d", assigns)
	}
}

func TestParseCounter(t *testing.T) {
	f := MustParse(counterSrc)
	m := f.Module("counter")
	var alw *Always
	for _, it := range m.Items {
		if a, ok := it.(*Always); ok {
			alw = a
		}
	}
	if alw == nil {
		t.Fatal("no always block")
	}
	if alw.Star || len(alw.Sens) != 1 || alw.Sens[0].Edge != EdgePos || alw.Sens[0].Sig != "clk" {
		t.Errorf("sensitivity wrong: %+v", alw.Sens)
	}
	blk, ok := alw.Body.(*Block)
	if !ok || len(blk.Stmts) != 1 {
		t.Fatalf("body not a 1-stmt block: %T", alw.Body)
	}
	ifst, ok := blk.Stmts[0].(*If)
	if !ok {
		t.Fatalf("not if: %T", blk.Stmts[0])
	}
	a, ok := ifst.Then.(*Assign)
	if !ok || !a.NonBlocking {
		t.Errorf("then branch not NBA: %#v", ifst.Then)
	}
}

func TestParseNumberForms(t *testing.T) {
	cases := []struct {
		src   string
		width int
		val   string
	}{
		{"4'b1010", 4, "1010"},
		{"4'b10x0", 4, "10x0"},
		{"8'hff", 8, "11111111"},
		{"8'hzz", 8, "zzzzzzzz"},
		{"3'o5", 3, "101"},
		{"4'd9", 4, "1001"},
		{"2'b1_0", 2, "10"},
	}
	for _, c := range cases {
		n, err := parseNumber(Token{Kind: TokNumber, Text: c.src})
		if err != nil {
			t.Errorf("parseNumber(%q): %v", c.src, err)
			continue
		}
		if n.Width != c.width || n.Val.String() != c.val {
			t.Errorf("parseNumber(%q) = width %d val %s, want %d %s", c.src, n.Width, n.Val, c.width, c.val)
		}
	}
	if _, err := parseNumber(Token{Kind: TokNumber, Text: "4'b"}); err == nil {
		t.Error("accepted digitless literal")
	}
	// Unsized decimal becomes 32-bit.
	n, err := parseNumber(Token{Kind: TokNumber, Text: "42"})
	if err != nil || n.Width != 0 {
		t.Errorf("unsized literal: %v %v", n, err)
	}
	if v, _ := n.Val.Uint64(); v != 42 {
		t.Errorf("unsized value = %d", v)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("module m(input a, input b, input c, output y); assign y = a | b & c; endmodule")
	ca := findAssign(f.Modules[0])
	bin, ok := ca.RHS.(*Binary)
	if !ok || bin.Op != "|" {
		t.Fatalf("top op = %v", DumpKind(ca.RHS))
	}
	inner, ok := bin.Y.(*Binary)
	if !ok || inner.Op != "&" {
		t.Errorf("& should bind tighter than |: %v", DumpKind(bin.Y))
	}
}

func TestParseTernaryRightAssoc(t *testing.T) {
	f := MustParse("module m(input a, input b, output y); assign y = a ? b : a ? 1'b0 : 1'b1; endmodule")
	ca := findAssign(f.Modules[0])
	tern, ok := ca.RHS.(*Ternary)
	if !ok {
		t.Fatal("not ternary")
	}
	if _, ok := tern.Else.(*Ternary); !ok {
		t.Error("ternary not right associative")
	}
}

func TestParseConcatReplSeparate(t *testing.T) {
	f := MustParse("module m(input [3:0] a, output [7:0] y); assign y = {{4{a[3]}}, a}; endmodule")
	ca := findAssign(f.Modules[0])
	c, ok := ca.RHS.(*Concat)
	if !ok || len(c.Parts) != 2 {
		t.Fatalf("not 2-part concat: %v", DumpKind(ca.RHS))
	}
	if _, ok := c.Parts[0].(*Repl); !ok {
		t.Errorf("first part not replication: %v", DumpKind(c.Parts[0]))
	}
}

func TestParseCaseKinds(t *testing.T) {
	src := `
module m(input [1:0] s, output reg y);
    always @(*) begin
        casez (s)
            2'b1?: y = 1'b1;
            default: y = 1'b0;
        endcase
    end
endmodule`
	f := MustParse(src)
	var cs *Case
	WalkStmts(findAlways(f.Modules[0]).Body, func(s Stmt) {
		if c, ok := s.(*Case); ok {
			cs = c
		}
	})
	if cs == nil || cs.Kind != CaseZ {
		t.Fatalf("casez not parsed: %+v", cs)
	}
	if len(cs.Items) != 2 || cs.Items[1].Exprs != nil {
		t.Errorf("case items wrong: %d", len(cs.Items))
	}
}

func TestParseInstance(t *testing.T) {
	src := `
module top(input a, output y);
    wire w;
    inv u1(.in(a), .out(w));
    inv u2(w, y);
endmodule
module inv(input in, output out);
    assign out = ~in;
endmodule`
	f := MustParse(src)
	top := f.Module("top")
	var insts []*Instance
	for _, it := range top.Items {
		if inst, ok := it.(*Instance); ok {
			insts = append(insts, inst)
		}
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	if insts[0].Conns[0].Name != "in" || insts[1].Conns[0].Name != "" {
		t.Errorf("connection styles wrong: %+v %+v", insts[0].Conns, insts[1].Conns)
	}
}

func TestParseParameters(t *testing.T) {
	src := `
module m #(parameter W = 4, parameter INIT = 8'hff) (input [W-1:0] a, output [W-1:0] y);
    localparam TOP = W - 1;
    assign y = a;
endmodule`
	f := MustParse(src)
	m := f.Modules[0]
	var params, locals int
	for _, it := range m.Items {
		if d, ok := it.(*Decl); ok {
			switch d.Kind {
			case DeclParameter:
				params++
			case DeclLocalparam:
				locals++
			}
		}
	}
	if params != 2 || locals != 1 {
		t.Errorf("params = %d locals = %d", params, locals)
	}
}

func TestParseForAndRepeat(t *testing.T) {
	src := `
module m(input [7:0] a, output reg [3:0] n);
    integer i;
    always @(*) begin
        n = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            if (a[i]) n = n + 4'd1;
    end
endmodule`
	f := MustParse(src)
	var forCount int
	WalkStmts(findAlways(f.Modules[0]).Body, func(s Stmt) {
		if _, ok := s.(*For); ok {
			forCount++
		}
	})
	if forCount != 1 {
		t.Errorf("for loops = %d", forCount)
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	bad := []string{
		"module ; endmodule",
		"module m(input a; endmodule",
		"module m(input a); assign = 1; endmodule",
		"module m(input a); always @(posedge) x <= 1; endmodule",
		"module m(input a); assign y = (a; endmodule",
		"module m(input a);",
		"",
		"garbage",
	}
	for _, src := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
			continue
		}
		if pe, ok := err.(*ParseError); !ok || pe.Pos.Line == 0 {
			t.Errorf("Parse(%q) error lacks position: %v", src, err)
		}
	}
}

func TestParseWireWithInit(t *testing.T) {
	f := MustParse("module m(input a, output y); wire w = ~a; assign y = w; endmodule")
	m := f.Modules[0]
	var assigns int
	for _, it := range m.Items {
		if _, ok := it.(*ContAssign); ok {
			assigns++
		}
	}
	if assigns != 2 {
		t.Errorf("wire init should synthesize assign; got %d assigns", assigns)
	}
}

func TestExprIdentsAndLHSTargets(t *testing.T) {
	f := MustParse("module m(input [3:0] a, input [3:0] b, output [3:0] y); assign y = (a & b) | a; endmodule")
	ca := findAssign(f.Modules[0])
	ids := ExprIdents(ca.RHS)
	if len(ids) != 2 {
		t.Errorf("idents = %v", ids)
	}
	if tg := LHSTargets(ca.LHS); len(tg) != 1 || tg[0] != "y" {
		t.Errorf("targets = %v", tg)
	}
}

func findAssign(m *Module) *ContAssign {
	for _, it := range m.Items {
		if ca, ok := it.(*ContAssign); ok {
			return ca
		}
	}
	return nil
}

func findAlways(m *Module) *Always {
	for _, it := range m.Items {
		if a, ok := it.(*Always); ok {
			return a
		}
	}
	return nil
}

// ---- round-trip properties ----

var roundTripSources = []string{
	muxSrc,
	counterSrc,
	`module alu(input [7:0] a, input [7:0] b, input [1:0] op, output reg [7:0] y);
    always @(*) begin
        case (op)
            2'b00: y = a + b;
            2'b01: y = a - b;
            2'b10: y = a & b;
            default: y = a ^ b;
        endcase
    end
endmodule`,
	`module shift(input clk, input [1:0] amount, output reg [63:0] q);
    always @(posedge clk) begin
        q <= (q >>> 8) | {8{q[63]}};
    end
endmodule`,
	`module fsm(input clk, input rst, input x, output reg z);
    reg [1:0] state;
    localparam S0 = 0;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= x ? 2'd1 : 2'd0;
                2'd1: state <= x ? 2'd1 : 2'd2;
                2'd2: state <= x ? 2'd1 : 2'd0;
                default: state <= 2'd0;
            endcase
        end
    end
    always @(*) z = (state == 2'd2) & x;
endmodule`,
	`module t(input a, input b, output y, output w);
    assign y = a === 1'bx, w = {a, b} != 2'b01;
endmodule`,
}

func TestPrintParseRoundTrip(t *testing.T) {
	for i, src := range roundTripSources {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		p1 := Print(f1)
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("source %d reparse failed: %v\n%s", i, err, p1)
		}
		p2 := Print(f2)
		if p1 != p2 {
			t.Errorf("source %d not round-trip stable:\n--- first ---\n%s\n--- second ---\n%s", i, p1, p2)
		}
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	f := MustParse(counterSrc)
	c := CloneFile(f)
	if Print(f) != Print(c) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	ca := findAlways(c.Modules[0])
	ca.Sens[0].Edge = EdgeNeg
	if strings.Contains(Print(f), "negedge") {
		t.Error("clone shares state with original")
	}
}

func TestNumberHelperConstructors(t *testing.T) {
	n := Num(7)
	if v, _ := n.Val.Uint64(); v != 7 || n.Width != 0 {
		t.Errorf("Num: %+v", n)
	}
	s := SizedNum(4, 9)
	if s.Width != 4 || !s.Val.Equal(logic.FromUint64(4, 9)) {
		t.Errorf("SizedNum: %+v", s)
	}
}
