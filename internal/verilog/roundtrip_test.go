package verilog_test

// Whole-corpus round-trip property: every golden source in the dataset
// survives parse -> print -> parse with a stable second print. Kept in
// an external test package to exercise the public API surface and to
// avoid an import cycle with internal/dataset.

import (
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/verilog"
)

func TestDatasetRoundTrip(t *testing.T) {
	for _, p := range dataset.All() {
		f1, err := verilog.Parse(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		p1 := verilog.Print(f1)
		f2, err := verilog.Parse(p1)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", p.Name, err, p1)
		}
		if p2 := verilog.Print(f2); p1 != p2 {
			t.Errorf("%s: print not stable", p.Name)
		}
	}
}

func TestDatasetClone(t *testing.T) {
	for _, p := range dataset.All() {
		m, err := p.Module()
		if err != nil {
			t.Fatal(err)
		}
		c := verilog.CloneModule(m)
		if verilog.PrintModule(c) != verilog.PrintModule(m) {
			t.Errorf("%s: clone differs", p.Name)
		}
	}
}
