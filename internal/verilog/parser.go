package verilog

import (
	"fmt"
	"strconv"
	"strings"

	"correctbench/internal/logic"
)

// ParseError is a syntax error with source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete source file.
func Parse(src string) (*SourceFile, error) {
	p := &parser{toks: Tokens(src)}
	if last := p.toks[len(p.toks)-1]; last.Kind == TokError {
		return nil, &ParseError{Pos: last.Pos, Msg: last.Text}
	}
	file := &SourceFile{}
	for !p.at(TokEOF) {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	if len(file.Modules) == 0 {
		return nil, &ParseError{Pos: Pos{1, 1}, Msg: "no module found"}
	}
	return file, nil
}

// MustParse parses src and panics on error; for tests and built-in
// golden sources.
func MustParse(src string) *SourceFile {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token          { return p.toks[p.pos] }
func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *parser) is(text string) bool { return p.cur().Is(text) }

func (p *parser) next() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	if p.is(text) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %q, found %q", text, p.cur().Text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) ident() (string, error) {
	if p.at(TokIdent) {
		return p.next().Text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().Text)
}

// ---- module ----

func (p *parser) parseModule() (*Module, error) {
	start := p.cur().Pos
	if _, err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, Pos: start}

	if p.accept("#") {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			d, err := p.parseParamDecl(DeclParameter)
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, d)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}

	if p.accept("(") {
		if !p.is(")") {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}

	for !p.is("endmodule") {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF inside module %s", name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

// parsePortList handles both ANSI headers (input [3:0] a, output reg b)
// and classic headers (a, b, c).
func (p *parser) parsePortList(m *Module) error {
	// Peek: ANSI starts with a direction keyword.
	for {
		switch {
		case p.is("input") || p.is("output") || p.is("inout"):
			d, err := p.parsePortDecl()
			if err != nil {
				return err
			}
			// In an ANSI header, subsequent bare identifiers continue
			// the previous declaration until the next direction keyword.
			m.Items = append(m.Items, d)
			m.PortOrder = append(m.PortOrder, d.Names...)
		case p.at(TokIdent):
			n, _ := p.ident()
			m.PortOrder = append(m.PortOrder, n)
		default:
			return p.errf("expected port declaration, found %q", p.cur().Text)
		}
		if !p.accept(",") {
			return nil
		}
	}
}

func (p *parser) parsePortDecl() (*Decl, error) {
	pos := p.cur().Pos
	var kind DeclKind
	switch {
	case p.accept("input"):
		kind = DeclInput
	case p.accept("output"):
		kind = DeclOutput
	case p.accept("inout"):
		kind = DeclInout
	default:
		return nil, p.errf("expected port direction")
	}
	d := &Decl{Kind: kind, Pos: pos}
	if p.accept("reg") {
		d.IsReg = true
	} else {
		p.accept("wire")
	}
	if p.accept("signed") {
		d.Signed = true
	}
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	d.Range = rng
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, n)
		// A following comma may start a new declaration (direction
		// keyword) — leave it for the caller — or continue this one.
		if p.is(",") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokIdent {
			p.next()
			continue
		}
		return d, nil
	}
}

func (p *parser) parseParamDecl(kind DeclKind) (*Decl, error) {
	pos := p.cur().Pos
	switch kind {
	case DeclParameter:
		if !p.accept("parameter") {
			return nil, p.errf("expected parameter")
		}
	case DeclLocalparam:
		if !p.accept("localparam") {
			return nil, p.errf("expected localparam")
		}
	}
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Decl{Kind: kind, Range: rng, Names: []string{name}, Init: val, Pos: pos}, nil
}

func (p *parser) parseOptRange() (*Range, error) {
	if !p.accept("[") {
		return nil, nil
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("]"); err != nil {
		return nil, err
	}
	return &Range{MSB: msb, LSB: lsb}, nil
}

// ---- items ----

func (p *parser) parseItem() ([]Item, error) {
	switch {
	case p.is("input") || p.is("output") || p.is("inout"):
		d, err := p.parsePortDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Item{d}, nil

	case p.is("wire") || p.is("reg") || p.is("integer"):
		return p.parseNetDecl()

	case p.is("parameter") || p.is("localparam"):
		kind := DeclParameter
		if p.is("localparam") {
			kind = DeclLocalparam
		}
		d, err := p.parseParamDecl(kind)
		if err != nil {
			return nil, err
		}
		items := []Item{d}
		for p.accept(",") {
			// parameter N = 1, M = 2;
			rng := d.Range
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &Decl{Kind: kind, Range: rng, Names: []string{name}, Init: val, Pos: d.Pos})
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return items, nil

	case p.is("assign"):
		pos := p.next().Pos
		var items []Item
		for {
			lhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &ContAssign{LHS: lhs, RHS: rhs, Pos: pos})
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return items, nil

	case p.is("always"):
		a, err := p.parseAlways()
		if err != nil {
			return nil, err
		}
		return []Item{a}, nil

	case p.is("initial"):
		pos := p.next().Pos
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&Initial{Body: body, Pos: pos}}, nil

	case p.at(TokIdent):
		inst, err := p.parseInstance()
		if err != nil {
			return nil, err
		}
		return []Item{inst}, nil
	}
	return nil, p.errf("unexpected token %q in module body", p.cur().Text)
}

func (p *parser) parseNetDecl() ([]Item, error) {
	pos := p.cur().Pos
	var kind DeclKind
	switch {
	case p.accept("wire"):
		kind = DeclWire
	case p.accept("reg"):
		kind = DeclReg
	case p.accept("integer"):
		kind = DeclInteger
	}
	signed := p.accept("signed")
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	d := &Decl{Kind: kind, Signed: signed, Range: rng, Pos: pos}
	var items []Item
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, n)
		if p.accept("=") {
			// wire w = expr; -> declaration plus continuous assign.
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &ContAssign{LHS: &Ident{Name: n}, RHS: rhs, Pos: pos})
		}
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return append([]Item{d}, items...), nil
}

func (p *parser) parseAlways() (*Always, error) {
	pos := p.next().Pos // always
	a := &Always{Pos: pos}
	if !p.is("@") {
		// "always #5 clk = ~clk;" style: no event control; the body
		// (usually a delay) drives scheduling.
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		a.Body = body
		return a, nil
	}
	p.next()
	if p.accept("*") {
		a.Star = true
	} else {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		if p.accept("*") {
			a.Star = true
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			for {
				item := SensItem{}
				if p.accept("posedge") {
					item.Edge = EdgePos
				} else if p.accept("negedge") {
					item.Edge = EdgeNeg
				}
				sig, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Sig = sig
				a.Sens = append(a.Sens, item)
				if p.accept("or") || p.accept(",") {
					continue
				}
				break
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *parser) parseInstance() (*Instance, error) {
	pos := p.cur().Pos
	mod, err := p.ident()
	if err != nil {
		return nil, err
	}
	inst := &Instance{Module: mod, Pos: pos}
	if p.accept("#") {
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		conns, err := p.parseConnections()
		if err != nil {
			return nil, err
		}
		inst.Params = conns
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	inst.Name = name
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.is(")") {
		conns, err := p.parseConnections()
		if err != nil {
			return nil, err
		}
		inst.Conns = conns
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return inst, nil
}

func (p *parser) parseConnections() ([]Connection, error) {
	var out []Connection
	for {
		var c Connection
		if p.accept(".") {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			c.Name = n
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			if !p.is(")") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Expr = e
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Expr = e
		}
		out = append(out, c)
		if !p.accept(",") {
			return out, nil
		}
	}
}

// ---- statements ----

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept(";"):
		return &Null{}, nil

	case p.is("begin"):
		p.next()
		b := &Block{}
		if p.accept(":") {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			b.Name = n
		}
		for !p.is("end") {
			if p.at(TokEOF) {
				return nil, p.errf("unexpected EOF inside begin/end")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		p.next()
		return b, nil

	case p.is("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.is("case") || p.is("casez") || p.is("casex"):
		kind := CaseExact
		if p.is("casez") {
			kind = CaseZ
		} else if p.is("casex") {
			kind = CaseX
		}
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		sel, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		c := &Case{Kind: kind, Expr: sel}
		for !p.is("endcase") {
			if p.at(TokEOF) {
				return nil, p.errf("unexpected EOF inside case")
			}
			var item CaseItem
			if p.accept("default") {
				p.accept(":")
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Exprs = append(item.Exprs, e)
					if !p.accept(",") {
						break
					}
				}
				if _, err := p.expect(":"); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			item.Body = body
			c.Items = append(c.Items, item)
		}
		p.next()
		return c, nil

	case p.is("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		init, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		step, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Step: step, Body: body}, nil

	case p.is("repeat"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		count, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Repeat{Count: count, Body: body}, nil

	case p.is("#"):
		p.next()
		amt, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if p.accept(";") {
			return &Delay{Amount: amt, Body: &Null{}}, nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Delay{Amount: amt, Body: body}, nil

	case p.at(TokSysIdent):
		t := p.next()
		sc := &SysCall{Name: t.Text, Pos: t.Pos}
		if p.accept("(") {
			if !p.is(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					sc.Args = append(sc.Args, e)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return sc, nil
	}

	// Assignment statement.
	a, err := p.parseSimpleAssign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return a, nil
}

// parseSimpleAssign parses "lhs = rhs" or "lhs <= rhs" without the
// trailing semicolon (shared by statements and for-headers). The LHS
// is parsed as an lvalue, not a general expression, so that "<=" binds
// as the non-blocking assignment operator rather than less-or-equal.
func (p *parser) parseSimpleAssign() (*Assign, error) {
	pos := p.cur().Pos
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	a := &Assign{LHS: lhs, Pos: pos}
	switch {
	case p.accept("="):
	case p.accept("<="):
		a.NonBlocking = true
	default:
		return nil, p.errf("expected '=' or '<=', found %q", p.cur().Text)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a.RHS = rhs
	return a, nil
}

// parseLValue parses an assignment target: an identifier with optional
// bit/part selects, or a concatenation of lvalues.
func (p *parser) parseLValue() (Expr, error) {
	if p.accept("{") {
		c := &Concat{}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect("}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var e Expr = &Ident{Name: name}
	for p.is("[") {
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &PartSelect{X: e, MSB: first, LSB: lsb}
		} else {
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, Index: first}
		}
	}
	return e, nil
}

// ---- expressions ----

// Precedence levels, loosest first.
var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"|", "~|"},
	{"^", "~^", "^~"},
	{"&", "~&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"<<", ">>", ">>>", "<<<"},
	{"+", "-"},
	{"*", "/", "%"},
	{"**"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binaryLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binaryLevels[level] {
			if p.is(op) {
				pos := p.next().Pos
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: pos}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

var unaryOps = map[string]bool{
	"~": true, "!": true, "-": true, "+": true,
	"&": true, "|": true, "^": true, "~&": true, "~|": true, "~^": true, "^~": true,
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().Kind == TokOp && unaryOps[p.cur().Text] {
		op := p.next().Text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			return x, nil
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.is("[") {
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &PartSelect{X: e, MSB: first, LSB: lsb}
		} else {
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, Index: first}
		}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return parseNumber(t)

	case t.Kind == TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil

	case t.Kind == TokIdent:
		p.next()
		return &Ident{Name: t.Text, Pos: t.Pos}, nil

	case t.Is("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Is("{"):
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.is("{") {
			// Replication {N{value}}.
			p.next()
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
			if _, err := p.expect("}"); err != nil {
				return nil, err
			}
			return &Repl{Count: first, Value: val}, nil
		}
		c := &Concat{Parts: []Expr{first}}
		for p.accept(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect("}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

// parseNumber converts a TokNumber to a Number node.
func parseNumber(t Token) (*Number, error) {
	text := t.Text
	fail := func(msg string) (*Number, error) {
		return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("%s: %q", msg, text)}
	}
	q := strings.IndexByte(text, '\'')
	if q < 0 {
		clean := strings.ReplaceAll(text, "_", "")
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return fail("invalid decimal literal")
		}
		return &Number{Width: 0, Val: logic.FromUint64(32, v), Text: text}, nil
	}
	width := 32
	if q > 0 {
		sz, err := strconv.Atoi(strings.ReplaceAll(text[:q], "_", ""))
		if err != nil || sz < 1 || sz > 4096 {
			return fail("invalid literal size")
		}
		width = sz
	}
	rest := text[q+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return fail("truncated based literal")
	}
	base := lower(rest[0])
	digits := strings.ReplaceAll(rest[1:], "_", "")
	if digits == "" {
		return fail("based literal with no digits")
	}
	var bitsPerDigit int
	switch base {
	case 'b':
		bitsPerDigit = 1
	case 'o':
		bitsPerDigit = 3
	case 'h':
		bitsPerDigit = 4
	case 'd':
		clean := strings.Map(func(r rune) rune {
			if r == 'x' || r == 'X' || r == 'z' || r == 'Z' || r == '?' {
				return -1
			}
			return r
		}, digits)
		if clean != digits {
			// x/z digits in decimal base: whole value unknown.
			return &Number{Width: width, Val: logic.AllX(width), Text: text}, nil
		}
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return fail("invalid decimal digits")
		}
		return &Number{Width: width, Val: logic.FromUint64(width, v), Text: text}, nil
	default:
		return fail("invalid base")
	}

	val := logic.New(width)
	pos := 0
	for i := len(digits) - 1; i >= 0; i-- {
		c := lower(digits[i])
		var bits []logic.Bit
		switch {
		case c == 'x':
			bits = repeatBit(logic.X, bitsPerDigit)
		case c == 'z' || c == '?':
			bits = repeatBit(logic.Z, bitsPerDigit)
		default:
			var dv uint64
			switch {
			case c >= '0' && c <= '9':
				dv = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				dv = uint64(c-'a') + 10
			default:
				return fail("invalid digit")
			}
			if dv >= 1<<uint(bitsPerDigit) {
				return fail("digit out of range for base")
			}
			bits = make([]logic.Bit, bitsPerDigit)
			for b := 0; b < bitsPerDigit; b++ {
				if dv>>uint(b)&1 == 1 {
					bits[b] = logic.L1
				}
			}
		}
		for b, bit := range bits {
			val.SetBit(pos+b, bit)
		}
		pos += bitsPerDigit
	}
	return &Number{Width: width, Val: val, Text: text}, nil
}

func repeatBit(b logic.Bit, n int) []logic.Bit {
	out := make([]logic.Bit, n)
	for i := range out {
		out[i] = b
	}
	return out
}
