package verilog

// CloneFile returns a deep copy of the file by printing and re-parsing
// it. The printer/parser pair is round-trip stable (property-tested),
// which makes this the simplest correct deep copy and keeps the AST
// free of per-node Clone methods.
func CloneFile(f *SourceFile) *SourceFile {
	c, err := Parse(Print(f))
	if err != nil {
		// Printing a valid AST always reparses; reaching here is a bug
		// in the printer, not a user error.
		panic("verilog: clone round-trip failed: " + err.Error())
	}
	return c
}

// CloneModule returns a deep copy of a single module.
func CloneModule(m *Module) *Module {
	f := CloneFile(&SourceFile{Modules: []*Module{m}})
	return f.Modules[0]
}
