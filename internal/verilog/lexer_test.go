package verilog

import "testing"

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	ts := Tokens("module m; endmodule")
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "module"},
		{TokIdent, "m"},
		{TokOp, ";"},
		{TokKeyword, "endmodule"},
		{TokEOF, ""},
	}
	if len(ts) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(ts), len(want), ts)
	}
	for i, w := range want {
		if ts[i].Kind != w.kind || ts[i].Text != w.text {
			t.Errorf("token %d = {%v %q}, want {%v %q}", i, ts[i].Kind, ts[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	for _, src := range []string{"12", "4'b10x0", "8'hff", "'d42", "16'd65535", "3'o7", "4'b1_0_1_0", "8'shff"} {
		ts := Tokens(src)
		if len(ts) != 2 || ts[0].Kind != TokNumber || ts[0].Text != src {
			t.Errorf("lex %q -> %v", src, ts)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "<= >= == != === !== << >> >>> && || ~& ~| ~^ ^~ + - * / % ? : # @"
	ts := Tokens(src)
	wantTexts := []string{"<=", ">=", "==", "!=", "===", "!==", "<<", ">>", ">>>", "&&", "||",
		"~&", "~|", "~^", "^~", "+", "-", "*", "/", "%", "?", ":", "#", "@"}
	if len(ts) != len(wantTexts)+1 {
		t.Fatalf("token count = %d, want %d", len(ts), len(wantTexts)+1)
	}
	for i, w := range wantTexts {
		if ts[i].Kind != TokOp || ts[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, ts[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	ts := Tokens("a // comment\n b /* block\nspans */ c")
	var idents []string
	for _, tok := range ts {
		if tok.Kind == TokIdent {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 3 || idents[0] != "a" || idents[1] != "b" || idents[2] != "c" {
		t.Errorf("idents = %v", idents)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"/* open", "\"open string", "4'q10", "`tick"} {
		ts := Tokens(src)
		if ts[len(ts)-1].Kind != TokError {
			t.Errorf("lex %q did not error: %v", src, kinds(ts))
		}
	}
}

func TestLexSysIdentAndString(t *testing.T) {
	ts := Tokens(`$display("hi %d", x)`)
	if ts[0].Kind != TokSysIdent || ts[0].Text != "$display" {
		t.Errorf("sysident = %v", ts[0])
	}
	if ts[2].Kind != TokString || ts[2].Text != "hi %d" {
		t.Errorf("string = %v", ts[2])
	}
}

func TestLexPositions(t *testing.T) {
	ts := Tokens("a\n  b")
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Errorf("a pos = %v", ts[0].Pos)
	}
	if ts[1].Pos.Line != 2 || ts[1].Pos.Col != 3 {
		t.Errorf("b pos = %v", ts[1].Pos)
	}
}
