// Package verilog implements a lexer, parser, AST and printer for the
// synthesizable Verilog-2005 subset used throughout this repository:
// modules with ANSI or classic port lists, parameters, wire/reg/integer
// declarations, continuous assignments, always/initial blocks with
// blocking and non-blocking assignment, if/case/casez/casex/for, module
// instantiation, the full expression operator set, bit/part selects,
// concatenation and replication, and the $display family of system
// tasks. It is the front end of the Icarus-Verilog stand-in simulator
// in internal/sim.
package verilog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokSysIdent // $display, $finish, ...
	TokNumber   // 12, 4'b1010, 8'hff, 'd3
	TokString   // "..."
	TokKeyword
	TokOp    // operators and separators
	TokError // lexical error; Text holds the message
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokSysIdent:
		return "system identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	default:
		return "error"
	}
}

// Pos is a position in the source text.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Is reports whether the token is an operator or keyword with the given
// text.
func (t Token) Is(text string) bool {
	return (t.Kind == TokOp || t.Kind == TokKeyword) && t.Text == text
}

var keywords = map[string]bool{
	"module": true, "endmodule": true,
	"input": true, "output": true, "inout": true,
	"wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true,
	"assign": true, "always": true, "initial": true,
	"begin": true, "end": true,
	"if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true, "default": true,
	"for": true, "while": true, "repeat": true,
	"posedge": true, "negedge": true, "or": true,
	"signed": true, "unsigned": true,
	"function": true, "endfunction": true,
	"generate": true, "endgenerate": true, "genvar": true,
}

// IsKeyword reports whether s is a reserved word of the subset.
func IsKeyword(s string) bool { return keywords[s] }
