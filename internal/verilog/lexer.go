package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns Verilog source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the whole input, stopping after the first TokError or at
// EOF. The returned slice always ends with a TokEOF or TokError token.
func Tokens(src string) []Token {
	lx := NewLexer(src)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == TokEOF || t.Kind == TokError {
			return out
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) errorf(pos Pos, format string, args ...interface{}) Token {
	return Token{Kind: TokError, Pos: pos, Text: fmt.Sprintf(format, args...)}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte, base byte) bool {
	c = lower(c)
	switch base {
	case 'b':
		return c == '0' || c == '1' || c == 'x' || c == 'z' || c == '?' || c == '_'
	case 'o':
		return (c >= '0' && c <= '7') || c == 'x' || c == 'z' || c == '?' || c == '_'
	case 'd':
		return isDigit(c) || c == '_'
	case 'h':
		return isDigit(c) || (c >= 'a' && c <= 'f') || c == 'x' || c == 'z' || c == '?' || c == '_'
	}
	return false
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// skipSpace consumes whitespace and comments; it returns a lexical
// error token for unterminated block comments, else a zero Token.
func (lx *Lexer) skipSpace() (Token, bool) {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			pos := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(pos, "unterminated block comment"), true
			}
		default:
			return Token{}, false
		}
	}
	return Token{}, false
}

// multi-character operators, longest first.
var multiOps = []string{
	"<<<", ">>>", "===", "!==",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"~&", "~|", "~^", "^~", "+:", "-:", "**",
}

var singleOps = "+-*/%&|^~!<>=?:;,.()[]{}#@"

// Next returns the next token.
func (lx *Lexer) Next() Token {
	if t, isErr := lx.skipSpace(); isErr {
		return t
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if IsKeyword(text) {
			return Token{Kind: TokKeyword, Text: text, Pos: pos}
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}

	case c == '$':
		start := lx.off
		lx.advance()
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		if lx.off-start == 1 {
			return lx.errorf(pos, "bare '$'")
		}
		return Token{Kind: TokSysIdent, Text: lx.src[start:lx.off], Pos: pos}

	case isDigit(c) || c == '\'':
		return lx.lexNumber(pos)

	case c == '"':
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '"' && lx.peek() != '\n' {
			if lx.peek() == '\\' {
				lx.advance()
			}
			if lx.off < len(lx.src) {
				lx.advance()
			}
		}
		if lx.off >= len(lx.src) || lx.peek() != '"' {
			return lx.errorf(pos, "unterminated string")
		}
		text := lx.src[start:lx.off]
		lx.advance()
		return Token{Kind: TokString, Text: text, Pos: pos}
	}

	// Operators.
	rest := lx.src[lx.off:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			for range op {
				lx.advance()
			}
			return Token{Kind: TokOp, Text: op, Pos: pos}
		}
	}
	if strings.IndexByte(singleOps, c) >= 0 {
		lx.advance()
		return Token{Kind: TokOp, Text: string(c), Pos: pos}
	}
	return lx.errorf(pos, "unexpected character %q", string(c))
}

// lexNumber lexes decimal and based literals: 12, 4'b10x0, 'hff, 16'd9.
// A leading size may already have been consumed as part of this call
// (the number starts at a digit or at the base quote).
func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	if lx.off < len(lx.src) && lx.peek() == '\'' {
		lx.advance()
		if lx.off < len(lx.src) && (lower(lx.peek()) == 's') {
			lx.advance() // signed marker, accepted and ignored
		}
		if lx.off >= len(lx.src) {
			return lx.errorf(pos, "truncated based literal")
		}
		base := lower(lx.peek())
		if base != 'b' && base != 'o' && base != 'd' && base != 'h' {
			return lx.errorf(pos, "invalid number base %q", string(lx.peek()))
		}
		lx.advance()
		digStart := lx.off
		for lx.off < len(lx.src) && isBaseDigit(lx.peek(), base) {
			lx.advance()
		}
		if lx.off == digStart {
			return lx.errorf(pos, "based literal with no digits")
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: pos}
}
