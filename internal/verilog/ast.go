package verilog

import (
	"strings"

	"correctbench/internal/logic"
)

// SourceFile is a parsed Verilog source unit.
type SourceFile struct {
	Modules []*Module
}

// Module finds the module with the given name, or nil.
func (f *SourceFile) Module(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Module is a module declaration.
type Module struct {
	Name      string
	PortOrder []string // names in header order
	Items     []Item
	Pos       Pos
}

// Ports returns the declarations that are ports, in header order where
// possible.
func (m *Module) Ports() []*Decl {
	byName := map[string]*Decl{}
	var all []*Decl
	for _, it := range m.Items {
		d, ok := it.(*Decl)
		if !ok || !d.Kind.IsPort() {
			continue
		}
		all = append(all, d)
		for _, n := range d.Names {
			byName[n] = d
		}
	}
	if len(m.PortOrder) == 0 {
		return all
	}
	seen := map[*Decl]bool{}
	var ordered []*Decl
	for _, n := range m.PortOrder {
		if d := byName[n]; d != nil && !seen[d] {
			ordered = append(ordered, d)
			seen[d] = true
		}
	}
	for _, d := range all {
		if !seen[d] {
			ordered = append(ordered, d)
		}
	}
	return ordered
}

// Item is a module-body item.
type Item interface{ item() }

// DeclKind classifies declarations.
type DeclKind int

// Declaration kinds.
const (
	DeclWire DeclKind = iota
	DeclReg
	DeclInteger
	DeclInput
	DeclOutput
	DeclInout
	DeclParameter
	DeclLocalparam
)

// IsPort reports whether the kind is a port direction.
func (k DeclKind) IsPort() bool {
	return k == DeclInput || k == DeclOutput || k == DeclInout
}

func (k DeclKind) String() string {
	switch k {
	case DeclWire:
		return "wire"
	case DeclReg:
		return "reg"
	case DeclInteger:
		return "integer"
	case DeclInput:
		return "input"
	case DeclOutput:
		return "output"
	case DeclInout:
		return "inout"
	case DeclParameter:
		return "parameter"
	case DeclLocalparam:
		return "localparam"
	default:
		return "?"
	}
}

// Decl declares nets, variables, ports or parameters. A port declared
// "output reg [3:0] q" has Kind DeclOutput and IsReg set.
type Decl struct {
	Kind   DeclKind
	IsReg  bool // output reg
	Signed bool
	Range  *Range
	Names  []string
	Init   Expr // parameter/localparam value, or nil
	Pos    Pos
}

func (*Decl) item() {}

// Range is a bit range [MSB:LSB].
type Range struct {
	MSB, LSB Expr
}

// ContAssign is a continuous assignment: assign LHS = RHS.
type ContAssign struct {
	LHS, RHS Expr
	Pos      Pos
}

func (*ContAssign) item() {}

// EdgeKind classifies sensitivity-list entries.
type EdgeKind int

// Edge kinds.
const (
	EdgeNone EdgeKind = iota // level sensitivity
	EdgePos
	EdgeNeg
)

func (e EdgeKind) String() string {
	switch e {
	case EdgePos:
		return "posedge"
	case EdgeNeg:
		return "negedge"
	default:
		return ""
	}
}

// SensItem is one entry of a sensitivity list.
type SensItem struct {
	Edge EdgeKind
	Sig  string
}

// Always is an always block. Star means @(*) / @*; otherwise Sens holds
// the sensitivity list (empty Sens with Star false means "always" with
// no event control, which the subset rejects at elaboration).
type Always struct {
	Star bool
	Sens []SensItem
	Body Stmt
	Pos  Pos
}

func (*Always) item() {}

// Initial is an initial block.
type Initial struct {
	Body Stmt
	Pos  Pos
}

func (*Initial) item() {}

// Connection is a port or parameter connection of an instance. An empty
// Name means positional.
type Connection struct {
	Name string
	Expr Expr
}

// Instance instantiates a module.
type Instance struct {
	Module string
	Name   string
	Params []Connection
	Conns  []Connection
	Pos    Pos
}

func (*Instance) item() {}

// ---- statements ----

// Stmt is a procedural statement.
type Stmt interface{ stmt() }

// Block is begin ... end.
type Block struct {
	Name  string
	Stmts []Stmt
}

func (*Block) stmt() {}

// Assign is a procedural assignment; NonBlocking selects <= vs =.
type Assign struct {
	LHS         Expr
	RHS         Expr
	NonBlocking bool
	Pos         Pos
}

func (*Assign) stmt() {}

// If is if (Cond) Then else Else; Else may be nil.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

func (*If) stmt() {}

// CaseKind selects case/casez/casex matching.
type CaseKind int

// Case kinds.
const (
	CaseExact CaseKind = iota
	CaseZ
	CaseX
)

func (k CaseKind) String() string {
	switch k {
	case CaseZ:
		return "casez"
	case CaseX:
		return "casex"
	default:
		return "case"
	}
}

// CaseItem is one arm of a case statement; nil Exprs marks default.
type CaseItem struct {
	Exprs []Expr
	Body  Stmt
}

// Case is a case/casez/casex statement.
type Case struct {
	Kind  CaseKind
	Expr  Expr
	Items []CaseItem
}

func (*Case) stmt() {}

// For is for (Init; Cond; Step) Body.
type For struct {
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
}

func (*For) stmt() {}

// Repeat is repeat (Count) Body.
type Repeat struct {
	Count Expr
	Body  Stmt
}

func (*Repeat) stmt() {}

// Delay is "#Amount Body" (Body may be Null for a bare delay).
type Delay struct {
	Amount Expr
	Body   Stmt
}

func (*Delay) stmt() {}

// SysCall is a system-task statement such as $display(...) or $finish.
type SysCall struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*SysCall) stmt() {}

// Null is the empty statement ";".
type Null struct{}

func (*Null) stmt() {}

// ---- expressions ----

// Expr is an expression node.
type Expr interface{ expr() }

// Ident is a name reference.
type Ident struct {
	Name string
	Pos  Pos
}

func (*Ident) expr() {}

// Number is a literal. Width 0 means unsized (treated as 32 bits).
type Number struct {
	Width int
	Val   logic.Vector
	Text  string // original spelling, kept for printing
}

func (*Number) expr() {}

// StringLit is a string literal (only valid as a $display argument).
type StringLit struct {
	Value string
}

func (*StringLit) expr() {}

// Unary is a prefix operator: ~ ! - + & | ^ ~& ~| ~^.
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) expr() {}

// Binary is an infix operator.
type Binary struct {
	Op   string
	X, Y Expr
	Pos  Pos
}

func (*Binary) expr() {}

// Ternary is Cond ? Then : Else.
type Ternary struct {
	Cond, Then, Else Expr
}

func (*Ternary) expr() {}

// Concat is {a, b, ...}.
type Concat struct {
	Parts []Expr
}

func (*Concat) expr() {}

// Repl is {Count{Value}}.
type Repl struct {
	Count Expr
	Value Expr
}

func (*Repl) expr() {}

// Index is a bit select X[Index].
type Index struct {
	X     Expr
	Index Expr
}

func (*Index) expr() {}

// PartSelect is a constant part select X[MSB:LSB].
type PartSelect struct {
	X        Expr
	MSB, LSB Expr
}

func (*PartSelect) expr() {}

// ---- helpers ----

// Num builds an unsized decimal Number.
func Num(v uint64) *Number {
	return &Number{Width: 0, Val: logic.FromUint64(32, v)}
}

// SizedNum builds a sized Number.
func SizedNum(width int, v uint64) *Number {
	return &Number{Width: width, Val: logic.FromUint64(width, v)}
}

// WalkExprs calls f for every expression node reachable from e,
// including e itself, in pre-order.
func WalkExprs(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, f)
	case *Binary:
		WalkExprs(x.X, f)
		WalkExprs(x.Y, f)
	case *Ternary:
		WalkExprs(x.Cond, f)
		WalkExprs(x.Then, f)
		WalkExprs(x.Else, f)
	case *Concat:
		for _, p := range x.Parts {
			WalkExprs(p, f)
		}
	case *Repl:
		WalkExprs(x.Count, f)
		WalkExprs(x.Value, f)
	case *Index:
		WalkExprs(x.X, f)
		WalkExprs(x.Index, f)
	case *PartSelect:
		WalkExprs(x.X, f)
		WalkExprs(x.MSB, f)
		WalkExprs(x.LSB, f)
	}
}

// WalkStmts calls f for every statement node reachable from s,
// including s itself, in pre-order.
func WalkStmts(s Stmt, f func(Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch x := s.(type) {
	case *Block:
		for _, st := range x.Stmts {
			WalkStmts(st, f)
		}
	case *If:
		WalkStmts(x.Then, f)
		WalkStmts(x.Else, f)
	case *Case:
		for _, it := range x.Items {
			WalkStmts(it.Body, f)
		}
	case *For:
		if x.Init != nil {
			WalkStmts(x.Init, f)
		}
		if x.Step != nil {
			WalkStmts(x.Step, f)
		}
		WalkStmts(x.Body, f)
	case *Repeat:
		WalkStmts(x.Body, f)
	case *Delay:
		WalkStmts(x.Body, f)
	}
}

// ExprIdents collects the distinct identifier names used in e.
func ExprIdents(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	WalkExprs(e, func(x Expr) {
		if id, ok := x.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
	})
	return out
}

// LHSTargets returns the identifier names assigned by the LHS
// expression (an Ident, Index, PartSelect, or Concat of those).
func LHSTargets(lhs Expr) []string {
	var out []string
	switch x := lhs.(type) {
	case *Ident:
		out = append(out, x.Name)
	case *Index:
		out = append(out, LHSTargets(x.X)...)
	case *PartSelect:
		out = append(out, LHSTargets(x.X)...)
	case *Concat:
		for _, p := range x.Parts {
			out = append(out, LHSTargets(p)...)
		}
	}
	return out
}

// DumpKind returns a compact structural tag for an expression, used in
// diagnostics and mutation-site naming.
func DumpKind(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return "ident:" + x.Name
	case *Number:
		return "number"
	case *Unary:
		return "unary:" + x.Op
	case *Binary:
		return "binary:" + x.Op
	case *Ternary:
		return "ternary"
	case *Concat:
		return "concat"
	case *Repl:
		return "repl"
	case *Index:
		return "index"
	case *PartSelect:
		return "partselect"
	case *StringLit:
		return "string"
	default:
		return "?"
	}
}

// JoinNames renders a name list for diagnostics.
func JoinNames(names []string) string { return strings.Join(names, ", ") }
