// Package corrector models CorrectBench's two-stage conversational
// self-corrector (Section III-C). Given the validator's bug
// information (wrong/correct/uncertain scenario indexes), stage 1
// guides the LLM through why/where/how reasoning to attribute the
// failing scenarios to checker code, and stage 2 rewrites the faulty
// part under formatting rules.
//
// Substitution note: the real corrector's success depends on LLM
// reasoning over its own checker code. Here the checker's injected
// faults are recorded in the testbench's mutate.Plan, and the model is
// parameterized per llm.Profile: each fault is localized with
// LocalizeProb (boosted by precise bug information, degraded without
// it), a localized fault is repaired with FixProb, and each correction
// round introduces a fresh fault with RegressProb — reproducing the
// corrector's observed statistics (34.33% of validated passes needing
// correction, SEQ benefiting more than CMB).
package corrector

import (
	"math/rand"

	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

// Corrector repairs testbenches using validator bug reports.
type Corrector struct {
	Profile *llm.Profile
}

// Outcome describes what a correction round did.
type Outcome struct {
	// Attempted is false when the corrector had nothing to work with
	// (syntax-broken testbench or no bug information at all).
	Attempted bool
	// Repaired counts faults removed from the checker.
	Repaired int
	// Regressed counts fresh faults introduced.
	Regressed int
}

// Correct performs one correction round and returns the corrected
// testbench (a new artifact; the input is never modified). Token usage
// for the two conversation stages is charged to acct.
func (c *Corrector) Correct(tb *testbench.Testbench, rep *validator.Report, rng *rand.Rand, acct *llm.Accountant) (*testbench.Testbench, Outcome) {
	prof := c.Profile
	out := Outcome{}

	// A syntax-broken testbench gives the corrector no scenario
	// information to reason over; the action agent will reboot.
	if rep.SimulationBroken || !tb.SyntaxOK() {
		return tb, out
	}
	out.Attempted = true
	acct.Charge(rng, prof.TokensCorrectIn+len(tb.CheckerSource)/3, prof.TokensCorrectOut)

	golden, err := tb.Problem.Module()
	if err != nil {
		return tb, out
	}

	// Stage 1 (reasoning): attribute faults. Precise wrong-scenario
	// indexes make localization much more likely than vague
	// uncertain-only reports.
	localize := prof.LocalizeProb
	if len(rep.Wrong) == 0 {
		localize = prof.LocalizeProb / 4
	}

	var plan mutate.Plan = tb.CheckerPlan
	for _, site := range append([]int(nil), plan.Sites...) {
		if site == tb.CheckerSticky {
			// The systematic misconception: the LLM defends its own
			// wrong understanding of the spec and almost never repairs
			// this fault.
			if rng.Float64() < prof.StickyFixProb {
				plan = plan.Without(site)
				out.Repaired++
			}
			continue
		}
		if rng.Float64() >= localize {
			continue
		}
		// Stage 2 (correction): rewrite the located fault.
		if rng.Float64() < prof.FixProb {
			plan = plan.Without(site)
			out.Repaired++
		}
	}
	// The rewrite may damage previously correct logic.
	if rng.Float64() < prof.RegressProb {
		if n := plan.SiteCountIn(golden); n > 0 {
			plan = plan.With(rng.Intn(n))
			out.Regressed++
		}
	}

	mod, _ := plan.Build(golden)
	sticky := tb.CheckerSticky
	if !containsSite(plan, sticky) {
		sticky = -1
	}
	fixed := &testbench.Testbench{
		Problem:       tb.Problem,
		Scenarios:     tb.Scenarios,
		DriverSource:  tb.DriverSource,
		CheckerSource: verilog.PrintModule(mod),
		CheckerTop:    tb.CheckerTop,
		CheckerPlan:   plan,
		CheckerSticky: sticky,
		TokensIn:      tb.TokensIn,
		TokensOut:     tb.TokensOut,
	}
	return fixed, out
}

func containsSite(p mutate.Plan, site int) bool {
	for _, s := range p.Sites {
		if s == site {
			return true
		}
	}
	return false
}
