package corrector

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
	"correctbench/internal/verilog"
)

// faultyTB builds a testbench for cnt8 with nFaults injected checker
// faults.
func faultyTB(t *testing.T, nFaults int, seed int64) *testbench.Testbench {
	t.Helper()
	p := dataset.ByName("cnt8")
	golden, err := p.Module()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 6, Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan := mutate.NewPlan(golden, rng, nFaults)
	mod, _ := plan.Build(golden)
	tb := &testbench.Testbench{
		Problem: p, Scenarios: scs,
		CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top,
		CheckerPlan: plan, CheckerSticky: -1,
	}
	tb.DriverSource = testbench.EmitDriver(tb)
	return tb
}

func report(wrong []int) *validator.Report {
	return &validator.Report{Correct: false, Wrong: wrong}
}

func TestCorrectRepairsWithGoodBugInfo(t *testing.T) {
	prof := llm.GPT4o()
	prof.LocalizeProb, prof.FixProb, prof.RegressProb = 1, 1, 0
	c := &Corrector{Profile: prof}
	rng := rand.New(rand.NewSource(1))
	var acct llm.Accountant
	tb := faultyTB(t, 2, 11)
	fixed, out := c.Correct(tb, report([]int{1, 3}), rng, &acct)
	if !out.Attempted || out.Repaired != 2 || out.Regressed != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if len(fixed.CheckerPlan.Sites) != 0 {
		t.Errorf("plan not emptied: %v", fixed.CheckerPlan.Sites)
	}
	// A fully repaired checker matches golden behaviour.
	p := fixed.Problem
	res, err := fixed.RunAgainstSource(p.Source, p.Top)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Error("repaired checker still rejects golden RTL")
	}
	if acct.Calls != 1 {
		t.Errorf("token calls = %d", acct.Calls)
	}
}

func TestCorrectDoesNotMutateInput(t *testing.T) {
	prof := llm.GPT4o()
	prof.LocalizeProb, prof.FixProb = 1, 1
	c := &Corrector{Profile: prof}
	rng := rand.New(rand.NewSource(2))
	var acct llm.Accountant
	tb := faultyTB(t, 1, 12)
	before := tb.CheckerSource
	planLen := len(tb.CheckerPlan.Sites)
	c.Correct(tb, report([]int{2}), rng, &acct)
	if tb.CheckerSource != before || len(tb.CheckerPlan.Sites) != planLen {
		t.Error("corrector mutated its input testbench")
	}
}

func TestVagueBugInfoHurtsLocalization(t *testing.T) {
	prof := llm.GPT4o()
	prof.FixProb, prof.RegressProb = 1, 0
	prof.LocalizeProb = 0.8
	c := &Corrector{Profile: prof}
	repairsPrecise, repairsVague := 0, 0
	const n = 400
	rngP := rand.New(rand.NewSource(3))
	rngV := rand.New(rand.NewSource(3))
	var acct llm.Accountant
	tb := faultyTB(t, 1, 13)
	for i := 0; i < n; i++ {
		_, out := c.Correct(tb, report([]int{1}), rngP, &acct)
		repairsPrecise += out.Repaired
		_, out = c.Correct(tb, report(nil), rngV, &acct)
		repairsVague += out.Repaired
	}
	if repairsVague*2 >= repairsPrecise {
		t.Errorf("vague info should repair far less: precise=%d vague=%d", repairsPrecise, repairsVague)
	}
}

func TestStickyFaultResistsCorrection(t *testing.T) {
	prof := llm.GPT4o()
	prof.LocalizeProb, prof.FixProb, prof.RegressProb = 1, 1, 0
	prof.StickyFixProb = 0
	c := &Corrector{Profile: prof}
	rng := rand.New(rand.NewSource(4))
	var acct llm.Accountant
	tb := faultyTB(t, 1, 14)
	tb.CheckerSticky = tb.CheckerPlan.Sites[0]
	fixed, out := c.Correct(tb, report([]int{1}), rng, &acct)
	if out.Repaired != 0 {
		t.Errorf("sticky fault was repaired: %+v", out)
	}
	if fixed.CheckerSticky != tb.CheckerSticky {
		t.Error("sticky site lost")
	}
}

func TestRegressionIntroducesFault(t *testing.T) {
	prof := llm.GPT4o()
	prof.LocalizeProb, prof.FixProb = 0, 0
	prof.RegressProb = 1
	c := &Corrector{Profile: prof}
	rng := rand.New(rand.NewSource(5))
	var acct llm.Accountant
	tb := faultyTB(t, 1, 15)
	fixed, out := c.Correct(tb, report([]int{1}), rng, &acct)
	if out.Regressed != 1 {
		t.Fatalf("regression not applied: %+v", out)
	}
	if len(fixed.CheckerPlan.Sites) < len(tb.CheckerPlan.Sites) {
		t.Error("plan shrank despite regression")
	}
}

func TestBrokenTestbenchNotAttempted(t *testing.T) {
	c := &Corrector{Profile: llm.GPT4o()}
	rng := rand.New(rand.NewSource(6))
	var acct llm.Accountant
	tb := faultyTB(t, 1, 16)
	tb.DriverSource = "not verilog ("
	rep := &validator.Report{Correct: false, SimulationBroken: true}
	fixed, out := c.Correct(tb, rep, rng, &acct)
	if out.Attempted {
		t.Error("corrector attempted a broken testbench")
	}
	if fixed != tb {
		t.Error("broken testbench should be returned unchanged")
	}
	if acct.Calls != 0 {
		t.Error("tokens charged for a non-attempt")
	}
}
