package validator

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/sim"
	"correctbench/internal/testbench"
)

// TestCompiledEngineDifferential proves the compiled slot-indexed
// engine is bit-for-bit identical to the AST interpreter over the
// entire dataset: for every problem it builds the golden testbench and
// an imperfect RTL group (mutated, correct and syntax-broken
// candidates, exactly as the paper's validator does) and asserts that
// the RS matrices produced by the interpreter, the compiled engine and
// the batched engine render identically — same rows, same red/green
// cells, same discards — and that the same candidates run as lanes of
// one batch produce the same rows again.
func TestCompiledEngineDifferential(t *testing.T) {
	prof := llm.GPT4o()
	v := &Validator{Criterion: Wrong70}
	for _, p := range dataset.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1234))
			var acct llm.Accountant
			group, err := GenerateRTLGroup(p, prof, 6, rng, &acct)
			if err != nil {
				t.Fatalf("rtl group: %v", err)
			}
			gtb, err := testbench.Golden(p, rng)
			if err != nil {
				t.Fatalf("golden: %v", err)
			}

			run := func(engine sim.Engine) (string, bool) {
				// Separate testbench value per engine so the checker
				// design cache and engine field are independent.
				tb := *gtb
				tb.Engine = engine
				m, ok := v.BuildMatrix(&tb, group)
				if !ok {
					return "", false
				}
				return m.Render(), true
			}

			compiled, okC := run(sim.EngineCompiled)
			interp, okI := run(sim.EngineInterp)
			batched, okB := run(sim.EngineBatched)
			if okC != okI || okB != okI {
				t.Fatalf("engines disagree on testbench viability: compiled=%v interp=%v batched=%v", okC, okI, okB)
			}
			if compiled != interp {
				t.Fatalf("RS matrices differ between engines\ncompiled:\n%s\ninterp:\n%s", compiled, interp)
			}
			if batched != interp {
				t.Fatalf("RS matrices differ between engines\nbatched:\n%s\ninterp:\n%s", batched, interp)
			}

			// The matrix rows above run each candidate on its own scalar
			// instance; now run the same candidates as lanes of one
			// sim.BatchInstance and require identical per-scenario rows.
			goldenDesign, err := p.Elaborate()
			if err != nil {
				t.Fatalf("golden design: %v", err)
			}
			var duts []*sim.Design
			for _, cand := range group {
				d, err := sim.ElaborateSource(cand.Source, p.Top)
				if err != nil {
					continue // syntax-broken rows are discarded either way
				}
				duts = append(duts, d)
			}
			if len(duts) == 0 {
				t.Fatalf("no elaborable candidates in RTL group")
			}
			btb := *gtb
			btb.Engine = sim.EngineInterp
			outs := btb.RunBatchAgainstDesigns(goldenDesign, duts, false)
			for i, d := range duts {
				res, rerr := btb.RunAgainstDesign(d)
				if (outs[i].Err != nil) != (rerr != nil) {
					t.Fatalf("candidate %d: batch err=%v scalar err=%v", i, outs[i].Err, rerr)
				}
				if rerr != nil {
					continue
				}
				for s := range res.ScenarioPass {
					if outs[i].Res.ScenarioPass[s] != res.ScenarioPass[s] {
						t.Fatalf("candidate %d scenario %d: batch %v, scalar %v",
							i, s, outs[i].Res.ScenarioPass[s], res.ScenarioPass[s])
					}
				}
			}
		})
	}
}
