package validator

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/sim"
	"correctbench/internal/testbench"
)

// TestCompiledEngineDifferential proves the compiled slot-indexed
// engine is bit-for-bit identical to the AST interpreter over the
// entire dataset: for every problem it builds the golden testbench and
// an imperfect RTL group (mutated, correct and syntax-broken
// candidates, exactly as the paper's validator does) and asserts that
// the RS matrices produced by the two engines render identically —
// same rows, same red/green cells, same discards.
func TestCompiledEngineDifferential(t *testing.T) {
	prof := llm.GPT4o()
	v := &Validator{Criterion: Wrong70}
	for _, p := range dataset.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1234))
			var acct llm.Accountant
			group, err := GenerateRTLGroup(p, prof, 6, rng, &acct)
			if err != nil {
				t.Fatalf("rtl group: %v", err)
			}
			gtb, err := testbench.Golden(p, rng)
			if err != nil {
				t.Fatalf("golden: %v", err)
			}

			run := func(engine sim.Engine) (string, bool) {
				// Separate testbench value per engine so the checker
				// design cache and engine field are independent.
				tb := *gtb
				tb.Engine = engine
				m, ok := v.BuildMatrix(&tb, group)
				if !ok {
					return "", false
				}
				return m.Render(), true
			}

			compiled, okC := run(sim.EngineCompiled)
			interp, okI := run(sim.EngineInterp)
			if okC != okI {
				t.Fatalf("engines disagree on testbench viability: compiled=%v interp=%v", okC, okI)
			}
			if compiled != interp {
				t.Fatalf("RS matrices differ between engines\ncompiled:\n%s\ninterp:\n%s", compiled, interp)
			}
		})
	}
}
