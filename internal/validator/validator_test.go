package validator

import (
	"math/rand"
	"strings"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

func matrixFrom(rows []string) *Matrix {
	m := &Matrix{}
	for _, r := range rows {
		var row []bool
		for _, c := range r {
			row = append(row, c == 'g')
		}
		m.Rows = append(m.Rows, row)
	}
	return m
}

func TestJudgeAllGreenIsCorrect(t *testing.T) {
	m := matrixFrom([]string{"ggg", "ggg", "ggg"})
	for _, c := range Criteria() {
		v := &Validator{Criterion: c}
		rep := v.Judge(m)
		if !rep.Correct || len(rep.Wrong) != 0 {
			t.Errorf("%s: all-green judged wrong", c.Name)
		}
	}
}

func TestJudgeFullRedColumn(t *testing.T) {
	m := matrixFrom([]string{"rgg", "rgg", "rgg", "rgg"})
	for _, c := range Criteria() {
		v := &Validator{Criterion: c}
		rep := v.Judge(m)
		if rep.Correct {
			t.Errorf("%s: full red column not flagged", c.Name)
		}
		if len(rep.Wrong) != 1 || rep.Wrong[0] != 1 {
			t.Errorf("%s: wrong scenarios = %v", c.Name, rep.Wrong)
		}
	}
}

func TestJudgeThresholdSensitivity(t *testing.T) {
	// Column 1 red in 3/4 rows = 75%: flagged by 70% and 50%, not 100%.
	// No fully green row, so the green-row override stays out of play.
	m := matrixFrom([]string{"rg", "rg", "rr", "gg"})
	if (&Validator{Criterion: Wrong100}).Judge(m).Correct != true {
		t.Error("100%-wrong flagged a 75% column")
	}
	if (&Validator{Criterion: Wrong70}).Judge(m).Correct {
		t.Error("70%-wrong missed a 75% column")
	}
	if (&Validator{Criterion: Wrong50}).Judge(m).Correct {
		t.Error("50%-wrong missed a 75% column")
	}
}

func TestGreenRowOverride(t *testing.T) {
	// Column 1 is 70% red, but 30% of rows are fully green.
	rows := []string{"rg", "rg", "rg", "rg", "rg", "rg", "rg", "gg", "gg", "gg"}
	m := matrixFrom(rows)
	rep70 := (&Validator{Criterion: Wrong70}).Judge(m)
	if !rep70.Correct {
		t.Error("green-row override should accept the testbench")
	}
	rep100 := (&Validator{Criterion: Wrong100}).Judge(m)
	if !rep100.Correct {
		t.Error("100%-wrong has no full column here")
	}
}

func TestUncertainScenarios(t *testing.T) {
	// Column 1 is 50% red and column 2 25% red; exactly 25% of the
	// rows are fully green, which does NOT trigger the >25% override.
	m := matrixFrom([]string{"rg", "rr", "rg", "gg", "gg", "gr", "gr", "gr"})
	rep := (&Validator{Criterion: Wrong70}).Judge(m)
	if !rep.Correct {
		t.Fatal("sub-threshold columns should not flag")
	}
	if len(rep.Uncertain) != 2 {
		t.Errorf("uncertain = %v, want both columns", rep.Uncertain)
	}
	if len(rep.CorrectScenarios) != 0 {
		t.Errorf("correct = %v, want none", rep.CorrectScenarios)
	}
}

func TestGreenRowOverrideBoundary(t *testing.T) {
	// Exactly 25% fully green must not trigger (the paper says "more
	// than 25%").
	m := matrixFrom([]string{"rg", "rg", "rg", "gg"})
	rep := (&Validator{Criterion: Wrong70}).Judge(m)
	if rep.Correct {
		t.Error("75% red column with exactly 25% green rows should flag")
	}
}

func TestCriteriaMonotonicity(t *testing.T) {
	// Any scenario flagged by a stricter (higher) threshold must be
	// flagged by looser ones: wrong(100%) ⊆ wrong(70%) ⊆ wrong(50%).
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		m := &Matrix{}
		nr, ns := 2+rng.Intn(10), 1+rng.Intn(8)
		for i := 0; i < nr; i++ {
			row := make([]bool, ns)
			for j := range row {
				row[j] = rng.Intn(3) > 0
			}
			m.Rows = append(m.Rows, row)
		}
		w100 := (&Validator{Criterion: Criterion{Name: "100", WrongFrac: 1.0}}).Judge(m).Wrong
		w70 := (&Validator{Criterion: Criterion{Name: "70", WrongFrac: 0.7}}).Judge(m).Wrong
		w50 := (&Validator{Criterion: Criterion{Name: "50", WrongFrac: 0.5}}).Judge(m).Wrong
		if !subset(w100, w70) || !subset(w70, w50) {
			t.Fatalf("monotonicity violated: 100%%=%v 70%%=%v 50%%=%v\n%s", w100, w70, w50, m.Render())
		}
	}
}

func subset(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func TestEmptyMatrixForcesReboot(t *testing.T) {
	rep := (&Validator{Criterion: Wrong70}).Judge(&Matrix{})
	if rep.Correct || !rep.SimulationBroken {
		t.Error("no-information matrix must be judged wrong")
	}
}

func TestRenderShowsDimensions(t *testing.T) {
	m := matrixFrom([]string{"rg", "gg"})
	s := m.Render()
	if !strings.Contains(s, "2 RTLs x 2 scenarios") || !strings.Contains(s, "#") {
		t.Errorf("render output unexpected:\n%s", s)
	}
}

func TestGenerateRTLGroupRegenerationRule(t *testing.T) {
	p := dataset.ByName("adder8")
	prof := llm.GPT4o()
	// Force a profile where almost everything is syntax-broken; the
	// regeneration rule caps at 8 attempts but must try.
	bad := *prof
	bad.RTLSyntax = 0.95
	rng := rand.New(rand.NewSource(4))
	var acct llm.Accountant
	group, err := GenerateRTLGroup(p, &bad, 10, rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 10 {
		t.Fatalf("group size = %d", len(group))
	}
	// Normal profile: at least half clean, with token charges.
	acct = llm.Accountant{}
	group, err = GenerateRTLGroup(p, prof, 20, rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for _, c := range group {
		if !c.SyntaxBad {
			clean++
		}
	}
	if clean*2 < len(group) {
		t.Errorf("regeneration rule violated: %d/%d clean", clean, len(group))
	}
	if acct.Calls < 20 {
		t.Errorf("token calls = %d, want >= 20", acct.Calls)
	}
}

func TestEndToEndValidation(t *testing.T) {
	p := dataset.ByName("cnt8")
	prof := llm.GPT4o()
	rng := rand.New(rand.NewSource(21))
	var acct llm.Accountant
	group, err := GenerateRTLGroup(p, prof, 20, rng, &acct)
	if err != nil {
		t.Fatal(err)
	}
	// Clean testbench: golden checker + decent scenarios.
	scs, err := testbench.GenerateScenarios(p, rng, testbench.Coverage{Scenarios: 8, Steps: 10, Corners: true})
	if err != nil {
		t.Fatal(err)
	}
	clean := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: p.Source, CheckerTop: p.Top, CheckerSticky: -1}
	clean.DriverSource = testbench.EmitDriver(clean)
	v := &Validator{Criterion: Wrong70}
	rep := v.Validate(clean, group)
	if !rep.Correct {
		t.Errorf("clean testbench judged wrong; matrix:\n%s", rep.Matrix.Render())
	}

	// Faulty checker: inject an observable fault.
	golden, _ := p.Module()
	var faulty *testbench.Testbench
	for seed := int64(0); seed < 40; seed++ {
		plan := mutate.NewPlan(golden, rand.New(rand.NewSource(seed)), 1)
		mod, muts := plan.Build(golden)
		if len(muts) == 0 {
			continue
		}
		cand := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: verilog.PrintModule(mod), CheckerTop: p.Top, CheckerPlan: plan, CheckerSticky: -1}
		if res, err := cand.RunAgainstSource(p.Source, p.Top); err == nil && !res.Pass() {
			faulty = cand
			break
		}
	}
	if faulty == nil {
		t.Fatal("could not build an observably faulty checker")
	}
	faulty.DriverSource = testbench.EmitDriver(faulty)
	rep = v.Validate(faulty, group)
	if rep.Correct {
		t.Errorf("faulty testbench judged correct; matrix:\n%s", rep.Matrix.Render())
	}
	if len(rep.Wrong) == 0 {
		t.Error("no wrong scenarios reported for faulty testbench")
	}
}

func TestSyntaxBrokenTestbench(t *testing.T) {
	p := dataset.ByName("mux2_w4")
	scs, _ := testbench.GenerateScenarios(p, rand.New(rand.NewSource(1)), testbench.Coverage{Scenarios: 2, Steps: 2})
	tb := &testbench.Testbench{Problem: p, Scenarios: scs, CheckerSource: "module broken(", CheckerTop: p.Top, CheckerSticky: -1}
	tb.DriverSource = "also broken ("
	rep := (&Validator{Criterion: Wrong70}).Validate(tb, nil)
	if rep.Correct || !rep.SimulationBroken {
		t.Error("syntax-broken testbench must be judged wrong/broken")
	}
}

func TestCriterionByName(t *testing.T) {
	for _, name := range []string{"70%-wrong", "100%", "50%-wrong"} {
		if _, err := CriterionByName(name); err != nil {
			t.Errorf("CriterionByName(%q): %v", name, err)
		}
	}
	if _, err := CriterionByName("95%"); err == nil {
		t.Error("bogus criterion accepted")
	}
}
