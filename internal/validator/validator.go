// Package validator implements CorrectBench's scenario-based testbench
// self-validator: it asks the LLM for a group of N_R "imperfect" RTL
// implementations of the same specification, simulates each against the
// candidate testbench, assembles the RTL-Scenario (RS) boolean matrix,
// and judges the testbench with a column/row criterion (Section III-B
// of the paper). Because the imperfect RTLs' faults are (approximately)
// independent, a column that is red for most RTLs indicts the testbench
// rather than the RTLs.
package validator

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/mutate"
	"correctbench/internal/testbench"
	"correctbench/internal/verilog"
)

// Criterion is a validation rule over the RS matrix.
type Criterion struct {
	Name string
	// WrongFrac is the fraction of valid rows that must be red in a
	// column for the scenario to be flagged wrong (1.0, 0.7, 0.5).
	WrongFrac float64
	// GreenRowFrac, when positive, applies the paper's override: if
	// more than this fraction of RTLs match the testbench on every
	// scenario (fully green rows), the testbench is deemed correct.
	GreenRowFrac float64
}

// The three criteria studied in Section IV-C.
var (
	Wrong100 = Criterion{Name: "100%-wrong", WrongFrac: 1.0}
	Wrong70  = Criterion{Name: "70%-wrong", WrongFrac: 0.7, GreenRowFrac: 0.25}
	Wrong50  = Criterion{Name: "50%-wrong", WrongFrac: 0.5, GreenRowFrac: 0.25}
)

// Criteria lists the studied criteria in paper order.
func Criteria() []Criterion { return []Criterion{Wrong100, Wrong70, Wrong50} }

// CriterionByName resolves a criterion name.
func CriterionByName(name string) (Criterion, error) {
	for _, c := range Criteria() {
		if c.Name == name || strings.TrimSuffix(c.Name, "-wrong") == name {
			return c, nil
		}
	}
	return Criterion{}, fmt.Errorf("validator: unknown criterion %q", name)
}

// Matrix is the RS matrix: Rows[i][j] is true (green) when RTL i agrees
// with the testbench on scenario j.
type Matrix struct {
	Rows      [][]bool
	Discarded int // RTLs dropped for syntax/simulation failures
}

// NR returns the number of valid rows.
func (m *Matrix) NR() int { return len(m.Rows) }

// NS returns the number of scenarios (columns).
func (m *Matrix) NS() int {
	if len(m.Rows) == 0 {
		return 0
	}
	return len(m.Rows[0])
}

// ColumnRedFrac returns the fraction of rows that are red in column j.
func (m *Matrix) ColumnRedFrac(j int) float64 {
	if m.NR() == 0 {
		return 0
	}
	red := 0
	for _, row := range m.Rows {
		if !row[j] {
			red++
		}
	}
	return float64(red) / float64(m.NR())
}

// GreenRowFrac returns the fraction of rows that are fully green.
func (m *Matrix) GreenRowFrac() float64 {
	if m.NR() == 0 {
		return 0
	}
	green := 0
	for _, row := range m.Rows {
		all := true
		for _, ok := range row {
			if !ok {
				all = false
				break
			}
		}
		if all {
			green++
		}
	}
	return float64(green) / float64(m.NR())
}

// Render draws the matrix as ASCII art (Fig. 4): '#' red, '.' green.
func (m *Matrix) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RS matrix: %d RTLs x %d scenarios (%d discarded)\n", m.NR(), m.NS(), m.Discarded)
	sb.WriteString("      scenario ")
	for j := 1; j <= m.NS(); j++ {
		sb.WriteString(fmt.Sprintf("%2d", j%100))
	}
	sb.WriteString("\n")
	for i, row := range m.Rows {
		fmt.Fprintf(&sb, "rtl %2d         ", i+1)
		for _, green := range row {
			if green {
				sb.WriteString(" .")
			} else {
				sb.WriteString(" #")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Report is the validator's verdict plus the bug information handed to
// the corrector.
type Report struct {
	Correct bool
	// Wrong, CorrectScenarios and Uncertain are 1-based scenario
	// indexes classified by the criterion.
	Wrong            []int
	CorrectScenarios []int
	Uncertain        []int
	Matrix           *Matrix
	// SimulationBroken is set when the testbench itself cannot be
	// parsed or simulated; no scenario information is available.
	SimulationBroken bool
}

// RTLCandidate is one generated imperfect RTL.
type RTLCandidate struct {
	Source string
	// Correct marks candidates generated without injected faults
	// (known only to the experiment harness, never the criterion).
	Correct bool
	// SyntaxBad marks candidates whose text was corrupted.
	SyntaxBad bool
}

// GenerateRTLGroup produces the validator's N_R imperfect RTL designs
// per the paper's regeneration rule: candidates with syntax errors are
// kept (their rows will be discarded), but if more than half of the
// group is syntax-broken, broken entries are regenerated until at least
// half are clean.
func GenerateRTLGroup(p *dataset.Problem, prof *llm.Profile, nr int, rng *rand.Rand, acct *llm.Accountant) ([]RTLCandidate, error) {
	golden, err := p.Module()
	if err != nil {
		return nil, err
	}
	gen := func() RTLCandidate {
		acct.Charge(rng, prof.TokensRTLIn+len(p.Spec)/4, prof.TokensRTLOut)
		if rng.Float64() < prof.RTLSyntax {
			return RTLCandidate{Source: mutate.CorruptSyntax(verilog.PrintModule(golden), rng), SyntaxBad: true}
		}
		if rng.Float64() < prof.RTLCorrect {
			return RTLCandidate{Source: verilog.PrintModule(golden), Correct: true}
		}
		mut, _ := mutate.Mutate(golden, rng, prof.SampleRTLFaultCount(rng))
		return RTLCandidate{Source: verilog.PrintModule(mut)}
	}
	out := make([]RTLCandidate, nr)
	for i := range out {
		out[i] = gen()
	}
	for attempts := 0; attempts < 8; attempts++ {
		bad := 0
		for _, c := range out {
			if c.SyntaxBad {
				bad++
			}
		}
		if bad*2 <= nr {
			break
		}
		for i := range out {
			if out[i].SyntaxBad {
				out[i] = gen()
			}
		}
	}
	return out, nil
}

// Validator validates testbenches against an RTL group.
type Validator struct {
	Criterion Criterion
}

// BuildMatrix simulates every RTL candidate against the testbench.
// Rows for syntax-broken or unsimulatable RTLs are discarded. A broken
// testbench (parse/elaboration/checker failure) yields a Report with
// SimulationBroken set instead of a matrix.
func (v *Validator) BuildMatrix(tb *testbench.Testbench, group []RTLCandidate) (*Matrix, bool) {
	m, ok, _ := v.BuildMatrixContext(context.Background(), tb, group)
	return m, ok
}

// BuildMatrixContext is BuildMatrix with cancellation. The returned
// error is non-nil only when ctx was cancelled mid-build; a cancelled
// candidate simulation is never misread as a discarded RTL row.
func (v *Validator) BuildMatrixContext(ctx context.Context, tb *testbench.Testbench, group []RTLCandidate) (*Matrix, bool, error) {
	if !tb.SyntaxOK() {
		return nil, false, nil
	}
	m := &Matrix{}
	for _, cand := range group {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		res, err := tb.RunAgainstSourceContext(ctx, cand.Source, tb.Problem.Top)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, false, cerr
			}
			if strings.HasPrefix(err.Error(), "checker:") {
				// The testbench's own checker is broken.
				return nil, false, nil
			}
			m.Discarded++
			continue
		}
		m.Rows = append(m.Rows, res.ScenarioPass)
	}
	return m, true, nil
}

// Judge applies the criterion to a matrix.
func (v *Validator) Judge(m *Matrix) *Report {
	rep := &Report{Matrix: m, Correct: true}
	if m.NR() == 0 {
		// No information: treat as wrong with no bug info, forcing a
		// reboot rather than a blind pass.
		rep.Correct = false
		rep.SimulationBroken = true
		return rep
	}
	if v.Criterion.GreenRowFrac > 0 && m.GreenRowFrac() > v.Criterion.GreenRowFrac {
		// Green-row override: enough RTLs match the testbench on every
		// scenario, so the testbench is deemed correct.
		for j := 0; j < m.NS(); j++ {
			rep.CorrectScenarios = append(rep.CorrectScenarios, j+1)
		}
		return rep
	}
	for j := 0; j < m.NS(); j++ {
		red := m.ColumnRedFrac(j)
		switch {
		case red >= v.Criterion.WrongFrac:
			rep.Wrong = append(rep.Wrong, j+1)
			rep.Correct = false
		case red == 0:
			rep.CorrectScenarios = append(rep.CorrectScenarios, j+1)
		default:
			rep.Uncertain = append(rep.Uncertain, j+1)
		}
	}
	return rep
}

// Validate runs the full validation of one testbench.
func (v *Validator) Validate(tb *testbench.Testbench, group []RTLCandidate) *Report {
	rep, _ := v.ValidateContext(context.Background(), tb, group)
	return rep
}

// ValidateContext is Validate with cancellation; the error is non-nil
// only when ctx was cancelled before the verdict was reached.
func (v *Validator) ValidateContext(ctx context.Context, tb *testbench.Testbench, group []RTLCandidate) (*Report, error) {
	m, ok, err := v.BuildMatrixContext(ctx, tb, group)
	if err != nil {
		return nil, err
	}
	if !ok {
		return &Report{Correct: false, SimulationBroken: true}, nil
	}
	return v.Judge(m), nil
}
