package faults

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NodePlan is a deterministic node-level fault schedule for one fleet
// worker (internal/exec): the failure modes of distributed cell
// execution — a worker dying mid-run, cell responses lost or delayed
// in transit, and plain network latency. Like Plan, every decision is
// a pure function of (Seed, operation kind, operation index): the
// N-th result frame a worker emits always draws the same fate, so a
// fault schedule replays identically and differential tests can prove
// the coordinator's recovery (work stealing, reassignment, dedup)
// keeps event streams byte-identical to a clean run.
type NodePlan struct {
	// Seed drives every fault decision via internal/rng.
	Seed int64

	// KillAtResult, when > 0, kills the node as it tries to send its
	// N-th result frame (1-based): that frame is never delivered and
	// every connection of the node is severed — the abrupt
	// worker-death schedule. The coordinator must detect the death and
	// reassign the node's cells, including the one whose result died
	// with it.
	KillAtResult int64

	// DropResultRate silently swallows result frames (the cell
	// executed, its response was lost): the coordinator's straggler
	// reassignment must re-execute the cell elsewhere, and the dedup
	// gate must absorb the duplicate if the original ever surfaces.
	DropResultRate float64

	// DelayResultRate holds a result frame for a uniform duration in
	// (0, MaxResultDelay] before delivery (slow link, GC pause):
	// reshuffles completion order and races speculative re-execution.
	DelayResultRate float64
	MaxResultDelay  time.Duration

	// FrameLatencyRate injects a uniform delay in (0, MaxFrameLatency]
	// into arbitrary frame writes (results, pongs, draining notices) —
	// generic network latency, including delayed health-probe answers.
	FrameLatencyRate float64
	MaxFrameLatency  time.Duration
}

// decide and delay share Plan's derivation, so node-level and
// store-level schedules draw from the same deterministic coin.
func (p NodePlan) decide(kind string, n int64, rate float64) bool {
	return Plan{Seed: p.Seed}.decide(kind, n, rate)
}

func (p NodePlan) delay(kind string, n int64, rate float64, max time.Duration) time.Duration {
	return Plan{Seed: p.Seed}.delay(kind, n, rate, max)
}

// NodeCounts reports what a node injector has inflicted so far.
type NodeCounts struct {
	Results        int64 `json:"results"` // result frames seen (pre-fault)
	Killed         bool  `json:"killed"`
	DroppedResults int64 `json:"dropped_results"`
	DelayedResults int64 `json:"delayed_results"`
	DelayedFrames  int64 `json:"delayed_frames"`
}

// resultMarker identifies a result frame inside an encoded protocol
// frame. The exec protocol writes exactly one frame per Write call,
// so sniffing the payload is reliable, not heuristic.
var resultMarker = []byte(`"op":"result"`)

// Node injects a NodePlan into a worker's transport. Wrap the
// worker's listener (WrapListener) so every accepted connection
// counts toward one shared, deterministic result sequence — a node
// dies as a whole, not one connection at a time.
type Node struct {
	plan    NodePlan
	results atomic.Int64
	killed  atomic.Bool

	mu     sync.Mutex
	conns  []net.Conn
	counts NodeCounts
}

// NewNode returns an injector for one worker node.
func NewNode(plan NodePlan) *Node { return &Node{plan: plan} }

// Counts returns the injected-fault totals.
func (n *Node) Counts() NodeCounts {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.counts
	c.Results = n.results.Load()
	c.Killed = n.killed.Load()
	return c
}

// Killed reports whether the kill schedule has fired.
func (n *Node) Killed() bool { return n.killed.Load() }

// Kill severs every connection of the node immediately (and all
// future ones), regardless of schedule — the SIGKILL lever for tests
// that decide the moment themselves.
func (n *Node) Kill() {
	if n.killed.Swap(true) {
		return
	}
	n.mu.Lock()
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// WrapListener decorates a worker listener so every accepted
// connection is fault-injected and tracked for the kill schedule.
func (n *Node) WrapListener(ln net.Listener) net.Listener {
	return &nodeListener{Listener: ln, node: n}
}

type nodeListener struct {
	net.Listener
	node *Node
}

func (l *nodeListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.node.killed.Load() {
		conn.Close()
		return nil, net.ErrClosed
	}
	l.node.mu.Lock()
	l.node.conns = append(l.node.conns, conn)
	l.node.mu.Unlock()
	return &nodeConn{Conn: conn, node: l.node}, nil
}

type nodeConn struct {
	net.Conn
	node *Node
}

// Write applies the node's fault schedule to one outgoing frame (the
// exec protocol writes one frame per call). Faults only ever touch
// the transport: the cell itself executed normally, which is exactly
// the lost-response failure mode.
func (c *nodeConn) Write(b []byte) (int, error) {
	n := c.node
	if n.killed.Load() {
		return 0, net.ErrClosed
	}
	if d := n.plan.delay("nodeframe", n.results.Load(), n.plan.FrameLatencyRate, n.plan.MaxFrameLatency); d > 0 {
		n.mu.Lock()
		n.counts.DelayedFrames++
		n.mu.Unlock()
		time.Sleep(d)
	}
	if !bytes.Contains(b, resultMarker) {
		return c.Conn.Write(b)
	}
	seq := n.results.Add(1) // 1-based result index
	if n.plan.KillAtResult > 0 && seq >= n.plan.KillAtResult {
		n.Kill()
		return 0, net.ErrClosed
	}
	if n.plan.decide("noderesultdrop", seq, n.plan.DropResultRate) {
		n.mu.Lock()
		n.counts.DroppedResults++
		n.mu.Unlock()
		return len(b), nil // swallowed: the coordinator never sees it
	}
	if d := n.plan.delay("noderesult", seq, n.plan.DelayResultRate, n.plan.MaxResultDelay); d > 0 {
		n.mu.Lock()
		n.counts.DelayedResults++
		n.mu.Unlock()
		time.Sleep(d)
	}
	return c.Conn.Write(b)
}
