package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"correctbench/internal/store"
)

func key(b byte) store.Key { return store.Key{b} }

// TestFaultPlanDeterministic: the same plan makes the same decision
// for the same (kind, op) forever — the property every chaos
// differential rests on.
func TestFaultPlanDeterministic(t *testing.T) {
	p := Plan{Seed: 7, PutErrorRate: 0.4, GetMissRate: 0.3, LatencyRate: 0.5, MaxLatency: time.Millisecond}
	for n := int64(0); n < 200; n++ {
		for _, kind := range []string{"puterr", "getmiss", "lostack"} {
			if p.decide(kind, n, 0.4) != p.decide(kind, n, 0.4) {
				t.Fatalf("decide(%s, %d) nondeterministic", kind, n)
			}
		}
		if p.delay("get", n, 0.5, time.Millisecond) != p.delay("get", n, 0.5, time.Millisecond) {
			t.Fatalf("delay(get, %d) nondeterministic", n)
		}
	}
	// Different seeds must actually produce different schedules.
	q := Plan{Seed: 8, PutErrorRate: 0.4}
	same := true
	for n := int64(0); n < 64; n++ {
		if p.decide("puterr", n, 0.4) != q.decide("puterr", n, 0.4) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 64-op schedules")
	}
}

// TestFaultStoreInjectsAndCounts drives a wrapped memory store through
// a fixed op sequence twice and checks the two passes inject
// identically, every injected error is ErrInjected, and lost acks
// really landed in the inner store.
func TestFaultStoreInjectsAndCounts(t *testing.T) {
	plan := Plan{Seed: 3, PutErrorRate: 0.5, LostAckRate: 0.3, GetMissRate: 0.5}
	run := func() (Counts, int, int) {
		inner := store.NewMemory(0)
		s := Wrap(inner, plan)
		putErrs, landed := 0, 0
		for i := byte(0); i < 50; i++ {
			if err := s.Put(key(i), store.Outcome{Problem: "p"}); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error type: %v", err)
				}
				putErrs++
			}
			if _, ok := inner.Get(key(i)); ok {
				landed++
			}
			s.Get(key(i))
		}
		return s.Counts(), putErrs, landed
	}
	c1, errs1, landed1 := run()
	c2, errs2, landed2 := run()
	if c1 != c2 || errs1 != errs2 || landed1 != landed2 {
		t.Fatalf("two identical passes diverged: %+v/%d/%d vs %+v/%d/%d", c1, errs1, landed1, c2, errs2, landed2)
	}
	if c1.PutErrors == 0 || c1.LostAcks == 0 || c1.GetMisses == 0 {
		t.Fatalf("schedule injected nothing: %+v", c1)
	}
	// Lost acks are written then denied: the inner store must hold
	// strictly more than the acked puts.
	if landed1 != 50-int(c1.PutErrors)-int(c1.DeadOps) {
		t.Errorf("landed = %d, want %d (all but clean put errors)", landed1, 50-int(c1.PutErrors))
	}
}

// TestFaultStoreDiesAtOpN: from FailAfterOps on, every Put errors and
// every Get misses; before it, the store behaves.
func TestFaultStoreDiesAtOpN(t *testing.T) {
	inner := store.NewMemory(0)
	s := Wrap(inner, Plan{Seed: 1, FailAfterOps: 4})
	for i := byte(0); i < 4; i++ {
		if err := s.Put(key(i), store.Outcome{Problem: "p"}); err != nil {
			t.Fatalf("op %d failed before the death point: %v", i, err)
		}
	}
	if err := s.Put(key(9), store.Outcome{Problem: "p"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("put after death = %v, want ErrInjected", err)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("get after death returned a hit")
	}
	if c := s.Counts(); c.DeadOps != 2 {
		t.Errorf("dead ops = %d, want 2", c.DeadOps)
	}
}

// TestFaultInjectorCellDelays: the per-cell delay schedule is keyed by
// canonical index, so the same cells are delayed on every run.
func TestFaultInjectorCellDelays(t *testing.T) {
	plan := Plan{Seed: 5, CellDelayRate: 0.5, MaxCellDelay: time.Microsecond}
	schedule := make([]bool, 64)
	want := 0
	for i := range schedule {
		schedule[i] = plan.delay("cell", int64(i), plan.CellDelayRate, plan.MaxCellDelay) > 0
		if schedule[i] {
			want++
		}
	}
	if want == 0 || want == len(schedule) {
		t.Fatalf("degenerate schedule: %d/%d delayed", want, len(schedule))
	}
	inj := New(plan)
	for i := range schedule {
		inj.CellStart(i)
	}
	if got := int(inj.Delays()); got != want {
		t.Fatalf("injector delayed %d cells, schedule says %d", got, want)
	}
}

// TestFaultTearShards tears a synthetic shard directory and checks
// the schedule is deterministic, respects the header, and actually
// shortens the torn files.
func TestFaultTearShards(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		for i, name := range []string{"a.shard", "b.shard", "c.shard", "d.shard"} {
			data := make([]byte, 100+10*i)
			for j := range data {
				data[j] = byte(j)
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Non-shard files must be left alone.
		if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	sizes := func(t *testing.T, dir string) map[string]int64 {
		out := map[string]int64{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = info.Size()
		}
		return out
	}

	d1, d2 := build(t), build(t)
	n1, err := TearShards(d1, 4)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := TearShards(d2, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := sizes(t, d1), sizes(t, d2)
	if n1 != n2 {
		t.Fatalf("torn counts differ: %d vs %d", n1, n2)
	}
	for name, sz := range s1 {
		if s2[name] != sz {
			t.Errorf("%s: sizes diverged %d vs %d under the same seed", name, sz, s2[name])
		}
	}
	if n1 == 0 {
		t.Fatal("seed 4 tore nothing; pick a seed that exercises the tear path")
	}
	if s1["index.json"] != 1 {
		t.Error("non-shard file was modified")
	}
	torn := 0
	for name, sz := range s1 {
		if name == "index.json" {
			continue
		}
		if sz < 8 {
			t.Errorf("%s torn into the header: %d bytes", name, sz)
		}
		orig := int64(100 + 10*int(name[0]-'a'))
		if sz < orig {
			torn++
			if orig-sz > 40 {
				t.Errorf("%s lost %d bytes, cap is 40", name, orig-sz)
			}
		}
	}
	if torn != n1 {
		t.Errorf("reported %d torn files, observed %d", n1, torn)
	}
}
