// Package faults is a deterministic, seed-driven fault injector for
// chaos-testing the evaluation pipeline. It produces the failure modes
// that dominate the service at scale — transient store errors, lost
// acknowledgements, injected latency, a device that dies mid-run, and
// crash-torn shard tails — as pure functions of a seed and an
// operation index, so every failure schedule is reproducible: the
// N-th store operation (or the cell with canonical index N) always
// draws the same fault decision from the same Plan, via the same
// internal/rng derivation the harness uses for experiment randomness.
//
// Three entry points:
//
//   - Wrap(store, plan) decorates any store.Store with injected Get
//     misses, Put errors, lost acks and latency;
//   - New(plan).CellStart is a harness.Config.CellHook that injects
//     deterministic per-cell latency into the worker path, reshuffling
//     completion order without (provably) changing the event stream;
//   - TearShards(dir, seed) deterministically tears the tails of disk
//     shards, simulating the partial appends a crash leaves behind.
//
// The package is production-shaped but test-purposed: nothing in the
// serving path imports it, while chaos tests and cmd/benchjson use it
// to prove the robustness guarantees hold under seeded fault
// schedules.
package faults

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"correctbench/internal/rng"
	"correctbench/internal/store"
)

// ErrInjected is the error every injected Put fault returns; callers
// can distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected store fault")

// Plan is one deterministic fault schedule. All rates are
// probabilities in [0,1]; each operation's decision is a pure function
// of (Seed, operation kind, operation index), so a schedule replays
// identically for the same operation sequence.
type Plan struct {
	// Seed drives every fault decision via internal/rng.
	Seed int64

	// GetMissRate forces store lookups to miss (unreadable data): the
	// harness must re-simulate the cell and still produce the same
	// stream.
	GetMissRate float64
	// PutErrorRate fails store write-backs with ErrInjected before the
	// inner store sees them (transient write fault).
	PutErrorRate float64
	// LostAckRate performs the write-back on the inner store but still
	// reports ErrInjected (the classic acknowledged-write-lost-ack
	// tear): a retry must be a harmless no-op, never a duplicate.
	LostAckRate float64
	// LatencyRate injects a uniform delay in (0, MaxLatency] into store
	// operations (slow disk, contended volume).
	LatencyRate float64
	MaxLatency  time.Duration

	// FailAfterOps, when > 0, kills the store at operation N: every
	// store operation from the N-th on fails (Get misses, Put returns
	// ErrInjected) — the pulled-disk schedule that must degrade the
	// harness to cache-bypass mode, not fail the job.
	FailAfterOps int64

	// CellDelayRate injects a uniform delay in (0, MaxCellDelay] before
	// a cell simulates (Injector.CellStart). Keyed by the canonical
	// cell index — not arrival order — so the delayed set is identical
	// at any worker count.
	CellDelayRate float64
	MaxCellDelay  time.Duration
}

// decide is the one deterministic coin: operation (kind, n) under this
// plan fires iff its derived uniform draw lands under rate.
func (p Plan) decide(kind string, n int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return rng.New(p.Seed).Child("fault", kind).ChildN("op", int(n)).Rand().Float64() < rate
}

// delay derives the deterministic latency for operation (kind, n), or
// 0 when the latency coin does not fire.
func (p Plan) delay(kind string, n int64, rate float64, max time.Duration) time.Duration {
	if rate <= 0 || max <= 0 {
		return 0
	}
	r := rng.New(p.Seed).Child("delay", kind).ChildN("op", int(n)).Rand()
	if r.Float64() >= rate {
		return 0
	}
	return time.Duration(1 + r.Int63n(int64(max)))
}

// Counts reports what an injector (or fault-wrapped store) has
// injected so far. All fields are totals since construction.
type Counts struct {
	GetMisses int64 `json:"get_misses"`
	PutErrors int64 `json:"put_errors"`
	LostAcks  int64 `json:"lost_acks"`
	Delays    int64 `json:"delays"`
	DeadOps   int64 `json:"dead_ops"`
}

// Store decorates an inner store.Store with the Plan's fault
// schedule. It is safe for concurrent use; the operation counter is
// global across goroutines, so under concurrency the decision
// *sequence* is fixed while the victim of the N-th decision depends on
// scheduling — which is exactly the chaos being tested.
type Store struct {
	inner store.Store
	plan  Plan
	ops   atomic.Int64

	mu     sync.Mutex
	counts Counts
}

// Wrap decorates a store with a fault schedule.
func Wrap(inner store.Store, plan Plan) *Store {
	return &Store{inner: inner, plan: plan}
}

// Ops returns the number of store operations seen so far.
func (s *Store) Ops() int64 { return s.ops.Load() }

// Counts returns the injected-fault totals.
func (s *Store) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

func (s *Store) sleep(kind string, n int64) {
	if d := s.plan.delay(kind, n, s.plan.LatencyRate, s.plan.MaxLatency); d > 0 {
		s.mu.Lock()
		s.counts.Delays++
		s.mu.Unlock()
		time.Sleep(d)
	}
}

func (s *Store) dead(n int64) bool {
	if s.plan.FailAfterOps > 0 && n >= s.plan.FailAfterOps {
		s.mu.Lock()
		s.counts.DeadOps++
		s.mu.Unlock()
		return true
	}
	return false
}

// Get implements store.Store: injected faults surface as misses (the
// interface has no read error), which is also how a real store
// degrades — an unreadable cell is simply re-simulated.
func (s *Store) Get(k store.Key) (store.Outcome, bool) {
	n := s.ops.Add(1) - 1
	s.sleep("get", n)
	if s.dead(n) {
		return store.Outcome{}, false
	}
	if s.plan.decide("getmiss", n, s.plan.GetMissRate) {
		s.mu.Lock()
		s.counts.GetMisses++
		s.mu.Unlock()
		return store.Outcome{}, false
	}
	return s.inner.Get(k)
}

// Put implements store.Store with three injected failure modes: a
// clean error before the write (transient fault), a lost ack after a
// successful write (torn acknowledgement — the retry must dedup), and
// the dead-store mode.
func (s *Store) Put(k store.Key, o store.Outcome) error {
	n := s.ops.Add(1) - 1
	s.sleep("put", n)
	if s.dead(n) {
		return fmt.Errorf("%w (store dead at op %d)", ErrInjected, n)
	}
	if s.plan.decide("puterr", n, s.plan.PutErrorRate) {
		s.mu.Lock()
		s.counts.PutErrors++
		s.mu.Unlock()
		return fmt.Errorf("%w (put op %d)", ErrInjected, n)
	}
	if s.plan.decide("lostack", n, s.plan.LostAckRate) {
		err := s.inner.Put(k, o)
		s.mu.Lock()
		s.counts.LostAcks++
		s.mu.Unlock()
		if err != nil {
			return err
		}
		return fmt.Errorf("%w (ack lost, op %d)", ErrInjected, n)
	}
	return s.inner.Put(k, o)
}

// Stats implements store.Store, passing the inner store's counters
// through — what actually landed, not what was attempted.
func (s *Store) Stats() store.Stats { return s.inner.Stats() }

// Close implements store.Store.
func (s *Store) Close() error { return s.inner.Close() }

// Injector drives the harness worker path (Config.CellHook): a
// deterministic per-cell latency schedule that reshuffles completion
// order under concurrency. The event-stream contract says reshuffling
// must be invisible; chaos tests prove it.
type Injector struct {
	plan   Plan
	delays atomic.Int64
}

// New returns an injector over a plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// CellStart injects the cell's deterministic delay; pass it as
// harness.Config.CellHook. Keyed by the canonical cell index, so the
// same cells are delayed no matter how cells land on workers.
func (i *Injector) CellStart(index int) {
	if d := i.plan.delay("cell", int64(index), i.plan.CellDelayRate, i.plan.MaxCellDelay); d > 0 {
		i.delays.Add(1)
		time.Sleep(d)
	}
}

// Delays reports how many cells were delayed.
func (i *Injector) Delays() int64 { return i.delays.Load() }

// TearShards simulates crash-torn appends on a disk store directory:
// for every *.shard file (sorted, so the schedule is path-order
// independent), a per-file coin decides whether to tear it, and a torn
// file loses a uniform 1..40 byte tail — enough to clip a record
// boundary or CRC, never the whole shard. The store's loader must
// skip-and-count the torn record and the harness must re-simulate the
// lost cells with a byte-identical stream. Returns the torn file
// count. The directory must not have a live writer.
func TearShards(dir string, seed int64) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("faults: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".shard") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	torn := 0
	for _, name := range names {
		r := rng.New(seed).Child("tear", name).Rand()
		if r.Float64() >= 0.5 {
			continue
		}
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			return torn, fmt.Errorf("faults: %w", err)
		}
		cut := 1 + r.Int63n(40)
		// Never tear into the header: a headerless file is a different
		// failure mode (stale shard), covered separately.
		if info.Size()-cut < 8 {
			continue
		}
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			return torn, fmt.Errorf("faults: %w", err)
		}
		torn++
	}
	return torn, nil
}
