package faults

import (
	"net"
	"sync"
	"testing"
	"time"
)

// memListener hands pre-made server conns to Accept.
type memListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn, 8), closed: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (l *memListener) Addr() net.Addr { return memAddr{} }

// pipeThrough returns a fault-wrapped server conn and the raw client
// end it writes to.
func pipeThrough(t *testing.T, node *Node) (server net.Conn, client net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	ln := newMemListener()
	ln.ch <- c2
	wrapped := node.WrapListener(ln)
	s, err := wrapped.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return s, c1
}

// drain reads n bytes from c into the void, concurrently.
func drain(c net.Conn, stop <-chan struct{}) {
	buf := make([]byte, 4096)
	for {
		select {
		case <-stop:
			return
		default:
		}
		c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := c.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}

var resultFrame = []byte(`....{"v":1,"op":"result","index":3,"ok":true}`)
var pingFrame = []byte(`....{"v":1,"op":"pong"}`)

func TestNodeKillAtResultSeversEverything(t *testing.T) {
	node := NewNode(NodePlan{Seed: 7, KillAtResult: 3})
	server, client := pipeThrough(t, node)
	stop := make(chan struct{})
	defer close(stop)
	go drain(client, stop)

	for i := 0; i < 2; i++ {
		if _, err := server.Write(resultFrame); err != nil {
			t.Fatalf("result %d: %v", i+1, err)
		}
	}
	if node.Killed() {
		t.Fatal("killed before the scheduled result")
	}
	if _, err := server.Write(resultFrame); err == nil {
		t.Fatal("3rd result delivered; want the node dead")
	}
	if !node.Killed() {
		t.Fatal("kill schedule did not fire")
	}
	// Dead is dead: non-result frames fail too.
	if _, err := server.Write(pingFrame); err == nil {
		t.Fatal("write after death succeeded")
	}
	c := node.Counts()
	if !c.Killed || c.Results != 3 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestNodeDropResultSwallowsDeterministically(t *testing.T) {
	// Same plan twice: the set of dropped result indices must match.
	run := func() []int64 {
		node := NewNode(NodePlan{Seed: 11, DropResultRate: 0.4})
		server, client := pipeThrough(t, node)
		stop := make(chan struct{})
		defer close(stop)

		received := make(chan int, 64)
		go func() {
			buf := make([]byte, 4096)
			for {
				n, err := client.Read(buf)
				if err != nil {
					return
				}
				received <- n
			}
		}()
		var dropped []int64
		for i := int64(1); i <= 10; i++ {
			if _, err := server.Write(resultFrame); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			select {
			case <-received:
			case <-time.After(200 * time.Millisecond):
				dropped = append(dropped, i)
			}
		}
		if got := node.Counts().DroppedResults; int(got) != len(dropped) {
			t.Fatalf("counter says %d drops, observed %d", got, len(dropped))
		}
		return dropped
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("0.4 drop rate dropped nothing in 10 results")
	}
	if len(a) != len(b) {
		t.Fatalf("drop schedule not deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop schedule not deterministic: %v vs %v", a, b)
		}
	}
}

func TestNodeNonResultFramesUntouchedByResultFaults(t *testing.T) {
	node := NewNode(NodePlan{Seed: 3, DropResultRate: 1.0})
	server, client := pipeThrough(t, node)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4096)
		n, err := client.Read(buf)
		if err != nil {
			return
		}
		got <- append([]byte(nil), buf[:n]...)
	}()
	if _, err := server.Write(pingFrame); err != nil {
		t.Fatalf("pong write: %v", err)
	}
	select {
	case b := <-got:
		if string(b) != string(pingFrame) {
			t.Fatalf("pong frame mangled: %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("pong frame swallowed by a result-only fault")
	}
}

func TestNodeManualKill(t *testing.T) {
	node := NewNode(NodePlan{Seed: 1})
	server, _ := pipeThrough(t, node)
	node.Kill()
	if _, err := server.Write(resultFrame); err == nil {
		t.Fatal("write after Kill succeeded")
	}
	// New connections are refused outright.
	ln := newMemListener()
	c1, c2 := net.Pipe()
	defer c1.Close()
	ln.ch <- c2
	if _, err := node.WrapListener(ln).Accept(); err == nil {
		t.Fatal("accept after Kill succeeded")
	}
}
