package core

import (
	"math/rand"
	"testing"

	"correctbench/internal/autoeval"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
)

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opt := DefaultOptions(llm.GPT4o())
	if opt.MaxCorrections != 3 || opt.MaxReboots != 10 || opt.NR != 20 {
		t.Errorf("defaults = %+v, want I_C=3 I_R=10 N_R=20", opt)
	}
	if opt.Criterion.Name != "70%-wrong" {
		t.Errorf("default criterion = %s", opt.Criterion.Name)
	}
}

func TestRunTerminatesWithinBudgets(t *testing.T) {
	opt := DefaultOptions(llm.GPT4o())
	for _, name := range []string{"mux2_w4", "cnt8", "det101"} {
		p := dataset.ByName(name)
		rng := rand.New(rand.NewSource(1))
		res, err := Run(p, opt, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr := res.Trace
		if tr.Reboots > opt.MaxReboots {
			t.Errorf("%s: reboots %d exceed budget", name, tr.Reboots)
		}
		if len(tr.Events) == 0 || tr.Events[len(tr.Events)-1].Action != ActionPass {
			t.Errorf("%s: trace does not end with Pass: %v", name, tr.Events)
		}
		if res.Testbench == nil {
			t.Fatalf("%s: no final testbench", name)
		}
	}
}

func TestRunRequiresProfile(t *testing.T) {
	if _, err := Run(dataset.ByName("dff"), Options{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("missing profile accepted")
	}
}

func TestValidatedPassesAreUsuallyEval2(t *testing.T) {
	// Validated final testbenches should mostly be genuinely good:
	// this is the whole point of the framework.
	opt := DefaultOptions(llm.GPT4o())
	eval := autoeval.NewEvaluator(99)
	validated, eval2 := 0, 0
	rng := rand.New(rand.NewSource(7))
	for _, name := range []string{"adder8", "alu4", "cnt8", "sipo8", "mux4_w4", "parity_even8", "cmp_full4", "edge_rise"} {
		p := dataset.ByName(name)
		res, err := Run(p, opt, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Trace.FinalValidated {
			continue
		}
		validated++
		g, err := eval.Evaluate(res.Testbench)
		if err != nil {
			t.Fatal(err)
		}
		if g == autoeval.GradeEval2 {
			eval2++
		}
	}
	if validated == 0 {
		t.Fatal("no task ended with a validated pass")
	}
	if eval2*2 < validated {
		t.Errorf("only %d/%d validated passes reach Eval2", eval2, validated)
	}
}

func TestTraceTokensAccumulate(t *testing.T) {
	opt := DefaultOptions(llm.GPT4o())
	p := dataset.ByName("det1101") // hard SEQ: likely corrections/reboots
	rng := rand.New(rand.NewSource(3))
	res, err := Run(p, opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Tokens.In == 0 || res.Trace.Tokens.Out == 0 {
		t.Error("no tokens recorded")
	}
	// The RTL group alone costs 20 calls.
	if res.Trace.Tokens.Calls < 20 {
		t.Errorf("calls = %d, want >= 20", res.Trace.Tokens.Calls)
	}
}

func TestDeterminismUnderSameSeed(t *testing.T) {
	opt := DefaultOptions(llm.GPT4o())
	p := dataset.ByName("cnt4")
	r1, err := Run(p, opt, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, opt, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace.Corrections != r2.Trace.Corrections || r1.Trace.Reboots != r2.Trace.Reboots {
		t.Errorf("non-deterministic traces: %+v vs %+v", r1.Trace, r2.Trace)
	}
	if r1.Testbench.CheckerSource != r2.Testbench.CheckerSource {
		t.Error("non-deterministic final checker")
	}
}

func TestCorrectorShapedImpliesValidated(t *testing.T) {
	opt := DefaultOptions(llm.GPT4o())
	rng := rand.New(rand.NewSource(11))
	for _, p := range dataset.OfKind(dataset.SEQ)[:12] {
		res, err := Run(p, opt, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace.CorrectorShaped && !res.Trace.FinalValidated {
			t.Errorf("%s: corrector credited without validated pass", p.Name)
		}
	}
}
