// Package core implements CorrectBench's top-level workflow
// (Algorithm 1 of the paper): an action agent that validates each
// generated testbench, corrects it with bug information while the
// correction budget I_C lasts, reboots the whole generation while the
// reboot budget I_R lasts, and otherwise passes the testbench through.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"correctbench/internal/autobench"
	"correctbench/internal/corrector"
	"correctbench/internal/dataset"
	"correctbench/internal/llm"
	"correctbench/internal/testbench"
	"correctbench/internal/validator"
)

// Action is the agent's decision after a validation round.
type Action string

// The three actions of Algorithm 1.
const (
	ActionCorrecting Action = "Correcting"
	ActionRebooting  Action = "Rebooting"
	ActionPass       Action = "Pass"
)

// Options configures a CorrectBench run.
type Options struct {
	Profile   *llm.Profile
	Criterion validator.Criterion
	// MaxCorrections is I_C^max (paper: 3).
	MaxCorrections int
	// MaxReboots is I_R^max (paper: 10).
	MaxReboots int
	// NR is the imperfect-RTL group size (paper: 20).
	NR int
}

// DefaultOptions returns the paper's experimental configuration for a
// profile.
func DefaultOptions(prof *llm.Profile) Options {
	return Options{
		Profile:        prof,
		Criterion:      validator.Wrong70,
		MaxCorrections: 3,
		MaxReboots:     10,
		NR:             20,
	}
}

// Event is one step of the agent's trace.
type Event struct {
	Action Action
	// ValidatorSaysCorrect is the verdict that led to the action.
	ValidatorSaysCorrect bool
	WrongScenarios       []int
}

// Trace records what happened during one task, used for the Table III
// attribution and Fig. 6(b) token accounting.
type Trace struct {
	Events      []Event
	Corrections int
	Reboots     int
	// ValidatorIntervened is true when at least one validation round
	// rejected a testbench (so the validator changed the outcome).
	ValidatorIntervened bool
	// CorrectorShaped is true when the final testbench carries at
	// least one surviving correction (a repair applied after the last
	// reboot).
	CorrectorShaped bool
	// FinalValidated is true when the final testbench was passed
	// because the validator said correct (not budget exhaustion).
	FinalValidated bool
	Tokens         llm.Accountant
}

// Result bundles the final testbench with its trace.
type Result struct {
	Testbench *testbench.Testbench
	Trace     *Trace
}

// Run executes Algorithm 1 for one problem.
func Run(p *dataset.Problem, opt Options, rng *rand.Rand) (*Result, error) {
	return RunContext(context.Background(), p, opt, rng)
}

// RunContext is Run with cancellation: the context is checked at every
// agent-loop iteration and plumbed into the validator's simulations,
// so a cancelled task stops within one simulation step batch and
// returns the context's error.
func RunContext(ctx context.Context, p *dataset.Problem, opt Options, rng *rand.Rand) (*Result, error) {
	if opt.Profile == nil {
		return nil, fmt.Errorf("core: options missing LLM profile")
	}
	gen := &autobench.AutoBench{Profile: opt.Profile}
	val := &validator.Validator{Criterion: opt.Criterion}
	corr := &corrector.Corrector{Profile: opt.Profile}
	trace := &Trace{}
	acct := &trace.Tokens

	// Per-task systematic traits: the same misconception recurs across
	// regenerations of the same prompt.
	trait := opt.Profile.SampleTrait(p.Difficulty, p.Kind == dataset.SEQ, rng)

	// The imperfect-RTL group is generated once per task and reused
	// across validation rounds, as in the paper's experiments.
	group, err := validator.GenerateRTLGroup(p, opt.Profile, opt.NR, rng, acct)
	if err != nil {
		return nil, err
	}

	tb, err := gen.Generate(p, trait, rng, acct)
	if err != nil {
		return nil, err
	}
	correctionsSinceReboot := 0
	ic, ir := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := val.ValidateContext(ctx, tb, group)
		if err != nil {
			return nil, err
		}
		if !rep.Correct {
			trace.ValidatorIntervened = true
		}
		switch {
		case !rep.Correct && ic < opt.MaxCorrections:
			trace.Events = append(trace.Events, Event{
				Action: ActionCorrecting, WrongScenarios: rep.Wrong,
			})
			ic++
			trace.Corrections++
			fixed, out := corr.Correct(tb, rep, rng, acct)
			if out.Repaired > 0 {
				correctionsSinceReboot++
			}
			tb = fixed

		case !rep.Correct && ir < opt.MaxReboots:
			trace.Events = append(trace.Events, Event{Action: ActionRebooting})
			ir++
			trace.Reboots++
			ic = 0
			correctionsSinceReboot = 0
			tb, err = gen.Generate(p, trait, rng, acct)
			if err != nil {
				return nil, err
			}

		default:
			trace.Events = append(trace.Events, Event{
				Action: ActionPass, ValidatorSaysCorrect: rep.Correct,
			})
			trace.FinalValidated = rep.Correct
			trace.CorrectorShaped = rep.Correct && correctionsSinceReboot > 0
			return &Result{Testbench: tb, Trace: trace}, nil
		}
	}
}
