// Package llm models the large language models used by CorrectBench as
// seeded stochastic processes. The paper's pipeline never depends on
// the text an LLM produces — only on the statistics of its mistakes:
// how often generated testbenches have syntax errors, how often the
// checker computes wrong reference outputs (and in how many scenarios),
// how buggy the 20 "imperfect" validation RTLs are, and how reliably a
// guided two-stage conversation repairs a located fault. Each Profile
// fixes those statistics for one commercial model, calibrated so the
// pipeline-level results reproduce the shape of the paper's Tables I
// and III and Figures 6 and 7 (see DESIGN.md for the substitution
// rationale).
package llm

import (
	"math/rand"
)

// Profile is the stochastic model of one LLM.
type Profile struct {
	Name string

	// --- direct (baseline) testbench generation ---

	// BaselineSyntaxCMB/SEQ is the probability that a directly
	// generated testbench has a syntax error, per circuit class.
	BaselineSyntaxCMB float64
	BaselineSyntaxSEQ float64

	// --- AutoBench-style generation (after syntax auto-debug) ---

	// GenSyntaxCMB/SEQ is the residual syntax-error probability after
	// AutoBench's self-enhancement stages.
	GenSyntaxCMB float64
	GenSyntaxSEQ float64

	// CheckerCleanBase/Slope give the probability that the generated
	// checker is functionally correct: clamp(Base - Slope*difficulty),
	// with an extra SEQPenalty subtracted for sequential problems.
	CheckerCleanBase       float64
	CheckerCleanSlope      float64
	CheckerCleanSEQPenalty float64

	// FaultCount is the distribution of the number of injected checker
	// faults when the checker is not clean: FaultCount[k] is the
	// relative weight of k+1 faults.
	FaultCount []float64

	// --- coverage (scenario list quality) ---

	// BaselineScenarios/Steps size the baseline's thin testbenches.
	BaselineScenarios, BaselineSteps int
	// GenScenarios/Steps size AutoBench-style testbenches (before the
	// per-difficulty bonus GenScenarioBonus*difficulty).
	GenScenarios, GenSteps int
	GenScenarioBonus       int

	// --- imperfect RTL generation (validator's RTL group) ---

	// RTLSyntax is the probability an imperfect RTL has syntax errors.
	RTLSyntax float64
	// RTLCorrect is the probability an imperfect RTL is actually
	// correct (no injected fault).
	RTLCorrect float64
	// RTLFaultCount is the fault-count distribution for buggy RTLs
	// (weights for 1, 2, ... faults).
	RTLFaultCount []float64

	// --- per-task systematic failure traits ---

	// MisBase/MisSlopeCMB/MisSlopeSEQ give the probability that the
	// model systematically misunderstands a task's specification:
	// MisBase + slope*difficulty. A misunderstood task carries the
	// same conceptual error into every regeneration (the "sticky"
	// checker fault), which is what bounds CorrectBench's pass ratio
	// despite its 10-reboot budget.
	MisBase     float64
	MisSlopeCMB float64
	MisSlopeSEQ float64
	// MisCleanProb is the residual probability that a regeneration of
	// a misunderstood task happens to avoid the sticky error.
	MisCleanProb float64
	// StickyFixProb is the per-round probability the corrector repairs
	// the sticky fault (the LLM rarely argues itself out of its own
	// misconception).
	StickyFixProb float64

	// CovWeakCMB/CovWeakSEQ give the probability that the model's
	// scenario list for a task systematically under-covers the input
	// space (thin testbenches that pass Eval1 but cannot separate
	// Eval2 mutants). Like misunderstanding, this is sticky per task.
	CovWeakCMB float64
	CovWeakSEQ float64

	// --- corrector (two-stage conversation) ---

	// LocalizeProb is the stage-1 probability of correctly attributing
	// a fault implicated by the wrong-scenario report.
	LocalizeProb float64
	// FixProb is the stage-2 probability of repairing a localized
	// fault without breaking the format.
	FixProb float64
	// RegressProb is the probability a correction round introduces a
	// fresh fault elsewhere in the checker.
	RegressProb float64

	// --- token costs (per call, rough means; sampled ±25%) ---

	TokensGenIn, TokensGenOut           int // testbench generation
	TokensRTLIn, TokensRTLOut           int // one imperfect RTL
	TokensCorrectIn, TokensCorrectOut   int // one correction round (both stages)
	TokensBaselineIn, TokensBaselineOut int
}

// CheckerCleanProb returns the probability the generated checker is
// functionally correct for a problem of the given difficulty/class,
// assuming the task is understood.
func (p *Profile) CheckerCleanProb(difficulty int, seq bool) float64 {
	v := p.CheckerCleanBase - p.CheckerCleanSlope*float64(difficulty)
	if seq {
		v -= p.CheckerCleanSEQPenalty
	}
	return clamp01(v)
}

// TaskTrait captures the systematic, per-task component of the model's
// behaviour: traits persist across regenerations of the same task
// (same prompt, same misconception), unlike the per-call noise.
type TaskTrait struct {
	// Misunderstood tasks carry a sticky conceptual checker error.
	Misunderstood bool
	// WeakCoverage tasks get thin scenario lists in every generation.
	WeakCoverage bool
	// StickySeed fixes the mutation-enumeration seed for the task so
	// the sticky fault lands on the same site in every regeneration.
	StickySeed int64
}

// SampleTrait draws the per-task traits.
func (p *Profile) SampleTrait(difficulty int, seq bool, rng *rand.Rand) TaskTrait {
	slope := p.MisSlopeCMB
	cov := p.CovWeakCMB
	if seq {
		slope = p.MisSlopeSEQ
		cov = p.CovWeakSEQ
	}
	return TaskTrait{
		Misunderstood: rng.Float64() < clamp01(p.MisBase+slope*float64(difficulty)),
		WeakCoverage:  rng.Float64() < cov,
		StickySeed:    rng.Int63(),
	}
}

// SampleFaultCount draws the number of checker faults (>= 1) for a
// non-clean checker.
func (p *Profile) SampleFaultCount(rng *rand.Rand) int {
	return 1 + weightedIndex(rng, p.FaultCount)
}

// SampleRTLFaultCount draws the number of faults for a buggy imperfect
// RTL (>= 1).
func (p *Profile) SampleRTLFaultCount(rng *rand.Rand) int {
	return 1 + weightedIndex(rng, p.RTLFaultCount)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func weightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// GPT4o models gpt-4o-2024-08-06, the paper's primary model.
func GPT4o() *Profile {
	return &Profile{
		Name: "gpt-4o",

		BaselineSyntaxCMB: 0.20,
		BaselineSyntaxSEQ: 0.51,
		GenSyntaxCMB:      0.09,
		GenSyntaxSEQ:      0.013,

		CheckerCleanBase:       0.92,
		CheckerCleanSlope:      0.03,
		CheckerCleanSEQPenalty: 0.19,
		FaultCount:             []float64{0.6, 0.3, 0.1},

		MisBase:       0.02,
		MisSlopeCMB:   0.06,
		MisSlopeSEQ:   0.115,
		MisCleanProb:  0.005,
		StickyFixProb: 0.01,
		CovWeakCMB:    0.03,
		CovWeakSEQ:    0.23,

		BaselineScenarios: 4, BaselineSteps: 5,
		GenScenarios: 9, GenSteps: 12, GenScenarioBonus: 1,

		RTLSyntax:     0.15,
		RTLCorrect:    0.35,
		RTLFaultCount: []float64{0.65, 0.25, 0.10},

		LocalizeProb: 0.70,
		FixProb:      0.80,
		RegressProb:  0.06,

		TokensGenIn: 5200, TokensGenOut: 1900,
		TokensRTLIn: 700, TokensRTLOut: 450,
		TokensCorrectIn: 3800, TokensCorrectOut: 1100,
		TokensBaselineIn: 900, TokensBaselineOut: 1300,
	}
}

// Claude35Sonnet models claude-3-5-sonnet-20240620.
func Claude35Sonnet() *Profile {
	p := GPT4o()
	p.Name = "claude-3.5-sonnet"
	// Slightly fewer syntax errors, comparable checker quality; the
	// paper notes interface-compatibility friction that costs a little
	// AutoBench-stage reliability.
	p.BaselineSyntaxCMB = 0.17
	p.BaselineSyntaxSEQ = 0.45
	p.GenSyntaxCMB = 0.11
	p.GenSyntaxSEQ = 0.05
	p.CheckerCleanBase = 0.91
	p.MisSlopeCMB = 0.065
	p.MisSlopeSEQ = 0.095
	p.CovWeakSEQ = 0.25
	p.LocalizeProb = 0.68
	p.FixProb = 0.78
	return p
}

// GPT4oMini models gpt-4o-mini-2024-07-18.
func GPT4oMini() *Profile {
	p := GPT4o()
	p.Name = "gpt-4o-mini"
	// The lightweight model writes simpler testbenches: fewer syntax
	// errors at baseline than 4o's long answers, but markedly worse
	// functional quality and correction ability.
	p.BaselineSyntaxCMB = 0.16
	p.BaselineSyntaxSEQ = 0.40
	p.GenSyntaxCMB = 0.12
	p.GenSyntaxSEQ = 0.06
	p.CheckerCleanBase = 0.86
	p.CheckerCleanSlope = 0.04
	p.CheckerCleanSEQPenalty = 0.20
	p.MisBase = 0.04
	p.MisSlopeCMB = 0.09
	p.MisSlopeSEQ = 0.13
	p.CovWeakCMB = 0.06
	p.CovWeakSEQ = 0.30
	p.RTLCorrect = 0.22
	p.RTLSyntax = 0.22
	p.LocalizeProb = 0.50
	p.FixProb = 0.62
	p.RegressProb = 0.12
	p.GenScenarios = 7
	p.GenSteps = 9
	return p
}

// Profiles returns the three evaluated profiles in paper order.
func Profiles() []*Profile {
	return []*Profile{GPT4o(), Claude35Sonnet(), GPT4oMini()}
}

// ByName returns the profile with the given name, or nil.
func ByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Accountant accumulates simulated token usage, the quantity Fig. 6(b)
// reports per task.
type Accountant struct {
	In, Out int
	Calls   int
}

// Charge records one call's cost, jittered ±25% like real responses.
func (a *Accountant) Charge(rng *rand.Rand, in, out int) {
	a.In += jitter(rng, in)
	a.Out += jitter(rng, out)
	a.Calls++
}

// Add merges another accountant's usage.
func (a *Accountant) Add(o Accountant) {
	a.In += o.In
	a.Out += o.Out
	a.Calls += o.Calls
}

func jitter(rng *rand.Rand, v int) int {
	if v == 0 {
		return 0
	}
	f := 0.75 + rng.Float64()*0.5
	return int(float64(v) * f)
}
