package llm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfilesDistinctAndComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d, want 3", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.TokensGenIn == 0 || p.FaultCount == nil || p.RTLFaultCount == nil {
			t.Errorf("%s: incomplete profile", p.Name)
		}
	}
	if ByName("gpt-4o") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestCheckerCleanProbMonotonic(t *testing.T) {
	p := GPT4o()
	for d := 1; d < 5; d++ {
		if p.CheckerCleanProb(d, false) < p.CheckerCleanProb(d+1, false) {
			t.Errorf("clean prob not decreasing in difficulty at %d", d)
		}
	}
	for d := 1; d <= 5; d++ {
		if p.CheckerCleanProb(d, true) > p.CheckerCleanProb(d, false) {
			t.Errorf("SEQ should not be easier than CMB at difficulty %d", d)
		}
	}
}

func TestCheckerCleanProbClamped(t *testing.T) {
	f := func(d uint8, seq bool) bool {
		v := GPT4o().CheckerCleanProb(int(d%10), seq)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleFaultCountRange(t *testing.T) {
	p := GPT4o()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if n := p.SampleFaultCount(rng); n < 1 || n > len(p.FaultCount) {
			t.Fatalf("fault count %d out of range", n)
		}
		if n := p.SampleRTLFaultCount(rng); n < 1 || n > len(p.RTLFaultCount) {
			t.Fatalf("rtl fault count %d out of range", n)
		}
	}
}

func TestSampleTraitRates(t *testing.T) {
	p := GPT4o()
	rng := rand.New(rand.NewSource(2))
	misSeq, misCmb := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.SampleTrait(4, true, rng).Misunderstood {
			misSeq++
		}
		if p.SampleTrait(2, false, rng).Misunderstood {
			misCmb++
		}
	}
	seqRate := float64(misSeq) / n
	cmbRate := float64(misCmb) / n
	if seqRate < cmbRate {
		t.Errorf("SEQ misunderstanding rate %.3f below CMB %.3f", seqRate, cmbRate)
	}
	wantSeq := p.MisBase + p.MisSlopeSEQ*4
	if seqRate < wantSeq-0.02 || seqRate > wantSeq+0.02 {
		t.Errorf("SEQ rate %.3f, want about %.3f", seqRate, wantSeq)
	}
}

func TestTraitSeedsDiffer(t *testing.T) {
	p := GPT4o()
	rng := rand.New(rand.NewSource(3))
	a := p.SampleTrait(3, true, rng)
	b := p.SampleTrait(3, true, rng)
	if a.StickySeed == b.StickySeed {
		t.Error("sticky seeds collide")
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	rng := rand.New(rand.NewSource(4))
	a.Charge(rng, 1000, 500)
	if a.Calls != 1 || a.In < 750 || a.In > 1250 || a.Out < 375 || a.Out > 625 {
		t.Errorf("charge out of jitter bounds: %+v", a)
	}
	var b Accountant
	b.Charge(rng, 100, 100)
	a.Add(b)
	if a.Calls != 2 {
		t.Errorf("add failed: %+v", a)
	}
	var z Accountant
	z.Charge(rng, 0, 0)
	if z.In != 0 || z.Out != 0 {
		t.Error("zero charge should stay zero")
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[weightedIndex(rng, []float64{0.6, 0.3, 0.1})]++
	}
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("weights not respected: %v", counts)
	}
	if weightedIndex(rng, nil) != 0 || weightedIndex(rng, []float64{0, 0}) != 0 {
		t.Error("degenerate weights should return 0")
	}
}
