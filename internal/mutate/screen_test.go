package mutate

import (
	"math/rand"
	"testing"

	"correctbench/internal/verilog"
)

func parseModule(t *testing.T, src string) *verilog.Module {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Modules[0]
}

func TestScreenRejectsIdentity(t *testing.T) {
	golden := parseModule(t, `module m(input c, input a, output y);
assign y = c ? a : a;
endmodule`)
	s := NewScreen(golden)
	// A clone prints identically: the strongest possible identity
	// mutant (e.g. TernarySwap over equal branches produces exactly
	// this).
	if !s.Reject(verilog.CloneModule(golden)) {
		t.Fatal("print-identical candidate must be rejected")
	}
	if s.Stats.Identical != 1 || s.Stats.Candidates != 1 {
		t.Fatalf("stats = %+v, want 1 identical of 1", s.Stats)
	}
	// Swapping the ternary branches of c ? a : a is the classic
	// identity mutation; find it through the real generator.
	rng := rand.New(rand.NewSource(1))
	found := false
	for i := 0; i < 200 && !found; i++ {
		mut, applied := Mutate(golden, rng, 1)
		if len(applied) == 0 {
			break
		}
		if verilog.PrintModule(mut) == verilog.PrintModule(golden) {
			found = true
			if !s.Reject(mut) {
				t.Fatal("generator-produced identity mutant must be rejected")
			}
		}
	}
	if !found {
		t.Skip("no identity mutation drawn; direct-clone case above still covers rejection")
	}
}

func TestScreenFlagsNewStaticErrors(t *testing.T) {
	golden := parseModule(t, `module m(input a, output y);
assign y = a;
endmodule`)
	s := NewScreen(golden)
	// A candidate with a fresh error-severity finding (multiple
	// drivers) is flagged but NOT rejected: it might still be
	// killable, and dropping it would change mutant selection.
	dirty := parseModule(t, `module m(input a, output y);
assign y = a;
assign y = ~a;
endmodule`)
	if s.Reject(dirty) {
		t.Fatal("statically dirty candidates must stay in the pool")
	}
	if s.Stats.Flagged != 1 {
		t.Fatalf("stats = %+v, want 1 flagged", s.Stats)
	}
}

func TestScreenedGeneratorsPreserveRngStream(t *testing.T) {
	golden := parseModule(t, `module m(input c, input [3:0] a, input [3:0] b, output [3:0] y);
assign y = c ? a : b;
endmodule`)
	differs := func(m *verilog.Module) (bool, error) {
		return len(verilog.PrintModule(m))%2 == 0, nil
	}
	batchDiffers := func(ms []*verilog.Module) []DifferenceResult {
		out := make([]DifferenceResult, len(ms))
		for i, m := range ms {
			d, err := differs(m)
			out[i] = DifferenceResult{Differs: d, Err: err}
		}
		return out
	}
	for seed := int64(0); seed < 5; seed++ {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		r3 := rand.New(rand.NewSource(seed))
		plain := DistinctMutants(golden, r1, 4, 1, differs)
		screened := DistinctMutantsScreened(golden, r2, 4, 1, differs, NewScreen(golden))
		batch := DistinctMutantsBatchScreened(golden, r3, 4, 1, batchDiffers, NewScreen(golden))
		if len(plain) != len(screened) || len(plain) != len(batch) {
			t.Fatalf("seed %d: lengths differ: %d/%d/%d", seed, len(plain), len(screened), len(batch))
		}
		for i := range plain {
			ps := verilog.PrintModule(plain[i])
			if ps != verilog.PrintModule(screened[i]) || ps != verilog.PrintModule(batch[i]) {
				t.Fatalf("seed %d: mutant %d differs across generator variants", seed, i)
			}
		}
		// The rng must land in the same state: the screen draws
		// nothing and skips nothing.
		if a, b, c := r1.Int63(), r2.Int63(), r3.Int63(); a != b || a != c {
			t.Fatalf("seed %d: post-call rng states diverge", seed)
		}
	}
}
