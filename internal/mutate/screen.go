package mutate

import (
	"math/rand"

	"correctbench/internal/verilog"
	"correctbench/internal/vstatic"
)

// Screen statically pre-screens candidate mutants before any
// simulation. Two kinds of findings:
//
//   - identity candidates — mutants whose printed source equals the
//     golden's — are rejected outright: byte-identical RTL elaborates
//     to identical behavior, so no engine can ever kill them and the
//     difference check would waste a simulation lane;
//   - candidates that introduce a new error-severity static finding
//     (multiple drivers, unreachable arms from a perturbed constant)
//     are counted as flagged. They stay in the pool — a statically
//     suspicious mutant may still be killable, and rejecting it would
//     change which mutants surveys select — but the count feeds the
//     benchmark report.
//
// Screening never alters the candidate stream: every draw happens
// whether or not it is screened out, so the mutants returned by the
// screened generators (and the post-call rng state) are identical to
// the unscreened ones.
type Screen struct {
	golden       string
	baselineErrs int
	Stats        ScreenStats
}

// ScreenStats aggregates what a Screen saw.
type ScreenStats struct {
	// Candidates counts every candidate inspected.
	Candidates int `json:"candidates"`
	// Identical counts candidates rejected as print-identical to the
	// golden (provably unkillable).
	Identical int `json:"identical"`
	// Flagged counts candidates carrying more error-severity static
	// diagnostics than the golden.
	Flagged int `json:"flagged"`
}

// Add accumulates other into s.
func (s *ScreenStats) Add(other ScreenStats) {
	s.Candidates += other.Candidates
	s.Identical += other.Identical
	s.Flagged += other.Flagged
}

// NewScreen builds a screen against golden. The golden's own
// error-severity diagnostic count is the baseline, so screening a
// mutant of an already-dirty module flags only what the mutation
// introduced.
func NewScreen(golden *verilog.Module) *Screen {
	return &Screen{
		golden:       verilog.PrintModule(golden),
		baselineErrs: vstatic.AnalyzeModule(golden).Count(vstatic.SevError),
	}
}

// Reject inspects one candidate and reports whether it is provably
// unkillable (identity). Non-rejected candidates may still bump the
// flagged count.
func (s *Screen) Reject(mut *verilog.Module) bool {
	s.Stats.Candidates++
	if verilog.PrintModule(mut) == s.golden {
		s.Stats.Identical++
		return true
	}
	if vstatic.AnalyzeModule(mut).Count(vstatic.SevError) > s.baselineErrs {
		s.Stats.Flagged++
	}
	return false
}

// DistinctMutantsScreened is DistinctMutants with a static pre-screen
// in front of the difference check. A nil screen disables screening.
// Rejected candidates consume attempts exactly as a non-differing
// candidate would, so the rng draw sequence — and therefore the
// returned mutants — match the unscreened call.
func DistinctMutantsScreened(m *verilog.Module, rng *rand.Rand, n int, mutationsEach int, differs DifferenceChecker, screen *Screen) []*verilog.Module {
	var out []*verilog.Module
	maxAttempts := n*20 + 20
	for attempt := 0; attempt < maxAttempts && len(out) < n; attempt++ {
		mut, applied := Mutate(m, rng, mutationsEach)
		if len(applied) == 0 {
			break
		}
		if screen != nil && screen.Reject(mut) {
			continue
		}
		ok, err := differs(mut)
		if err != nil || !ok {
			continue
		}
		out = append(out, mut)
	}
	return out
}

// DistinctMutantsBatchScreened is DistinctMutantsBatch with a static
// pre-screen applied to each wave before the batched difference
// check. A nil screen disables screening. Screened-out candidates are
// drawn and counted exactly like candidates the checker rejects, so
// draws, returned mutants and rng state match the unscreened call;
// only the waves handed to differs shrink.
func DistinctMutantsBatchScreened(m *verilog.Module, rng *rand.Rand, n int, mutationsEach int, differs BatchDifferenceChecker, screen *Screen) []*verilog.Module {
	var out []*verilog.Module
	maxAttempts := n*20 + 20
	attempt := 0
	for attempt < maxAttempts && len(out) < n {
		want := n - len(out)
		if rem := maxAttempts - attempt; want > rem {
			want = rem
		}
		wave := make([]*verilog.Module, 0, want)
		exhausted := false
		for len(wave) < want && attempt < maxAttempts {
			mut, applied := Mutate(m, rng, mutationsEach)
			attempt++
			if len(applied) == 0 {
				exhausted = true
				break
			}
			if screen != nil && screen.Reject(mut) {
				continue
			}
			wave = append(wave, mut)
		}
		if len(wave) > 0 {
			verdicts := differs(wave)
			for i, mut := range wave {
				if i < len(verdicts) && verdicts[i].Err == nil && verdicts[i].Differs {
					out = append(out, mut)
				}
			}
		}
		if exhausted {
			break
		}
	}
	return out
}
