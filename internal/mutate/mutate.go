// Package mutate derives faulty variants of Verilog modules. It serves
// three roles in the CorrectBench reproduction:
//
//   - it builds the 10 golden-RTL mutants that AutoEval's Eval2 uses as
//     devices under test,
//   - it models the functional mistakes of LLM-generated artifacts: the
//     validator's 20 "imperfect" RTL designs and the faults inside
//     generated checkers are golden sources with a sampled number of
//     AST mutations applied, and
//   - its token-level syntax corruptor models LLM syntax errors
//     (Eval0/"Failed" grade artifacts).
//
// Mutations are applied at AST level, so every functional mutant stays
// parseable; only CorruptSyntax produces invalid text.
package mutate

import (
	"fmt"
	"math/rand"
	"strings"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Kind names a mutation operator class.
type Kind string

// Mutation operator classes.
const (
	OpSwap       Kind = "op-swap"       // binary operator replaced by a near miss
	ConstPerturb Kind = "const-perturb" // literal value off by one / bit flip
	CondNegate   Kind = "cond-negate"   // if condition logically negated
	TernarySwap  Kind = "ternary-swap"  // ?: branches exchanged
	UnaryDrop    Kind = "unary-drop"    // ~ or ! removed
	UnaryInsert  Kind = "unary-insert"  // ~ inserted on an assignment RHS
	CaseSwap     Kind = "case-swap"     // two case arms exchanged
	AssignKind   Kind = "assign-kind"   // blocking <-> non-blocking
	IdentSwap    Kind = "ident-swap"    // same-width signal references exchanged
)

// Mutation records one applied mutation.
type Mutation struct {
	Kind Kind
	Site int    // site index within the enumeration
	Desc string // human-readable description
}

func (m Mutation) String() string { return fmt.Sprintf("%s@%d(%s)", m.Kind, m.Site, m.Desc) }

// site is a mutation opportunity bound to nodes of one specific module
// clone.
type site struct {
	kind  Kind
	desc  string
	apply func()
}

// opSwapTable maps binary operators to their near-miss replacements.
var opSwapTable = map[string][]string{
	"+":   {"-"},
	"-":   {"+"},
	"*":   {"+"},
	"&":   {"|", "^"},
	"|":   {"&", "^"},
	"^":   {"&", "~^"},
	"~^":  {"^"},
	"^~":  {"^"},
	"==":  {"!="},
	"!=":  {"=="},
	"<":   {"<=", ">"},
	"<=":  {"<", ">="},
	">":   {">=", "<"},
	">=":  {">", "<="},
	"<<":  {">>"},
	">>":  {"<<", ">>>"},
	">>>": {">>"},
	"&&":  {"||"},
	"||":  {"&&"},
}

// enumerate lists every mutation site of module m. The order is
// deterministic (syntactic pre-order), which makes (seed, count)
// reproducible.
func enumerate(m *verilog.Module, rng *rand.Rand) []site {
	var sites []site
	widths := declWidths(m)

	addExprSites := func(root *verilog.Expr, withInvert bool) {
		var walk func(ep *verilog.Expr)
		walk = func(ep *verilog.Expr) {
			switch x := (*ep).(type) {
			case nil:
				return
			case *verilog.Binary:
				if repls, ok := opSwapTable[x.Op]; ok {
					repl := repls[rng.Intn(len(repls))]
					op := x
					sites = append(sites, site{
						kind:  OpSwap,
						desc:  fmt.Sprintf("%s -> %s", op.Op, repl),
						apply: func() { op.Op = repl },
					})
				}
				walk(&x.X)
				walk(&x.Y)
			case *verilog.Unary:
				if x.Op == "~" || x.Op == "!" {
					target := ep
					inner := x.X
					sites = append(sites, site{
						kind:  UnaryDrop,
						desc:  "drop " + x.Op,
						apply: func() { *target = inner },
					})
				}
				walk(&x.X)
			case *verilog.Ternary:
				t := x
				sites = append(sites, site{
					kind:  TernarySwap,
					desc:  "swap ?: branches",
					apply: func() { t.Then, t.Else = t.Else, t.Then },
				})
				walk(&x.Cond)
				walk(&x.Then)
				walk(&x.Else)
			case *verilog.Number:
				n := x
				if n.Width == 1 || n.Val.Width() == 1 {
					sites = append(sites, site{
						kind: ConstPerturb,
						desc: "flip 1-bit literal",
						apply: func() {
							n.Val = logic.NotV(n.Val)
							n.Text = ""
						},
					})
				} else if v, ok := n.Val.Uint64(); ok {
					delta := uint64(1)
					nv := v + delta
					if rng.Intn(2) == 0 && v > 0 {
						nv = v - delta
					}
					w := n.Val.Width()
					sites = append(sites, site{
						kind: ConstPerturb,
						desc: fmt.Sprintf("%d -> %d", v, nv),
						apply: func() {
							n.Val = logic.FromUint64(w, nv)
							n.Text = ""
						},
					})
				}
			case *verilog.Concat:
				for i := range x.Parts {
					walk(&x.Parts[i])
				}
			case *verilog.Repl:
				walk(&x.Value)
			case *verilog.Index:
				walk(&x.Index)
			case *verilog.PartSelect:
				walk(&x.MSB)
				walk(&x.LSB)
			case *verilog.Ident:
				// Ident swap: replace with another same-width signal.
				if w, ok := widths[x.Name]; ok {
					var cands []string
					for n, nw := range widths {
						if n != x.Name && nw == w {
							cands = append(cands, n)
						}
					}
					if len(cands) > 0 {
						sortStrings(cands)
						repl := cands[rng.Intn(len(cands))]
						id := x
						sites = append(sites, site{
							kind:  IdentSwap,
							desc:  fmt.Sprintf("%s -> %s", id.Name, repl),
							apply: func() { id.Name = repl },
						})
					}
				}
			}
		}
		walk(root)

		// Insert ~ on the whole RHS: a coarse "inverted logic" bug.
		if withInvert {
			target := root
			orig := *root
			if _, isStr := orig.(*verilog.StringLit); !isStr && orig != nil {
				sites = append(sites, site{
					kind:  UnaryInsert,
					desc:  "invert RHS",
					apply: func() { *target = &verilog.Unary{Op: "~", X: orig} },
				})
			}
		}
	}

	var walkStmt func(s verilog.Stmt, inSeq bool)
	walkStmt = func(s verilog.Stmt, inSeq bool) {
		switch x := s.(type) {
		case *verilog.Block:
			for _, st := range x.Stmts {
				walkStmt(st, inSeq)
			}
		case *verilog.Assign:
			a := x
			addExprSites(&a.RHS, true)
			if inSeq {
				sites = append(sites, site{
					kind:  AssignKind,
					desc:  "toggle blocking/non-blocking",
					apply: func() { a.NonBlocking = !a.NonBlocking },
				})
			}
		case *verilog.If:
			i := x
			sites = append(sites, site{
				kind:  CondNegate,
				desc:  "negate if condition",
				apply: func() { i.Cond = &verilog.Unary{Op: "!", X: i.Cond} },
			})
			addExprSites(&i.Cond, false)
			walkStmt(x.Then, inSeq)
			walkStmt(x.Else, inSeq)
		case *verilog.Case:
			c := x
			if n := len(c.Items); n >= 2 {
				i := rng.Intn(n - 1)
				sites = append(sites, site{
					kind: CaseSwap,
					desc: fmt.Sprintf("swap case arms %d and %d", i, i+1),
					apply: func() {
						c.Items[i].Body, c.Items[i+1].Body = c.Items[i+1].Body, c.Items[i].Body
					},
				})
			}
			addExprSites(&c.Expr, false)
			for idx := range c.Items {
				for j := range c.Items[idx].Exprs {
					addExprSites(&c.Items[idx].Exprs[j], false)
				}
				walkStmt(c.Items[idx].Body, inSeq)
			}
		case *verilog.For:
			walkStmt(x.Body, inSeq)
		case *verilog.Repeat:
			walkStmt(x.Body, inSeq)
		case *verilog.Delay:
			walkStmt(x.Body, inSeq)
		}
	}

	for _, it := range m.Items {
		switch x := it.(type) {
		case *verilog.ContAssign:
			ca := x
			addExprSites(&ca.RHS, true)
		case *verilog.Always:
			seq := !x.Star && hasEdge(x.Sens)
			walkStmt(x.Body, seq)
		}
	}
	return sites
}

func hasEdge(sens []verilog.SensItem) bool {
	for _, s := range sens {
		if s.Edge != verilog.EdgeNone {
			return true
		}
	}
	return false
}

// declWidths maps declared signal names to widths, for same-width ident
// swaps. Non-literal ranges are skipped.
func declWidths(m *verilog.Module) map[string]int {
	out := map[string]int{}
	for _, it := range m.Items {
		d, ok := it.(*verilog.Decl)
		if !ok || d.Kind == verilog.DeclParameter || d.Kind == verilog.DeclLocalparam {
			continue
		}
		w := 1
		if d.Range != nil {
			msb, ok1 := d.Range.MSB.(*verilog.Number)
			lsb, ok2 := d.Range.LSB.(*verilog.Number)
			if !ok1 || !ok2 {
				continue
			}
			mv, okm := msb.Val.Uint64()
			lv, okl := lsb.Val.Uint64()
			if !okm || !okl || lv != 0 {
				continue
			}
			w = int(mv) + 1
		}
		for _, n := range d.Names {
			out[n] = w
		}
	}
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// SiteCount reports how many mutation sites the module exposes with a
// fixed enumeration seed. Useful for tests and diagnostics.
func SiteCount(m *verilog.Module) int {
	return len(enumerate(verilog.CloneModule(m), rand.New(rand.NewSource(0))))
}

// Plan is a reproducible mutation recipe: an enumeration seed (which
// fixes the per-site random choices such as replacement operators) and
// the site indices to apply. Removing indices from Sites and rebuilding
// models a repair of those specific faults, which is how the corrector
// model applies fixes.
type Plan struct {
	EnumSeed int64
	Sites    []int
}

// NewPlan draws a plan with count sites using rng for all random
// choices.
func NewPlan(m *verilog.Module, rng *rand.Rand, count int) Plan {
	p := Plan{EnumSeed: rng.Int63()}
	if count <= 0 {
		return p
	}
	n := len(enumerate(verilog.CloneModule(m), rand.New(rand.NewSource(p.EnumSeed))))
	if n == 0 {
		return p
	}
	if count > n {
		count = n
	}
	p.Sites = append(p.Sites, rng.Perm(n)[:count]...)
	return p
}

// Without returns a copy of the plan with the given site removed.
func (p Plan) Without(siteIdx int) Plan {
	out := Plan{EnumSeed: p.EnumSeed}
	for _, s := range p.Sites {
		if s != siteIdx {
			out.Sites = append(out.Sites, s)
		}
	}
	return out
}

// With returns a copy of the plan with the given site added (if new).
func (p Plan) With(siteIdx int) Plan {
	out := Plan{EnumSeed: p.EnumSeed, Sites: append([]int(nil), p.Sites...)}
	for _, s := range out.Sites {
		if s == siteIdx {
			return out
		}
	}
	out.Sites = append(out.Sites, siteIdx)
	return out
}

// Build clones m and applies the plan, returning the mutant and the
// applied mutations.
func (p Plan) Build(m *verilog.Module) (*verilog.Module, []Mutation) {
	clone := verilog.CloneModule(m)
	sites := enumerate(clone, rand.New(rand.NewSource(p.EnumSeed)))
	var muts []Mutation
	for _, idx := range p.Sites {
		if idx < 0 || idx >= len(sites) {
			continue
		}
		s := sites[idx]
		s.apply()
		muts = append(muts, Mutation{Kind: s.kind, Site: idx, Desc: s.desc})
	}
	return clone, muts
}

// SiteCountIn reports the number of sites under this plan's seed.
func (p Plan) SiteCountIn(m *verilog.Module) int {
	return len(enumerate(verilog.CloneModule(m), rand.New(rand.NewSource(p.EnumSeed))))
}

// Mutate clones module m and applies count distinct random mutations.
// It returns the mutated clone and the list of applied mutations. If
// the module exposes fewer sites than count, all sites are applied.
func Mutate(m *verilog.Module, rng *rand.Rand, count int) (*verilog.Module, []Mutation) {
	plan := NewPlan(m, rng, count)
	return plan.Build(m)
}

// DifferenceChecker reports whether a mutant behaves differently from
// the golden module on some stimulus (implemented by higher layers with
// the simulator).
type DifferenceChecker func(mutant *verilog.Module) (bool, error)

// DistinctMutants generates up to n mutants that each differ
// behaviourally from the golden module according to differs, drawing
// fresh random sites until enough are found or attempts run out.
// Mutants that fail elaboration are discarded too (differs should
// report an error for those).
func DistinctMutants(m *verilog.Module, rng *rand.Rand, n int, mutationsEach int, differs DifferenceChecker) []*verilog.Module {
	return DistinctMutantsScreened(m, rng, n, mutationsEach, differs, nil)
}

// DifferenceResult is one candidate's verdict from a
// BatchDifferenceChecker: Differs plays the role of DifferenceChecker's
// bool, Err of its error.
type DifferenceResult struct {
	Differs bool
	Err     error
}

// BatchDifferenceChecker judges a whole wave of candidate mutants at
// once; higher layers implement it with a batch simulation of all
// candidates against the golden design. It must return one result per
// candidate, in order.
type BatchDifferenceChecker func(mutants []*verilog.Module) []DifferenceResult

// DistinctMutantsBatch is DistinctMutants with the difference checks
// batched into waves. Candidates are drawn from rng in exactly the
// order and quantity the sequential version would draw them — each
// wave requests only the outstanding need, capped by the remaining
// attempt budget, and an empty-mutation draw ends generation just like
// the sequential break — so with an equivalent checker the returned
// mutants and the post-call rng state are identical to
// DistinctMutants; only the number of checker invocations changes.
func DistinctMutantsBatch(m *verilog.Module, rng *rand.Rand, n int, mutationsEach int, differs BatchDifferenceChecker) []*verilog.Module {
	return DistinctMutantsBatchScreened(m, rng, n, mutationsEach, differs, nil)
}

// ---- syntax corruption ----

// CorruptSyntax damages source text so that it no longer parses,
// modelling LLM syntax errors. The kind of damage is sampled from
// realistic classes: dropped semicolon or parenthesis, misspelled
// keyword, truncated tail, unbalanced begin/end.
func CorruptSyntax(src string, rng *rand.Rand) string {
	for attempt := 0; attempt < 8; attempt++ {
		out := corruptOnce(src, rng)
		if _, err := verilog.Parse(out); err != nil {
			return out
		}
	}
	// Guaranteed fallback.
	return src + "\nendmodule garbage ((("
}

func corruptOnce(src string, rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0: // drop a semicolon
		return dropNth(src, ";", rng)
	case 1: // drop a closing paren
		return dropNth(src, ")", rng)
	case 2: // misspell a keyword
		for _, kw := range []string{"endmodule", "endcase", "begin", "end", "assign", "always"} {
			if strings.Contains(src, kw) {
				return strings.Replace(src, kw, kw[:len(kw)-1]+"_", 1)
			}
		}
		return src[:len(src)/2]
	case 3: // truncate the tail
		cut := len(src)/2 + rng.Intn(len(src)/2)
		return src[:cut]
	default: // insert stray token
		pos := rng.Intn(len(src))
		return src[:pos] + " @@ " + src[pos:]
	}
}

func dropNth(src, tok string, rng *rand.Rand) string {
	count := strings.Count(src, tok)
	if count == 0 {
		return src[:len(src)/2]
	}
	n := rng.Intn(count)
	idx := 0
	for i := 0; i <= n; i++ {
		next := strings.Index(src[idx:], tok)
		if next < 0 {
			break
		}
		idx += next
		if i < n {
			idx += len(tok)
		}
	}
	return src[:idx] + src[idx+len(tok):]
}
