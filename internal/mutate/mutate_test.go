package mutate

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"correctbench/internal/logic"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
)

const goldenAdder = `
module add4(
    input [3:0] a,
    input [3:0] b,
    output [4:0] s
);
    assign s = a + b;
endmodule
`

const goldenCounter = `
module counter(
    input clk,
    input rst,
    input en,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (en) q <= q + 8'd1;
    end
endmodule
`

func parse(t *testing.T, src string) *verilog.Module {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f.Modules[0]
}

func TestSiteEnumerationIsDeterministic(t *testing.T) {
	m := parse(t, goldenCounter)
	n1 := SiteCount(m)
	n2 := SiteCount(m)
	if n1 == 0 || n1 != n2 {
		t.Fatalf("site counts: %d vs %d", n1, n2)
	}
}

func TestMutantsStayParseable(t *testing.T) {
	for _, src := range []string{goldenAdder, goldenCounter} {
		m := parse(t, src)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 50; i++ {
			mut, applied := Mutate(m, rng, 1+rng.Intn(3))
			if len(applied) == 0 {
				t.Fatalf("no mutations applied to %s", m.Name)
			}
			out := verilog.PrintModule(mut)
			if _, err := verilog.Parse(out); err != nil {
				t.Fatalf("mutant does not parse: %v\n%s", err, out)
			}
		}
	}
}

func TestMutationDoesNotTouchOriginal(t *testing.T) {
	m := parse(t, goldenCounter)
	before := verilog.PrintModule(m)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		Mutate(m, rng, 2)
	}
	if verilog.PrintModule(m) != before {
		t.Fatal("original module modified by mutation")
	}
}

func TestPlanReproducibility(t *testing.T) {
	m := parse(t, goldenCounter)
	rng := rand.New(rand.NewSource(3))
	plan := NewPlan(m, rng, 2)
	m1, muts1 := plan.Build(m)
	m2, muts2 := plan.Build(m)
	if verilog.PrintModule(m1) != verilog.PrintModule(m2) {
		t.Fatal("same plan produced different mutants")
	}
	if len(muts1) != len(muts2) || len(muts1) != 2 {
		t.Fatalf("mutation lists differ: %v vs %v", muts1, muts2)
	}
}

func TestPlanWithout(t *testing.T) {
	m := parse(t, goldenCounter)
	rng := rand.New(rand.NewSource(3))
	plan := NewPlan(m, rng, 3)
	if len(plan.Sites) == 0 {
		t.Fatal("empty plan")
	}
	removed := plan.Sites[0]
	less := plan.Without(removed)
	if len(less.Sites) != len(plan.Sites)-1 {
		t.Fatalf("Without did not remove: %v -> %v", plan.Sites, less.Sites)
	}
	for _, s := range less.Sites {
		if s == removed {
			t.Fatal("site still present")
		}
	}
	// Without everything = golden behaviour.
	empty := Plan{EnumSeed: plan.EnumSeed}
	back, muts := empty.Build(m)
	if len(muts) != 0 {
		t.Fatalf("empty plan applied mutations: %v", muts)
	}
	if verilog.PrintModule(back) != verilog.PrintModule(m) {
		t.Fatal("empty plan is not identity")
	}
}

func TestPlanWith(t *testing.T) {
	p := Plan{EnumSeed: 1, Sites: []int{2}}
	p2 := p.With(5)
	if len(p2.Sites) != 2 {
		t.Fatalf("With failed: %v", p2.Sites)
	}
	p3 := p2.With(5)
	if len(p3.Sites) != 2 {
		t.Fatalf("With duplicated: %v", p3.Sites)
	}
}

// simDiffers builds a DifferenceChecker that compares mutant and golden
// on a few fixed stimuli.
func simDiffers(t *testing.T, goldenSrc, top string, stimuli []map[string]uint64, outs []string) DifferenceChecker {
	t.Helper()
	run := func(m *verilog.Module) ([]logic.Vector, error) {
		d, err := sim.ElaborateSource(verilog.PrintModule(m), top)
		if err != nil {
			return nil, err
		}
		in := sim.NewInstance(d)
		if err := in.ZeroInputs(); err != nil {
			return nil, err
		}
		var got []logic.Vector
		for _, stim := range stimuli {
			for k, v := range stim {
				if err := in.SetInputUint(k, v); err != nil {
					return nil, err
				}
			}
			if d.Port("clk") != nil {
				if err := in.Tick("clk"); err != nil {
					return nil, err
				}
			}
			for _, o := range outs {
				v, err := in.Get(o)
				if err != nil {
					return nil, err
				}
				got = append(got, v)
			}
		}
		return got, nil
	}
	goldenMod := parse(t, goldenSrc)
	goldenOut, err := run(goldenMod)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return func(mut *verilog.Module) (bool, error) {
		mo, err := run(mut)
		if err != nil {
			return false, err
		}
		for i := range mo {
			if !mo[i].Equal(goldenOut[i]) {
				return true, nil
			}
		}
		return false, nil
	}
}

func TestDistinctMutantsKillable(t *testing.T) {
	m := parse(t, goldenAdder)
	stimuli := []map[string]uint64{
		{"a": 0, "b": 0}, {"a": 3, "b": 5}, {"a": 15, "b": 15}, {"a": 9, "b": 1}, {"a": 7, "b": 8},
	}
	differs := simDiffers(t, goldenAdder, "add4", stimuli, []string{"s"})
	rng := rand.New(rand.NewSource(99))
	mutants := DistinctMutants(m, rng, 10, 1, differs)
	if len(mutants) < 5 {
		t.Fatalf("got only %d killable mutants", len(mutants))
	}
	for _, mut := range mutants {
		ok, err := differs(mut)
		if err != nil || !ok {
			t.Errorf("mutant not killable: %v %v", ok, err)
		}
	}
}

func TestCorruptSyntaxAlwaysBreaksParse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		out := CorruptSyntax(goldenCounter, rng)
		if _, err := verilog.Parse(out); err == nil {
			t.Fatalf("corrupted source still parses:\n%s", out)
		}
	}
}

func TestMutationKindsCovered(t *testing.T) {
	src := `
module mix(
    input clk,
    input [3:0] a,
    input [3:0] b,
    input sel,
    output reg [3:0] y,
    output reg [3:0] z
);
    always @(posedge clk) begin
        if (sel) y <= a + b;
        else y <= a - b;
        case (a[1:0])
            2'd0: z <= a & b;
            2'd1: z <= a | b;
            default: z <= ~(a ^ b);
        endcase
    end
endmodule`
	m := parse(t, src)
	rng := rand.New(rand.NewSource(1))
	seen := map[Kind]bool{}
	for i := 0; i < 300; i++ {
		_, muts := Mutate(m, rng, 1)
		for _, mu := range muts {
			seen[mu.Kind] = true
		}
	}
	for _, k := range []Kind{OpSwap, ConstPerturb, CondNegate, UnaryDrop, UnaryInsert, CaseSwap, AssignKind, IdentSwap} {
		if !seen[k] {
			t.Errorf("kind %s never produced", k)
		}
	}
}

func TestMutationDescriptions(t *testing.T) {
	m := parse(t, goldenAdder)
	rng := rand.New(rand.NewSource(2))
	_, muts := Mutate(m, rng, 1)
	if len(muts) != 1 {
		t.Fatal("expected one mutation")
	}
	if muts[0].Desc == "" || !strings.Contains(muts[0].String(), string(muts[0].Kind)) {
		t.Errorf("bad mutation description: %+v", muts[0])
	}
}

// TestDistinctMutantsBatchMatchesSequential asserts the rng-exactness
// contract of DistinctMutantsBatch: with an equivalent checker it must
// return byte-identical mutants AND leave the rng in the same state as
// DistinctMutants, so fixtures built either way are interchangeable.
var errFakeElab = errors.New("fake elaboration failure")

func TestDistinctMutantsBatchMatchesSequential(t *testing.T) {
	predicates := map[string]func(src string) (bool, error){
		"hash-even": func(src string) (bool, error) {
			var h uint32
			for i := 0; i < len(src); i++ {
				h = h*31 + uint32(src[i])
			}
			if h%7 == 0 {
				return false, errFakeElab
			}
			return h%2 == 0, nil
		},
		"accept-all": func(string) (bool, error) { return true, nil },
		"reject-all": func(string) (bool, error) { return false, nil },
	}
	for _, src := range []string{goldenAdder, goldenCounter} {
		m := parse(t, src)
		for pname, pred := range predicates {
			for _, n := range []int{1, 3, 10} {
				seq := func(mut *verilog.Module) (bool, error) { return pred(verilog.PrintModule(mut)) }
				batch := func(muts []*verilog.Module) []DifferenceResult {
					out := make([]DifferenceResult, len(muts))
					for i, mut := range muts {
						d, err := pred(verilog.PrintModule(mut))
						out[i] = DifferenceResult{Differs: d, Err: err}
					}
					return out
				}
				rngA := rand.New(rand.NewSource(int64(n) * 977))
				rngB := rand.New(rand.NewSource(int64(n) * 977))
				a := DistinctMutants(m, rngA, n, 1, seq)
				b := DistinctMutantsBatch(m, rngB, n, 1, batch)
				if len(a) != len(b) {
					t.Fatalf("%s n=%d: %d sequential vs %d batched mutants", pname, n, len(a), len(b))
				}
				for i := range a {
					if verilog.PrintModule(a[i]) != verilog.PrintModule(b[i]) {
						t.Fatalf("%s n=%d: mutant %d differs", pname, n, i)
					}
				}
				if x, y := rngA.Int63(), rngB.Int63(); x != y {
					t.Fatalf("%s n=%d: rng state diverged after call (%d vs %d)", pname, n, x, y)
				}
			}
		}
	}
}
