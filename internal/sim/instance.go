package sim

import (
	"fmt"
	"io"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Instance is a simulatable instance of an elaborated design. All
// signals start X; drive inputs with SetInput, propagate with Settle
// or Tick, and read results with Get.
type Instance struct {
	design *Design
	vals   map[string]logic.Vector
	prev   map[string]logic.Vector // last seen values of edge-watched signals
	dirty  map[string]bool
	nba    []resolvedWrite

	combBySig map[string][]*Process // level sensitivity index
	seqProcs  []*Process
	edgeSigs  []string

	// Stdout receives $display output.
	Stdout io.Writer
	// Now is the current simulation time (cycle count ×10 under the
	// cycle API; event time under Run).
	Now uint64
	// Finished is set by $finish under the cycle API.
	Finished bool

	// wait is non-nil while executing inside the timed scheduler; it
	// suspends the current process for n time units.
	wait func(n uint64)

	// Stats counts work done, for benchmarks.
	Stats Stats
}

// Stats counts simulator activity.
type Stats struct {
	ProcRuns   int
	SettleIter int
	Edges      int
}

// NewInstance creates a fresh instance with every signal X.
func NewInstance(d *Design) *Instance {
	in := &Instance{
		design:    d,
		vals:      make(map[string]logic.Vector, len(d.Signals)),
		prev:      map[string]logic.Vector{},
		dirty:     map[string]bool{},
		combBySig: map[string][]*Process{},
		Stdout:    io.Discard,
	}
	for _, name := range d.Order {
		in.vals[name] = logic.AllX(d.Signals[name].Width)
	}
	edgeWatched := map[string]bool{}
	for _, p := range d.Procs {
		switch p.Kind {
		case ProcComb:
			for _, s := range p.Sens {
				in.combBySig[s.Sig] = append(in.combBySig[s.Sig], p)
			}
		case ProcSeq:
			in.seqProcs = append(in.seqProcs, p)
			for _, s := range p.Sens {
				edgeWatched[s.Sig] = true
			}
		}
	}
	for _, name := range d.Order {
		if edgeWatched[name] {
			in.edgeSigs = append(in.edgeSigs, name)
			in.prev[name] = in.vals[name]
		}
	}
	return in
}

// Design returns the elaborated design this instance simulates.
func (in *Instance) Design() *Design { return in.design }

// env interface ---------------------------------------------------------

func (in *Instance) readSignal(name string) (logic.Vector, error) {
	v, ok := in.vals[name]
	if !ok {
		return logic.Vector{}, fmt.Errorf("read of unknown signal %q", name)
	}
	return v, nil
}

func (in *Instance) signalWidth(name string) (int, bool) {
	s, ok := in.design.Signals[name]
	if !ok {
		return 0, false
	}
	return s.Width, true
}

// ------------------------------------------------------------------------

// SetInput drives a top-level input port. The change propagates through
// combinational logic and fires any edge-sensitive processes watching
// the signal (asynchronous set/reset), so no explicit Settle call is
// required afterwards.
func (in *Instance) SetInput(name string, v logic.Vector) error {
	p := in.design.Port(name)
	if p == nil || p.Dir == Out {
		return fmt.Errorf("sim: %q is not an input port", name)
	}
	in.applyWrite(resolvedWrite{sig: name, val: v.Resize(p.Width), whole: true})
	return in.propagate()
}

// SetInputUint is SetInput with a uint64 value.
func (in *Instance) SetInputUint(name string, v uint64) error {
	p := in.design.Port(name)
	if p == nil {
		return fmt.Errorf("sim: unknown port %q", name)
	}
	return in.SetInput(name, logic.FromUint64(p.Width, v))
}

// Get returns the current value of any signal (ports included).
func (in *Instance) Get(name string) (logic.Vector, error) {
	return in.readSignal(name)
}

// MustGet is Get for known-good names.
func (in *Instance) MustGet(name string) logic.Vector {
	v, err := in.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Settle propagates combinational logic to a fixpoint and fires any
// resulting edges.
func (in *Instance) Settle() error { return in.propagate() }

// Tick runs one full clock cycle on the named clock input: rising edge,
// then falling edge, with NBA and combinational settling after each.
func (in *Instance) Tick(clk string) error {
	if err := in.SetInputUint(clk, 1); err != nil {
		return err
	}
	in.Now += 5
	if err := in.SetInputUint(clk, 0); err != nil {
		return err
	}
	in.Now += 5
	return nil
}

// TickN runs n clock cycles.
func (in *Instance) TickN(clk string, n int) error {
	for i := 0; i < n; i++ {
		if err := in.Tick(clk); err != nil {
			return err
		}
	}
	return nil
}

const (
	maxSettleIterations = 1000
	maxEdgeWaves        = 64
)

// propagate settles combinational logic, then fires edge processes
// whose watched signals changed, repeating until quiescent.
func (in *Instance) propagate() error {
	for wave := 0; wave < maxEdgeWaves; wave++ {
		if err := in.settleComb(); err != nil {
			return err
		}
		fired, err := in.fireEdges()
		if err != nil {
			return err
		}
		if !fired {
			return nil
		}
	}
	return fmt.Errorf("sim: edge cascade did not settle after %d waves", maxEdgeWaves)
}

// settleComb runs level-sensitive processes until no signal changes.
func (in *Instance) settleComb() error {
	// Initial run of every comb process the first time around.
	pending := map[*Process]bool{}
	for sig := range in.dirty {
		for _, p := range in.combBySig[sig] {
			pending[p] = true
		}
	}
	if len(in.dirty) == 0 && in.Stats.ProcRuns == 0 {
		for _, p := range in.design.Procs {
			if p.Kind == ProcComb {
				pending[p] = true
			}
		}
	}
	for sig := range in.dirty {
		delete(in.dirty, sig)
	}

	for iter := 0; len(pending) > 0; iter++ {
		if iter > maxSettleIterations {
			return fmt.Errorf("sim: combinational logic did not settle (%d iterations); possible feedback loop", maxSettleIterations)
		}
		in.Stats.SettleIter++
		// Deterministic order: design order of processes.
		var run []*Process
		for _, p := range in.design.Procs {
			if pending[p] {
				run = append(run, p)
			}
		}
		pending = map[*Process]bool{}
		for _, p := range run {
			in.Stats.ProcRuns++
			if err := in.exec(p.Body); err != nil {
				return fmt.Errorf("sim: in %s: %v", p.Name, err)
			}
		}
		for sig := range in.dirty {
			for _, p := range in.combBySig[sig] {
				pending[p] = true
			}
			delete(in.dirty, sig)
		}
	}
	return nil
}

// fireEdges compares watched signals with their previous values, runs
// matching edge processes, applies the NBA queue and reports whether
// anything ran.
func (in *Instance) fireEdges() (bool, error) {
	type edge struct{ pos, neg bool }
	edges := map[string]edge{}
	for _, sig := range in.edgeSigs {
		prev, now := in.prev[sig], in.vals[sig]
		if prev.Equal(now) {
			continue
		}
		pb, nb := prev.Bit(0), now.Bit(0)
		e := edge{
			pos: isPosedge(pb, nb),
			neg: isNegedge(pb, nb),
		}
		edges[sig] = e
		in.prev[sig] = now
	}
	if len(edges) == 0 {
		return false, nil
	}
	var fired bool
	for _, p := range in.seqProcs {
		trigger := false
		for _, s := range p.Sens {
			e, ok := edges[s.Sig]
			if !ok {
				continue
			}
			if (s.Edge == verilog.EdgePos && e.pos) || (s.Edge == verilog.EdgeNeg && e.neg) {
				trigger = true
				break
			}
		}
		if !trigger {
			continue
		}
		fired = true
		in.Stats.ProcRuns++
		in.Stats.Edges++
		if err := in.exec(p.Body); err != nil {
			return false, fmt.Errorf("sim: in %s: %v", p.Name, err)
		}
	}
	// NBA region: apply queued writes after all triggered processes ran.
	nba := in.nba
	in.nba = nil
	for _, w := range nba {
		in.applyWrite(w)
	}
	return fired, nil
}

// isPosedge implements the IEEE 1364 posedge transition table.
func isPosedge(from, to logic.Bit) bool {
	if from == to {
		return false
	}
	switch from {
	case logic.L0:
		return true // 0 -> 1/x/z
	case logic.X, logic.Z:
		return to == logic.L1
	default:
		return false
	}
}

// isNegedge implements the IEEE 1364 negedge transition table.
func isNegedge(from, to logic.Bit) bool {
	if from == to {
		return false
	}
	switch from {
	case logic.L1:
		return true // 1 -> 0/x/z
	case logic.X, logic.Z:
		return to == logic.L0
	default:
		return false
	}
}

// ZeroInputs drives every input port (including clocks) to zero, the
// canonical starting state used by the testbench framework.
func (in *Instance) ZeroInputs() error {
	for _, p := range in.design.Ports {
		if p.Dir == Out {
			continue
		}
		if err := in.SetInput(p.Name, logic.New(p.Width)); err != nil {
			return err
		}
	}
	return nil
}
