package sim

import (
	"context"
	"fmt"
	"io"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Instance is a simulatable instance of an elaborated design. All
// signals start X; drive inputs with SetInput, propagate with Settle
// or Tick, and read results with Get.
//
// All state is slot-indexed: signal values live in a dense
// []logic.Vector addressed by the integer slots the design resolved at
// elaboration time. Name-based lookups happen only at the API boundary
// (SetInput / Get).
type Instance struct {
	design *Design
	engine Engine

	vals []logic.Vector // current value per slot
	prev []logic.Vector // last seen values, indexed like design.edgeSlots

	dirty     []bool  // per slot: value changed since last settle scan
	dirtyList []int32 // slots with dirty set, in write order

	pending  []bool // per comb-proc ordinal: scheduled to run
	npending int
	runBuf   []int32 // scratch for the settle loop

	edgeChg []bool // per edge-watched signal: changed this wave
	edgePos []bool
	edgeNeg []bool

	nba []resolvedWrite

	// Stdout receives $display output.
	Stdout io.Writer
	// Now is the current simulation time (cycle count ×10 under the
	// cycle API; event time under Run).
	Now uint64
	// Finished is set by $finish under the cycle API.
	Finished bool

	// wait is non-nil while executing inside the timed scheduler; it
	// suspends the current process for n time units.
	wait func(n uint64)

	// ctx, when non-nil, is polled at every propagation wave; once the
	// context is cancelled the next Settle/SetInput/Tick returns its
	// error. Set with BindContext.
	ctx context.Context

	// Stats counts work done, for benchmarks.
	Stats Stats
}

// Stats counts simulator activity.
type Stats struct {
	ProcRuns   int
	SettleIter int
	Edges      int
}

// NewInstance creates a fresh instance with every signal X, running on
// DefaultEngine.
func NewInstance(d *Design) *Instance { return NewInstanceEngine(d, EngineAuto) }

// NewInstanceEngine creates a fresh instance on an explicit engine.
func NewInstanceEngine(d *Design, e Engine) *Instance {
	if e == EngineAuto {
		e = DefaultEngine
	}
	in := &Instance{
		design:    d,
		engine:    e,
		vals:      make([]logic.Vector, len(d.Order)),
		prev:      make([]logic.Vector, len(d.edgeSlots)),
		dirty:     make([]bool, len(d.Order)),
		dirtyList: make([]int32, 0, len(d.Order)),
		pending:   make([]bool, len(d.combProcs)),
		runBuf:    make([]int32, 0, len(d.combProcs)),
		edgeChg:   make([]bool, len(d.edgeSlots)),
		edgePos:   make([]bool, len(d.edgeSlots)),
		edgeNeg:   make([]bool, len(d.edgeSlots)),
		Stdout:    io.Discard,
	}
	in.Reset()
	return in
}

// Reset returns the instance to its freshly constructed state (every
// signal X, no pending events, time zero) without reallocating. A
// Reset instance behaves exactly like a new one, which is what lets
// the testbench framework pool instances across scenarios.
func (in *Instance) Reset() {
	d := in.design
	for i := range in.vals {
		in.vals[i] = logic.AllX(d.slotWidths[i])
	}
	for i, slot := range d.edgeSlots {
		in.prev[i] = in.vals[slot]
	}
	for i := range in.dirty {
		in.dirty[i] = false
	}
	in.dirtyList = in.dirtyList[:0]
	for i := range in.pending {
		in.pending[i] = false
	}
	in.npending = 0
	in.nba = in.nba[:0]
	in.Now = 0
	in.Finished = false
	in.Stats = Stats{}
}

// BindContext attaches a cancellation context to the instance: every
// propagation wave (one step batch) polls it and the first
// Settle/SetInput/Tick after cancellation returns ctx.Err(). Contexts
// that can never be cancelled (context.Background and friends) are
// dropped so the hot path keeps a single nil check. The binding
// survives Reset — pooled instances stay cancellable across scenarios.
func (in *Instance) BindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		in.ctx = nil
		return
	}
	in.ctx = ctx
}

// Design returns the elaborated design this instance simulates.
func (in *Instance) Design() *Design { return in.design }

// Engine returns the engine this instance executes on.
func (in *Instance) Engine() Engine { return in.engine }

// env interface ---------------------------------------------------------

func (in *Instance) readSignal(name string) (logic.Vector, error) {
	slot, ok := in.design.slotOf[name]
	if !ok {
		return logic.Vector{}, fmt.Errorf("read of unknown signal %q", name)
	}
	return in.vals[slot], nil
}

func (in *Instance) signalWidth(name string) (int, bool) {
	s, ok := in.design.Signals[name]
	if !ok {
		return 0, false
	}
	return s.Width, true
}

// ------------------------------------------------------------------------

// markDirty records a slot whose value changed.
func (in *Instance) markDirty(slot int32) {
	if !in.dirty[slot] {
		in.dirty[slot] = true
		in.dirtyList = append(in.dirtyList, slot)
	}
}

// runProc executes one process body on the instance's engine. Every
// engine except the reference interpreter runs the compiled program
// when the body compiled (EngineBatched on a scalar instance is just
// the compiled engine; batching lives in BatchInstance).
func (in *Instance) runProc(p *Process) error {
	if in.engine != EngineInterp && p.code != nil {
		return p.code(in)
	}
	return in.exec(p.Body)
}

// SetInput drives a top-level input port. The change propagates through
// combinational logic and fires any edge-sensitive processes watching
// the signal (asynchronous set/reset), so no explicit Settle call is
// required afterwards.
func (in *Instance) SetInput(name string, v logic.Vector) error {
	p := in.design.Port(name)
	if p == nil || p.Dir == Out {
		return fmt.Errorf("sim: %q is not an input port", name)
	}
	slot := in.design.slotOf[name]
	in.applyWrite(resolvedWrite{slot: int32(slot), val: v.Resize(p.Width), whole: true})
	return in.propagate()
}

// SetInputUint is SetInput with a uint64 value.
func (in *Instance) SetInputUint(name string, v uint64) error {
	p := in.design.Port(name)
	if p == nil {
		return fmt.Errorf("sim: unknown port %q", name)
	}
	return in.SetInput(name, logic.FromUint64(p.Width, v))
}

// Get returns the current value of any signal (ports included).
func (in *Instance) Get(name string) (logic.Vector, error) {
	return in.readSignal(name)
}

// MustGet is Get for known-good names.
func (in *Instance) MustGet(name string) logic.Vector {
	v, err := in.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Settle propagates combinational logic to a fixpoint and fires any
// resulting edges.
func (in *Instance) Settle() error { return in.propagate() }

// Tick runs one full clock cycle on the named clock input: rising edge,
// then falling edge, with NBA and combinational settling after each.
func (in *Instance) Tick(clk string) error {
	if err := in.SetInputUint(clk, 1); err != nil {
		return err
	}
	in.Now += 5
	if err := in.SetInputUint(clk, 0); err != nil {
		return err
	}
	in.Now += 5
	return nil
}

// TickN runs n clock cycles.
func (in *Instance) TickN(clk string, n int) error {
	for i := 0; i < n; i++ {
		if err := in.Tick(clk); err != nil {
			return err
		}
	}
	return nil
}

const (
	maxSettleIterations = 1000
	maxEdgeWaves        = 64
)

// propagate settles combinational logic, then fires edge processes
// whose watched signals changed, repeating until quiescent.
func (in *Instance) propagate() error {
	if in.ctx != nil {
		if err := in.ctx.Err(); err != nil {
			return err
		}
	}
	for wave := 0; wave < maxEdgeWaves; wave++ {
		if err := in.settleComb(); err != nil {
			return err
		}
		fired, err := in.fireEdges()
		if err != nil {
			return err
		}
		if !fired {
			return nil
		}
	}
	return fmt.Errorf("sim: edge cascade did not settle after %d waves", maxEdgeWaves)
}

// schedulePending moves the dirty set into the pending process set and
// clears it.
func (in *Instance) schedulePending() {
	d := in.design
	for _, slot := range in.dirtyList {
		in.dirty[slot] = false
		for _, ord := range d.combBySlot[slot] {
			if !in.pending[ord] {
				in.pending[ord] = true
				in.npending++
			}
		}
	}
	in.dirtyList = in.dirtyList[:0]
}

// settleComb runs level-sensitive processes until no signal changes.
func (in *Instance) settleComb() error {
	d := in.design
	// Initial run of every comb process the first time around.
	if len(in.dirtyList) == 0 && in.Stats.ProcRuns == 0 {
		for i := range in.pending {
			if !in.pending[i] {
				in.pending[i] = true
				in.npending++
			}
		}
	}
	in.schedulePending()

	for iter := 0; in.npending > 0; iter++ {
		if iter > maxSettleIterations {
			return fmt.Errorf("sim: combinational logic did not settle (%d iterations); possible feedback loop", maxSettleIterations)
		}
		in.Stats.SettleIter++
		// Deterministic order: design order of processes.
		run := in.runBuf[:0]
		for ord := range in.pending {
			if in.pending[ord] {
				run = append(run, int32(ord))
				in.pending[ord] = false
			}
		}
		in.npending = 0
		for _, ord := range run {
			p := d.combProcs[ord]
			in.Stats.ProcRuns++
			if err := in.runProc(p); err != nil {
				return fmt.Errorf("sim: in %s: %v", p.Name, err)
			}
		}
		in.runBuf = run[:0]
		in.schedulePending()
	}
	return nil
}

// fireEdges compares watched signals with their previous values, runs
// matching edge processes, applies the NBA queue and reports whether
// anything ran.
func (in *Instance) fireEdges() (bool, error) {
	d := in.design
	changed := false
	for i, slot := range d.edgeSlots {
		prev, now := in.prev[i], in.vals[slot]
		if prev.Equal(now) {
			in.edgeChg[i] = false
			continue
		}
		pb, nb := prev.Bit(0), now.Bit(0)
		in.edgeChg[i] = true
		in.edgePos[i] = isPosedge(pb, nb)
		in.edgeNeg[i] = isNegedge(pb, nb)
		in.prev[i] = now
		changed = true
	}
	if !changed {
		return false, nil
	}
	var fired bool
	for _, p := range d.seqProcs {
		trigger := false
		for _, s := range p.edgeSens {
			if !in.edgeChg[s.idx] {
				continue
			}
			if (s.edge == verilog.EdgePos && in.edgePos[s.idx]) || (s.edge == verilog.EdgeNeg && in.edgeNeg[s.idx]) {
				trigger = true
				break
			}
		}
		if !trigger {
			continue
		}
		fired = true
		in.Stats.ProcRuns++
		in.Stats.Edges++
		if err := in.runProc(p); err != nil {
			return false, fmt.Errorf("sim: in %s: %v", p.Name, err)
		}
	}
	// NBA region: apply queued writes after all triggered processes ran.
	for i := range in.nba {
		in.applyWrite(in.nba[i])
	}
	in.nba = in.nba[:0]
	return fired, nil
}

// isPosedge implements the IEEE 1364 posedge transition table.
func isPosedge(from, to logic.Bit) bool {
	if from == to {
		return false
	}
	switch from {
	case logic.L0:
		return true // 0 -> 1/x/z
	case logic.X, logic.Z:
		return to == logic.L1
	default:
		return false
	}
}

// isNegedge implements the IEEE 1364 negedge transition table.
func isNegedge(from, to logic.Bit) bool {
	if from == to {
		return false
	}
	switch from {
	case logic.L1:
		return true // 1 -> 0/x/z
	case logic.X, logic.Z:
		return to == logic.L0
	default:
		return false
	}
}

// ZeroInputs drives every input port (including clocks) to zero, the
// canonical starting state used by the testbench framework.
func (in *Instance) ZeroInputs() error {
	for _, p := range in.design.Ports {
		if p.Dir == Out {
			continue
		}
		if err := in.SetInput(p.Name, logic.New(p.Width)); err != nil {
			return err
		}
	}
	return nil
}
