package sim

// Levelized static scheduling for the batch engine.
//
// The event-driven scheduler (settleComb) re-runs combinational
// processes until a fixpoint because a process may observe stale
// values of signals produced by processes that happen to run after it.
// When the combinational region is provably static — every process is
// a pure function of its sensitivity list, every signal has a single
// combinational writer and the writer→reader graph is acyclic — a
// single topologically ordered pass computes the identical fixpoint,
// with each process running at most once per settle.
//
// The proof obligations live in internal/vstatic (AnalyzeProc and
// Region), shared with the module-level lint so the two fronts cannot
// drift: analyzeStatic adapts a design's comb processes into a
// vstatic.Region and converts its findings into errNotStatic errors;
// levelize builds the schedule over the union edge set of the whole
// batch (base plus every accepted variant), so one order is valid for
// all lanes. Any failure simply drops the batch to its per-lane
// event-driven mode, which replicates the scalar scheduler exactly —
// levelization is an optimization, never a semantic requirement.

import (
	"errors"
	"fmt"

	"correctbench/internal/vstatic"
)

// combStatic is the per-design result of a successful static
// analysis: the writer→reader dependency edges (by comb process
// ordinal) of the design's combinational region.
type combStatic struct {
	edges [][2]int
}

var errNotStatic = errors.New("not static")

// designRegion runs the shared purity analysis over every
// combinational process of d, with write/NBA facts filtered to
// declared slots (names that resolve to nothing cannot conflict,
// mirroring the engine's slot lookups).
func designRegion(d *Design) vstatic.Region {
	env := vstatic.Env{Width: func(name string) (int, bool) {
		slot, ok := d.slotOf[name]
		if !ok {
			return 0, false
		}
		return d.slotWidths[slot], true
	}}
	region := vstatic.Region{
		Facts: make([]vstatic.ProcFacts, len(d.combProcs)),
		Sens:  make([]func(string) bool, len(d.combProcs)),
	}
	for ord, p := range d.combProcs {
		sens := map[string]bool{}
		for _, se := range p.Sens {
			sens[se.Sig] = true
		}
		sensFn := func(name string) bool { return sens[name] }
		facts := vstatic.AnalyzeProc(p.Body, sensFn, env)
		for name := range facts.Writes {
			if _, ok := d.slotOf[name]; !ok {
				delete(facts.Writes, name)
			}
		}
		known := facts.NBA[:0]
		for _, name := range facts.NBA {
			if _, ok := d.slotOf[name]; ok {
				known = append(known, name)
			}
		}
		facts.NBA = known
		region.Facts[ord] = facts
		region.Sens[ord] = sensFn
	}
	return region
}

// analyzeStatic proves the design's combinational region static.
// A process passes when it is a pure function of its sensitivity
// list: every read of a signal bit the process blocking-writes is
// preceded by a definite assignment of that bit (no state carried
// across runs), nonblocking targets are whole identifiers, and every
// input bit it reads appears in its sensitivity list. Globally, every
// slot bit has at most one combinational blocking writer and every
// slot one combinational NBA writer.
func analyzeStatic(d *Design) (*combStatic, error) {
	region := designRegion(d)
	for ord, f := range region.Facts {
		if f.Err != nil {
			return nil, fmt.Errorf("%s: %w: %v", d.combProcs[ord].Name, errNotStatic, f.Err)
		}
	}
	if cs := region.Conflicts(); len(cs) != 0 {
		c := cs[0]
		name := d.combProcs[c.B].Name
		if c.NBA {
			return nil, fmt.Errorf("%s: %w: signal %q has multiple combinational nonblocking writers", name, errNotStatic, c.Signal)
		}
		return nil, fmt.Errorf("%s: %w: signal %q has multiple combinational writers", name, errNotStatic, c.Signal)
	}
	return &combStatic{edges: region.Edges()}, nil
}

// sensSlots resolves a process's sensitivity list to design slots,
// skipping names that resolve to nothing (mirroring combBySlot).
func sensSlots(d *Design, p *Process) []int32 {
	out := make([]int32, 0, len(p.Sens))
	for _, se := range p.Sens {
		if slot, ok := d.slotOf[se.Sig]; ok {
			out = append(out, int32(slot))
		}
	}
	return out
}

// levelize builds one topological schedule over the union dependency
// graph of every design in the batch: an edge W→R whenever W
// blocking-writes bits R reads sensitively in any design.
// Nonblocking writes do not create edges (they land in the NBA region
// after settling, like sequential outputs). Returns the comb ordinals
// sorted by (level, ordinal) and whether the union graph is acyclic.
func levelize(nProcs int, statics []*combStatic) ([]int32, bool) {
	adj := make([][]int32, nProcs)
	indeg := make([]int, nProcs)
	seen := make(map[int64]bool)
	for _, st := range statics {
		for _, e := range st.edges {
			w, k := e[0], e[1]
			if w < 0 || k < 0 || w >= nProcs || k >= nProcs {
				continue
			}
			key := int64(w)<<32 | int64(k)
			if seen[key] {
				continue
			}
			seen[key] = true
			adj[w] = append(adj[w], int32(k))
			indeg[k]++
		}
	}

	level := make([]int, nProcs)
	queue := make([]int32, 0, nProcs)
	for k := 0; k < nProcs; k++ {
		if indeg[k] == 0 {
			queue = append(queue, int32(k))
		}
	}
	done := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, v := range adj[u] {
			if level[u]+1 > level[v] {
				level[v] = level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if done < nProcs {
		return nil, false
	}

	order := make([]int32, nProcs)
	for i := range order {
		order[i] = int32(i)
	}
	// Insertion sort by (level, ordinal); nProcs is small.
	for i := 1; i < nProcs; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if level[a] < level[b] || (level[a] == level[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order, true
}

// batchCompatible reports whether a variant can share the base
// design's batch program: identical slot layout, port interface and
// process skeleton (kinds and edge sensitivities), so only process
// bodies may differ.
func batchCompatible(base, v *Design) error {
	if len(v.Order) != len(base.Order) {
		return fmt.Errorf("sim: batch: variant has %d signals, base has %d", len(v.Order), len(base.Order))
	}
	for i, name := range base.Order {
		if v.Order[i] != name {
			return fmt.Errorf("sim: batch: signal layout differs at slot %d (%q vs %q)", i, v.Order[i], name)
		}
		if v.slotWidths[i] != base.slotWidths[i] {
			return fmt.Errorf("sim: batch: width of %q differs (%d vs %d)", name, v.slotWidths[i], base.slotWidths[i])
		}
	}
	if len(v.Ports) != len(base.Ports) {
		return fmt.Errorf("sim: batch: port count differs")
	}
	for i, p := range base.Ports {
		vp := v.Ports[i]
		if vp.Name != p.Name || vp.Dir != p.Dir || vp.Width != p.Width {
			return fmt.Errorf("sim: batch: port %q differs", p.Name)
		}
	}
	if len(v.Procs) != len(base.Procs) {
		return fmt.Errorf("sim: batch: process count differs")
	}
	for i, p := range base.Procs {
		if v.Procs[i].Kind != p.Kind {
			return fmt.Errorf("sim: batch: process %d kind differs", i)
		}
	}
	if len(v.seqProcs) != len(base.seqProcs) {
		return fmt.Errorf("sim: batch: sequential process count differs")
	}
	for i, p := range base.seqProcs {
		vp := v.seqProcs[i]
		if len(vp.Sens) != len(p.Sens) {
			return fmt.Errorf("sim: batch: edge sensitivity of %s differs", p.Name)
		}
		for j, se := range p.Sens {
			if vp.Sens[j].Sig != se.Sig || vp.Sens[j].Edge != se.Edge {
				return fmt.Errorf("sim: batch: edge sensitivity of %s differs", p.Name)
			}
		}
	}
	if len(v.edgeSlots) != len(base.edgeSlots) {
		return fmt.Errorf("sim: batch: edge-watched signal set differs")
	}
	for i, s := range base.edgeSlots {
		if v.edgeSlots[i] != s {
			return fmt.Errorf("sim: batch: edge-watched signal set differs")
		}
	}
	return nil
}
