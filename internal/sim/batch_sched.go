package sim

// Levelized static scheduling for the batch engine.
//
// The event-driven scheduler (settleComb) re-runs combinational
// processes until a fixpoint because a process may observe stale
// values of signals produced by processes that happen to run after it.
// When the combinational region is provably static — every process is
// a pure function of its sensitivity list, every signal has a single
// combinational writer and the writer→reader graph is acyclic — a
// single topologically ordered pass computes the identical fixpoint,
// with each process running at most once per settle.
//
// analyzeStatic proves those conditions per design; levelize builds
// the schedule over the union graph of the whole batch (base plus
// every accepted variant), so one order is valid for all lanes. Any
// failure simply drops the batch to its per-lane event-driven mode,
// which replicates the scalar scheduler exactly — levelization is an
// optimization, never a semantic requirement.

import (
	"errors"
	"fmt"

	"correctbench/internal/verilog"
)

// combStatic is the per-design result of a successful static
// analysis: which comb process ordinal blocking-writes each slot, and
// each ordinal's sensitivity slots.
type combStatic struct {
	writer map[int32]int32
	deps   [][]int32
}

var errNotStatic = errors.New("not static")

// analyzeStatic proves the design's combinational region static.
// A process passes when it is a pure function of its sensitivity list:
// every read of a signal the process blocking-writes is preceded by a
// definite whole-signal assignment (no state carried across runs),
// nonblocking targets are whole identifiers, and every other signal it
// reads appears in its sensitivity list. Globally, each slot has at
// most one combinational blocking writer and one combinational NBA
// writer.
func analyzeStatic(d *Design) (*combStatic, error) {
	st := &combStatic{writer: map[int32]int32{}, deps: make([][]int32, len(d.combProcs))}
	nbaWriter := map[int32]int32{}
	for ord, p := range d.combProcs {
		an := &pureAnalyzer{bt: map[string]bool{}}
		collectBlockingTargets(p.Body, an.bt)
		final, err := an.walk(p.Body, assignSet{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		// Every blocking target must be definitely assigned on every
		// path: a target left unassigned on some path (a latch) keeps
		// its previous value, which a run-once schedule cannot honor.
		for name := range an.bt {
			if !final[name] {
				return nil, fmt.Errorf("%s: %w: %q is not assigned on every path (latch)", p.Name, errNotStatic, name)
			}
		}
		for _, name := range an.nbaTargets {
			slot, ok := d.slotOf[name]
			if !ok {
				continue
			}
			if w, dup := nbaWriter[int32(slot)]; dup && w != int32(ord) {
				return nil, fmt.Errorf("%s: %w: signal %q has multiple combinational nonblocking writers", p.Name, errNotStatic, name)
			}
			nbaWriter[int32(slot)] = int32(ord)
		}
		sens := map[string]bool{}
		for _, se := range p.Sens {
			sens[se.Sig] = true
		}
		for _, se := range readSetExcludingTargets(p.Body) {
			if _, ok := d.slotOf[se.Sig]; !ok {
				continue
			}
			if !sens[se.Sig] {
				return nil, fmt.Errorf("%s: %w: reads %q outside its sensitivity list", p.Name, errNotStatic, se.Sig)
			}
		}
		for name := range an.bt {
			slot, ok := d.slotOf[name]
			if !ok {
				continue
			}
			if w, dup := st.writer[int32(slot)]; dup && w != int32(ord) {
				return nil, fmt.Errorf("%s: %w: signal %q has multiple combinational writers", p.Name, errNotStatic, name)
			}
			st.writer[int32(slot)] = int32(ord)
		}
		st.deps[ord] = sensSlots(d, p)
	}
	return st, nil
}

// sensSlots resolves a process's sensitivity list to design slots,
// skipping names that resolve to nothing (mirroring combBySlot).
func sensSlots(d *Design, p *Process) []int32 {
	out := make([]int32, 0, len(p.Sens))
	for _, se := range p.Sens {
		if slot, ok := d.slotOf[se.Sig]; ok {
			out = append(out, int32(slot))
		}
	}
	return out
}

// collectBlockingTargets gathers every signal name the body assigns
// with a blocking assignment (whole, indexed, part-selected, or inside
// a concat target).
func collectBlockingTargets(body verilog.Stmt, into map[string]bool) {
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		if a, ok := s.(*verilog.Assign); ok && !a.NonBlocking {
			for _, n := range verilog.LHSTargets(a.LHS) {
				into[n] = true
			}
		}
	})
}

// assignSet tracks signals definitely whole-assigned so far on every
// execution path through a process body.
type assignSet map[string]bool

func (a assignSet) clone() assignSet {
	out := make(assignSet, len(a))
	for k := range a {
		out[k] = true
	}
	return out
}

func intersectAssign(a, b assignSet) assignSet {
	out := assignSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// pureAnalyzer runs a definitely-assigned analysis over one process
// body: a read of a blocking-target signal before its definite whole
// assignment means the process observes its own previous run (latch
// behavior), which the single-pass levelized schedule cannot honor.
type pureAnalyzer struct {
	bt         map[string]bool // blocking-write targets of this process
	nbaTargets []string
}

// checkReads rejects reads of not-yet-assigned blocking targets.
func (an *pureAnalyzer) checkReads(e verilog.Expr, a assignSet) error {
	var bad string
	verilog.WalkExprs(e, func(x verilog.Expr) {
		if id, ok := x.(*verilog.Ident); ok && an.bt[id.Name] && !a[id.Name] && bad == "" {
			bad = id.Name
		}
	})
	if bad != "" {
		return fmt.Errorf("%w: reads %q before assigning it", errNotStatic, bad)
	}
	return nil
}

// assignLHS processes a blocking-assignment target: whole idents
// become definitely assigned; partial writes require the target to be
// definitely assigned already (otherwise unwritten bits carry state).
func (an *pureAnalyzer) assignLHS(lhs verilog.Expr, a assignSet) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		a[x.Name] = true
		return nil
	case *verilog.Index:
		if err := an.checkReads(x.Index, a); err != nil {
			return err
		}
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("%w: unsupported assignment target", errNotStatic)
		}
		if !a[id.Name] {
			return fmt.Errorf("%w: partial write to %q before whole assignment", errNotStatic, id.Name)
		}
		return nil
	case *verilog.PartSelect:
		if err := an.checkReads(x.MSB, a); err != nil {
			return err
		}
		if err := an.checkReads(x.LSB, a); err != nil {
			return err
		}
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("%w: unsupported assignment target", errNotStatic)
		}
		if !a[id.Name] {
			return fmt.Errorf("%w: partial write to %q before whole assignment", errNotStatic, id.Name)
		}
		return nil
	case *verilog.Concat:
		for _, p := range x.Parts {
			if err := an.assignLHS(p, a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unsupported assignment target", errNotStatic)
	}
}

// walk analyzes s starting from assigned-set a, returning the set of
// signals definitely assigned after s on every path.
func (an *pureAnalyzer) walk(s verilog.Stmt, a assignSet) (assignSet, error) {
	switch x := s.(type) {
	case nil, *verilog.Null:
		return a, nil

	case *verilog.Block:
		var err error
		for _, sub := range x.Stmts {
			if a, err = an.walk(sub, a); err != nil {
				return nil, err
			}
		}
		return a, nil

	case *verilog.Assign:
		if err := an.checkReads(x.RHS, a); err != nil {
			return nil, err
		}
		if x.NonBlocking {
			id, ok := x.LHS.(*verilog.Ident)
			if !ok {
				return nil, fmt.Errorf("%w: nonblocking write to a partial target", errNotStatic)
			}
			an.nbaTargets = append(an.nbaTargets, id.Name)
			return a, nil
		}
		if err := an.assignLHS(x.LHS, a); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.If:
		if err := an.checkReads(x.Cond, a); err != nil {
			return nil, err
		}
		th, err := an.walk(x.Then, a.clone())
		if err != nil {
			return nil, err
		}
		el := a
		if x.Else != nil {
			if el, err = an.walk(x.Else, a.clone()); err != nil {
				return nil, err
			}
		}
		return intersectAssign(th, el), nil

	case *verilog.Case:
		if err := an.checkReads(x.Expr, a); err != nil {
			return nil, err
		}
		hasDefault := false
		var result assignSet
		for _, item := range x.Items {
			for _, e := range item.Exprs {
				if err := an.checkReads(e, a); err != nil {
					return nil, err
				}
			}
			if item.Exprs == nil {
				hasDefault = true
			}
			arm, err := an.walk(item.Body, a.clone())
			if err != nil {
				return nil, err
			}
			if result == nil {
				result = arm
			} else {
				result = intersectAssign(result, arm)
			}
		}
		if result == nil {
			return a, nil
		}
		if !hasDefault {
			// No arm may match: only what was assigned before survives.
			result = intersectAssign(result, a)
		}
		return result, nil

	case *verilog.For:
		a, err := an.walk(x.Init, a)
		if err != nil {
			return nil, err
		}
		if err := an.checkReads(x.Cond, a); err != nil {
			return nil, err
		}
		// The body may run zero times; anything assigned inside does
		// not survive, but reads inside must still be clean against the
		// post-init state.
		ab, err := an.walk(x.Body, a.clone())
		if err != nil {
			return nil, err
		}
		if _, err := an.walk(x.Step, ab); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.Repeat:
		if err := an.checkReads(x.Count, a); err != nil {
			return nil, err
		}
		if _, err := an.walk(x.Body, a.clone()); err != nil {
			return nil, err
		}
		return a, nil

	case *verilog.SysCall:
		// Only the argument-ignoring no-op calls survive batch
		// compilation, so nothing is read here.
		return a, nil

	default:
		return nil, fmt.Errorf("%w: unsupported statement", errNotStatic)
	}
}

// levelize builds one topological schedule over the union dependency
// graph of every design in the batch: an edge W→R whenever W
// blocking-writes a slot in R's sensitivity list in any design.
// Nonblocking writes do not create edges (they land in the NBA region
// after settling, like sequential outputs). Returns the comb ordinals
// sorted by (level, ordinal) and whether the union graph is acyclic.
func levelize(nProcs int, statics []*combStatic) ([]int32, bool) {
	adj := make([][]int32, nProcs)
	indeg := make([]int, nProcs)
	seen := make(map[int64]bool)
	for _, st := range statics {
		for k := 0; k < nProcs; k++ {
			for _, s := range st.deps[k] {
				w, ok := st.writer[s]
				if !ok || w == int32(k) {
					// Self-edges are fine: a pure process re-reading its
					// own output computes the same value.
					continue
				}
				key := int64(w)<<32 | int64(k)
				if seen[key] {
					continue
				}
				seen[key] = true
				adj[w] = append(adj[w], int32(k))
				indeg[k]++
			}
		}
	}

	level := make([]int, nProcs)
	queue := make([]int32, 0, nProcs)
	for k := 0; k < nProcs; k++ {
		if indeg[k] == 0 {
			queue = append(queue, int32(k))
		}
	}
	done := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, v := range adj[u] {
			if level[u]+1 > level[v] {
				level[v] = level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if done < nProcs {
		return nil, false
	}

	order := make([]int32, nProcs)
	for i := range order {
		order[i] = int32(i)
	}
	// Insertion sort by (level, ordinal); nProcs is small.
	for i := 1; i < nProcs; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if level[a] < level[b] || (level[a] == level[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	return order, true
}

// batchCompatible reports whether a variant can share the base
// design's batch program: identical slot layout, port interface and
// process skeleton (kinds and edge sensitivities), so only process
// bodies may differ.
func batchCompatible(base, v *Design) error {
	if len(v.Order) != len(base.Order) {
		return fmt.Errorf("sim: batch: variant has %d signals, base has %d", len(v.Order), len(base.Order))
	}
	for i, name := range base.Order {
		if v.Order[i] != name {
			return fmt.Errorf("sim: batch: signal layout differs at slot %d (%q vs %q)", i, v.Order[i], name)
		}
		if v.slotWidths[i] != base.slotWidths[i] {
			return fmt.Errorf("sim: batch: width of %q differs (%d vs %d)", name, v.slotWidths[i], base.slotWidths[i])
		}
	}
	if len(v.Ports) != len(base.Ports) {
		return fmt.Errorf("sim: batch: port count differs")
	}
	for i, p := range base.Ports {
		vp := v.Ports[i]
		if vp.Name != p.Name || vp.Dir != p.Dir || vp.Width != p.Width {
			return fmt.Errorf("sim: batch: port %q differs", p.Name)
		}
	}
	if len(v.Procs) != len(base.Procs) {
		return fmt.Errorf("sim: batch: process count differs")
	}
	for i, p := range base.Procs {
		if v.Procs[i].Kind != p.Kind {
			return fmt.Errorf("sim: batch: process %d kind differs", i)
		}
	}
	if len(v.seqProcs) != len(base.seqProcs) {
		return fmt.Errorf("sim: batch: sequential process count differs")
	}
	for i, p := range base.seqProcs {
		vp := v.seqProcs[i]
		if len(vp.Sens) != len(p.Sens) {
			return fmt.Errorf("sim: batch: edge sensitivity of %s differs", p.Name)
		}
		for j, se := range p.Sens {
			if vp.Sens[j].Sig != se.Sig || vp.Sens[j].Edge != se.Edge {
				return fmt.Errorf("sim: batch: edge sensitivity of %s differs", p.Name)
			}
		}
	}
	if len(v.edgeSlots) != len(base.edgeSlots) {
		return fmt.Errorf("sim: batch: edge-watched signal set differs")
	}
	for i, s := range base.edgeSlots {
		if v.edgeSlots[i] != s {
			return fmt.Errorf("sim: batch: edge-watched signal set differs")
		}
	}
	return nil
}
