package sim

import (
	"bytes"
	"strings"
	"testing"

	"correctbench/internal/logic"
)

func mustElab(t *testing.T, src, top string) *Design {
	t.Helper()
	d, err := ElaborateSource(src, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func getUint(t *testing.T, in *Instance, name string) uint64 {
	t.Helper()
	v := in.MustGet(name)
	u, ok := v.Uint64()
	if !ok {
		t.Fatalf("%s = %s (not fully defined)", name, v)
	}
	return u
}

func TestCombMux(t *testing.T) {
	d := mustElab(t, `
module mux2(input [3:0] a, input [3:0] b, input sel, output [3:0] y);
    assign y = sel ? b : a;
endmodule`, "mux2")
	in := NewInstance(d)
	if err := in.ZeroInputs(); err != nil {
		t.Fatal(err)
	}
	in.SetInputUint("a", 5)
	in.SetInputUint("b", 9)
	in.SetInputUint("sel", 0)
	if got := getUint(t, in, "y"); got != 5 {
		t.Errorf("y = %d, want 5", got)
	}
	in.SetInputUint("sel", 1)
	if got := getUint(t, in, "y"); got != 9 {
		t.Errorf("y = %d, want 9", got)
	}
}

func TestCombAdderWithCarry(t *testing.T) {
	d := mustElab(t, `
module add4(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);
    assign {cout, sum} = a + b + cin;
endmodule`, "add4")
	in := NewInstance(d)
	in.ZeroInputs()
	for _, c := range []struct{ a, b, cin, sum, cout uint64 }{
		{3, 4, 0, 7, 0},
		{15, 1, 0, 0, 1},
		{15, 15, 1, 15, 1},
		{8, 7, 1, 0, 1},
	} {
		in.SetInputUint("a", c.a)
		in.SetInputUint("b", c.b)
		in.SetInputUint("cin", c.cin)
		if got := getUint(t, in, "sum"); got != c.sum {
			t.Errorf("sum(%d+%d+%d) = %d, want %d", c.a, c.b, c.cin, got, c.sum)
		}
		if got := getUint(t, in, "cout"); got != c.cout {
			t.Errorf("cout(%d+%d+%d) = %d, want %d", c.a, c.b, c.cin, got, c.cout)
		}
	}
}

func TestSeqCounter(t *testing.T) {
	d := mustElab(t, `
module counter(input clk, input rst, input en, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else if (en) q <= q + 8'd1;
    end
endmodule`, "counter")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("rst", 1)
	in.Tick("clk")
	if got := getUint(t, in, "q"); got != 0 {
		t.Fatalf("after reset q = %d", got)
	}
	in.SetInputUint("rst", 0)
	in.SetInputUint("en", 1)
	for i := 1; i <= 5; i++ {
		in.Tick("clk")
		if got := getUint(t, in, "q"); got != uint64(i) {
			t.Fatalf("after %d ticks q = %d", i, got)
		}
	}
	in.SetInputUint("en", 0)
	in.Tick("clk")
	if got := getUint(t, in, "q"); got != 5 {
		t.Errorf("enable=0 still counted: q = %d", got)
	}
}

func TestNBASwapSemantics(t *testing.T) {
	// The classic register swap requires NBA to read pre-edge values.
	d := mustElab(t, `
module swap(input clk, input load, input [3:0] va, input [3:0] vb, output reg [3:0] a, output reg [3:0] b);
    always @(posedge clk) begin
        if (load) begin
            a <= va;
            b <= vb;
        end else begin
            a <= b;
            b <= a;
        end
    end
endmodule`, "swap")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("load", 1)
	in.SetInputUint("va", 3)
	in.SetInputUint("vb", 12)
	in.Tick("clk")
	in.SetInputUint("load", 0)
	in.Tick("clk")
	if a, b := getUint(t, in, "a"), getUint(t, in, "b"); a != 12 || b != 3 {
		t.Errorf("swap failed: a=%d b=%d", a, b)
	}
}

func TestBlockingChainInSeq(t *testing.T) {
	// Blocking assignments inside a clocked block propagate within the
	// same edge: q2 sees the new q1.
	d := mustElab(t, `
module chain(input clk, input d, output reg q1, output reg q2);
    always @(posedge clk) begin
        q1 = d;
        q2 = q1;
    end
endmodule`, "chain")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("d", 1)
	in.Tick("clk")
	if q1, q2 := getUint(t, in, "q1"), getUint(t, in, "q2"); q1 != 1 || q2 != 1 {
		t.Errorf("blocking chain: q1=%d q2=%d, want 1 1", q1, q2)
	}
}

func TestNBAChainInSeq(t *testing.T) {
	// Non-blocking chain forms a 2-stage shift register instead.
	d := mustElab(t, `
module chain(input clk, input d, output reg q1, output reg q2);
    always @(posedge clk) begin
        q1 <= d;
        q2 <= q1;
    end
endmodule`, "chain")
	in := NewInstance(d)
	in.ZeroInputs()
	in.Tick("clk") // flush X with d=0
	in.Tick("clk")
	in.SetInputUint("d", 1)
	in.Tick("clk")
	if q1, q2 := getUint(t, in, "q1"), getUint(t, in, "q2"); q1 != 1 || q2 != 0 {
		t.Errorf("NBA chain after 1 tick: q1=%d q2=%d, want 1 0", q1, q2)
	}
	in.Tick("clk")
	if q2 := getUint(t, in, "q2"); q2 != 1 {
		t.Errorf("NBA chain after 2 ticks: q2=%d, want 1", q2)
	}
}

func TestAsyncReset(t *testing.T) {
	d := mustElab(t, `
module ff(input clk, input arst, input d, output reg q);
    always @(posedge clk or posedge arst) begin
        if (arst) q <= 1'b0;
        else q <= d;
    end
endmodule`, "ff")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("d", 1)
	in.Tick("clk")
	if got := getUint(t, in, "q"); got != 1 {
		t.Fatalf("q = %d after load", got)
	}
	// Asserting arst with no clock edge must clear q immediately.
	in.SetInputUint("arst", 1)
	if got := getUint(t, in, "q"); got != 0 {
		t.Errorf("async reset did not fire: q = %d", got)
	}
}

func TestFSMSequenceDetector(t *testing.T) {
	d := mustElab(t, `
module det101(input clk, input rst, input x, output reg z);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= x ? 2'd1 : 2'd0;
                2'd1: state <= x ? 2'd1 : 2'd2;
                2'd2: state <= x ? 2'd1 : 2'd0;
                default: state <= 2'd0;
            endcase
        end
    end
    always @(*) z = (state == 2'd2) && x;
endmodule`, "det101")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("rst", 1)
	in.Tick("clk")
	in.SetInputUint("rst", 0)
	input := []uint64{1, 0, 1, 1, 0, 1, 0, 0, 1}
	wantZ := []uint64{0, 0, 1, 0, 0, 1, 0, 0, 0}
	for i, b := range input {
		in.SetInputUint("x", b)
		if got := getUint(t, in, "z"); got != wantZ[i] {
			t.Errorf("step %d: z = %d, want %d", i, got, wantZ[i])
		}
		in.Tick("clk")
	}
}

func TestHierarchy(t *testing.T) {
	d := mustElab(t, `
module top(input [3:0] a, input [3:0] b, output [3:0] s, output c);
    wire [3:0] t;
    adder u0(.x(a), .y(b), .sum(t), .carry(c));
    assign s = t;
endmodule
module adder(input [3:0] x, input [3:0] y, output [3:0] sum, output carry);
    assign {carry, sum} = x + y;
endmodule`, "top")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("a", 9)
	in.SetInputUint("b", 8)
	if s, c := getUint(t, in, "s"), getUint(t, in, "c"); s != 1 || c != 1 {
		t.Errorf("hier add: s=%d c=%d, want 1 1", s, c)
	}
}

func TestParameterOverride(t *testing.T) {
	d := mustElab(t, `
module top(input [7:0] a, output [7:0] y);
    scale #(.K(3)) u(.in(a), .out(y));
endmodule
module scale #(parameter K = 1) (input [7:0] in, output [7:0] out);
    assign out = in * K;
endmodule`, "top")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("a", 7)
	if got := getUint(t, in, "y"); got != 21 {
		t.Errorf("y = %d, want 21", got)
	}
}

func TestForLoopPopcount(t *testing.T) {
	d := mustElab(t, `
module popcount(input [7:0] a, output reg [3:0] n);
    integer i;
    always @(*) begin
        n = 4'd0;
        for (i = 0; i < 8; i = i + 1)
            if (a[i]) n = n + 4'd1;
    end
endmodule`, "popcount")
	in := NewInstance(d)
	in.ZeroInputs()
	for _, c := range []struct{ a, n uint64 }{{0, 0}, {255, 8}, {0b10110100, 4}, {1, 1}} {
		in.SetInputUint("a", c.a)
		if got := getUint(t, in, "n"); got != c.n {
			t.Errorf("popcount(%#b) = %d, want %d", c.a, got, c.n)
		}
	}
}

func TestCasezPriorityEncoder(t *testing.T) {
	d := mustElab(t, `
module prio(input [3:0] req, output reg [1:0] idx, output reg valid);
    always @(*) begin
        valid = 1'b1;
        casez (req)
            4'b1???: idx = 2'd3;
            4'b01??: idx = 2'd2;
            4'b001?: idx = 2'd1;
            4'b0001: idx = 2'd0;
            default: begin idx = 2'd0; valid = 1'b0; end
        endcase
    end
endmodule`, "prio")
	in := NewInstance(d)
	in.ZeroInputs()
	for _, c := range []struct{ req, idx, valid uint64 }{
		{0b1000, 3, 1}, {0b1111, 3, 1}, {0b0100, 2, 1}, {0b0011, 1, 1}, {0b0001, 0, 1}, {0, 0, 0},
	} {
		in.SetInputUint("req", c.req)
		if idx, v := getUint(t, in, "idx"), getUint(t, in, "valid"); idx != c.idx || v != c.valid {
			t.Errorf("prio(%04b) = idx %d valid %d, want %d %d", c.req, idx, v, c.idx, c.valid)
		}
	}
}

func TestArithmeticShift64(t *testing.T) {
	d := mustElab(t, `
module shifter(input clk, input load, input [1:0] amount, input [63:0] data, output reg [63:0] q);
    always @(posedge clk) begin
        if (load) q <= data;
        else begin
            case (amount)
                2'b00: q <= q << 1;
                2'b01: q <= q << 8;
                2'b10: q <= {q[63], q[63:1]};
                2'b11: q <= {{8{q[63]}}, q[63:8]};
            endcase
        end
    end
endmodule`, "shifter")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("load", 1)
	in.SetInput("data", logic.FromUint64(64, 0x8000000000000001))
	in.Tick("clk")
	in.SetInputUint("load", 0)
	in.SetInputUint("amount", 3) // arithmetic right by 8
	in.Tick("clk")
	if got := getUint(t, in, "q"); got != 0xFF80000000000000 {
		t.Errorf("q = %#x, want 0xff80000000000000", got)
	}
}

func TestPartSelectWriteAndConcatLHS(t *testing.T) {
	d := mustElab(t, `
module m(input [7:0] a, output reg [7:0] y, output reg hi, output reg lo);
    always @(*) begin
        y = 8'd0;
        y[3:0] = a[7:4];
        {hi, lo} = {a[0], a[7]};
    end
endmodule`, "m")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("a", 0xA5)
	if y := getUint(t, in, "y"); y != 0x0A {
		t.Errorf("y = %#x, want 0x0a", y)
	}
	if hi, lo := getUint(t, in, "hi"), getUint(t, in, "lo"); hi != 1 || lo != 1 {
		t.Errorf("hi=%d lo=%d, want 1 1", hi, lo)
	}
}

func TestDynamicBitWrite(t *testing.T) {
	d := mustElab(t, `
module m(input [2:0] sel, input bit_in, output reg [7:0] y);
    always @(*) begin
        y = 8'd0;
        y[sel] = bit_in;
    end
endmodule`, "m")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("bit_in", 1)
	in.SetInputUint("sel", 5)
	if y := getUint(t, in, "y"); y != 32 {
		t.Errorf("y = %d, want 32", y)
	}
}

func TestCombLoopDetected(t *testing.T) {
	d := mustElab(t, `
module osc(input en, output y);
    wire w;
    assign w = en ? ~y : 1'b0;
    assign y = w;
endmodule`, "osc")
	in := NewInstance(d)
	if err := in.ZeroInputs(); err != nil {
		t.Fatalf("settling with en=0 should work: %v", err)
	}
	err := in.SetInputUint("en", 1)
	if err == nil || !strings.Contains(err.Error(), "settle") {
		t.Errorf("oscillation not detected: %v", err)
	}
}

func TestElabErrors(t *testing.T) {
	cases := []struct {
		name, src, top, want string
	}{
		{"unknown top", "module a(); endmodule", "b", "not found"},
		{"undeclared", "module m(input a, output y); assign y = a & b; endmodule", "m", "undeclared"},
		{"wire proc assign", "module m(input a, output y); always @(*) y = a; endmodule", "m", "wire"},
		{"reg cont assign", "module m(input a, output reg y); assign y = a; endmodule", "m", "reg"},
		{"unknown module", "module m(input a, output y); foo u(a, y); endmodule", "m", "unknown module"},
		{"dup decl", "module m(input a, output y); wire [3:0] a; assign y = a; endmodule", "m", "width"},
		{"bad port", "module m(input a, output y); inv u(.zz(a), .out(y)); endmodule\nmodule inv(input in, output out); assign out = ~in; endmodule", "m", "no port"},
	}
	for _, c := range cases {
		_, err := ElaborateSource(c.src, c.top)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDuplicateSameWidthPortDecl(t *testing.T) {
	// Classic style: port named in header, declared input and wire.
	d := mustElab(t, `
module m(a, y);
    input a;
    output y;
    wire a;
    wire y;
    assign y = ~a;
endmodule`, "m")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInputUint("a", 0)
	if got := getUint(t, in, "y"); got != 1 {
		t.Errorf("y = %d", got)
	}
}

func TestXPropagationThroughAdd(t *testing.T) {
	d := mustElab(t, `
module m(input [3:0] a, input [3:0] b, output [3:0] s);
    assign s = a + b;
endmodule`, "m")
	in := NewInstance(d)
	// b left X.
	in.SetInputUint("a", 1)
	in.Settle()
	if v := in.MustGet("s"); !v.HasUnknown() {
		t.Errorf("s = %s, want unknown", v)
	}
}

func TestRunInitialWithDisplayAndFinish(t *testing.T) {
	d := mustElab(t, `
module tb;
    reg clk;
    reg [3:0] n;
    wire [3:0] twice;
    assign twice = n * 2;
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        n = 4'd3;
        #10 $display("t=%t n=%d twice=%d", n, twice);
        n = 4'd5;
        #10 $display("t=%t n=%d twice=%d", n, twice);
        $finish;
    end
endmodule`, "tb")
	in := NewInstance(d)
	var buf bytes.Buffer
	in.Stdout = &buf
	if err := Run(in, 1000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want1 := "t=10 n=3 twice=6"
	want2 := "t=20 n=5 twice=10"
	if !strings.Contains(out, want1) || !strings.Contains(out, want2) {
		t.Errorf("output:\n%s\nwant lines %q and %q", out, want1, want2)
	}
	if !in.Finished {
		t.Error("$finish did not set Finished")
	}
}

func TestRunDrivesClockedLogic(t *testing.T) {
	d := mustElab(t, `
module tb;
    reg clk, rst;
    wire [7:0] q;
    counter dut(.clk(clk), .rst(rst), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        rst = 1;
        #12 rst = 0;
        #100 $finish;
    end
endmodule
module counter(input clk, input rst, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
endmodule`, "tb")
	in := NewInstance(d)
	if err := Run(in, 10000); err != nil {
		t.Fatal(err)
	}
	// Posedges at 5,15,25,...,105. rst=1 at t=5; counting from t=15 on.
	// At t=112 ($finish) edges 15..105 inclusive = 10 increments.
	if got := getUint(t, in, "q"); got != 10 {
		t.Errorf("q = %d, want 10", got)
	}
}

func TestTickNAndStats(t *testing.T) {
	d := mustElab(t, `
module c(input clk, output reg [3:0] q);
    always @(posedge clk) q <= q + 4'd1;
endmodule`, "c")
	in := NewInstance(d)
	in.ZeroInputs()
	in.SetInput("q", logic.New(4)) // not a port; expect error
	if err := in.SetInput("q", logic.New(4)); err == nil {
		t.Error("SetInput on non-port should fail")
	}
	// q starts X; X+1 = X until we can't reset... this counter has no
	// reset, so force q via direct write to show TickN works on defined
	// state after wraparound from X is impossible; instead check it
	// stays unknown (realistic behaviour for reset-less counters).
	in.TickN("clk", 3)
	if v := in.MustGet("q"); !v.HasUnknown() {
		t.Errorf("reset-less counter must stay X, got %s", v)
	}
	if in.Stats.ProcRuns == 0 {
		t.Error("stats not collected")
	}
}
