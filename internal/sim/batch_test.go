package sim

import (
	"math/rand"
	"sync"
	"testing"

	"correctbench/internal/logic"
)

// The batch engine must be bit-for-bit identical, lane by lane, to a
// scalar interpreter instance of the same design. These tests replay
// the micro-differential suite through BatchInstance, then cover the
// batch-specific machinery: patch tables for mutated variants, the
// levelized/event-driven mode split, per-lane bootstrap, per-lane
// failure isolation, and variant rejection.

// batchSnapshot renders every signal of one lane.
func batchSnapshot(t *testing.T, b *BatchInstance, lane int) string {
	t.Helper()
	out := ""
	for _, name := range b.prog.base.Order {
		v, err := b.Get(name, lane)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		out += name + "=" + v.String() + "\n"
	}
	return out
}

// batchExtraModules exercise constructs with batch-specific handling
// on top of the shared engineDiffModules suite.
var batchExtraModules = []struct {
	name, src, top string
	clock          string
	wantLevelized  bool
}{
	{
		// Dense kernel shapes: copy, not, and/or/xor/xnor, constant.
		name: "kernel_shapes",
		src: `
module m(input [7:0] a, input [7:0] b, output [7:0] w, output [7:0] x, output [7:0] y, output [7:0] z, output [7:0] k, output [7:0] c);
    assign w = a & b;
    assign x = a | b;
    assign y = a ^ b;
    assign z = ~a;
    assign k = 8'h5a;
    assign c = b;
endmodule`,
		top:           "m",
		wantLevelized: true,
	},
	{
		// Wide (>64 bit) vectors cross the word-parallel plane boundary.
		name: "wide_vectors",
		src: `
module m(input [99:0] a, input [99:0] b, output [99:0] y, output [99:0] z, output [49:0] hi);
    assign y = a & b;
    assign z = a + b;
    assign hi = a[99:50];
endmodule`,
		top:           "m",
		wantLevelized: true,
	},
	{
		// Multi-level comb chain: levelized order must follow the data
		// flow regardless of process declaration order.
		name: "comb_chain",
		src: `
module m(input [3:0] a, input [3:0] b, output [3:0] r);
    wire [3:0] s1, s2;
    assign r = s2 + 4'd1;
    assign s2 = s1 & b;
    assign s1 = a | b;
endmodule`,
		top:           "m",
		wantLevelized: true,
	},
	{
		// A latch (read of own target without prior assignment) is not
		// static: the batch must fall back to event-driven mode and
		// still match the scalar engine.
		name: "latch_fallback",
		src: `
module m(input en, input [3:0] d, output reg [3:0] q);
    always @(*)
        if (en) q = d;
endmodule`,
		top:           "m",
		wantLevelized: false,
	},
	{
		// Combinational feedback cycle: settles trivially (both X) but
		// is unschedulable statically.
		name: "cycle_fallback",
		src: `
module m(input [3:0] d, output [3:0] a, output [3:0] b);
    assign a = b;
    assign b = a;
endmodule`,
		top:           "m",
		wantLevelized: false,
	},
	{
		// Nonblocking assignment from a combinational process: queued
		// at settle time, applied only when an edge wave runs. The NBA
		// queue surviving a no-edge propagate is part of the contract.
		name: "comb_nba",
		src: `
module m(input clk, input [3:0] d, output reg [3:0] p, output reg [3:0] q);
    always @(*) p <= d;
    always @(posedge clk) q <= d;
endmodule`,
		top:           "m",
		clock:         "clk",
		wantLevelized: true,
	},
	{
		// Sequential process with blocking partial writes: seq bodies
		// need no purity, only comb processes are levelized.
		name: "seq_partial_writes",
		src: `
module m(input clk, input rst, input [7:0] d, output reg [7:0] q);
    always @(posedge clk or posedge rst) begin
        if (rst) q <= 8'd0;
        else begin
            q[3:0] <= d[7:4];
            q[7:4] <= d[3:0];
        end
    end
endmodule`,
		top:           "m",
		clock:         "clk",
		wantLevelized: true,
	},
	{
		// Constant-only process: runs solely via the bootstrap pass.
		name: "constant_bootstrap",
		src: `
module m(input [3:0] a, output reg [3:0] k, output [3:0] y);
    always @(*) k = 4'd5;
    assign y = a + 4'd1;
endmodule`,
		top:           "m",
		wantLevelized: true,
	},
}

func TestBatchDifferentialMicro(t *testing.T) {
	type diffCase struct {
		name, src, top, clock string
	}
	var cases []diffCase
	for _, tc := range engineDiffModules {
		cases = append(cases, diffCase{tc.name, tc.src, tc.top, tc.clock})
	}
	for _, tc := range batchExtraModules {
		cases = append(cases, diffCase{tc.name, tc.src, tc.top, tc.clock})
	}
	const lanes = 3
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := mustElab(t, tc.src, tc.top)
			variants := make([]*Design, lanes)
			refs := make([]*Instance, lanes)
			for i := range variants {
				// Separate elaborations: distinct ASTs, identical bodies.
				variants[i] = mustElab(t, tc.src, tc.top)
				refs[i] = NewInstanceEngine(variants[i], EngineInterp)
			}
			prog, err := CompileBatch(d, variants)
			if err != nil {
				t.Fatalf("CompileBatch: %v", err)
			}
			if prog.Lanes() != lanes {
				for i := 0; i < lanes; i++ {
					if r := prog.RejectReason(i); r != nil {
						t.Errorf("variant %d rejected: %v", i, r)
					}
				}
				t.Fatalf("lanes = %d, want %d", prog.Lanes(), lanes)
			}
			b := NewBatchInstance(prog)
			rng := rand.New(rand.NewSource(99))

			step := func(label string, bf func() error, sf func(in *Instance) error) {
				if err := bf(); err != nil {
					t.Fatalf("%s (batch): %v", label, err)
				}
				for lane, ref := range refs {
					if err := sf(ref); err != nil {
						t.Fatalf("%s (interp lane %d): %v", label, lane, err)
					}
					if le := b.LaneErr(lane); le != nil {
						t.Fatalf("%s: batch lane %d failed: %v", label, lane, le)
					}
					bs, ss := batchSnapshot(t, b, lane), snapshot(t, ref)
					if bs != ss {
						t.Fatalf("%s: lane %d diverges\nbatch:\n%s\ninterp:\n%s", label, lane, bs, ss)
					}
				}
			}

			step("zero", b.ZeroInputs, func(in *Instance) error { return in.ZeroInputs() })
			var inputs []Port
			for _, p := range d.Ports {
				if p.Dir != Out && p.Name != tc.clock {
					inputs = append(inputs, p)
				}
			}
			for i := 0; i < 30; i++ {
				for _, p := range inputs {
					p := p
					// Mix defined and X/Z stimulus.
					v := logic.New(p.Width)
					if i%3 == 0 {
						for bit := 0; bit < p.Width; bit++ {
							v.SetBit(bit, logic.Bit(rng.Intn(4)))
						}
					} else {
						v = logic.FromUint64(p.Width, rng.Uint64())
					}
					step(p.Name,
						func() error { return b.SetInput(p.Name, v) },
						func(in *Instance) error { return in.SetInput(p.Name, v) })
				}
				if tc.clock != "" {
					step("tick",
						func() error { return b.Tick(tc.clock) },
						func(in *Instance) error { return in.Tick(tc.clock) })
				} else {
					step("settle", b.Settle, func(in *Instance) error { return in.Settle() })
				}
			}
		})
	}
}

func TestBatchModeSelection(t *testing.T) {
	for _, tc := range batchExtraModules {
		t.Run(tc.name, func(t *testing.T) {
			d := mustElab(t, tc.src, tc.top)
			prog, err := CompileBatch(d, []*Design{mustElab(t, tc.src, tc.top)})
			if err != nil {
				t.Fatalf("CompileBatch: %v", err)
			}
			if prog.Levelized() != tc.wantLevelized {
				t.Errorf("levelized = %v, want %v", prog.Levelized(), tc.wantLevelized)
			}
		})
	}
}

// TestBatchMutantPatches batches hand-written "mutants" against their
// base design and checks each lane tracks a scalar interpreter run of
// the corresponding variant.
func TestBatchMutantPatches(t *testing.T) {
	cases := []struct {
		name  string
		base  string
		vars  []string
		top   string
		clock string
	}{
		{
			name: "comb_op_mutants",
			base: `
module m(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] z);
    assign y = a & b;
    assign z = a | b;
endmodule`,
			vars: []string{`
module m(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] z);
    assign y = a | b;
    assign z = a | b;
endmodule`, `
module m(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] z);
    assign y = a & b;
    assign z = a ^ b;
endmodule`, `
module m(input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] z);
    assign y = ~(a & b);
    assign z = a | ~b;
endmodule`},
			top: "m",
		},
		{
			name: "seq_mutants",
			base: `
module c(input clk, input rst, input [3:0] d, output reg [3:0] q);
    always @(posedge clk or posedge rst)
        if (rst) q <= 4'd0;
        else q <= q + d;
endmodule`,
			vars: []string{`
module c(input clk, input rst, input [3:0] d, output reg [3:0] q);
    always @(posedge clk or posedge rst)
        if (rst) q <= 4'd0;
        else q <= q - d;
endmodule`, `
module c(input clk, input rst, input [3:0] d, output reg [3:0] q);
    always @(posedge clk or posedge rst)
        if (rst) q <= 4'd1;
        else q <= q + d;
endmodule`},
			top:   "c",
			clock: "clk",
		},
		{
			// Base is a latch -> event-driven mode with patches.
			name: "latch_mutants",
			base: `
module m(input en, input [3:0] d, output reg [3:0] q);
    always @(*)
        if (en) q = d;
endmodule`,
			vars: []string{`
module m(input en, input [3:0] d, output reg [3:0] q);
    always @(*)
        if (en) q = ~d;
endmodule`},
			top: "m",
		},
		{
			// A mutated sensitivity list: the patched process carries
			// the variant's own @* read set.
			name: "sens_change_mutant",
			base: `
module m(input [3:0] a, input [3:0] b, input sel, output reg [3:0] y);
    always @(*)
        y = sel ? a : b;
endmodule`,
			vars: []string{`
module m(input [3:0] a, input [3:0] b, input sel, output reg [3:0] y);
    always @(*)
        y = a;
endmodule`},
			top: "m",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := mustElab(t, tc.base, tc.top)
			variants := make([]*Design, len(tc.vars))
			refs := make([]*Instance, len(tc.vars))
			for i, src := range tc.vars {
				variants[i] = mustElab(t, src, tc.top)
				refs[i] = NewInstanceEngine(variants[i], EngineInterp)
			}
			prog, err := CompileBatch(base, variants)
			if err != nil {
				t.Fatalf("CompileBatch: %v", err)
			}
			if prog.Lanes() != len(variants) {
				t.Fatalf("lanes = %d, want %d", prog.Lanes(), len(variants))
			}
			b := NewBatchInstance(prog)
			rng := rand.New(rand.NewSource(1))

			check := func(label string) {
				for lane, ref := range refs {
					if le := b.LaneErr(lane); le != nil {
						t.Fatalf("%s: lane %d failed: %v", label, lane, le)
					}
					bs, ss := batchSnapshot(t, b, lane), snapshot(t, ref)
					if bs != ss {
						t.Fatalf("%s: lane %d diverges\nbatch:\n%s\ninterp:\n%s", label, lane, bs, ss)
					}
				}
			}
			if err := b.ZeroInputs(); err != nil {
				t.Fatal(err)
			}
			for _, ref := range refs {
				if err := ref.ZeroInputs(); err != nil {
					t.Fatal(err)
				}
			}
			check("zero")
			for i := 0; i < 50; i++ {
				for _, p := range base.Ports {
					if p.Dir == Out || p.Name == tc.clock {
						continue
					}
					v := logic.FromUint64(p.Width, rng.Uint64())
					if err := b.SetInput(p.Name, v); err != nil {
						t.Fatal(err)
					}
					for _, ref := range refs {
						if err := ref.SetInput(p.Name, v); err != nil {
							t.Fatal(err)
						}
					}
				}
				if tc.clock != "" {
					if err := b.Tick(tc.clock); err != nil {
						t.Fatal(err)
					}
					for _, ref := range refs {
						if err := ref.Tick(tc.clock); err != nil {
							t.Fatal(err)
						}
					}
				}
				check("step")
			}
		})
	}
}

// TestBatchVariantRejection: structurally incompatible variants get no
// lane and a reason; compatible ones still batch.
func TestBatchVariantRejection(t *testing.T) {
	base := mustElab(t, `
module m(input [3:0] a, output [3:0] y);
    assign y = a + 4'd1;
endmodule`, "m")
	good := mustElab(t, `
module m(input [3:0] a, output [3:0] y);
    assign y = a + 4'd2;
endmodule`, "m")
	wrongWidth := mustElab(t, `
module m(input [7:0] a, output [7:0] y);
    assign y = a + 8'd1;
endmodule`, "m")
	extraSignal := mustElab(t, `
module m(input [3:0] a, output [3:0] y);
    wire [3:0] t;
    assign t = a ^ 4'd3;
    assign y = t + 4'd1;
endmodule`, "m")

	prog, err := CompileBatch(base, []*Design{wrongWidth, good, extraSignal})
	if err != nil {
		t.Fatalf("CompileBatch: %v", err)
	}
	if prog.Lanes() != 1 {
		t.Fatalf("lanes = %d, want 1", prog.Lanes())
	}
	if prog.RejectReason(0) == nil || prog.RejectReason(2) == nil {
		t.Errorf("incompatible variants not rejected: %v / %v", prog.RejectReason(0), prog.RejectReason(2))
	}
	if prog.RejectReason(1) != nil {
		t.Errorf("compatible variant rejected: %v", prog.RejectReason(1))
	}
	if got := prog.VariantLane(1); got != 0 {
		t.Errorf("VariantLane(1) = %d, want 0", got)
	}
	if got := prog.VariantLane(0); got != -1 {
		t.Errorf("VariantLane(0) = %d, want -1", got)
	}
	b := NewBatchInstance(prog)
	b.ZeroInputs()
	b.SetInputUint("a", 3)
	v, err := b.Get("y", 0)
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := v.Uint64(); u != 5 {
		t.Errorf("y = %s, want 5", v)
	}
}

// TestBatchDisplayFallsBackWholesale: a base design with $display
// cannot batch-compile at all.
func TestBatchDisplayFallsBackWholesale(t *testing.T) {
	d := mustElab(t, `
module m(input [3:0] a, output reg [3:0] y);
    always @(*) begin
        y = a + 4'd1;
        $display("y=%d", y);
    end
endmodule`, "m")
	if _, err := CompileBatch(d, nil); err == nil {
		t.Fatal("CompileBatch accepted a $display body")
	}
}

// TestBatchLaneFailureIsolation: one lane hitting a simulation error
// (unsettleable feedback) must not disturb the other lanes.
func TestBatchLaneFailureIsolation(t *testing.T) {
	base := mustElab(t, `
module m(input [3:0] a, output [3:0] y, output [3:0] z);
    assign y = a + 4'd1;
    assign z = y;
endmodule`, "m")
	// Oscillator mutant: the === makes the feedback X-immune, so the
	// loop flips between defined values and never settles.
	osc := mustElab(t, `
module m(input [3:0] a, output [3:0] y, output [3:0] z);
    assign y = ((z + a) === 4'd0) ? 4'd1 : 4'd0;
    assign z = y;
endmodule`, "m")
	ok := mustElab(t, `
module m(input [3:0] a, output [3:0] y, output [3:0] z);
    assign y = a + 4'd2;
    assign z = y;
endmodule`, "m")
	prog, err := CompileBatch(base, []*Design{osc, ok})
	if err != nil {
		t.Fatalf("CompileBatch: %v", err)
	}
	if prog.Levelized() {
		t.Fatal("oscillating variant should force event-driven mode")
	}
	if prog.Lanes() != 2 {
		t.Fatalf("lanes = %d", prog.Lanes())
	}
	b := NewBatchInstance(prog)
	if err := b.ZeroInputs(); err != nil {
		t.Fatal(err)
	}
	if b.LaneErr(0) == nil {
		t.Fatal("oscillator lane should have failed")
	}
	if b.Active(0) {
		t.Fatal("failed lane still active")
	}
	if err := b.SetInputUint("a", 4); err != nil {
		t.Fatal(err)
	}
	if le := b.LaneErr(1); le != nil {
		t.Fatalf("healthy lane failed: %v", le)
	}
	v, _ := b.Get("y", 1)
	if u, _ := v.Uint64(); u != 6 {
		t.Errorf("lane 1 y = %s, want 6", v)
	}
	if b.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d, want 1", b.ActiveCount())
	}
}

// TestBatchResetEqualsFresh pins the pooling contract for batches.
func TestBatchResetEqualsFresh(t *testing.T) {
	src := `
module c(input clk, input rst, input [3:0] d, output reg [3:0] q);
    always @(posedge clk or posedge rst)
        if (rst) q <= 4'd0;
        else q <= q + d;
endmodule`
	d := mustElab(t, src, "c")
	prog, err := CompileBatch(d, []*Design{mustElab(t, src, "c"), mustElab(t, src, "c")})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatchInstance(prog)
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		if err := b.ZeroInputs(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := b.SetInputUint("d", rng.Uint64()); err != nil {
				t.Fatal(err)
			}
			if err := b.Tick("clk"); err != nil {
				t.Fatal(err)
			}
		}
		return batchSnapshot(t, b, 0) + batchSnapshot(t, b, 1)
	}
	first := run(42)
	b.Reset()
	if second := run(42); second != first {
		t.Fatalf("reset batch diverges from fresh:\n%s\nvs\n%s", second, first)
	}
}

// TestBatchProgramSharedConcurrently: one program, many instances, in
// parallel (race detector coverage for the shared compiled closures).
func TestBatchProgramSharedConcurrently(t *testing.T) {
	src := `
module m(input clk, input [7:0] d, output reg [7:0] q, output [7:0] y);
    assign y = d ^ q;
    always @(posedge clk) q <= d;
endmodule`
	d := mustElab(t, src, "m")
	prog, err := CompileBatch(d, []*Design{mustElab(t, src, "m"), mustElab(t, src, "m")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			b := NewBatchInstance(prog)
			rng := rand.New(rand.NewSource(seed))
			if err := b.ZeroInputs(); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				if err := b.SetInputUint("d", rng.Uint64()); err != nil {
					t.Error(err)
					return
				}
				if err := b.Tick("clk"); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"auto", EngineAuto, true},
		{"", EngineAuto, true},
		{"compiled", EngineCompiled, true},
		{"interp", EngineInterp, true},
		{"batched", EngineBatched, true},
		{"bogus", EngineAuto, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
}
