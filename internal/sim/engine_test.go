package sim

import (
	"math/rand"
	"testing"

	"correctbench/internal/logic"
)

// The compiled engine must be bit-for-bit interchangeable with the AST
// interpreter. These micro-differential tests drive the same design on
// both engines with identical stimuli and compare every signal after
// every event, covering the constructs the compiler handles specially
// (width contexts, constant folding, lvalue spans, NBA ordering,
// loops, case variants, X-propagation).

var engineDiffModules = []struct {
	name, src, top string
	clock          string // "" = combinational
}{
	{
		name: "widths_and_concat",
		src: `
module m(input [7:0] a, input [7:0] b, input sel, output [8:0] s, output [3:0] hi, output [15:0] cat);
    assign s = a + b;
    assign hi = a[7:4];
    assign cat = {a, b};
endmodule`,
		top: "m",
	},
	{
		name: "ternary_reduction_shift",
		src: `
module m(input [7:0] a, input [2:0] n, input sel, output [7:0] y, output r, output [7:0] sh);
    assign y = sel ? (a << 1) : (a >> 1);
    assign r = ^a & |a;
    assign sh = a >> n;
endmodule`,
		top: "m",
	},
	{
		name: "case_variants",
		src: `
module m(input [1:0] s, input [3:0] a, output reg [3:0] y);
    always @(*) begin
        casez (s)
            2'b0?: y = a;
            2'b10: y = ~a;
            default: y = 4'b0;
        endcase
    end
endmodule`,
		top: "m",
	},
	{
		name: "for_loop_partselect",
		src: `
module m(input [7:0] a, output reg [7:0] y);
    integer i;
    always @(*) begin
        y = 8'd0;
        for (i = 0; i < 8; i = i + 1)
            y[i] = a[7 - i];
    end
endmodule`,
		top: "m",
	},
	{
		name: "seq_nba_and_blocking",
		src: `
module m(input clk, input rst, input [3:0] d, output reg [3:0] q1, output reg [3:0] q2, output reg [3:0] acc);
    always @(posedge clk or posedge rst) begin
        if (rst) begin
            q1 <= 4'd0; q2 <= 4'd0; acc <= 4'd0;
        end else begin
            q1 <= d;
            q2 <= q1;
            acc = acc + d;
        end
    end
endmodule`,
		top:   "m",
		clock: "clk",
	},
	{
		name: "hierarchy_params",
		src: `
module add #(parameter W = 4) (input [W-1:0] x, input [W-1:0] y, output [W:0] z);
    assign z = x + y;
endmodule
module m(input [5:0] a, input [5:0] b, output [6:0] s);
    add #(.W(6)) u (.x(a), .y(b), .z(s));
endmodule`,
		top: "m",
	},
	{
		name: "concat_lvalue_swap",
		src: `
module m(input clk, input [3:0] d, output reg [1:0] hi, output reg [1:0] lo);
    always @(posedge clk)
        {hi, lo} <= {d[1:0], d[3:2]};
endmodule`,
		top:   "m",
		clock: "clk",
	},
}

// snapshot renders every signal of the design, the full visible state.
func snapshot(t *testing.T, in *Instance) string {
	t.Helper()
	out := ""
	for _, name := range in.Design().Order {
		v, err := in.Get(name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		out += name + "=" + v.String() + "\n"
	}
	return out
}

func TestEngineDifferentialMicro(t *testing.T) {
	for _, tc := range engineDiffModules {
		t.Run(tc.name, func(t *testing.T) {
			d := mustElab(t, tc.src, tc.top)
			ci := NewInstanceEngine(d, EngineCompiled)
			ii := NewInstanceEngine(d, EngineInterp)
			rng := rand.New(rand.NewSource(99))

			var inputs []Port
			for _, p := range d.Ports {
				if p.Dir != Out && p.Name != tc.clock {
					inputs = append(inputs, p)
				}
			}
			step := func(label string, f func(in *Instance) error) {
				if err := f(ci); err != nil {
					t.Fatalf("%s (compiled): %v", label, err)
				}
				if err := f(ii); err != nil {
					t.Fatalf("%s (interp): %v", label, err)
				}
				cs, is := snapshot(t, ci), snapshot(t, ii)
				if cs != is {
					t.Fatalf("%s: engines diverge\ncompiled:\n%s\ninterp:\n%s", label, cs, is)
				}
			}

			step("zero", func(in *Instance) error { return in.ZeroInputs() })
			for i := 0; i < 40; i++ {
				for _, p := range inputs {
					v := rng.Uint64()
					p := p
					step(p.Name, func(in *Instance) error { return in.SetInputUint(p.Name, v) })
				}
				if tc.clock != "" {
					step("tick", func(in *Instance) error { return in.Tick(tc.clock) })
				} else {
					step("settle", func(in *Instance) error { return in.Settle() })
				}
			}
		})
	}
}

// TestEngineDifferentialXInputs drives X/Z values through the
// combinational designs on both engines.
func TestEngineDifferentialXInputs(t *testing.T) {
	for _, tc := range engineDiffModules {
		if tc.clock != "" {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			d := mustElab(t, tc.src, tc.top)
			ci := NewInstanceEngine(d, EngineCompiled)
			ii := NewInstanceEngine(d, EngineInterp)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 60; i++ {
				for _, p := range d.Ports {
					if p.Dir == Out {
						continue
					}
					v := logic.New(p.Width)
					for b := 0; b < p.Width; b++ {
						v.SetBit(b, logic.Bit(rng.Intn(4)))
					}
					if err := ci.SetInput(p.Name, v); err != nil {
						t.Fatal(err)
					}
					if err := ii.SetInput(p.Name, v); err != nil {
						t.Fatal(err)
					}
				}
				if cs, is := snapshot(t, ci), snapshot(t, ii); cs != is {
					t.Fatalf("engines diverge on X stimulus\ncompiled:\n%s\ninterp:\n%s", cs, is)
				}
			}
		})
	}
}

// TestInstanceResetEqualsFresh pins the pooling contract: a Reset
// instance is indistinguishable from a new one.
func TestInstanceResetEqualsFresh(t *testing.T) {
	src := engineDiffModules[4] // seq_nba_and_blocking
	d := mustElab(t, src.src, src.top)
	pooled := NewInstance(d)

	run := func(in *Instance, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		if err := in.ZeroInputs(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := in.SetInputUint("d", rng.Uint64()); err != nil {
				t.Fatal(err)
			}
			if err := in.Tick("clk"); err != nil {
				t.Fatal(err)
			}
		}
		return snapshot(t, in)
	}

	first := run(pooled, 5)
	pooled.Reset()
	if got := snapshot(t, NewInstance(d)); got != snapshot(t, pooled) {
		t.Fatalf("reset state differs from fresh state:\n%s\nvs\n%s", snapshot(t, pooled), got)
	}
	second := run(pooled, 5)
	if first != second {
		t.Fatalf("pooled rerun diverges:\n%s\nvs\n%s", first, second)
	}
	fresh := run(NewInstance(d), 5)
	if fresh != second {
		t.Fatalf("pooled vs fresh diverge:\n%s\nvs\n%s", second, fresh)
	}
}

// TestCompiledCoverage asserts the compiler handles every process of
// the micro corpus (no silent interpreter fallback hiding coverage).
func TestCompiledCoverage(t *testing.T) {
	for _, tc := range engineDiffModules {
		d := mustElab(t, tc.src, tc.top)
		for _, p := range d.Procs {
			if p.Kind != ProcComb && p.Kind != ProcSeq {
				continue
			}
			if !p.Compiled() {
				t.Errorf("%s: process %s not compiled", tc.name, p.Name)
			}
		}
	}
}
