package sim

// Mutant-batched simulation: one compiled program, N design variants
// advancing in lockstep.
//
// Mutation-based testbench evaluation runs the same golden design
// plus N mutants — designs that differ from the golden in a handful
// of process bodies — through identical stimulus. CompileBatch
// elaborates that structure once: the base design's processes are
// compiled once, each variant contributes only per-lane patch tables
// for the bodies it actually changes (detected by comparing printed
// statements), and all N instances advance together over a flat
// structure-of-arrays state block addressed [slot*n + lane].
//
// Scheduling is levelized when the whole batch's combinational region
// is provably static (see batch_sched.go): one topological pass per
// settle, with dense whole-batch kernels (logic.AndLanes and friends)
// for single-assignment processes. Otherwise every lane runs a
// replica of the scalar event-driven scheduler over the shared state
// block — still amortizing compilation, elaboration and the
// testbench/checker side of every run.
//
// Either way each lane is bit-identical to a scalar Instance of the
// same design: per-lane dirty sets, per-lane bootstrap, per-lane NBA
// queues (including the queue surviving a no-edge propagate) all
// replicate instance.go exactly.

import (
	"context"
	"errors"
	"fmt"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// BatchProgram is the compiled form of a base design plus N accepted
// variants. It is immutable after CompileBatch and safe to share
// across concurrent BatchInstances.
type BatchProgram struct {
	base *Design
	n    int

	laneDesign  []*Design
	laneVariant []int     // lane -> index into the variants slice
	variantLane []int     // variant index -> lane, or -1 when rejected
	rejected    []error   // variant index -> rejection reason, nil when accepted
	variants    []*Design // the full CompileBatch input, rejected included

	combCode  []bStmt
	seqCode   []bStmt
	combNames []string
	seqNames  []string
	combSens  [][]int32 // per comb ordinal: base sensitivity slots

	// Patch tables: nil when every lane shares the base body, else a
	// per-lane slice with nil entries for unpatched lanes.
	combPatch    [][]bStmt
	seqPatch     [][]bStmt
	combSensLane [][][]int32 // sensitivity override for patched comb procs

	levelized  bool
	levelOrder []int32    // comb ordinals sorted by (level, ordinal)
	kernels    []*bKernel // per comb ordinal: dense fast path or nil

	// deferInputs marks batches whose settled state is a pure function
	// of the final input values: levelized, no sequential processes,
	// and no loop or nonblocking construct in any lane's comb bodies.
	// Such a batch may apply a group of input writes with a single
	// propagate (SetInputDeferred + Settle) and remain observationally
	// identical to settling after every write — there is no
	// intermediate fixpoint anything could observe (no edges, no NBA
	// queue) and the closures cannot error (no loop iteration caps).
	deferInputs bool
}

// ErrBatchNotStatic marks variants the strict compile (CompileBatchSplit)
// rejected from a levelized program because their combinational region
// is not provably static. Such variants batch fine under event-driven
// scheduling — the split gives them their own event program instead of
// dragging the whole batch off the levelized schedule.
var ErrBatchNotStatic = errors.New("sim: batch: variant is not static")

// CompileBatch compiles base and as many of the variants as can share
// its program. It fails only when the base itself cannot be fully
// batch-compiled (dynamic constructs, display tasks, delays) — then
// the caller should fall back to scalar simulation wholesale.
// Individual variants that are structurally incompatible or whose
// changed bodies cannot be compiled are rejected (RejectReason) and
// simply get no lane; reject-handling callers run those few scalars.
// One non-static variant drops the whole batch to event-driven mode
// (no lane is lost); use CompileBatchSplit to keep the static majority
// levelized instead.
func CompileBatch(base *Design, variants []*Design) (*BatchProgram, error) {
	return compileBatch(base, variants, false)
}

// CompileBatchSplit covers the variants with one or two programs: a
// levelized program for the provably static variants and, when any
// variant is static-incompatible, a second event-driven program for
// those. The second return value gives, per program, the original
// variant index of each of that program's variants. When the base is
// not static (or levelization fails) the result degrades to the single
// program CompileBatch would build. Errors only when the base itself
// cannot batch-compile.
func CompileBatchSplit(base *Design, variants []*Design) ([]*BatchProgram, [][]int, error) {
	p1, err := compileBatch(base, variants, true)
	if err != nil {
		return nil, nil, err
	}
	all := make([]int, len(variants))
	for i := range all {
		all[i] = i
	}
	var ev []int
	for i := range variants {
		if errors.Is(p1.RejectReason(i), ErrBatchNotStatic) {
			ev = append(ev, i)
		}
	}
	if len(ev) == 0 {
		return []*BatchProgram{p1}, [][]int{all}, nil
	}
	if !p1.Levelized() {
		// The strict rejections bought nothing (levelization failed
		// anyway); reclaim those lanes into one event program.
		p, err := compileBatch(base, variants, false)
		if err != nil {
			return nil, nil, err
		}
		return []*BatchProgram{p}, [][]int{all}, nil
	}
	sub := make([]*Design, len(ev))
	for i, vi := range ev {
		sub[i] = variants[vi]
	}
	p2, err := compileBatch(base, sub, false)
	if err != nil {
		// Unreachable (the base compiled for p1), but degrade safely.
		p, err2 := compileBatch(base, variants, false)
		if err2 != nil {
			return nil, nil, err2
		}
		return []*BatchProgram{p}, [][]int{all}, nil
	}
	return []*BatchProgram{p1, p2}, [][]int{all, ev}, nil
}

func compileBatch(base *Design, variants []*Design, strict bool) (*BatchProgram, error) {
	bc := &batchCompiler{c: compiler{d: base}}
	prog := &BatchProgram{base: base, variants: variants}

	nComb, nSeq := len(base.combProcs), len(base.seqProcs)
	prog.combCode = make([]bStmt, nComb)
	prog.combNames = make([]string, nComb)
	prog.combSens = make([][]int32, nComb)
	for ord, p := range base.combProcs {
		code, err := bc.stmt(p.Body)
		if err != nil {
			return nil, fmt.Errorf("sim: batch: %s: %v", p.Name, err)
		}
		prog.combCode[ord] = code
		prog.combNames[ord] = p.Name
		prog.combSens[ord] = sensSlots(base, p)
	}
	prog.seqCode = make([]bStmt, nSeq)
	prog.seqNames = make([]string, nSeq)
	for ord, p := range base.seqProcs {
		code, err := bc.stmt(p.Body)
		if err != nil {
			return nil, fmt.Errorf("sim: batch: %s: %v", p.Name, err)
		}
		prog.seqCode[ord] = code
		prog.seqNames[ord] = p.Name
	}

	// Proc index -> ordinal within its kind (finalize appends in order).
	ordOf := make([]int, len(base.Procs))
	ci, si := 0, 0
	for i, p := range base.Procs {
		switch p.Kind {
		case ProcComb:
			ordOf[i] = ci
			ci++
		case ProcSeq:
			ordOf[i] = si
			si++
		default:
			ordOf[i] = -1
		}
	}

	baseStatic, baseErr := analyzeStatic(base)
	allStatic := baseErr == nil
	var statics []*combStatic
	if allStatic {
		statics = append(statics, baseStatic)
	}

	type patch struct {
		comb bool
		ord  int
		code bStmt
		sens []int32
	}
	var lanePatches [][]patch
	prog.variantLane = make([]int, len(variants))
	prog.rejected = make([]error, len(variants))
	baseBody := make(map[int]string) // proc index -> printed base body, lazily
	for vi, v := range variants {
		prog.variantLane[vi] = -1
		if err := batchCompatible(base, v); err != nil {
			prog.rejected[vi] = err
			continue
		}
		var patches []patch
		var bad error
		for i, bp := range base.Procs {
			if bp.Kind != ProcComb && bp.Kind != ProcSeq {
				continue // initial/timed bodies never run under the cycle API
			}
			vp := v.Procs[i]
			bs, ok := baseBody[i]
			if !ok {
				bs = verilog.StmtString(bp.Body)
				baseBody[i] = bs
			}
			if verilog.StmtString(vp.Body) == bs {
				continue
			}
			code, err := bc.stmt(vp.Body) // slots are identical, compile against base
			if err != nil {
				bad = fmt.Errorf("sim: batch: %s: %v", bp.Name, err)
				break
			}
			pt := patch{comb: bp.Kind == ProcComb, ord: ordOf[i], code: code}
			if pt.comb {
				pt.sens = sensSlots(base, vp)
			}
			patches = append(patches, pt)
		}
		if bad != nil {
			prog.rejected[vi] = bad
			continue
		}
		var vs *combStatic
		if allStatic {
			var serr error
			if vs, serr = analyzeStatic(v); serr != nil {
				if strict {
					// Keep the batch levelized: this variant gets no
					// lane here and belongs in an event-driven program
					// (CompileBatchSplit builds it).
					prog.rejected[vi] = fmt.Errorf("%w: %v", ErrBatchNotStatic, serr)
					continue
				}
				// One non-static variant drops the whole batch to
				// event-driven mode; no lane is lost.
				allStatic = false
			}
		}
		lane := len(prog.laneDesign)
		prog.laneDesign = append(prog.laneDesign, v)
		prog.laneVariant = append(prog.laneVariant, vi)
		prog.variantLane[vi] = lane
		lanePatches = append(lanePatches, patches)
		if allStatic {
			statics = append(statics, vs)
		}
	}
	prog.n = len(prog.laneDesign)

	prog.combPatch = make([][]bStmt, nComb)
	prog.seqPatch = make([][]bStmt, nSeq)
	prog.combSensLane = make([][][]int32, nComb)
	for lane, patches := range lanePatches {
		for _, pt := range patches {
			if pt.comb {
				if prog.combPatch[pt.ord] == nil {
					prog.combPatch[pt.ord] = make([]bStmt, prog.n)
					prog.combSensLane[pt.ord] = make([][]int32, prog.n)
				}
				prog.combPatch[pt.ord][lane] = pt.code
				prog.combSensLane[pt.ord][lane] = pt.sens
			} else {
				if prog.seqPatch[pt.ord] == nil {
					prog.seqPatch[pt.ord] = make([]bStmt, prog.n)
				}
				prog.seqPatch[pt.ord][lane] = pt.code
			}
		}
	}

	if allStatic {
		if order, ok := levelize(nComb, statics); ok {
			prog.levelized = true
			prog.levelOrder = order
			prog.kernels = make([]*bKernel, nComb)
			for ord, p := range base.combProcs {
				if prog.combPatch[ord] == nil {
					prog.kernels[ord] = bc.kernel(p)
				} else {
					prog.kernels[ord] = bc.maskedKernel(p, prog.combPatch[ord])
				}
			}
		}
	}
	if prog.levelized && nSeq == 0 {
		safe := combDeferSafe(base)
		for _, d := range prog.laneDesign {
			if !safe {
				break
			}
			if d != base {
				safe = combDeferSafe(d)
			}
		}
		prog.deferInputs = safe
	}
	return prog, nil
}

// combDeferSafe reports whether a design's comb bodies are free of the
// constructs that make intermediate settles observable or fallible:
// loops (runtime iteration caps can error on transient input combos)
// and nonblocking assignments (queued effects).
func combDeferSafe(d *Design) bool {
	safe := true
	for _, p := range d.combProcs {
		verilog.WalkStmts(p.Body, func(s verilog.Stmt) {
			switch x := s.(type) {
			case *verilog.For, *verilog.Repeat:
				safe = false
			case *verilog.Assign:
				if x.NonBlocking {
					safe = false
				}
			}
		})
	}
	return safe
}

// Base returns the design the program was compiled against.
func (p *BatchProgram) Base() *Design { return p.base }

// Variants returns the full variant design list the program was
// compiled from, rejected variants included, in input order.
func (p *BatchProgram) Variants() []*Design { return p.variants }

// Lanes returns the number of accepted variants.
func (p *BatchProgram) Lanes() int { return p.n }

// Levelized reports whether the batch runs on the levelized static
// schedule (true) or the per-lane event-driven fallback (false).
func (p *BatchProgram) Levelized() bool { return p.levelized }

// VariantLane maps an index into the variants slice passed to
// CompileBatch to its lane, or -1 when the variant was rejected.
func (p *BatchProgram) VariantLane(vi int) int { return p.variantLane[vi] }

// RejectReason returns why a variant got no lane (nil when accepted).
func (p *BatchProgram) RejectReason(vi int) error { return p.rejected[vi] }

// LaneDesign returns the design simulated by a lane.
func (p *BatchProgram) LaneDesign(lane int) *Design { return p.laneDesign[lane] }

// BatchInstance simulates every lane of a BatchProgram in lockstep
// under the cycle API (SetInput / Settle / Tick). Per-lane failures
// (simulation errors in one mutant) deactivate that lane and are
// reported by LaneErr; the shared methods only fail globally on
// context cancellation or unknown port names.
type BatchInstance struct {
	prog *BatchProgram
	n    int

	vals []logic.Vector // [slot*n + lane]
	prev []logic.Vector // [edgeIdx*n + lane]

	dirty     []bool    // [slot*n + lane]
	dirtyList [][]int32 // per lane: dirty slots in write order
	ranAny    []bool    // per lane: some process ran (scalar ProcRuns>0)
	boot      []bool    // scratch: bootstrap flag per lane

	nba [][]resolvedWrite // per lane

	active  []bool
	laneErr []error
	nActive int

	// Scratch. A BatchInstance is single-goroutine, like Instance.
	chgBuf   []bool // per lane, for dense kernels
	pending  []bool // per comb ordinal, event-driven mode
	npending int
	runBuf   []int32
	liveBuf  []int32
	liveBuf2 []int32

	edgeChg []bool // per edge index, one lane at a time
	edgePos []bool
	edgeNeg []bool

	// Now is the current simulation time (cycle count ×10).
	Now uint64

	ctx context.Context
}

// NewBatchInstance creates an instance with every lane active and
// every signal X.
func NewBatchInstance(prog *BatchProgram) *BatchInstance {
	n := prog.n
	d := prog.base
	b := &BatchInstance{
		prog:      prog,
		n:         n,
		vals:      make([]logic.Vector, len(d.Order)*n),
		prev:      make([]logic.Vector, len(d.edgeSlots)*n),
		dirty:     make([]bool, len(d.Order)*n),
		dirtyList: make([][]int32, n),
		ranAny:    make([]bool, n),
		boot:      make([]bool, n),
		nba:       make([][]resolvedWrite, n),
		active:    make([]bool, n),
		laneErr:   make([]error, n),
		chgBuf:    make([]bool, n),
		pending:   make([]bool, len(d.combProcs)),
		runBuf:    make([]int32, 0, len(d.combProcs)),
		liveBuf:   make([]int32, 0, n),
		liveBuf2:  make([]int32, 0, n),
		edgeChg:   make([]bool, len(d.edgeSlots)),
		edgePos:   make([]bool, len(d.edgeSlots)),
		edgeNeg:   make([]bool, len(d.edgeSlots)),
		nActive:   n,
	}
	for lane := 0; lane < n; lane++ {
		b.active[lane] = true
	}
	b.Reset()
	return b
}

// Reset returns every lane to the freshly constructed simulation state
// (all X, no pending events, time zero) without reallocating. The
// active mask and lane errors are preserved — decided lanes stay
// decided across testbench scenarios.
func (b *BatchInstance) Reset() {
	d := b.prog.base
	n := b.n
	for slot, w := range d.slotWidths {
		// One AllX per slot shared by all lanes: writes never mutate a
		// stored vector in place (applyWrite clones before SetSlice).
		x := logic.AllX(w)
		row := b.vals[slot*n : (slot+1)*n]
		for lane := range row {
			row[lane] = x
		}
	}
	for i, slot := range d.edgeSlots {
		row := b.prev[i*n : (i+1)*n]
		src := b.vals[int(slot)*n : (int(slot)+1)*n]
		copy(row, src)
	}
	for i := range b.dirty {
		b.dirty[i] = false
	}
	for lane := 0; lane < n; lane++ {
		b.dirtyList[lane] = b.dirtyList[lane][:0]
		b.ranAny[lane] = false
		b.nba[lane] = b.nba[lane][:0]
	}
	b.Now = 0
}

// BindContext attaches a cancellation context, mirroring
// Instance.BindContext: each propagate polls it, never-cancellable
// contexts are dropped, and the binding survives Reset.
func (b *BatchInstance) BindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		b.ctx = nil
		return
	}
	b.ctx = ctx
}

// Lanes returns the lane count.
func (b *BatchInstance) Lanes() int { return b.n }

// Design returns the base design the batch was compiled against.
func (b *BatchInstance) Design() *Design { return b.prog.base }

// Program returns the shared batch program.
func (b *BatchInstance) Program() *BatchProgram { return b.prog }

// Active reports whether a lane is still simulating.
func (b *BatchInstance) Active(lane int) bool { return b.active[lane] }

// ActiveCount returns the number of live lanes.
func (b *BatchInstance) ActiveCount() int { return b.nActive }

// LaneErr returns the simulation error that killed a lane, if any.
func (b *BatchInstance) LaneErr(lane int) error { return b.laneErr[lane] }

// Deactivate withdraws a lane from simulation (e.g. a mutant already
// decided by an earlier scenario). Idempotent.
func (b *BatchInstance) Deactivate(lane int) {
	if b.active[lane] {
		b.active[lane] = false
		b.nActive--
	}
}

func (b *BatchInstance) failLane(lane int32, err error) {
	if b.laneErr[lane] == nil {
		b.laneErr[lane] = err
	}
	b.Deactivate(int(lane))
}

// Get returns the current value of a signal in one lane.
func (b *BatchInstance) Get(name string, lane int) (logic.Vector, error) {
	slot, ok := b.prog.base.slotOf[name]
	if !ok {
		return logic.Vector{}, fmt.Errorf("read of unknown signal %q", name)
	}
	return b.vals[slot*b.n+lane], nil
}

// SlotOf resolves a signal name to its slot index so hot read loops
// (one read per output per lane per step) can use GetSlot without
// repeating the map lookup.
func (b *BatchInstance) SlotOf(name string) (int, bool) {
	slot, ok := b.prog.base.slotOf[name]
	return slot, ok
}

// GetSlot reads one lane of a slot resolved with SlotOf.
func (b *BatchInstance) GetSlot(slot, lane int) logic.Vector {
	return b.vals[slot*b.n+lane]
}

// SetInput drives a top-level input on every active lane and
// propagates, like Instance.SetInput.
func (b *BatchInstance) SetInput(name string, v logic.Vector) error {
	if err := b.writeInput(name, v); err != nil {
		return err
	}
	return b.propagate()
}

// SetInputDeferred drives an input without propagating. Only valid on
// programs where InputsDeferrable reports true; the caller finishes
// the group of writes with one Settle, which reaches the identical
// state a propagate per write would have (see BatchProgram.deferInputs).
func (b *BatchInstance) SetInputDeferred(name string, v logic.Vector) error {
	return b.writeInput(name, v)
}

// InputsDeferrable reports whether this batch may group input writes
// under a single Settle via SetInputDeferred.
func (b *BatchInstance) InputsDeferrable() bool { return b.prog.deferInputs }

func (b *BatchInstance) writeInput(name string, v logic.Vector) error {
	p := b.prog.base.Port(name)
	if p == nil || p.Dir == Out {
		return fmt.Errorf("sim: %q is not an input port", name)
	}
	slot := b.prog.base.slotOf[name]
	w := resolvedWrite{slot: int32(slot), val: v.Resize(p.Width), whole: true}
	for lane := int32(0); lane < int32(b.n); lane++ {
		if b.active[lane] {
			b.applyWrite(lane, w)
		}
	}
	return nil
}

// SetInputUint is SetInput with a uint64 value.
func (b *BatchInstance) SetInputUint(name string, v uint64) error {
	p := b.prog.base.Port(name)
	if p == nil {
		return fmt.Errorf("sim: unknown port %q", name)
	}
	return b.SetInput(name, logic.FromUint64(p.Width, v))
}

// Settle propagates all active lanes to quiescence.
func (b *BatchInstance) Settle() error { return b.propagate() }

// Tick runs one full clock cycle on the named clock input.
func (b *BatchInstance) Tick(clk string) error {
	if err := b.SetInputUint(clk, 1); err != nil {
		return err
	}
	b.Now += 5
	if err := b.SetInputUint(clk, 0); err != nil {
		return err
	}
	b.Now += 5
	return nil
}

// TickN runs n clock cycles.
func (b *BatchInstance) TickN(clk string, n int) error {
	for i := 0; i < n; i++ {
		if err := b.Tick(clk); err != nil {
			return err
		}
	}
	return nil
}

// ZeroInputs drives every input port on every active lane to zero.
// Deferrable batches group all the writes under one settle.
func (b *BatchInstance) ZeroInputs() error {
	for _, p := range b.prog.base.Ports {
		if p.Dir == Out {
			continue
		}
		if b.prog.deferInputs {
			if err := b.writeInput(p.Name, logic.New(p.Width)); err != nil {
				return err
			}
			continue
		}
		if err := b.SetInput(p.Name, logic.New(p.Width)); err != nil {
			return err
		}
	}
	if b.prog.deferInputs {
		return b.propagate()
	}
	return nil
}

// markDirty records a changed slot for one lane.
func (b *BatchInstance) markDirty(lane, slot int32) {
	i := int(slot)*b.n + int(lane)
	if !b.dirty[i] {
		b.dirty[i] = true
		b.dirtyList[lane] = append(b.dirtyList[lane], slot)
	}
}

// applyWrite mirrors Instance.applyWrite for one lane.
func (b *BatchInstance) applyWrite(lane int32, w resolvedWrite) {
	i := int(w.slot)*b.n + int(lane)
	cur := b.vals[i]
	var next logic.Vector
	if w.whole {
		next = w.val
	} else {
		next = cur.Resize(cur.Width())
		next.SetSlice(w.hi, w.lo, w.val)
	}
	if !next.Equal(cur) {
		b.vals[i] = next
		b.markDirty(lane, w.slot)
	}
}

// propagate advances every active lane to quiescence.
func (b *BatchInstance) propagate() error {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	if b.nActive == 0 {
		return nil
	}
	// No-work fast path: with every live lane booted and nothing dirty,
	// settling is a no-op and no edge slot can have changed since the
	// previous propagate synced prev (common when a step re-drives
	// inputs with unchanged values).
	work := false
	for lane := 0; lane < b.n; lane++ {
		if b.active[lane] && (len(b.dirtyList[lane]) > 0 || !b.ranAny[lane]) {
			work = true
			break
		}
	}
	if !work {
		return nil
	}
	if b.prog.levelized {
		return b.propagateLevel()
	}
	for lane := int32(0); lane < int32(b.n); lane++ {
		if b.active[lane] {
			b.propagateED(lane)
		}
	}
	return nil
}

// Levelized mode --------------------------------------------------------

// propagateLevel is the batched propagate: settle all live lanes in
// one levelized pass, then fire edges per lane, repeating for lanes
// that fired.
func (b *BatchInstance) propagateLevel() error {
	live := b.liveBuf[:0]
	for lane := int32(0); lane < int32(b.n); lane++ {
		if b.active[lane] {
			live = append(live, lane)
		}
	}
	defer func() { b.liveBuf = live[:0] }()
	for wave := 0; wave < maxEdgeWaves; wave++ {
		if len(live) == 0 {
			return nil
		}
		b.settleLevel(live)
		next := b.liveBuf2[:0]
		for _, lane := range live {
			if !b.active[lane] {
				continue // settle error killed it
			}
			if b.fireEdgesLane(lane) && b.active[lane] {
				next = append(next, lane)
			}
		}
		b.liveBuf2 = live[:0]
		live = next
	}
	for _, lane := range live {
		b.failLane(lane, fmt.Errorf("sim: edge cascade did not settle after %d waves", maxEdgeWaves))
	}
	return nil
}

// settleLevel runs one topological pass over the comb processes. For
// each process, the set of lanes to run replicates the scalar
// scheduler's pending test exactly: bootstrap (nothing dirty, nothing
// ever ran) or a dirty sensitivity slot. Because every combinational
// writer of a sensitivity slot is scheduled at a lower level, one run
// per process reaches the same fixpoint as the scalar iteration.
func (b *BatchInstance) settleLevel(live []int32) {
	prog := b.prog
	n := b.n
	for _, lane := range live {
		b.boot[lane] = len(b.dirtyList[lane]) == 0 && !b.ranAny[lane]
	}
	for _, ord := range prog.levelOrder {
		run := b.runBuf[:0]
		for _, lane := range live {
			if b.laneErr[lane] != nil {
				continue
			}
			ok := b.boot[lane]
			if !ok {
				sens := prog.combSens[ord]
				if ovs := prog.combSensLane[ord]; ovs != nil && ovs[lane] != nil {
					sens = ovs[lane]
				}
				for _, s := range sens {
					if b.dirty[int(s)*n+int(lane)] {
						ok = true
						break
					}
				}
			}
			if ok {
				run = append(run, lane)
			}
		}
		if len(run) == 0 {
			b.runBuf = run[:0]
			continue
		}
		if k := prog.kernels[ord]; k != nil {
			// Dense fast path: compute the base body for all (unpatched)
			// lanes at once. Kernels exist only for static processes, so
			// recomputing a lane whose inputs are unchanged is idempotent
			// (chgBuf stays false) — running the whole batch is safe even
			// when only some lanes are due. Inactive lanes are computed
			// too but never read again. Patched lanes are skipped by the
			// masked kernel and interpreted below, due lanes only.
			k.run(b)
			for lane := 0; lane < n; lane++ {
				if b.chgBuf[lane] {
					b.chgBuf[lane] = false
					b.markDirty(int32(lane), k.dst)
				}
			}
			ovs := prog.combPatch[ord]
			for _, lane := range run {
				b.ranAny[lane] = true
				if ovs == nil || ovs[lane] == nil {
					continue
				}
				if err := ovs[lane](b, lane); err != nil {
					b.failLane(lane, fmt.Errorf("sim: in %s: %v", prog.combNames[ord], err))
				}
			}
			b.runBuf = run[:0]
			continue
		}
		code := prog.combCode[ord]
		ovs := prog.combPatch[ord]
		for _, lane := range run {
			c := code
			if ovs != nil && ovs[lane] != nil {
				c = ovs[lane]
			}
			b.ranAny[lane] = true
			if err := c(b, lane); err != nil {
				b.failLane(lane, fmt.Errorf("sim: in %s: %v", prog.combNames[ord], err))
			}
		}
		b.runBuf = run[:0]
	}
	// The schedule consumed the whole dirty set; clear it per lane.
	for _, lane := range live {
		if b.laneErr[lane] != nil {
			continue // dead lane, state frozen
		}
		for _, s := range b.dirtyList[lane] {
			b.dirty[int(s)*n+int(lane)] = false
		}
		b.dirtyList[lane] = b.dirtyList[lane][:0]
	}
}

// fireEdgesLane mirrors Instance.fireEdges for one lane. Used by both
// modes: edge structure (watched slots, sequential sensitivities) is
// identical across the whole batch by construction, only bodies can
// be patched. The early return on "nothing changed" leaves the lane's
// NBA queue untouched, exactly like the scalar engine.
func (b *BatchInstance) fireEdgesLane(lane int32) bool {
	prog := b.prog
	d := prog.base
	n := b.n
	changed := false
	for i, slot := range d.edgeSlots {
		pi := i*n + int(lane)
		prev, now := b.prev[pi], b.vals[int(slot)*n+int(lane)]
		if prev.Equal(now) {
			b.edgeChg[i] = false
			continue
		}
		pb, nb := prev.Bit(0), now.Bit(0)
		b.edgeChg[i] = true
		b.edgePos[i] = isPosedge(pb, nb)
		b.edgeNeg[i] = isNegedge(pb, nb)
		b.prev[pi] = now
		changed = true
	}
	if !changed {
		return false
	}
	var fired bool
	for ord, p := range d.seqProcs {
		trigger := false
		for _, s := range p.edgeSens {
			if !b.edgeChg[s.idx] {
				continue
			}
			if (s.edge == verilog.EdgePos && b.edgePos[s.idx]) || (s.edge == verilog.EdgeNeg && b.edgeNeg[s.idx]) {
				trigger = true
				break
			}
		}
		if !trigger {
			continue
		}
		fired = true
		b.ranAny[lane] = true
		code := prog.seqCode[ord]
		if ovs := prog.seqPatch[ord]; ovs != nil && ovs[lane] != nil {
			code = ovs[lane]
		}
		if err := code(b, lane); err != nil {
			// The scalar run dies here with the NBA queue unapplied.
			b.failLane(lane, fmt.Errorf("sim: in %s: %v", prog.seqNames[ord], err))
			return fired
		}
	}
	for i := range b.nba[lane] {
		b.applyWrite(lane, b.nba[lane][i])
	}
	b.nba[lane] = b.nba[lane][:0]
	return fired
}

// Event-driven mode -----------------------------------------------------

// propagateED replicates Instance.propagate for one lane.
func (b *BatchInstance) propagateED(lane int32) {
	for wave := 0; wave < maxEdgeWaves; wave++ {
		if err := b.settleED(lane); err != nil {
			b.failLane(lane, err)
			return
		}
		fired := b.fireEdgesLane(lane)
		if b.laneErr[lane] != nil {
			return
		}
		if !fired {
			return
		}
	}
	b.failLane(lane, fmt.Errorf("sim: edge cascade did not settle after %d waves", maxEdgeWaves))
}

// settleED replicates Instance.settleComb for one lane, scheduling
// with the lane design's own combBySlot index (patched processes keep
// their variant sensitivities there). The pending set is shared
// scratch; it starts and ends empty on every call.
func (b *BatchInstance) settleED(lane int32) error {
	prog := b.prog
	d := prog.laneDesign[lane]
	if len(b.dirtyList[lane]) == 0 && !b.ranAny[lane] {
		for i := range b.pending {
			if !b.pending[i] {
				b.pending[i] = true
				b.npending++
			}
		}
	}
	b.schedulePendingED(lane, d)

	for iter := 0; b.npending > 0; iter++ {
		if iter > maxSettleIterations {
			for i := range b.pending {
				b.pending[i] = false
			}
			b.npending = 0
			return fmt.Errorf("sim: combinational logic did not settle (%d iterations); possible feedback loop", maxSettleIterations)
		}
		run := b.runBuf[:0]
		for ord := range b.pending {
			if b.pending[ord] {
				run = append(run, int32(ord))
				b.pending[ord] = false
			}
		}
		b.npending = 0
		for _, ord := range run {
			b.ranAny[lane] = true
			code := prog.combCode[ord]
			if ovs := prog.combPatch[ord]; ovs != nil && ovs[lane] != nil {
				code = ovs[lane]
			}
			if err := code(b, lane); err != nil {
				b.runBuf = run[:0]
				return fmt.Errorf("sim: in %s: %v", prog.combNames[ord], err)
			}
		}
		b.runBuf = run[:0]
		b.schedulePendingED(lane, d)
	}
	return nil
}

// schedulePendingED moves one lane's dirty set into the shared pending
// process set, mirroring Instance.schedulePending.
func (b *BatchInstance) schedulePendingED(lane int32, d *Design) {
	n := b.n
	for _, slot := range b.dirtyList[lane] {
		b.dirty[int(slot)*n+int(lane)] = false
		for _, ord := range d.combBySlot[slot] {
			if !b.pending[ord] {
				b.pending[ord] = true
				b.npending++
			}
		}
	}
	b.dirtyList[lane] = b.dirtyList[lane][:0]
}
