package sim

import (
	"testing"

	"correctbench/internal/logic"
)

// evalIn builds a tiny design to evaluate an expression with known
// input values and width, returning the result signal.
func evalIn(t *testing.T, decl, expr string, width int, inputs map[string]uint64) logic.Vector {
	t.Helper()
	src := "module m(" + decl + ", output [" + itoa(width-1) + ":0] y);\n    assign y = " + expr + ";\nendmodule"
	d, err := ElaborateSource(src, "m")
	if err != nil {
		t.Fatalf("elaborate %q: %v", expr, err)
	}
	in := NewInstance(d)
	if err := in.ZeroInputs(); err != nil {
		t.Fatal(err)
	}
	for k, v := range inputs {
		if err := in.SetInputUint(k, v); err != nil {
			t.Fatal(err)
		}
	}
	return in.MustGet("y")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestContextWidening(t *testing.T) {
	// 4-bit operands added in a 5-bit context keep their carry.
	v := evalIn(t, "input [3:0] a, input [3:0] b", "a + b", 5,
		map[string]uint64{"a": 15, "b": 15})
	if got, _ := v.Uint64(); got != 30 {
		t.Errorf("context widening lost carry: %d", got)
	}
}

func TestSelfDeterminedComparison(t *testing.T) {
	// Comparison operands are self-determined: a+b wraps at 4 bits
	// inside the comparison? No — arithmetic inside a comparison still
	// widens to the operands' max width only. 15+1 wraps to 0 at 4
	// bits, so a + b < a holds.
	v := evalIn(t, "input [3:0] a, input [3:0] b", "(a + b) < a", 1,
		map[string]uint64{"a": 15, "b": 1})
	if got, _ := v.Uint64(); got != 1 {
		t.Errorf("4-bit wrap inside comparison: got %d, want 1", got)
	}
}

func TestConcatIsSelfDetermined(t *testing.T) {
	// Inside a concat, arithmetic stays at operand width.
	v := evalIn(t, "input [3:0] a, input [3:0] b", "{a + b, 4'd1}", 8,
		map[string]uint64{"a": 9, "b": 8})
	if got, _ := v.Uint64(); got != ((9+8)&15)<<4|1 {
		t.Errorf("concat part width wrong: %#x", got)
	}
}

func TestShiftAmountSelfDetermined(t *testing.T) {
	v := evalIn(t, "input [7:0] a, input [2:0] sh", "a << sh", 8,
		map[string]uint64{"a": 1, "sh": 7})
	if got, _ := v.Uint64(); got != 128 {
		t.Errorf("shift: %d", got)
	}
}

func TestReplicationWidth(t *testing.T) {
	v := evalIn(t, "input a", "{4{a}}", 4, map[string]uint64{"a": 1})
	if got, _ := v.Uint64(); got != 15 {
		t.Errorf("replication: %d", got)
	}
}

func TestTernaryContextWidth(t *testing.T) {
	// Both ternary branches adopt the assignment context.
	v := evalIn(t, "input sel, input [3:0] a", "sel ? (a + 4'd15) : 5'd0", 5,
		map[string]uint64{"sel": 1, "a": 15})
	if got, _ := v.Uint64(); got != 30 {
		t.Errorf("ternary context: %d", got)
	}
}

func TestUnsizedLiteralIs32Bit(t *testing.T) {
	// An unsized literal brings 32-bit context into the addition.
	v := evalIn(t, "input [3:0] a", "a + 16", 8, map[string]uint64{"a": 15})
	if got, _ := v.Uint64(); got != 31 {
		t.Errorf("unsized literal context: %d", got)
	}
}

func TestReductionOfExpression(t *testing.T) {
	v := evalIn(t, "input [7:0] a", "^(a & 8'hf0)", 1, map[string]uint64{"a": 0x30})
	if got, _ := v.Uint64(); got != 0 {
		t.Errorf("reduction: %d", got)
	}
	v = evalIn(t, "input [7:0] a", "&a[3:0]", 1, map[string]uint64{"a": 0x0f})
	if got, _ := v.Uint64(); got != 1 {
		t.Errorf("reduction of part select: %d", got)
	}
}

func TestIndexOutOfRangeIsX(t *testing.T) {
	v := evalIn(t, "input [3:0] a, input [3:0] idx", "a[idx]", 1,
		map[string]uint64{"a": 15, "idx": 9})
	if !v.HasUnknown() {
		t.Errorf("out-of-range select = %s, want x", v)
	}
}

func TestPartSelectValue(t *testing.T) {
	v := evalIn(t, "input [7:0] a", "a[6:3]", 4, map[string]uint64{"a": 0b01011000})
	if got, _ := v.Uint64(); got != 0b1011 {
		t.Errorf("part select: %04b", got)
	}
}

func TestCaseEqualityOnX(t *testing.T) {
	// 1'bx === 1'bx is true (case equality matches X exactly).
	v := evalIn(t, "input a", "1'bx === 1'bx", 1, map[string]uint64{"a": 0})
	if got, _ := v.Uint64(); got != 1 {
		t.Errorf("x === x = %d, want 1", got)
	}
	v = evalIn(t, "input a", "1'bx == 1'bx", 1, map[string]uint64{"a": 0})
	if !v.HasUnknown() {
		t.Errorf("x == x should be x, got %s", v)
	}
}

func TestPowerOperator(t *testing.T) {
	v := evalIn(t, "input [3:0] a", "a ** 2", 8, map[string]uint64{"a": 9})
	if got, _ := v.Uint64(); got != 81 {
		t.Errorf("9**2 = %d", got)
	}
}

func TestModAndDivByZeroAreX(t *testing.T) {
	v := evalIn(t, "input [3:0] a, input [3:0] b", "a % b", 4,
		map[string]uint64{"a": 9, "b": 0})
	if !v.HasUnknown() {
		t.Errorf("mod by zero = %s", v)
	}
}
