package sim

// Per-lane compilation for the SoA batch engine (EngineBatched).
//
// The batch compiler is the scalar compiler (compile.go) with one
// twist: compiled closures take a (BatchInstance, lane) pair and read
// and write the flat [slot][lane] state block instead of a scalar
// instance's slot array. Every case mirrors the corresponding
// compiler/evalExpr/exec case exactly — same width contexts, same
// X-propagation, same no-op rules for unknown indices and bounds —
// so a batch lane is bit-identical to a scalar instance running the
// same design (TestBatchEngineDifferential and the testbench-level
// differentials assert this across the dataset).
//
// Anything the scalar compiler leaves to the AST interpreter is a
// hard error here (errDynamic): a batch program has no interpreter to
// fall back to, so the caller falls back to scalar simulation for the
// whole design (CompileBatch error) or for one variant (lane
// rejection). Display-family system tasks and $finish/$stop are
// rejected too — they would need per-lane I/O and finish state.

import (
	"fmt"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// bStmt executes a statement for one lane of a batch instance.
type bStmt func(b *BatchInstance, lane int32) error

// bExpr evaluates an expression for one lane; like compiledExpr it
// cannot fail at runtime.
type bExpr func(b *BatchInstance, lane int32) logic.Vector

// bLV applies an already-evaluated RHS value to an lvalue for one
// lane, writing through (blocking) or queueing on the lane's NBA list.
type bLV func(b *BatchInstance, lane int32, val logic.Vector, nb bool)

var bNoop bStmt = func(b *BatchInstance, lane int32) error { return nil }

// batchCompiler compiles process bodies into per-lane closures. It
// embeds the scalar compiler for the shared static analysis
// (selfWidth, constUint) — those depend only on the design.
type batchCompiler struct {
	c compiler
}

// expr compiles e under context width ctx, mirroring compiler.expr.
func (bc *batchCompiler) expr(e verilog.Expr, ctx int) (bExpr, int, error) {
	self, err := bc.c.selfWidth(e)
	if err != nil {
		return nil, 0, err
	}
	want := self
	if ctx > want {
		want = ctx
	}
	switch x := e.(type) {
	case *verilog.Number:
		v := x.Val.Resize(want)
		return func(b *BatchInstance, lane int32) logic.Vector { return v }, want, nil

	case *verilog.StringLit:
		return nil, 0, errDynamic

	case *verilog.Ident:
		slot, ok := bc.c.d.slotOf[x.Name]
		if !ok {
			return nil, 0, errDynamic
		}
		s := int32(slot)
		if bc.c.d.slotWidths[slot] == want {
			return func(b *BatchInstance, lane int32) logic.Vector {
				return b.vals[int(s)*b.n+int(lane)]
			}, want, nil
		}
		return func(b *BatchInstance, lane int32) logic.Vector {
			return b.vals[int(s)*b.n+int(lane)].Resize(want)
		}, want, nil

	case *verilog.Unary:
		switch x.Op {
		case "~":
			v, _, err := bc.expr(x.X, want)
			if err != nil {
				return nil, 0, err
			}
			return func(b *BatchInstance, lane int32) logic.Vector { return logic.NotV(v(b, lane)) }, want, nil
		case "-":
			v, _, err := bc.expr(x.X, want)
			if err != nil {
				return nil, 0, err
			}
			return func(b *BatchInstance, lane int32) logic.Vector { return logic.Neg(v(b, lane)) }, want, nil
		case "!":
			v, _, err := bc.expr(x.X, 0)
			if err != nil {
				return nil, 0, err
			}
			return bc.resized(func(b *BatchInstance, lane int32) logic.Vector { return logic.Not(v(b, lane)) }, 1, want), want, nil
		case "&", "|", "^", "~&", "~|", "~^", "^~":
			v, _, err := bc.expr(x.X, 0)
			if err != nil {
				return nil, 0, err
			}
			var red func(logic.Vector) logic.Vector
			switch x.Op {
			case "&":
				red = logic.RedAnd
			case "|":
				red = logic.RedOr
			case "^":
				red = logic.RedXor
			case "~&":
				red = logic.RedNand
			case "~|":
				red = logic.RedNor
			default:
				red = logic.RedXnor
			}
			return bc.resized(func(b *BatchInstance, lane int32) logic.Vector { return red(v(b, lane)) }, 1, want), want, nil
		default:
			return nil, 0, errDynamic
		}

	case *verilog.Binary:
		return bc.binary(x, want)

	case *verilog.Ternary:
		cond, _, err := bc.expr(x.Cond, 0)
		if err != nil {
			return nil, 0, err
		}
		th, _, err := bc.expr(x.Then, want)
		if err != nil {
			return nil, 0, err
		}
		el, _, err := bc.expr(x.Else, want)
		if err != nil {
			return nil, 0, err
		}
		return func(b *BatchInstance, lane int32) logic.Vector {
			return logic.Mux(cond(b, lane), th(b, lane), el(b, lane))
		}, want, nil

	case *verilog.Concat:
		parts := make([]bExpr, len(x.Parts))
		for i, p := range x.Parts {
			pc, _, err := bc.expr(p, 0)
			if err != nil {
				return nil, 0, err
			}
			parts[i] = pc
		}
		total := self
		return bc.resized(func(b *BatchInstance, lane int32) logic.Vector {
			vals := make([]logic.Vector, len(parts))
			for i, pc := range parts {
				vals[i] = pc(b, lane)
			}
			return logic.Concat(vals...)
		}, total, want), want, nil

	case *verilog.Repl:
		nV, err := evalExpr(x.Count, constOnlyEnv{}, 0)
		if err != nil {
			return nil, 0, errDynamic
		}
		n, ok := nV.Uint64()
		if !ok || n < 1 || n > 4096 {
			return nil, 0, errDynamic
		}
		v, vw, err := bc.expr(x.Value, 0)
		if err != nil {
			return nil, 0, err
		}
		return bc.resized(func(b *BatchInstance, lane int32) logic.Vector {
			return logic.Replicate(int(n), v(b, lane))
		}, int(n)*vw, want), want, nil

	case *verilog.Index:
		base, _, err := bc.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		idx, _, err := bc.expr(x.Index, 0)
		if err != nil {
			return nil, 0, err
		}
		xext := logic.AllX(1).Resize(want)
		return func(b *BatchInstance, lane int32) logic.Vector {
			bv := base(b, lane)
			iv, ok := idx(b, lane).Uint64()
			if !ok || iv >= uint64(bv.Width()) {
				return xext
			}
			r := logic.Slice(bv, int(iv), int(iv))
			if want != 1 {
				r = r.Resize(want)
			}
			return r
		}, want, nil

	case *verilog.PartSelect:
		base, _, err := bc.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		hiV, errHi := evalExpr(x.MSB, constOnlyEnv{}, 0)
		loV, errLo := evalExpr(x.LSB, constOnlyEnv{}, 0)
		if errHi != nil || errLo != nil {
			return nil, 0, errDynamic
		}
		hi, ok1 := hiV.Uint64()
		lo, ok2 := loV.Uint64()
		if !ok1 || !ok2 {
			allx := logic.AllX(want)
			return func(b *BatchInstance, lane int32) logic.Vector { return allx }, want, nil
		}
		w := self
		return bc.resized(func(b *BatchInstance, lane int32) logic.Vector {
			return logic.Slice(base(b, lane), int(hi), int(lo))
		}, w, want), want, nil

	default:
		return nil, 0, errDynamic
	}
}

func (bc *batchCompiler) resized(f bExpr, natural, want int) bExpr {
	if natural == want {
		return f
	}
	return func(b *BatchInstance, lane int32) logic.Vector { return f(b, lane).Resize(want) }
}

func (bc *batchCompiler) binary(x *verilog.Binary, want int) (bExpr, int, error) {
	switch x.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		l, _, err := bc.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := bc.expr(x.Y, want)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "+":
			op = logic.Add
		case "-":
			op = logic.Sub
		case "*":
			op = logic.Mul
		case "/":
			op = logic.Div
		case "%":
			op = logic.Mod
		case "&":
			op = logic.And
		case "|":
			op = logic.Or
		case "^":
			op = logic.Xor
		default:
			op = logic.Xnor
		}
		return func(b *BatchInstance, lane int32) logic.Vector { return op(l(b, lane), r(b, lane)) }, want, nil

	case "<<", ">>", ">>>", "<<<":
		l, _, err := bc.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		amt, _, err := bc.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "<<", "<<<":
			op = logic.Shl
		case ">>":
			op = logic.Shr
		default:
			op = logic.Sshr
		}
		return func(b *BatchInstance, lane int32) logic.Vector { return op(l(b, lane), amt(b, lane)) }, want, nil

	case "**":
		l, _, err := bc.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := bc.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		return func(b *BatchInstance, lane int32) logic.Vector {
			base, ok1 := l(b, lane).Uint64()
			exp, ok2 := r(b, lane).Uint64()
			if !ok1 || !ok2 || exp > 64 {
				return logic.AllX(want)
			}
			acc := uint64(1)
			for i := uint64(0); i < exp; i++ {
				acc *= base
			}
			return logic.FromUint64(want, acc)
		}, want, nil

	case "==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||":
		l, _, err := bc.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := bc.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "==":
			op = logic.Eq
		case "!=":
			op = logic.Neq
		case "===":
			op = logic.CaseEq
		case "!==":
			op = logic.CaseNeq
		case "<":
			op = logic.Lt
		case "<=":
			op = logic.Lte
		case ">":
			op = logic.Gt
		case ">=":
			op = logic.Gte
		case "&&":
			op = logic.LAnd
		default:
			op = logic.LOr
		}
		return bc.resized(func(b *BatchInstance, lane int32) logic.Vector { return op(l(b, lane), r(b, lane)) }, 1, want), want, nil

	default:
		return nil, 0, errDynamic
	}
}

// lvalue compiles an assignment target, mirroring compiler.lvalue.
func (bc *batchCompiler) lvalue(lhs verilog.Expr) (bLV, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		slot, ok := bc.c.d.slotOf[x.Name]
		if !ok {
			return nil, errDynamic
		}
		width := bc.c.d.slotWidths[slot]
		s := int32(slot)
		return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {
			w := resolvedWrite{slot: s, val: val.Resize(width), whole: true}
			if nb {
				b.nba[lane] = append(b.nba[lane], w)
			} else {
				b.applyWrite(lane, w)
			}
		}, nil

	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		slot, ok2 := bc.c.d.slotOf[id.Name]
		if !ok2 {
			return nil, errDynamic
		}
		width := bc.c.d.slotWidths[slot]
		idx, _, err := bc.expr(x.Index, 0)
		if err != nil {
			return nil, err
		}
		s := int32(slot)
		return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {
			iv, ok := idx(b, lane).Uint64()
			if !ok || iv >= uint64(width) {
				return // write through unknown/out-of-range index: no-op
			}
			w := resolvedWrite{slot: s, hi: int(iv), lo: int(iv), val: val.Resize(1)}
			if nb {
				b.nba[lane] = append(b.nba[lane], w)
			} else {
				b.applyWrite(lane, w)
			}
		}, nil

	case *verilog.PartSelect:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		slot, ok2 := bc.c.d.slotOf[id.Name]
		if !ok2 {
			return nil, errDynamic
		}
		width := bc.c.d.slotWidths[slot]
		hiV, errHi := evalExpr(x.MSB, constOnlyEnv{}, 0)
		loV, errLo := evalExpr(x.LSB, constOnlyEnv{}, 0)
		if errHi != nil || errLo != nil {
			return nil, errDynamic
		}
		hi, ok3 := hiV.Uint64()
		lo, ok4 := loV.Uint64()
		if !ok3 || !ok4 {
			return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {}, nil
		}
		h, l := int(hi), int(lo)
		if h < l {
			h, l = l, h
		}
		if l >= width {
			return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {}, nil
		}
		if h >= width {
			h = width - 1
		}
		s, span := int32(slot), h-l+1
		return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {
			w := resolvedWrite{slot: s, hi: h, lo: l, val: val.Resize(span)}
			if nb {
				b.nba[lane] = append(b.nba[lane], w)
			} else {
				b.applyWrite(lane, w)
			}
		}, nil

	case *verilog.Concat:
		total, err := bc.c.lhsWidth(lhs)
		if err != nil {
			return nil, err
		}
		type part struct {
			lv     bLV
			hi, lo int
		}
		parts := make([]part, 0, len(x.Parts))
		offset := total
		for _, p := range x.Parts {
			w, err := bc.c.lhsWidth(p)
			if err != nil {
				return nil, err
			}
			offset -= w
			lv, err := bc.lvalue(p)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part{lv: lv, hi: offset + w - 1, lo: offset})
		}
		return func(b *BatchInstance, lane int32, val logic.Vector, nb bool) {
			vt := val.Resize(total)
			for _, p := range parts {
				p.lv(b, lane, logic.Slice(vt, p.hi, p.lo), nb)
			}
		}, nil

	default:
		return nil, errDynamic
	}
}

// stmt compiles a statement, mirroring compiler.stmt.
func (bc *batchCompiler) stmt(s verilog.Stmt) (bStmt, error) {
	switch x := s.(type) {
	case nil, *verilog.Null:
		return bNoop, nil

	case *verilog.Block:
		stmts := make([]bStmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cs, err := bc.stmt(sub)
			if err != nil {
				return nil, err
			}
			stmts[i] = cs
		}
		return func(b *BatchInstance, lane int32) error {
			for _, st := range stmts {
				if err := st(b, lane); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *verilog.Assign:
		ctx, err := bc.c.lhsWidth(x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, _, err := bc.expr(x.RHS, ctx)
		if err != nil {
			return nil, err
		}
		lv, err := bc.lvalue(x.LHS)
		if err != nil {
			return nil, err
		}
		nb := x.NonBlocking
		return func(b *BatchInstance, lane int32) error {
			lv(b, lane, rhs(b, lane), nb)
			return nil
		}, nil

	case *verilog.If:
		cond, _, err := bc.expr(x.Cond, 0)
		if err != nil {
			return nil, err
		}
		th, err := bc.stmt(x.Then)
		if err != nil {
			return nil, err
		}
		var el bStmt
		if x.Else != nil {
			el, err = bc.stmt(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(b *BatchInstance, lane int32) error {
			if logic.Truth(cond(b, lane)) == logic.L1 {
				return th(b, lane)
			}
			if el != nil {
				return el(b, lane)
			}
			return nil
		}, nil

	case *verilog.Case:
		sel, _, err := bc.expr(x.Expr, 0)
		if err != nil {
			return nil, err
		}
		type caseArm struct {
			exprs []bExpr
			body  bStmt
		}
		var arms []caseArm
		var deflt bStmt
		for _, item := range x.Items {
			body, err := bc.stmt(item.Body)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			arm := caseArm{body: body}
			for _, e := range item.Exprs {
				ce, _, err := bc.expr(e, 0)
				if err != nil {
					return nil, err
				}
				arm.exprs = append(arm.exprs, ce)
			}
			arms = append(arms, arm)
		}
		kind := x.Kind
		return func(b *BatchInstance, lane int32) error {
			sv := sel(b, lane)
			for _, arm := range arms {
				for _, le := range arm.exprs {
					lv := le(b, lane)
					var hit bool
					switch kind {
					case verilog.CaseZ:
						hit = logic.CaseZMatch(sv, lv)
					case verilog.CaseX:
						hit = logic.CaseXMatch(sv, lv)
					default:
						hit = sv.SameValue(lv)
					}
					if hit {
						return arm.body(b, lane)
					}
				}
			}
			if deflt != nil {
				return deflt(b, lane)
			}
			return nil
		}, nil

	case *verilog.For:
		init, err := bc.stmt(x.Init)
		if err != nil {
			return nil, err
		}
		cond, _, err := bc.expr(x.Cond, 0)
		if err != nil {
			return nil, err
		}
		step, err := bc.stmt(x.Step)
		if err != nil {
			return nil, err
		}
		body, err := bc.stmt(x.Body)
		if err != nil {
			return nil, err
		}
		return func(b *BatchInstance, lane int32) error {
			if err := init(b, lane); err != nil {
				return err
			}
			for iter := 0; ; iter++ {
				if iter > maxLoopIterations {
					return fmt.Errorf("for loop exceeded %d iterations", maxLoopIterations)
				}
				if logic.Truth(cond(b, lane)) != logic.L1 {
					return nil
				}
				if err := body(b, lane); err != nil {
					return err
				}
				if err := step(b, lane); err != nil {
					return err
				}
			}
		}, nil

	case *verilog.Repeat:
		cnt, _, err := bc.expr(x.Count, 0)
		if err != nil {
			return nil, err
		}
		body, err := bc.stmt(x.Body)
		if err != nil {
			return nil, err
		}
		return func(b *BatchInstance, lane int32) error {
			n, ok := cnt(b, lane).Uint64()
			if !ok {
				return nil // repeat (x) runs zero times
			}
			if n > maxLoopIterations {
				return fmt.Errorf("repeat count %d too large", n)
			}
			for i := uint64(0); i < n; i++ {
				if err := body(b, lane); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *verilog.SysCall:
		switch x.Name {
		case "$time", "$random", "$dumpfile", "$dumpvars", "$timeformat":
			// Accepted, no effect — exactly the scalar no-op list, and
			// those calls never evaluate their arguments.
			return bNoop, nil
		default:
			// $display and friends need per-lane output streams and
			// $finish/$stop per-lane finish state: not batchable.
			return nil, errDynamic
		}

	case *verilog.Delay:
		// Delay controls error at runtime under the cycle API; a design
		// using them in comb/seq processes stays on the scalar engines.
		return nil, errDynamic

	default:
		return nil, errDynamic
	}
}

// kernel recognizes processes whose whole evaluation collapses to one
// dense lane-batched fast path. Two tiers: denseKernel runs a whole
// batch through a word-parallel logic kernel (`assign y = a OP b`
// shapes), selectKernel covers any single-destination decision tree
// (case/if chains ending in `y = expr`) with per-lane expression
// closures that skip statement dispatch and the lvalue/applyWrite
// machinery. Used only in levelized mode for procs that are unpatched
// in every lane.
func (bc *batchCompiler) kernel(p *Process) *bKernel {
	body := unwrapBody(p.Body)
	if k := bc.denseKernel(body); k != nil {
		return k
	}
	dst, val, ok := bc.selectVal(body)
	if !ok {
		return nil
	}
	return &bKernel{dst: dst, run: func(b *BatchInstance) {
		n := b.n
		lanes := b.vals[int(dst)*n : (int(dst)+1)*n]
		for lane := 0; lane < n; lane++ {
			if next, wrote := val(b, int32(lane)); wrote && !next.Equal(lanes[lane]) {
				lanes[lane] = next
				b.chgBuf[lane] = true
			}
		}
	}}
}

// maskedKernel is the select kernel for a process patched in some
// lanes: the base body runs densely for every unpatched lane while
// patched lanes are skipped, left to the per-lane interpreter
// (settleLevel runs them right after the kernel).
func (bc *batchCompiler) maskedKernel(p *Process, patched []bStmt) *bKernel {
	dst, val, ok := bc.selectVal(unwrapBody(p.Body))
	if !ok {
		return nil
	}
	return &bKernel{dst: dst, run: func(b *BatchInstance) {
		n := b.n
		lanes := b.vals[int(dst)*n : (int(dst)+1)*n]
		for lane := 0; lane < n; lane++ {
			if patched[lane] != nil {
				continue
			}
			if next, wrote := val(b, int32(lane)); wrote && !next.Equal(lanes[lane]) {
				lanes[lane] = next
				b.chgBuf[lane] = true
			}
		}
	}}
}

// unwrapBody strips single-statement begin/end nesting, so always
// blocks and bare continuous assigns kernel-match alike.
func unwrapBody(body verilog.Stmt) verilog.Stmt {
	for {
		blk, ok := body.(*verilog.Block)
		if !ok || len(blk.Stmts) != 1 {
			return body
		}
		body = blk.Stmts[0]
	}
}

// denseKernel matches `y = a OP b` (OP in &,|,^,~^), `y = ~a`,
// `y = a` and `y = K` with every operand width equal to the target
// width (so the scalar path has no resizes either) and returns a
// whole-batch word-parallel kernel.
func (bc *batchCompiler) denseKernel(body verilog.Stmt) *bKernel {
	a, ok := body.(*verilog.Assign)
	if !ok || a.NonBlocking {
		return nil
	}
	lhs, ok := a.LHS.(*verilog.Ident)
	if !ok {
		return nil
	}
	d := bc.c.d
	slot, ok := d.slotOf[lhs.Name]
	if !ok {
		return nil
	}
	w := d.slotWidths[slot]
	dst := int32(slot)
	slotLanes := func(b *BatchInstance, s int32) []logic.Vector {
		return b.vals[int(s)*b.n : (int(s)+1)*b.n]
	}
	identSlot := func(e verilog.Expr) (int32, bool) {
		id, ok := e.(*verilog.Ident)
		if !ok {
			return 0, false
		}
		s, ok := d.slotOf[id.Name]
		if !ok || d.slotWidths[s] != w {
			return 0, false
		}
		return int32(s), true
	}

	switch r := a.RHS.(type) {
	case *verilog.Ident:
		src, ok := identSlot(r)
		if !ok {
			return nil
		}
		return &bKernel{dst: dst, run: func(b *BatchInstance) {
			logic.CopyLanes(slotLanes(b, dst), slotLanes(b, src), b.chgBuf)
		}}

	case *verilog.Number:
		// Mirror the compiled path: RHS evaluated at want =
		// max(lhsWidth, selfWidth), then the whole write resizes to the
		// target width.
		self := 32
		if r.Width != 0 {
			self = r.Width
		}
		want := w
		if self > want {
			want = self
		}
		v := r.Val.Resize(want).Resize(w)
		return &bKernel{dst: dst, run: func(b *BatchInstance) {
			logic.BroadcastLanes(slotLanes(b, dst), v, b.chgBuf)
		}}

	case *verilog.Unary:
		if r.Op != "~" {
			return nil
		}
		src, ok := identSlot(r.X)
		if !ok {
			return nil
		}
		return &bKernel{dst: dst, run: func(b *BatchInstance) {
			logic.NotLanes(slotLanes(b, dst), slotLanes(b, src), b.chgBuf)
		}}

	case *verilog.Binary:
		var fn func(dst, x, y []logic.Vector, chg []bool)
		switch r.Op {
		case "&":
			fn = logic.AndLanes
		case "|":
			fn = logic.OrLanes
		case "^":
			fn = logic.XorLanes
		case "~^", "^~":
			fn = logic.XnorLanes
		default:
			return nil
		}
		sx, ok1 := identSlot(r.X)
		sy, ok2 := identSlot(r.Y)
		if !ok1 || !ok2 {
			return nil
		}
		return &bKernel{dst: dst, run: func(b *BatchInstance) {
			fn(slotLanes(b, dst), slotLanes(b, sx), slotLanes(b, sy), b.chgBuf)
		}}
	}
	return nil
}

// bVal evaluates a single-destination process body for one lane: the
// value the body assigns and whether the taken path assigned at all
// (a case with no matching arm and no default writes nothing).
type bVal func(b *BatchInstance, lane int32) (logic.Vector, bool)

// selectVal matches process bodies that are a decision tree — if/else
// chains and case statements, each leaf a single blocking
// whole-identifier assignment to one shared destination (the classic
// mux/ALU/decoder shape) — and compiles them to a per-lane value
// closure plus the destination slot. The RHS leaves compile through
// bc.expr, so width contexts and X-propagation are exactly the
// interpreted path's; a kernel built on the closure only skips
// per-statement dispatch, lvalue resolution and applyWrite
// bookkeeping, writing the destination lane directly.
func (bc *batchCompiler) selectVal(body verilog.Stmt) (int32, bVal, bool) {
	name, ok := singleAssignTarget(body)
	if !ok {
		return 0, nil, false
	}
	d := bc.c.d
	slot, ok := d.slotOf[name]
	if !ok {
		return 0, nil, false
	}
	val, err := bc.valueStmt(body, d.slotWidths[slot])
	if err != nil {
		return 0, nil, false
	}
	return int32(slot), val, true
}

// singleAssignTarget reports the destination identifier when every
// statement in the tree is a decision construct (if/case/single-stmt
// block/null) whose leaves are blocking whole-identifier assignments
// to one shared name. Multi-statement blocks are rejected: a second
// write could transiently dirty the slot in ways a final-value kernel
// would not replicate.
func singleAssignTarget(s verilog.Stmt) (string, bool) {
	name, ok := "", true
	var walk func(verilog.Stmt)
	walk = func(s verilog.Stmt) {
		if !ok {
			return
		}
		switch x := s.(type) {
		case nil, *verilog.Null:
		case *verilog.Block:
			if len(x.Stmts) > 1 {
				ok = false
				return
			}
			for _, sub := range x.Stmts {
				walk(sub)
			}
		case *verilog.Assign:
			id, isID := x.LHS.(*verilog.Ident)
			if x.NonBlocking || !isID {
				ok = false
				return
			}
			if name == "" {
				name = id.Name
			} else if name != id.Name {
				ok = false
			}
		case *verilog.If:
			walk(x.Then)
			walk(x.Else)
		case *verilog.Case:
			for _, it := range x.Items {
				walk(it.Body)
			}
		default:
			ok = false
		}
	}
	walk(s)
	return name, ok && name != ""
}

// valueStmt compiles a singleAssignTarget-shaped tree into a bVal.
// Each case mirrors the corresponding bc.stmt case with the write
// replaced by a value return, preserving evaluation order, width
// contexts and match semantics exactly.
func (bc *batchCompiler) valueStmt(s verilog.Stmt, width int) (bVal, error) {
	noWrite := func(b *BatchInstance, lane int32) (logic.Vector, bool) { return logic.Vector{}, false }
	switch x := s.(type) {
	case nil, *verilog.Null:
		return noWrite, nil

	case *verilog.Block:
		if len(x.Stmts) == 0 {
			return noWrite, nil
		}
		return bc.valueStmt(x.Stmts[0], width)

	case *verilog.Assign:
		ctx, err := bc.c.lhsWidth(x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, want, err := bc.expr(x.RHS, ctx)
		if err != nil {
			return nil, err
		}
		if want == width {
			return func(b *BatchInstance, lane int32) (logic.Vector, bool) {
				return rhs(b, lane), true
			}, nil
		}
		return func(b *BatchInstance, lane int32) (logic.Vector, bool) {
			return rhs(b, lane).Resize(width), true
		}, nil

	case *verilog.If:
		cond, _, err := bc.expr(x.Cond, 0)
		if err != nil {
			return nil, err
		}
		th, err := bc.valueStmt(x.Then, width)
		if err != nil {
			return nil, err
		}
		el := noWrite
		if x.Else != nil {
			if el, err = bc.valueStmt(x.Else, width); err != nil {
				return nil, err
			}
		}
		return func(b *BatchInstance, lane int32) (logic.Vector, bool) {
			if logic.Truth(cond(b, lane)) == logic.L1 {
				return th(b, lane)
			}
			return el(b, lane)
		}, nil

	case *verilog.Case:
		sel, _, err := bc.expr(x.Expr, 0)
		if err != nil {
			return nil, err
		}
		type caseArm struct {
			exprs []bExpr
			body  bVal
		}
		var arms []caseArm
		deflt := noWrite
		for _, item := range x.Items {
			body, err := bc.valueStmt(item.Body, width)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			arm := caseArm{body: body}
			for _, e := range item.Exprs {
				ce, _, err := bc.expr(e, 0)
				if err != nil {
					return nil, err
				}
				arm.exprs = append(arm.exprs, ce)
			}
			arms = append(arms, arm)
		}
		kind := x.Kind
		return func(b *BatchInstance, lane int32) (logic.Vector, bool) {
			sv := sel(b, lane)
			for _, arm := range arms {
				for _, le := range arm.exprs {
					lv := le(b, lane)
					var hit bool
					switch kind {
					case verilog.CaseZ:
						hit = logic.CaseZMatch(sv, lv)
					case verilog.CaseX:
						hit = logic.CaseXMatch(sv, lv)
					default:
						hit = sv.SameValue(lv)
					}
					if hit {
						return arm.body(b, lane)
					}
				}
			}
			return deflt(b, lane)
		}, nil

	default:
		return nil, errDynamic
	}
}

// bKernel is a dense SoA fast path for one process: run computes every
// lane of the destination slot in one pass, reporting per-lane changes
// through the instance's chgBuf scratch.
type bKernel struct {
	dst int32
	run func(b *BatchInstance)
}
