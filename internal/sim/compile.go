package sim

// Ahead-of-time compilation of the elaborated design, Verilator-style.
//
// At the end of Elaborate every signal name is resolved to a dense
// integer slot and each combinational / edge-triggered process body is
// compiled into a tree of closures operating directly on the
// instance's []logic.Vector slot array. The compiled program bakes in
// everything the interpreter recomputes on every execution: signal
// slots (no map lookups), IEEE 1364 context widths (no per-node
// selfWidth walks), constant part-select bounds and replication
// counts, and resolved lvalue spans.
//
// Compilation is semantics-preserving by construction: every compiled
// node mirrors the corresponding evalExpr / exec case exactly,
// including X-propagation, width contexts and error messages. A body
// that cannot be proven static — e.g. a part-select whose bounds read
// signals — is simply left uncompiled and keeps running on the AST
// interpreter, so the two engines are interchangeable bit for bit
// (TestCompiledEngineDifferential asserts this over the dataset).

import (
	"errors"
	"fmt"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// Engine selects how Instance executes process bodies.
type Engine int

// Engines.
const (
	// EngineAuto resolves to DefaultEngine.
	EngineAuto Engine = iota
	// EngineCompiled runs slot-indexed compiled programs (falling back
	// to the interpreter per process when a body is not compilable).
	EngineCompiled
	// EngineInterp always walks the AST, the pre-compilation engine.
	EngineInterp
	// EngineBatched advances N design variants per step over one shared
	// SoA batch program (CompileBatch / BatchInstance) with levelized
	// static scheduling. A scalar Instance created with this engine
	// behaves exactly like EngineCompiled; the batching happens in the
	// layers that run many DUTs against one testbench.
	EngineBatched
)

// DefaultEngine is the engine NewInstance uses. The compiled engine is
// bit-for-bit identical to the interpreter; EngineInterp remains
// selectable for differential testing.
var DefaultEngine = EngineCompiled

func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineInterp:
		return "interp"
	case EngineBatched:
		return "batched"
	default:
		return "auto"
	}
}

// ParseEngine parses an engine name as printed by Engine.String.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "compiled":
		return EngineCompiled, nil
	case "interp":
		return EngineInterp, nil
	case "batched":
		return EngineBatched, nil
	default:
		return EngineAuto, fmt.Errorf("sim: unknown engine %q (want auto|interp|compiled|batched)", s)
	}
}

// compiledStmt executes a statement against slot-indexed instance
// state.
type compiledStmt func(in *Instance) error

// compiledExpr evaluates an expression; compiled expressions cannot
// fail at runtime (everything fallible is resolved at compile time).
type compiledExpr func(in *Instance) logic.Vector

// edgeSens is a pre-resolved edge-sensitivity entry of a sequential
// process: idx indexes the design's dense edge-watched signal list.
type edgeSens struct {
	idx  int32
	edge verilog.EdgeKind
}

// finalize resolves slots, indexes processes and compiles process
// bodies. Called once at the end of Elaborate.
func (d *Design) finalize() {
	d.slotOf = make(map[string]int, len(d.Order))
	d.slotWidths = make([]int, len(d.Order))
	for i, name := range d.Order {
		d.slotOf[name] = i
		d.slotWidths[i] = d.Signals[name].Width
	}

	edgeWatched := map[string]bool{}
	for _, p := range d.Procs {
		switch p.Kind {
		case ProcComb:
			d.combProcs = append(d.combProcs, p)
		case ProcSeq:
			d.seqProcs = append(d.seqProcs, p)
			for _, s := range p.Sens {
				edgeWatched[s.Sig] = true
			}
		}
	}

	edgeIdxOf := map[string]int32{}
	for _, name := range d.Order {
		if edgeWatched[name] {
			edgeIdxOf[name] = int32(len(d.edgeSlots))
			d.edgeSlots = append(d.edgeSlots, int32(d.slotOf[name]))
		}
	}

	d.combBySlot = make([][]int32, len(d.Order))
	for ord, p := range d.combProcs {
		for _, s := range p.Sens {
			if slot, ok := d.slotOf[s.Sig]; ok {
				d.combBySlot[slot] = append(d.combBySlot[slot], int32(ord))
			}
		}
	}
	for _, p := range d.seqProcs {
		for _, s := range p.Sens {
			p.edgeSens = append(p.edgeSens, edgeSens{idx: edgeIdxOf[s.Sig], edge: s.Edge})
		}
	}

	c := &compiler{d: d}
	for _, p := range d.Procs {
		if p.Kind != ProcComb && p.Kind != ProcSeq {
			continue // initial/timed bodies stay on the interpreter
		}
		if code, err := c.stmt(p.Body); err == nil {
			p.code = code
		}
	}
}

// errDynamic marks constructs whose widths or spans depend on runtime
// signal values; the owning process falls back to the interpreter.
var errDynamic = errors.New("not statically compilable")

type compiler struct {
	d *Design
}

// constOnlyEnv makes evalExpr usable as a compile-time constant
// evaluator: any signal read aborts the fold.
type constOnlyEnv struct{}

func (constOnlyEnv) readSignal(name string) (logic.Vector, error) {
	return logic.Vector{}, errDynamic
}
func (constOnlyEnv) signalWidth(name string) (int, bool) { return 0, false }

// constUint folds an expression that the interpreter evaluates with
// constUint at runtime. For genuinely constant expressions the result
// equals the runtime value (including the interpreter's "0 on X or
// error" convention); expressions that read signals report dynamic.
func (c *compiler) constUint(e verilog.Expr) (uint64, error) {
	v, err := evalExpr(e, constOnlyEnv{}, 0)
	if err != nil {
		return 0, errDynamic
	}
	u, ok := v.Uint64()
	if !ok {
		return 0, nil // interpreter's constUint yields 0 for unknowns
	}
	return u, nil
}

// selfWidth is eval.go's selfWidth evaluated at compile time. It
// reports errDynamic where the runtime version would consult signal
// values (replication counts, part-select bounds).
func (c *compiler) selfWidth(e verilog.Expr) (int, error) {
	switch x := e.(type) {
	case *verilog.Number:
		if x.Width == 0 {
			return 32, nil
		}
		return x.Width, nil
	case *verilog.StringLit:
		return 8 * len(x.Value), nil
	case *verilog.Ident:
		if s, ok := c.d.Signals[x.Name]; ok {
			return s.Width, nil
		}
		return 1, nil
	case *verilog.Unary:
		switch x.Op {
		case "~", "-":
			return c.selfWidth(x.X)
		default:
			return 1, nil
		}
	case *verilog.Binary:
		switch x.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			l, err := c.selfWidth(x.X)
			if err != nil {
				return 0, err
			}
			r, err := c.selfWidth(x.Y)
			if err != nil {
				return 0, err
			}
			if r > l {
				return r, nil
			}
			return l, nil
		case "<<", ">>", ">>>", "<<<", "**":
			return c.selfWidth(x.X)
		default:
			return 1, nil
		}
	case *verilog.Ternary:
		l, err := c.selfWidth(x.Then)
		if err != nil {
			return 0, err
		}
		r, err := c.selfWidth(x.Else)
		if err != nil {
			return 0, err
		}
		if r > l {
			return r, nil
		}
		return l, nil
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			w, err := c.selfWidth(p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		if total == 0 {
			return 1, nil
		}
		return total, nil
	case *verilog.Repl:
		n, err := c.constUint(x.Count)
		if err != nil {
			return 0, err
		}
		if n < 1 {
			n = 1
		}
		w, err := c.selfWidth(x.Value)
		if err != nil {
			return 0, err
		}
		return int(n) * w, nil
	case *verilog.Index:
		return 1, nil
	case *verilog.PartSelect:
		hi, err := c.constUint(x.MSB)
		if err != nil {
			return 0, err
		}
		lo, err := c.constUint(x.LSB)
		if err != nil {
			return 0, err
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		return int(hi-lo) + 1, nil
	default:
		return 1, nil
	}
}

// expr compiles e under context width ctx. The returned closure always
// yields a vector of width max(ctx, selfWidth(e)), exactly as
// evalExpr does.
func (c *compiler) expr(e verilog.Expr, ctx int) (compiledExpr, int, error) {
	self, err := c.selfWidth(e)
	if err != nil {
		return nil, 0, err
	}
	want := self
	if ctx > want {
		want = ctx
	}
	switch x := e.(type) {
	case *verilog.Number:
		v := x.Val.Resize(want)
		return func(in *Instance) logic.Vector { return v }, want, nil

	case *verilog.StringLit:
		// The interpreter reports this at runtime; keep its behavior.
		return nil, 0, errDynamic

	case *verilog.Ident:
		slot, ok := c.d.slotOf[x.Name]
		if !ok {
			return nil, 0, errDynamic
		}
		if c.d.slotWidths[slot] == want {
			return func(in *Instance) logic.Vector { return in.vals[slot] }, want, nil
		}
		return func(in *Instance) logic.Vector { return in.vals[slot].Resize(want) }, want, nil

	case *verilog.Unary:
		switch x.Op {
		case "~":
			v, _, err := c.expr(x.X, want)
			if err != nil {
				return nil, 0, err
			}
			return func(in *Instance) logic.Vector { return logic.NotV(v(in)) }, want, nil
		case "-":
			v, _, err := c.expr(x.X, want)
			if err != nil {
				return nil, 0, err
			}
			return func(in *Instance) logic.Vector { return logic.Neg(v(in)) }, want, nil
		case "!":
			v, _, err := c.expr(x.X, 0)
			if err != nil {
				return nil, 0, err
			}
			return c.resized(func(in *Instance) logic.Vector { return logic.Not(v(in)) }, 1, want), want, nil
		case "&", "|", "^", "~&", "~|", "~^", "^~":
			v, _, err := c.expr(x.X, 0)
			if err != nil {
				return nil, 0, err
			}
			var red func(logic.Vector) logic.Vector
			switch x.Op {
			case "&":
				red = logic.RedAnd
			case "|":
				red = logic.RedOr
			case "^":
				red = logic.RedXor
			case "~&":
				red = logic.RedNand
			case "~|":
				red = logic.RedNor
			default:
				red = logic.RedXnor
			}
			return c.resized(func(in *Instance) logic.Vector { return red(v(in)) }, 1, want), want, nil
		default:
			return nil, 0, errDynamic
		}

	case *verilog.Binary:
		return c.binary(x, want)

	case *verilog.Ternary:
		cond, _, err := c.expr(x.Cond, 0)
		if err != nil {
			return nil, 0, err
		}
		th, _, err := c.expr(x.Then, want)
		if err != nil {
			return nil, 0, err
		}
		el, _, err := c.expr(x.Else, want)
		if err != nil {
			return nil, 0, err
		}
		return func(in *Instance) logic.Vector { return logic.Mux(cond(in), th(in), el(in)) }, want, nil

	case *verilog.Concat:
		parts := make([]compiledExpr, len(x.Parts))
		for i, p := range x.Parts {
			pc, _, err := c.expr(p, 0)
			if err != nil {
				return nil, 0, err
			}
			parts[i] = pc
		}
		total := self
		return c.resized(func(in *Instance) logic.Vector {
			vals := make([]logic.Vector, len(parts))
			for i, pc := range parts {
				vals[i] = pc(in)
			}
			return logic.Concat(vals...)
		}, total, want), want, nil

	case *verilog.Repl:
		nV, err := evalExpr(x.Count, constOnlyEnv{}, 0)
		if err != nil {
			return nil, 0, errDynamic
		}
		n, ok := nV.Uint64()
		if !ok || n < 1 || n > 4096 {
			// The interpreter fails this assignment at runtime;
			// preserve that by not compiling the process.
			return nil, 0, errDynamic
		}
		v, vw, err := c.expr(x.Value, 0)
		if err != nil {
			return nil, 0, err
		}
		return c.resized(func(in *Instance) logic.Vector {
			return logic.Replicate(int(n), v(in))
		}, int(n)*vw, want), want, nil

	case *verilog.Index:
		base, _, err := c.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		idx, _, err := c.expr(x.Index, 0)
		if err != nil {
			return nil, 0, err
		}
		xext := logic.AllX(1).Resize(want)
		return func(in *Instance) logic.Vector {
			bv := base(in)
			iv, ok := idx(in).Uint64()
			if !ok || iv >= uint64(bv.Width()) {
				return xext
			}
			r := logic.Slice(bv, int(iv), int(iv))
			if want != 1 {
				r = r.Resize(want)
			}
			return r
		}, want, nil

	case *verilog.PartSelect:
		base, _, err := c.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		hiV, errHi := evalExpr(x.MSB, constOnlyEnv{}, 0)
		loV, errLo := evalExpr(x.LSB, constOnlyEnv{}, 0)
		if errHi != nil || errLo != nil {
			return nil, 0, errDynamic
		}
		hi, ok1 := hiV.Uint64()
		lo, ok2 := loV.Uint64()
		if !ok1 || !ok2 {
			allx := logic.AllX(want)
			return func(in *Instance) logic.Vector { return allx }, want, nil
		}
		w := self
		return c.resized(func(in *Instance) logic.Vector {
			return logic.Slice(base(in), int(hi), int(lo))
		}, w, want), want, nil

	default:
		return nil, 0, errDynamic
	}
}

// resized wraps f with a Resize to want when its natural width
// differs; fresh op results of the right width pass through untouched.
func (c *compiler) resized(f compiledExpr, natural, want int) compiledExpr {
	if natural == want {
		return f
	}
	return func(in *Instance) logic.Vector { return f(in).Resize(want) }
}

func (c *compiler) binary(x *verilog.Binary, want int) (compiledExpr, int, error) {
	switch x.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		l, _, err := c.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := c.expr(x.Y, want)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "+":
			op = logic.Add
		case "-":
			op = logic.Sub
		case "*":
			op = logic.Mul
		case "/":
			op = logic.Div
		case "%":
			op = logic.Mod
		case "&":
			op = logic.And
		case "|":
			op = logic.Or
		case "^":
			op = logic.Xor
		default:
			op = logic.Xnor
		}
		return func(in *Instance) logic.Vector { return op(l(in), r(in)) }, want, nil

	case "<<", ">>", ">>>", "<<<":
		l, _, err := c.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		amt, _, err := c.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "<<", "<<<":
			op = logic.Shl
		case ">>":
			op = logic.Shr
		default:
			op = logic.Sshr
		}
		return func(in *Instance) logic.Vector { return op(l(in), amt(in)) }, want, nil

	case "**":
		l, _, err := c.expr(x.X, want)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := c.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		return func(in *Instance) logic.Vector {
			base, ok1 := l(in).Uint64()
			exp, ok2 := r(in).Uint64()
			if !ok1 || !ok2 || exp > 64 {
				return logic.AllX(want)
			}
			acc := uint64(1)
			for i := uint64(0); i < exp; i++ {
				acc *= base
			}
			return logic.FromUint64(want, acc)
		}, want, nil

	case "==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||":
		l, _, err := c.expr(x.X, 0)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := c.expr(x.Y, 0)
		if err != nil {
			return nil, 0, err
		}
		var op func(a, b logic.Vector) logic.Vector
		switch x.Op {
		case "==":
			op = logic.Eq
		case "!=":
			op = logic.Neq
		case "===":
			op = logic.CaseEq
		case "!==":
			op = logic.CaseNeq
		case "<":
			op = logic.Lt
		case "<=":
			op = logic.Lte
		case ">":
			op = logic.Gt
		case ">=":
			op = logic.Gte
		case "&&":
			op = logic.LAnd
		default:
			op = logic.LOr
		}
		return c.resized(func(in *Instance) logic.Vector { return op(l(in), r(in)) }, 1, want), want, nil

	default:
		return nil, 0, errDynamic
	}
}

// lhsWidth mirrors Instance.lhsWidth at compile time.
func (c *compiler) lhsWidth(lhs verilog.Expr) (int, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		if s, ok := c.d.Signals[x.Name]; ok {
			return s.Width, nil
		}
		return 1, nil
	case *verilog.Index:
		return 1, nil
	case *verilog.PartSelect:
		hi, err := c.constUint(x.MSB)
		if err != nil {
			return 0, err
		}
		lo, err := c.constUint(x.LSB)
		if err != nil {
			return 0, err
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		return int(hi-lo) + 1, nil
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			w, err := c.lhsWidth(p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	default:
		return 1, nil
	}
}

// compiledLV applies an already-evaluated RHS value to an lvalue,
// either writing through (blocking) or queueing on the NBA list.
type compiledLV func(in *Instance, val logic.Vector, nonBlocking bool)

// lvalue compiles an assignment target into a resolved writer. The
// spans and clamping mirror resolveLValue.
func (c *compiler) lvalue(lhs verilog.Expr) (compiledLV, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		slot, ok := c.d.slotOf[x.Name]
		if !ok {
			return nil, errDynamic
		}
		width := c.d.slotWidths[slot]
		s := int32(slot)
		return func(in *Instance, val logic.Vector, nb bool) {
			w := resolvedWrite{slot: s, val: val.Resize(width), whole: true}
			if nb {
				in.nba = append(in.nba, w)
			} else {
				in.applyWrite(w)
			}
		}, nil

	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		slot, ok2 := c.d.slotOf[id.Name]
		if !ok2 {
			return nil, errDynamic
		}
		width := c.d.slotWidths[slot]
		idx, _, err := c.expr(x.Index, 0)
		if err != nil {
			return nil, err
		}
		s := int32(slot)
		return func(in *Instance, val logic.Vector, nb bool) {
			iv, ok := idx(in).Uint64()
			if !ok || iv >= uint64(width) {
				return // write through unknown/out-of-range index: no-op
			}
			w := resolvedWrite{slot: s, hi: int(iv), lo: int(iv), val: val.Resize(1)}
			if nb {
				in.nba = append(in.nba, w)
			} else {
				in.applyWrite(w)
			}
		}, nil

	case *verilog.PartSelect:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, errDynamic
		}
		slot, ok2 := c.d.slotOf[id.Name]
		if !ok2 {
			return nil, errDynamic
		}
		width := c.d.slotWidths[slot]
		hiV, errHi := evalExpr(x.MSB, constOnlyEnv{}, 0)
		loV, errLo := evalExpr(x.LSB, constOnlyEnv{}, 0)
		if errHi != nil || errLo != nil {
			return nil, errDynamic
		}
		hi, ok3 := hiV.Uint64()
		lo, ok4 := loV.Uint64()
		if !ok3 || !ok4 {
			return func(in *Instance, val logic.Vector, nb bool) {}, nil // unknown bounds: no-op
		}
		h, l := int(hi), int(lo)
		if h < l {
			h, l = l, h
		}
		if l >= width {
			return func(in *Instance, val logic.Vector, nb bool) {}, nil
		}
		if h >= width {
			h = width - 1
		}
		s, span := int32(slot), h-l+1
		return func(in *Instance, val logic.Vector, nb bool) {
			w := resolvedWrite{slot: s, hi: h, lo: l, val: val.Resize(span)}
			if nb {
				in.nba = append(in.nba, w)
			} else {
				in.applyWrite(w)
			}
		}, nil

	case *verilog.Concat:
		total, err := c.lhsWidth(lhs)
		if err != nil {
			return nil, err
		}
		type part struct {
			lv     compiledLV
			hi, lo int
		}
		parts := make([]part, 0, len(x.Parts))
		offset := total
		for _, p := range x.Parts {
			w, err := c.lhsWidth(p)
			if err != nil {
				return nil, err
			}
			offset -= w
			lv, err := c.lvalue(p)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part{lv: lv, hi: offset + w - 1, lo: offset})
		}
		return func(in *Instance, val logic.Vector, nb bool) {
			vt := val.Resize(total)
			for _, p := range parts {
				p.lv(in, logic.Slice(vt, p.hi, p.lo), nb)
			}
		}, nil

	default:
		return nil, errDynamic
	}
}

var noopStmt = func(in *Instance) error { return nil }

// stmt compiles a statement, mirroring Instance.exec case by case.
func (c *compiler) stmt(s verilog.Stmt) (compiledStmt, error) {
	switch x := s.(type) {
	case nil, *verilog.Null:
		return noopStmt, nil

	case *verilog.Block:
		stmts := make([]compiledStmt, len(x.Stmts))
		for i, sub := range x.Stmts {
			cs, err := c.stmt(sub)
			if err != nil {
				return nil, err
			}
			stmts[i] = cs
		}
		return func(in *Instance) error {
			for _, st := range stmts {
				if err := st(in); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *verilog.Assign:
		ctx, err := c.lhsWidth(x.LHS)
		if err != nil {
			return nil, err
		}
		rhs, _, err := c.expr(x.RHS, ctx)
		if err != nil {
			return nil, err
		}
		lv, err := c.lvalue(x.LHS)
		if err != nil {
			return nil, err
		}
		nb := x.NonBlocking
		return func(in *Instance) error {
			lv(in, rhs(in), nb)
			return nil
		}, nil

	case *verilog.If:
		cond, _, err := c.expr(x.Cond, 0)
		if err != nil {
			return nil, err
		}
		th, err := c.stmt(x.Then)
		if err != nil {
			return nil, err
		}
		var el compiledStmt
		if x.Else != nil {
			el, err = c.stmt(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(in *Instance) error {
			if logic.Truth(cond(in)) == logic.L1 {
				return th(in)
			}
			if el != nil {
				return el(in)
			}
			return nil
		}, nil

	case *verilog.Case:
		sel, _, err := c.expr(x.Expr, 0)
		if err != nil {
			return nil, err
		}
		type caseArm struct {
			exprs []compiledExpr
			body  compiledStmt
		}
		var arms []caseArm
		var deflt compiledStmt
		for _, item := range x.Items {
			body, err := c.stmt(item.Body)
			if err != nil {
				return nil, err
			}
			if item.Exprs == nil {
				deflt = body
				continue
			}
			arm := caseArm{body: body}
			for _, e := range item.Exprs {
				ce, _, err := c.expr(e, 0)
				if err != nil {
					return nil, err
				}
				arm.exprs = append(arm.exprs, ce)
			}
			arms = append(arms, arm)
		}
		kind := x.Kind
		return func(in *Instance) error {
			sv := sel(in)
			for _, arm := range arms {
				for _, le := range arm.exprs {
					lv := le(in)
					var hit bool
					switch kind {
					case verilog.CaseZ:
						hit = logic.CaseZMatch(sv, lv)
					case verilog.CaseX:
						hit = logic.CaseXMatch(sv, lv)
					default:
						hit = sv.SameValue(lv)
					}
					if hit {
						return arm.body(in)
					}
				}
			}
			if deflt != nil {
				return deflt(in)
			}
			return nil
		}, nil

	case *verilog.For:
		init, err := c.stmt(x.Init)
		if err != nil {
			return nil, err
		}
		cond, _, err := c.expr(x.Cond, 0)
		if err != nil {
			return nil, err
		}
		step, err := c.stmt(x.Step)
		if err != nil {
			return nil, err
		}
		body, err := c.stmt(x.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Instance) error {
			if err := init(in); err != nil {
				return err
			}
			for iter := 0; ; iter++ {
				if iter > maxLoopIterations {
					return fmt.Errorf("for loop exceeded %d iterations", maxLoopIterations)
				}
				if logic.Truth(cond(in)) != logic.L1 {
					return nil
				}
				if err := body(in); err != nil {
					return err
				}
				if err := step(in); err != nil {
					return err
				}
			}
		}, nil

	case *verilog.Repeat:
		cnt, _, err := c.expr(x.Count, 0)
		if err != nil {
			return nil, err
		}
		body, err := c.stmt(x.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Instance) error {
			n, ok := cnt(in).Uint64()
			if !ok {
				return nil // repeat (x) runs zero times
			}
			if n > maxLoopIterations {
				return fmt.Errorf("repeat count %d too large", n)
			}
			for i := uint64(0); i < n; i++ {
				if err := body(in); err != nil {
					return err
				}
			}
			return nil
		}, nil

	case *verilog.Delay:
		amt, _, err := c.expr(x.Amount, 0)
		if err != nil {
			return nil, err
		}
		body, err := c.stmt(x.Body)
		if err != nil {
			return nil, err
		}
		return func(in *Instance) error {
			if in.wait == nil {
				return fmt.Errorf("delay control is only allowed in initial/timed processes")
			}
			n, _ := amt(in).Uint64()
			in.wait(n)
			return body(in)
		}, nil

	case *verilog.SysCall:
		call := x
		return func(in *Instance) error { return in.sysCall(call) }, nil

	default:
		return nil, errDynamic
	}
}
