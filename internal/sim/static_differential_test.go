package sim_test

// Differential tests tying the three static-classification fronts
// together: the module-level lint (vstatic.AnalyzeModule over raw
// source), the design-level facts (Design.StaticFacts over the
// elaborated form), and the engine itself (CompileBatch's levelized
// flag). The run-once levelized schedule is only sound if these
// agree, so any widening of one front must be proven on the other
// two — across every dataset problem and a seeded mutant sweep.

import (
	"math/rand"
	"testing"

	"correctbench/internal/dataset"
	"correctbench/internal/mutate"
	"correctbench/internal/sim"
	"correctbench/internal/verilog"
	"correctbench/internal/vstatic"
)

// classifyModule runs the module-level analysis on src/top.
func classifyModule(t *testing.T, src, top string) *vstatic.Result {
	t.Helper()
	rs, err := vstatic.AnalyzeSource(src, top)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return rs[0]
}

func TestStaticClassificationAgreesOnAllGoldens(t *testing.T) {
	lev := 0
	for _, p := range dataset.All() {
		mr := classifyModule(t, p.Source, p.Top)
		d, err := p.Elaborate()
		if err != nil {
			t.Fatalf("%s: elaborate: %v", p.Name, err)
		}
		facts := d.StaticFacts()
		if mr.Levelizable != facts.Levelizable {
			t.Errorf("%s: module lint says levelizable=%v, design facts say %v (%s)",
				p.Name, mr.Levelizable, facts.Levelizable, facts.Reason)
		}
		if mr.CombProcs != facts.CombProcs || mr.StaticCombProcs != facts.StaticCombProcs {
			t.Errorf("%s: proc counts differ: module %d/%d vs design %d/%d",
				p.Name, mr.StaticCombProcs, mr.CombProcs, facts.StaticCombProcs, facts.CombProcs)
		}
		prog, err := sim.CompileBatch(d, nil)
		if err != nil {
			t.Fatalf("%s: CompileBatch: %v", p.Name, err)
		}
		if prog.Levelized() != facts.Levelizable {
			t.Errorf("%s: engine levelized=%v, static facts say %v",
				p.Name, prog.Levelized(), facts.Levelizable)
		}
		if facts.Levelizable {
			lev++
		}
	}
	// The bit-granular definite-assignment analysis covers the whole
	// dataset; a regression here silently slows the batch engine.
	if total := len(dataset.All()); lev != total {
		t.Errorf("levelized coverage %d/%d, want full coverage", lev, total)
	}
}

func TestStaticClassificationAgreesOnMutants(t *testing.T) {
	rng := rand.New(rand.NewSource(20250807))
	checked := 0
	for _, p := range dataset.All() {
		f, err := verilog.Parse(p.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		golden := f.Module(p.Top)
		for i := 0; i < 3; i++ {
			mut, applied := mutate.Mutate(golden, rng, 1)
			if len(applied) == 0 {
				break
			}
			src := verilog.PrintModule(mut)
			d, err := sim.ElaborateSource(src, p.Top)
			if err != nil {
				// Mutants the engine rejects are outside the contract.
				continue
			}
			mr := classifyModule(t, src, p.Top)
			facts := d.StaticFacts()
			if mr.Levelizable != facts.Levelizable {
				t.Errorf("%s mutant %d: module lint levelizable=%v, design facts %v (%s)\n%s",
					p.Name, i, mr.Levelizable, facts.Levelizable, facts.Reason, src)
				continue
			}
			prog, err := sim.CompileBatch(d, nil)
			if err != nil {
				t.Fatalf("%s mutant %d: CompileBatch: %v", p.Name, i, err)
			}
			if prog.Levelized() != facts.Levelizable {
				t.Errorf("%s mutant %d: engine levelized=%v, static facts %v\n%s",
					p.Name, i, prog.Levelized(), facts.Levelizable, src)
			}
			checked++
		}
	}
	if checked < 300 {
		t.Fatalf("mutant sweep too thin: only %d mutants checked", checked)
	}
}

// TestPreScreenRejectsOnlyUnkillableMutants drives the screened and
// unscreened generators from identical rng streams over the whole
// dataset and proves (a) they return byte-identical mutant lists —
// screening never changes selection — and (b) every rejected
// candidate is print-identical to the golden, i.e. elaborates to the
// very same design no engine could distinguish.
func TestPreScreenRejectsOnlyUnkillableMutants(t *testing.T) {
	differs := func(mutants []*verilog.Module) []mutate.DifferenceResult {
		// A deterministic stand-in checker: judged purely on printed
		// source, so screened and unscreened runs judge identically.
		out := make([]mutate.DifferenceResult, len(mutants))
		for i, m := range mutants {
			out[i] = mutate.DifferenceResult{Differs: len(verilog.PrintModule(m))%2 == 0}
		}
		return out
	}
	rejected := 0
	for _, p := range dataset.All() {
		f, err := verilog.Parse(p.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		golden := f.Module(p.Top)
		goldenSrc := verilog.PrintModule(golden)

		screen := mutate.NewScreen(golden)
		plain := mutate.DistinctMutantsBatch(golden, rand.New(rand.NewSource(7)), 6, 1, differs)
		screened := mutate.DistinctMutantsBatchScreened(golden, rand.New(rand.NewSource(7)), 6, 1, differs, screen)

		if len(plain) != len(screened) {
			t.Fatalf("%s: screened run returned %d mutants, unscreened %d", p.Name, len(screened), len(plain))
		}
		for i := range plain {
			if verilog.PrintModule(plain[i]) != verilog.PrintModule(screened[i]) {
				t.Fatalf("%s: mutant %d differs between screened and unscreened runs", p.Name, i)
			}
		}
		if screen.Stats.Identical > 0 {
			rejected += screen.Stats.Identical
			// Re-derive the rejected candidates and verify each one
			// elaborates from source byte-identical to the golden's.
			reRng := rand.New(rand.NewSource(7))
			seen := 0
			for attempt := 0; attempt < 6*20+20 && seen < screen.Stats.Candidates; attempt++ {
				mut, applied := mutate.Mutate(golden, reRng, 1)
				if len(applied) == 0 {
					break
				}
				seen++
				if verilog.PrintModule(mut) == goldenSrc {
					// The screen's whole rejection criterion: identical
					// print ⇒ identical elaboration input ⇒ identical
					// behavior under every engine.
					if _, err := sim.ElaborateSource(goldenSrc, p.Top); err != nil {
						t.Fatalf("%s: golden source stopped elaborating: %v", p.Name, err)
					}
				}
			}
		}
	}
	t.Logf("pre-screen rejected %d identity candidates across the dataset", rejected)
}
