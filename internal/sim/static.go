package sim

// StaticFacts summarizes the static classification of an elaborated
// design's combinational region, for benchmarks and diagnostics. It
// is derived from the same internal/vstatic analysis the batched
// scheduler uses, so Levelizable here is exactly the verdict
// CompileBatch acts on for a single-design batch.
type StaticFacts struct {
	// CombProcs counts combinational processes; StaticCombProcs the
	// subset proved pure functions of their sensitivity lists.
	CombProcs       int
	StaticCombProcs int
	// Levelizable reports whether the whole region admits the
	// run-once topological schedule.
	Levelizable bool
	// Reason carries the first disqualifying error when Levelizable
	// is false ("" otherwise).
	Reason string
}

// StaticFacts classifies d's combinational region without compiling
// a batch program.
func (d *Design) StaticFacts() StaticFacts {
	f := StaticFacts{CombProcs: len(d.combProcs)}
	region := designRegion(d)
	for _, pf := range region.Facts {
		if pf.Err == nil {
			f.StaticCombProcs++
		}
	}
	st, err := analyzeStatic(d)
	if err != nil {
		f.Reason = err.Error()
		return f
	}
	if _, ok := levelize(len(d.combProcs), []*combStatic{st}); !ok {
		f.Reason = "combinational dependency graph has a cycle"
		return f
	}
	f.Levelizable = true
	return f
}
