package sim

import (
	"fmt"
	"sort"
)

// The timed scheduler executes initial blocks and delay-driven always
// blocks (e.g. "always #5 clk = ~clk") with event-driven time. Each
// timed process runs on its own goroutine; the scheduler hands a single
// run token between them, so process bodies execute one at a time with
// channel-enforced happens-before edges (no locking of instance state
// is needed).

type yieldKind int

const (
	yieldWait yieldKind = iota
	yieldDone
	yieldFinish
	yieldError
)

type yieldMsg struct {
	kind yieldKind
	at   uint64
	err  error
}

type abortRequest struct{}

type timedProc struct {
	proc   *Process
	resume chan struct{}
	yield  chan yieldMsg
	abort  chan struct{}
	done   bool
}

// Run executes the instance's initial and timed-always processes until
// every initial block completes, $finish executes, or simulation time
// exceeds maxTime. Combinational logic and clocked processes react to
// every write, exactly as under the cycle API.
func Run(in *Instance, maxTime uint64) error {
	var procs []*timedProc
	for _, p := range in.design.Procs {
		if p.Kind != ProcInitial && p.Kind != ProcTimed {
			continue
		}
		tp := &timedProc{
			proc:   p,
			resume: make(chan struct{}),
			yield:  make(chan yieldMsg),
			abort:  make(chan struct{}),
		}
		procs = append(procs, tp)
		go runTimedProc(in, tp)
	}
	if len(procs) == 0 {
		return in.propagate()
	}
	defer func() {
		// Unblock any still-waiting goroutines.
		for _, tp := range procs {
			if !tp.done {
				close(tp.abort)
				<-tp.yield
			}
		}
		in.wait = nil
	}()

	if err := in.propagate(); err != nil {
		return err
	}

	// wake[t] lists processes scheduled at time t; all start at 0.
	wake := map[uint64][]*timedProc{0: nil}
	wake[0] = append(wake[0], procs...)

	for len(wake) > 0 {
		// A bound context (BindContext) cancels between time batches,
		// mirroring the cycle API's per-wave checks in propagate.
		if in.ctx != nil {
			if err := in.ctx.Err(); err != nil {
				return err
			}
		}
		// Earliest event time.
		times := make([]uint64, 0, len(wake))
		for t := range wake {
			times = append(times, t)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		t := times[0]
		if t > maxTime {
			return nil
		}
		in.Now = t
		batch := wake[t]
		delete(wake, t)

		for _, tp := range batch {
			if tp.done {
				continue
			}
			// Install this process's wait hook and hand over the token.
			tp := tp
			in.wait = func(n uint64) {
				tp.yield <- yieldMsg{kind: yieldWait, at: in.Now + n}
				select {
				case <-tp.resume:
				case <-tp.abort:
					panic(abortRequest{})
				}
			}
			tp.resume <- struct{}{}
			msg := <-tp.yield
			in.wait = nil
			switch msg.kind {
			case yieldWait:
				wake[msg.at] = append(wake[msg.at], tp)
			case yieldDone:
				tp.done = true
			case yieldFinish:
				tp.done = true
				in.Finished = true
				return in.propagate()
			case yieldError:
				tp.done = true
				return msg.err
			}
			if err := in.propagate(); err != nil {
				return err
			}
		}
	}
	return nil
}

func runTimedProc(in *Instance, tp *timedProc) {
	select {
	case <-tp.resume:
	case <-tp.abort:
		tp.yield <- yieldMsg{kind: yieldDone}
		return
	}
	defer func() {
		r := recover()
		switch r.(type) {
		case nil:
		case finishRequest:
			tp.yield <- yieldMsg{kind: yieldFinish}
		case abortRequest:
			tp.yield <- yieldMsg{kind: yieldDone}
		default:
			tp.yield <- yieldMsg{kind: yieldError, err: fmt.Errorf("sim: process %s panicked: %v", tp.proc.Name, r)}
		}
	}()
	if tp.proc.Kind == ProcTimed {
		// An always block without event control loops forever; the
		// abort channel (via wait) bounds it.
		for {
			if err := in.exec(tp.proc.Body); err != nil {
				tp.yield <- yieldMsg{kind: yieldError, err: err}
				return
			}
		}
	}
	err := in.exec(tp.proc.Body)
	if err != nil {
		tp.yield <- yieldMsg{kind: yieldError, err: err}
		return
	}
	tp.yield <- yieldMsg{kind: yieldDone}
}
