package sim

import (
	"fmt"
	"strings"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// execError aborts statement execution.
type execError struct{ err error }

const maxLoopIterations = 1 << 17

// finishRequest is panicked by $finish and recovered by the scheduler.
type finishRequest struct{}

// exec executes a statement against the instance. Blocking assignments
// write through immediately; non-blocking assignments are queued on the
// instance and applied by the caller at the end of the wave.
func (in *Instance) exec(s verilog.Stmt) error {
	switch x := s.(type) {
	case nil, *verilog.Null:
		return nil

	case *verilog.Block:
		for _, st := range x.Stmts {
			if err := in.exec(st); err != nil {
				return err
			}
		}
		return nil

	case *verilog.Assign:
		val, err := evalExpr(x.RHS, in, in.lhsWidth(x.LHS))
		if err != nil {
			return fmt.Errorf("%s: %v", x.Pos, err)
		}
		if x.NonBlocking {
			return in.queueNBA(x.LHS, val, x.Pos)
		}
		return in.writeLValue(x.LHS, val, x.Pos)

	case *verilog.If:
		c, err := evalExpr(x.Cond, in, 0)
		if err != nil {
			return err
		}
		if logic.Truth(c) == logic.L1 {
			return in.exec(x.Then)
		}
		// Unknown conditions take the else branch, per IEEE if-else
		// semantics (condition must be true to take the then branch).
		if x.Else != nil {
			return in.exec(x.Else)
		}
		return nil

	case *verilog.Case:
		sel, err := evalExpr(x.Expr, in, 0)
		if err != nil {
			return err
		}
		var deflt verilog.Stmt
		for _, item := range x.Items {
			if item.Exprs == nil {
				deflt = item.Body
				continue
			}
			for _, le := range item.Exprs {
				lv, err := evalExpr(le, in, 0)
				if err != nil {
					return err
				}
				var hit bool
				switch x.Kind {
				case verilog.CaseZ:
					hit = logic.CaseZMatch(sel, lv)
				case verilog.CaseX:
					hit = logic.CaseXMatch(sel, lv)
				default:
					hit = sel.SameValue(lv)
				}
				if hit {
					return in.exec(item.Body)
				}
			}
		}
		if deflt != nil {
			return in.exec(deflt)
		}
		return nil

	case *verilog.For:
		if err := in.exec(x.Init); err != nil {
			return err
		}
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return fmt.Errorf("for loop exceeded %d iterations", maxLoopIterations)
			}
			c, err := evalExpr(x.Cond, in, 0)
			if err != nil {
				return err
			}
			if logic.Truth(c) != logic.L1 {
				return nil
			}
			if err := in.exec(x.Body); err != nil {
				return err
			}
			if err := in.exec(x.Step); err != nil {
				return err
			}
		}

	case *verilog.Repeat:
		cv, err := evalExpr(x.Count, in, 0)
		if err != nil {
			return err
		}
		n, ok := cv.Uint64()
		if !ok {
			return nil // repeat (x) runs zero times
		}
		if n > maxLoopIterations {
			return fmt.Errorf("repeat count %d too large", n)
		}
		for i := uint64(0); i < n; i++ {
			if err := in.exec(x.Body); err != nil {
				return err
			}
		}
		return nil

	case *verilog.Delay:
		if in.wait == nil {
			return fmt.Errorf("delay control is only allowed in initial/timed processes")
		}
		av, err := evalExpr(x.Amount, in, 0)
		if err != nil {
			return err
		}
		n, _ := av.Uint64()
		in.wait(n)
		return in.exec(x.Body)

	case *verilog.SysCall:
		return in.sysCall(x)

	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
}

// lhsWidth computes the width of an assignment target, used as context
// width of the RHS.
func (in *Instance) lhsWidth(lhs verilog.Expr) int {
	switch x := lhs.(type) {
	case *verilog.Ident:
		if w, ok := in.signalWidth(x.Name); ok {
			return w
		}
		return 1
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		hi, lo := constUint(x.MSB, in), constUint(x.LSB, in)
		if hi < lo {
			hi, lo = lo, hi
		}
		return int(hi-lo) + 1
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			total += in.lhsWidth(p)
		}
		return total
	default:
		return 1
	}
}

// resolvedWrite is a fully resolved assignment target span.
type resolvedWrite struct {
	slot   int32
	hi, lo int
	val    logic.Vector
	whole  bool
}

// resolveLValue flattens an lvalue expression into concrete writes.
// Dynamic bit selects are resolved now (so NBA targets use the index at
// assignment time, per Verilog). Writes through unknown indexes are
// dropped.
func (in *Instance) resolveLValue(lhs verilog.Expr, val logic.Vector, pos verilog.Pos) ([]resolvedWrite, error) {
	switch x := lhs.(type) {
	case *verilog.Ident:
		slot, ok := in.design.slotOf[x.Name]
		if !ok {
			return nil, fmt.Errorf("%s: assignment to unknown signal %q", pos, x.Name)
		}
		return []resolvedWrite{{slot: int32(slot), val: val.Resize(in.design.slotWidths[slot]), whole: true}}, nil

	case *verilog.Index:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: nested select on non-identifier", pos)
		}
		slot, ok2 := in.design.slotOf[id.Name]
		if !ok2 {
			return nil, fmt.Errorf("%s: assignment to unknown signal %q", pos, id.Name)
		}
		idxV, err := evalExpr(x.Index, in, 0)
		if err != nil {
			return nil, err
		}
		idx, ok3 := idxV.Uint64()
		if !ok3 || idx >= uint64(in.design.slotWidths[slot]) {
			return nil, nil // write through unknown/out-of-range index: no-op
		}
		return []resolvedWrite{{slot: int32(slot), hi: int(idx), lo: int(idx), val: val.Resize(1)}}, nil

	case *verilog.PartSelect:
		id, ok := x.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: nested select on non-identifier", pos)
		}
		slot, ok2 := in.design.slotOf[id.Name]
		if !ok2 {
			return nil, fmt.Errorf("%s: assignment to unknown signal %q", pos, id.Name)
		}
		hiV, err := evalExpr(x.MSB, in, 0)
		if err != nil {
			return nil, err
		}
		loV, err := evalExpr(x.LSB, in, 0)
		if err != nil {
			return nil, err
		}
		hi, ok3 := hiV.Uint64()
		lo, ok4 := loV.Uint64()
		if !ok3 || !ok4 {
			return nil, nil
		}
		width := in.design.slotWidths[slot]
		h, l := int(hi), int(lo)
		if h < l {
			h, l = l, h
		}
		if l >= width {
			return nil, nil
		}
		if h >= width {
			h = width - 1
		}
		return []resolvedWrite{{slot: int32(slot), hi: h, lo: l, val: val.Resize(h - l + 1)}}, nil

	case *verilog.Concat:
		// {a, b} = val assigns the top bits to a, the low bits to b.
		var out []resolvedWrite
		offset := in.lhsWidth(lhs)
		for _, p := range x.Parts {
			w := in.lhsWidth(p)
			offset -= w
			part := logic.Slice(val.Resize(in.lhsWidth(lhs)), offset+w-1, offset)
			ws, err := in.resolveLValue(p, part, pos)
			if err != nil {
				return nil, err
			}
			out = append(out, ws...)
		}
		return out, nil

	default:
		return nil, fmt.Errorf("%s: invalid assignment target %T", pos, lhs)
	}
}

// writeLValue performs a blocking write.
func (in *Instance) writeLValue(lhs verilog.Expr, val logic.Vector, pos verilog.Pos) error {
	writes, err := in.resolveLValue(lhs, val, pos)
	if err != nil {
		return err
	}
	for _, w := range writes {
		in.applyWrite(w)
	}
	return nil
}

// queueNBA queues a non-blocking write.
func (in *Instance) queueNBA(lhs verilog.Expr, val logic.Vector, pos verilog.Pos) error {
	writes, err := in.resolveLValue(lhs, val, pos)
	if err != nil {
		return err
	}
	in.nba = append(in.nba, writes...)
	return nil
}

func (in *Instance) applyWrite(w resolvedWrite) {
	cur := in.vals[w.slot]
	var next logic.Vector
	if w.whole {
		next = w.val
	} else {
		next = cur.Resize(cur.Width())
		next.SetSlice(w.hi, w.lo, w.val)
	}
	if !next.Equal(cur) {
		in.vals[w.slot] = next
		in.markDirty(w.slot)
	}
}

// sysCall implements the supported system tasks.
func (in *Instance) sysCall(x *verilog.SysCall) error {
	switch x.Name {
	case "$finish", "$stop":
		if in.wait != nil {
			panic(finishRequest{})
		}
		in.Finished = true
		return nil
	case "$display", "$write", "$fdisplay", "$fwrite", "$strobe", "$monitor":
		args := x.Args
		if (x.Name == "$fdisplay" || x.Name == "$fwrite") && len(args) > 0 {
			args = args[1:] // drop file descriptor
		}
		text, err := in.formatArgs(args)
		if err != nil {
			return err
		}
		if x.Name == "$write" || x.Name == "$fwrite" {
			fmt.Fprint(in.Stdout, text)
		} else {
			fmt.Fprintln(in.Stdout, text)
		}
		return nil
	case "$time", "$random", "$dumpfile", "$dumpvars", "$timeformat":
		return nil // accepted, no effect in this simulator
	default:
		return fmt.Errorf("%s: unsupported system task %s", x.Pos, x.Name)
	}
}

// formatArgs renders $display-style arguments: an optional leading
// format string with %d/%b/%h/%0d/%t/%s verbs, remaining values
// rendered as decimals.
func (in *Instance) formatArgs(args []verilog.Expr) (string, error) {
	if len(args) == 0 {
		return "", nil
	}
	var sb strings.Builder
	rest := args
	if lit, ok := args[0].(*verilog.StringLit); ok {
		rest = args[1:]
		f := lit.Value
		argi := 0
		for i := 0; i < len(f); i++ {
			c := f[i]
			if c == '\\' && i+1 < len(f) {
				i++
				switch f[i] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(f[i])
				}
				continue
			}
			if c != '%' {
				sb.WriteByte(c)
				continue
			}
			// Parse verb, skipping width/zero flags.
			j := i + 1
			for j < len(f) && (f[j] >= '0' && f[j] <= '9') {
				j++
			}
			if j >= len(f) {
				sb.WriteByte('%')
				break
			}
			verb := f[j]
			i = j
			if verb == '%' {
				sb.WriteByte('%')
				continue
			}
			if verb == 't' || verb == 'T' {
				sb.WriteString(fmt.Sprintf("%d", in.Now))
				continue
			}
			if argi >= len(rest) {
				sb.WriteString("<missing>")
				continue
			}
			v, err := evalExpr(rest[argi], in, 0)
			if err != nil {
				return "", err
			}
			argi++
			sb.WriteString(formatVector(v, verb))
		}
		for ; argi < len(rest); argi++ {
			v, err := evalExpr(rest[argi], in, 0)
			if err != nil {
				return "", err
			}
			sb.WriteString(" " + formatVector(v, 'd'))
		}
		return sb.String(), nil
	}
	// No format string: print all values as decimals.
	parts := make([]string, 0, len(rest))
	for _, a := range rest {
		v, err := evalExpr(a, in, 0)
		if err != nil {
			return "", err
		}
		parts = append(parts, formatVector(v, 'd'))
	}
	return strings.Join(parts, " "), nil
}

func formatVector(v logic.Vector, verb byte) string {
	switch verb {
	case 'b', 'B':
		return v.String()
	case 'h', 'H', 'x', 'X':
		if u, ok := v.Uint64(); ok {
			return fmt.Sprintf("%x", u)
		}
		return strings.Repeat("x", (v.Width()+3)/4)
	case 'd', 'D', 's', 'S', 'c', 'C':
		if u, ok := v.Uint64(); ok {
			return fmt.Sprintf("%d", u)
		}
		return "x"
	default:
		return v.String()
	}
}
