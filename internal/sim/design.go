// Package sim elaborates parsed Verilog into a flat design and
// simulates it with four-state, event-driven semantics. Together with
// internal/verilog it is this repository's stand-in for Icarus Verilog:
// parse errors and elaboration errors model "syntax failed" (Eval0),
// and the Instance API supplies cycle-accurate outputs for testbench
// validation, RS-matrix construction and mutant evaluation.
//
// The simulator supports two driving styles:
//
//   - the cycle API (SetInput / Settle / Tick) used by the testbench
//     framework, with full edge detection including asynchronous sets
//     and resets, and
//   - a timed scheduler (Run) that executes initial blocks and
//     delay-driven always blocks, used by cmd/vsim.
package sim

import (
	"context"
	"fmt"
	"sort"

	"correctbench/internal/logic"
	"correctbench/internal/obs"
	"correctbench/internal/verilog"
)

// ElabError is an elaboration (semantic) error.
type ElabError struct {
	Pos verilog.Pos
	Msg string
}

func (e *ElabError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func elabErrf(pos verilog.Pos, format string, args ...interface{}) error {
	return &ElabError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// PortDir is a port direction in the elaborated design.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
	InOut
)

func (d PortDir) String() string {
	switch d {
	case In:
		return "input"
	case Out:
		return "output"
	default:
		return "inout"
	}
}

// Port describes a top-level port of the elaborated design.
type Port struct {
	Name  string
	Dir   PortDir
	Width int
}

// Signal is a named state element (net, variable or flattened child
// signal).
type Signal struct {
	Name  string
	Width int
	IsVar bool // reg/integer (procedurally assigned)
}

// ProcKind classifies processes.
type ProcKind int

// Process kinds.
const (
	ProcComb    ProcKind = iota // continuous assign or always @(*) / level list
	ProcSeq                     // edge-triggered always
	ProcInitial                 // initial block (timed scheduler only)
	ProcTimed                   // always block with no event control (delay loop)
)

// SensEntry is an elaborated sensitivity entry.
type SensEntry struct {
	Edge verilog.EdgeKind
	Sig  string
}

// Process is an executable process of the flat design.
type Process struct {
	Kind ProcKind
	Sens []SensEntry // seq: edge list; comb: read set
	Body verilog.Stmt
	Name string // diagnostic label

	// Compiled artifacts, filled by Design.finalize. code is the
	// slot-indexed compiled program (nil when the body is not
	// statically compilable and stays on the AST interpreter);
	// edgeSens is Sens resolved to dense edge-watch indices.
	code     compiledStmt
	edgeSens []edgeSens
}

// Compiled reports whether the process body was compiled to a
// slot-indexed program (false = AST-interpreted even under
// EngineCompiled).
func (p *Process) Compiled() bool { return p.code != nil }

// Design is an elaborated, flattened module hierarchy.
type Design struct {
	Top     string
	Ports   []Port
	Signals map[string]*Signal
	Order   []string // deterministic signal order
	Procs   []*Process
	Params  map[string]logic.Vector // resolved constants (top level)

	// Slot resolution and process indexes, built by finalize: every
	// signal name maps to a dense slot, and the scheduling structures
	// the per-step hot path needs are precomputed here instead of per
	// Instance.
	slotOf     map[string]int
	slotWidths []int      // per slot
	combProcs  []*Process // ProcComb subset, design order
	seqProcs   []*Process // ProcSeq subset, design order
	combBySlot [][]int32  // slot -> ordinals into combProcs
	edgeSlots  []int32    // slots watched by seq sensitivity lists
}

// Port returns the named top-level port, or nil.
func (d *Design) Port(name string) *Port {
	for i := range d.Ports {
		if d.Ports[i].Name == name {
			return &d.Ports[i]
		}
	}
	return nil
}

// Elaborate flattens the hierarchy rooted at module top.
func Elaborate(file *verilog.SourceFile, top string) (*Design, error) {
	return ElaborateContext(context.Background(), file, top)
}

// ElaborateContext is Elaborate with phase timing: when ctx carries an
// obs collector (obs.WithCollector), the hierarchy flattening records
// a sim_elaborate span and the compile step (scheduling structures,
// levelization inputs) a sim_compile span. Without a collector the
// timing hooks are no-ops and the function is exactly Elaborate.
func ElaborateContext(ctx context.Context, file *verilog.SourceFile, top string) (*Design, error) {
	endElab := obs.Time(ctx, obs.PhaseElaborate)
	mod := file.Module(top)
	if mod == nil {
		endElab()
		return nil, elabErrf(verilog.Pos{Line: 1, Col: 1}, "top module %q not found", top)
	}
	d := &Design{
		Top:     top,
		Signals: map[string]*Signal{},
		Params:  map[string]logic.Vector{},
	}
	e := &elaborator{file: file, design: d, depth: 0}
	if err := e.module(mod, "", nil, true); err != nil {
		endElab()
		return nil, err
	}
	sort.Strings(d.Order)
	endElab()
	endCompile := obs.Time(ctx, obs.PhaseCompile)
	d.finalize()
	endCompile()
	return d, nil
}

// ElaborateSource parses and elaborates in one step.
func ElaborateSource(src, top string) (*Design, error) {
	return ElaborateSourceContext(context.Background(), src, top)
}

// ElaborateSourceContext is ElaborateSource with the phase timing of
// ElaborateContext.
func ElaborateSourceContext(ctx context.Context, src, top string) (*Design, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return ElaborateContext(ctx, f, top)
}

type elaborator struct {
	file   *verilog.SourceFile
	design *Design
	depth  int
}

const maxDepth = 16

// module elaborates one module under the given instance prefix.
// paramOverrides maps parameter names to override expressions already
// evaluated in the parent scope.
func (e *elaborator) module(m *verilog.Module, prefix string, paramOverrides map[string]logic.Vector, isTop bool) error {
	if e.depth > maxDepth {
		return elabErrf(m.Pos, "instantiation depth exceeds %d (recursive hierarchy?)", maxDepth)
	}

	// Pass 1: resolve parameters in declaration order.
	params := map[string]logic.Vector{}
	for _, it := range m.Items {
		d, ok := it.(*verilog.Decl)
		if !ok || (d.Kind != verilog.DeclParameter && d.Kind != verilog.DeclLocalparam) {
			continue
		}
		name := d.Names[0]
		if ov, ok := paramOverrides[name]; ok && d.Kind == verilog.DeclParameter {
			params[name] = ov
			continue
		}
		v, err := e.constEval(d.Init, params, d.Pos)
		if err != nil {
			return err
		}
		params[name] = v
	}
	if isTop {
		e.design.Params = params
	}

	// Pass 2: declare signals.
	declared := map[string]bool{}
	for _, it := range m.Items {
		d, ok := it.(*verilog.Decl)
		if !ok || d.Kind == verilog.DeclParameter || d.Kind == verilog.DeclLocalparam {
			continue
		}
		width := 1
		if d.Kind == verilog.DeclInteger {
			width = 32
		}
		if d.Range != nil {
			w, err := e.rangeWidth(d.Range, params, d.Pos)
			if err != nil {
				return err
			}
			width = w
		}
		isVar := d.Kind == verilog.DeclReg || d.Kind == verilog.DeclInteger || d.IsReg
		for _, n := range d.Names {
			full := prefix + n
			if prev, exists := e.design.Signals[full]; exists {
				// Merging is allowed when a port is re-declared as
				// reg/wire in the body (classic style); widths must
				// agree.
				if prev.Width != width {
					return elabErrf(d.Pos, "conflicting widths for %s: %d vs %d", n, prev.Width, width)
				}
				prev.IsVar = prev.IsVar || isVar
				continue
			}
			if declared[n] {
				return elabErrf(d.Pos, "duplicate declaration of %s", n)
			}
			e.design.Signals[full] = &Signal{Name: full, Width: width, IsVar: isVar}
			e.design.Order = append(e.design.Order, full)
			if isTop && d.Kind.IsPort() {
				dir := In
				switch d.Kind {
				case verilog.DeclOutput:
					dir = Out
				case verilog.DeclInout:
					dir = InOut
				}
				e.design.Ports = append(e.design.Ports, Port{Name: n, Dir: dir, Width: width})
			}
		}
	}

	// Classic-style headers declare ports only by name; make sure every
	// header port ended up with a declaration.
	for _, n := range m.PortOrder {
		if e.design.Signals[prefix+n] == nil {
			return elabErrf(m.Pos, "port %s of module %s has no declaration", n, m.Name)
		}
	}

	// Pass 3: processes and instances.
	sub := &scopedElab{e: e, prefix: prefix, params: params, module: m}
	for _, it := range m.Items {
		switch x := it.(type) {
		case *verilog.ContAssign:
			if err := sub.contAssign(x); err != nil {
				return err
			}
		case *verilog.Always:
			if err := sub.always(x); err != nil {
				return err
			}
		case *verilog.Initial:
			body, err := sub.rewriteStmt(x.Body)
			if err != nil {
				return err
			}
			e.design.Procs = append(e.design.Procs, &Process{
				Kind: ProcInitial, Body: body, Name: prefix + "initial",
			})
		case *verilog.Instance:
			if err := sub.instance(x); err != nil {
				return err
			}
		}
	}
	return nil
}

// scopedElab carries per-module state while rewriting bodies into the
// flat namespace.
type scopedElab struct {
	e      *elaborator
	prefix string
	params map[string]logic.Vector
	module *verilog.Module
}

func (s *scopedElab) contAssign(ca *verilog.ContAssign) error {
	lhs, err := s.rewriteExpr(ca.LHS)
	if err != nil {
		return err
	}
	rhs, err := s.rewriteExpr(ca.RHS)
	if err != nil {
		return err
	}
	if err := s.checkLValue(lhs, ca.Pos, false); err != nil {
		return err
	}
	body := &verilog.Assign{LHS: lhs, RHS: rhs, Pos: ca.Pos}
	s.e.design.Procs = append(s.e.design.Procs, &Process{
		Kind: ProcComb,
		Sens: readSet(body),
		Body: body,
		Name: s.prefix + "assign " + verilog.ExprString(lhs),
	})
	return nil
}

func (s *scopedElab) always(a *verilog.Always) error {
	body, err := s.rewriteStmt(a.Body)
	if err != nil {
		return err
	}
	switch {
	case a.Star || allLevel(a.Sens):
		p := &Process{Kind: ProcComb, Body: body, Name: s.prefix + "always@*"}
		if a.Star {
			p.Sens = readSetExcludingTargets(body)
		} else {
			for _, se := range a.Sens {
				p.Sens = append(p.Sens, SensEntry{Edge: verilog.EdgeNone, Sig: s.prefix + se.Sig})
			}
		}
		s.e.design.Procs = append(s.e.design.Procs, p)
	case len(a.Sens) == 0:
		// "always" with no event control: legal only with a delay body
		// (timed scheduler).
		if _, ok := firstDelay(body); !ok {
			return elabErrf(a.Pos, "always block without event control or delay")
		}
		s.e.design.Procs = append(s.e.design.Procs, &Process{
			Kind: ProcTimed, Body: body, Name: s.prefix + "always#",
		})
	default:
		p := &Process{Kind: ProcSeq, Body: body, Name: s.prefix + "always@edge"}
		for _, se := range a.Sens {
			if se.Edge == verilog.EdgeNone {
				return elabErrf(a.Pos, "mixed edge and level sensitivity is not supported")
			}
			sig := s.prefix + se.Sig
			if s.e.design.Signals[sig] == nil {
				return elabErrf(a.Pos, "unknown signal %s in sensitivity list", se.Sig)
			}
			p.Sens = append(p.Sens, SensEntry{Edge: se.Edge, Sig: sig})
		}
		s.e.design.Procs = append(s.e.design.Procs, p)
	}
	return nil
}

func allLevel(sens []verilog.SensItem) bool {
	if len(sens) == 0 {
		return false
	}
	for _, s := range sens {
		if s.Edge != verilog.EdgeNone {
			return false
		}
	}
	return true
}

func firstDelay(s verilog.Stmt) (*verilog.Delay, bool) {
	switch x := s.(type) {
	case *verilog.Delay:
		return x, true
	case *verilog.Block:
		if len(x.Stmts) > 0 {
			return firstDelay(x.Stmts[0])
		}
	}
	return nil, false
}

func (s *scopedElab) instance(inst *verilog.Instance) error {
	child := s.e.file.Module(inst.Module)
	if child == nil {
		return elabErrf(inst.Pos, "unknown module %q", inst.Module)
	}
	// Evaluate parameter overrides in the parent scope.
	overrides := map[string]logic.Vector{}
	paramNames := childParamNames(child)
	for i, c := range inst.Params {
		name := c.Name
		if name == "" {
			if i >= len(paramNames) {
				return elabErrf(inst.Pos, "too many positional parameters for %s", inst.Module)
			}
			name = paramNames[i]
		}
		v, err := s.e.constEval(c.Expr, s.params, inst.Pos)
		if err != nil {
			return err
		}
		overrides[name] = v
	}

	childPrefix := s.prefix + inst.Name + "."
	s.e.depth++
	err := s.e.module(child, childPrefix, overrides, false)
	s.e.depth--
	if err != nil {
		return err
	}

	// Connect ports.
	ports := child.Ports()
	var flatNames []string
	var flatDirs []verilog.DeclKind
	for _, pd := range ports {
		for _, n := range pd.Names {
			flatNames = append(flatNames, n)
			flatDirs = append(flatDirs, pd.Kind)
		}
	}
	// Respect header order when available.
	if len(child.PortOrder) == len(flatNames) {
		dirByName := map[string]verilog.DeclKind{}
		for i, n := range flatNames {
			dirByName[n] = flatDirs[i]
		}
		flatNames = append([]string(nil), child.PortOrder...)
		flatDirs = flatDirs[:0]
		for _, n := range flatNames {
			flatDirs = append(flatDirs, dirByName[n])
		}
	}

	for i, c := range inst.Conns {
		var portName string
		var dir verilog.DeclKind
		if c.Name != "" {
			idx := indexOf(flatNames, c.Name)
			if idx < 0 {
				return elabErrf(inst.Pos, "module %s has no port %q", inst.Module, c.Name)
			}
			portName, dir = flatNames[idx], flatDirs[idx]
		} else {
			if i >= len(flatNames) {
				return elabErrf(inst.Pos, "too many positional connections for %s", inst.Module)
			}
			portName, dir = flatNames[i], flatDirs[i]
		}
		if c.Expr == nil {
			continue // unconnected port
		}
		parentExpr, err := s.rewriteExpr(c.Expr)
		if err != nil {
			return err
		}
		childSig := childPrefix + portName
		switch dir {
		case verilog.DeclInput:
			body := &verilog.Assign{LHS: &verilog.Ident{Name: childSig}, RHS: parentExpr, Pos: inst.Pos}
			s.e.design.Procs = append(s.e.design.Procs, &Process{
				Kind: ProcComb, Sens: readSet(body), Body: body,
				Name: childSig + " (port input)",
			})
		case verilog.DeclOutput:
			if err := s.checkLValue(parentExpr, inst.Pos, false); err != nil {
				return err
			}
			body := &verilog.Assign{LHS: parentExpr, RHS: &verilog.Ident{Name: childSig}, Pos: inst.Pos}
			s.e.design.Procs = append(s.e.design.Procs, &Process{
				Kind: ProcComb, Sens: readSet(body), Body: body,
				Name: childSig + " (port output)",
			})
		default:
			return elabErrf(inst.Pos, "inout ports are not supported in instances")
		}
	}
	return nil
}

func childParamNames(m *verilog.Module) []string {
	var out []string
	for _, it := range m.Items {
		if d, ok := it.(*verilog.Decl); ok && d.Kind == verilog.DeclParameter {
			out = append(out, d.Names[0])
		}
	}
	return out
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// rewriteExpr maps identifiers into the flat namespace, substituting
// parameters by their constant values.
func (s *scopedElab) rewriteExpr(e verilog.Expr) (verilog.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *verilog.Ident:
		if v, ok := s.params[x.Name]; ok {
			return &verilog.Number{Width: v.Width(), Val: v}, nil
		}
		full := s.prefix + x.Name
		if s.e.design.Signals[full] == nil {
			return nil, elabErrf(x.Pos, "undeclared identifier %q", x.Name)
		}
		return &verilog.Ident{Name: full, Pos: x.Pos}, nil
	case *verilog.Number, *verilog.StringLit:
		return e, nil
	case *verilog.Unary:
		in, err := s.rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &verilog.Unary{Op: x.Op, X: in}, nil
	case *verilog.Binary:
		l, err := s.rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		r, err := s.rewriteExpr(x.Y)
		if err != nil {
			return nil, err
		}
		return &verilog.Binary{Op: x.Op, X: l, Y: r, Pos: x.Pos}, nil
	case *verilog.Ternary:
		c, err := s.rewriteExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		th, err := s.rewriteExpr(x.Then)
		if err != nil {
			return nil, err
		}
		el, err := s.rewriteExpr(x.Else)
		if err != nil {
			return nil, err
		}
		return &verilog.Ternary{Cond: c, Then: th, Else: el}, nil
	case *verilog.Concat:
		out := &verilog.Concat{}
		for _, p := range x.Parts {
			rp, err := s.rewriteExpr(p)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, rp)
		}
		return out, nil
	case *verilog.Repl:
		cnt, err := s.rewriteExpr(x.Count)
		if err != nil {
			return nil, err
		}
		val, err := s.rewriteExpr(x.Value)
		if err != nil {
			return nil, err
		}
		return &verilog.Repl{Count: cnt, Value: val}, nil
	case *verilog.Index:
		in, err := s.rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := s.rewriteExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return &verilog.Index{X: in, Index: idx}, nil
	case *verilog.PartSelect:
		in, err := s.rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		msb, err := s.rewriteExpr(x.MSB)
		if err != nil {
			return nil, err
		}
		lsb, err := s.rewriteExpr(x.LSB)
		if err != nil {
			return nil, err
		}
		return &verilog.PartSelect{X: in, MSB: msb, LSB: lsb}, nil
	default:
		return nil, elabErrf(verilog.Pos{}, "unsupported expression %T", e)
	}
}

func (s *scopedElab) rewriteStmt(st verilog.Stmt) (verilog.Stmt, error) {
	switch x := st.(type) {
	case nil:
		return nil, nil
	case *verilog.Null:
		return x, nil
	case *verilog.Block:
		out := &verilog.Block{Name: x.Name}
		for _, sub := range x.Stmts {
			rs, err := s.rewriteStmt(sub)
			if err != nil {
				return nil, err
			}
			out.Stmts = append(out.Stmts, rs)
		}
		return out, nil
	case *verilog.Assign:
		lhs, err := s.rewriteExpr(x.LHS)
		if err != nil {
			return nil, err
		}
		if err := s.checkLValue(lhs, x.Pos, true); err != nil {
			return nil, err
		}
		rhs, err := s.rewriteExpr(x.RHS)
		if err != nil {
			return nil, err
		}
		return &verilog.Assign{LHS: lhs, RHS: rhs, NonBlocking: x.NonBlocking, Pos: x.Pos}, nil
	case *verilog.If:
		c, err := s.rewriteExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		th, err := s.rewriteStmt(x.Then)
		if err != nil {
			return nil, err
		}
		el, err := s.rewriteStmt(x.Else)
		if err != nil {
			return nil, err
		}
		return &verilog.If{Cond: c, Then: th, Else: el}, nil
	case *verilog.Case:
		sel, err := s.rewriteExpr(x.Expr)
		if err != nil {
			return nil, err
		}
		out := &verilog.Case{Kind: x.Kind, Expr: sel}
		for _, item := range x.Items {
			var exprs []verilog.Expr
			for _, e := range item.Exprs {
				re, err := s.rewriteExpr(e)
				if err != nil {
					return nil, err
				}
				exprs = append(exprs, re)
			}
			body, err := s.rewriteStmt(item.Body)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, verilog.CaseItem{Exprs: exprs, Body: body})
		}
		return out, nil
	case *verilog.For:
		init, err := s.rewriteStmt(x.Init)
		if err != nil {
			return nil, err
		}
		cond, err := s.rewriteExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		step, err := s.rewriteStmt(x.Step)
		if err != nil {
			return nil, err
		}
		body, err := s.rewriteStmt(x.Body)
		if err != nil {
			return nil, err
		}
		return &verilog.For{Init: init.(*verilog.Assign), Cond: cond, Step: step.(*verilog.Assign), Body: body}, nil
	case *verilog.Repeat:
		cnt, err := s.rewriteExpr(x.Count)
		if err != nil {
			return nil, err
		}
		body, err := s.rewriteStmt(x.Body)
		if err != nil {
			return nil, err
		}
		return &verilog.Repeat{Count: cnt, Body: body}, nil
	case *verilog.Delay:
		amt, err := s.rewriteExpr(x.Amount)
		if err != nil {
			return nil, err
		}
		body, err := s.rewriteStmt(x.Body)
		if err != nil {
			return nil, err
		}
		return &verilog.Delay{Amount: amt, Body: body}, nil
	case *verilog.SysCall:
		out := &verilog.SysCall{Name: x.Name, Pos: x.Pos}
		for _, a := range x.Args {
			if _, ok := a.(*verilog.StringLit); ok {
				out.Args = append(out.Args, a)
				continue
			}
			ra, err := s.rewriteExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	default:
		return nil, elabErrf(verilog.Pos{}, "unsupported statement %T", st)
	}
}

// checkLValue verifies that an already-rewritten expression is a legal
// assignment target. procedural selects whether reg-ness is required.
func (s *scopedElab) checkLValue(lhs verilog.Expr, pos verilog.Pos, procedural bool) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig := s.e.design.Signals[x.Name]
		if sig == nil {
			return elabErrf(pos, "assignment to undeclared %q", x.Name)
		}
		if procedural && !sig.IsVar {
			return elabErrf(pos, "procedural assignment to wire %q (declare it reg)", x.Name)
		}
		if !procedural && sig.IsVar {
			return elabErrf(pos, "continuous assignment to reg %q", x.Name)
		}
		return nil
	case *verilog.Index:
		return s.checkLValue(x.X, pos, procedural)
	case *verilog.PartSelect:
		return s.checkLValue(x.X, pos, procedural)
	case *verilog.Concat:
		for _, p := range x.Parts {
			if err := s.checkLValue(p, pos, procedural); err != nil {
				return err
			}
		}
		return nil
	default:
		return elabErrf(pos, "invalid assignment target")
	}
}

// readSet computes the level-sensitivity set of a statement: every
// identifier read anywhere in it (conservative: includes LHS index
// expressions; excludes pure LHS targets).
func readSet(body verilog.Stmt) []SensEntry {
	seen := map[string]bool{}
	var addExpr func(e verilog.Expr)
	addExpr = func(e verilog.Expr) {
		verilog.WalkExprs(e, func(x verilog.Expr) {
			if id, ok := x.(*verilog.Ident); ok {
				seen[id.Name] = true
			}
		})
	}
	var addLHSIndexes func(e verilog.Expr)
	addLHSIndexes = func(e verilog.Expr) {
		switch x := e.(type) {
		case *verilog.Index:
			addLHSIndexes(x.X)
			addExpr(x.Index)
		case *verilog.PartSelect:
			addLHSIndexes(x.X)
			addExpr(x.MSB)
			addExpr(x.LSB)
		case *verilog.Concat:
			for _, p := range x.Parts {
				addLHSIndexes(p)
			}
		}
	}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		switch x := s.(type) {
		case *verilog.Assign:
			addExpr(x.RHS)
			addLHSIndexes(x.LHS)
		case *verilog.If:
			addExpr(x.Cond)
		case *verilog.Case:
			addExpr(x.Expr)
			for _, item := range x.Items {
				for _, e := range item.Exprs {
					addExpr(e)
				}
			}
		case *verilog.For:
			addExpr(x.Cond)
		case *verilog.Repeat:
			addExpr(x.Count)
		case *verilog.SysCall:
			for _, a := range x.Args {
				addExpr(a)
			}
		}
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SensEntry, len(names))
	for i, n := range names {
		out[i] = SensEntry{Edge: verilog.EdgeNone, Sig: n}
	}
	return out
}

// readSetExcludingTargets is readSet minus the signals the statement
// itself assigns. An always @(*) process that reads a signal it also
// writes (loop counters, read-modify-write outputs, latch holds) must
// not re-trigger on its own writes, or combinational settling would
// never reach a fixpoint.
func readSetExcludingTargets(body verilog.Stmt) []SensEntry {
	targets := map[string]bool{}
	verilog.WalkStmts(body, func(s verilog.Stmt) {
		if a, ok := s.(*verilog.Assign); ok {
			for _, n := range verilog.LHSTargets(a.LHS) {
				targets[n] = true
			}
		}
	})
	var out []SensEntry
	for _, se := range readSet(body) {
		if !targets[se.Sig] {
			out = append(out, se)
		}
	}
	return out
}

// constEval evaluates a constant expression during elaboration.
func (e *elaborator) constEval(expr verilog.Expr, params map[string]logic.Vector, pos verilog.Pos) (logic.Vector, error) {
	if expr == nil {
		return logic.Vector{}, elabErrf(pos, "missing constant expression")
	}
	env := constEnv{params: params}
	v, err := evalExpr(expr, env, 0)
	if err != nil {
		return logic.Vector{}, elabErrf(pos, "constant expression: %v", err)
	}
	return v, nil
}

func (e *elaborator) rangeWidth(r *verilog.Range, params map[string]logic.Vector, pos verilog.Pos) (int, error) {
	msbV, err := e.constEval(r.MSB, params, pos)
	if err != nil {
		return 0, err
	}
	lsbV, err := e.constEval(r.LSB, params, pos)
	if err != nil {
		return 0, err
	}
	msb, ok1 := msbV.Uint64()
	lsb, ok2 := lsbV.Uint64()
	if !ok1 || !ok2 {
		return 0, elabErrf(pos, "range bounds must be fully defined")
	}
	if lsb != 0 {
		return 0, elabErrf(pos, "only [msb:0] ranges are supported (got lsb=%d)", lsb)
	}
	if msb > 4095 {
		return 0, elabErrf(pos, "vector too wide (%d bits)", msb+1)
	}
	return int(msb) + 1, nil
}

// constEnv resolves only parameters; any signal reference is an error.
type constEnv struct {
	params map[string]logic.Vector
}

func (c constEnv) readSignal(name string) (logic.Vector, error) {
	if v, ok := c.params[name]; ok {
		return v, nil
	}
	return logic.Vector{}, fmt.Errorf("%q is not a constant", name)
}

func (c constEnv) signalWidth(name string) (int, bool) {
	if v, ok := c.params[name]; ok {
		return v.Width(), true
	}
	return 0, false
}
