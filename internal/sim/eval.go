package sim

import (
	"fmt"

	"correctbench/internal/logic"
	"correctbench/internal/verilog"
)

// env supplies signal values and widths to expression evaluation.
type env interface {
	readSignal(name string) (logic.Vector, error)
	signalWidth(name string) (int, bool)
}

// selfWidth computes the self-determined width of an expression,
// following IEEE 1364 table 5-22. Unknown identifiers report width 1;
// evaluation will fail on them with a proper error.
func selfWidth(e verilog.Expr, en env) int {
	switch x := e.(type) {
	case *verilog.Number:
		if x.Width == 0 {
			return 32
		}
		return x.Width
	case *verilog.StringLit:
		return 8 * len(x.Value)
	case *verilog.Ident:
		if w, ok := en.signalWidth(x.Name); ok {
			return w
		}
		return 1
	case *verilog.Unary:
		switch x.Op {
		case "~", "-":
			return selfWidth(x.X, en)
		default: // reductions and !
			return 1
		}
	case *verilog.Binary:
		switch x.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			l, r := selfWidth(x.X, en), selfWidth(x.Y, en)
			if r > l {
				return r
			}
			return l
		case "<<", ">>", ">>>", "<<<", "**":
			return selfWidth(x.X, en)
		default: // comparisons and logical ops
			return 1
		}
	case *verilog.Ternary:
		l, r := selfWidth(x.Then, en), selfWidth(x.Else, en)
		if r > l {
			return r
		}
		return l
	case *verilog.Concat:
		total := 0
		for _, p := range x.Parts {
			total += selfWidth(p, en)
		}
		if total == 0 {
			return 1
		}
		return total
	case *verilog.Repl:
		n := constUint(x.Count, en)
		if n < 1 {
			n = 1
		}
		return int(n) * selfWidth(x.Value, en)
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		hi, lo := constUint(x.MSB, en), constUint(x.LSB, en)
		if hi < lo {
			hi, lo = lo, hi
		}
		return int(hi-lo) + 1
	default:
		return 1
	}
}

// constUint evaluates an expression that should be constant in context
// (replication counts, part-select bounds); 0 on failure — the caller
// reports the error during real evaluation.
func constUint(e verilog.Expr, en env) uint64 {
	v, err := evalExpr(e, en, 0)
	if err != nil {
		return 0
	}
	u, ok := v.Uint64()
	if !ok {
		return 0
	}
	return u
}

// evalExpr evaluates e. ctx is the context width imposed by the
// surrounding assignment or operation; 0 means self-determined. The
// result always has width max(ctx, selfWidth).
func evalExpr(e verilog.Expr, en env, ctx int) (logic.Vector, error) {
	want := selfWidth(e, en)
	if ctx > want {
		want = ctx
	}
	switch x := e.(type) {
	case *verilog.Number:
		return x.Val.Resize(want), nil

	case *verilog.StringLit:
		return logic.Vector{}, fmt.Errorf("string literal in value context")

	case *verilog.Ident:
		v, err := en.readSignal(x.Name)
		if err != nil {
			return logic.Vector{}, err
		}
		return v.Resize(want), nil

	case *verilog.Unary:
		switch x.Op {
		case "~":
			v, err := evalExpr(x.X, en, want)
			if err != nil {
				return logic.Vector{}, err
			}
			return logic.NotV(v).Resize(want), nil
		case "-":
			v, err := evalExpr(x.X, en, want)
			if err != nil {
				return logic.Vector{}, err
			}
			return logic.Neg(v).Resize(want), nil
		case "!":
			v, err := evalExpr(x.X, en, 0)
			if err != nil {
				return logic.Vector{}, err
			}
			return logic.Not(v).Resize(want), nil
		case "&", "|", "^", "~&", "~|", "~^", "^~":
			v, err := evalExpr(x.X, en, 0)
			if err != nil {
				return logic.Vector{}, err
			}
			var r logic.Vector
			switch x.Op {
			case "&":
				r = logic.RedAnd(v)
			case "|":
				r = logic.RedOr(v)
			case "^":
				r = logic.RedXor(v)
			case "~&":
				r = logic.RedNand(v)
			case "~|":
				r = logic.RedNor(v)
			default:
				r = logic.RedXnor(v)
			}
			return r.Resize(want), nil
		default:
			return logic.Vector{}, fmt.Errorf("unsupported unary operator %q", x.Op)
		}

	case *verilog.Binary:
		return evalBinary(x, en, want)

	case *verilog.Ternary:
		c, err := evalExpr(x.Cond, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		t, err := evalExpr(x.Then, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		f, err := evalExpr(x.Else, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		return logic.Mux(c, t, f).Resize(want), nil

	case *verilog.Concat:
		parts := make([]logic.Vector, len(x.Parts))
		for i, p := range x.Parts {
			v, err := evalExpr(p, en, 0)
			if err != nil {
				return logic.Vector{}, err
			}
			parts[i] = v
		}
		return logic.Concat(parts...).Resize(want), nil

	case *verilog.Repl:
		nV, err := evalExpr(x.Count, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		n, ok := nV.Uint64()
		if !ok || n < 1 || n > 4096 {
			return logic.Vector{}, fmt.Errorf("invalid replication count")
		}
		v, err := evalExpr(x.Value, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		return logic.Replicate(int(n), v).Resize(want), nil

	case *verilog.Index:
		base, err := evalExpr(x.X, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		idxV, err := evalExpr(x.Index, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		idx, ok := idxV.Uint64()
		if !ok || idx >= uint64(base.Width()) {
			return logic.AllX(1).Resize(want), nil
		}
		return logic.Slice(base, int(idx), int(idx)).Resize(want), nil

	case *verilog.PartSelect:
		base, err := evalExpr(x.X, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		hiV, err := evalExpr(x.MSB, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		loV, err := evalExpr(x.LSB, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		hi, ok1 := hiV.Uint64()
		lo, ok2 := loV.Uint64()
		if !ok1 || !ok2 {
			return logic.AllX(want), nil
		}
		return logic.Slice(base, int(hi), int(lo)).Resize(want), nil

	default:
		return logic.Vector{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func evalBinary(x *verilog.Binary, en env, want int) (logic.Vector, error) {
	// Context-determined operands for arithmetic/bitwise; self-
	// determined for comparisons, logical and shift amounts.
	switch x.Op {
	case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
		l, err := evalExpr(x.X, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		r, err := evalExpr(x.Y, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		var v logic.Vector
		switch x.Op {
		case "+":
			v = logic.Add(l, r)
		case "-":
			v = logic.Sub(l, r)
		case "*":
			v = logic.Mul(l, r)
		case "/":
			v = logic.Div(l, r)
		case "%":
			v = logic.Mod(l, r)
		case "&":
			v = logic.And(l, r)
		case "|":
			v = logic.Or(l, r)
		case "^":
			v = logic.Xor(l, r)
		default:
			v = logic.Xnor(l, r)
		}
		return v.Resize(want), nil

	case "<<", ">>", ">>>", "<<<":
		l, err := evalExpr(x.X, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		amt, err := evalExpr(x.Y, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		var v logic.Vector
		switch x.Op {
		case "<<", "<<<":
			v = logic.Shl(l, amt)
		case ">>":
			v = logic.Shr(l, amt)
		default:
			v = logic.Sshr(l, amt)
		}
		return v.Resize(want), nil

	case "**":
		l, err := evalExpr(x.X, en, want)
		if err != nil {
			return logic.Vector{}, err
		}
		r, err := evalExpr(x.Y, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		base, ok1 := l.Uint64()
		exp, ok2 := r.Uint64()
		if !ok1 || !ok2 || exp > 64 {
			return logic.AllX(want), nil
		}
		acc := uint64(1)
		for i := uint64(0); i < exp; i++ {
			acc *= base
		}
		return logic.FromUint64(want, acc), nil

	case "==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||":
		l, err := evalExpr(x.X, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		r, err := evalExpr(x.Y, en, 0)
		if err != nil {
			return logic.Vector{}, err
		}
		var v logic.Vector
		switch x.Op {
		case "==":
			v = logic.Eq(l, r)
		case "!=":
			v = logic.Neq(l, r)
		case "===":
			v = logic.CaseEq(l, r)
		case "!==":
			v = logic.CaseNeq(l, r)
		case "<":
			v = logic.Lt(l, r)
		case "<=":
			v = logic.Lte(l, r)
		case ">":
			v = logic.Gt(l, r)
		case ">=":
			v = logic.Gte(l, r)
		case "&&":
			v = logic.LAnd(l, r)
		default:
			v = logic.LOr(l, r)
		}
		return v.Resize(want), nil

	default:
		return logic.Vector{}, fmt.Errorf("unsupported binary operator %q", x.Op)
	}
}
