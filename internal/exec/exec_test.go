package exec

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"correctbench/internal/store"
)

// ---- in-process transport ----

// pipeListener is a net.Listener fed by an in-process dialer: every
// dial makes a net.Pipe and hands the server end to Accept.
type pipeListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// fleet is an in-process worker fleet: one Worker per address served
// over pipe transports, with enough hooks to kill or drain a node
// mid-run.
type fleet struct {
	mu        sync.Mutex
	workers   map[string]*Worker
	listeners map[string]*pipeListener
	conns     map[string][]net.Conn // server-side conns per addr
}

func newFleet(t *testing.T, addrs []string, runner Runner, workersPer int) *fleet {
	t.Helper()
	f := &fleet{
		workers:   map[string]*Worker{},
		listeners: map[string]*pipeListener{},
		conns:     map[string][]net.Conn{},
	}
	for _, addr := range addrs {
		w := NewWorker(runner, workersPer)
		ln := newPipeListener()
		f.workers[addr] = w
		f.listeners[addr] = ln
		go w.Serve(ln)
		t.Cleanup(func() { ln.Close() })
	}
	return f
}

func (f *fleet) dial(ctx context.Context, addr string) (net.Conn, error) {
	f.mu.Lock()
	ln := f.listeners[addr]
	f.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("fleet: unknown addr %q", addr)
	}
	client, server := net.Pipe()
	select {
	case ln.ch <- server:
	case <-ln.closed:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
	f.mu.Lock()
	f.conns[addr] = append(f.conns[addr], client)
	f.mu.Unlock()
	return client, nil
}

// kill simulates abrupt node death: stop accepting and sever every
// open connection of addr.
func (f *fleet) kill(addr string) {
	f.mu.Lock()
	ln, conns := f.listeners[addr], f.conns[addr]
	f.conns[addr] = nil
	f.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// ---- test cells and runners ----

func testCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		spec := Spec{Seed: 42, Method: "M", Rep: 0, Problem: fmt.Sprintf("p%03d", i)}
		cells[i] = Cell{Index: i, Key: sha256.Sum256([]byte(spec.Problem)), Spec: spec}
	}
	return cells
}

// pureRunner derives a deterministic outcome from the cell alone, so
// any executor on any node must produce identical results.
func pureRunner(delay time.Duration) Runner {
	return func(ctx context.Context, c Cell) (store.Outcome, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return store.Outcome{}, ctx.Err()
			}
		}
		return store.Outcome{
			Problem:  c.Spec.Problem,
			Grade:    uint8(c.Index % 5),
			TokensIn: uint64(c.Index) * 7,
		}, nil
	}
}

// resultSink collects Done callbacks and flags duplicates.
type resultSink struct {
	mu      sync.Mutex
	byIndex map[int]Result
	dups    int
}

func newSink() *resultSink { return &resultSink{byIndex: map[int]Result{}} }

func (s *resultSink) done(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byIndex[r.Index]; ok {
		s.dups++
		return
	}
	s.byIndex[r.Index] = r
}

func (s *resultSink) get(i int) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byIndex[i]
	return r, ok
}

func (s *resultSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byIndex)
}

// checkComplete asserts every cell completed exactly once with the
// runner's deterministic outcome.
func checkComplete(t *testing.T, cells []Cell, sink *resultSink) {
	t.Helper()
	if sink.dups > 0 {
		t.Errorf("%d duplicate Done calls", sink.dups)
	}
	if sink.len() != len(cells) {
		t.Fatalf("completed %d of %d cells", sink.len(), len(cells))
	}
	want := pureRunner(0)
	for _, c := range cells {
		r, ok := sink.get(c.Index)
		if !ok {
			t.Fatalf("cell %d never completed", c.Index)
		}
		wo, _ := want(context.Background(), c)
		if r.Outcome != wo {
			t.Fatalf("cell %d outcome %+v, want %+v", c.Index, r.Outcome, wo)
		}
	}
}

func testRemoteOptions(f *fleet) RemoteOptions {
	return RemoteOptions{
		Window:     2,
		Straggler:  200 * time.Millisecond,
		ProbeEvery: 20 * time.Millisecond,
		MaxMissed:  3,
		Dial:       f.dial,
	}
}

// ---- protocol ----

func TestProtoRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	cells := testCells(3)
	go func() {
		writeFrame(client, runFrame(cells[2], false))
		writeFrame(client, frame{Op: opResult, Index: 2, OK: true, Outcome: &store.Outcome{Problem: "p002", Grade: 2}})
	}()

	f, err := readFrame(server)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	got, err := cellFromFrame(f)
	if err != nil {
		t.Fatalf("cellFromFrame: %v", err)
	}
	if got.Index != cells[2].Index || got.Key != cells[2].Key || got.Spec != cells[2].Spec {
		t.Fatalf("round-trip cell %+v != %+v", got, cells[2])
	}

	f, err = readFrame(server)
	if err != nil {
		t.Fatalf("readFrame result: %v", err)
	}
	if f.Op != opResult || !f.OK || f.Outcome == nil || f.Outcome.Problem != "p002" {
		t.Fatalf("result frame mangled: %+v", f)
	}
}

func TestProtoRejectsVersionSkew(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		// Handcraft a frame with a wrong version.
		payload := []byte(`{"v":99,"op":"ping"}`)
		buf := make([]byte, 4+len(payload))
		buf[3] = byte(len(payload))
		copy(buf[4:], payload)
		client.Write(buf)
	}()
	if _, err := readFrame(server); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew not rejected: %v", err)
	}
}

// ---- local executor ----

func TestLocalCompletesAllCells(t *testing.T) {
	for _, workers := range []int{1, 8} {
		cells := testCells(20)
		sink := newSink()
		err := Local().Execute(context.Background(), Job{
			Cells: cells, Workers: workers, Run: pureRunner(0), Done: sink.done,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkComplete(t, cells, sink)
	}
}

func TestLocalReportsEarliestError(t *testing.T) {
	cells := testCells(16)
	failing := map[int]bool{3: true, 7: true}
	run := func(ctx context.Context, c Cell) (store.Outcome, error) {
		time.Sleep(time.Duration(16-c.Index) * time.Millisecond) // later cells fail sooner
		if failing[c.Index] {
			return store.Outcome{}, fmt.Errorf("cell %d exploded", c.Index)
		}
		return pureRunner(0)(ctx, c)
	}
	err := Local().Execute(context.Background(), Job{Cells: cells, Workers: 8, Run: run, Done: func(Result) {}})
	if err == nil || !strings.Contains(err.Error(), "cell 3 exploded") {
		t.Fatalf("want earliest error (cell 3), got %v", err)
	}
}

func TestLocalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Local().Execute(ctx, Job{Cells: testCells(4), Workers: 2, Run: pureRunner(0), Done: func(Result) {}})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// ---- remote executor ----

func TestRemoteSingleNode(t *testing.T) {
	cells := testCells(24)
	f := newFleet(t, []string{"w1"}, pureRunner(0), 4)
	r, err := NewRemote([]string{"w1"}, testRemoteOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: sink.done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)
	st := r.Stats()
	if st[0].Assigned != 24 || st[0].Completed != 24 {
		t.Fatalf("stats: %+v", st[0])
	}
}

func TestRemoteFourNodes(t *testing.T) {
	cells := testCells(48)
	addrs := []string{"w1", "w2", "w3", "w4"}
	f := newFleet(t, addrs, pureRunner(time.Millisecond), 4)
	r, err := NewRemote(addrs, testRemoteOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: sink.done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)

	var assigned, completed uint64
	spread := 0
	for _, st := range r.Stats() {
		assigned += st.Assigned
		completed += st.Completed
		if st.Assigned > 0 {
			spread++
		}
	}
	if assigned != 48 {
		t.Fatalf("assigned %d cells, want 48", assigned)
	}
	if completed != 48 {
		t.Fatalf("completed %d cells, want 48", completed)
	}
	if spread < 2 {
		t.Fatalf("consistent hashing placed all cells on %d node(s)", spread)
	}
}

// victimNode returns the address the ring loads most, so killing it
// mid-run is guaranteed to strand work.
func victimNode(addrs []string, cells []Cell) string {
	ring := buildRing(addrs)
	counts := make([]int, len(addrs))
	for _, c := range cells {
		h := cellHash(c)
		i := 0
		for ; i < len(ring); i++ {
			if ring[i].h >= h {
				break
			}
		}
		counts[ring[i%len(ring)].node]++
	}
	best := 0
	for i, n := range counts {
		if n > counts[best] {
			best = i
		}
	}
	return addrs[best]
}

func TestRemoteWorkerDeathRecovers(t *testing.T) {
	cells := testCells(24)
	addrs := []string{"w1", "w2"}
	victim := victimNode(addrs, cells)
	f := newFleet(t, addrs, pureRunner(10*time.Millisecond), 2)
	opt := testRemoteOptions(f)
	r, err := NewRemote(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	var killOnce sync.Once
	done := func(res Result) {
		sink.done(res)
		// First completion: the victim still holds most of its queue
		// (window 2, 10ms cells). Sever it abruptly.
		killOnce.Do(func() { go f.kill(victim) })
	}
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)

	var requeued uint64
	for _, st := range r.Stats() {
		if st.Addr == victim {
			requeued = st.Requeued
			if st.Healthy {
				t.Errorf("victim %s still marked healthy", victim)
			}
		}
	}
	if requeued == 0 {
		t.Fatalf("victim %s death requeued no cells", victim)
	}
}

func TestRemoteDrainReassigns(t *testing.T) {
	cells := testCells(24)
	addrs := []string{"w1", "w2"}
	victim := victimNode(addrs, cells)
	f := newFleet(t, addrs, pureRunner(10*time.Millisecond), 2)
	r, err := NewRemote(addrs, testRemoteOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	var drainOnce sync.Once
	done := func(res Result) {
		sink.done(res)
		drainOnce.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				f.workers[victim].Drain(ctx)
			}()
		})
	}
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)
}

func TestRemoteAllNodesDeadFallsBackLocal(t *testing.T) {
	cells := testCells(12)
	opt := RemoteOptions{
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, fmt.Errorf("no route to %s", addr)
		},
	}
	r, err := NewRemote([]string{"w1", "w2"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 3, Run: pureRunner(0), Done: sink.done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)
	for _, c := range cells {
		r, _ := sink.get(c.Index)
		if r.Node != "" {
			t.Fatalf("fallback cell %d reports node %q", c.Index, r.Node)
		}
	}
}

func TestRemoteMidRunDeathOfOnlyNodeFallsBack(t *testing.T) {
	cells := testCells(12)
	f := newFleet(t, []string{"w1"}, pureRunner(10*time.Millisecond), 2)
	opt := testRemoteOptions(f)
	r, err := NewRemote([]string{"w1"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	var killOnce sync.Once
	done := func(res Result) {
		sink.done(res)
		killOnce.Do(func() { go f.kill("w1") })
	}
	if err := r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)
}

func TestRemoteReportsEarliestError(t *testing.T) {
	cells := testCells(16)
	failing := map[int]bool{3: true, 7: true}
	runner := func(ctx context.Context, c Cell) (store.Outcome, error) {
		if failing[c.Index] {
			return store.Outcome{}, fmt.Errorf("cell %d exploded", c.Index)
		}
		return pureRunner(0)(ctx, c)
	}
	f := newFleet(t, []string{"w1", "w2"}, runner, 2)
	r, err := NewRemote([]string{"w1", "w2"}, testRemoteOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	err = r.Execute(context.Background(), Job{Cells: cells, Workers: 4, Run: runner, Done: func(Result) {}})
	if err == nil || !strings.Contains(err.Error(), "cell 3 exploded") {
		t.Fatalf("want earliest error (cell 3), got %v", err)
	}
}

func TestRemoteCancellation(t *testing.T) {
	cells := testCells(16)
	f := newFleet(t, []string{"w1"}, pureRunner(20*time.Millisecond), 2)
	r, err := NewRemote([]string{"w1"}, testRemoteOptions(f))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err = r.Execute(ctx, Job{Cells: cells, Workers: 2, Run: pureRunner(0), Done: func(Result) {}})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRemoteStragglerSteal(t *testing.T) {
	cells := testCells(8)
	// One node answers instantly, the other sits on its cells far past
	// the straggler threshold.
	slowAddrs := map[string]bool{}
	addrs := []string{"w1", "w2"}
	victim := victimNode(addrs, cells)
	slowAddrs[victim] = true

	var runnerFor = func(slow bool) Runner {
		return func(ctx context.Context, c Cell) (store.Outcome, error) {
			if slow {
				select {
				case <-time.After(5 * time.Second):
				case <-ctx.Done():
					return store.Outcome{}, ctx.Err()
				}
			}
			return pureRunner(0)(ctx, c)
		}
	}
	f := &fleet{
		workers:   map[string]*Worker{},
		listeners: map[string]*pipeListener{},
		conns:     map[string][]net.Conn{},
	}
	for _, addr := range addrs {
		w := NewWorker(runnerFor(slowAddrs[addr]), 2)
		ln := newPipeListener()
		f.workers[addr] = w
		f.listeners[addr] = ln
		go w.Serve(ln)
		t.Cleanup(func() { ln.Close() })
	}
	opt := testRemoteOptions(f)
	opt.Straggler = 50 * time.Millisecond
	r, err := NewRemote(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := newSink()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Execute(ctx, Job{Cells: cells, Workers: 4, Run: pureRunner(0), Done: sink.done}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	checkComplete(t, cells, sink)

	var stolen uint64
	for _, st := range r.Stats() {
		stolen += st.Stolen
	}
	if stolen == 0 {
		t.Fatal("no cells were stolen from the straggling node")
	}
	// Every cell the slow node owned must report Stolen.
	for _, c := range cells {
		res, _ := sink.get(c.Index)
		if res.Node == victim {
			t.Fatalf("cell %d completed on the 5s-straggler node", c.Index)
		}
	}
}
