package exec

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"correctbench/internal/obs"
)

// Worker serves cells to coordinators: it accepts connections on a
// listener, reads run frames, executes each cell through its Runner
// and writes result frames back. A worker is stateless between cells
// — everything a cell needs travels in its Spec — which is what lets
// a coordinator reassign work to any node at any time.
//
// One worker serves any number of coordinator connections; cells from
// all connections share the worker's concurrency bound. Results are
// written back on the connection the run arrived on (one frame per
// write, serialized by a per-connection mutex so concurrent cell
// completions cannot interleave bytes).
type Worker struct {
	runner Runner
	slots  chan struct{} // concurrency semaphore

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool
	active   int // cells currently executing

	completed uint64 // cells finished successfully
	failed    uint64 // cells whose runner returned an error
}

type connState struct {
	wmu sync.Mutex // serializes frame writes on this connection
}

// WorkerStats is a point-in-time view of a worker's counters.
type WorkerStats struct {
	Active    int    `json:"active"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Draining  bool   `json:"draining,omitempty"`
}

// NewWorker returns a worker executing at most workers cells
// concurrently (min 1). The runner must be safe for concurrent calls.
func NewWorker(runner Runner, workers int) *Worker {
	if workers < 1 {
		workers = 1
	}
	return &Worker{
		runner: runner,
		slots:  make(chan struct{}, workers),
		conns:  map[net.Conn]*connState{},
	}
}

// Serve accepts coordinator connections until the listener is closed
// (which is how callers stop a worker: close the listener, then
// Drain). It always returns a non-nil error; after a clean close that
// error wraps net.ErrClosed.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("exec: worker accept: %w", err)
		}
		w.mu.Lock()
		if w.draining {
			w.mu.Unlock()
			conn.Close()
			continue
		}
		st := &connState{}
		w.conns[conn] = st
		w.mu.Unlock()
		go w.serveConn(conn, st)
	}
}

func (w *Worker) serveConn(conn net.Conn, st *connState) {
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		conn.Close()
	}()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return // connection gone or corrupt; coordinator reassigns
		}
		switch f.Op {
		case opPing:
			w.mu.Lock()
			active, draining := w.active, w.draining
			w.mu.Unlock()
			if draining {
				w.send(conn, st, frame{Op: opDraining})
				continue
			}
			w.send(conn, st, frame{Op: opPong, Active: active})
		case opRun:
			c, err := cellFromFrame(f)
			if err != nil {
				w.send(conn, st, frame{Op: opResult, Index: f.Index, Error: err.Error()})
				continue
			}
			w.mu.Lock()
			if w.draining {
				w.mu.Unlock()
				// Refuse new work while draining; the coordinator
				// requeues on the draining frame.
				w.send(conn, st, frame{Op: opDraining})
				continue
			}
			w.active++
			w.mu.Unlock()
			go w.runCell(conn, st, c, f.Trace)
		default:
			// Unknown op: ignore. Forward compatibility within one
			// protocol version is additive ops only.
		}
	}
}

func (w *Worker) runCell(conn net.Conn, st *connState, c Cell, trace bool) {
	w.slots <- struct{}{}
	ctx := context.Background()
	var col *obs.Collector
	if trace {
		// The coordinator asked for phase timings: collect with this
		// worker's own execution start as the epoch — the coordinator
		// rebases the samples under its net_roundtrip span on arrival,
		// so no cross-node clock comparison ever happens.
		col = obs.NewCollector(time.Now()) //detlint:allow phase timings are wall-clock metadata shipped off-wire of the result contract
		ctx = obs.WithCollector(ctx, col)
	}
	o, err := w.runner(ctx, c)
	<-w.slots

	w.mu.Lock()
	w.active--
	if err != nil {
		w.failed++
	} else {
		w.completed++
	}
	w.mu.Unlock()

	res := frame{Op: opResult, Index: c.Index}
	if err != nil {
		res.Error = err.Error()
	} else {
		res.OK = true
		res.Outcome = &o
		res.Phases = col.Samples()
	}
	w.send(conn, st, res)
}

// send writes one frame under the connection's write lock. Write
// errors are swallowed: a dead coordinator connection means the
// result is lost in transit, and the coordinator's straggler
// reassignment re-executes the cell elsewhere — outcomes are pure, so
// the duplicate is invisible.
func (w *Worker) send(conn net.Conn, st *connState, f frame) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	_ = writeFrame(conn, f)
}

// Drain puts the worker into shutdown: it broadcasts a draining frame
// on every open coordinator connection (so coordinators requeue this
// node's queued and in-flight cells immediately instead of waiting
// for straggler timeouts), refuses new runs, and waits for in-flight
// cells to finish or ctx to expire. In-flight cells that do finish
// still report their results — the coordinator's first-wins dedup
// makes the race between a drained result and its reassigned
// duplicate harmless in either order.
func (w *Worker) Drain(ctx context.Context) error {
	w.mu.Lock()
	if !w.draining {
		w.draining = true
		//detlint:allow broadcast to all connections; delivery order is unobservable (each coordinator sees only its own)
		for conn, st := range w.conns {
			go func(conn net.Conn, st *connState) {
				st.wmu.Lock()
				defer st.wmu.Unlock()
				_ = writeFrame(conn, frame{Op: opDraining})
			}(conn, st)
		}
	}
	w.mu.Unlock()

	// Wait for the active count to reach zero by polling the
	// semaphore's capacity: acquiring every slot means no cell holds
	// one.
	for i := 0; i < cap(w.slots); i++ {
		select {
		case w.slots <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("exec: worker drain: %w (abandoning in-flight cells; coordinator will reassign)", ctx.Err())
		}
	}
	for i := 0; i < cap(w.slots); i++ {
		<-w.slots
	}
	return nil
}

// Stats returns the worker's live counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{
		Active:    w.active,
		Completed: w.completed,
		Failed:    w.failed,
		Draining:  w.draining,
	}
}

// errWorkerClosed reports a listener closed under Serve.
var errWorkerClosed = errors.New("exec: worker closed")

// IsClosed reports whether err is the normal return of Serve after
// its listener was closed.
func IsClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, errWorkerClosed)
}
