package exec

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"

	"correctbench/internal/obs"
	"correctbench/internal/store"
)

// ---- wire protocol ----
//
// Coordinator and worker speak length-prefixed JSON frames over a
// plain TCP connection (stdlib only): a 4-byte big-endian payload
// length followed by one JSON object. Every frame carries an "op"
// tag; requests and responses are correlated by the cell index (runs)
// or implicitly (ping/pong). The framing exists so a fault injector —
// or a real flaky network — can drop, delay or truncate *whole
// messages* and the reader always either gets a complete frame or a
// clean error, never a half-parsed one.
//
// Ops, coordinator → worker:
//
//	run   {op, index, key, spec}   execute one cell
//	ping  {op}                     health probe
//
// Ops, worker → coordinator:
//
//	result   {op, index, ok, outcome|error}  one finished cell
//	pong     {op, active}                    probe answer + load
//	draining {op}                            the worker is shutting
//	         down: reassign its queued and in-flight cells now
//	         instead of waiting for them to time out
//
// The protocol is versioned by protoVersion, exchanged implicitly:
// every frame carries "v" and a mismatch is a hard connection error —
// a mixed-version fleet must fail loudly, not subtly skew results.
// (Cell-level version skew — same protocol, different simulator — is
// caught by the worker re-deriving the cell key and refusing a
// mismatch.)

const protoVersion = 1

// maxFrameBytes bounds a frame payload; anything larger is a corrupt
// length prefix, not a real message (specs and outcomes are tiny).
const maxFrameBytes = 1 << 20

// frame is the one wire message shape; which fields are set depends
// on Op.
type frame struct {
	V  int    `json:"v"`
	Op string `json:"op"`

	// run / result
	Index int    `json:"index,omitempty"`
	Key   string `json:"key,omitempty"` // hex cell key (run)
	Spec  *Spec  `json:"spec,omitempty"`

	OK      bool           `json:"ok,omitempty"`
	Outcome *store.Outcome `json:"outcome,omitempty"`
	Error   string         `json:"error,omitempty"`

	// Trace (run) asks the worker to time the cell's phases; Phases
	// (result) carries them back, with offsets relative to the
	// worker's own execution start — the coordinator rebases them onto
	// its timeline. Both fields are additive and omitempty, so mixed
	// deployments within protoVersion 1 interoperate: an older worker
	// ignores the unknown trace field and an older coordinator ignores
	// the phases it never asked for.
	Trace  bool              `json:"trace,omitempty"`
	Phases []obs.PhaseSample `json:"phases,omitempty"`

	// pong
	Active int `json:"active,omitempty"`
}

// Frame ops.
const (
	opRun      = "run"
	opResult   = "result"
	opPing     = "ping"
	opPong     = "pong"
	opDraining = "draining"
)

// writeFrame encodes and writes one frame as a single Write call, so
// connection-level fault injectors (and TCP itself under small
// frames) see whole messages.
func writeFrame(c net.Conn, f frame) error {
	f.V = protoVersion
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("exec: marshal frame: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("exec: frame too large (%d bytes)", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame and verifies the protocol
// version.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return frame{}, fmt.Errorf("exec: bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return frame{}, fmt.Errorf("exec: bad frame: %w", err)
	}
	if f.V != protoVersion {
		return frame{}, fmt.Errorf("exec: protocol version %d, want %d (mixed-version fleet)", f.V, protoVersion)
	}
	return f, nil
}

// runFrame builds the run request for a cell.
func runFrame(c Cell, trace bool) frame {
	return frame{Op: opRun, Index: c.Index, Key: c.Key.String(), Spec: &c.Spec, Trace: trace}
}

// cellFromFrame rebuilds the cell of a run request.
func cellFromFrame(f frame) (Cell, error) {
	if f.Spec == nil {
		return Cell{}, fmt.Errorf("exec: run frame without spec")
	}
	raw, err := hex.DecodeString(f.Key)
	if err != nil || len(raw) != len(store.Key{}) {
		return Cell{}, fmt.Errorf("exec: run frame with bad key %q", f.Key)
	}
	c := Cell{Index: f.Index, Spec: *f.Spec}
	copy(c.Key[:], raw)
	return c, nil
}
