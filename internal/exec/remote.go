package exec

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"correctbench/internal/obs"
)

// Remote is the fleet executor: a coordinator that shards a job's
// cells across worker nodes (see Worker) by consistent-hashing each
// cell's content address onto a virtual-node ring, and keeps the
// job's exactly-once completion contract under any node failure:
//
//   - Backpressure: each node has a bounded in-flight window; cells
//     beyond it wait in the node's queue, so a slow node never
//     accumulates unbounded work.
//   - Health: nodes are probed with counter-based ping/pong — a node
//     that misses enough consecutive probes is declared dead. No
//     scheduling decision reads the wall clock.
//   - Work stealing: idle nodes steal queued cells from the most
//     loaded node, and a cell in flight longer than the straggler
//     threshold is speculatively re-dispatched to the least loaded
//     healthy peer. Cell outcomes are pure functions of their spec,
//     so duplicated execution is invisible: the first completion
//     wins and later duplicates are dropped.
//   - Reassignment: a dead or draining node's queued and in-flight
//     cells requeue onto the surviving ring. If the whole fleet is
//     gone the coordinator falls back to executing the remainder
//     in-process through Job.Run — a run degrades, it never loses
//     cells.
//
// The ring, queues, windows and steal scans all iterate nodes in
// sorted-address order; given the same fault schedule the coordinator
// makes the same decisions (and the event stream upstream is
// byte-identical regardless, because the ordered emitter re-sequences
// completions).
type Remote struct {
	peers []string // sorted worker addresses
	opt   RemoteOptions

	mu    sync.Mutex
	stats []NodeStats // parallel to peers, cumulative across jobs
}

// RemoteOptions tunes the coordinator. The zero value means: window
// 4, straggler threshold 2s, probe every 500ms, 3 missed probes kill
// a node, net.Dial over TCP.
type RemoteOptions struct {
	// Window bounds cells in flight per node (backpressure).
	Window int
	// Straggler is how long a dispatched cell may stay unanswered
	// before it is speculatively re-dispatched to another node.
	Straggler time.Duration
	// ProbeEvery is the health-probe cadence; MaxMissed consecutive
	// unanswered probes mark a node dead.
	ProbeEvery time.Duration
	MaxMissed  int
	// Dial connects to a worker address. Tests inject in-process
	// net.Pipe transports here; nil means TCP.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

func (o *RemoteOptions) normalize() {
	if o.Window < 1 {
		o.Window = 4
	}
	if o.Straggler <= 0 {
		o.Straggler = 2 * time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 500 * time.Millisecond
	}
	if o.MaxMissed < 1 {
		o.MaxMissed = 3
	}
	if o.Dial == nil {
		o.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
}

// NodeStats is the cumulative per-node accounting of a Remote
// executor, for /metrics and BENCH_harness.json.
type NodeStats struct {
	Addr string `json:"addr"`
	// Healthy is the node's state as of the last job that touched it.
	Healthy bool `json:"healthy"`
	// Assigned counts cells the ring hashed to this node; Completed
	// counts results accepted from it; Stolen counts cells it took
	// over from a straggling, dead or draining peer; Requeued counts
	// cells moved off it after it died or drained.
	Assigned  uint64 `json:"assigned"`
	Completed uint64 `json:"completed"`
	Stolen    uint64 `json:"stolen"`
	Requeued  uint64 `json:"requeued"`
}

// NewRemote returns a coordinator executor over the given worker
// addresses. Connections are per-Execute: each job dials the fleet,
// runs, and disconnects, so an executor value carries no state but
// its options and counters.
func NewRemote(peers []string, opt RemoteOptions) (*Remote, error) {
	if len(peers) == 0 {
		return nil, errors.New("exec: remote executor needs at least one peer")
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("exec: duplicate peer %q", sorted[i])
		}
	}
	opt.normalize()
	r := &Remote{peers: sorted, opt: opt, stats: make([]NodeStats, len(sorted))}
	for i, addr := range sorted {
		r.stats[i].Addr = addr
	}
	return r, nil
}

// Stats returns a copy of the cumulative per-node counters, in
// sorted-address order.
func (r *Remote) Stats() []NodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]NodeStats(nil), r.stats...)
}

// ---- consistent hash ring ----

// ringVnodes is how many virtual points each node contributes; enough
// that a 156-cell grid spreads evenly over a handful of nodes.
const ringVnodes = 64

type ringEntry struct {
	h    uint64
	node int
}

func buildRing(peers []string) []ringEntry {
	ring := make([]ringEntry, 0, len(peers)*ringVnodes)
	for i, addr := range peers {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(addr))
			h.Write([]byte("#"))
			h.Write([]byte(strconv.Itoa(v)))
			ring = append(ring, ringEntry{h: h.Sum64(), node: i})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].h != ring[j].h {
			return ring[i].h < ring[j].h
		}
		return ring[i].node < ring[j].node
	})
	return ring
}

// cellHash places a cell on the ring. The key is already a SHA-256,
// so its leading bytes are uniform.
func cellHash(c Cell) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h = h<<8 | uint64(c.Key[i])
	}
	return h
}

// ---- per-job run state ----

type nodeState int

const (
	nodeUp nodeState = iota
	nodeDead
)

type node struct {
	idx  int
	addr string
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	state    nodeState
	queue    []int // cell positions awaiting dispatch, FIFO
	inflight int
	missed   int // consecutive unanswered probes
}

type cellPhase int

const (
	cellQueued cellPhase = iota
	cellInflight
)

type cellState struct {
	phase  cellPhase
	owner  int // node index currently responsible (-1: local fallback)
	stolen bool
	timer  *time.Timer
	start  time.Time // dispatch time, for Result.Duration metadata

	// Trace bookkeeping (populated only when job.Trace): when the cell
	// entered the coordinator's queues, and how long the last run-frame
	// write took (the dispatch phase).
	queuedAt   time.Time
	dispatchUS int64
}

type remoteRun struct {
	r   *Remote
	job Job

	ctx    context.Context
	cancel context.CancelFunc
	epoch  time.Time // trace time origin (zero when job.Trace is off)

	mu        sync.Mutex
	nodes     []*node
	ring      []ringEntry
	cells     []cellState
	posOf     map[int]int // canonical cell index -> slice position
	done      []bool
	remaining int
	errs      *errorCollector
	fallback  bool
	localBusy int // fallback cells currently executing

	finish   chan struct{}
	finished bool
	wg       sync.WaitGroup
}

// Execute runs one job across the fleet. It returns nil when every
// cell completed, ctx.Err() on cancellation, and otherwise the error
// of the canonically earliest failing cell among those the run
// executed (cells ordered before a failure are still driven to
// completion, so the observable event prefix matches a local run's).
func (r *Remote) Execute(ctx context.Context, job Job) error {
	if len(job.Cells) == 0 {
		return ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	rn := &remoteRun{
		r:         r,
		job:       job,
		ctx:       runCtx,
		cancel:    cancel,
		ring:      buildRing(r.peers),
		cells:     make([]cellState, len(job.Cells)),
		posOf:     make(map[int]int, len(job.Cells)),
		done:      make([]bool, len(job.Cells)),
		remaining: len(job.Cells),
		errs:      newErrorCollector(),
		finish:    make(chan struct{}),
	}
	if job.Trace {
		rn.epoch = job.Epoch
		if rn.epoch.IsZero() {
			rn.epoch = time.Now() //detlint:allow trace epoch is wall-clock metadata, excluded from the deterministic surface
		}
	}
	for pos, c := range job.Cells {
		rn.posOf[c.Index] = pos
		rn.cells[pos] = cellState{owner: -1, queuedAt: rn.epoch}
	}
	rn.nodes = make([]*node, len(r.peers))
	for i, addr := range r.peers {
		rn.nodes[i] = &node{idx: i, addr: addr, state: nodeDead}
	}

	// Dial the fleet concurrently; nodes that refuse start dead and
	// the ring walks past them.
	var dialWG sync.WaitGroup
	for _, n := range rn.nodes {
		dialWG.Add(1)
		go func(n *node) {
			defer dialWG.Done()
			conn, err := r.opt.Dial(runCtx, n.addr)
			if err != nil {
				return
			}
			n.conn = conn
			n.state = nodeUp
		}(n)
	}
	dialWG.Wait()

	rn.mu.Lock()
	anyUp := false
	for _, n := range rn.nodes {
		if n.state == nodeUp {
			anyUp = true
			rn.wg.Add(1)
			go rn.readLoop(n)
		}
		r.setHealthy(n.idx, n.state == nodeUp)
	}
	// Initial assignment: every cell onto its ring successor among the
	// nodes that dialed. Cell order is canonical, so each node's queue
	// preserves canonical relative order.
	if anyUp {
		for pos, c := range job.Cells {
			ni := rn.assignLocked(cellHash(c))
			rn.cells[pos].owner = ni
			rn.nodes[ni].queue = append(rn.nodes[ni].queue, pos)
			r.bumpAssigned(ni)
		}
		rn.dispatchLocked()
	} else {
		rn.startFallbackLocked()
	}
	rn.mu.Unlock()

	if anyUp {
		rn.wg.Add(1)
		go rn.probeLoop()
	}

	// Wait for completion or cancellation, then tear the run down:
	// cancel stops the prober and fallback workers, closing conns
	// stops the readers.
	select {
	case <-rn.finish:
	case <-runCtx.Done():
	}
	cancel()
	rn.mu.Lock()
	for _, n := range rn.nodes {
		if n.conn != nil {
			n.conn.Close()
		}
	}
	for pos := range rn.cells {
		if t := rn.cells[pos].timer; t != nil {
			t.Stop()
		}
	}
	rn.mu.Unlock()
	rn.wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	if err := rn.errs.first(); err != nil {
		return err
	}
	if !rn.isFinished() {
		// runCtx died without a caller cancellation — cannot happen
		// with the cleanup above, but fail loudly rather than report a
		// partial run as complete.
		return errors.New("exec: remote run ended incomplete")
	}
	return nil
}

func (rn *remoteRun) isFinished() bool {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.finished
}

// assignLocked walks the ring from h to the first healthy node.
// Caller must have verified at least one node is up.
func (rn *remoteRun) assignLocked(h uint64) int {
	i := sort.Search(len(rn.ring), func(i int) bool { return rn.ring[i].h >= h })
	for k := 0; k < len(rn.ring); k++ {
		e := rn.ring[(i+k)%len(rn.ring)]
		if rn.nodes[e.node].state == nodeUp {
			return e.node
		}
	}
	return -1
}

// minIndexCutoff returns the canonical index past which no new cell
// may be dispatched: unbounded normally, the earliest failing index
// after a failure (cells before it still run, matching the event
// prefix a sequential run would have produced before hitting the
// error).
func (rn *remoteRun) minIndexCutoff() int {
	if !rn.errs.failed() {
		return math.MaxInt
	}
	return rn.errs.minIndex()
}

// dispatchLocked fills every healthy node's in-flight window from its
// queue, then lets idle nodes steal from the most loaded queue. All
// scans are in node-index (sorted address) order.
func (rn *remoteRun) dispatchLocked() {
	cutoff := rn.minIndexCutoff()
	for {
		for _, n := range rn.nodes {
			if n.state != nodeUp {
				continue
			}
			for n.inflight < rn.r.opt.Window && len(n.queue) > 0 {
				pos := n.queue[0]
				n.queue = n.queue[1:]
				if rn.done[pos] || rn.job.Cells[pos].Index >= cutoff {
					continue
				}
				rn.sendCellLocked(n, pos)
			}
		}
		if !rn.stealLocked() {
			return
		}
	}
}

// stealLocked moves queued work from the most loaded node to idle
// healthy nodes; reports whether anything moved (so dispatch loops).
func (rn *remoteRun) stealLocked() bool {
	moved := false
	for _, thief := range rn.nodes {
		if thief.state != nodeUp || len(thief.queue) > 0 || thief.inflight >= rn.r.opt.Window {
			continue
		}
		// Victim: longest queue, lowest index on ties.
		var victim *node
		for _, v := range rn.nodes {
			if v.state != nodeUp || v == thief || len(v.queue) == 0 {
				continue
			}
			if victim == nil || len(v.queue) > len(victim.queue) {
				victim = v
			}
		}
		if victim == nil {
			continue
		}
		take := (len(victim.queue) + 1) / 2
		tail := victim.queue[len(victim.queue)-take:]
		victim.queue = victim.queue[:len(victim.queue)-take]
		for _, pos := range tail {
			rn.cells[pos].owner = thief.idx
			rn.cells[pos].stolen = true
			rn.r.bumpStolen(thief.idx)
			rn.r.bumpRequeued(victim.idx)
		}
		thief.queue = append(thief.queue, tail...)
		moved = true
	}
	return moved
}

// sendCellLocked dispatches one cell to a node: window accounting,
// straggler timer, run frame (written outside the lock by a goroutine
// so a blocked transport cannot wedge the scheduler).
func (rn *remoteRun) sendCellLocked(n *node, pos int) {
	st := &rn.cells[pos]
	st.phase = cellInflight
	st.owner = n.idx
	st.start = time.Now() //detlint:allow Result.Duration is wall-clock metadata, not a scheduling input
	if st.timer != nil {
		st.timer.Stop()
	}
	st.timer = time.AfterFunc(rn.r.opt.Straggler, func() { rn.straggle(pos) })
	n.inflight++
	cell := rn.job.Cells[pos]
	trace := rn.job.Trace
	rn.wg.Add(1)
	go func() {
		defer rn.wg.Done()
		err := rn.write(n, runFrame(cell, trace))
		if trace {
			// The dispatch phase: how long the run frame took to leave.
			// The result cannot arrive before the worker has read the
			// frame, but the read goroutine may still observe a stale
			// zero on an extreme race — metadata, not a contract.
			wrote := time.Now() //detlint:allow dispatch timing is wall-clock metadata, excluded from the deterministic surface
			rn.mu.Lock()
			rn.cells[pos].dispatchUS = wrote.Sub(rn.cells[pos].start).Microseconds()
			rn.mu.Unlock()
		}
		if err != nil {
			rn.nodeDown(n)
		}
	}()
}

func (rn *remoteRun) write(n *node, f frame) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	if n.conn == nil {
		return errors.New("exec: node not connected")
	}
	return writeFrame(n.conn, f)
}

// straggle fires when a dispatched cell outlives the straggler
// threshold: speculatively re-dispatch it to the least loaded healthy
// peer. The original copy stays in flight — first completion wins.
func (rn *remoteRun) straggle(pos int) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if rn.done[pos] || rn.ctx.Err() != nil {
		return
	}
	st := &rn.cells[pos]
	if st.phase != cellInflight {
		return // already requeued by a death/drain
	}
	if rn.job.Cells[pos].Index >= rn.minIndexCutoff() {
		return
	}
	var target *node
	for _, n := range rn.nodes {
		if n.state != nodeUp || n.idx == st.owner {
			continue
		}
		if target == nil || n.inflight+len(n.queue) < target.inflight+len(target.queue) {
			target = n
		}
	}
	if target == nil {
		// Nowhere to steal to; keep watching the original.
		if owner := st.owner; owner >= 0 && rn.nodes[owner].state == nodeUp {
			st.timer = time.AfterFunc(rn.r.opt.Straggler, func() { rn.straggle(pos) })
		}
		return
	}
	st.phase = cellQueued
	st.owner = target.idx
	st.stolen = true
	target.queue = append(target.queue, pos)
	rn.r.bumpStolen(target.idx)
	rn.dispatchLocked()
}

// readLoop consumes one node's frames until the connection dies.
func (rn *remoteRun) readLoop(n *node) {
	defer rn.wg.Done()
	for {
		f, err := readFrame(n.conn)
		if err != nil {
			if rn.ctx.Err() == nil {
				rn.nodeDown(n)
			}
			return
		}
		switch f.Op {
		case opResult:
			rn.handleResult(n, f)
		case opPong:
			rn.mu.Lock()
			n.missed = 0
			rn.mu.Unlock()
		case opDraining:
			// The worker is shutting down: requeue everything it holds
			// now instead of waiting for probes to time it out. Keep
			// reading — its in-flight cells may still deliver, and the
			// dedup gate makes a drained result racing its reassigned
			// duplicate harmless in either order.
			rn.nodeDown(n)
		}
	}
}

// handleResult accepts one finished cell. Duplicates (steal races,
// drained nodes finishing anyway) are dropped: outcomes are pure, so
// whichever copy lands first carries the same bytes.
func (rn *remoteRun) handleResult(n *node, f frame) {
	rn.mu.Lock()
	pos, known := rn.posOf[f.Index]
	if !known || rn.done[pos] {
		if n.inflight > 0 {
			n.inflight--
		}
		rn.dispatchLocked()
		rn.mu.Unlock()
		return
	}
	st := &rn.cells[pos]
	rn.done[pos] = true
	rn.remaining--
	if n.inflight > 0 {
		n.inflight--
	}
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	var res Result
	deliver := false
	if f.OK && f.Outcome != nil {
		res = Result{
			Index:    f.Index,
			Outcome:  *f.Outcome,
			Duration: time.Since(st.start),
			Node:     n.addr,
			Stolen:   st.stolen || n.idx != rn.initialNode(pos),
		}
		if rn.job.Trace {
			res.Phases = rn.tracePhasesLocked(st, n, f.Phases, res.Duration)
		}
		deliver = true
		rn.r.bumpCompleted(n.idx)
	} else {
		msg := f.Error
		if msg == "" {
			msg = "worker returned no outcome"
		}
		rn.errs.record(f.Index, fmt.Errorf("exec: node %s: %s", n.addr, msg))
	}
	rn.dispatchLocked()
	rn.checkDoneLocked()
	rn.mu.Unlock()
	if deliver {
		rn.job.Done(res)
	}
}

// tracePhasesLocked assembles a remote cell's phase samples on the
// coordinator's timeline: queue_wait (assignment -> dispatch),
// dispatch (run-frame write) and net_roundtrip (dispatch -> result
// received) from coordinator bookkeeping, then the worker's own
// samples — whose offsets are relative to its execution start —
// rebased under the net_roundtrip span and labeled with the node
// address. Caller holds rn.mu.
func (rn *remoteRun) tracePhasesLocked(st *cellState, n *node, worker []obs.PhaseSample, roundtrip time.Duration) []obs.PhaseSample {
	dispatchStart := st.start.Sub(rn.epoch).Microseconds()
	phases := []obs.PhaseSample{
		{
			Phase: obs.PhaseQueueWait, Seq: 0, ParentSeq: -1,
			StartUS: st.queuedAt.Sub(rn.epoch).Microseconds(),
			DurUS:   st.start.Sub(st.queuedAt).Microseconds(),
		},
		{
			Phase: obs.PhaseDispatch, Seq: 1, ParentSeq: -1,
			StartUS: dispatchStart,
			DurUS:   st.dispatchUS,
		},
		{
			Phase: obs.PhaseRoundtrip, Seq: 2, ParentSeq: -1, Node: n.addr,
			StartUS: dispatchStart,
			DurUS:   roundtrip.Microseconds(),
		},
	}
	return append(phases, obs.Rebase(worker, 3, 2, dispatchStart, n.addr)...)
}

// initialNode recomputes where the ring would place a cell with every
// node healthy — the "home" node Stolen is measured against.
func (rn *remoteRun) initialNode(pos int) int {
	h := cellHash(rn.job.Cells[pos])
	i := sort.Search(len(rn.ring), func(i int) bool { return rn.ring[i].h >= h })
	return rn.ring[i%len(rn.ring)].node
}

// nodeDown transitions a node out of service and reassigns everything
// it held. Safe to call repeatedly.
func (rn *remoteRun) nodeDown(n *node) {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	rn.nodeDownLocked(n)
}

func (rn *remoteRun) nodeDownLocked(n *node) {
	if n.state == nodeDead {
		return
	}
	n.state = nodeDead
	n.queue = nil
	n.inflight = 0
	rn.r.setHealthy(n.idx, false)

	anyUp := false
	for _, m := range rn.nodes {
		if m.state == nodeUp {
			anyUp = true
			break
		}
	}
	// Reassign every live cell the dead node owned — queued or in
	// flight — to its ring successor. Scanning the cells slice keeps
	// the order canonical.
	for pos := range rn.cells {
		st := &rn.cells[pos]
		if rn.done[pos] || st.owner != n.idx {
			continue
		}
		rn.r.bumpRequeued(n.idx)
		if !anyUp {
			st.phase = cellQueued
			st.owner = -1 // the local fallback will pick it up
			continue
		}
		ni := rn.assignLocked(cellHash(rn.job.Cells[pos]))
		st.phase = cellQueued
		st.owner = ni
		st.stolen = true
		rn.nodes[ni].queue = append(rn.nodes[ni].queue, pos)
		rn.r.bumpStolen(ni)
	}
	if anyUp {
		rn.dispatchLocked()
	} else {
		rn.startFallbackLocked()
	}
	rn.checkDoneLocked()
}

// probeLoop pings every healthy node each tick and kills nodes whose
// consecutive missed-pong counter crosses the limit. Death is decided
// by counting probe rounds, never by reading a clock.
func (rn *remoteRun) probeLoop() {
	defer rn.wg.Done()
	t := time.NewTicker(rn.r.opt.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-rn.ctx.Done():
			return
		case <-t.C:
		}
		rn.mu.Lock()
		var lost []*node
		var ping []*node
		for _, n := range rn.nodes {
			if n.state != nodeUp {
				continue
			}
			n.missed++
			if n.missed > rn.r.opt.MaxMissed {
				lost = append(lost, n)
				continue
			}
			ping = append(ping, n)
		}
		for _, n := range lost {
			rn.nodeDownLocked(n)
		}
		rn.mu.Unlock()
		for _, n := range ping {
			n := n
			rn.wg.Add(1)
			go func() {
				defer rn.wg.Done()
				if err := rn.write(n, frame{Op: opPing}); err != nil {
					rn.nodeDown(n)
				}
			}()
		}
	}
}

// checkDoneLocked closes the finish gate when the run can make no
// further progress: every cell accounted, or a failure recorded and
// nothing left in flight anywhere.
func (rn *remoteRun) checkDoneLocked() {
	if rn.finished {
		return
	}
	if rn.remaining > 0 {
		if !rn.errs.failed() {
			return
		}
		inflight := rn.localBusy
		queued := 0
		cutoff := rn.minIndexCutoff()
		for _, n := range rn.nodes {
			if n.state != nodeUp {
				continue
			}
			inflight += n.inflight
			for _, pos := range n.queue {
				if !rn.done[pos] && rn.job.Cells[pos].Index < cutoff {
					queued++
				}
			}
		}
		if rn.fallback {
			// Cells the local fallback still owes (owner -1): they are
			// not in any node queue but must run before the error
			// returns, like the local pool's already-queued cells.
			for pos := range rn.cells {
				if !rn.done[pos] && rn.cells[pos].owner == -1 && rn.job.Cells[pos].Index < cutoff {
					queued++
				}
			}
		}
		if inflight > 0 || queued > 0 {
			return
		}
	}
	rn.finished = true
	close(rn.finish)
}

// ---- local fallback ----

// startFallbackLocked degrades the run to in-process execution when
// no healthy node remains: the remaining cells run through Job.Run on
// this process, exactly as the local pool would run them. Results
// still flow through the dedup gate — a drained node's late delivery
// and the fallback's own execution carry identical bytes, so either
// winning is fine.
func (rn *remoteRun) startFallbackLocked() {
	if rn.fallback {
		return
	}
	rn.fallback = true
	var pending []int
	for pos := range rn.cells {
		if !rn.done[pos] {
			rn.cells[pos].owner = -1
			rn.cells[pos].phase = cellQueued
			pending = append(pending, pos)
		}
	}
	if len(pending) == 0 {
		return
	}
	workers := rn.job.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	feed := make(chan int)
	for w := 0; w < workers; w++ {
		rn.wg.Add(1)
		go func() {
			defer rn.wg.Done()
			for pos := range feed {
				rn.runLocalCell(pos)
			}
		}()
	}
	rn.wg.Add(1)
	go func() {
		defer rn.wg.Done()
		defer close(feed)
		for _, pos := range pending {
			rn.mu.Lock()
			skip := rn.done[pos] || rn.job.Cells[pos].Index >= rn.minIndexCutoff()
			rn.mu.Unlock()
			if skip || rn.ctx.Err() != nil {
				continue
			}
			select {
			case feed <- pos:
			case <-rn.ctx.Done():
				return
			}
		}
	}()
}

func (rn *remoteRun) runLocalCell(pos int) {
	rn.mu.Lock()
	if rn.done[pos] {
		rn.mu.Unlock()
		return
	}
	rn.localBusy++
	rn.mu.Unlock()

	c := rn.job.Cells[pos]
	start := time.Now() //detlint:allow Result.Duration is wall-clock metadata, not a scheduling input
	ctx := rn.ctx
	var col *obs.Collector
	if rn.job.Trace {
		// Local fallback executes on the coordinator itself: record a
		// queue_wait from the cell's assignment to now, then collect the
		// cell's own phases directly on the coordinator timeline (no
		// rebase — same clock, same epoch).
		rn.mu.Lock()
		queuedAt := rn.cells[pos].queuedAt
		rn.mu.Unlock()
		col = obs.NewCollector(rn.epoch)
		col.Add(obs.PhaseSample{
			Phase: obs.PhaseQueueWait, Seq: 0, ParentSeq: -1,
			StartUS: queuedAt.Sub(rn.epoch).Microseconds(),
			DurUS:   start.Sub(queuedAt).Microseconds(),
		})
		ctx = obs.WithCollector(ctx, col)
	}
	o, err := rn.job.Run(ctx, c)

	rn.mu.Lock()
	rn.localBusy--
	if rn.done[pos] {
		rn.checkDoneLocked()
		rn.mu.Unlock()
		return
	}
	rn.done[pos] = true
	rn.remaining--
	deliver := false
	var res Result
	if err != nil {
		rn.errs.record(c.Index, err)
	} else {
		res = Result{Index: c.Index, Outcome: o, Duration: time.Since(start), Stolen: true, Phases: col.Samples()}
		deliver = true
	}
	rn.checkDoneLocked()
	rn.mu.Unlock()
	if deliver {
		rn.job.Done(res)
	}
}

// ---- cumulative stats ----

func (r *Remote) setHealthy(i int, up bool) {
	r.mu.Lock()
	r.stats[i].Healthy = up
	r.mu.Unlock()
}

func (r *Remote) bumpAssigned(i int) {
	r.mu.Lock()
	r.stats[i].Assigned++
	r.mu.Unlock()
}

func (r *Remote) bumpCompleted(i int) {
	r.mu.Lock()
	r.stats[i].Completed++
	r.mu.Unlock()
}

func (r *Remote) bumpStolen(i int) {
	r.mu.Lock()
	r.stats[i].Stolen++
	r.mu.Unlock()
}

func (r *Remote) bumpRequeued(i int) {
	r.mu.Lock()
	r.stats[i].Requeued++
	r.mu.Unlock()
}
