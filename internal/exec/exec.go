// Package exec is the cell-execution layer of the harness: the
// machinery that takes the canonical list of experiment cells a run
// still has to simulate and gets each one executed exactly once, on
// this process or on a fleet of worker nodes.
//
// A cell is a pure function of its Spec — the harness derives every
// random draw from (seed, method, rep, problem) and the dataset is
// content-fingerprinted into the cell's store key — so a cell can be
// executed anywhere, in any order, any number of times, and the
// outcome bytes cannot differ. That is the contract every executor
// builds on: the ordered event emitter upstream re-sequences
// completions, so an executor only owes *completion*, never order.
//
// Two executors implement the one CellExecutor interface:
//
//   - Local (the default): the in-process bounded worker pool the
//     harness always had, feeding cells in canonical order and
//     reporting the canonically-earliest failure like a sequential
//     run would.
//   - Remote: a coordinator that consistent-hashes cell keys across
//     worker nodes speaking the length-prefixed JSON protocol of
//     proto.go (see Worker for the serving side), with per-node
//     bounded in-flight windows, health probing, work-stealing of
//     straggler and dead-node cells, and a local fallback when the
//     whole fleet is gone — the loss of any worker mid-run costs
//     duplicated pure work, never a lost or changed cell.
package exec

import (
	"context"
	"sync"
	"time"

	"correctbench/internal/obs"
	"correctbench/internal/store"
)

// Spec is the wire-form identity of one experiment cell: every input
// its outcome is a function of, by name. A worker node rebuilds the
// full cell configuration from it (see harness.NewCellRunner), so the
// fields mirror the service's ExperimentSpec plus the cell's own grid
// coordinates. Budget pointers keep the nil-means-paper-default
// semantics of the public spec.
type Spec struct {
	Seed           int64  `json:"seed"`
	LLM            string `json:"llm,omitempty"`
	Criterion      string `json:"criterion,omitempty"`
	MaxCorrections *int   `json:"max_corrections,omitempty"`
	MaxReboots     *int   `json:"max_reboots,omitempty"`
	NR             *int   `json:"rtl_group_size,omitempty"`
	Method         string `json:"method"`
	Rep            int    `json:"rep"`
	Problem        string `json:"problem"`
}

// Cell is one unit of executor work: the canonical index (the slot
// the result lands in and the order events release in), the content
// address (what the remote executor consistent-hashes, and what a
// worker verifies against its own key derivation to catch version
// skew), and the wire spec.
type Cell struct {
	Index int
	Key   store.Key
	Spec  Spec
}

// Result is one finished cell. Outcome is the stored wire form —
// pure, byte-stable; Duration, Node and Stolen are operational
// metadata (wall clock, placement) outside the reproducibility
// contract.
type Result struct {
	Index   int
	Outcome store.Outcome
	// Duration is the cell's wall-clock execution time as observed by
	// the executor (for remote cells: the full round trip).
	Duration time.Duration
	// Node names the worker that executed the cell ("" for the local
	// pool and the remote executor's local fallback).
	Node string
	// Stolen reports the cell completed on a node other than the one
	// its key originally hashed to (work-stealing or reassignment).
	Stolen bool
	// Phases is the cell's phase-timing breakdown, populated only when
	// Job.Trace is set: queue_wait and (for remote cells) dispatch and
	// net_roundtrip recorded by the executor, plus whatever the cell's
	// execution recorded through its context collector (simulate,
	// grade, sim_* sub-spans). Sample offsets are relative to
	// Job.Epoch; worker-recorded samples arrive already rebased under
	// the coordinator's net_roundtrip span. Operational metadata like
	// Duration — never part of the reproducibility contract.
	Phases []obs.PhaseSample
}

// Runner simulates one cell in-process. The local pool runs every
// cell through it; the remote executor uses it only as the
// no-healthy-nodes fallback. It must be safe for concurrent calls.
type Runner func(ctx context.Context, c Cell) (store.Outcome, error)

// Job is one executor invocation: the cells a run still needs (in
// canonical index order), the requested parallelism, the local
// simulation function, and the completion sink. Done is called
// exactly once per successfully executed cell, possibly concurrently
// and in any order — the caller re-sequences (the harness's ordered
// emitter buffers out-of-order completions).
type Job struct {
	Cells   []Cell
	Workers int
	Run     Runner
	Done    func(Result)
	// Trace asks the executor to time each cell's phases: a collector
	// travels in the Run context (obs.WithCollector) and the samples
	// come back in Result.Phases. Remote executors forward the flag in
	// the run frame so fleet workers collect only when asked. Tracing
	// is pure metadata collection — outcomes and completion order are
	// unaffected.
	Trace bool
	// Epoch is the trace time origin all Phases offsets are relative
	// to (the run's start). Zero with Trace set: the executor picks
	// its own at Execute time.
	Epoch time.Time
}

// CellExecutor executes every cell of a job exactly once. Execute
// returns nil when all cells completed, ctx.Err() on cancellation,
// and otherwise the error of the canonically earliest failing cell —
// the same error a sequential run would hit first. Implementations
// must be safe for concurrent Execute calls (a client runs many jobs
// over one executor).
type CellExecutor interface {
	Execute(ctx context.Context, job Job) error
}

// errorCollector keeps the error of the canonically earliest failing
// cell, so parallel and distributed runs report the same error a
// sequential run would.
type errorCollector struct {
	mu     sync.Mutex
	minIdx int
	err    error
}

func newErrorCollector() *errorCollector { return &errorCollector{minIdx: -1} }

func (e *errorCollector) record(idx int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil || idx < e.minIdx {
		e.minIdx, e.err = idx, err
	}
}

func (e *errorCollector) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err != nil
}

func (e *errorCollector) first() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// minIndex returns the canonical index of the earliest recorded
// failure; only meaningful after failed() reports true.
func (e *errorCollector) minIndex() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.minIdx
}

// Local returns the default executor: the in-process bounded worker
// pool. Behavior is identical to the pool the harness ran inline
// before the executor boundary existed — cells feed in canonical
// order, scheduling stops at the first failure or cancellation,
// already-queued cells still run, and the earliest cell error wins.
func Local() CellExecutor { return localPool{} }

type localPool struct{}

func (localPool) Execute(ctx context.Context, job Job) error {
	if len(job.Cells) == 0 {
		return ctx.Err()
	}
	workers := job.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(job.Cells) {
		workers = len(job.Cells)
	}

	epoch := job.Epoch
	if job.Trace && epoch.IsZero() {
		epoch = time.Now() //detlint:allow trace epoch is wall-clock metadata, excluded from the deterministic surface
	}

	type queued struct {
		c  Cell
		at time.Time // enqueue time, for the queue_wait sample (zero when not tracing)
	}
	var (
		errs = newErrorCollector()
		jobs = make(chan queued)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				c := q.c
				if err := ctx.Err(); err != nil {
					errs.record(c.Index, err)
					continue
				}
				start := time.Now() //detlint:allow Result.Duration is documented wall-clock metadata, excluded from the deterministic surface
				runCtx := ctx
				var col *obs.Collector
				if job.Trace {
					// queue_wait: enqueue (canonical-order feed) to the
					// moment a pool worker picked the cell up.
					col = obs.NewCollector(epoch)
					col.Add(obs.PhaseSample{
						Phase: obs.PhaseQueueWait, Seq: 0, ParentSeq: -1,
						StartUS: q.at.Sub(epoch).Microseconds(),
						DurUS:   start.Sub(q.at).Microseconds(),
					})
					runCtx = obs.WithCollector(ctx, col)
				}
				o, err := job.Run(runCtx, c)
				if err != nil {
					errs.record(c.Index, err)
					continue
				}
				job.Done(Result{Index: c.Index, Outcome: o, Duration: time.Since(start), Phases: col.Samples()})
			}
		}()
	}

	// Feed in canonical order; stop scheduling once any cell has
	// failed or the context was cancelled. Already-queued cells still
	// run, so every cell ordered before a failure executes — which is
	// what makes the min-index error below the sequential run's first
	// error.
	for _, c := range job.Cells {
		if errs.failed() || ctx.Err() != nil {
			break
		}
		q := queued{c: c}
		if job.Trace {
			q.at = time.Now() //detlint:allow queue_wait is wall-clock metadata, excluded from the deterministic surface
		}
		jobs <- q
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return errs.first()
}
