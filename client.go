package correctbench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"correctbench/internal/autoeval"
	"correctbench/internal/core"
	"correctbench/internal/dataset"
	"correctbench/internal/harness"
	"correctbench/internal/llm"
	"correctbench/internal/obs"
	"correctbench/internal/validator"
)

// Int returns a pointer to v, for the explicit-value budget fields of
// ExperimentSpec and TaskSpec (e.g. MaxCorrections: correctbench.Int(0)
// disables corrections — something the legacy Options struct cannot
// express because its zero value means "paper default").
func Int(v int) *int { return &v }

// resolveProfile resolves an LLM profile name ("" selects the paper's
// gpt-4o default).
func resolveProfile(name string) (*llm.Profile, error) {
	if name == "" {
		return llm.GPT4o(), nil
	}
	prof := llm.ByName(name)
	if prof == nil {
		return nil, fmt.Errorf("correctbench: unknown LLM profile %q", name)
	}
	return prof, nil
}

// resolveProblems resolves dataset problem names.
func resolveProblems(names []string) ([]*dataset.Problem, error) {
	var out []*dataset.Problem
	for _, n := range names {
		p := dataset.ByName(n)
		if p == nil {
			return nil, fmt.Errorf("correctbench: unknown problem %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// checkNR validates an optional RTL-group-size override.
func checkNR(v *int) error {
	if v != nil && *v < 1 {
		return fmt.Errorf("correctbench: rtl_group_size must be >= 1 (the validator needs at least one RTL)")
	}
	return nil
}

// ExperimentSpec configures a whole-dataset experiment job. It is the
// service wire format of POST /v1/experiments, so every field is
// JSON-tagged.
//
// Unlike the legacy Options/ExperimentConfig, the Algorithm 1 budgets
// are pointer-valued: nil means "paper default" (3 corrections, 10
// reboots, 20 RTLs) while an explicit zero correction/reboot budget
// is honored, enabling no-correction and no-reboot ablations.
type ExperimentSpec struct {
	// Seed drives every random choice; equal seeds reproduce the full
	// event stream bit for bit.
	Seed int64 `json:"seed"`
	// Reps is the number of repetitions (paper: 5); minimum 1.
	Reps int `json:"reps,omitempty"`
	// LLM and Criterion as in Options; empty selects gpt-4o and
	// 70%-wrong.
	LLM       string `json:"llm,omitempty"`
	Criterion string `json:"criterion,omitempty"`
	// Problems restricts the task set by name (default: all 156).
	Problems []string `json:"problems,omitempty"`
	// Methods restricts the compared methods ("CorrectBench",
	// "AutoBench", "Baseline"; default: all three).
	Methods []string `json:"methods,omitempty"`
	// Workers bounds concurrent cells (0: all CPUs). Any value yields
	// the identical result and event sequence.
	Workers int `json:"workers,omitempty"`
	// MaxCorrections (I_C^max) and MaxReboots (I_R^max): nil keeps
	// the paper defaults, explicit 0 is honored (disables the
	// action). RTLGroupSize (N_R): nil keeps the paper's 20; explicit
	// values must be >= 1 — the validator needs at least one RTL.
	MaxCorrections *int `json:"max_corrections,omitempty"`
	MaxReboots     *int `json:"max_reboots,omitempty"`
	RTLGroupSize   *int `json:"rtl_group_size,omitempty"`
	// NoStore opts this job out of the client's result store: no cell
	// is looked up or written back, every cell simulates. Use it to
	// force a cold run (benchmarking, store-bypass debugging) on a
	// store-backed client; it has no effect when the client has no
	// store. Results are identical either way — the store only changes
	// whether a cell is simulated or replayed.
	NoStore bool `json:"no_store,omitempty"`
	// NoTrace opts this job out of phase tracing: no per-cell span
	// tree is collected (Job.Trace returns nil, GET .../trace answers
	// 404) and the job's cells contribute nothing to the /metrics
	// latency histograms. Tracing is operational metadata exactly like
	// CellFinished.Duration — on or off, the event stream, tables and
	// results are byte-identical — so the only reason to set this is
	// shaving the (small) collection overhead, e.g. for benchmarks.
	NoTrace bool `json:"no_trace,omitempty"`
}

// resolve validates the spec and builds the harness configuration.
// All user errors (unknown LLM, criterion, problem, method; negative
// budgets) surface here, before a Job is created.
func (s ExperimentSpec) resolve() (harness.Config, error) {
	hcfg := harness.Config{Seed: s.Seed, Reps: s.Reps, Workers: s.Workers}
	prof, err := resolveProfile(s.LLM)
	if err != nil {
		return harness.Config{}, err
	}
	hcfg.Profile = prof
	if s.Criterion != "" {
		c, err := validator.CriterionByName(s.Criterion)
		if err != nil {
			return harness.Config{}, err
		}
		hcfg.Criterion = c
	}
	if hcfg.Problems, err = resolveProblems(s.Problems); err != nil {
		return harness.Config{}, err
	}
	for _, m := range s.Methods {
		var found bool
		for _, known := range harness.AllMethods() {
			if string(known) == m {
				hcfg.Methods = append(hcfg.Methods, known)
				found = true
				break
			}
		}
		if !found {
			return harness.Config{}, fmt.Errorf("correctbench: unknown method %q", m)
		}
	}
	for _, b := range []struct {
		name string
		v    *int
	}{
		{"max_corrections", s.MaxCorrections},
		{"max_reboots", s.MaxReboots},
	} {
		if b.v != nil && *b.v < 0 {
			return harness.Config{}, fmt.Errorf("correctbench: %s must be >= 0, got %d", b.name, *b.v)
		}
	}
	if err := checkNR(s.RTLGroupSize); err != nil {
		return harness.Config{}, err
	}
	hcfg.MaxCorrections = s.MaxCorrections
	hcfg.MaxReboots = s.MaxReboots
	hcfg.NR = s.RTLGroupSize
	return hcfg, nil
}

// TaskSpec configures a single CorrectBench task run through a
// Client. Budget semantics match ExperimentSpec: nil = paper
// default; explicit zero is honored for MaxCorrections/MaxReboots,
// while RTLGroupSize must be >= 1 when set.
type TaskSpec struct {
	Seed           int64  `json:"seed"`
	LLM            string `json:"llm,omitempty"`
	Criterion      string `json:"criterion,omitempty"`
	MaxCorrections *int   `json:"max_corrections,omitempty"`
	MaxReboots     *int   `json:"max_reboots,omitempty"`
	RTLGroupSize   *int   `json:"rtl_group_size,omitempty"`
}

func (s TaskSpec) resolve() (core.Options, error) {
	prof, err := resolveProfile(s.LLM)
	if err != nil {
		return core.Options{}, err
	}
	opt := core.DefaultOptions(prof)
	if s.Criterion != "" {
		c, err := validator.CriterionByName(s.Criterion)
		if err != nil {
			return core.Options{}, err
		}
		opt.Criterion = c
	}
	if s.MaxCorrections != nil {
		if *s.MaxCorrections < 0 {
			return core.Options{}, fmt.Errorf("correctbench: max_corrections must be >= 0")
		}
		opt.MaxCorrections = *s.MaxCorrections
	}
	if s.MaxReboots != nil {
		if *s.MaxReboots < 0 {
			return core.Options{}, fmt.Errorf("correctbench: max_reboots must be >= 0")
		}
		opt.MaxReboots = *s.MaxReboots
	}
	if err := checkNR(s.RTLGroupSize); err != nil {
		return core.Options{}, err
	}
	if s.RTLGroupSize != nil {
		opt.NR = *s.RTLGroupSize
	}
	return opt, nil
}

// Retention bounds: a Client is designed to live for the whole
// process (correctbenchd keeps one per server), so both caches are
// capped rather than unbounded.
const (
	// maxRetainedJobs bounds the jobs kept for Job()/Jobs() lookups:
	// once exceeded, the oldest finished jobs (and their event
	// histories) are evicted. Running jobs are never evicted.
	maxRetainedJobs = 64
	// maxRetainedEvaluators bounds the per-seed fixture caches; the
	// oldest evaluator is dropped when a new seed would exceed the
	// cap (fixtures are deterministic, so eviction only costs a
	// rebuild). Jobs hold their own reference, so eviction never
	// affects a running experiment.
	maxRetainedEvaluators = 8
)

// Client is the job-oriented entry point to CorrectBench. It owns the
// caches shared across jobs — the dataset, per-seed AutoEval
// evaluators holding elaborated goldens, golden testbenches and
// mutant fixtures, and optionally a content-addressed result store
// (WithStore) that replays finished cells instead of re-simulating
// them — so repeated jobs against the same seed never rebuild
// fixtures and repeated specs never re-simulate cells. The fixture
// caches are bounded (see maxRetainedJobs, maxRetainedEvaluators), so
// a long-lived Client does not grow without limit. A Client is safe
// for concurrent use; the zero value is not usable, construct with
// NewClient.
type Client struct {
	store    Store        // nil: no result store
	executor CellExecutor // nil: in-process worker pool

	// obs aggregates phase latencies and the completion-rate window
	// across every traced job this client runs; GET /metrics reads it.
	obs *obs.Observer

	mu        sync.Mutex
	evals     map[int64]*autoeval.Evaluator
	evalOrder []int64 // evaluator seeds in creation order
	jobs      map[string]*Job
	order     []string // job IDs in submission order
	seq       int
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithStore attaches a result store (NewMemoryStore, OpenDiskStore)
// to the client. Every submitted job then consults the store before
// scheduling a cell and persists each finished cell, making identical
// or overlapping specs O(lookup) instead of O(simulation) and
// interrupted experiments resumable by resubmitting the same spec.
// Individual jobs opt out with ExperimentSpec.NoStore. The store may
// be shared across concurrent jobs; the client takes ownership —
// Close closes it.
func WithStore(s Store) ClientOption {
	return func(c *Client) { c.store = s }
}

// WithExecutor routes every submitted job's cells through e instead
// of the in-process worker pool — typically a NewRemoteExecutor fleet
// coordinator. Results, event streams and resume-by-spec semantics
// are identical to local execution: the executor only decides where
// cells run, never what they produce or in what order events are
// released. The spec's Workers field keeps its meaning as the bound
// on concurrently outstanding cells.
func WithExecutor(e CellExecutor) ClientOption {
	return func(c *Client) { c.executor = e }
}

// NewClient returns an empty client.
func NewClient(opts ...ClientOption) *Client {
	c := &Client{
		evals: map[int64]*autoeval.Evaluator{},
		jobs:  map[string]*Job{},
		obs:   obs.NewObserver(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// FleetStats reports the per-node counters of the client's executor;
// ok is false when the client was built without WithExecutor or its
// executor keeps no per-node accounting (the in-process pool). The
// GET /metrics fleet gauges come from here.
func (c *Client) FleetStats() (stats []NodeStats, ok bool) {
	type statser interface{ Stats() []NodeStats }
	s, ok := c.executor.(statser)
	if !ok {
		return nil, false
	}
	return s.Stats(), true
}

// StoreStats reports the result store's live counters; ok is false
// when the client was built without WithStore.
func (c *Client) StoreStats() (stats StoreStats, ok bool) {
	if c.store == nil {
		return StoreStats{}, false
	}
	return c.store.Stats(), true
}

// Close shuts the client down for process exit: every in-flight job
// is cancelled, waited for (so final result-store write-backs land),
// and then the store — when one is attached — is flushed and closed.
// ctx bounds the wait; on expiry the store is still closed (remaining
// write-backs fail softly and are counted) and ctx's error returned.
// correctbenchd calls this on SIGTERM so a rolling restart never
// loses a completed cell. Submitting after Close yields jobs whose
// cells all miss and fail to persist; don't.
func (c *Client) Close(ctx context.Context) error {
	jobs := c.Jobs()
	for _, j := range jobs {
		j.Cancel()
	}
	var waitErr error
drain:
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			waitErr = ctx.Err()
			break drain
		}
	}
	var closeErr error
	if c.store != nil {
		closeErr = c.store.Close()
	}
	if waitErr != nil {
		return waitErr
	}
	return closeErr
}

// evaluator returns the shared evaluator for an evaluator seed,
// creating it on first use and evicting the oldest cached seed when
// the cap is exceeded.
func (c *Client) evaluator(seed int64) *autoeval.Evaluator {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.evals[seed]
	if !ok {
		e = autoeval.NewEvaluator(seed)
		c.evals[seed] = e
		c.evalOrder = append(c.evalOrder, seed)
		if len(c.evalOrder) > maxRetainedEvaluators {
			delete(c.evals, c.evalOrder[0])
			c.evalOrder = c.evalOrder[1:]
		}
	}
	return e
}

// pruneJobsLocked evicts the oldest finished jobs beyond the
// retention cap. Callers hold c.mu.
func (c *Client) pruneJobsLocked() {
	if len(c.order) <= maxRetainedJobs {
		return
	}
	kept := c.order[:0]
	excess := len(c.order) - maxRetainedJobs
	for _, id := range c.order {
		if excess > 0 && c.jobs[id].finished() {
			delete(c.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	c.order = kept
}

// Submit validates the spec and starts an experiment job. The job's
// lifetime is bound to ctx: cancelling it (an HTTP client
// disconnecting, a CLI receiving SIGINT) stops the workers within one
// simulation step batch, exactly like Job.Cancel. Spec errors
// (unknown LLM/criterion/problem/method, invalid budgets) and an
// already-cancelled ctx are reported synchronously; after a
// successful return, all failures flow through the event stream and
// Wait.
func (c *Client) Submit(ctx context.Context, spec ExperimentSpec) (*Job, error) {
	return c.submit(ctx, spec, nil)
}

func (c *Client) submit(ctx context.Context, spec ExperimentSpec, progress io.Writer) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hcfg, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	hcfg.Progress = progress
	hcfg.Evaluator = c.evaluator(harness.EvaluatorSeed(spec.Seed))
	hcfg.Executor = c.executor
	if !spec.NoStore {
		hcfg.Store = c.store
	}
	// Normalize the grid now so JobStarted and Snapshot report the
	// exact totals the harness will run.
	hcfg.Normalize()

	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("exp-%d", c.seq)
	c.mu.Unlock()

	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		id:           id,
		spec:         spec,
		cancel:       cancel,
		done:         make(chan struct{}),
		update:       make(chan struct{}),
		total:        len(hcfg.Methods) * hcfg.Reps * len(hcfg.Problems),
		grades:       map[string]map[string]int{},
		tables:       map[string]string{},
		storeEnabled: hcfg.Store != nil,
	}
	if !spec.NoTrace {
		// Tracing is on by default: the job collects a span tree per
		// cell and feeds the client's shared latency aggregator. Both
		// are off-wire operational metadata, so traced and untraced
		// jobs publish byte-identical event streams.
		j.trace = &obs.JobTrace{}
		j.observer = c.obs
		hcfg.Trace = j.trace
		hcfg.Observer = c.obs
	}
	c.mu.Lock()
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.pruneJobsLocked()
	c.mu.Unlock()

	go j.run(jctx, hcfg)
	return j, nil
}

// Job returns a submitted job by ID, or nil when unknown.
func (c *Client) Job(id string) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// Jobs returns every submitted job in submission order.
func (c *Client) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// GenerateTestbench runs the full CorrectBench workflow (Algorithm 1)
// on one named problem, with cancellation.
func (c *Client) GenerateTestbench(ctx context.Context, problem string, spec TaskSpec) (*TaskResult, error) {
	p := dataset.ByName(problem)
	if p == nil {
		return nil, fmt.Errorf("correctbench: unknown problem %q", problem)
	}
	return c.GenerateTestbenchFor(ctx, p, spec)
}

// GenerateTestbenchFor is GenerateTestbench for an explicit problem
// (including NewProblem-built ones).
func (c *Client) GenerateTestbenchFor(ctx context.Context, p *Problem, spec TaskSpec) (*TaskResult, error) {
	opt, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	res, err := core.RunContext(ctx, p, opt, rand.New(rand.NewSource(spec.Seed)))
	if err != nil {
		return nil, err
	}
	return &TaskResult{
		Testbench:   res.Testbench,
		Validated:   res.Trace.FinalValidated,
		Corrections: res.Trace.Corrections,
		Reboots:     res.Trace.Reboots,
		TokensIn:    res.Trace.Tokens.In,
		TokensOut:   res.Trace.Tokens.Out,
	}, nil
}

// Grade evaluates a testbench with AutoEval (Table II). The seed
// fixes the mutant fixtures; repeated grades against the same seed
// share the client's cached fixtures.
func (c *Client) Grade(ctx context.Context, tb *Testbench, seed int64) (GradeLevel, error) {
	return c.evaluator(seed).EvaluateContext(ctx, tb)
}

// CriterionAccuracyRow re-exports one Fig. 6(a) result row.
type CriterionAccuracyRow = harness.CriterionAccuracy

// CriterionPipelineRow re-exports one Fig. 6(b) result row.
type CriterionPipelineRow = harness.CriterionPipelineResult

// CriteriaAccuracySpec configures the Fig. 6(a) validation-accuracy
// study run through a Client.
type CriteriaAccuracySpec struct {
	Seed int64 `json:"seed"`
	// PerTask is the corpus size per problem (paper: 10).
	PerTask int    `json:"per_task,omitempty"`
	LLM     string `json:"llm,omitempty"`
	// RTLGroupSize is N_R (nil: paper's 20).
	RTLGroupSize *int      `json:"rtl_group_size,omitempty"`
	Problems     []string  `json:"problems,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Progress     io.Writer `json:"-"`
}

// CriteriaAccuracy runs the Fig. 6(a) study with cancellation.
func (c *Client) CriteriaAccuracy(ctx context.Context, spec CriteriaAccuracySpec) ([]CriterionAccuracyRow, error) {
	cfg := harness.CriteriaAccuracyConfig{
		PerTask: spec.PerTask, Seed: spec.Seed, Workers: spec.Workers, Progress: spec.Progress,
	}
	prof, err := resolveProfile(spec.LLM)
	if err != nil {
		return nil, err
	}
	cfg.Profile = prof
	if err := checkNR(spec.RTLGroupSize); err != nil {
		return nil, err
	}
	if spec.RTLGroupSize != nil {
		cfg.NR = *spec.RTLGroupSize
	}
	if cfg.Problems, err = resolveProblems(spec.Problems); err != nil {
		return nil, err
	}
	return harness.CriteriaAccuracyContext(ctx, cfg)
}

// CriteriaPipeline runs the Fig. 6(b) study (the whole framework
// under each validation criterion) with cancellation. The spec's
// Criterion and Methods fields are ignored — the study fixes both.
func (c *Client) CriteriaPipeline(ctx context.Context, spec ExperimentSpec, progress io.Writer) ([]CriterionPipelineRow, error) {
	spec.Criterion = ""
	spec.Methods = nil
	hcfg, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	hcfg.Progress = progress
	hcfg.Evaluator = c.evaluator(harness.EvaluatorSeed(spec.Seed))
	hcfg.Executor = c.executor
	// The study runs one experiment per criterion; the criterion is a
	// cell-key component, so sharing the store across rows is safe and
	// a rerun of the study is fully warm.
	if !spec.NoStore {
		hcfg.Store = c.store
	}
	return harness.CriteriaPipelineContext(ctx, hcfg)
}
