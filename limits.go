package correctbench

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Limits is the service's admission-control policy: how much work one
// correctbenchd instance accepts before it starts answering 429 with a
// Retry-After hint instead of queueing unboundedly. The zero value of
// every rate/quota field means "unlimited", so DefaultLimits (used by
// NewServer when no WithLimits option is given) keeps the embedded
// handler as permissive as before this layer existed — hardened
// defaults are set by the correctbenchd flags, where an operator can
// see and override them.
type Limits struct {
	// MaxActiveJobs caps experiments running concurrently across all
	// clients; 0 means unlimited. A submit over the cap is refused with
	// 429 — the queue is the client's to manage, not the server's to
	// buffer.
	MaxActiveJobs int
	// MaxJobsPerClient caps concurrently running experiments per
	// client (see clientKey); 0 means unlimited.
	MaxJobsPerClient int
	// RatePerSec and Burst form a per-client token bucket over the
	// mutating endpoints (submit, grade). RatePerSec 0 disables rate
	// limiting; Burst defaults to max(1, ceil(RatePerSec)).
	RatePerSec float64
	Burst      int
	// RequestTimeout bounds synchronous request work (grade); 0 means
	// no timeout. Streaming endpoints are bounded by their own
	// lifecycle, not this.
	RequestTimeout time.Duration
	// MaxBodyBytes caps submit/grade request bodies; overflow is 413.
	// 0 means use the default (8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 responses; 0 means the
	// default (1s).
	RetryAfter time.Duration
}

// DefaultLimits returns the backward-compatible policy: everything
// unlimited except a sane body cap.
func DefaultLimits() Limits {
	return Limits{MaxBodyBytes: defaultMaxBodyBytes, RetryAfter: time.Second}
}

const (
	defaultMaxBodyBytes = 8 << 20
	// maxTrackedClients bounds the admission table; past it, idle
	// client entries are evicted before admitting new ones, so a
	// stampede of one-shot clients cannot grow server state without
	// bound.
	maxTrackedClients = 1024
)

// ServerOption configures NewServer.
type ServerOption func(*server)

// WithLimits sets the server's admission-control policy.
func WithLimits(l Limits) ServerOption {
	return func(s *server) { s.limits = l }
}

// admission enforces Limits. One instance per server; all methods are
// safe for concurrent use.
type admission struct {
	lim Limits

	mu      sync.Mutex
	active  int
	refused uint64 // 429s answered (quota and rate), for /metrics
	clients map[string]*clientState
}

type clientState struct {
	tokens float64
	last   time.Time
	active int
}

func newAdmission(lim Limits) *admission {
	if lim.MaxBodyBytes <= 0 {
		lim.MaxBodyBytes = defaultMaxBodyBytes
	}
	if lim.RetryAfter <= 0 {
		lim.RetryAfter = time.Second
	}
	if lim.RatePerSec > 0 && lim.Burst <= 0 {
		lim.Burst = int(math.Max(1, math.Ceil(lim.RatePerSec)))
	}
	return &admission{lim: lim, clients: make(map[string]*clientState)}
}

// clientKey identifies the caller for quotas and rate limits: the
// X-Client-ID header when present (multi-tenant deployments set it at
// the edge), else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// state returns (creating if needed) the client's entry, evicting idle
// entries first when the table is full.
func (a *admission) state(key string, now time.Time) *clientState {
	cs := a.clients[key]
	if cs == nil {
		if len(a.clients) >= maxTrackedClients {
			for k, c := range a.clients {
				if c.active == 0 && now.Sub(c.last) > time.Minute {
					delete(a.clients, k)
				}
			}
		}
		cs = &clientState{tokens: float64(a.lim.Burst), last: now}
		a.clients[key] = cs
	}
	return cs
}

// allowRate takes one token from the client's bucket, reporting
// whether the request is admitted.
func (a *admission) allowRate(key string, now time.Time) bool {
	if a.lim.RatePerSec <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.state(key, now)
	cs.tokens = math.Min(float64(a.lim.Burst), cs.tokens+now.Sub(cs.last).Seconds()*a.lim.RatePerSec)
	cs.last = now
	if cs.tokens < 1 {
		return false
	}
	cs.tokens--
	return true
}

// reserveJob claims a concurrent-job slot for the client under both
// the global and per-client caps. On success it returns a release
// func (idempotent) that must be called when the job finishes; on
// refusal it returns the reason.
func (a *admission) reserveJob(key string, now time.Time) (release func(), err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lim.MaxActiveJobs > 0 && a.active >= a.lim.MaxActiveJobs {
		return nil, fmt.Errorf("server at capacity (%d active experiments)", a.active)
	}
	cs := a.state(key, now)
	if a.lim.MaxJobsPerClient > 0 && cs.active >= a.lim.MaxJobsPerClient {
		return nil, fmt.Errorf("client at capacity (%d active experiments)", cs.active)
	}
	a.active++
	cs.active++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.active--
			cs.active--
			cs.last = time.Now()
			a.mu.Unlock()
		})
	}, nil
}

// counters reports the admission gauges for /metrics.
func (a *admission) counters() (active int, refused uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, a.refused
}

// tooMany answers 429 with the policy's Retry-After hint.
func (a *admission) tooMany(w http.ResponseWriter, err error) {
	a.mu.Lock()
	a.refused++
	a.mu.Unlock()
	secs := int(math.Ceil(a.lim.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, err)
}

// isBodyTooLarge reports whether a decode failure came from the
// MaxBytesReader cap (413) rather than malformed JSON (400).
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// statusRecorder tracks whether a handler has committed a response,
// so the panic middleware knows if a 500 can still be written.
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.wrote = true
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(b)
}

// Flush keeps streaming endpoints working through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recoverPanics is the outermost middleware: a panicking handler
// answers 500 (when the response is still uncommitted) instead of
// killing the daemon's connection-serving goroutine state. Handlers
// that hold a job guard against the panic themselves and cancel the
// job before re-panicking into this recovery (see server.submit).
// http.ErrAbortHandler is re-raised: it is the stdlib's sanctioned
// way to abort a response and is already handled by net/http.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if !sr.wrote {
				writeError(sr, http.StatusInternalServerError, fmt.Errorf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(sr, r)
	})
}
